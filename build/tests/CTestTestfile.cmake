# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/rng_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/store_test[1]_include.cmake")
include("/root/repo/build/tests/content_image_test[1]_include.cmake")
include("/root/repo/build/tests/content_html_test[1]_include.cmake")
include("/root/repo/build/tests/tacc_test[1]_include.cmake")
include("/root/repo/build/tests/manager_stub_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/transend_test[1]_include.cmake")
include("/root/repo/build/tests/hotbot_test[1]_include.cmake")
include("/root/repo/build/tests/extras_test[1]_include.cmake")
include("/root/repo/build/tests/sns_components_test[1]_include.cmake")
include("/root/repo/build/tests/integration_transend_test[1]_include.cmake")
include("/root/repo/build/tests/integration_fault_test[1]_include.cmake")
include("/root/repo/build/tests/bitstream_test[1]_include.cmake")
include("/root/repo/build/tests/codec_robustness_test[1]_include.cmake")
include("/root/repo/build/tests/sns_features_test[1]_include.cmake")
include("/root/repo/build/tests/playback_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_cluster_test[1]_include.cmake")
include("/root/repo/build/tests/system_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/messages_test[1]_include.cmake")
