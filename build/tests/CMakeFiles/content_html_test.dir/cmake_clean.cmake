file(REMOVE_RECURSE
  "CMakeFiles/content_html_test.dir/content_html_test.cc.o"
  "CMakeFiles/content_html_test.dir/content_html_test.cc.o.d"
  "content_html_test"
  "content_html_test.pdb"
  "content_html_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/content_html_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
