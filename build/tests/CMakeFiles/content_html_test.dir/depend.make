# Empty dependencies file for content_html_test.
# This may be replaced when dependencies are built.
