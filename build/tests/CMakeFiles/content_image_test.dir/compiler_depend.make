# Empty compiler generated dependencies file for content_image_test.
# This may be replaced when dependencies are built.
