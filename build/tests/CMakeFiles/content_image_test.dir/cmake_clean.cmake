file(REMOVE_RECURSE
  "CMakeFiles/content_image_test.dir/content_image_test.cc.o"
  "CMakeFiles/content_image_test.dir/content_image_test.cc.o.d"
  "content_image_test"
  "content_image_test.pdb"
  "content_image_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/content_image_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
