# Empty compiler generated dependencies file for tacc_test.
# This may be replaced when dependencies are built.
