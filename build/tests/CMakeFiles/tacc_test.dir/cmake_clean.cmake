file(REMOVE_RECURSE
  "CMakeFiles/tacc_test.dir/tacc_test.cc.o"
  "CMakeFiles/tacc_test.dir/tacc_test.cc.o.d"
  "tacc_test"
  "tacc_test.pdb"
  "tacc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tacc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
