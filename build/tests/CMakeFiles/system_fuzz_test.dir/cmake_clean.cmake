file(REMOVE_RECURSE
  "CMakeFiles/system_fuzz_test.dir/system_fuzz_test.cc.o"
  "CMakeFiles/system_fuzz_test.dir/system_fuzz_test.cc.o.d"
  "system_fuzz_test"
  "system_fuzz_test.pdb"
  "system_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/system_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
