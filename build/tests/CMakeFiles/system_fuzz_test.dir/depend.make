# Empty dependencies file for system_fuzz_test.
# This may be replaced when dependencies are built.
