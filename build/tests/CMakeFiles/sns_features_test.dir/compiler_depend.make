# Empty compiler generated dependencies file for sns_features_test.
# This may be replaced when dependencies are built.
