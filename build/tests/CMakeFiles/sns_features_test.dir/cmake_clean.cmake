file(REMOVE_RECURSE
  "CMakeFiles/sns_features_test.dir/sns_features_test.cc.o"
  "CMakeFiles/sns_features_test.dir/sns_features_test.cc.o.d"
  "sns_features_test"
  "sns_features_test.pdb"
  "sns_features_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sns_features_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
