file(REMOVE_RECURSE
  "CMakeFiles/manager_stub_test.dir/manager_stub_test.cc.o"
  "CMakeFiles/manager_stub_test.dir/manager_stub_test.cc.o.d"
  "manager_stub_test"
  "manager_stub_test.pdb"
  "manager_stub_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/manager_stub_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
