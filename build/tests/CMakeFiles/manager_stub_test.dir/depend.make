# Empty dependencies file for manager_stub_test.
# This may be replaced when dependencies are built.
