# Empty compiler generated dependencies file for sns_components_test.
# This may be replaced when dependencies are built.
