file(REMOVE_RECURSE
  "CMakeFiles/sns_components_test.dir/sns_components_test.cc.o"
  "CMakeFiles/sns_components_test.dir/sns_components_test.cc.o.d"
  "sns_components_test"
  "sns_components_test.pdb"
  "sns_components_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sns_components_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
