file(REMOVE_RECURSE
  "CMakeFiles/pipeline_cluster_test.dir/pipeline_cluster_test.cc.o"
  "CMakeFiles/pipeline_cluster_test.dir/pipeline_cluster_test.cc.o.d"
  "pipeline_cluster_test"
  "pipeline_cluster_test.pdb"
  "pipeline_cluster_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_cluster_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
