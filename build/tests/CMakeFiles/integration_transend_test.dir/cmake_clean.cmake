file(REMOVE_RECURSE
  "CMakeFiles/integration_transend_test.dir/integration_transend_test.cc.o"
  "CMakeFiles/integration_transend_test.dir/integration_transend_test.cc.o.d"
  "integration_transend_test"
  "integration_transend_test.pdb"
  "integration_transend_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_transend_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
