# Empty compiler generated dependencies file for integration_transend_test.
# This may be replaced when dependencies are built.
