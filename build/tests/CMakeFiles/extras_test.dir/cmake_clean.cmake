file(REMOVE_RECURSE
  "CMakeFiles/extras_test.dir/extras_test.cc.o"
  "CMakeFiles/extras_test.dir/extras_test.cc.o.d"
  "extras_test"
  "extras_test.pdb"
  "extras_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extras_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
