# Empty dependencies file for transend_test.
# This may be replaced when dependencies are built.
