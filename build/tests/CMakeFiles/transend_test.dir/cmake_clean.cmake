file(REMOVE_RECURSE
  "CMakeFiles/transend_test.dir/transend_test.cc.o"
  "CMakeFiles/transend_test.dir/transend_test.cc.o.d"
  "transend_test"
  "transend_test.pdb"
  "transend_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transend_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
