# Empty compiler generated dependencies file for integration_fault_test.
# This may be replaced when dependencies are built.
