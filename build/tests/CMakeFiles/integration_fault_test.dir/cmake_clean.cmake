file(REMOVE_RECURSE
  "CMakeFiles/integration_fault_test.dir/integration_fault_test.cc.o"
  "CMakeFiles/integration_fault_test.dir/integration_fault_test.cc.o.d"
  "integration_fault_test"
  "integration_fault_test.pdb"
  "integration_fault_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_fault_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
