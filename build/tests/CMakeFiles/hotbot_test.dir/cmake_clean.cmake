file(REMOVE_RECURSE
  "CMakeFiles/hotbot_test.dir/hotbot_test.cc.o"
  "CMakeFiles/hotbot_test.dir/hotbot_test.cc.o.d"
  "hotbot_test"
  "hotbot_test.pdb"
  "hotbot_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotbot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
