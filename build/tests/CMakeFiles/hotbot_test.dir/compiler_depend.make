# Empty compiler generated dependencies file for hotbot_test.
# This may be replaced when dependencies are built.
