# Empty compiler generated dependencies file for playback_test.
# This may be replaced when dependencies are built.
