file(REMOVE_RECURSE
  "CMakeFiles/playback_test.dir/playback_test.cc.o"
  "CMakeFiles/playback_test.dir/playback_test.cc.o.d"
  "playback_test"
  "playback_test.pdb"
  "playback_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/playback_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
