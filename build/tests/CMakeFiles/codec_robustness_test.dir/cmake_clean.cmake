file(REMOVE_RECURSE
  "CMakeFiles/codec_robustness_test.dir/codec_robustness_test.cc.o"
  "CMakeFiles/codec_robustness_test.dir/codec_robustness_test.cc.o.d"
  "codec_robustness_test"
  "codec_robustness_test.pdb"
  "codec_robustness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codec_robustness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
