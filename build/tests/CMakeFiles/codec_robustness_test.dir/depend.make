# Empty dependencies file for codec_robustness_test.
# This may be replaced when dependencies are built.
