
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/services/CMakeFiles/sns_services.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/sns_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sns/CMakeFiles/sns_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tacc/CMakeFiles/sns_tacc.dir/DependInfo.cmake"
  "/root/repo/build/src/content/CMakeFiles/sns_content.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/sns_store.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/sns_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sns_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sns_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sns_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
