file(REMOVE_RECURSE
  "CMakeFiles/operations_demo.dir/operations_demo.cpp.o"
  "CMakeFiles/operations_demo.dir/operations_demo.cpp.o.d"
  "operations_demo"
  "operations_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/operations_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
