# Empty compiler generated dependencies file for operations_demo.
# This may be replaced when dependencies are built.
