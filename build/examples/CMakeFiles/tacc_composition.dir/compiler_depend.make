# Empty compiler generated dependencies file for tacc_composition.
# This may be replaced when dependencies are built.
