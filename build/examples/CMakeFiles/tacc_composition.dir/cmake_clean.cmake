file(REMOVE_RECURSE
  "CMakeFiles/tacc_composition.dir/tacc_composition.cpp.o"
  "CMakeFiles/tacc_composition.dir/tacc_composition.cpp.o.d"
  "tacc_composition"
  "tacc_composition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tacc_composition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
