# Empty compiler generated dependencies file for transend_demo.
# This may be replaced when dependencies are built.
