file(REMOVE_RECURSE
  "CMakeFiles/transend_demo.dir/transend_demo.cpp.o"
  "CMakeFiles/transend_demo.dir/transend_demo.cpp.o.d"
  "transend_demo"
  "transend_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transend_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
