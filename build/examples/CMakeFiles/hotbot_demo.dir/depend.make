# Empty dependencies file for hotbot_demo.
# This may be replaced when dependencies are built.
