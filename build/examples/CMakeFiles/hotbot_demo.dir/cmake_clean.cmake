file(REMOVE_RECURSE
  "CMakeFiles/hotbot_demo.dir/hotbot_demo.cpp.o"
  "CMakeFiles/hotbot_demo.dir/hotbot_demo.cpp.o.d"
  "hotbot_demo"
  "hotbot_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotbot_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
