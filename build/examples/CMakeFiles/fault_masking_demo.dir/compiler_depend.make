# Empty compiler generated dependencies file for fault_masking_demo.
# This may be replaced when dependencies are built.
