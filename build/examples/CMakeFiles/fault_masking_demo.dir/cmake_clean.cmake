file(REMOVE_RECURSE
  "CMakeFiles/fault_masking_demo.dir/fault_masking_demo.cpp.o"
  "CMakeFiles/fault_masking_demo.dir/fault_masking_demo.cpp.o.d"
  "fault_masking_demo"
  "fault_masking_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_masking_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
