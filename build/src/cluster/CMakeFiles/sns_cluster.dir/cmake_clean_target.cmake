file(REMOVE_RECURSE
  "libsns_cluster.a"
)
