# Empty compiler generated dependencies file for sns_cluster.
# This may be replaced when dependencies are built.
