file(REMOVE_RECURSE
  "CMakeFiles/sns_cluster.dir/cluster.cc.o"
  "CMakeFiles/sns_cluster.dir/cluster.cc.o.d"
  "CMakeFiles/sns_cluster.dir/failure_injector.cc.o"
  "CMakeFiles/sns_cluster.dir/failure_injector.cc.o.d"
  "CMakeFiles/sns_cluster.dir/process.cc.o"
  "CMakeFiles/sns_cluster.dir/process.cc.o.d"
  "libsns_cluster.a"
  "libsns_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sns_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
