# Empty dependencies file for sns_store.
# This may be replaced when dependencies are built.
