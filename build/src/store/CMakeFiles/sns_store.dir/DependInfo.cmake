
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/store/consistent_hash.cc" "src/store/CMakeFiles/sns_store.dir/consistent_hash.cc.o" "gcc" "src/store/CMakeFiles/sns_store.dir/consistent_hash.cc.o.d"
  "/root/repo/src/store/kvstore.cc" "src/store/CMakeFiles/sns_store.dir/kvstore.cc.o" "gcc" "src/store/CMakeFiles/sns_store.dir/kvstore.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sns_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
