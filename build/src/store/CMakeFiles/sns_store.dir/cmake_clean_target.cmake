file(REMOVE_RECURSE
  "libsns_store.a"
)
