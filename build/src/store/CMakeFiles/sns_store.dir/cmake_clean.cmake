file(REMOVE_RECURSE
  "CMakeFiles/sns_store.dir/consistent_hash.cc.o"
  "CMakeFiles/sns_store.dir/consistent_hash.cc.o.d"
  "CMakeFiles/sns_store.dir/kvstore.cc.o"
  "CMakeFiles/sns_store.dir/kvstore.cc.o.d"
  "libsns_store.a"
  "libsns_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sns_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
