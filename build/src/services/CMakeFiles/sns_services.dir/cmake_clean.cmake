file(REMOVE_RECURSE
  "CMakeFiles/sns_services.dir/extras/culture_page.cc.o"
  "CMakeFiles/sns_services.dir/extras/culture_page.cc.o.d"
  "CMakeFiles/sns_services.dir/extras/keyword_filter.cc.o"
  "CMakeFiles/sns_services.dir/extras/keyword_filter.cc.o.d"
  "CMakeFiles/sns_services.dir/extras/metasearch.cc.o"
  "CMakeFiles/sns_services.dir/extras/metasearch.cc.o.d"
  "CMakeFiles/sns_services.dir/extras/palm_transform.cc.o"
  "CMakeFiles/sns_services.dir/extras/palm_transform.cc.o.d"
  "CMakeFiles/sns_services.dir/extras/rewebber.cc.o"
  "CMakeFiles/sns_services.dir/extras/rewebber.cc.o.d"
  "CMakeFiles/sns_services.dir/hotbot/hotbot.cc.o"
  "CMakeFiles/sns_services.dir/hotbot/hotbot.cc.o.d"
  "CMakeFiles/sns_services.dir/hotbot/hotbot_logic.cc.o"
  "CMakeFiles/sns_services.dir/hotbot/hotbot_logic.cc.o.d"
  "CMakeFiles/sns_services.dir/hotbot/inverted_index.cc.o"
  "CMakeFiles/sns_services.dir/hotbot/inverted_index.cc.o.d"
  "CMakeFiles/sns_services.dir/hotbot/search_worker.cc.o"
  "CMakeFiles/sns_services.dir/hotbot/search_worker.cc.o.d"
  "CMakeFiles/sns_services.dir/transend/distillers.cc.o"
  "CMakeFiles/sns_services.dir/transend/distillers.cc.o.d"
  "CMakeFiles/sns_services.dir/transend/transend.cc.o"
  "CMakeFiles/sns_services.dir/transend/transend.cc.o.d"
  "CMakeFiles/sns_services.dir/transend/transend_logic.cc.o"
  "CMakeFiles/sns_services.dir/transend/transend_logic.cc.o.d"
  "libsns_services.a"
  "libsns_services.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sns_services.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
