# Empty dependencies file for sns_services.
# This may be replaced when dependencies are built.
