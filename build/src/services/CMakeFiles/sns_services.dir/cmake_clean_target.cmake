file(REMOVE_RECURSE
  "libsns_services.a"
)
