
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/services/extras/culture_page.cc" "src/services/CMakeFiles/sns_services.dir/extras/culture_page.cc.o" "gcc" "src/services/CMakeFiles/sns_services.dir/extras/culture_page.cc.o.d"
  "/root/repo/src/services/extras/keyword_filter.cc" "src/services/CMakeFiles/sns_services.dir/extras/keyword_filter.cc.o" "gcc" "src/services/CMakeFiles/sns_services.dir/extras/keyword_filter.cc.o.d"
  "/root/repo/src/services/extras/metasearch.cc" "src/services/CMakeFiles/sns_services.dir/extras/metasearch.cc.o" "gcc" "src/services/CMakeFiles/sns_services.dir/extras/metasearch.cc.o.d"
  "/root/repo/src/services/extras/palm_transform.cc" "src/services/CMakeFiles/sns_services.dir/extras/palm_transform.cc.o" "gcc" "src/services/CMakeFiles/sns_services.dir/extras/palm_transform.cc.o.d"
  "/root/repo/src/services/extras/rewebber.cc" "src/services/CMakeFiles/sns_services.dir/extras/rewebber.cc.o" "gcc" "src/services/CMakeFiles/sns_services.dir/extras/rewebber.cc.o.d"
  "/root/repo/src/services/hotbot/hotbot.cc" "src/services/CMakeFiles/sns_services.dir/hotbot/hotbot.cc.o" "gcc" "src/services/CMakeFiles/sns_services.dir/hotbot/hotbot.cc.o.d"
  "/root/repo/src/services/hotbot/hotbot_logic.cc" "src/services/CMakeFiles/sns_services.dir/hotbot/hotbot_logic.cc.o" "gcc" "src/services/CMakeFiles/sns_services.dir/hotbot/hotbot_logic.cc.o.d"
  "/root/repo/src/services/hotbot/inverted_index.cc" "src/services/CMakeFiles/sns_services.dir/hotbot/inverted_index.cc.o" "gcc" "src/services/CMakeFiles/sns_services.dir/hotbot/inverted_index.cc.o.d"
  "/root/repo/src/services/hotbot/search_worker.cc" "src/services/CMakeFiles/sns_services.dir/hotbot/search_worker.cc.o" "gcc" "src/services/CMakeFiles/sns_services.dir/hotbot/search_worker.cc.o.d"
  "/root/repo/src/services/transend/distillers.cc" "src/services/CMakeFiles/sns_services.dir/transend/distillers.cc.o" "gcc" "src/services/CMakeFiles/sns_services.dir/transend/distillers.cc.o.d"
  "/root/repo/src/services/transend/transend.cc" "src/services/CMakeFiles/sns_services.dir/transend/transend.cc.o" "gcc" "src/services/CMakeFiles/sns_services.dir/transend/transend.cc.o.d"
  "/root/repo/src/services/transend/transend_logic.cc" "src/services/CMakeFiles/sns_services.dir/transend/transend_logic.cc.o" "gcc" "src/services/CMakeFiles/sns_services.dir/transend/transend_logic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sns/CMakeFiles/sns_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/sns_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/tacc/CMakeFiles/sns_tacc.dir/DependInfo.cmake"
  "/root/repo/build/src/content/CMakeFiles/sns_content.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sns_util.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/sns_store.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/sns_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sns_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sns_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
