file(REMOVE_RECURSE
  "libsns_tacc.a"
)
