file(REMOVE_RECURSE
  "CMakeFiles/sns_tacc.dir/pipeline.cc.o"
  "CMakeFiles/sns_tacc.dir/pipeline.cc.o.d"
  "CMakeFiles/sns_tacc.dir/profile.cc.o"
  "CMakeFiles/sns_tacc.dir/profile.cc.o.d"
  "CMakeFiles/sns_tacc.dir/registry.cc.o"
  "CMakeFiles/sns_tacc.dir/registry.cc.o.d"
  "CMakeFiles/sns_tacc.dir/worker.cc.o"
  "CMakeFiles/sns_tacc.dir/worker.cc.o.d"
  "libsns_tacc.a"
  "libsns_tacc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sns_tacc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
