
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tacc/pipeline.cc" "src/tacc/CMakeFiles/sns_tacc.dir/pipeline.cc.o" "gcc" "src/tacc/CMakeFiles/sns_tacc.dir/pipeline.cc.o.d"
  "/root/repo/src/tacc/profile.cc" "src/tacc/CMakeFiles/sns_tacc.dir/profile.cc.o" "gcc" "src/tacc/CMakeFiles/sns_tacc.dir/profile.cc.o.d"
  "/root/repo/src/tacc/registry.cc" "src/tacc/CMakeFiles/sns_tacc.dir/registry.cc.o" "gcc" "src/tacc/CMakeFiles/sns_tacc.dir/registry.cc.o.d"
  "/root/repo/src/tacc/worker.cc" "src/tacc/CMakeFiles/sns_tacc.dir/worker.cc.o" "gcc" "src/tacc/CMakeFiles/sns_tacc.dir/worker.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/content/CMakeFiles/sns_content.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sns_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
