# Empty dependencies file for sns_tacc.
# This may be replaced when dependencies are built.
