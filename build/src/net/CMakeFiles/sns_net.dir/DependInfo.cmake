
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/link.cc" "src/net/CMakeFiles/sns_net.dir/link.cc.o" "gcc" "src/net/CMakeFiles/sns_net.dir/link.cc.o.d"
  "/root/repo/src/net/message.cc" "src/net/CMakeFiles/sns_net.dir/message.cc.o" "gcc" "src/net/CMakeFiles/sns_net.dir/message.cc.o.d"
  "/root/repo/src/net/san.cc" "src/net/CMakeFiles/sns_net.dir/san.cc.o" "gcc" "src/net/CMakeFiles/sns_net.dir/san.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/sns_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sns_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
