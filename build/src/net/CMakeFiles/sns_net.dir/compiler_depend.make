# Empty compiler generated dependencies file for sns_net.
# This may be replaced when dependencies are built.
