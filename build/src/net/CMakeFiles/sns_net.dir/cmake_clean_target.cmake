file(REMOVE_RECURSE
  "libsns_net.a"
)
