file(REMOVE_RECURSE
  "CMakeFiles/sns_net.dir/link.cc.o"
  "CMakeFiles/sns_net.dir/link.cc.o.d"
  "CMakeFiles/sns_net.dir/message.cc.o"
  "CMakeFiles/sns_net.dir/message.cc.o.d"
  "CMakeFiles/sns_net.dir/san.cc.o"
  "CMakeFiles/sns_net.dir/san.cc.o.d"
  "libsns_net.a"
  "libsns_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sns_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
