# Empty compiler generated dependencies file for sns_core.
# This may be replaced when dependencies are built.
