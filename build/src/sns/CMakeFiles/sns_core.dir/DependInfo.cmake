
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sns/cache_node.cc" "src/sns/CMakeFiles/sns_core.dir/cache_node.cc.o" "gcc" "src/sns/CMakeFiles/sns_core.dir/cache_node.cc.o.d"
  "/root/repo/src/sns/front_end.cc" "src/sns/CMakeFiles/sns_core.dir/front_end.cc.o" "gcc" "src/sns/CMakeFiles/sns_core.dir/front_end.cc.o.d"
  "/root/repo/src/sns/manager.cc" "src/sns/CMakeFiles/sns_core.dir/manager.cc.o" "gcc" "src/sns/CMakeFiles/sns_core.dir/manager.cc.o.d"
  "/root/repo/src/sns/manager_stub.cc" "src/sns/CMakeFiles/sns_core.dir/manager_stub.cc.o" "gcc" "src/sns/CMakeFiles/sns_core.dir/manager_stub.cc.o.d"
  "/root/repo/src/sns/messages.cc" "src/sns/CMakeFiles/sns_core.dir/messages.cc.o" "gcc" "src/sns/CMakeFiles/sns_core.dir/messages.cc.o.d"
  "/root/repo/src/sns/monitor.cc" "src/sns/CMakeFiles/sns_core.dir/monitor.cc.o" "gcc" "src/sns/CMakeFiles/sns_core.dir/monitor.cc.o.d"
  "/root/repo/src/sns/profile_db.cc" "src/sns/CMakeFiles/sns_core.dir/profile_db.cc.o" "gcc" "src/sns/CMakeFiles/sns_core.dir/profile_db.cc.o.d"
  "/root/repo/src/sns/system.cc" "src/sns/CMakeFiles/sns_core.dir/system.cc.o" "gcc" "src/sns/CMakeFiles/sns_core.dir/system.cc.o.d"
  "/root/repo/src/sns/worker_process.cc" "src/sns/CMakeFiles/sns_core.dir/worker_process.cc.o" "gcc" "src/sns/CMakeFiles/sns_core.dir/worker_process.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cluster/CMakeFiles/sns_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sns_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sns_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/sns_store.dir/DependInfo.cmake"
  "/root/repo/build/src/tacc/CMakeFiles/sns_tacc.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sns_util.dir/DependInfo.cmake"
  "/root/repo/build/src/content/CMakeFiles/sns_content.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
