file(REMOVE_RECURSE
  "libsns_core.a"
)
