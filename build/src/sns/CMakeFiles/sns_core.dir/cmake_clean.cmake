file(REMOVE_RECURSE
  "CMakeFiles/sns_core.dir/cache_node.cc.o"
  "CMakeFiles/sns_core.dir/cache_node.cc.o.d"
  "CMakeFiles/sns_core.dir/front_end.cc.o"
  "CMakeFiles/sns_core.dir/front_end.cc.o.d"
  "CMakeFiles/sns_core.dir/manager.cc.o"
  "CMakeFiles/sns_core.dir/manager.cc.o.d"
  "CMakeFiles/sns_core.dir/manager_stub.cc.o"
  "CMakeFiles/sns_core.dir/manager_stub.cc.o.d"
  "CMakeFiles/sns_core.dir/messages.cc.o"
  "CMakeFiles/sns_core.dir/messages.cc.o.d"
  "CMakeFiles/sns_core.dir/monitor.cc.o"
  "CMakeFiles/sns_core.dir/monitor.cc.o.d"
  "CMakeFiles/sns_core.dir/profile_db.cc.o"
  "CMakeFiles/sns_core.dir/profile_db.cc.o.d"
  "CMakeFiles/sns_core.dir/system.cc.o"
  "CMakeFiles/sns_core.dir/system.cc.o.d"
  "CMakeFiles/sns_core.dir/worker_process.cc.o"
  "CMakeFiles/sns_core.dir/worker_process.cc.o.d"
  "libsns_core.a"
  "libsns_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sns_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
