# Empty dependencies file for sns_util.
# This may be replaced when dependencies are built.
