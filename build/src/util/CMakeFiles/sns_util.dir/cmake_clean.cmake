file(REMOVE_RECURSE
  "CMakeFiles/sns_util.dir/logging.cc.o"
  "CMakeFiles/sns_util.dir/logging.cc.o.d"
  "CMakeFiles/sns_util.dir/rng.cc.o"
  "CMakeFiles/sns_util.dir/rng.cc.o.d"
  "CMakeFiles/sns_util.dir/stats.cc.o"
  "CMakeFiles/sns_util.dir/stats.cc.o.d"
  "CMakeFiles/sns_util.dir/status.cc.o"
  "CMakeFiles/sns_util.dir/status.cc.o.d"
  "CMakeFiles/sns_util.dir/strings.cc.o"
  "CMakeFiles/sns_util.dir/strings.cc.o.d"
  "CMakeFiles/sns_util.dir/time.cc.o"
  "CMakeFiles/sns_util.dir/time.cc.o.d"
  "CMakeFiles/sns_util.dir/token_bucket.cc.o"
  "CMakeFiles/sns_util.dir/token_bucket.cc.o.d"
  "libsns_util.a"
  "libsns_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sns_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
