file(REMOVE_RECURSE
  "libsns_util.a"
)
