# Empty compiler generated dependencies file for sns_workload.
# This may be replaced when dependencies are built.
