file(REMOVE_RECURSE
  "CMakeFiles/sns_workload.dir/content_universe.cc.o"
  "CMakeFiles/sns_workload.dir/content_universe.cc.o.d"
  "CMakeFiles/sns_workload.dir/origin_server.cc.o"
  "CMakeFiles/sns_workload.dir/origin_server.cc.o.d"
  "CMakeFiles/sns_workload.dir/playback.cc.o"
  "CMakeFiles/sns_workload.dir/playback.cc.o.d"
  "CMakeFiles/sns_workload.dir/size_model.cc.o"
  "CMakeFiles/sns_workload.dir/size_model.cc.o.d"
  "CMakeFiles/sns_workload.dir/trace.cc.o"
  "CMakeFiles/sns_workload.dir/trace.cc.o.d"
  "libsns_workload.a"
  "libsns_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sns_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
