file(REMOVE_RECURSE
  "libsns_workload.a"
)
