file(REMOVE_RECURSE
  "libsns_sim.a"
)
