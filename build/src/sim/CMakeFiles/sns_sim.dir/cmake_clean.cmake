file(REMOVE_RECURSE
  "CMakeFiles/sns_sim.dir/simulator.cc.o"
  "CMakeFiles/sns_sim.dir/simulator.cc.o.d"
  "CMakeFiles/sns_sim.dir/timer.cc.o"
  "CMakeFiles/sns_sim.dir/timer.cc.o.d"
  "libsns_sim.a"
  "libsns_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sns_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
