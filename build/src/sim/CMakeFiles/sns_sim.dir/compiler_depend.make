# Empty compiler generated dependencies file for sns_sim.
# This may be replaced when dependencies are built.
