# Empty compiler generated dependencies file for sns_content.
# This may be replaced when dependencies are built.
