
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/content/gif_codec.cc" "src/content/CMakeFiles/sns_content.dir/gif_codec.cc.o" "gcc" "src/content/CMakeFiles/sns_content.dir/gif_codec.cc.o.d"
  "/root/repo/src/content/html.cc" "src/content/CMakeFiles/sns_content.dir/html.cc.o" "gcc" "src/content/CMakeFiles/sns_content.dir/html.cc.o.d"
  "/root/repo/src/content/image.cc" "src/content/CMakeFiles/sns_content.dir/image.cc.o" "gcc" "src/content/CMakeFiles/sns_content.dir/image.cc.o.d"
  "/root/repo/src/content/jpeg_codec.cc" "src/content/CMakeFiles/sns_content.dir/jpeg_codec.cc.o" "gcc" "src/content/CMakeFiles/sns_content.dir/jpeg_codec.cc.o.d"
  "/root/repo/src/content/mime.cc" "src/content/CMakeFiles/sns_content.dir/mime.cc.o" "gcc" "src/content/CMakeFiles/sns_content.dir/mime.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sns_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
