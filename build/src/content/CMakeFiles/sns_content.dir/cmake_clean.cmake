file(REMOVE_RECURSE
  "CMakeFiles/sns_content.dir/gif_codec.cc.o"
  "CMakeFiles/sns_content.dir/gif_codec.cc.o.d"
  "CMakeFiles/sns_content.dir/html.cc.o"
  "CMakeFiles/sns_content.dir/html.cc.o.d"
  "CMakeFiles/sns_content.dir/image.cc.o"
  "CMakeFiles/sns_content.dir/image.cc.o.d"
  "CMakeFiles/sns_content.dir/jpeg_codec.cc.o"
  "CMakeFiles/sns_content.dir/jpeg_codec.cc.o.d"
  "CMakeFiles/sns_content.dir/mime.cc.o"
  "CMakeFiles/sns_content.dir/mime.cc.o.d"
  "libsns_content.a"
  "libsns_content.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sns_content.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
