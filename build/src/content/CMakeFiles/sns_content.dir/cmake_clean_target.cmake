file(REMOVE_RECURSE
  "libsns_content.a"
)
