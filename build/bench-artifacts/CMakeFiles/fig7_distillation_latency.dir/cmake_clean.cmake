file(REMOVE_RECURSE
  "../bench/fig7_distillation_latency"
  "../bench/fig7_distillation_latency.pdb"
  "CMakeFiles/fig7_distillation_latency.dir/fig7_distillation_latency.cc.o"
  "CMakeFiles/fig7_distillation_latency.dir/fig7_distillation_latency.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_distillation_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
