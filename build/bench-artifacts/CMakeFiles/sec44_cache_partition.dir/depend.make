# Empty dependencies file for sec44_cache_partition.
# This may be replaced when dependencies are built.
