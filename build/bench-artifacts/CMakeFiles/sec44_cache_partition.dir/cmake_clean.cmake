file(REMOVE_RECURSE
  "../bench/sec44_cache_partition"
  "../bench/sec44_cache_partition.pdb"
  "CMakeFiles/sec44_cache_partition.dir/sec44_cache_partition.cc.o"
  "CMakeFiles/sec44_cache_partition.dir/sec44_cache_partition.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec44_cache_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
