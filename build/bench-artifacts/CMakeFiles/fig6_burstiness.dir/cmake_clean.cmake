file(REMOVE_RECURSE
  "../bench/fig6_burstiness"
  "../bench/fig6_burstiness.pdb"
  "CMakeFiles/fig6_burstiness.dir/fig6_burstiness.cc.o"
  "CMakeFiles/fig6_burstiness.dir/fig6_burstiness.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_burstiness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
