# Empty compiler generated dependencies file for fig6_burstiness.
# This may be replaced when dependencies are built.
