file(REMOVE_RECURSE
  "../bench/fig8_load_balancing"
  "../bench/fig8_load_balancing.pdb"
  "CMakeFiles/fig8_load_balancing.dir/fig8_load_balancing.cc.o"
  "CMakeFiles/fig8_load_balancing.dir/fig8_load_balancing.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_load_balancing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
