# Empty dependencies file for fig8_load_balancing.
# This may be replaced when dependencies are built.
