file(REMOVE_RECURSE
  "../bench/sec52_economics"
  "../bench/sec52_economics.pdb"
  "CMakeFiles/sec52_economics.dir/sec52_economics.cc.o"
  "CMakeFiles/sec52_economics.dir/sec52_economics.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec52_economics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
