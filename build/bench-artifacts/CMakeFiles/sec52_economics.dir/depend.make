# Empty dependencies file for sec52_economics.
# This may be replaced when dependencies are built.
