# Empty dependencies file for replay_production.
# This may be replaced when dependencies are built.
