file(REMOVE_RECURSE
  "../bench/replay_production"
  "../bench/replay_production.pdb"
  "CMakeFiles/replay_production.dir/replay_production.cc.o"
  "CMakeFiles/replay_production.dir/replay_production.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replay_production.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
