# Empty compiler generated dependencies file for fig5_content_lengths.
# This may be replaced when dependencies are built.
