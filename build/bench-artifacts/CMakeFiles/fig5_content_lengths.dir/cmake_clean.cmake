file(REMOVE_RECURSE
  "../bench/fig5_content_lengths"
  "../bench/fig5_content_lengths.pdb"
  "CMakeFiles/fig5_content_lengths.dir/fig5_content_lengths.cc.o"
  "CMakeFiles/fig5_content_lengths.dir/fig5_content_lengths.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_content_lengths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
