file(REMOVE_RECURSE
  "../bench/table2_scalability"
  "../bench/table2_scalability.pdb"
  "CMakeFiles/table2_scalability.dir/table2_scalability.cc.o"
  "CMakeFiles/table2_scalability.dir/table2_scalability.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
