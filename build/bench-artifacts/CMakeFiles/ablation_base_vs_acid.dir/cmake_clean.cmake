file(REMOVE_RECURSE
  "../bench/ablation_base_vs_acid"
  "../bench/ablation_base_vs_acid.pdb"
  "CMakeFiles/ablation_base_vs_acid.dir/ablation_base_vs_acid.cc.o"
  "CMakeFiles/ablation_base_vs_acid.dir/ablation_base_vs_acid.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_base_vs_acid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
