# Empty compiler generated dependencies file for ablation_base_vs_acid.
# This may be replaced when dependencies are built.
