file(REMOVE_RECURSE
  "../bench/sec46_manager_capacity"
  "../bench/sec46_manager_capacity.pdb"
  "CMakeFiles/sec46_manager_capacity.dir/sec46_manager_capacity.cc.o"
  "CMakeFiles/sec46_manager_capacity.dir/sec46_manager_capacity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec46_manager_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
