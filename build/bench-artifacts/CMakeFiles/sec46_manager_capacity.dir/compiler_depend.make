# Empty compiler generated dependencies file for sec46_manager_capacity.
# This may be replaced when dependencies are built.
