# Empty compiler generated dependencies file for ablation_fast_sockets.
# This may be replaced when dependencies are built.
