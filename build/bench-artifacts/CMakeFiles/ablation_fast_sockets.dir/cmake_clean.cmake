file(REMOVE_RECURSE
  "../bench/ablation_fast_sockets"
  "../bench/ablation_fast_sockets.pdb"
  "CMakeFiles/ablation_fast_sockets.dir/ablation_fast_sockets.cc.o"
  "CMakeFiles/ablation_fast_sockets.dir/ablation_fast_sockets.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fast_sockets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
