file(REMOVE_RECURSE
  "../bench/micro_substrate"
  "../bench/micro_substrate.pdb"
  "CMakeFiles/micro_substrate.dir/micro_substrate.cc.o"
  "CMakeFiles/micro_substrate.dir/micro_substrate.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_substrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
