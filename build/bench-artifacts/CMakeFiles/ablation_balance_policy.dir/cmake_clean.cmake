file(REMOVE_RECURSE
  "../bench/ablation_balance_policy"
  "../bench/ablation_balance_policy.pdb"
  "CMakeFiles/ablation_balance_policy.dir/ablation_balance_policy.cc.o"
  "CMakeFiles/ablation_balance_policy.dir/ablation_balance_policy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_balance_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
