file(REMOVE_RECURSE
  "../bench/ablation_threshold"
  "../bench/ablation_threshold.pdb"
  "CMakeFiles/ablation_threshold.dir/ablation_threshold.cc.o"
  "CMakeFiles/ablation_threshold.dir/ablation_threshold.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
