file(REMOVE_RECURSE
  "../bench/sec46_san_saturation"
  "../bench/sec46_san_saturation.pdb"
  "CMakeFiles/sec46_san_saturation.dir/sec46_san_saturation.cc.o"
  "CMakeFiles/sec46_san_saturation.dir/sec46_san_saturation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec46_san_saturation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
