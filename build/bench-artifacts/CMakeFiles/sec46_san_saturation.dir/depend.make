# Empty dependencies file for sec46_san_saturation.
# This may be replaced when dependencies are built.
