// Baseline-diff gate for BENCH artifacts (the perf side of matrix-smoke).
//
//   bench_diff <baseline.json | baseline-dir> <BENCH_*.json ...>
//
// Each artifact must carry a "matrix" section ({"cell":...,"metrics":{...}},
// emitted by src/scenario); its metrics are compared against the committed
// baseline — <baseline-dir>/<cell>.json, or the single baseline file — under
// per-metric tolerance rules:
//
//   latency_p50_s   current <= base * 1.35 + 0.05 s
//   latency_p99_s   current <= base * 1.35 + 0.10 s
//   goodput         current >= base * 0.90   (purely relative: goodput is a
//                   ratio of integer request counts, so runs are exactly
//                   reproducible and even a tiny base stays gateable — a 20%
//                   regression trips in every cell, saturated ones included)
//   hit_rate        current >= base - 0.10
//   recovery_s      current <= base * 1.5 + 2.0 s
//   yield           current >= base * 0.90   (same relative floor as goodput:
//                   answered/offered over integer counts, exactly reproducible)
//   harvest         current >= base * 0.90   (mean answer completeness; a shift
//                   toward approximate/degraded answers trips the gate)
//
// (upper-bounded metrics may improve freely; lower-bounded ones likewise).
// Other metrics in the baseline (sent, completed, ...) are informational.
// Any regression, missing metric, NaN/Inf value, or cell-name mismatch exits
// nonzero. Like validate_bench_artifact, this is dependency-free: a minimal
// strict JSON reader, no third-party parser. The number scanner enforces the
// JSON grammar, so "NaN"/"Infinity" (which strtod would happily accept) are
// malformed input here.

#include <sys/stat.h>

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

namespace {

struct MetricsDoc {
  std::string cell;
  std::map<std::string, double> metrics;
  double schema_version = -1;
};

struct Parser {
  const char* p;
  const char* end;
  std::string error;

  explicit Parser(const std::string& text)
      : p(text.data()), end(text.data() + text.size()) {}

  bool Fail(const std::string& what) {
    if (error.empty()) {
      error = what;
    }
    return false;
  }

  void SkipWs() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r')) {
      ++p;
    }
  }

  bool Consume(char c) {
    SkipWs();
    if (p < end && *p == c) {
      ++p;
      return true;
    }
    return Fail(std::string("expected '") + c + "'");
  }

  bool ParseString(std::string* out) {
    SkipWs();
    if (p >= end || *p != '"') {
      return Fail("expected string");
    }
    ++p;
    while (p < end && *p != '"') {
      if (*p == '\\') {
        ++p;
        if (p >= end) {
          return Fail("truncated escape");
        }
        if (*p == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++p;
            if (p >= end || !isxdigit(static_cast<unsigned char>(*p))) {
              return Fail("bad \\u escape");
            }
          }
          if (out != nullptr) out->push_back('?');
        } else if (std::strchr("\"\\/bfnrt", *p) != nullptr) {
          if (out != nullptr) out->push_back(*p);
        } else {
          return Fail("bad escape character");
        }
        ++p;
      } else {
        if (out != nullptr) out->push_back(*p);
        ++p;
      }
    }
    if (p >= end) {
      return Fail("unterminated string");
    }
    ++p;
    return true;
  }

  // Strict JSON number: '-'? int frac? exp?, then a finiteness check. Rejects
  // the NaN/Inf spellings strtod accepts.
  bool ParseNumber(double* out) {
    SkipWs();
    const char* start = p;
    if (p < end && *p == '-') ++p;
    if (p >= end || !isdigit(static_cast<unsigned char>(*p))) {
      return Fail("malformed number");
    }
    while (p < end && isdigit(static_cast<unsigned char>(*p))) ++p;
    if (p < end && *p == '.') {
      ++p;
      if (p >= end || !isdigit(static_cast<unsigned char>(*p))) {
        return Fail("malformed number fraction");
      }
      while (p < end && isdigit(static_cast<unsigned char>(*p))) ++p;
    }
    if (p < end && (*p == 'e' || *p == 'E')) {
      ++p;
      if (p < end && (*p == '+' || *p == '-')) ++p;
      if (p >= end || !isdigit(static_cast<unsigned char>(*p))) {
        return Fail("malformed number exponent");
      }
      while (p < end && isdigit(static_cast<unsigned char>(*p))) ++p;
    }
    double v = std::strtod(std::string(start, p).c_str(), nullptr);
    if (!std::isfinite(v)) {
      return Fail("non-finite number");
    }
    if (out != nullptr) {
      *out = v;
    }
    return true;
  }

  bool Literal(const char* word) {
    SkipWs();
    for (const char* w = word; *w != '\0'; ++w, ++p) {
      if (p >= end || *p != *w) {
        return Fail(std::string("expected '") + word + "'");
      }
    }
    return true;
  }

  bool SkipValue() {
    SkipWs();
    if (p >= end) {
      return Fail("unexpected end of input");
    }
    switch (*p) {
      case '{': {
        ++p;
        SkipWs();
        if (p < end && *p == '}') {
          ++p;
          return true;
        }
        while (true) {
          if (!ParseString(nullptr) || !Consume(':') || !SkipValue()) {
            return false;
          }
          SkipWs();
          if (p < end && *p == ',') {
            ++p;
            continue;
          }
          return Consume('}');
        }
      }
      case '[': {
        ++p;
        SkipWs();
        if (p < end && *p == ']') {
          ++p;
          return true;
        }
        while (true) {
          if (!SkipValue()) {
            return false;
          }
          SkipWs();
          if (p < end && *p == ',') {
            ++p;
            continue;
          }
          return Consume(']');
        }
      }
      case '"':
        return ParseString(nullptr);
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return ParseNumber(nullptr);
    }
  }

  // {"metric": <number>, ...} — every value must be a strict finite number.
  bool ParseMetricsObject(std::map<std::string, double>* out) {
    if (!Consume('{')) {
      return false;
    }
    SkipWs();
    if (p < end && *p == '}') {
      ++p;
      return true;
    }
    while (true) {
      std::string key;
      double value = 0;
      if (!ParseString(&key) || !Consume(':') || !ParseNumber(&value)) {
        return false;
      }
      (*out)[key] = value;
      SkipWs();
      if (p < end && *p == ',') {
        ++p;
        continue;
      }
      return Consume('}');
    }
  }

  // Object carrying "cell" / "metrics" / "schema_version"; other keys skipped.
  bool ParseCaptureObject(MetricsDoc* doc) {
    if (!Consume('{')) {
      return false;
    }
    SkipWs();
    if (p < end && *p == '}') {
      ++p;
      return true;
    }
    while (true) {
      std::string key;
      if (!ParseString(&key) || !Consume(':')) {
        return false;
      }
      if (key == "cell") {
        if (!ParseString(&doc->cell)) {
          return false;
        }
      } else if (key == "metrics") {
        if (!ParseMetricsObject(&doc->metrics)) {
          return false;
        }
      } else if (key == "schema_version") {
        if (!ParseNumber(&doc->schema_version)) {
          return false;
        }
      } else if (!SkipValue()) {
        return false;
      }
      SkipWs();
      if (p < end && *p == ',') {
        ++p;
        continue;
      }
      return Consume('}');
    }
  }
};

bool ReadFile(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return false;
  }
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out->append(buf, n);
  }
  std::fclose(f);
  return true;
}

// from_artifact: capture the top-level "matrix" section and skip the rest of
// the (large) artifact. Otherwise the document itself is the capture object
// (the baseline-file layout).
bool ParseDoc(const std::string& text, bool from_artifact, MetricsDoc* doc,
              std::string* error) {
  Parser parser(text);
  if (!from_artifact) {
    if (!parser.ParseCaptureObject(doc)) {
      *error = parser.error;
      return false;
    }
  } else {
    if (!parser.Consume('{')) {
      *error = "top level is not a JSON object";
      return false;
    }
    bool saw_matrix = false;
    while (true) {
      std::string key;
      if (!parser.ParseString(&key) || !parser.Consume(':')) {
        *error = "malformed top-level key: " + parser.error;
        return false;
      }
      bool ok = key == "matrix" ? (saw_matrix = true, parser.ParseCaptureObject(doc))
                                : parser.SkipValue();
      if (!ok) {
        *error = "malformed value for \"" + key + "\": " + parser.error;
        return false;
      }
      parser.SkipWs();
      if (parser.p < parser.end && *parser.p == ',') {
        ++parser.p;
        continue;
      }
      if (!parser.Consume('}')) {
        *error = "unterminated top-level object";
        return false;
      }
      break;
    }
    if (!saw_matrix) {
      *error = "artifact has no \"matrix\" section";
      return false;
    }
  }
  if (doc->cell.empty()) {
    *error = "missing \"cell\"";
    return false;
  }
  if (doc->metrics.empty()) {
    *error = "missing or empty \"metrics\"";
    return false;
  }
  return true;
}

// Gated tolerance rules. Returns true when `metric` is gated, storing the
// acceptance verdict and the limit that applied.
bool GateMetric(const std::string& metric, double base, double current, bool* ok,
                double* limit, const char** direction) {
  if (metric == "latency_p50_s") {
    *limit = base * 1.35 + 0.05;
    *ok = current <= *limit;
    *direction = "<=";
    return true;
  }
  if (metric == "latency_p99_s") {
    *limit = base * 1.35 + 0.10;
    *ok = current <= *limit;
    *direction = "<=";
    return true;
  }
  if (metric == "goodput" || metric == "yield" || metric == "harvest") {
    *limit = base * 0.90;
    *ok = current >= *limit;
    *direction = ">=";
    return true;
  }
  if (metric == "hit_rate") {
    *limit = base - 0.10;
    *ok = current >= *limit;
    *direction = ">=";
    return true;
  }
  if (metric == "recovery_s") {
    *limit = base * 1.5 + 2.0;
    *ok = current <= *limit;
    *direction = "<=";
    return true;
  }
  return false;
}

bool IsDirectory(const std::string& path) {
  struct stat st;
  return stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

int DiffOne(const std::string& baseline_arg, bool baseline_is_dir,
            const std::string& artifact_path) {
  std::string text;
  if (!ReadFile(artifact_path, &text)) {
    std::fprintf(stderr, "%s: MISSING\n", artifact_path.c_str());
    return 1;
  }
  MetricsDoc current;
  std::string error;
  if (!ParseDoc(text, /*from_artifact=*/true, &current, &error)) {
    std::fprintf(stderr, "%s: INVALID: %s\n", artifact_path.c_str(), error.c_str());
    return 1;
  }

  std::string baseline_path =
      baseline_is_dir ? baseline_arg + "/" + current.cell + ".json" : baseline_arg;
  std::string baseline_text;
  if (!ReadFile(baseline_path, &baseline_text)) {
    std::fprintf(stderr, "%s: no baseline %s (bless it with tools/bless_baseline)\n",
                 artifact_path.c_str(), baseline_path.c_str());
    return 1;
  }
  MetricsDoc baseline;
  if (!ParseDoc(baseline_text, /*from_artifact=*/false, &baseline, &error)) {
    std::fprintf(stderr, "%s: INVALID baseline: %s\n", baseline_path.c_str(),
                 error.c_str());
    return 1;
  }
  if (baseline.schema_version != 2) {
    std::fprintf(stderr,
                 "%s: baseline schema_version is not 2 (re-bless with "
                 "tools/bless_baseline)\n",
                 baseline_path.c_str());
    return 1;
  }
  if (baseline.cell != current.cell) {
    std::fprintf(stderr, "%s: cell \"%s\" does not match baseline cell \"%s\"\n",
                 artifact_path.c_str(), current.cell.c_str(), baseline.cell.c_str());
    return 1;
  }

  int regressions = 0;
  std::printf("%s (cell %s):\n", artifact_path.c_str(), current.cell.c_str());
  for (const auto& [metric, base] : baseline.metrics) {
    auto it = current.metrics.find(metric);
    bool ok = false;
    double limit = 0;
    const char* direction = "";
    if (!GateMetric(metric, base, 0, &ok, &limit, &direction)) {
      continue;  // Informational metric; not gated.
    }
    if (it == current.metrics.end()) {
      std::printf("  %-16s REGRESSION: metric missing from artifact\n", metric.c_str());
      ++regressions;
      continue;
    }
    GateMetric(metric, base, it->second, &ok, &limit, &direction);
    std::printf("  %-16s %11.6g vs base %11.6g (need %s %.6g) %s\n", metric.c_str(),
                it->second, base, direction, limit, ok ? "ok" : "REGRESSION");
    if (!ok) {
      ++regressions;
    }
  }
  return regressions > 0 ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "usage: %s <baseline.json|baseline-dir> <BENCH_*.json ...>\n",
                 argv[0]);
    return 2;
  }
  std::string baseline_arg = argv[1];
  bool baseline_is_dir = IsDirectory(baseline_arg);
  int bad = 0;
  for (int i = 2; i < argc; ++i) {
    bad += DiffOne(baseline_arg, baseline_is_dir, argv[i]);
  }
  if (bad > 0) {
    std::fprintf(stderr, "%d artifact(s) regressed\n", bad);
    return 1;
  }
  return 0;
}
