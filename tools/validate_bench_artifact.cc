// Validates a BENCH_<name>.json run artifact against the uniform schema every
// bench binary emits (see bench/bench_common.h::DumpRunArtifact):
//
//   {"meta":{"schema_version":2,"bench":<non-empty string>,"time_ns":<int>},
//    "snapshot":{...},"timeseries":{...},"critical_path":{...},
//    "availability":{...},"profile":{...},"traces":{...}}
//
// Used by the perf-smoke ctest label: each short-mode bench run is a fixture
// setup, and this validator is the check that the artifact exists, parses, and
// carries every top-level section. Exit 0 on success; non-zero with a message
// on any missing/malformed artifact.
//
// The profile-smoke label additionally gates the profiler's quality figures:
//   --min-profile-coverage X   require profile.coverage >= X (named root zones
//                              must attribute at least this wall fraction)
//   --max-profile-overhead Y   require profile.self_overhead <= Y (measured
//                              profiler cost bound as a wall fraction)
// Both gates also require profile.enabled == true (an artifact from a run that
// never enabled the profiler carries no evidence either way).
//
// The parser below is a minimal recursive-descent JSON reader — just enough to
// verify well-formedness and pull out the handful of fields the schema pins
// down. No third-party JSON dependency.

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

namespace {

struct Parser {
  const char* p;
  const char* end;
  std::string error;

  explicit Parser(const std::string& text)
      : p(text.data()), end(text.data() + text.size()) {}

  bool Fail(const std::string& what) {
    if (error.empty()) {
      error = what;
    }
    return false;
  }

  void SkipWs() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r')) {
      ++p;
    }
  }

  bool Consume(char c) {
    SkipWs();
    if (p < end && *p == c) {
      ++p;
      return true;
    }
    return Fail(std::string("expected '") + c + "'");
  }

  bool ParseString(std::string* out) {
    SkipWs();
    if (p >= end || *p != '"') {
      return Fail("expected string");
    }
    ++p;
    while (p < end && *p != '"') {
      if (*p == '\\') {
        ++p;
        if (p >= end) {
          return Fail("truncated escape");
        }
        switch (*p) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            for (int i = 0; i < 4; ++i) {
              ++p;
              if (p >= end || !isxdigit(static_cast<unsigned char>(*p))) {
                return Fail("bad \\u escape");
              }
            }
            out->push_back('?');  // Validation only; code point not needed.
            break;
          }
          default:
            return Fail("bad escape character");
        }
        ++p;
      } else {
        out->push_back(*p);
        ++p;
      }
    }
    if (p >= end) {
      return Fail("unterminated string");
    }
    ++p;  // closing quote
    return true;
  }

  // Validates any JSON value. When `number_out`/`string_out` are non-null and
  // the value is of that type, the parsed value is stored there.
  bool ParseValue(double* number_out, std::string* string_out);

  bool ParseObject(std::map<std::string, std::string>* keys_seen) {
    if (!Consume('{')) {
      return false;
    }
    SkipWs();
    if (p < end && *p == '}') {
      ++p;
      return true;
    }
    while (true) {
      std::string key;
      if (!ParseString(&key)) {
        return false;
      }
      if (!Consume(':')) {
        return false;
      }
      if (!ParseValue(nullptr, nullptr)) {
        return false;
      }
      if (keys_seen != nullptr) {
        (*keys_seen)[key] = "";
      }
      SkipWs();
      if (p < end && *p == ',') {
        ++p;
        continue;
      }
      return Consume('}');
    }
  }

  bool ParseArray() {
    if (!Consume('[')) {
      return false;
    }
    SkipWs();
    if (p < end && *p == ']') {
      ++p;
      return true;
    }
    while (true) {
      if (!ParseValue(nullptr, nullptr)) {
        return false;
      }
      SkipWs();
      if (p < end && *p == ',') {
        ++p;
        continue;
      }
      return Consume(']');
    }
  }

  // Strict JSON number grammar: '-'? int frac? exp?, then a finiteness check.
  // strtod alone would silently accept "NaN"/"Infinity" spellings (and a
  // printf of a NaN metric produces exactly those), so the scanner enforces
  // the grammar itself and non-finite values are malformed input.
  bool ParseNumber(double* out) {
    SkipWs();
    const char* start = p;
    if (p < end && *p == '-') {
      ++p;
    }
    if (p >= end || !isdigit(static_cast<unsigned char>(*p))) {
      return Fail("malformed number (NaN/Inf are not valid JSON)");
    }
    while (p < end && isdigit(static_cast<unsigned char>(*p))) ++p;
    if (p < end && *p == '.') {
      ++p;
      if (p >= end || !isdigit(static_cast<unsigned char>(*p))) {
        return Fail("malformed number fraction");
      }
      while (p < end && isdigit(static_cast<unsigned char>(*p))) ++p;
    }
    if (p < end && (*p == 'e' || *p == 'E')) {
      ++p;
      if (p < end && (*p == '+' || *p == '-')) ++p;
      if (p >= end || !isdigit(static_cast<unsigned char>(*p))) {
        return Fail("malformed number exponent");
      }
      while (p < end && isdigit(static_cast<unsigned char>(*p))) ++p;
    }
    double v = std::strtod(std::string(start, p).c_str(), nullptr);
    if (!std::isfinite(v)) {
      return Fail("non-finite number value");
    }
    if (out != nullptr) {
      *out = v;
    }
    return true;
  }

  bool Literal(const char* word) {
    SkipWs();
    for (const char* w = word; *w != '\0'; ++w, ++p) {
      if (p >= end || *p != *w) {
        return Fail(std::string("expected '") + word + "'");
      }
    }
    return true;
  }
};

bool Parser::ParseValue(double* number_out, std::string* string_out) {
  SkipWs();
  if (p >= end) {
    return Fail("unexpected end of input");
  }
  switch (*p) {
    case '{':
      return ParseObject(nullptr);
    case '[':
      return ParseArray();
    case '"': {
      std::string s;
      if (!ParseString(&s)) {
        return false;
      }
      if (string_out != nullptr) {
        *string_out = s;
      }
      return true;
    }
    case 't':
      return Literal("true");
    case 'f':
      return Literal("false");
    case 'n':
      return Literal("null");
    default:
      return ParseNumber(number_out);
  }
}

// Profiler quality figures pulled out of the artifact's "profile" section.
struct ProfileFacts {
  bool present = false;
  bool enabled = false;
  double coverage = 0;
  double self_overhead = 1.0;
};

// Parses the artifact's top level, recording which keys are present and
// validating the pinned `meta` fields along the way.
bool ValidateArtifact(const std::string& text, std::string* error,
                      ProfileFacts* profile) {
  Parser parser(text);
  parser.SkipWs();
  if (!parser.Consume('{')) {
    *error = "top level is not a JSON object";
    return false;
  }
  std::map<std::string, bool> seen;
  double schema_version = -1;
  bool has_schema_version = false;
  std::string bench_name;
  bool has_time_ns = false;
  while (true) {
    std::string key;
    if (!parser.ParseString(&key) || !parser.Consume(':')) {
      *error = "malformed top-level key: " + parser.error;
      return false;
    }
    seen[key] = true;
    if (key == "meta") {
      // Walk meta's fields individually so schema_version/bench are checked.
      if (!parser.Consume('{')) {
        *error = "meta is not an object";
        return false;
      }
      while (true) {
        std::string meta_key;
        if (!parser.ParseString(&meta_key) || !parser.Consume(':')) {
          *error = "malformed meta key: " + parser.error;
          return false;
        }
        double num = -1;
        std::string str;
        if (!parser.ParseValue(&num, &str)) {
          *error = "malformed meta value: " + parser.error;
          return false;
        }
        if (meta_key == "schema_version") {
          schema_version = num;
          has_schema_version = true;
        } else if (meta_key == "bench") {
          bench_name = str;
        } else if (meta_key == "time_ns") {
          has_time_ns = true;
        }
        parser.SkipWs();
        if (parser.p < parser.end && *parser.p == ',') {
          ++parser.p;
          continue;
        }
        if (!parser.Consume('}')) {
          *error = "unterminated meta object";
          return false;
        }
        break;
      }
    } else if (key == "profile") {
      // Walk profile's top-level fields so enabled/coverage/self_overhead are
      // captured for the profile-smoke gates (zones etc. are just validated).
      profile->present = true;
      if (!parser.Consume('{')) {
        *error = "profile is not an object";
        return false;
      }
      while (true) {
        std::string profile_key;
        if (!parser.ParseString(&profile_key) || !parser.Consume(':')) {
          *error = "malformed profile key: " + parser.error;
          return false;
        }
        parser.SkipWs();
        bool bool_true = parser.p < parser.end && *parser.p == 't';
        double num = -1;
        if (!parser.ParseValue(&num, nullptr)) {
          *error = "malformed profile value: " + parser.error;
          return false;
        }
        if (profile_key == "enabled") {
          profile->enabled = bool_true;
        } else if (profile_key == "coverage") {
          profile->coverage = num;
        } else if (profile_key == "self_overhead") {
          profile->self_overhead = num;
        }
        parser.SkipWs();
        if (parser.p < parser.end && *parser.p == ',') {
          ++parser.p;
          continue;
        }
        if (!parser.Consume('}')) {
          *error = "unterminated profile object";
          return false;
        }
        break;
      }
    } else if (!parser.ParseValue(nullptr, nullptr)) {
      *error = "malformed value for \"" + key + "\": " + parser.error;
      return false;
    }
    parser.SkipWs();
    if (parser.p < parser.end && *parser.p == ',') {
      ++parser.p;
      continue;
    }
    if (!parser.Consume('}')) {
      *error = "unterminated top-level object";
      return false;
    }
    break;
  }
  parser.SkipWs();
  if (parser.p != parser.end) {
    *error = "trailing content after top-level object";
    return false;
  }

  for (const char* required : {"meta", "snapshot", "timeseries", "critical_path",
                               "availability", "profile", "traces"}) {
    if (seen.find(required) == seen.end()) {
      *error = std::string("missing top-level section \"") + required + "\"";
      return false;
    }
  }
  if (!has_schema_version) {
    *error = "meta.schema_version is missing";
    return false;
  }
  if (schema_version != 2) {
    *error = "meta.schema_version is not 2";
    return false;
  }
  if (bench_name.empty()) {
    *error = "meta.bench is missing or empty";
    return false;
  }
  if (!has_time_ns) {
    *error = "meta.time_ns is missing";
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  double min_coverage = -1;
  double max_overhead = -1;
  std::vector<const char*> paths;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--min-profile-coverage" && i + 1 < argc) {
      min_coverage = std::strtod(argv[++i], nullptr);
    } else if (arg == "--max-profile-overhead" && i + 1 < argc) {
      max_overhead = std::strtod(argv[++i], nullptr);
    } else {
      paths.push_back(argv[i]);
    }
  }
  if (paths.empty()) {
    std::fprintf(stderr,
                 "usage: %s [--min-profile-coverage X] [--max-profile-overhead Y] "
                 "BENCH_<name>.json [...]\n",
                 argv[0]);
    return 2;
  }
  int bad = 0;
  for (const char* path : paths) {
    std::FILE* f = std::fopen(path, "rb");
    if (f == nullptr) {
      std::fprintf(stderr, "%s: MISSING (bench did not emit its artifact)\n", path);
      ++bad;
      continue;
    }
    std::string text;
    char buf[1 << 16];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      text.append(buf, n);
    }
    std::fclose(f);
    std::string error;
    ProfileFacts profile;
    if (!ValidateArtifact(text, &error, &profile)) {
      std::fprintf(stderr, "%s: INVALID: %s\n", path, error.c_str());
      ++bad;
      continue;
    }
    if (min_coverage >= 0 || max_overhead >= 0) {
      if (!profile.enabled) {
        std::fprintf(stderr, "%s: PROFILE GATE: profiler was not enabled for this run\n",
                     path);
        ++bad;
        continue;
      }
      if (min_coverage >= 0 && profile.coverage < min_coverage) {
        std::fprintf(stderr, "%s: PROFILE GATE: coverage %.4f < required %.4f\n", path,
                     profile.coverage, min_coverage);
        ++bad;
        continue;
      }
      if (max_overhead >= 0 && profile.self_overhead > max_overhead) {
        std::fprintf(stderr, "%s: PROFILE GATE: self-overhead %.4f > allowed %.4f\n",
                     path, profile.self_overhead, max_overhead);
        ++bad;
        continue;
      }
      std::printf("%s: profile ok (coverage %.3f, self-overhead %.4f)\n", path,
                  profile.coverage, profile.self_overhead);
    }
    std::printf("%s: ok (%zu bytes)\n", path, text.size());
  }
  return bad == 0 ? 0 : 1;
}
