// Regenerates the committed scenario-matrix baselines deterministically.
//
//   bless_baseline [--out DIR] [--cell NAME ...] [--list]
//
// Runs each smoke-matrix cell (all of them by default) and writes
// DIR/<cell>.json in the baseline layout tools/bench_diff consumes:
//   {"schema_version":1,"cell":"<name>","metrics":{...}}
// The simulator is deterministic, so blessing is reproducible: the same build
// always emits byte-identical baselines. Run from the repo root after any
// change that legitimately moves the numbers, then commit bench/baselines/.
// Exits nonzero if any cell violates a quiesce invariant — a baseline must
// never bless a broken run.

#include <cstdio>
#include <string>
#include <vector>

#include "src/scenario/matrix.h"
#include "src/scenario/scenario.h"

namespace sns {
namespace {

int Run(int argc, char** argv) {
  std::string out_dir = "bench/baselines";
  std::vector<std::string> wanted;
  bool list = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_dir = argv[++i];
    } else if (arg == "--cell" && i + 1 < argc) {
      wanted.push_back(argv[++i]);
    } else if (arg == "--list") {
      list = true;
    } else {
      std::fprintf(stderr, "usage: %s [--out DIR] [--cell NAME ...] [--list]\n",
                   argv[0]);
      return 2;
    }
  }

  std::vector<ScenarioCell> matrix = SmokeMatrix();
  if (list) {
    for (const ScenarioCell& cell : matrix) {
      std::printf("%s\n", cell.Name().c_str());
    }
    return 0;
  }
  std::vector<ScenarioCell> to_run;
  if (wanted.empty()) {
    to_run = matrix;
  } else {
    for (const std::string& name : wanted) {
      const ScenarioCell* cell = FindCell(matrix, name);
      if (cell == nullptr) {
        std::fprintf(stderr, "unknown cell '%s' (see --list)\n", name.c_str());
        return 2;
      }
      to_run.push_back(*cell);
    }
  }

  int failed = 0;
  for (const ScenarioCell& cell : to_run) {
    CellResult result = RunScenarioCell(cell);  // No artifact; metrics only.
    if (!result.passed()) {
      std::fprintf(stderr, "%s: invariants VIOLATED, refusing to bless:\n%s",
                   cell.Name().c_str(), result.invariants.ToString().c_str());
      ++failed;
      continue;
    }
    std::string path = out_dir + "/" + cell.Name() + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s (does %s/ exist?)\n", path.c_str(),
                   out_dir.c_str());
      ++failed;
      continue;
    }
    std::fputs(BaselineJson(result).c_str(), f);
    std::fclose(f);
    std::printf("blessed %s (goodput=%.3f p99=%.0fms hit=%.3f)\n", path.c_str(),
                result.metrics.goodput, result.metrics.latency_p99_s * 1000,
                result.metrics.hit_rate);
  }
  return failed == 0 ? 0 : 1;
}

}  // namespace
}  // namespace sns

int main(int argc, char** argv) { return sns::Run(argc, argv); }
