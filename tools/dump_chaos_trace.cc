// Prints the deterministic event/census trace of one fixed-seed chaos run.
//
// Since the quorum/fencing PR the trace also carries the fence-agent kill log
// and per-vantage membership (regroup) transitions, and each census line and
// the final line report quorate-manager counts and the durable-write ledger
// totals — so a diff here also catches quorum or fencing behavior drift.
//
// Used to (re)generate the golden trace embedded in
// tests/chaos_test.cc::ReplayMatchesGoldenCensusTrace, which pins the simulator
// core: any change to event ordering — scheduler rewrite, timer semantics, SAN
// delivery order — shows up as a trace diff here before it shows up as a
// hard-to-debug invariant failure. Regenerate (and review the diff!) only when a
// behavior change is intended:
//
//   ./tools/dump_chaos_trace            # default golden seed 0xG0LD (0x601D)
//   ./tools/dump_chaos_trace <seed>     # any other seed, hex or decimal

#include <cstdio>
#include <cstdlib>

#include "src/chaos/campaign.h"
#include "src/util/logging.h"

namespace sns {
namespace {

// Mirror of tests/chaos_test.cc::SmokeConfig — the golden trace must be produced
// under the exact same campaign configuration the test replays.
CampaignConfig GoldenConfig() {
  CampaignConfig config;
  config.gen.horizon = Seconds(30);
  config.gen.min_events = 2;
  config.gen.max_events = 5;
  config.gen.min_outage = Seconds(5);
  config.gen.max_outage = Seconds(15);
  config.warmup = Seconds(10);
  config.quiesce_settle = Seconds(20);
  return config;
}

}  // namespace
}  // namespace sns

int main(int argc, char** argv) {
  uint64_t seed = 0x601D;
  if (argc > 1) {
    seed = std::strtoull(argv[1], nullptr, 0);
  }
  sns::Logger::Get().set_min_level(sns::LogLevel::kNone);
  sns::CampaignConfig config = sns::GoldenConfig();
  sns::FaultSchedule schedule = sns::GenerateSchedule(seed, config.gen);
  sns::ChaosRunResult result = sns::RunSchedule(schedule, config);
  std::printf("schedule:\n%s", schedule.ToScript().c_str());
  std::printf("passed: %s\n", result.passed() ? "yes" : "no");
  if (!result.passed()) {
    std::printf("%s", result.Describe().c_str());
  }
  std::printf("trace:\n%s", result.trace.c_str());
  return result.passed() ? 0 : 1;
}
