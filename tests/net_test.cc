// Tests for the SAN model: delivery, serialization delay, saturation drops,
// multicast, connection setup, partitions, and fail-fast semantics.

#include <gtest/gtest.h>

#include "src/net/san.h"
#include "src/sim/simulator.h"

namespace sns {
namespace {

struct TestPayload : Payload {
  int value = 0;
};

Message MakeMessage(Endpoint src, Endpoint dst, int value, int64_t size,
                    Transport transport = Transport::kReliable) {
  Message msg;
  msg.src = src;
  msg.dst = dst;
  msg.type = 1;
  msg.size_bytes = size;
  msg.transport = transport;
  auto payload = std::make_shared<TestPayload>();
  payload->value = value;
  msg.payload = payload;
  return msg;
}

class SanTest : public ::testing::Test {
 protected:
  SanTest() : san_(&sim_, SanConfig{}) {
    san_.AddNode(0);
    san_.AddNode(1);
    san_.AddNode(2);
  }

  void Bind(Endpoint ep, std::vector<int>* sink) {
    san_.Bind(ep, [sink](const Message& msg) {
      sink->push_back(static_cast<const TestPayload&>(*msg.payload).value);
    });
  }

  Simulator sim_;
  San san_;
};

TEST_F(SanTest, DeliversReliableMessage) {
  std::vector<int> received;
  Endpoint dst{1, 10};
  Bind(dst, &received);
  san_.Send(MakeMessage({0, 1}, dst, 42, 1000));
  sim_.Run();
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0], 42);
  EXPECT_EQ(san_.messages_delivered(), 1);
}

TEST_F(SanTest, DeliveryTakesSerializationPlusLatency) {
  std::vector<int> received;
  Endpoint dst{1, 10};
  SimTime delivered_at = 0;
  san_.Bind(dst, [&](const Message&) { delivered_at = sim_.now(); });
  // 100 Mb/s: 125000 bytes = 10 ms serialization per link, twice (egress+ingress).
  san_.Send(MakeMessage({0, 1}, dst, 1, 125000));
  sim_.Run();
  EXPECT_GT(delivered_at, 2 * Milliseconds(10.0));
  EXPECT_LT(delivered_at, Milliseconds(40.0));
}

TEST_F(SanTest, ReliableFirstMessagePaysConnectionSetup) {
  Endpoint dst{1, 10};
  SimTime first = 0;
  SimTime second = 0;
  int count = 0;
  san_.Bind(dst, [&](const Message&) {
    if (++count == 1) {
      first = sim_.now();
    } else {
      second = sim_.now();
    }
  });
  san_.Send(MakeMessage({0, 1}, dst, 1, 100));
  sim_.Run();
  SimTime t0 = sim_.now();
  san_.Send(MakeMessage({0, 1}, dst, 2, 100));
  sim_.Run();
  SimDuration first_latency = first;
  SimDuration second_latency = second - t0;
  // Setup cost (default 1 ms) applies only to the first send on the pair.
  EXPECT_GT(first_latency, second_latency + Microseconds(800));
}

TEST_F(SanTest, ForceNewConnectionAlwaysPaysSetup) {
  Endpoint dst{1, 10};
  std::vector<SimTime> deliveries;
  san_.Bind(dst, [&](const Message&) { deliveries.push_back(sim_.now()); });
  San::SendOptions opts;
  opts.force_new_connection = true;
  san_.Send(MakeMessage({0, 1}, dst, 1, 100), opts);
  sim_.Run();
  SimTime t0 = sim_.now();
  san_.Send(MakeMessage({0, 1}, dst, 2, 100), opts);
  sim_.Run();
  ASSERT_EQ(deliveries.size(), 2u);
  // Both pay setup: similar latencies.
  EXPECT_NEAR(static_cast<double>(deliveries[0]),
              static_cast<double>(deliveries[1] - t0), static_cast<double>(Microseconds(200)));
}

TEST_F(SanTest, ReliableToUnboundEndpointFailsFast) {
  bool failed = false;
  San::SendOptions opts;
  opts.on_failed = [&](const Message&) { failed = true; };
  san_.Send(MakeMessage({0, 1}, {1, 99}, 1, 100), opts);
  sim_.Run();
  EXPECT_TRUE(failed);
  EXPECT_EQ(san_.reliable_failed_fast(), 1);
}

TEST_F(SanTest, DatagramToUnboundEndpointSilentlyLost) {
  bool failed = false;
  San::SendOptions opts;
  opts.on_failed = [&](const Message&) { failed = true; };
  san_.Send(MakeMessage({0, 1}, {1, 99}, 1, 100, Transport::kDatagram), opts);
  sim_.Run();
  EXPECT_FALSE(failed);
  EXPECT_EQ(san_.messages_lost_unreachable(), 1);
}

TEST_F(SanTest, DatagramsDropUnderSaturationButReliableQueues) {
  // Tiny link: 1 Mb/s with a 10 ms datagram queue bound.
  LinkConfig slow;
  slow.bandwidth_bps = 1e6;
  slow.max_datagram_queue_delay = Milliseconds(10.0);
  san_.SetNodeLinkConfig(0, slow);

  std::vector<int> received;
  Endpoint dst{1, 10};
  Bind(dst, &received);
  // 20 datagrams of 10 KB each: 80 ms serialization each; queue bound exceeded.
  for (int i = 0; i < 20; ++i) {
    san_.Send(MakeMessage({0, 1}, dst, i, 10000, Transport::kDatagram));
  }
  sim_.Run();
  EXPECT_LT(received.size(), 20u);
  EXPECT_GT(san_.datagrams_dropped(), 0);

  // The same burst via reliable transport all arrives (backpressure, no loss).
  received.clear();
  for (int i = 0; i < 20; ++i) {
    san_.Send(MakeMessage({0, 1}, dst, i, 10000, Transport::kReliable));
  }
  sim_.Run();
  EXPECT_EQ(received.size(), 20u);
}

TEST_F(SanTest, MulticastReachesAllSubscribersExceptSender) {
  std::vector<int> a;
  std::vector<int> b;
  std::vector<int> self;
  Bind({1, 10}, &a);
  Bind({2, 20}, &b);
  Bind({0, 1}, &self);
  san_.JoinGroup(7, {1, 10});
  san_.JoinGroup(7, {2, 20});
  san_.JoinGroup(7, {0, 1});  // The sender itself.
  EXPECT_EQ(san_.GroupSize(7), 3u);

  Message msg = MakeMessage({0, 1}, {}, 5, 200, Transport::kDatagram);
  san_.SendMulticast(7, std::move(msg));
  sim_.Run();
  EXPECT_EQ(a.size(), 1u);
  EXPECT_EQ(b.size(), 1u);
  EXPECT_TRUE(self.empty());
}

TEST_F(SanTest, LeaveGroupStopsDelivery) {
  std::vector<int> a;
  Bind({1, 10}, &a);
  san_.JoinGroup(7, {1, 10});
  san_.LeaveGroup(7, {1, 10});
  san_.SendMulticast(7, MakeMessage({0, 1}, {}, 5, 200, Transport::kDatagram));
  sim_.Run();
  EXPECT_TRUE(a.empty());
}

TEST_F(SanTest, PartitionBlocksTrafficAndHeals) {
  std::vector<int> received;
  Endpoint dst{1, 10};
  Bind(dst, &received);
  san_.SetPartition(1, 1);
  EXPECT_FALSE(san_.Reachable(0, 1));
  EXPECT_TRUE(san_.Reachable(0, 2));
  san_.Send(MakeMessage({0, 1}, dst, 1, 100));
  sim_.Run();
  EXPECT_TRUE(received.empty());

  san_.HealPartitions();
  san_.Send(MakeMessage({0, 1}, dst, 2, 100));
  sim_.Run();
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0], 2);
}

TEST_F(SanTest, DownNodeNeitherSendsNorReceives) {
  std::vector<int> received;
  Endpoint dst{1, 10};
  Bind(dst, &received);
  san_.SetNodeUp(1, false);
  san_.Send(MakeMessage({0, 1}, dst, 1, 100));
  sim_.Run();
  EXPECT_TRUE(received.empty());

  san_.SetNodeUp(0, false);
  san_.SetNodeUp(1, true);
  san_.Send(MakeMessage({0, 1}, dst, 2, 100));
  sim_.Run();
  EXPECT_TRUE(received.empty());
}

TEST_F(SanTest, UnbindTearsDownConnectionsSoNextSendFailsFast) {
  std::vector<int> received;
  Endpoint dst{1, 10};
  Bind(dst, &received);
  san_.Send(MakeMessage({0, 1}, dst, 1, 100));
  sim_.Run();
  ASSERT_EQ(received.size(), 1u);

  san_.Unbind(dst);
  bool failed = false;
  San::SendOptions opts;
  opts.on_failed = [&](const Message&) { failed = true; };
  san_.Send(MakeMessage({0, 1}, dst, 2, 100), opts);
  sim_.Run();
  EXPECT_TRUE(failed);
}

TEST_F(SanTest, LinkStatsAccumulate) {
  Endpoint dst{1, 10};
  std::vector<int> received;
  Bind(dst, &received);
  san_.Send(MakeMessage({0, 1}, dst, 1, 5000));
  sim_.Run();
  EXPECT_GT(san_.egress(0)->bytes_sent(), 5000);  // Payload + handshake.
  EXPECT_GT(san_.egress(0)->busy_time(), 0);
  EXPECT_GE(san_.ingress(1)->messages_sent(), 1);
  EXPECT_GT(san_.egress(0)->Utilization(sim_.now()), 0.0);
}

TEST_F(SanTest, UnbindAutoLeavesMulticastGroups) {
  std::vector<int> received;
  Bind({1, 10}, &received);
  san_.JoinGroup(7, {1, 10});
  EXPECT_EQ(san_.GroupSize(7), 1u);
  san_.Unbind({1, 10});
  EXPECT_EQ(san_.GroupSize(7), 0u);
}

TEST_F(SanTest, MulticastDropsPerSubscriberUnderReceiverSaturation) {
  // Saturate one subscriber's ingress with bulk traffic from a third node; the
  // other subscriber keeps receiving every beacon (per-subscriber best effort).
  san_.AddNode(3);
  LinkConfig tiny;
  tiny.bandwidth_bps = 1e6;
  tiny.max_datagram_queue_delay = Milliseconds(5.0);
  san_.SetNodeLinkConfig(1, tiny);
  std::vector<int> slow;
  std::vector<int> fast;
  Bind({1, 10}, &slow);
  Bind({2, 20}, &fast);
  san_.JoinGroup(9, {1, 10});
  san_.JoinGroup(9, {2, 20});
  for (int i = 0; i < 30; ++i) {
    san_.Send(MakeMessage({3, 1}, {1, 10}, 100 + i, 20000, Transport::kReliable));
    san_.SendMulticast(9, MakeMessage({0, 1}, {}, i, 500, Transport::kDatagram));
  }
  sim_.Run();
  EXPECT_EQ(fast.size(), 30u);        // Unsaturated subscriber gets every beacon.
  EXPECT_LT(slow.size(), 60u);        // Saturated one lost some (plus the 30 bulk).
  EXPECT_GT(san_.datagrams_dropped(), 0);
}

TEST_F(SanTest, MultiGroupPartitionsAreMutuallyUnreachable) {
  san_.SetPartition(1, 1);
  san_.SetPartition(2, 2);
  EXPECT_EQ(san_.PartitionGroupOf(0), 0);
  EXPECT_EQ(san_.PartitionGroupOf(1), 1);
  EXPECT_EQ(san_.PartitionGroupOf(2), 2);
  // Three groups, all pairwise unreachable.
  EXPECT_FALSE(san_.Reachable(0, 1));
  EXPECT_FALSE(san_.Reachable(0, 2));
  EXPECT_FALSE(san_.Reachable(1, 2));
  EXPECT_TRUE(san_.Reachable(1, 1));
}

TEST_F(SanTest, HealPartitionRestoresOneGroupAtATime) {
  std::vector<int> via1;
  std::vector<int> via2;
  Bind({1, 10}, &via1);
  Bind({2, 20}, &via2);
  san_.SetPartition(1, 1);
  san_.SetPartition(2, 2);

  san_.HealPartition(2);
  EXPECT_EQ(san_.PartitionGroupOf(2), 0);
  EXPECT_TRUE(san_.Reachable(0, 2));
  EXPECT_FALSE(san_.Reachable(0, 1));
  san_.Send(MakeMessage({0, 1}, {1, 10}, 1, 100));
  san_.Send(MakeMessage({0, 1}, {2, 20}, 2, 100));
  sim_.Run();
  EXPECT_TRUE(via1.empty());  // Group 1 is still split.
  ASSERT_EQ(via2.size(), 1u);

  san_.HealPartition(1);
  EXPECT_TRUE(san_.Reachable(0, 1));
  san_.Send(MakeMessage({0, 1}, {1, 10}, 3, 100));
  sim_.Run();
  ASSERT_EQ(via1.size(), 1u);
  EXPECT_EQ(via1[0], 3);
}

TEST_F(SanTest, MessageInFlightAtSplitIsLost) {
  std::vector<int> received;
  Endpoint dst{1, 10};
  Bind(dst, &received);
  // 125000 bytes serializes for >20 ms; the partition lands at 1 ms, mid-flight.
  san_.Send(MakeMessage({0, 1}, dst, 1, 125000));
  sim_.ScheduleAt(Milliseconds(1.0), [this] { san_.SetPartition(1, 1); });
  sim_.Run();
  EXPECT_TRUE(received.empty());
  EXPECT_GE(san_.messages_lost_unreachable(), 1);

  // After the heal, fresh traffic flows again; the lost message stays lost.
  san_.HealPartition(1);
  san_.Send(MakeMessage({0, 1}, dst, 2, 100));
  sim_.Run();
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0], 2);
}

TEST_F(SanTest, DropMulticastUntilSuppressesBeaconsThenResumes) {
  std::vector<int> a;
  Bind({1, 10}, &a);
  san_.JoinGroup(7, {1, 10});
  san_.DropMulticastUntil(7, Milliseconds(50.0));

  san_.SendMulticast(7, MakeMessage({0, 1}, {}, 1, 200, Transport::kDatagram));
  sim_.Run();
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(san_.multicast_suppressed(), 1);

  // Other groups are unaffected during the window.
  std::vector<int> other;
  Bind({2, 20}, &other);
  san_.JoinGroup(8, {2, 20});
  san_.SendMulticast(8, MakeMessage({0, 1}, {}, 2, 200, Transport::kDatagram));
  sim_.Run();
  EXPECT_EQ(other.size(), 1u);

  sim_.RunFor(Milliseconds(60.0));
  san_.SendMulticast(7, MakeMessage({0, 1}, {}, 3, 200, Transport::kDatagram));
  sim_.Run();
  ASSERT_EQ(a.size(), 1u);
  EXPECT_EQ(a[0], 3);
  EXPECT_EQ(san_.multicast_suppressed(), 1);
}

TEST(LinkTest, ServiceTimeFollowsBandwidth) {
  LinkConfig config;
  config.bandwidth_bps = 10e6;
  config.per_message_overhead = 0;
  Link link("test", config);
  // 12500 bytes = 100000 bits at 10 Mb/s = 10 ms.
  EXPECT_EQ(link.ServiceTime(12500), Milliseconds(10.0));
}

}  // namespace
}  // namespace sns
