// Fault-masking property tests: the paper's availability claims under sustained
// random crashes, SAN partitions, node failures, and burst-driven overflow growth.

#include <gtest/gtest.h>

#include "src/cluster/failure_injector.h"
#include "src/services/transend/transend.h"
#include "src/sns/worker_process.h"
#include "src/util/logging.h"

namespace sns {
namespace {

TranSendOptions FaultOptions() {
  TranSendOptions options = DefaultTranSendOptions();
  options.universe = [] {
    ContentUniverseConfig config;
    config.url_count = 60;
    config.sizes.gif_fraction = 0.0;
    config.sizes.html_fraction = 0.0;
    config.sizes.jpeg_fraction = 1.0;
    config.sizes.jpeg_mu = 9.2335;
    config.sizes.jpeg_sigma = 0.05;
    config.sizes.error_page_fraction = 0.0;
    return config;
  }();
  options.topology.worker_pool_nodes = 8;
  // Every request re-distills, so the worker pool stays load-bearing throughout
  // the fault storm (cached variants would mask the workers entirely).
  options.logic.cache_distilled = false;
  return options;
}

void WarmUp(TranSendService* service, PlaybackEngine* client) {
  service->sim()->RunFor(Seconds(3));
  for (int64_t i = 0; i < service->universe()->url_count(); ++i) {
    TraceRecord record;
    record.user_id = "warm";
    record.url = service->universe()->UrlAt(i);
    client->SendRequest(record);
    service->sim()->RunFor(Milliseconds(150));
  }
  service->sim()->RunFor(Seconds(130));
  client->ResetStats();
}

// Property: under a sustained storm of random worker crashes, the service stays
// available — every request gets SOME answer (distilled or approximate), and the
// vast majority succeed.
class CrashStormSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CrashStormSweep, ServiceSurvivesRandomWorkerCrashes) {
  Logger::Get().set_min_level(LogLevel::kNone);
  TranSendService service(FaultOptions());
  service.Start();
  PlaybackEngine* client = service.AddPlaybackEngine(GetParam());
  WarmUp(&service, client);

  Rng load_rng(GetParam());
  ContentUniverse* universe = service.universe();
  client->StartConstantRate(25, [&load_rng, universe] {
    TraceRecord record;
    record.user_id = "storm";
    record.url = universe->UrlAt(load_rng.UniformInt(0, universe->url_count() - 1));
    return record;
  });

  // Crash a random live worker roughly every 8 seconds for 2 minutes.
  FailureInjector injector(service.system()->cluster(), service.system()->san());
  Rng crash_rng(GetParam() ^ 0xDEAD);
  auto* system = service.system();
  injector.RandomProcessCrashes(
      &crash_rng, Seconds(8), service.sim()->now() + Seconds(120), [system, &crash_rng]() {
        auto workers = system->live_workers();
        if (workers.empty()) {
          return kInvalidProcess;
        }
        auto index = static_cast<size_t>(
            crash_rng.UniformInt(0, static_cast<int64_t>(workers.size()) - 1));
        return workers[index]->pid();
      });

  service.sim()->RunFor(Seconds(140));
  client->StopLoad();
  service.sim()->RunFor(Seconds(10));

  EXPECT_GT(injector.injected_count(), 5);
  EXPECT_GT(client->completed(), 0);
  // Availability: nearly every request answered, none erroneously.
  double answered = static_cast<double>(client->completed()) /
                    static_cast<double>(client->completed() + client->timeouts());
  EXPECT_GT(answered, 0.99);
  EXPECT_EQ(client->errors(), 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrashStormSweep, ::testing::Values(1u, 2u, 3u, 4u));

TEST(FaultTest, SanPartitionLosesWorkersThenHeals) {
  Logger::Get().set_min_level(LogLevel::kNone);
  TranSendService service(FaultOptions());
  service.Start();
  PlaybackEngine* client = service.AddPlaybackEngine(0xF00);
  WarmUp(&service, client);

  Rng rng(0xF00);
  ContentUniverse* universe = service.universe();
  client->StartConstantRate(20, [&rng, universe] {
    TraceRecord record;
    record.user_id = "part";
    record.url = universe->UrlAt(rng.UniformInt(0, universe->url_count() - 1));
    return record;
  });
  service.sim()->RunFor(Seconds(20));
  auto workers_before = service.system()->live_workers(kJpegDistillerType);
  ASSERT_FALSE(workers_before.empty());

  // Partition every current distiller's node away for 20 s. The manager's TTL
  // declares them dead; spawning replaces them on visible nodes (§2.2.4: "workers
  // lost because of a SAN partition can be restarted on still-visible nodes").
  FailureInjector injector(service.system()->cluster(), service.system()->san());
  std::vector<NodeId> lost;
  for (WorkerProcess* worker : workers_before) {
    lost.push_back(worker->node());
  }
  SimTime now = service.sim()->now();
  injector.PartitionAt(now + Seconds(1), lost, now + Seconds(21));

  service.sim()->RunFor(Seconds(60));
  client->StopLoad();
  service.sim()->RunFor(Seconds(10));

  // Replacements were spawned on still-visible nodes during the partition.
  EXPECT_GT(service.system()->manager()->spawns_initiated(), 1);
  double answered = static_cast<double>(client->completed()) /
                    static_cast<double>(client->completed() + client->timeouts());
  EXPECT_GT(answered, 0.97);
}

TEST(FaultTest, WholeNodeCrashMaskedByRespawn) {
  Logger::Get().set_min_level(LogLevel::kNone);
  TranSendService service(FaultOptions());
  service.Start();
  PlaybackEngine* client = service.AddPlaybackEngine(0xAA);
  WarmUp(&service, client);

  Rng rng(0xAA);
  ContentUniverse* universe = service.universe();
  client->StartConstantRate(20, [&rng, universe] {
    TraceRecord record;
    record.user_id = "node";
    record.url = universe->UrlAt(rng.UniformInt(0, universe->url_count() - 1));
    return record;
  });
  service.sim()->RunFor(Seconds(15));
  auto workers = service.system()->live_workers(kJpegDistillerType);
  ASSERT_FALSE(workers.empty());
  service.system()->cluster()->CrashNode(workers[0]->node());

  service.sim()->RunFor(Seconds(45));
  client->StopLoad();
  service.sim()->RunFor(Seconds(10));
  EXPECT_FALSE(service.system()->live_workers(kJpegDistillerType).empty());
  EXPECT_EQ(client->errors(), 0);
}

TEST(FaultTest, BurstRecruitsOverflowPoolAndReapsAfterwards) {
  Logger::Get().set_min_level(LogLevel::kNone);
  TranSendOptions options = FaultOptions();
  options.logic.cache_distilled = false;   // Sustained distillation load.
  options.topology.worker_pool_nodes = 2;  // Dedicated pool saturates quickly.
  options.topology.overflow_nodes = 4;
  options.sns.reap_idle_time = Seconds(15);
  TranSendService service(options);
  service.Start();
  PlaybackEngine* client = service.AddPlaybackEngine(0xB00);
  WarmUp(&service, client);

  Rng rng(0xB00);
  ContentUniverse* universe = service.universe();
  client->StartConstantRate(65, [&rng, universe] {  // Burst beyond 2 nodes' capacity.
    TraceRecord record;
    record.user_id = "burst";
    record.url = universe->UrlAt(rng.UniformInt(0, universe->url_count() - 1));
    return record;
  });
  service.sim()->RunFor(Seconds(90));

  // The burst forced workers onto overflow nodes.
  int on_overflow = 0;
  for (WorkerProcess* worker : service.system()->live_workers()) {
    if (service.system()->cluster()->IsOverflowNode(worker->node())) {
      ++on_overflow;
    }
  }
  EXPECT_GT(on_overflow, 0);

  // Burst subsides: overflow workers are reaped ("the distillers may be reaped").
  client->SetRate(2);
  service.sim()->RunFor(Seconds(120));
  int on_overflow_after = 0;
  for (WorkerProcess* worker : service.system()->live_workers()) {
    if (service.system()->cluster()->IsOverflowNode(worker->node())) {
      ++on_overflow_after;
    }
  }
  EXPECT_LT(on_overflow_after, on_overflow);
  EXPECT_GT(service.system()->manager()->reaps_initiated(), 0);
  client->StopLoad();
}

TEST(FaultTest, SimultaneousManagerAndWorkerFailure) {
  // "Robin Hood / Friar Tuck" style: kill the manager and a worker at once; the
  // process-peer web restarts everything.
  Logger::Get().set_min_level(LogLevel::kNone);
  TranSendService service(FaultOptions());
  service.Start();
  PlaybackEngine* client = service.AddPlaybackEngine(0xCC);
  WarmUp(&service, client);

  Rng rng(0xCC);
  ContentUniverse* universe = service.universe();
  client->StartConstantRate(15, [&rng, universe] {
    TraceRecord record;
    record.user_id = "dual";
    record.url = universe->UrlAt(rng.UniformInt(0, universe->url_count() - 1));
    return record;
  });
  service.sim()->RunFor(Seconds(10));

  auto workers = service.system()->live_workers();
  ASSERT_FALSE(workers.empty());
  service.system()->cluster()->Crash(workers[0]->pid());
  service.system()->cluster()->Crash(service.system()->manager_pid());

  service.sim()->RunFor(Seconds(60));
  client->StopLoad();
  service.sim()->RunFor(Seconds(10));

  ASSERT_NE(service.system()->manager(), nullptr);
  EXPECT_GT(service.system()->manager()->beacons_sent(), 0);
  EXPECT_FALSE(service.system()->live_workers().empty());
  double answered = static_cast<double>(client->completed()) /
                    static_cast<double>(client->completed() + client->timeouts());
  EXPECT_GT(answered, 0.95);
}

}  // namespace
}  // namespace sns
