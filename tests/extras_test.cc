// Tests for the §5.1 extension services: keyword filter, metasearch, the culture
// page aggregator, the anonymous rewebber, and the PalmPilot transformer.

#include <gtest/gtest.h>

#include "src/content/html.h"
#include "src/services/extras/culture_page.h"
#include "src/services/extras/keyword_filter.h"
#include "src/services/extras/metasearch.h"
#include "src/services/extras/palm_transform.h"
#include "src/services/extras/rewebber.h"
#include "src/util/strings.h"

namespace sns {
namespace {

TaccRequest HtmlRequest(const std::string& html) {
  TaccRequest request;
  request.url = "http://x/page.html";
  request.inputs.push_back(Content::Make(request.url, MimeType::kHtml,
                                         std::vector<uint8_t>(html.begin(), html.end())));
  return request;
}

std::string TextOf(const ContentPtr& content) {
  return std::string(content->bytes.begin(), content->bytes.end());
}

// ---------- keyword filter ------------------------------------------------------------

TEST(KeywordFilterTest, HighlightsProfileKeywords) {
  KeywordFilterWorker worker;
  TaccRequest request = HtmlRequest("<p>the cluster runs a network service</p>");
  request.profile.Set(kArgKeywords, "cluster,service");
  TaccResult result = worker.Process(request);
  ASSERT_TRUE(result.status.ok());
  std::string out = TextOf(result.output);
  EXPECT_NE(out.find("red"), std::string::npos);
  EXPECT_GT(out.size(), 40u);
  // Both keywords wrapped.
  EXPECT_NE(out.find(">cluster</font>"), std::string::npos);
  EXPECT_NE(out.find(">service</font>"), std::string::npos);
}

TEST(KeywordFilterTest, ArgsOverrideProfile) {
  KeywordFilterWorker worker;
  TaccRequest request = HtmlRequest("<p>alpha beta</p>");
  request.profile.Set(kArgKeywords, "alpha");
  request.args[kArgKeywords] = "beta";
  std::string out = TextOf(worker.Process(request).output);
  EXPECT_EQ(out.find(">alpha<"), std::string::npos);
  EXPECT_NE(out.find(">beta<"), std::string::npos);
}

TEST(KeywordFilterTest, NoKeywordsIsIdentity) {
  KeywordFilterWorker worker;
  std::string html = "<p>untouched</p>";
  EXPECT_EQ(TextOf(worker.Process(HtmlRequest(html)).output), html);
}

// ---------- metasearch ----------------------------------------------------------------

TEST(MetasearchTest, EnginesAreDeterministicPerQuery) {
  auto a = SimulateEngine("altavista", "berkeley now", 10);
  auto b = SimulateEngine("altavista", "berkeley now", 10);
  ASSERT_EQ(a.size(), 10u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].url, b[i].url);
  }
  auto c = SimulateEngine("excite", "berkeley now", 10);
  EXPECT_NE(a[0].url, c[0].url);  // Engines differ.
}

TEST(MetasearchTest, CollateInterleavesByRankAndDeduplicates) {
  std::vector<std::vector<MetasearchResult>> per_engine(2);
  per_engine[0] = {{"e1", "http://dup", "t", 1}, {"e1", "http://a", "t", 2}};
  per_engine[1] = {{"e2", "http://dup", "t", 1}, {"e2", "http://b", "t", 2}};
  auto collated = CollateResults(per_engine, 10);
  ASSERT_EQ(collated.size(), 3u);
  EXPECT_EQ(collated[0].url, "http://dup");
  EXPECT_EQ(collated[0].engine, "e1");  // First engine wins the duplicate.
  EXPECT_EQ(collated[1].url, "http://a");
  EXPECT_EQ(collated[2].url, "http://b");
}

TEST(MetasearchTest, WorkerBuildsResultPage) {
  MetasearchWorker worker;
  TaccRequest request;
  request.url = "http://transend/metasearch";
  request.args[kArgSearchString] = "inktomi";
  request.args["k"] = "7";
  TaccResult result = worker.Process(request);
  ASSERT_TRUE(result.status.ok());
  std::string page = TextOf(result.output);
  EXPECT_NE(page.find("Metasearch: inktomi"), std::string::npos);
  EXPECT_NE(page.find("altavista"), std::string::npos);
  // At most k list items.
  size_t items = 0;
  for (size_t pos = page.find("<li>"); pos != std::string::npos;
       pos = page.find("<li>", pos + 1)) {
    ++items;
  }
  EXPECT_LE(items, 7u);
  EXPECT_GE(items, 3u);
}

TEST(MetasearchTest, EmptyQueryFails) {
  MetasearchWorker worker;
  TaccRequest request;
  EXPECT_FALSE(worker.Process(request).status.ok());
}

// ---------- culture page ---------------------------------------------------------------

TEST(CulturePageTest, ExtractsRealEventsAndSomeSpurious) {
  Rng rng(9);
  std::string page = GenerateCulturePage(&rng, "Zellerbach Hall", 12);
  auto events = ExtractEvents(StripTags(page));
  int real = 0;
  int spurious = 0;
  for (const ExtractedEvent& event : events) {
    (event.spurious ? spurious : real) += 1;
  }
  EXPECT_GE(real, 10);      // Most listings found.
  EXPECT_GE(spurious, 1);   // The loose heuristics misfire (paper: 10-20%).
  double spurious_rate = static_cast<double>(spurious) / static_cast<double>(real + spurious);
  EXPECT_LT(spurious_rate, 0.45);
}

TEST(CulturePageTest, AggregatesAcrossSourcesSorted) {
  Rng rng(10);
  CulturePageWorker worker;
  TaccRequest request;
  request.url = "http://transend/culture";
  for (const char* venue : {"Greek Theatre", "Freight and Salvage"}) {
    std::string page = GenerateCulturePage(&rng, venue, 5);
    request.inputs.push_back(Content::Make(venue, MimeType::kHtml,
                                           std::vector<uint8_t>(page.begin(), page.end())));
  }
  TaccResult result = worker.Process(request);
  ASSERT_TRUE(result.status.ok());
  std::string out = TextOf(result.output);
  EXPECT_NE(out.find("Culture this week"), std::string::npos);
  // Sorted by [month/day]: extract the month sequence and check monotone.
  std::vector<int> months;
  for (size_t pos = out.find("<li>["); pos != std::string::npos;
       pos = out.find("<li>[", pos + 1)) {
    months.push_back(std::atoi(out.substr(pos + 5, 2).c_str()));
  }
  ASSERT_GE(months.size(), 8u);
  for (size_t i = 1; i < months.size(); ++i) {
    EXPECT_LE(months[i - 1], months[i]);
  }
}

TEST(CulturePageTest, MonthFilterNarrowsCalendar) {
  Rng rng(11);
  CulturePageWorker worker;
  TaccRequest request;
  request.url = "http://transend/culture";
  std::string page = GenerateCulturePage(&rng, "Venue", 20);
  request.inputs.push_back(
      Content::Make("v", MimeType::kHtml, std::vector<uint8_t>(page.begin(), page.end())));
  request.args["month"] = "5";
  std::string out = TextOf(worker.Process(request).output);
  for (size_t pos = out.find("<li>["); pos != std::string::npos;
       pos = out.find("<li>[", pos + 1)) {
    EXPECT_EQ(out.substr(pos + 5, 2), "05");
  }
}

TEST(CulturePageTest, MissingSourcesShrinkNotBreak) {
  CulturePageWorker worker;
  TaccRequest request;
  request.url = "u";
  request.inputs.push_back(nullptr);  // An unreachable cultural page.
  Rng rng(12);
  std::string page = GenerateCulturePage(&rng, "Venue", 3);
  request.inputs.push_back(
      Content::Make("v", MimeType::kHtml, std::vector<uint8_t>(page.begin(), page.end())));
  TaccResult result = worker.Process(request);
  ASSERT_TRUE(result.status.ok());  // Approximate answer, still useful.
  EXPECT_NE(TextOf(result.output).find("<li>"), std::string::npos);
}

// ---------- rewebber --------------------------------------------------------------------

TEST(RewebberTest, EncryptDecryptRoundTrip) {
  RewebberWorker encrypt(/*encrypt=*/true);
  RewebberWorker decrypt(/*encrypt=*/false);
  TaccRequest request = HtmlRequest("<p>anonymous publication</p>");
  request.args[kArgKey] = "hop1";
  TaccResult enc = encrypt.Process(request);
  ASSERT_TRUE(enc.status.ok());
  EXPECT_EQ(enc.output->mime, MimeType::kOther);  // Ciphertext is opaque.
  EXPECT_EQ(TextOf(enc.output).find("anonymous"), std::string::npos);

  TaccRequest back;
  back.url = request.url;
  back.inputs.push_back(enc.output);
  back.args[kArgKey] = "hop1";
  TaccResult dec = decrypt.Process(back);
  ASSERT_TRUE(dec.status.ok());
  EXPECT_EQ(TextOf(dec.output), "<p>anonymous publication</p>");
}

TEST(RewebberTest, WrongKeyYieldsGarbage) {
  RewebberWorker encrypt(true);
  RewebberWorker decrypt(false);
  TaccRequest request = HtmlRequest("secret content here");
  request.args[kArgKey] = "right";
  TaccResult enc = encrypt.Process(request);
  TaccRequest back;
  back.url = request.url;
  back.inputs.push_back(enc.output);
  back.args[kArgKey] = "wrong";
  EXPECT_EQ(TextOf(decrypt.Process(back).output).find("secret"), std::string::npos);
}

TEST(RewebberTest, MultiHopChainRoundTrips) {
  // A 3-hop rewebber chain: encrypt k1,k2,k3 then decrypt k3,k2,k1.
  std::string original = "<html>whistleblower page</html>";
  std::vector<uint8_t> data(original.begin(), original.end());
  for (const char* key : {"k1", "k2", "k3"}) {
    data = XorKeystream(data, key);
  }
  EXPECT_EQ(std::string(data.begin(), data.end()).find("whistleblower"), std::string::npos);
  for (const char* key : {"k3", "k2", "k1"}) {
    data = XorKeystream(data, key);
  }
  EXPECT_EQ(std::string(data.begin(), data.end()), original);
}

// ---------- PalmPilot transformer ----------------------------------------------------------

TEST(PalmTransformTest, WrapsToDeviceColumns) {
  std::string html = "<html><body><p>the quick brown fox jumps over the lazy dog again and "
                     "again and again</p></body></html>";
  std::string spoon = SpoonFeed(html, 20, 100);
  for (const std::string& line : StrSplit(spoon, '\n')) {
    for (const std::string& page_line : StrSplit(line, '\f')) {
      EXPECT_LE(page_line.size(), 20u) << "line too wide: '" << page_line << "'";
    }
  }
  EXPECT_NE(spoon.find("quick brown fox"), std::string::npos);
}

TEST(PalmTransformTest, PaginatesByRows) {
  std::string words;
  for (int i = 0; i < 200; ++i) {
    words += "word ";
  }
  std::string spoon = SpoonFeed("<p>" + words + "</p>", 20, 5);
  int pages = 1;
  for (char c : spoon) {
    pages += c == '\f' ? 1 : 0;
  }
  EXPECT_GT(pages, 3);
}

TEST(PalmTransformTest, ImagesBecomePlaceholders) {
  std::string html = "<body><img src=\"a.gif\"><p>text</p><img src=\"b.jpg\"></body>";
  std::string spoon = SpoonFeed(html, 40, 12);
  EXPECT_NE(spoon.find("[IMG 1]"), std::string::npos);
  EXPECT_NE(spoon.find("[IMG 2]"), std::string::npos);
  EXPECT_EQ(spoon.find("<img"), std::string::npos);
}

TEST(PalmTransformTest, WorkerUsesProfileMetrics) {
  PalmTransformWorker worker;
  TaccRequest request = HtmlRequest("<p>some words for a tiny screen device</p>");
  request.profile.Set("palm_cols", "16");
  TaccResult result = worker.Process(request);
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(result.output->mime, MimeType::kOther);  // SPOON, not HTML.
  for (const std::string& line : StrSplit(TextOf(result.output), '\n')) {
    for (const std::string& page_line : StrSplit(line, '\f')) {
      EXPECT_LE(page_line.size(), 16u);
    }
  }
  // Output is much smaller than the markup (the paper's transmission-time win).
  EXPECT_LT(result.output->size(), static_cast<int64_t>(request.input()->size()));
}

}  // namespace
}  // namespace sns
