// Flight recorder tests: time-series sampling, critical-path decomposition,
// span parentage across retries, Chrome-trace export, and the monitor-snapshot
// metric audit.

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/cluster/failure_injector.h"
#include "src/obs/critical_path.h"
#include "src/obs/metrics.h"
#include "src/obs/perfetto.h"
#include "src/obs/timeseries.h"
#include "src/obs/trace.h"
#include "src/services/transend/transend.h"
#include "src/sns/worker_process.h"
#include "src/util/logging.h"

namespace sns {
namespace {

// All-JPEG universe with distilled-variant caching off: every request pays the
// distiller, so traces exercise the whole worker path (same idiom as the fault
// tests and the chaos harness).
TranSendOptions DistillHeavyOptions() {
  TranSendOptions options = DefaultTranSendOptions();
  options.universe.url_count = 20;
  options.universe.sizes.gif_fraction = 0.0;
  options.universe.sizes.html_fraction = 0.0;
  options.universe.sizes.jpeg_fraction = 1.0;
  options.universe.sizes.jpeg_mu = 9.2335;
  options.universe.sizes.jpeg_sigma = 0.05;
  options.universe.sizes.error_page_fraction = 0.0;
  options.logic.cache_distilled = false;
  options.topology.worker_pool_nodes = 2;
  options.topology.front_ends = 1;
  return options;
}

// ---------------------------------------------------------------------------
// TimeSeriesRecorder
// ---------------------------------------------------------------------------

TEST(TimeSeriesRecorderTest, SamplesCountersGaugesHistogramsAndProbes) {
  MetricsRegistry registry;
  Counter* requests = registry.GetCounter("fe.requests");
  Gauge* queue = registry.GetGauge("fe.queue");
  Histogram* latency = registry.GetHistogram("fe.latency", 0.0, 10.0, 10);

  TimeSeriesRecorder recorder(&registry, Milliseconds(100));
  double probe_value = 0.25;
  recorder.AddProbe("node.0.cpu_util", [&probe_value] { return probe_value; });

  requests->Increment(3);
  queue->Set(7.0);
  latency->Add(2.0);
  recorder.SampleAt(Milliseconds(100));

  requests->Increment(2);
  queue->Set(4.0);
  latency->Add(4.0);
  probe_value = 0.75;
  recorder.SampleAt(Milliseconds(200));

  const TimeSeriesRecorder::Series* c = recorder.Find("fe.requests");
  ASSERT_NE(c, nullptr);
  ASSERT_EQ(c->v.size(), 2u);
  EXPECT_EQ(c->t[0], Milliseconds(100));
  EXPECT_DOUBLE_EQ(c->v[0], 3.0);   // Counters sample cumulative values.
  EXPECT_DOUBLE_EQ(c->v[1], 5.0);

  const TimeSeriesRecorder::Series* g = recorder.Find("fe.queue");
  ASSERT_NE(g, nullptr);
  EXPECT_DOUBLE_EQ(g->v[0], 7.0);   // Gauges sample instantaneous values.
  EXPECT_DOUBLE_EQ(g->v[1], 4.0);

  const TimeSeriesRecorder::Series* hc = recorder.Find("fe.latency.count");
  const TimeSeriesRecorder::Series* hm = recorder.Find("fe.latency.mean");
  ASSERT_NE(hc, nullptr);
  ASSERT_NE(hm, nullptr);
  EXPECT_DOUBLE_EQ(hc->v[1], 2.0);
  EXPECT_DOUBLE_EQ(hm->v[1], 3.0);

  const TimeSeriesRecorder::Series* p = recorder.Find("node.0.cpu_util");
  ASSERT_NE(p, nullptr);
  EXPECT_DOUBLE_EQ(p->v[0], 0.25);
  EXPECT_DOUBLE_EQ(p->v[1], 0.75);

  std::string json = recorder.ToJson();
  EXPECT_NE(json.find("\"fe.requests\""), std::string::npos);
  EXPECT_NE(json.find("\"node.0.cpu_util\""), std::string::npos);
  EXPECT_NE(json.find("\"interval_ns\""), std::string::npos);
}

TEST(TimeSeriesRecorderTest, RingBuffersAreBounded) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("c");
  TimeSeriesRecorder recorder(&registry, Milliseconds(10), /*max_samples=*/4);
  for (int i = 1; i <= 10; ++i) {
    c->Increment();
    recorder.SampleAt(Milliseconds(10 * i));
  }
  const TimeSeriesRecorder::Series* series = recorder.Find("c");
  ASSERT_NE(series, nullptr);
  ASSERT_EQ(series->v.size(), 4u);  // Oldest samples evicted.
  EXPECT_EQ(series->t.front(), Milliseconds(70));
  EXPECT_DOUBLE_EQ(series->v.front(), 7.0);
  EXPECT_DOUBLE_EQ(series->v.back(), 10.0);
  EXPECT_EQ(recorder.samples_taken(), 10);
}

// ---------------------------------------------------------------------------
// Critical-path analyzer (hand-built span tree, exact arithmetic)
// ---------------------------------------------------------------------------

SpanRecord MakeSpan(uint64_t span, uint64_t parent, const std::string& op,
                    SimTime start, SimTime end) {
  SpanRecord record;
  record.trace_id = 1;
  record.span_id = span;
  record.parent_span_id = parent;
  record.operation = op;
  record.start = start;
  record.end = end;
  record.outcome = "ok";
  return record;
}

TEST(CriticalPathTest, DecomposesHandBuiltTreeExactly) {
  // client.request [0,1000]
  //   fe.queue_wait [100,200]
  //   fe.request [200,900]
  //     fe.task_attempt [300,800]
  //       worker.task [400,700]
  //         worker.queue_wait [400,500]
  //         worker.service [500,700]
  std::vector<SpanRecord> spans;
  spans.push_back(MakeSpan(1, 0, "client.request", 0, 1000));
  spans.push_back(MakeSpan(2, 1, "fe.queue_wait", 100, 200));
  spans.push_back(MakeSpan(3, 1, "fe.request", 200, 900));
  spans.push_back(MakeSpan(4, 3, "fe.task_attempt", 300, 800));
  spans.push_back(MakeSpan(5, 4, "worker.task", 400, 700));
  spans.push_back(MakeSpan(6, 5, "worker.queue_wait", 400, 500));
  spans.push_back(MakeSpan(7, 5, "worker.service", 500, 700));

  auto path = AnalyzeTrace(spans);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->total, 1000);
  EXPECT_EQ(path->root_outcome, "ok");
  // Gaps not covered by a child charge to the enclosing span's stage:
  //   client gaps [0,100]+[900,1000] and attempt gaps [300,400]+[700,800]
  //   are all san_transit; fe.request's own gaps [200,300]+[800,900] are
  //   fe_processing.
  EXPECT_EQ(path->stages.at("san_transit"), 400);
  EXPECT_EQ(path->stages.at("fe_accept_queue_wait"), 100);
  EXPECT_EQ(path->stages.at("fe_processing"), 200);
  EXPECT_EQ(path->stages.at("worker_queue_wait"), 100);
  EXPECT_EQ(path->stages.at("worker_service"), 200);
  EXPECT_EQ(path->StageSum(), path->total);  // Exact, not just within 1%.
}

TEST(CriticalPathTest, ChildrenClipToParentAndRootlessTracesAreSkipped) {
  // A child that overhangs its parent's window must be clipped, keeping the
  // stage sum exact.
  std::vector<SpanRecord> spans;
  spans.push_back(MakeSpan(1, 0, "client.request", 0, 100));
  spans.push_back(MakeSpan(2, 1, "worker.service", 50, 250));  // Overhangs root.
  auto path = AnalyzeTrace(spans);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->stages.at("worker_service"), 50);
  EXPECT_EQ(path->StageSum(), path->total);

  // All spans parented on an unrecorded span: no root, no decomposition.
  std::vector<SpanRecord> orphans;
  orphans.push_back(MakeSpan(5, 4, "worker.service", 0, 10));
  EXPECT_FALSE(AnalyzeTrace(orphans).has_value());
}

TEST(CriticalPathTest, SummaryAccumulatesAndRenders) {
  CriticalPathSummary summary;
  std::vector<SpanRecord> spans;
  spans.push_back(MakeSpan(1, 0, "client.request", 0, Milliseconds(10)));
  spans.push_back(MakeSpan(2, 1, "worker.service", 0, Milliseconds(4)));
  auto path = AnalyzeTrace(spans);
  ASSERT_TRUE(path.has_value());
  summary.Add(*path);
  EXPECT_EQ(summary.request_count(), 1);
  std::string table = summary.RenderTable();
  EXPECT_NE(table.find("worker_service"), std::string::npos);
  EXPECT_NE(table.find("san_transit"), std::string::npos);
  std::string json = summary.ToJson();
  EXPECT_NE(json.find("\"worker_service\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Span parentage across retry/backoff (integration)
// ---------------------------------------------------------------------------

TEST(FlightRecorderIntegrationTest, RetriedTaskYieldsSiblingAttemptSubtrees) {
  Logger::Get().set_min_level(LogLevel::kNone);
  TranSendService service(DistillHeavyOptions());
  service.Start();
  PlaybackEngine* client = service.AddPlaybackEngine(0xF1D0);

  Rng rng(0xF1D0);
  ContentUniverse* universe = service.universe();
  client->StartConstantRate(20, [&rng, universe] {
    TraceRecord record;
    record.user_id = "retry";
    record.url = universe->UrlAt(rng.UniformInt(0, universe->url_count() - 1));
    return record;
  });
  service.sim()->RunFor(Seconds(15));

  // Crash a live distiller's node mid-run: its in-flight tasks fail or time
  // out at the FE, which backs off and retries on a surviving worker.
  auto workers = service.system()->live_workers(kJpegDistillerType);
  ASSERT_FALSE(workers.empty());
  service.system()->cluster()->CrashNode(workers[0]->node());
  service.sim()->RunFor(Seconds(30));
  client->StopLoad();
  service.sim()->RunFor(Seconds(10));

  // Find a trace where a task was attempted at least twice with a backoff span.
  TraceCollector* tracer = service.system()->tracer();
  bool found = false;
  for (uint64_t trace_id : tracer->TraceIds()) {
    std::vector<SpanRecord> spans = tracer->Trace(trace_id);
    std::vector<const SpanRecord*> attempts;
    bool has_backoff = false;
    int roots = 0;
    for (const SpanRecord& span : spans) {
      if (span.operation == "fe.task_attempt") {
        attempts.push_back(&span);
      }
      if (span.operation == "fe.retry_backoff") {
        has_backoff = true;
      }
      if (span.parent_span_id == 0) {
        ++roots;
        EXPECT_EQ(span.operation, "client.request");
      }
    }
    if (attempts.size() < 2 || !has_backoff) {
      continue;
    }
    found = true;
    // One root: the client-observed request.
    EXPECT_EQ(roots, 1);
    // Attempts are siblings: distinct spans, one shared parent, disjoint in
    // time (the second attempt starts after the first ended).
    EXPECT_NE(attempts[0]->span_id, attempts[1]->span_id);
    EXPECT_EQ(attempts[0]->parent_span_id, attempts[1]->parent_span_id);
    std::vector<const SpanRecord*> ordered = attempts;
    std::sort(ordered.begin(), ordered.end(),
              [](const SpanRecord* a, const SpanRecord* b) { return a->start < b->start; });
    EXPECT_GE(ordered[1]->start, ordered[0]->end);

    // The analyzer attributes the inter-attempt gap to retry_backoff_idle and
    // the decomposition stays exact.
    auto path = AnalyzeTrace(spans);
    ASSERT_TRUE(path.has_value());
    EXPECT_GT(path->stages["retry_backoff_idle"], 0);
    EXPECT_EQ(path->StageSum(), path->total);
    break;
  }
  EXPECT_TRUE(found) << "no retained trace had a retried task with backoff";
}

// ---------------------------------------------------------------------------
// Chrome-trace export (integration)
// ---------------------------------------------------------------------------

TEST(FlightRecorderIntegrationTest, ChromeTraceExportCarriesSpansFlowsAndFaults) {
  Logger::Get().set_min_level(LogLevel::kNone);
  TranSendService service(DistillHeavyOptions());
  service.Start();
  PlaybackEngine* client = service.AddPlaybackEngine(0xCAFE);

  FailureInjector injector(service.system()->cluster(), service.system()->san());
  service.system()->AttachFailureInjector(&injector);

  Rng rng(0xCAFE);
  ContentUniverse* universe = service.universe();
  client->StartConstantRate(15, [&rng, universe] {
    TraceRecord record;
    record.user_id = "trace";
    record.url = universe->UrlAt(rng.UniformInt(0, universe->url_count() - 1));
    return record;
  });
  service.sim()->RunFor(Seconds(10));
  auto workers = service.system()->live_workers(kJpegDistillerType);
  ASSERT_FALSE(workers.empty());
  injector.CrashProcessAt(service.sim()->now() + Seconds(1), workers[0]->pid());
  service.sim()->RunFor(Seconds(10));
  client->StopLoad();
  service.sim()->RunFor(Seconds(5));

  EXPECT_GT(injector.injected_count(), 0);
  EXPECT_GT(service.system()->event_log()->faults_recorded(), 0u);
  EXPECT_GT(service.system()->event_log()->messages_recorded(), 0u);

  std::string trace = ExportChromeTrace(*service.system()->tracer(),
                                        service.system()->event_log());
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);  // Span slices.
  EXPECT_NE(trace.find("\"ph\":\"s\""), std::string::npos);  // Flow starts.
  EXPECT_NE(trace.find("\"ph\":\"f\""), std::string::npos);  // Flow ends.
  EXPECT_NE(trace.find("\"ph\":\"i\""), std::string::npos);  // Fault instants.
  EXPECT_NE(trace.find("\"cat\":\"fault\""), std::string::npos);
  EXPECT_NE(trace.find("\"process_name\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Snapshot audit: every PR2-3 counter reaches the exported monitor snapshot
// ---------------------------------------------------------------------------

TEST(SnapshotAuditTest, MonitorExportCoversFlightRecorderCounters) {
  Logger::Get().set_min_level(LogLevel::kNone);
  TranSendOptions options = DistillHeavyOptions();
  TranSendService service(options);
  service.Start();
  PlaybackEngine* client = service.AddPlaybackEngine(0xA0D1);

  Rng rng(0xA0D1);
  ContentUniverse* universe = service.universe();
  client->StartConstantRate(10, [&rng, universe] {
    TraceRecord record;
    record.user_id = "audit";
    record.url = universe->UrlAt(rng.UniformInt(0, universe->url_count() - 1));
    return record;
  });
  service.sim()->RunFor(Seconds(15));
  client->StopLoad();
  service.sim()->RunFor(Seconds(5));

  ASSERT_NE(service.system()->monitor(), nullptr);
  std::string snapshot = service.system()->monitor()->ExportJson();

  // The full expected key set: overload-control and partition-tolerance
  // counters introduced alongside deadlines/backoff/consistent-hashing, plus
  // the SAN delivery counters the flight recorder samples. A name silently
  // missing here means the instrument was never registered with the registry
  // the monitor exports.
  const char* required[] = {
      "fe.0.completed_requests",
      "fe.0.error_responses",
      "fe.0.task_timeouts",
      "fe.0.task_retries",
      "fe.0.retries_backoff",
      "fe.0.ring_remaps",
      "fe.0.deadline_expired",
      "expired_tasks",          // worker.<type>.p<pid>.expired_tasks
      "expired_gets",           // cache.n<node>.expired_gets
      "san.messages_delivered",
      "san.datagrams_dropped",
      "san.reliable_failed_fast",
      "san.messages_lost_unreachable",
      "san.multicast_suppressed",
      // Control-plane instruments from the quorum/fencing work: the manager's
      // current mastership epoch and the membership service's vote ledger are
      // gauges bound at startup, the fence counter registers even when no kill
      // ever fires (a zero is still evidence the instrument exists).
      "manager.epoch",
      "quorum.votes_held",
      "quorum.votes_total",
      "quorum.is_quorate",
      "fencing.kills",
      // Harvest/yield ledger gauges: bound in the SnsSystem constructor and
      // refreshed on every record, so a run with offered load must export
      // non-trivial running totals alongside the ratios.
      "availability.offered",
      "availability.answered",
      "availability.yield",
      "availability.harvest",
  };
  for (const char* key : required) {
    EXPECT_NE(snapshot.find(key), std::string::npos)
        << "metric \"" << key << "\" missing from the exported snapshot";
  }

  // The flight recorder samples the same registry on a timer while the system
  // runs, so the run must have produced time series for the node probes too.
  ASSERT_NE(service.system()->recorder(), nullptr);
  EXPECT_GT(service.system()->recorder()->samples_taken(), 0);
  std::string timeseries = service.system()->recorder()->ToJson();
  EXPECT_NE(timeseries.find("cpu_util"), std::string::npos);
  EXPECT_NE(timeseries.find("fe.0.completed_requests"), std::string::npos);
}

}  // namespace
}  // namespace sns
