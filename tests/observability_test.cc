// Tests for the observability layer: the metrics registry, the trace collector,
// and end-to-end request tracing through a live TranSend system.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/services/transend/transend.h"
#include "src/sns/worker_process.h"
#include "src/util/logging.h"
#include "src/util/strings.h"

namespace sns {
namespace {

// ---------- MetricsRegistry unit tests --------------------------------------------------------

TEST(MetricsRegistryTest, InstrumentsAreStableAndCumulative) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("manager.beacons_sent");
  c->Increment();
  c->Increment(4);
  // A second lookup (a restarted process re-attaching) returns the same
  // instrument: counts survive process incarnations.
  EXPECT_EQ(registry.GetCounter("manager.beacons_sent"), c);
  EXPECT_EQ(registry.CounterValue("manager.beacons_sent"), 5);
  EXPECT_EQ(registry.CounterValue("absent"), 0);
  EXPECT_EQ(registry.FindCounter("absent"), nullptr);

  Gauge* g = registry.GetGauge("fe.0.active_requests");
  g->Set(3.5);
  EXPECT_DOUBLE_EQ(registry.FindGauge("fe.0.active_requests")->value(), 3.5);

  Histogram* h = registry.GetHistogram("fe.0.latency_s", 0.0, 10.0, 100);
  h->Add(1.0);
  EXPECT_EQ(registry.GetHistogram("fe.0.latency_s", 0.0, 99.0, 5), h);
  EXPECT_EQ(registry.instrument_count(), 3u);
}

TEST(MetricsRegistryTest, RendersSortedTextAndParseableJson) {
  MetricsRegistry registry;
  registry.GetCounter("b.count")->Increment(2);
  registry.GetCounter("a.count")->Increment(1);
  registry.GetGauge("c.depth")->Set(7);
  registry.GetHistogram("d.lat", 0.0, 1.0, 10)->Add(0.25);

  std::string text = registry.RenderText();
  EXPECT_LT(text.find("a.count"), text.find("b.count"));  // Sorted by name.

  std::string json = registry.RenderJson();
  EXPECT_NE(json.find("\"counters\":{"), std::string::npos);
  EXPECT_NE(json.find("\"a.count\":1"), std::string::npos);
  EXPECT_NE(json.find("\"b.count\":2"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\":{"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\":{"), std::string::npos);
  // Minimal well-formedness: balanced braces, no raw control characters.
  int depth = 0;
  for (char ch : json) {
    if (ch == '{') ++depth;
    if (ch == '}') --depth;
    EXPECT_GE(static_cast<unsigned char>(ch), 0x20u);
  }
  EXPECT_EQ(depth, 0);
}

TEST(MetricsRegistryTest, JsonEscapeHandlesSpecials) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(JsonEscape("x\ny"), "x\\ny");
}

// ---------- TraceCollector unit tests ---------------------------------------------------------

TEST(TraceCollectorTest, ChildSpansInheritTraceAndChainParents) {
  TraceCollector collector;
  TraceContext root = collector.StartTrace();
  EXPECT_TRUE(root.valid());
  EXPECT_EQ(root.parent_span_id, 0u);

  TraceContext child = collector.ChildOf(root);
  EXPECT_EQ(child.trace_id, root.trace_id);
  EXPECT_EQ(child.parent_span_id, root.span_id);
  EXPECT_EQ(child.hop_count, root.hop_count + 1);
  EXPECT_NE(child.span_id, root.span_id);

  // Untraced stays untraced.
  TraceContext none = collector.ChildOf(TraceContext{});
  EXPECT_FALSE(none.valid());
}

TEST(TraceCollectorTest, RecordsAndReassemblesOrderedSpans) {
  TraceCollector collector;
  TraceContext root = collector.StartTrace();
  TraceContext child = collector.ChildOf(root);

  SpanRecord inner;
  inner.trace_id = child.trace_id;
  inner.span_id = child.span_id;
  inner.parent_span_id = child.parent_span_id;
  inner.component = "worker";
  inner.operation = "worker.task";
  inner.start = 200;
  inner.end = 300;
  inner.outcome = "ok";
  collector.Record(inner);

  SpanRecord outer = inner;
  outer.span_id = root.span_id;
  outer.parent_span_id = 0;
  outer.component = "front-end-0";
  outer.operation = "fe.request";
  outer.start = 100;
  outer.end = 400;
  collector.Record(outer);

  // Invalid spans are dropped.
  collector.Record(SpanRecord{});

  std::vector<SpanRecord> spans = collector.Trace(root.trace_id);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].operation, "fe.request");  // Sorted by start time.
  EXPECT_EQ(spans[1].operation, "worker.task");
  EXPECT_EQ(collector.span_count(), 2u);

  std::string json = collector.TraceToJson(root.trace_id);
  EXPECT_NE(json.find("\"fe.request\""), std::string::npos);
  EXPECT_NE(json.find("\"worker.task\""), std::string::npos);
}

TEST(TraceCollectorTest, EvictsOldestTraceFifo) {
  TraceCollector collector(/*max_traces=*/2);
  std::vector<uint64_t> ids;
  for (int i = 0; i < 3; ++i) {
    TraceContext root = collector.StartTrace();
    SpanRecord span;
    span.trace_id = root.trace_id;
    span.span_id = root.span_id;
    span.start = i;
    span.end = i + 1;
    collector.Record(span);
    ids.push_back(root.trace_id);
  }
  EXPECT_EQ(collector.trace_count(), 2u);
  EXPECT_TRUE(collector.Trace(ids[0]).empty());   // Oldest evicted.
  EXPECT_FALSE(collector.Trace(ids[2]).empty());  // Tail retained.
  EXPECT_EQ(collector.traces_started(), 3u);
}

// ---------- end-to-end tracing through the live system ----------------------------------------

TEST(TracingIntegrationTest, RequestTraceSpansClientFrontEndCacheAndWorker) {
  Logger::Get().set_min_level(LogLevel::kNone);
  TranSendOptions options = DefaultTranSendOptions();
  options.topology.worker_pool_nodes = 4;
  options.topology.cache_nodes = 2;
  options.universe.url_count = 50;
  TranSendService service(options);
  service.Start();
  service.system()->StartWorker(kJpegDistillerType);
  PlaybackEngine* client = service.AddPlaybackEngine();
  service.sim()->RunFor(Seconds(3));

  // One cold request: front end -> cache (miss) -> origin fetch -> distiller ->
  // response. SendRequest opens the root span and returns its trace id.
  TraceRecord record;
  record.user_id = "tracer";
  record.url = "http://site0.example.edu/obj0.jpg";
  uint64_t trace_id = client->SendRequest(record);
  ASSERT_NE(trace_id, 0u);
  service.sim()->RunFor(Seconds(140));
  ASSERT_EQ(client->completed(), 1);

  std::vector<SpanRecord> spans = service.system()->tracer()->Trace(trace_id);
  ASSERT_GE(spans.size(), 4u);

  // Spans come from at least three distinct components (client, front end, and
  // cache/worker at minimum — here all four).
  std::set<std::string> components;
  std::map<uint64_t, const SpanRecord*> by_span_id;
  for (const SpanRecord& span : spans) {
    EXPECT_EQ(span.trace_id, trace_id);
    EXPECT_LE(span.start, span.end);
    components.insert(span.component);
    by_span_id[span.span_id] = &span;
  }
  EXPECT_GE(components.size(), 3u);
  EXPECT_EQ(components.count("playback"), 1u);
  EXPECT_EQ(components.count("front-end-0"), 1u);
  EXPECT_EQ(components.count("worker:" + std::string(kJpegDistillerType)), 1u);

  // Sim-times nest monotonically: every child starts no earlier than its parent.
  const SpanRecord* root = nullptr;
  const SpanRecord* fe = nullptr;
  for (const SpanRecord& span : spans) {
    if (span.parent_span_id == 0) {
      root = &span;
    }
    if (span.operation == "fe.request") {
      fe = &span;
    }
    auto parent = by_span_id.find(span.parent_span_id);
    if (parent != by_span_id.end()) {
      EXPECT_GE(span.start, parent->second->start)
          << span.operation << " starts before its parent " << parent->second->operation;
    }
  }

  // The client's span is the root and fully encloses the front end's, which in
  // turn encloses the distillation.
  ASSERT_NE(root, nullptr);
  ASSERT_NE(fe, nullptr);
  EXPECT_EQ(root->operation, "client.request");
  EXPECT_EQ(root->outcome, "ok");
  EXPECT_EQ(fe->parent_span_id, root->span_id);
  EXPECT_GE(fe->start, root->start);
  EXPECT_LE(fe->end, root->end);
  for (const SpanRecord& span : spans) {
    if (span.operation == "worker.task" || span.operation == "cache.get") {
      EXPECT_GE(span.start, fe->start);
      EXPECT_LE(span.end, fe->end);
    }
  }

  // Background chatter (beacons, load reports) stays untraced: every retained
  // trace was started by a client request.
  EXPECT_EQ(service.system()->tracer()->traces_started(), 1u);
}

// ---------- monitor snapshot export -----------------------------------------------------------

TEST(MonitorExportTest, SnapshotCarriesRegistryMetricsAndComponents) {
  Logger::Get().set_min_level(LogLevel::kNone);
  TranSendOptions options = DefaultTranSendOptions();
  options.topology.worker_pool_nodes = 4;
  options.topology.cache_nodes = 2;
  options.universe.url_count = 50;
  TranSendService service(options);
  service.Start();
  service.system()->StartWorker(kJpegDistillerType);
  PlaybackEngine* client = service.AddPlaybackEngine();
  service.sim()->RunFor(Seconds(3));
  TraceRecord record;
  record.user_id = "snap";
  record.url = "http://site0.example.edu/obj1.jpg";
  client->SendRequest(record);
  service.sim()->RunFor(Seconds(140));
  ASSERT_EQ(client->completed(), 1);

  MonitorProcess* monitor = service.system()->monitor();
  ASSERT_NE(monitor, nullptr);
  std::string json = monitor->ExportJson();

  // The renamed manager / front-end counters surface through the registry dump,
  // consistent with the accessors.
  ManagerProcess* manager = service.system()->manager();
  ASSERT_NE(manager, nullptr);
  EXPECT_NE(json.find(StrFormat("\"manager.beacons_sent\":%lld",
                                static_cast<long long>(manager->beacons_sent()))),
            std::string::npos);
  FrontEndProcess* fe = service.system()->front_end(0);
  ASSERT_NE(fe, nullptr);
  EXPECT_NE(json.find(StrFormat("\"fe.0.completed_requests\":%lld",
                                static_cast<long long>(fe->completed_requests()))),
            std::string::npos);
  EXPECT_GT(fe->completed_requests(), 0);

  // Quorum membership and fencing state (DESIGN.md §14) export through the same
  // registry dump: the epoch and vote gauges plus the fence-kill counter.
  EXPECT_NE(json.find("\"manager.epoch\":1"), std::string::npos);
  EXPECT_NE(json.find("\"quorum.is_quorate\":1"), std::string::npos);
  EXPECT_NE(json.find("\"quorum.votes_held\":"), std::string::npos);
  EXPECT_NE(json.find("\"quorum.votes_total\":"), std::string::npos);
  EXPECT_NE(json.find("\"fencing.kills\":0"), std::string::npos);

  // Structure: time, metrics, the monitor's component view, alarms.
  EXPECT_EQ(json.rfind("{\"time_ns\":", 0), 0u);
  EXPECT_NE(json.find("\"components\":["), std::string::npos);
  EXPECT_NE(json.find("\"alarms\":["), std::string::npos);
  EXPECT_NE(json.find("\"label\":\"manager\""), std::string::npos);

  // Balanced braces (quick well-formedness proxy).
  int depth = 0;
  for (char ch : json) {
    if (ch == '{') ++depth;
    if (ch == '}') --depth;
  }
  EXPECT_EQ(depth, 0);
}

}  // namespace
}  // namespace sns
