// Tests for TranSend's distillers (real transforms + reduction model) and the
// dispatch logic's cache keys and quality mapping.

#include <gtest/gtest.h>

#include "src/content/gif_codec.h"
#include "src/content/html.h"
#include "src/content/jpeg_codec.h"
#include "src/services/transend/distillers.h"
#include "src/services/transend/transend_logic.h"
#include "src/workload/content_universe.h"

namespace sns {
namespace {

TaccRequest ImageRequest(ContentPtr content, int scale, int quality) {
  TaccRequest request;
  request.url = content->url;
  request.inputs.push_back(std::move(content));
  request.args[kArgScale] = std::to_string(scale);
  request.args[kArgQuality] = std::to_string(quality);
  return request;
}

ContentPtr RealJpeg(int w, int h, int quality, uint64_t seed = 31) {
  Rng rng(seed);
  RasterImage img = SynthesizePhoto(&rng, w, h);
  return Content::Make("http://x/photo.jpg", MimeType::kJpeg, JpegEncode(img, quality));
}

ContentPtr RealGif(int w, int h, uint64_t seed = 32) {
  Rng rng(seed);
  RasterImage img = SynthesizePhoto(&rng, w, h);
  return Content::Make("http://x/photo.gif", MimeType::kGif, GifEncode(img, 128));
}

ContentPtr OpaqueImage(MimeType mime, int64_t size) {
  std::vector<uint8_t> bytes(static_cast<size_t>(size), 0x7F);
  bytes[0] = 'X';
  bytes[1] = 'X';
  return Content::Make(mime == MimeType::kGif ? "http://x/o.gif" : "http://x/o.jpg", mime,
                       std::move(bytes));
}

// ---------- JPEG distiller -----------------------------------------------------------

TEST(JpegDistillerTest, RealImageShrinksAndHalvesDimensions) {
  JpegDistiller distiller;
  ContentPtr original = RealJpeg(128, 96, 85);
  TaccResult result = distiller.Process(ImageRequest(original, 2, 25));
  ASSERT_TRUE(result.status.ok());
  EXPECT_LT(result.output->size(), original->size());
  auto decoded = JpegDecode(result.output->bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->width(), 64);
  EXPECT_EQ(decoded->height(), 48);
}

TEST(JpegDistillerTest, OpaqueImageUsesReductionModel) {
  JpegDistiller distiller;
  ContentPtr original = OpaqueImage(MimeType::kJpeg, 10240);
  TaccResult result = distiller.Process(ImageRequest(original, 2, 25));
  ASSERT_TRUE(result.status.ok());
  int64_t expected = static_cast<int64_t>(10240 * ImageReductionRatio(2, 25));
  EXPECT_NEAR(static_cast<double>(result.output->size()), static_cast<double>(expected),
              expected * 0.1 + 200.0);
}

TEST(JpegDistillerTest, FailsOnEmptyInput) {
  JpegDistiller distiller;
  TaccRequest request;
  request.url = "http://x/a.jpg";
  EXPECT_FALSE(distiller.Process(request).status.ok());
}

TEST(JpegDistillerTest, CostScalesWithInputSize) {
  JpegDistiller distiller;
  TaccRequest small = ImageRequest(OpaqueImage(MimeType::kJpeg, 1024), 2, 25);
  TaccRequest large = ImageRequest(OpaqueImage(MimeType::kJpeg, 102400), 2, 25);
  EXPECT_GT(distiller.EstimateCost(large), 10 * distiller.EstimateCost(small));
}

TEST(JpegDistillerTest, CostIsDeterministicPerUrlButVariesAcrossUrls) {
  JpegDistiller distiller;
  TaccRequest a = ImageRequest(OpaqueImage(MimeType::kJpeg, 10000), 2, 25);
  EXPECT_EQ(distiller.EstimateCost(a), distiller.EstimateCost(a));
  TaccRequest b = a;
  b.url = "http://elsewhere/pic.jpg";
  EXPECT_NE(distiller.EstimateCost(a), distiller.EstimateCost(b));
}

// ---------- GIF distiller -------------------------------------------------------------

TEST(GifDistillerTest, ConvertsGifToJpegAndShrinks) {
  GifDistiller distiller;
  ContentPtr original = RealGif(120, 90);
  TaccResult result = distiller.Process(ImageRequest(original, 2, 25));
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(result.output->mime, MimeType::kJpeg);  // GIF->JPEG conversion (§3.1.6).
  EXPECT_TRUE(IsJpeg(result.output->bytes));
  EXPECT_LT(result.output->size(), original->size() / 3);
}

TEST(GifDistillerTest, GifCostSlopeIsSteeperThanJpeg) {
  // Fig. 7 measured ~8 ms/KB for GIF; the JPEG path is cheaper.
  GifDistiller gif;
  JpegDistiller jpeg;
  TaccRequest g = ImageRequest(OpaqueImage(MimeType::kGif, 20480), 2, 25);
  TaccRequest j = ImageRequest(OpaqueImage(MimeType::kJpeg, 20480), 2, 25);
  j.url = g.url;  // Same cost-noise draw.
  EXPECT_GT(gif.EstimateCost(g), jpeg.EstimateCost(j));
}

// ---------- HTML distiller -------------------------------------------------------------

TEST(HtmlDistillerTest, MungesUnderProfileControl) {
  HtmlDistiller distiller;
  std::string page = "<html><body><img src=\"http://a/pic.gif\"><p>text</p></body></html>";
  TaccRequest request;
  request.url = "http://a/page.html";
  request.inputs.push_back(Content::Make(
      request.url, MimeType::kHtml, std::vector<uint8_t>(page.begin(), page.end())));
  request.profile.Set("quality", "low");
  TaccResult result = distiller.Process(request);
  ASSERT_TRUE(result.status.ok());
  std::string munged(result.output->bytes.begin(), result.output->bytes.end());
  EXPECT_NE(munged.find("transend-toolbar"), std::string::npos);
  EXPECT_NE(munged.find("q=low"), std::string::npos);  // Prefs drive the rewrite.
  EXPECT_NE(munged.find("[original]"), std::string::npos);
}

TEST(HtmlDistillerTest, ProfileCanDisableToolbar) {
  HtmlDistiller distiller;
  std::string page = "<html><body><p>x</p></body></html>";
  TaccRequest request;
  request.url = "http://a/p.html";
  request.inputs.push_back(Content::Make(
      request.url, MimeType::kHtml, std::vector<uint8_t>(page.begin(), page.end())));
  request.profile.Set("toolbar", "false");
  TaccResult result = distiller.Process(request);
  ASSERT_TRUE(result.status.ok());
  std::string munged(result.output->bytes.begin(), result.output->bytes.end());
  EXPECT_EQ(munged.find("transend-toolbar"), std::string::npos);
}

// ---------- reduction model & registry ---------------------------------------------------

TEST(ReductionModelTest, MonotoneInScaleAndQuality) {
  EXPECT_LT(ImageReductionRatio(2, 25), ImageReductionRatio(1, 25));
  EXPECT_LT(ImageReductionRatio(2, 25), ImageReductionRatio(2, 75));
  EXPECT_GE(ImageReductionRatio(1, 100), ImageReductionRatio(4, 10));
  EXPECT_GE(ImageReductionRatio(16, 1), 0.01);
  EXPECT_LE(ImageReductionRatio(1, 100), 1.0);
}

TEST(ReductionModelTest, PaperOperatingPoint) {
  // Fig. 3's 10KB -> 1.5KB at scale 2 / quality 25: ratio ~0.15.
  double ratio = ImageReductionRatio(2, 25);
  EXPECT_GT(ratio, 0.05);
  EXPECT_LT(ratio, 0.25);
}

TEST(RegistryIntegrationTest, RegistersAllThreeDistillers) {
  WorkerRegistry registry;
  RegisterTranSendDistillers(&registry);
  EXPECT_TRUE(registry.Has(kJpegDistillerType));
  EXPECT_TRUE(registry.Has(kGifDistillerType));
  EXPECT_TRUE(registry.Has(kHtmlDistillerType));
  EXPECT_EQ(registry.Create(kGifDistillerType)->type(), kGifDistillerType);
}

// ---------- dispatch logic helpers ----------------------------------------------------

TEST(TranSendLogicTest, CacheKeysIncludePreferences) {
  EXPECT_EQ(TranSendLogic::OriginalKey("http://a/x.gif"), "http://a/x.gif|orig");
  EXPECT_EQ(TranSendLogic::VariantKey("http://a/x.gif", "low"),
            "http://a/x.gif|distilled|low");
  EXPECT_NE(TranSendLogic::VariantKey("u", "low"), TranSendLogic::VariantKey("u", "high"));
}

TEST(TranSendLogicTest, QualityLabelsMapToDistillerArgs) {
  auto low = TranSendLogicConfig::ArgsForQuality("low");
  EXPECT_EQ(low[kArgScale], "4");
  EXPECT_EQ(low[kArgQuality], "10");
  auto med = TranSendLogicConfig::ArgsForQuality("med");
  EXPECT_EQ(med[kArgScale], "2");
  EXPECT_EQ(med[kArgQuality], "25");  // Fig. 3's operating point.
  auto high = TranSendLogicConfig::ArgsForQuality("high");
  EXPECT_EQ(high[kArgScale], "1");
  auto unknown = TranSendLogicConfig::ArgsForQuality("bogus");
  EXPECT_EQ(unknown[kArgScale], "2");  // Defaults to "med".
}

// End-to-end distillation through the local pipeline runner on real universe
// content (the TACC composition path without the cluster).
TEST(TranSendLogicTest, LocalPipelineDistillsRealUniverseImage) {
  ContentUniverseConfig config;
  config.url_count = 500;
  config.real_image_max_bytes = 30000;
  ContentUniverse universe(config);
  WorkerRegistry registry;
  RegisterTranSendDistillers(&registry);

  for (int i = 0; i < 500; ++i) {
    std::string url = universe.UrlAt(i);
    if (universe.MimeOf(url) != MimeType::kGif) {
      continue;
    }
    ContentPtr content = universe.GetContent(url);
    if (!IsGif(content->bytes) || content->size() < 2048) {
      continue;
    }
    TaccRequest request;
    request.url = url;
    request.inputs.push_back(content);
    TaccResult result = RunPipelineLocally(
        registry, PipelineSpec::Single(kGifDistillerType, {{kArgScale, "2"}, {kArgQuality, "25"}}),
        request);
    ASSERT_TRUE(result.status.ok());
    EXPECT_LT(result.output->size(), content->size());
    return;
  }
  GTEST_SKIP() << "no real GIF above threshold in sample";
}

}  // namespace
}  // namespace sns
