// Tests for the trace playback engine and the origin server.

#include <gtest/gtest.h>

#include "src/services/transend/transend.h"
#include "src/util/logging.h"
#include "src/workload/origin_server.h"
#include "src/workload/playback.h"

namespace sns {
namespace {

TranSendOptions TinyOptions() {
  TranSendOptions options = DefaultTranSendOptions();
  options.topology.worker_pool_nodes = 3;
  options.topology.cache_nodes = 2;
  options.universe.url_count = 60;
  return options;
}

TEST(PlaybackTest, ConstantRateIssuesAtConfiguredRate) {
  Logger::Get().set_min_level(LogLevel::kNone);
  TranSendService service(TinyOptions());
  service.Start();
  PlaybackEngine* client = service.AddPlaybackEngine();
  service.sim()->RunFor(Seconds(2));

  TraceRecord record;
  record.user_id = "r";
  record.url = service.universe()->UrlAt(0);
  client->StartConstantRate(10, [&record] { return record; });
  service.sim()->RunFor(Seconds(20));
  client->StopLoad();
  EXPECT_NEAR(static_cast<double>(client->sent()), 200.0, 3.0);
}

TEST(PlaybackTest, RateIsDynamicallyTunable) {
  Logger::Get().set_min_level(LogLevel::kNone);
  TranSendService service(TinyOptions());
  service.Start();
  PlaybackEngine* client = service.AddPlaybackEngine();
  service.sim()->RunFor(Seconds(2));

  TraceRecord record;
  record.user_id = "r";
  record.url = service.universe()->UrlAt(0);
  client->StartConstantRate(5, [&record] { return record; });
  service.sim()->RunFor(Seconds(10));
  int64_t at_five = client->sent();
  client->SetRate(50);
  service.sim()->RunFor(Seconds(10));
  client->StopLoad();
  int64_t at_fifty = client->sent() - at_five;
  EXPECT_NEAR(static_cast<double>(at_five), 50.0, 3.0);
  EXPECT_NEAR(static_cast<double>(at_fifty), 500.0, 10.0);
}

TEST(PlaybackTest, TracePlaybackHonorsTimestamps) {
  Logger::Get().set_min_level(LogLevel::kNone);
  TranSendService service(TinyOptions());
  service.Start();
  PlaybackEngine* client = service.AddPlaybackEngine();
  service.sim()->RunFor(Seconds(2));

  // Three records spaced 5 s apart.
  std::vector<TraceRecord> records;
  for (int i = 0; i < 3; ++i) {
    TraceRecord record;
    record.time = Seconds(5) * i;
    record.user_id = "t";
    record.url = service.universe()->UrlAt(i);
    records.push_back(record);
  }
  SimTime start = service.sim()->now();
  client->PlayTrace(records, Seconds(1));
  service.sim()->RunUntil(start + Milliseconds(1500.0));
  EXPECT_EQ(client->sent(), 1);
  service.sim()->RunUntil(start + Seconds(6) + Milliseconds(500.0));
  EXPECT_EQ(client->sent(), 2);
  service.sim()->RunUntil(start + Seconds(11) + Milliseconds(500.0));
  EXPECT_EQ(client->sent(), 3);
}

TEST(PlaybackTest, ClientSideBalancingMasksFrontEndDeath) {
  // §3.1.2: client-side selection "balances load across multiple front ends and
  // masks transient front end failures".
  Logger::Get().set_min_level(LogLevel::kNone);
  TranSendOptions options = TinyOptions();
  options.topology.front_ends = 2;
  TranSendService service(options);
  service.Start();
  PlaybackEngine* client = service.AddPlaybackEngine();
  service.sim()->RunFor(Seconds(2));

  // Warm one URL so requests are fast.
  TraceRecord record;
  record.user_id = "b";
  record.url = service.universe()->UrlAt(0);
  client->SendRequest(record);
  service.sim()->RunFor(Seconds(130));
  client->ResetStats();

  client->StartConstantRate(10, [&record] { return record; });
  service.sim()->RunFor(Seconds(5));
  // Kill FE 0; the live-FE callback immediately stops routing to it.
  FrontEndProcess* fe0 = service.system()->front_end(0);
  ASSERT_NE(fe0, nullptr);
  service.system()->cluster()->Crash(fe0->pid());
  service.sim()->RunFor(Seconds(20));
  client->StopLoad();
  service.sim()->RunFor(Seconds(5));

  // A handful of in-flight requests may be lost with the FE; everything routed
  // after the failure succeeds via FE 1 (and FE 0 is eventually restarted).
  EXPECT_GT(client->completed(), 200);
  EXPECT_LT(client->timeouts() + client->send_failures(), 15);
}

TEST(PlaybackTest, StopLoadCancelsPendingTicks) {
  Logger::Get().set_min_level(LogLevel::kNone);
  TranSendService service(TinyOptions());
  service.Start();
  PlaybackEngine* client = service.AddPlaybackEngine();
  service.sim()->RunFor(Seconds(2));
  TraceRecord record;
  record.user_id = "s";
  record.url = service.universe()->UrlAt(0);
  client->StartConstantRate(10, [&record] { return record; });
  service.sim()->RunFor(Seconds(5));
  client->StopLoad();
  int64_t sent = client->sent();
  service.sim()->RunFor(Seconds(30));
  EXPECT_EQ(client->sent(), sent);
}

// ---------- origin server ---------------------------------------------------------------

TEST(OriginTest, LatencyClampedToPaperRange) {
  OriginConfig config;
  Rng rng(0x0121);
  for (int i = 0; i < 10000; ++i) {
    double latency_s = rng.LogNormal(config.latency_mu, config.latency_sigma);
    SimDuration clamped =
        std::clamp(Seconds(latency_s), config.min_latency, config.max_latency);
    EXPECT_GE(clamped, Milliseconds(100.0));
    EXPECT_LE(clamped, Seconds(100));
  }
}

TEST(OriginTest, BlackholedFetchesTimeOutAtTheFrontEnd) {
  Logger::Get().set_min_level(LogLevel::kNone);
  TranSendOptions options = TinyOptions();
  options.origin.blackhole_fraction = 1.0;  // Every server unreachable.
  options.sns.fetch_timeout = Seconds(5);
  TranSendService service(options);
  service.Start();
  PlaybackEngine* client = service.AddPlaybackEngine();
  service.sim()->RunFor(Seconds(2));

  TraceRecord record;
  record.user_id = "bh";
  record.url = service.universe()->UrlAt(0);
  client->SendRequest(record);
  service.sim()->RunFor(Seconds(20));
  // The FE's fetch timeout fires and the client gets an error response — the
  // system never hangs on a dead origin.
  EXPECT_EQ(client->completed(), 1);
  EXPECT_EQ(client->errors(), 1);
}

}  // namespace
}  // namespace sns
