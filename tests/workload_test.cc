// Tests for the workload models: size distributions, the content universe, the
// trace generator, and bucketing.

#include <gtest/gtest.h>

#include "src/content/gif_codec.h"
#include "src/content/html.h"
#include "src/content/jpeg_codec.h"
#include "src/util/stats.h"
#include "src/workload/content_universe.h"
#include "src/workload/size_model.h"
#include "src/workload/trace.h"

namespace sns {
namespace {

// ---------- size model --------------------------------------------------------------

TEST(SizeModelTest, MimeMixMatchesPaper) {
  SizeModel model;
  Rng rng(1);
  int gif = 0;
  int html = 0;
  int jpeg = 0;
  int other = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    switch (model.SampleMime(&rng)) {
      case MimeType::kGif:
        ++gif;
        break;
      case MimeType::kHtml:
        ++html;
        break;
      case MimeType::kJpeg:
        ++jpeg;
        break;
      case MimeType::kOther:
        ++other;
        break;
    }
  }
  EXPECT_NEAR(gif / double(kN), 0.50, 0.01);
  EXPECT_NEAR(html / double(kN), 0.22, 0.01);
  EXPECT_NEAR(jpeg / double(kN), 0.18, 0.01);
  EXPECT_NEAR(other / double(kN), 0.10, 0.01);
}

// Property sweep over types: mean sizes land near the paper's trace averages.
struct MeanCase {
  MimeType mime;
  double paper_mean;
  double tolerance;
};

class SizeMeanSweep : public ::testing::TestWithParam<MeanCase> {};

TEST_P(SizeMeanSweep, MeanNearPaperValue) {
  const MeanCase& c = GetParam();
  SizeModel model;
  Rng rng(2);
  RunningStats stats;
  for (int i = 0; i < 300000; ++i) {
    stats.Add(static_cast<double>(model.SampleSize(c.mime, &rng)));
  }
  EXPECT_NEAR(stats.mean() / c.paper_mean, 1.0, c.tolerance);
}

INSTANTIATE_TEST_SUITE_P(PaperMeans, SizeMeanSweep,
                         ::testing::Values(MeanCase{MimeType::kHtml, 5131, 0.08},
                                           MeanCase{MimeType::kGif, 3428, 0.08},
                                           MeanCase{MimeType::kJpeg, 12070, 0.08}));

TEST(SizeModelTest, GifIsBimodalAroundOneKb) {
  SizeModel model;
  Rng rng(3);
  int below = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    if (model.SampleSize(MimeType::kGif, &rng) < 1024) {
      ++below;
    }
  }
  // The icon plateau: roughly half of GIFs below the threshold (paper Fig. 5).
  EXPECT_GT(below / double(kN), 0.40);
  EXPECT_LT(below / double(kN), 0.65);
}

TEST(SizeModelTest, JpegFallsOffBelowOneKb) {
  SizeModel model;
  Rng rng(4);
  int below = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    if (model.SampleSize(MimeType::kJpeg, &rng) < 1024) {
      ++below;
    }
  }
  EXPECT_LT(below / double(kN), 0.08);
}

TEST(SizeModelTest, SizesRespectBounds) {
  SizeModel model;
  Rng rng(5);
  for (int i = 0; i < 20000; ++i) {
    int64_t size = model.SampleSize(MimeType::kHtml, &rng);
    EXPECT_GE(size, model.config().min_bytes);
    EXPECT_LE(size, model.config().max_bytes);
  }
}

// ---------- content universe --------------------------------------------------------

TEST(UniverseTest, ContentIsDeterministicPerUrl) {
  ContentUniverseConfig config;
  config.url_count = 100;
  ContentUniverse a(config);
  ContentUniverse b(config);
  for (int i = 0; i < 20; ++i) {
    std::string url = a.UrlAt(i);
    EXPECT_EQ(url, b.UrlAt(i));
    EXPECT_EQ(a.GetContent(url)->bytes, b.GetContent(url)->bytes);
  }
}

TEST(UniverseTest, DifferentSeedsDiffer) {
  ContentUniverseConfig ca;
  ContentUniverseConfig cb;
  cb.seed = ca.seed + 1;
  ContentUniverse a(ca);
  ContentUniverse b(cb);
  EXPECT_NE(a.GetContent(a.UrlAt(0))->bytes, b.GetContent(a.UrlAt(0))->bytes);
}

TEST(UniverseTest, SizesTrackModeledSizes) {
  ContentUniverseConfig config;
  config.url_count = 300;
  ContentUniverse universe(config);
  for (int i = 0; i < 100; ++i) {
    std::string url = universe.UrlAt(i);
    ContentPtr content = universe.GetContent(url);
    // Padding guarantees >= modeled size; generation may exceed slightly.
    EXPECT_GE(content->size(), universe.ModeledSize(url));
    EXPECT_LE(content->size(), universe.ModeledSize(url) * 2 + 4096);
  }
}

TEST(UniverseTest, MimeFollowsExtension) {
  ContentUniverseConfig config;
  config.url_count = 500;
  ContentUniverse universe(config);
  int gif = 0;
  for (int i = 0; i < 500; ++i) {
    std::string url = universe.UrlAt(i);
    EXPECT_EQ(universe.MimeOf(url), universe.GetContent(url)->mime);
    gif += universe.MimeOf(url) == MimeType::kGif ? 1 : 0;
  }
  EXPECT_GT(gif, 180);  // ~50% by the request mix.
}

TEST(UniverseTest, OpaqueImagesFailMagicCheck) {
  ContentUniverseConfig config;
  config.url_count = 200;
  config.real_image_max_bytes = 0;  // All imagery opaque.
  ContentUniverse universe(config);
  for (int i = 0; i < 200; ++i) {
    std::string url = universe.UrlAt(i);
    if (universe.MimeOf(url) == MimeType::kGif) {
      EXPECT_FALSE(IsRealImage(MimeType::kGif, universe.GetContent(url)->bytes));
    }
  }
}

TEST(UniverseTest, RealImagesDecode) {
  ContentUniverseConfig config;
  config.url_count = 400;
  config.real_image_max_bytes = 20000;
  ContentUniverse universe(config);
  int real_checked = 0;
  for (int i = 0; i < 400 && real_checked < 5; ++i) {
    std::string url = universe.UrlAt(i);
    ContentPtr content = universe.GetContent(url);
    if (content->mime == MimeType::kGif && IsGif(content->bytes)) {
      EXPECT_TRUE(GifDecode(content->bytes).ok());
      ++real_checked;
    } else if (content->mime == MimeType::kJpeg && IsJpeg(content->bytes)) {
      EXPECT_TRUE(JpegDecode(content->bytes).ok());
      ++real_checked;
    }
  }
  EXPECT_GT(real_checked, 0);
}

TEST(UniverseTest, HtmlContentIsRealMarkup) {
  ContentUniverseConfig config;
  config.url_count = 300;
  ContentUniverse universe(config);
  for (int i = 0; i < 300; ++i) {
    std::string url = universe.UrlAt(i);
    if (universe.MimeOf(url) == MimeType::kHtml) {
      ContentPtr content = universe.GetContent(url);
      std::string text(content->bytes.begin(), content->bytes.end());
      EXPECT_NE(text.find("<html>"), std::string::npos);
      return;
    }
  }
  FAIL() << "no HTML url in first 300";
}

TEST(UniverseTest, PopularUrlsFollowZipf) {
  ContentUniverseConfig config;
  config.url_count = 1000;
  ContentUniverse universe(config);
  Rng rng(6);
  std::map<std::string, int> counts;
  for (int i = 0; i < 50000; ++i) {
    ++counts[universe.SamplePopularUrl(&rng)];
  }
  // Rank-0 URL drawn far more often than a mid-rank one.
  EXPECT_GT(counts[universe.UrlAt(0)], counts[universe.UrlAt(500)] * 3);
}

// ---------- trace generation ----------------------------------------------------------

TEST(TraceTest, RateMatchesConfiguredMean) {
  TraceGenConfig config;
  config.duration = Hours(4);
  config.mean_rate = 5.8;
  config.diurnal_amplitude = 0.0;  // Flat for a clean mean check.
  TraceGenerator generator(config, nullptr);
  int64_t count = generator.Generate([](const TraceRecord&) {});
  double rate = static_cast<double>(count) / (4 * 3600.0);
  EXPECT_NEAR(rate, 5.8, 0.8);
}

TEST(TraceTest, DiurnalCycleVisible) {
  TraceGenConfig config;
  config.duration = Hours(24);
  config.mean_rate = 5.0;
  TraceGenerator generator(config, nullptr);
  std::vector<SimTime> times;
  generator.Generate([&](const TraceRecord& r) { times.push_back(r.time); });
  auto hourly = BucketCounts(times, Hours(1), Hours(24));
  // Midday (peak of the sinusoid) beats the early-morning trough.
  int64_t peak = hourly[12];
  int64_t trough = hourly[2];
  EXPECT_GT(peak, trough * 2);
}

TEST(TraceTest, DeterministicForSeed) {
  TraceGenConfig config;
  config.duration = Minutes(30);
  ContentUniverseConfig uconfig;
  uconfig.url_count = 50;
  ContentUniverse universe(uconfig);
  TraceGenerator a(config, &universe);
  TraceGenerator b(config, &universe);
  auto ra = a.GenerateVector();
  auto rb = b.GenerateVector();
  ASSERT_EQ(ra.size(), rb.size());
  for (size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].time, rb[i].time);
    EXPECT_EQ(ra[i].url, rb[i].url);
    EXPECT_EQ(ra[i].user_id, rb[i].user_id);
  }
}

TEST(TraceTest, VectorIsSortedByTime) {
  TraceGenConfig config;
  config.duration = Minutes(10);
  TraceGenerator generator(config, nullptr);
  auto records = generator.GenerateVector();
  for (size_t i = 1; i < records.size(); ++i) {
    EXPECT_LE(records[i - 1].time, records[i].time);
  }
}

TEST(BucketCountsTest, CountsPerBucket) {
  std::vector<SimTime> times = {Seconds(0), Seconds(1), Milliseconds(1500.0), Seconds(5),
                                Seconds(100)};
  auto counts = BucketCounts(times, Seconds(2), Seconds(10));
  ASSERT_EQ(counts.size(), 5u);
  EXPECT_EQ(counts[0], 3);  // 0, 1, 1.5
  EXPECT_EQ(counts[2], 1);  // 5
  // 100 s is outside the window: ignored.
  int64_t total = 0;
  for (int64_t c : counts) {
    total += c;
  }
  EXPECT_EQ(total, 4);
}

}  // namespace
}  // namespace sns
