// Differential test: the timer-wheel Simulator vs the binary-heap reference.
//
// The wheel rewrite (DESIGN.md §12) must be observationally identical to a
// straightforward heap-based event queue: same pop order (FIFO tie-break at
// equal times), same clock, same pending/executed counts, same Cancel results —
// under long randomized sequences of schedule / cancel / run operations, with
// delays chosen to land in every wheel level and the overflow heap. The
// reference (bench/reference_heap_sim.h) is the retired pre-wheel algorithm
// with corrected bookkeeping, so each side's behavior is independently derived.
//
// Runs under the asan-ubsan preset like every test in this directory, which is
// where the slab/free-list lifetime discipline actually gets exercised.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "bench/reference_heap_sim.h"
#include "src/sim/simulator.h"
#include "src/sim/timer.h"
#include "src/util/rng.h"

namespace sns {
namespace {

// One live event tracked on both sides. Tokens record pop order.
struct LivePair {
  EventId wheel_id;
  ReferenceHeapSim::RefEventId heap_id;
  uint64_t token;
};

class DifferentialHarness {
 public:
  void ScheduleBoth(SimDuration delay) {
    uint64_t token = next_token_++;
    LivePair pair;
    pair.token = token;
    pair.wheel_id = wheel_.Schedule(delay, [this, token] { wheel_order_.push_back(token); });
    pair.heap_id = heap_.Schedule(delay, [this, token] { heap_order_.push_back(token); });
    live_.push_back(pair);
  }

  // Cancels the live pair at `index` (mod size); both sides must agree on the
  // result. Returns false if there was nothing to cancel.
  bool CancelBoth(uint64_t index) {
    if (live_.empty()) return false;
    size_t i = static_cast<size_t>(index % live_.size());
    bool wheel_ok = wheel_.Cancel(live_[i].wheel_id);
    bool heap_ok = heap_.Cancel(live_[i].heap_id);
    EXPECT_EQ(wheel_ok, heap_ok) << "Cancel disagreement, token " << live_[i].token;
    live_.erase(live_.begin() + static_cast<ptrdiff_t>(i));
    return true;
  }

  void StepBoth() {
    bool wheel_ran = wheel_.Step();
    bool heap_ran = heap_.Step();
    EXPECT_EQ(wheel_ran, heap_ran);
    CheckState();
  }

  void RunUntilBoth(SimTime t) {
    wheel_.RunUntil(t);
    heap_.RunUntil(t);
    CheckState();
  }

  void RunBoth() {
    wheel_.Run();
    heap_.Run();
    CheckState();
  }

  void CheckState() {
    ASSERT_EQ(wheel_order_, heap_order_) << "pop-order divergence";
    EXPECT_EQ(wheel_.now(), heap_.now());
    EXPECT_EQ(wheel_.pending_events(), heap_.pending_events());
    EXPECT_EQ(wheel_.executed_events(), heap_.executed_events());
  }

  SimTime now() const { return heap_.now(); }
  Simulator& wheel() { return wheel_; }

 private:
  Simulator wheel_;
  ReferenceHeapSim heap_;
  uint64_t next_token_ = 1;
  std::vector<LivePair> live_;
  std::vector<uint64_t> wheel_order_;
  std::vector<uint64_t> heap_order_;
};

// Delay distribution covering every placement class: immediate (0), sub-tick,
// level 0/1/2 of the wheel, and past the ~68.7 s horizon (overflow heap), plus
// frequent exact collisions to stress the FIFO tie-break.
SimDuration PickDelay(Rng* rng) {
  switch (rng->Next() % 8) {
    case 0:
      return 0;  // Fires at now: tie with everything scheduled "now".
    case 1:
      return static_cast<SimDuration>(rng->Next() % 4096);  // Sub-tick.
    case 2:
    case 3:
      return static_cast<SimDuration>(rng->Next() % 1000) * kMicrosecond;  // L0/L1.
    case 4:
    case 5:
      return static_cast<SimDuration>(1 + rng->Next() % 250) * kMillisecond;  // L1/L2.
    case 6:
      return Seconds(1 + static_cast<double>(rng->Next() % 60));  // Deep L2.
    default:
      return Seconds(70 + static_cast<double>(rng->Next() % 300));  // Overflow.
  }
}

TEST(SimDifferentialTest, RandomizedChurnMatchesReference) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    Rng rng(seed);
    DifferentialHarness h;
    for (int op = 0; op < 4000; ++op) {
      switch (rng.Next() % 10) {
        case 0:
        case 1:
        case 2:
        case 3:  // 40%: schedule.
          h.ScheduleBoth(PickDelay(&rng));
          break;
        case 4:
        case 5:  // 20%: cancel a tracked event (may already have fired).
          h.CancelBoth(rng.Next());
          break;
        case 6:
        case 7:  // 20%: single step.
          h.StepBoth();
          break;
        case 8:  // 10%: bounded run.
          h.RunUntilBoth(h.now() +
                         static_cast<SimDuration>(rng.Next() % 50) * kMillisecond);
          break;
        default:  // 10%: schedule a burst at one instant (pure FIFO stress).
          for (int i = 0; i < 5; ++i) {
            h.ScheduleBoth(Seconds(1));
          }
          break;
      }
    }
    h.RunBoth();  // Drain completely; final order/counts must match.
    h.CheckState();
  }
}

TEST(SimDifferentialTest, RearmHeavySequences) {
  // Rapid cancel-and-reschedule of the same logical timer, the OneShotTimer
  // rearm pattern, across placement classes.
  Rng rng(99);
  DifferentialHarness h;
  for (int round = 0; round < 500; ++round) {
    h.ScheduleBoth(PickDelay(&rng));
    h.CancelBoth(rng.Next());   // Usually cancels the one just scheduled.
    h.ScheduleBoth(PickDelay(&rng));
    if (round % 3 == 0) h.StepBoth();
  }
  h.RunBoth();
}

TEST(SimDifferentialTest, PeriodicTimerSequencesMatchReference) {
  // PeriodicTimer drives the paper's beacon channels; its reschedule-then-fire
  // loop must produce identical firing counts and clocks on the wheel as a
  // hand-rolled periodic chain on the reference heap.
  Simulator wheel;
  ReferenceHeapSim heap;

  std::vector<SimTime> wheel_fires;
  PeriodicTimer beacon(&wheel, Milliseconds(250.0), [&] { wheel_fires.push_back(wheel.now()); });
  beacon.Start();

  std::vector<SimTime> heap_fires;
  std::function<void()> rearm = [&] {
    heap_fires.push_back(heap.now());
    heap.Schedule(Milliseconds(250.0), rearm);
  };
  heap.Schedule(Milliseconds(250.0), rearm);

  // Jagged advance pattern so firings land mid-window and at exact boundaries.
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    SimDuration step = static_cast<SimDuration>(1 + rng.Next() % 400) * kMillisecond;
    wheel.RunFor(step);
    heap.RunFor(step);
    ASSERT_EQ(wheel.now(), heap.now());
    ASSERT_EQ(wheel_fires, heap_fires);
  }
  beacon.Stop();
  EXPECT_FALSE(beacon.running());
}

}  // namespace
}  // namespace sns
