// Tests for the TACC layer: profiles, the worker API, the registry, and pipeline
// composition.

#include <gtest/gtest.h>

#include "src/tacc/pipeline.h"
#include "src/tacc/profile.h"
#include "src/tacc/registry.h"
#include "src/tacc/worker.h"

namespace sns {
namespace {

// ---------- profiles -------------------------------------------------------------

TEST(ProfileTest, SetGetAndTypedAccessors) {
  UserProfile profile("user1");
  profile.Set("quality", "low");
  profile.Set("scale", "4");
  profile.Set("toolbar", "true");
  EXPECT_EQ(profile.GetOr("quality", "med"), "low");
  EXPECT_EQ(profile.GetOr("missing", "med"), "med");
  EXPECT_EQ(profile.GetIntOr("scale", 1), 4);
  EXPECT_EQ(profile.GetIntOr("quality", 9), 9);  // Non-numeric falls back.
  EXPECT_TRUE(profile.GetBoolOr("toolbar", false));
  EXPECT_FALSE(profile.GetBoolOr("missing", false));
}

TEST(ProfileTest, SerializeRoundTrip) {
  UserProfile profile("user42");
  profile.Set("a", "1");
  profile.Set("binary", std::string("\x00\x01\x02", 3));
  profile.Set("keywords", "cluster,base");
  auto restored = UserProfile::Deserialize("user42", profile.Serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->pairs(), profile.pairs());
  EXPECT_EQ(restored->user_id(), "user42");
}

TEST(ProfileTest, DeserializeRejectsTruncation) {
  UserProfile profile("u");
  profile.Set("key", "value");
  std::string data = profile.Serialize();
  data.resize(data.size() - 3);
  EXPECT_FALSE(UserProfile::Deserialize("u", data).ok());
  EXPECT_FALSE(UserProfile::Deserialize("u", "xy").ok());
}

TEST(ProfileTest, WireSizeGrowsWithContent) {
  UserProfile small("u");
  UserProfile big("u");
  big.Set("key", std::string(1000, 'x'));
  EXPECT_GT(big.WireSize(), small.WireSize() + 900);
}

// ---------- worker API -----------------------------------------------------------

class UpperCaseWorker : public TaccWorker {
 public:
  std::string type() const override { return "upper"; }
  TaccResult Process(const TaccRequest& request) override {
    std::vector<uint8_t> out = request.input()->bytes;
    for (uint8_t& b : out) {
      b = static_cast<uint8_t>(std::toupper(b));
    }
    return TaccResult::Ok(Content::Make(request.url, MimeType::kHtml, std::move(out)));
  }
};

class SuffixWorker : public TaccWorker {
 public:
  std::string type() const override { return "suffix"; }
  TaccResult Process(const TaccRequest& request) override {
    std::vector<uint8_t> out = request.input()->bytes;
    std::string suffix = request.ArgOr("suffix", "!");
    out.insert(out.end(), suffix.begin(), suffix.end());
    return TaccResult::Ok(Content::Make(request.url, MimeType::kHtml, std::move(out)));
  }
};

class FailingWorker : public TaccWorker {
 public:
  std::string type() const override { return "fail"; }
  TaccResult Process(const TaccRequest&) override {
    return TaccResult::Fail(InternalError("boom"));
  }
};

TaccRequest MakeRequest(const std::string& text) {
  TaccRequest request;
  request.url = "http://x/page.html";
  request.inputs.push_back(
      Content::Make(request.url, MimeType::kHtml, std::vector<uint8_t>(text.begin(), text.end())));
  return request;
}

std::string TextOf(const ContentPtr& content) {
  return std::string(content->bytes.begin(), content->bytes.end());
}

TEST(WorkerTest, RequestHelpers) {
  TaccRequest request = MakeRequest("abc");
  request.args["k"] = "5";
  EXPECT_EQ(request.ArgOr("k", ""), "5");
  EXPECT_EQ(request.ArgIntOr("k", 0), 5);
  EXPECT_EQ(request.ArgIntOr("missing", 7), 7);
  EXPECT_EQ(request.TotalInputBytes(), 3);
}

TEST(WorkerTest, DefaultCostModelIsLinearInInputSize) {
  UpperCaseWorker worker;
  TaccRequest small = MakeRequest(std::string(1024, 'a'));
  TaccRequest large = MakeRequest(std::string(10240, 'a'));
  SimDuration small_cost = worker.EstimateCost(small);
  SimDuration large_cost = worker.EstimateCost(large);
  // Fig. 7 slope: ~8 ms per KB, plus fixed overhead.
  EXPECT_NEAR(ToMilliseconds(large_cost - small_cost), 72.0, 1.0);
}

// ---------- registry --------------------------------------------------------------

TEST(RegistryTest, RegisterCreateAndList) {
  WorkerRegistry registry;
  registry.Register("upper", [] { return std::make_unique<UpperCaseWorker>(); });
  registry.Register("suffix", [] { return std::make_unique<SuffixWorker>(); });
  EXPECT_TRUE(registry.Has("upper"));
  EXPECT_FALSE(registry.Has("missing"));
  EXPECT_EQ(registry.Create("missing"), nullptr);
  auto worker = registry.Create("upper");
  ASSERT_NE(worker, nullptr);
  EXPECT_EQ(worker->type(), "upper");
  EXPECT_EQ(registry.Types(), (std::vector<std::string>{"suffix", "upper"}));
}

// ---------- pipelines --------------------------------------------------------------

TEST(PipelineTest, ChainsStagesInOrder) {
  WorkerRegistry registry;
  registry.Register("upper", [] { return std::make_unique<UpperCaseWorker>(); });
  registry.Register("suffix", [] { return std::make_unique<SuffixWorker>(); });

  PipelineSpec spec;
  spec.stages.push_back({"upper", {}});
  spec.stages.push_back({"suffix", {{"suffix", "!!"}}});
  EXPECT_EQ(spec.ToString(), "upper | suffix");

  TaccResult result = RunPipelineLocally(registry, spec, MakeRequest("hello"));
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(TextOf(result.output), "HELLO!!");
}

TEST(PipelineTest, OrderMatters) {
  WorkerRegistry registry;
  registry.Register("upper", [] { return std::make_unique<UpperCaseWorker>(); });
  registry.Register("suffix", [] { return std::make_unique<SuffixWorker>(); });

  PipelineSpec spec;
  spec.stages.push_back({"suffix", {{"suffix", "x"}}});
  spec.stages.push_back({"upper", {}});
  TaccResult result = RunPipelineLocally(registry, spec, MakeRequest("hello"));
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(TextOf(result.output), "HELLOX");  // Suffix got uppercased too.
}

TEST(PipelineTest, UnknownWorkerFails) {
  WorkerRegistry registry;
  TaccResult result =
      RunPipelineLocally(registry, PipelineSpec::Single("ghost"), MakeRequest("x"));
  EXPECT_EQ(result.status.code(), StatusCode::kNotFound);
}

TEST(PipelineTest, StageFailureStopsChain) {
  WorkerRegistry registry;
  registry.Register("upper", [] { return std::make_unique<UpperCaseWorker>(); });
  registry.Register("fail", [] { return std::make_unique<FailingWorker>(); });
  PipelineSpec spec;
  spec.stages.push_back({"fail", {}});
  spec.stages.push_back({"upper", {}});
  TaccResult result = RunPipelineLocally(registry, spec, MakeRequest("x"));
  EXPECT_EQ(result.status.code(), StatusCode::kInternal);
  EXPECT_EQ(result.output, nullptr);
}

TEST(PipelineTest, EmptyPipelinePassesInputThrough) {
  WorkerRegistry registry;
  TaccRequest request = MakeRequest("pass");
  TaccResult result = RunPipelineLocally(registry, PipelineSpec{}, request);
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(TextOf(result.output), "pass");
}

TEST(PipelineTest, CostEstimateSumsStages) {
  WorkerRegistry registry;
  registry.Register("upper", [] { return std::make_unique<UpperCaseWorker>(); });
  PipelineSpec one = PipelineSpec::Single("upper");
  PipelineSpec two;
  two.stages.push_back({"upper", {}});
  two.stages.push_back({"upper", {}});
  TaccRequest request = MakeRequest(std::string(2048, 'a'));
  EXPECT_EQ(EstimatePipelineCost(registry, two, request),
            2 * EstimatePipelineCost(registry, one, request));
}

}  // namespace
}  // namespace sns
