// Unit tests for the manager stub: beacon caching, lottery scheduling, queue-delta
// extrapolation, in-flight tracking, dead-worker handling, and liveness detection.

#include <gtest/gtest.h>

#include <algorithm>

#include "src/sns/manager_stub.h"

namespace sns {
namespace {

ManagerBeaconPayload MakeBeacon(Endpoint manager, uint64_t seq,
                                std::vector<std::tuple<Endpoint, std::string, double>> hints) {
  ManagerBeaconPayload beacon;
  beacon.manager = manager;
  beacon.beacon_seq = seq;
  for (auto& [ep, type, queue] : hints) {
    WorkerHint hint;
    hint.endpoint = ep;
    hint.worker_type = type;
    hint.smoothed_queue = queue;
    beacon.workers.push_back(hint);
  }
  return beacon;
}

class ManagerStubTest : public ::testing::Test {
 protected:
  ManagerStubTest() : rng_(7), stub_(SnsConfig{}, &rng_) {}

  Rng rng_;
  ManagerStub stub_;
  Endpoint manager_{0, 1};
  Endpoint w1_{1, 10};
  Endpoint w2_{2, 20};
};

TEST_F(ManagerStubTest, LearnsManagerAndWorkersFromBeacon) {
  EXPECT_FALSE(stub_.ManagerKnown());
  stub_.OnBeacon(MakeBeacon(manager_, 1, {{w1_, "distill", 1.0}}), Seconds(1));
  EXPECT_TRUE(stub_.ManagerKnown());
  EXPECT_EQ(stub_.manager(), manager_);
  EXPECT_EQ(stub_.KnownWorkerCount("distill"), 1u);
  EXPECT_EQ(stub_.KnownWorkerCount("other"), 0u);
  EXPECT_EQ(stub_.beacons_seen(), 1u);
}

TEST_F(ManagerStubTest, PickWorkerReturnsOnlyMatchingType) {
  stub_.OnBeacon(MakeBeacon(manager_, 1, {{w1_, "a", 0.0}, {w2_, "b", 0.0}}), Seconds(1));
  for (int i = 0; i < 20; ++i) {
    auto picked = stub_.PickWorker("a", Seconds(1));
    ASSERT_TRUE(picked.has_value());
    EXPECT_EQ(*picked, w1_);
  }
  EXPECT_FALSE(stub_.PickWorker("ghost", Seconds(1)).has_value());
}

TEST_F(ManagerStubTest, LotteryFavorsShorterQueues) {
  stub_.OnBeacon(MakeBeacon(manager_, 1, {{w1_, "d", 0.0}, {w2_, "d", 9.0}}), Seconds(1));
  int w1_picks = 0;
  for (int i = 0; i < 2000; ++i) {
    if (*stub_.PickWorker("d", Seconds(1)) == w1_) {
      ++w1_picks;
    }
  }
  // Weights 1 vs 0.1: expect ~91% for w1.
  EXPECT_GT(w1_picks, 1600);
  EXPECT_LT(w1_picks, 2000);
}

TEST_F(ManagerStubTest, InflightTrackingShiftsLottery) {
  stub_.OnBeacon(MakeBeacon(manager_, 1, {{w1_, "d", 0.0}, {w2_, "d", 0.0}}), Seconds(1));
  for (int i = 0; i < 30; ++i) {
    stub_.NoteTaskSent(w1_);
  }
  EXPECT_NEAR(stub_.PredictedQueue(w1_, Seconds(1)), 30.0, 1e-9);
  int w2_picks = 0;
  for (int i = 0; i < 1000; ++i) {
    if (*stub_.PickWorker("d", Seconds(1)) == w2_) {
      ++w2_picks;
    }
  }
  EXPECT_GT(w2_picks, 900);
  for (int i = 0; i < 30; ++i) {
    stub_.NoteTaskDone(w1_);
  }
  EXPECT_NEAR(stub_.PredictedQueue(w1_, Seconds(1)), 0.0, 1e-9);
}

TEST_F(ManagerStubTest, DeltaEstimationExtrapolatesBetweenBeacons) {
  stub_.OnBeacon(MakeBeacon(manager_, 1, {{w1_, "d", 2.0}}), Seconds(1));
  stub_.OnBeacon(MakeBeacon(manager_, 2, {{w1_, "d", 6.0}}), Seconds(2));  // +4/s.
  EXPECT_NEAR(stub_.PredictedQueue(w1_, Seconds(3)), 10.0, 1e-6);
  EXPECT_NEAR(stub_.PredictedQueue(w1_, Seconds(2) + Milliseconds(500.0)), 8.0, 1e-6);
}

TEST_F(ManagerStubTest, DeltaEstimationCanBeDisabled) {
  SnsConfig config;
  config.use_delta_estimation = false;
  config.track_inflight_tasks = false;
  ManagerStub raw(config, &rng_);
  raw.OnBeacon(MakeBeacon(manager_, 1, {{w1_, "d", 2.0}}), Seconds(1));
  raw.OnBeacon(MakeBeacon(manager_, 2, {{w1_, "d", 6.0}}), Seconds(2));
  raw.NoteTaskSent(w1_);
  EXPECT_NEAR(raw.PredictedQueue(w1_, Seconds(3)), 6.0, 1e-9);  // Raw stale hint.
}

TEST_F(ManagerStubTest, WorkerMissingFromOneBeaconSurvivesGraceWindow) {
  stub_.OnBeacon(MakeBeacon(manager_, 1, {{w1_, "d", 0.0}, {w2_, "d", 0.0}}), Seconds(1));
  EXPECT_EQ(stub_.KnownWorkerCount("d"), 2u);
  // One lost beacon datagram must not evict w1: it stays through the grace window.
  stub_.OnBeacon(MakeBeacon(manager_, 2, {{w2_, "d", 0.0}}), Seconds(2));
  EXPECT_EQ(stub_.KnownWorkerCount("d"), 2u);
  EXPECT_EQ(stub_.WorkersOfType("d"), (std::vector<Endpoint>{w1_, w2_}));
  // Sustained absence past the grace window does evict.
  SnsConfig config;
  SimTime late = Seconds(1) + config.beacon_absence_grace + Seconds(1);
  stub_.OnBeacon(MakeBeacon(manager_, 3, {{w2_, "d", 0.0}}), late);
  EXPECT_EQ(stub_.KnownWorkerCount("d"), 1u);
  EXPECT_EQ(stub_.WorkersOfType("d"), (std::vector<Endpoint>{w2_}));
}

TEST_F(ManagerStubTest, BeaconGapPreservesInflightAccounting) {
  stub_.OnBeacon(MakeBeacon(manager_, 1, {{w1_, "d", 0.0}, {w2_, "d", 0.0}}), Seconds(1));
  stub_.NoteTaskSent(w1_);
  stub_.NoteTaskSent(w1_);
  stub_.NoteTaskSent(w1_);
  EXPECT_NEAR(stub_.PredictedQueue(w1_, Seconds(1)), 3.0, 1e-9);
  // w1 absent from the next beacon: its inflight count must not reset to zero,
  // which would skew the lottery toward the worker we already loaded up.
  stub_.OnBeacon(MakeBeacon(manager_, 2, {{w2_, "d", 0.0}}), Seconds(2));
  EXPECT_GE(stub_.PredictedQueue(w1_, Seconds(2)), 3.0);
  // When it reappears, the view (estimator + inflight) carries over seamlessly.
  stub_.OnBeacon(MakeBeacon(manager_, 3, {{w1_, "d", 0.0}, {w2_, "d", 0.0}}), Seconds(3));
  EXPECT_GE(stub_.PredictedQueue(w1_, Seconds(3)), 3.0);
  stub_.NoteTaskDone(w1_);
  stub_.NoteTaskDone(w1_);
  stub_.NoteTaskDone(w1_);
  EXPECT_NEAR(stub_.PredictedQueue(w1_, Seconds(3)), 0.0, 1e-9);
}

TEST_F(ManagerStubTest, PickWorkerExcludesGivenWorkerWhenAlternativesExist) {
  stub_.OnBeacon(MakeBeacon(manager_, 1, {{w1_, "d", 0.0}, {w2_, "d", 0.0}}), Seconds(1));
  for (int i = 0; i < 100; ++i) {
    auto picked = stub_.PickWorker("d", Seconds(1), &w1_);
    ASSERT_TRUE(picked.has_value());
    EXPECT_EQ(*picked, w2_);
  }
}

TEST_F(ManagerStubTest, PickWorkerFallsBackToExcludedWhenItIsTheOnlyOne) {
  stub_.OnBeacon(MakeBeacon(manager_, 1, {{w1_, "d", 0.0}}), Seconds(1));
  auto picked = stub_.PickWorker("d", Seconds(1), &w1_);
  ASSERT_TRUE(picked.has_value());
  EXPECT_EQ(*picked, w1_);
}

TEST_F(ManagerStubTest, NoteWorkerDeadRemovesLocally) {
  stub_.OnBeacon(MakeBeacon(manager_, 1, {{w1_, "d", 0.0}}), Seconds(1));
  EXPECT_TRUE(stub_.NoteWorkerDead(w1_));
  EXPECT_FALSE(stub_.NoteWorkerDead(w1_));
  EXPECT_FALSE(stub_.PickWorker("d", Seconds(1)).has_value());
}

TEST_F(ManagerStubTest, ManagerLivenessTracksBeaconSilence) {
  SnsConfig config;
  EXPECT_EQ(stub_.BeaconSilence(Seconds(100)), kTimeNever);
  EXPECT_FALSE(stub_.ManagerSuspectedDead(Seconds(100)));  // Never heard: not dead.
  stub_.OnBeacon(MakeBeacon(manager_, 1, {}), Seconds(100));
  EXPECT_EQ(stub_.BeaconSilence(Seconds(102)), Seconds(2));
  EXPECT_FALSE(stub_.ManagerSuspectedDead(Seconds(102)));
  EXPECT_TRUE(stub_.ManagerSuspectedDead(Seconds(100) + config.manager_silence_restart +
                                         Seconds(1)));
}

TEST_F(ManagerStubTest, NewManagerIncarnationReplacesOld) {
  stub_.OnBeacon(MakeBeacon(manager_, 5, {{w1_, "d", 1.0}}), Seconds(1));
  Endpoint new_manager{3, 30};
  stub_.OnBeacon(MakeBeacon(new_manager, 1, {{w2_, "d", 0.0}}), Seconds(10));
  EXPECT_EQ(stub_.manager(), new_manager);
  EXPECT_EQ(stub_.WorkersOfType("d"), (std::vector<Endpoint>{w2_}));
}

TEST_F(ManagerStubTest, CacheNodesAndProfileDbComeFromBeacon) {
  ManagerBeaconPayload beacon = MakeBeacon(manager_, 1, {});
  beacon.cache_nodes = {{5, 50}, {4, 40}};
  beacon.profile_db = Endpoint{6, 60};
  stub_.OnBeacon(beacon, Seconds(1));
  ASSERT_EQ(stub_.cache_nodes().size(), 2u);
  // Sorted for deterministic key hashing.
  EXPECT_EQ(stub_.cache_nodes()[0].node, 4);
  EXPECT_EQ(stub_.profile_db(), (Endpoint{6, 60}));
}

TEST_F(ManagerStubTest, CacheRingRemapsBoundedFractionOnLeave) {
  ManagerBeaconPayload beacon = MakeBeacon(manager_, 1, {});
  const int kNodes = 5;
  for (int i = 0; i < kNodes; ++i) {
    beacon.cache_nodes.push_back(Endpoint{10 + i, 100});
  }
  stub_.OnBeacon(beacon, Seconds(1));

  const int kKeys = 2000;
  std::vector<Endpoint> owner_before(kKeys);
  for (int k = 0; k < kKeys; ++k) {
    auto owner = stub_.CacheNodeForKey("http://example.com/img" + std::to_string(k));
    ASSERT_TRUE(owner.has_value());
    owner_before[static_cast<size_t>(k)] = *owner;
  }

  // Remove one node; with consistent hashing only ~1/N of keys may change owner
  // (vs ~(N-1)/N under mod-N partitioning), and every remapped key must have
  // belonged to the departed node.
  Endpoint departed = beacon.cache_nodes.back();
  beacon.cache_nodes.pop_back();
  beacon.beacon_seq = 2;
  stub_.OnBeacon(beacon, Seconds(2));

  int remapped = 0;
  for (int k = 0; k < kKeys; ++k) {
    auto owner = stub_.CacheNodeForKey("http://example.com/img" + std::to_string(k));
    ASSERT_TRUE(owner.has_value());
    if (*owner != owner_before[static_cast<size_t>(k)]) {
      ++remapped;
      EXPECT_EQ(owner_before[static_cast<size_t>(k)], departed);
    }
  }
  EXPECT_GT(remapped, 0);
  EXPECT_LE(remapped, 2 * kKeys / kNodes);
  EXPECT_EQ(stub_.cache_membership_changes(), static_cast<uint64_t>(kNodes + 1));
}

TEST_F(ManagerStubTest, CacheRingRemapsBoundedFractionOnJoin) {
  ManagerBeaconPayload beacon = MakeBeacon(manager_, 1, {});
  const int kNodes = 4;
  for (int i = 0; i < kNodes; ++i) {
    beacon.cache_nodes.push_back(Endpoint{10 + i, 100});
  }
  stub_.OnBeacon(beacon, Seconds(1));

  const int kKeys = 2000;
  std::vector<Endpoint> owner_before(kKeys);
  for (int k = 0; k < kKeys; ++k) {
    owner_before[static_cast<size_t>(k)] =
        *stub_.CacheNodeForKey("http://example.com/img" + std::to_string(k));
  }

  Endpoint joined{10 + kNodes, 100};
  beacon.cache_nodes.push_back(joined);
  beacon.beacon_seq = 2;
  stub_.OnBeacon(beacon, Seconds(2));

  int remapped = 0;
  for (int k = 0; k < kKeys; ++k) {
    auto owner = *stub_.CacheNodeForKey("http://example.com/img" + std::to_string(k));
    if (owner != owner_before[static_cast<size_t>(k)]) {
      ++remapped;
      EXPECT_EQ(owner, joined);  // Joiners only take keys, never shuffle others.
    }
  }
  EXPECT_GT(remapped, 0);
  EXPECT_LE(remapped, 2 * kKeys / (kNodes + 1));
}

TEST_F(ManagerStubTest, CacheChainForKeyReturnsDistinctReplicasHeadedByPrimary) {
  SnsConfig config;
  config.cache_replication = 3;
  ManagerStub stub(config, &rng_);
  ManagerBeaconPayload beacon = MakeBeacon(manager_, 1, {});
  for (int i = 0; i < 5; ++i) {
    beacon.cache_nodes.push_back(Endpoint{10 + i, 100});
  }
  stub.OnBeacon(beacon, Seconds(1));
  for (int k = 0; k < 200; ++k) {
    std::string key = "http://example.com/img" + std::to_string(k);
    std::vector<Endpoint> chain = stub.CacheChainForKey(key);
    ASSERT_EQ(chain.size(), 3u);
    EXPECT_EQ(chain[0], *stub.CacheNodeForKey(key));  // chain[0] is the primary.
    for (size_t i = 0; i < chain.size(); ++i) {
      for (size_t j = i + 1; j < chain.size(); ++j) {
        EXPECT_NE(chain[i], chain[j]);
      }
    }
  }
}

TEST_F(ManagerStubTest, CacheChainClampsToMembershipAndHonorsConfig) {
  SnsConfig config;
  config.cache_replication = 3;
  ManagerStub stub(config, &rng_);
  ManagerBeaconPayload beacon = MakeBeacon(manager_, 1, {});
  beacon.cache_nodes = {{10, 100}, {11, 100}};
  stub.OnBeacon(beacon, Seconds(1));
  // Only 2 members live: chains clamp to every member once.
  EXPECT_EQ(stub.CacheChainForKey("k").size(), 2u);

  SnsConfig single;
  single.cache_replication = 1;
  ManagerStub solo(single, &rng_);
  solo.OnBeacon(beacon, Seconds(1));
  std::vector<Endpoint> chain = solo.CacheChainForKey("k");
  ASSERT_EQ(chain.size(), 1u);
  EXPECT_EQ(chain[0], *solo.CacheNodeForKey("k"));
}

TEST_F(ManagerStubTest, CacheChainsRemapBoundedFractionUnderChurn) {
  SnsConfig config;
  config.cache_replication = 2;
  ManagerStub stub(config, &rng_);
  ManagerBeaconPayload beacon = MakeBeacon(manager_, 1, {});
  const int kNodes = 6;
  for (int i = 0; i < kNodes; ++i) {
    beacon.cache_nodes.push_back(Endpoint{10 + i, 100});
  }
  stub.OnBeacon(beacon, Seconds(1));

  const int kKeys = 2000;
  std::vector<std::vector<Endpoint>> before(kKeys);
  for (int k = 0; k < kKeys; ++k) {
    before[static_cast<size_t>(k)] =
        stub.CacheChainForKey("http://example.com/img" + std::to_string(k));
  }

  Endpoint departed = beacon.cache_nodes.back();
  beacon.cache_nodes.pop_back();
  beacon.beacon_seq = 2;
  stub.OnBeacon(beacon, Seconds(2));

  int changed = 0;
  for (int k = 0; k < kKeys; ++k) {
    auto& old_chain = before[static_cast<size_t>(k)];
    auto now = stub.CacheChainForKey("http://example.com/img" + std::to_string(k));
    ASSERT_EQ(now.size(), 2u);
    if (now != old_chain) {
      ++changed;
      // Only chains that touched the departed node's arcs may change.
      EXPECT_NE(std::find(old_chain.begin(), old_chain.end(), departed),
                old_chain.end())
          << "chain for key " << k << " changed spuriously";
    }
  }
  // R=2 of N=6: ~1/3 of chains touch the departed node.
  EXPECT_GT(changed, kKeys / 6);
  EXPECT_LT(changed, 3 * kKeys / 5);
}

TEST_F(ManagerStubTest, RoundRobinPolicyRotates) {
  SnsConfig config;
  config.balance_policy = BalancePolicy::kRoundRobin;
  ManagerStub rr(config, &rng_);
  rr.OnBeacon(MakeBeacon(manager_, 1, {{w1_, "d", 0.0}, {w2_, "d", 50.0}}), Seconds(1));
  int w1_picks = 0;
  for (int i = 0; i < 100; ++i) {
    if (*rr.PickWorker("d", Seconds(1)) == w1_) {
      ++w1_picks;
    }
  }
  EXPECT_EQ(w1_picks, 50);  // Ignores load entirely.
}

}  // namespace
}  // namespace sns
