// Tests for the bit-level I/O used by the codecs.

#include <gtest/gtest.h>

#include "src/content/bitstream.h"
#include "src/util/rng.h"

namespace sns {
namespace {

TEST(BitStreamTest, BitsRoundTripLsbFirst) {
  BitWriter writer;
  writer.WriteBits(0b101, 3);
  writer.WriteBits(0b1, 1);
  writer.WriteBits(0xAB, 8);
  std::vector<uint8_t> bytes = writer.Finish();
  BitReader reader(bytes.data(), bytes.size());
  EXPECT_EQ(reader.ReadBits(3), 0b101u);
  EXPECT_EQ(reader.ReadBits(1), 0b1u);
  EXPECT_EQ(reader.ReadBits(8), 0xABu);
  EXPECT_FALSE(reader.error());
}

TEST(BitStreamTest, ByteAndWordHelpers) {
  BitWriter writer;
  writer.WriteByte(0x12);
  writer.WriteU16(0x3456);
  writer.WriteU32(0x789ABCDE);
  std::vector<uint8_t> bytes = writer.Finish();
  BitReader reader(bytes.data(), bytes.size());
  EXPECT_EQ(reader.ReadByte(), 0x12);
  EXPECT_EQ(reader.ReadU16(), 0x3456);
  EXPECT_EQ(reader.ReadU32(), 0x789ABCDEu);
}

TEST(BitStreamTest, PartialByteZeroPadded) {
  BitWriter writer;
  writer.WriteBits(0b11, 2);
  std::vector<uint8_t> bytes = writer.Finish();
  ASSERT_EQ(bytes.size(), 1u);
  EXPECT_EQ(bytes[0], 0b11);
}

TEST(BitStreamTest, UnderrunSetsErrorAndReturnsZero) {
  std::vector<uint8_t> one = {0xFF};
  BitReader reader(one.data(), one.size());
  EXPECT_EQ(reader.ReadBits(8), 0xFFu);
  EXPECT_FALSE(reader.error());
  EXPECT_EQ(reader.ReadBits(1), 0u);
  EXPECT_TRUE(reader.error());
}

TEST(BitStreamTest, BitCountTracksWrites) {
  BitWriter writer;
  writer.WriteBits(0, 5);
  EXPECT_EQ(writer.bit_count(), 5u);
  writer.WriteByte(0);
  EXPECT_EQ(writer.bit_count(), 13u);
}

TEST(GolombTest, SmallValuesRoundTrip) {
  BitWriter writer;
  for (uint32_t v = 0; v < 300; ++v) {
    writer.WriteGolomb(v);
  }
  std::vector<uint8_t> bytes = writer.Finish();
  BitReader reader(bytes.data(), bytes.size());
  for (uint32_t v = 0; v < 300; ++v) {
    EXPECT_EQ(reader.ReadGolomb(), v);
  }
  EXPECT_FALSE(reader.error());
}

TEST(GolombTest, SignedMappingRoundTrips) {
  BitWriter writer;
  for (int32_t v = -200; v <= 200; ++v) {
    writer.WriteSignedGolomb(v);
  }
  std::vector<uint8_t> bytes = writer.Finish();
  BitReader reader(bytes.data(), bytes.size());
  for (int32_t v = -200; v <= 200; ++v) {
    EXPECT_EQ(reader.ReadSignedGolomb(), v);
  }
}

TEST(GolombTest, SmallValuesAreShort) {
  BitWriter w0;
  w0.WriteGolomb(0);
  EXPECT_EQ(w0.bit_count(), 1u);  // "1"
  BitWriter w2;
  w2.WriteGolomb(2);
  EXPECT_EQ(w2.bit_count(), 3u);
}

// Property sweep: random interleavings of all primitive writes round-trip.
class BitstreamFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BitstreamFuzz, RandomInterleavedRoundTrip) {
  Rng rng(GetParam());
  struct Op {
    int kind;
    uint32_t value;
    int bits;
  };
  std::vector<Op> ops;
  BitWriter writer;
  for (int i = 0; i < 2000; ++i) {
    Op op;
    op.kind = static_cast<int>(rng.UniformInt(0, 2));
    switch (op.kind) {
      case 0:
        op.bits = static_cast<int>(rng.UniformInt(1, 24));
        op.value = static_cast<uint32_t>(rng.Next()) & ((1u << op.bits) - 1);
        writer.WriteBits(op.value, op.bits);
        break;
      case 1:
        op.value = static_cast<uint32_t>(rng.UniformInt(0, 100000));
        writer.WriteGolomb(op.value);
        break;
      case 2:
        op.value = static_cast<uint32_t>(rng.UniformInt(-50000, 50000));
        writer.WriteSignedGolomb(static_cast<int32_t>(op.value));
        break;
    }
    ops.push_back(op);
  }
  std::vector<uint8_t> bytes = writer.Finish();
  BitReader reader(bytes.data(), bytes.size());
  for (const Op& op : ops) {
    switch (op.kind) {
      case 0:
        ASSERT_EQ(reader.ReadBits(op.bits), op.value);
        break;
      case 1:
        ASSERT_EQ(reader.ReadGolomb(), op.value);
        break;
      case 2:
        ASSERT_EQ(reader.ReadSignedGolomb(), static_cast<int32_t>(op.value));
        break;
    }
  }
  EXPECT_FALSE(reader.error());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitstreamFuzz, ::testing::Values(1u, 2u, 3u, 7u, 42u));

}  // namespace
}  // namespace sns
