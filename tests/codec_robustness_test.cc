// Robustness property tests for the image codecs: corrupted or hostile inputs must
// fail cleanly (Status, never a crash, hang, or wild allocation) — exactly the
// "pathological input data" class that crashes the paper's off-the-shelf distillers
// (§3.1.6). Our codecs are the part we control, so they must be total.

#include <gtest/gtest.h>

#include "src/content/gif_codec.h"
#include "src/content/image.h"
#include "src/content/jpeg_codec.h"
#include "src/util/rng.h"

namespace sns {
namespace {

class CodecCorruptionSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CodecCorruptionSweep, SingleByteFlipsNeverCrashGif) {
  Rng rng(GetParam());
  RasterImage img = SynthesizePhoto(&rng, 48, 36);
  std::vector<uint8_t> encoded = GifEncode(img, 64);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<uint8_t> corrupt = encoded;
    size_t pos = static_cast<size_t>(
        rng.UniformInt(2, static_cast<int64_t>(corrupt.size()) - 1));  // Keep magic.
    corrupt[pos] ^= static_cast<uint8_t>(1 << rng.UniformInt(0, 7));
    auto decoded = GifDecode(corrupt);  // Either ok (cosmetic damage) or clean error.
    if (decoded.ok()) {
      EXPECT_EQ(decoded->width(), img.width());
      EXPECT_LE(decoded->height(), 65536);
    } else {
      EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
    }
  }
}

TEST_P(CodecCorruptionSweep, SingleByteFlipsNeverCrashJpeg) {
  Rng rng(GetParam() ^ 0x100);
  RasterImage img = SynthesizePhoto(&rng, 48, 36);
  std::vector<uint8_t> encoded = JpegEncode(img, 60);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<uint8_t> corrupt = encoded;
    size_t pos = static_cast<size_t>(
        rng.UniformInt(2, static_cast<int64_t>(corrupt.size()) - 1));
    corrupt[pos] ^= static_cast<uint8_t>(1 << rng.UniformInt(0, 7));
    auto decoded = JpegDecode(corrupt);
    if (!decoded.ok()) {
      EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
    }
  }
}

TEST_P(CodecCorruptionSweep, TruncationsAtEveryPrefixFailCleanly) {
  Rng rng(GetParam() ^ 0x200);
  RasterImage img = SynthesizePhoto(&rng, 32, 24);
  std::vector<uint8_t> gif = GifEncode(img, 32);
  std::vector<uint8_t> jpeg = JpegEncode(img, 50);
  for (size_t len = 0; len < gif.size(); len += 7) {
    std::vector<uint8_t> prefix(gif.begin(), gif.begin() + static_cast<long>(len));
    auto decoded = GifDecode(prefix);
    // A prefix that drops only end-of-stream padding may still decode; anything
    // that decodes must be dimensionally intact, everything else must fail cleanly.
    if (decoded.ok()) {
      EXPECT_EQ(decoded->width(), img.width());
      EXPECT_EQ(decoded->height(), img.height());
      EXPECT_GT(len, gif.size() - 8);
    }
  }
  for (size_t len = 0; len < jpeg.size(); len += 7) {
    std::vector<uint8_t> prefix(jpeg.begin(), jpeg.begin() + static_cast<long>(len));
    // Tiny truncations can still "decode" to a zero block only if the header and
    // all plane data survived — impossible for a strict prefix, but a near-complete
    // prefix may decode with trailing damage absorbed; require no crash either way.
    auto decoded = JpegDecode(prefix);
    (void)decoded;
  }
}

TEST_P(CodecCorruptionSweep, RandomGarbageWithMagicNeverCrashes) {
  Rng rng(GetParam() ^ 0x300);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<uint8_t> garbage(static_cast<size_t>(rng.UniformInt(9, 600)));
    for (auto& b : garbage) {
      b = static_cast<uint8_t>(rng.UniformInt(0, 255));
    }
    // Force each codec's magic so parsing proceeds past the header check.
    garbage[0] = 'S';
    garbage[1] = 'G';
    auto gif = GifDecode(garbage);
    if (!gif.ok()) {
      EXPECT_EQ(gif.status().code(), StatusCode::kCorruption);
    }
    garbage[1] = 'J';
    auto jpeg = JpegDecode(garbage);
    if (!jpeg.ok()) {
      EXPECT_EQ(jpeg.status().code(), StatusCode::kCorruption);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecCorruptionSweep, ::testing::Values(11u, 22u, 33u));

TEST(LzwTortureTest, HighlyRepetitiveInputExercisesKwKwK) {
  // Runs of repeating pixels produce the LZW "KwKwK" self-referential code case.
  RasterImage img(64, 64);
  for (int y = 0; y < 64; ++y) {
    for (int x = 0; x < 64; ++x) {
      // Period-3 pattern over 2 colors: abab aab ... stresses prefix growth.
      uint8_t v = (x % 3 == 0) ? 255 : 0;
      img.at(x, y) = Pixel{v, v, v};
    }
  }
  auto encoded = GifEncode(img, 4);
  auto decoded = GifDecode(encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_NEAR(MeanAbsoluteError(img, *decoded), 0.0, 1e-9);
}

TEST(LzwTortureTest, DictionaryOverflowTriggersClearCode) {
  // A large noisy image overflows the 4096-entry dictionary, forcing mid-stream
  // clear codes; the round trip must still be palette-exact.
  Rng rng(0x717);
  RasterImage img(256, 256);
  for (Pixel& p : img.pixels()) {
    uint8_t v = static_cast<uint8_t>(rng.UniformInt(0, 255));
    p = Pixel{v, v, v};
  }
  std::vector<uint8_t> indices;
  std::vector<Pixel> palette = MedianCutPalette(img, 256, &indices);
  RasterImage quantized(256, 256);
  for (size_t i = 0; i < indices.size(); ++i) {
    quantized.pixels()[i] = palette[indices[i]];
  }
  auto encoded = GifEncode(img, 256);
  auto decoded = GifDecode(encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_NEAR(MeanAbsoluteError(quantized, *decoded), 0.0, 2.0);
}

TEST(CodecEdgeTest, OnePixelImage) {
  RasterImage img(1, 1);
  img.at(0, 0) = Pixel{200, 100, 50};
  auto gif = GifDecode(GifEncode(img, 2));
  ASSERT_TRUE(gif.ok());
  EXPECT_EQ(gif->width(), 1);
  auto jpeg = JpegDecode(JpegEncode(img, 75));
  ASSERT_TRUE(jpeg.ok());
  EXPECT_EQ(jpeg->width(), 1);
}

TEST(CodecEdgeTest, ExtremeAspectRatios) {
  Rng rng(0xA5);
  RasterImage wide = SynthesizePhoto(&rng, 512, 1);
  RasterImage tall = SynthesizePhoto(&rng, 1, 512);
  EXPECT_TRUE(GifDecode(GifEncode(wide, 16)).ok());
  EXPECT_TRUE(GifDecode(GifEncode(tall, 16)).ok());
  EXPECT_TRUE(JpegDecode(JpegEncode(wide, 50)).ok());
  EXPECT_TRUE(JpegDecode(JpegEncode(tall, 50)).ok());
}

TEST(CodecEdgeTest, QualityBoundsClamp) {
  Rng rng(0xA6);
  RasterImage img = SynthesizePhoto(&rng, 24, 24);
  EXPECT_TRUE(JpegDecode(JpegEncode(img, -5)).ok());   // Clamped to 1.
  EXPECT_TRUE(JpegDecode(JpegEncode(img, 500)).ok());  // Clamped to 100.
  EXPECT_TRUE(GifDecode(GifEncode(img, 1)).ok());      // Palette clamped to 2.
  EXPECT_TRUE(GifDecode(GifEncode(img, 999)).ok());    // Clamped to 256.
}

}  // namespace
}  // namespace sns
