// Tests for the wall-clock zone profiler: exact nested self/total attribution
// at stride 0, re-entrancy, stride sampling, the measured self-overhead bound,
// and the disabled fast path. Everything here measures HOST time, so the
// assertions compare profiler output against clock readings taken around the
// workload, never against fixed wall-clock expectations.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/profiler.h"

namespace sns {
namespace {

// Busy-waits for at least `ns` of host wall-clock (no sleeping: the profiler
// measures CPU-resident wall time and the test wants deterministic-ish spans).
void SpinFor(int64_t ns) {
  int64_t start = prof_internal::NowNs();
  volatile uint64_t sink = 0;
  while (prof_internal::NowNs() - start < ns) {
    sink = sink + 1;
  }
}

const Profiler::ZoneStats* Find(const std::vector<Profiler::ZoneStats>& snap,
                                const std::string& name) {
  for (const Profiler::ZoneStats& z : snap) {
    if (z.name == name) {
      return &z;
    }
  }
  return nullptr;
}

// The profiler is process-global; each test turns it on (which calibrates the
// cost model and zeroes accumulators) and leaves it off for the next suite.
class ProfilerTest : public ::testing::Test {
 protected:
  void SetUp() override { Profiler::Get().Enable(); }
  void TearDown() override {
    Profiler::Get().Disable();
    Profiler::Get().Reset();
  }
};

TEST_F(ProfilerTest, NestedAttributionIsExactAtStrideZero) {
  int parent = Profiler::Get().RegisterZone("test.nest.parent");
  int child = Profiler::Get().RegisterZone("test.nest.child");
  {
    ProfileZone p(parent);
    SpinFor(2000000);
    {
      ProfileZone c(child);
      SpinFor(2000000);
    }
    SpinFor(1000000);
  }

  std::vector<Profiler::ZoneStats> snap = Profiler::Get().Snapshot();
  const Profiler::ZoneStats* p = Find(snap, "test.nest.parent");
  const Profiler::ZoneStats* c = Find(snap, "test.nest.child");
  ASSERT_NE(p, nullptr);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(p->count, 1);
  EXPECT_EQ(c->count, 1);
  // Stride-0 zones time every entry from the same clock readings, so the
  // attribution identity holds to the nanosecond — not statistically.
  EXPECT_EQ(p->total_ns, p->self_ns + c->total_ns);
  EXPECT_GE(c->total_ns, 2000000);
  EXPECT_GE(p->self_ns, 3000000);
  // Root attribution: the parent was entered at stack depth 0, the child was
  // not, so coverage counts the parent's full span exactly once.
  EXPECT_EQ(p->root_ns, p->total_ns);
  EXPECT_EQ(c->root_ns, 0);
}

void Recurse(int zone, int depth) {
  ProfileZone z(zone);
  if (depth > 1) {
    Recurse(zone, depth - 1);
  } else {
    SpinFor(2000000);
  }
}

TEST_F(ProfilerTest, ReentrantFramesDoNotDoubleCountTotal) {
  int zone = Profiler::Get().RegisterZone("test.reentrant");
  int64_t t0 = prof_internal::NowNs();
  Recurse(zone, 3);
  int64_t elapsed = prof_internal::NowNs() - t0;

  std::vector<Profiler::ZoneStats> snap = Profiler::Get().Snapshot();
  const Profiler::ZoneStats* z = Find(snap, "test.reentrant");
  ASSERT_NE(z, nullptr);
  EXPECT_EQ(z->count, 3);
  EXPECT_EQ(z->timed, 3);
  // Only the outermost frame lands in total: three nested frames around one
  // 2 ms spin report ~2 ms, never ~6 ms.
  EXPECT_GE(z->total_ns, 2000000);
  EXPECT_LE(z->total_ns, elapsed);
  // Inner frames feed their parent frame's child time, so the per-frame self
  // contributions telescope to exactly the outermost duration.
  EXPECT_EQ(z->self_ns, z->total_ns);
  EXPECT_EQ(z->root_ns, z->total_ns);
}

TEST_F(ProfilerTest, StridedZonesCountExactlyAndTimeEveryKth) {
  int zone = Profiler::Get().RegisterZone("test.strided", /*stride_log2=*/3);
  for (int i = 0; i < 64; ++i) {
    ProfileZone z(zone);
  }
  std::vector<Profiler::ZoneStats> snap = Profiler::Get().Snapshot();
  const Profiler::ZoneStats* z = Find(snap, "test.strided");
  ASSERT_NE(z, nullptr);
  EXPECT_EQ(z->stride_log2, 3);
  EXPECT_EQ(z->count, 64);  // Counts are always exact, sampled or not.
  EXPECT_EQ(z->timed, 8);   // Clock readings only on every 8th entry.
}

TEST_F(ProfilerTest, MeasuredSelfOverheadStaysBoundedOnChurnLoop) {
  // A mini churn loop: a strided hot zone wrapping real work inside a root
  // zone and a measurement window — the same shape profile-smoke gates at
  // RelWithDebInfo against micro_substrate with a 3% ceiling. The bound here
  // is deliberately lenient because this test also runs under Debug/ASan,
  // where the calibrated per-entry cost is far larger.
  int root = Profiler::Get().RegisterZone("test.churn.root");
  int hot = Profiler::Get().RegisterZone("test.churn.hot", /*stride_log2=*/6);

  Profiler::Get().BeginMeasurement();
  uint64_t x = 0x9E3779B97F4A7C15ull;
  {
    ProfileZone r(root);
    for (int i = 0; i < 200000; ++i) {
      ProfileZone z(hot);
      // A dependent xorshift chain keeps ~tens of ns of irreducible work per
      // entry, so the zone isn't measuring nothing but itself.
      for (int round = 0; round < 32; ++round) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
      }
    }
  }
  Profiler::Get().EndMeasurement();
  volatile uint64_t sink = x;
  (void)sink;

  EXPECT_GT(Profiler::Get().measured_wall_ns(), 0);
  // The bound is measured (calibrated per-entry costs x exact counts), so it
  // must be positive — a zero would mean the cost model never calibrated.
  EXPECT_GT(Profiler::Get().SelfOverheadNs(), 0);
  EXPECT_LT(Profiler::Get().SelfOverhead(), 0.25);
  // The whole window ran inside the root zone, so named zones cover it.
  EXPECT_GT(Profiler::Get().Coverage(), 0.8);
  EXPECT_LT(Profiler::Get().Coverage(), 1.2);
}

TEST_F(ProfilerTest, ToJsonAndCounterTracksCarryZones) {
  int zone = Profiler::Get().RegisterZone("test.json.zone");
  Profiler::Get().BeginMeasurement();
  {
    ProfileZone z(zone);
    SpinFor(1000000);
  }
  Profiler::Get().EndMeasurement();

  std::string json = Profiler::Get().ToJson();
  EXPECT_NE(json.find("\"enabled\":true"), std::string::npos);
  EXPECT_NE(json.find("\"measured_wall_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"coverage\""), std::string::npos);
  EXPECT_NE(json.find("\"self_overhead\""), std::string::npos);
  EXPECT_NE(json.find("\"test.json.zone\""), std::string::npos);

  // Chrome-trace counter tracks splice into ExportChromeTrace's event stream,
  // so a non-empty result must end with the trailing comma.
  std::string tracks = ProfilerCounterTrackJson();
  EXPECT_NE(tracks.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(tracks.find("prof.test.json.zone"), std::string::npos);
  ASSERT_FALSE(tracks.empty());
  EXPECT_EQ(tracks.back(), ',');
}

TEST(ProfilerDisabledTest, DisabledZonesAccumulateNothing) {
  Profiler::Get().Disable();
  Profiler::Get().Reset();
  int zone = Profiler::Get().RegisterZone("test.disabled");
  for (int i = 0; i < 1000; ++i) {
    ProfileZone z(zone);
  }
  // Snapshot drops zero-count zones, so the zone must be absent entirely.
  EXPECT_EQ(Find(Profiler::Get().Snapshot(), "test.disabled"), nullptr);
}

}  // namespace
}  // namespace sns
