// Tests for the optional/extension SNS features: the preferences UI writing through
// to the ACID store, cost-weighted queue reports (footnote 2), hot upgrades (§1.2),
// profile-DB failover, dynamic front-end addition, and front-end load shedding.

#include <gtest/gtest.h>

#include "src/services/transend/transend.h"
#include "src/sns/worker_process.h"
#include "src/util/logging.h"

namespace sns {
namespace {

TranSendOptions TinyOptions() {
  TranSendOptions options = DefaultTranSendOptions();
  options.topology.worker_pool_nodes = 4;
  options.topology.cache_nodes = 2;
  options.universe.url_count = 100;
  return options;
}

std::string BigJpegUrl(TranSendService* service) {
  for (int64_t i = 0; i < service->universe()->url_count(); ++i) {
    std::string url = service->universe()->UrlAt(i);
    if (service->universe()->MimeOf(url) == MimeType::kJpeg &&
        service->universe()->ModeledSize(url) > 8192) {
      return url;
    }
  }
  return "";
}

// ---------- preferences UI (§2.2.1 / §3.1.6 toolbar) -----------------------------------

TEST(PrefsUiTest, SetParamsUpdateProfileAndPersist) {
  Logger::Get().set_min_level(LogLevel::kNone);
  TranSendService service(TinyOptions());
  service.Start();
  PlaybackEngine* client = service.AddPlaybackEngine();
  service.sim()->RunFor(Seconds(2));

  TraceRecord prefs;
  prefs.user_id = "newbie";
  prefs.url = "http://transend.berkeley.edu/prefs";
  client->SendRequest(prefs, {{"set_quality", "low"}});
  service.sim()->RunFor(Seconds(5));
  ASSERT_EQ(client->completed(), 1);
  EXPECT_EQ(client->errors(), 0);

  // Durable: the ACID store has the updated profile.
  service.sim()->RunFor(Seconds(2));
  auto stored = service.system()->profile_store()->Get("newbie");
  ASSERT_TRUE(stored.has_value());
  auto profile = UserProfile::Deserialize("newbie", *stored);
  ASSERT_TRUE(profile.ok());
  EXPECT_EQ(profile->GetOr("quality", ""), "low");
}

TEST(PrefsUiTest, UpdatedPreferencesChangeDistillation) {
  Logger::Get().set_min_level(LogLevel::kNone);
  TranSendService service(TinyOptions());
  service.Start();
  PlaybackEngine* client = service.AddPlaybackEngine();
  service.sim()->RunFor(Seconds(2));
  std::string url = BigJpegUrl(&service);
  ASSERT_FALSE(url.empty());

  // Default prefs ("med") first.
  TraceRecord fetch;
  fetch.user_id = "tuner";
  fetch.url = url;
  client->SendRequest(fetch);
  service.sim()->RunFor(Seconds(140));
  ASSERT_EQ(client->completed(), 1);
  int64_t med_bytes = client->bytes_received();

  // Flip to "low" via the prefs UI, then refetch.
  TraceRecord prefs;
  prefs.user_id = "tuner";
  prefs.url = "http://transend.berkeley.edu/prefs";
  client->SendRequest(prefs, {{"set_quality", "low"}});
  service.sim()->RunFor(Seconds(5));
  ASSERT_EQ(client->completed(), 2);
  int64_t after_prefs = client->bytes_received();

  client->SendRequest(fetch);
  service.sim()->RunFor(Seconds(30));
  ASSERT_EQ(client->completed(), 3);
  int64_t low_bytes = client->bytes_received() - after_prefs;
  EXPECT_LT(low_bytes * 2, med_bytes);  // "low" (scale 4 / q10) is much smaller.
}

// ---------- cost-weighted queue reports (footnote 2) --------------------------------------

TEST(WeightedQueueTest, WeightedLengthReflectsItemCosts) {
  Logger::Get().set_min_level(LogLevel::kNone);
  TranSendOptions options = TinyOptions();
  options.sns.weight_queue_by_cost = true;
  options.sns.queue_cost_reference = Milliseconds(40);
  TranSendService service(options);
  service.Start();
  ProcessId pid = service.system()->StartWorker(kJpegDistillerType);
  service.sim()->RunFor(Seconds(2));
  auto* worker = dynamic_cast<WorkerProcess*>(service.system()->cluster()->Find(pid));
  ASSERT_NE(worker, nullptr);
  EXPECT_DOUBLE_EQ(worker->WeightedQueueLength(), 0.0);
  // The two metrics agree on "empty" but diverge under load; exercised end-to-end
  // below through the manager's smoothed averages.
  EXPECT_DOUBLE_EQ(worker->QueueLength(), 0.0);
}

TEST(WeightedQueueTest, SystemRunsCleanlyWithWeightedReports) {
  Logger::Get().set_min_level(LogLevel::kNone);
  TranSendOptions options = TinyOptions();
  options.sns.weight_queue_by_cost = true;
  options.logic.cache_distilled = false;
  TranSendService service(options);
  service.Start();
  PlaybackEngine* client = service.AddPlaybackEngine();
  service.sim()->RunFor(Seconds(2));
  std::string url = BigJpegUrl(&service);
  ASSERT_FALSE(url.empty());
  TraceRecord record;
  record.user_id = "w";
  record.url = url;
  client->SendRequest(record);
  service.sim()->RunFor(Seconds(140));
  Rng rng(1);
  client->StartConstantRate(20, [&record] { return record; });
  service.sim()->RunFor(Seconds(30));
  client->StopLoad();
  service.sim()->RunFor(Seconds(5));
  EXPECT_EQ(client->errors(), 0);
  EXPECT_GT(client->completed(), 500);
}

// ---------- hot upgrades (§1.2: "upgrade them in place") -----------------------------------

TEST(HotUpgradeTest, WorkersReplacedOneAtATimeWithZeroDowntime) {
  Logger::Get().set_min_level(LogLevel::kNone);
  TranSendOptions options = TinyOptions();
  options.logic.cache_distilled = false;
  options.universe.url_count = 40;
  TranSendService service(options);
  service.Start();
  PlaybackEngine* client = service.AddPlaybackEngine();
  service.sim()->RunFor(Seconds(2));

  // Warm and get two distillers running.
  std::string url = BigJpegUrl(&service);
  ASSERT_FALSE(url.empty());
  TraceRecord record;
  record.user_id = "up";
  record.url = url;
  client->SendRequest(record);
  service.sim()->RunFor(Seconds(140));
  service.system()->StartWorker(kJpegDistillerType);
  service.sim()->RunFor(Seconds(2));
  auto before = service.system()->live_workers(kJpegDistillerType);
  ASSERT_EQ(before.size(), 2u);
  std::vector<ProcessId> old_pids;
  for (WorkerProcess* worker : before) {
    old_pids.push_back(worker->pid());
  }

  client->ResetStats();
  client->StartConstantRate(18, [&record] { return record; });
  service.sim()->RunFor(Seconds(5));
  int scheduled = service.system()->HotUpgradeWorkers(kJpegDistillerType, Seconds(4));
  EXPECT_EQ(scheduled, 2);
  service.sim()->RunFor(Seconds(30));
  client->StopLoad();
  service.sim()->RunFor(Seconds(5));

  // All instances replaced...
  auto after = service.system()->live_workers(kJpegDistillerType);
  ASSERT_GE(after.size(), 2u);
  for (WorkerProcess* worker : after) {
    for (ProcessId old_pid : old_pids) {
      EXPECT_NE(worker->pid(), old_pid);
    }
  }
  // ...with the service never down.
  EXPECT_EQ(client->errors(), 0);
  double answered = static_cast<double>(client->completed()) /
                    static_cast<double>(client->completed() + client->timeouts());
  EXPECT_GT(answered, 0.99);
}

// ---------- profile DB failover (Table 1: primary/backup ACID) ------------------------------

TEST(ProfileDbFailoverTest, ManagerRestartsSilentDbAndDataSurvives) {
  Logger::Get().set_min_level(LogLevel::kNone);
  TranSendService service(TinyOptions());
  UserProfile profile("persistent");
  profile.Set("quality", "high");
  service.system()->SeedProfile(profile);
  service.Start();
  service.sim()->RunFor(Seconds(3));

  ProfileDbProcess* db = service.system()->profile_db();
  ASSERT_NE(db, nullptr);
  ProcessId old_pid = db->pid();
  service.system()->cluster()->Crash(old_pid);

  // Heartbeats stop; the manager's lease expires and it fails over.
  service.sim()->RunFor(Seconds(12));
  ProfileDbProcess* fresh = service.system()->profile_db();
  ASSERT_NE(fresh, nullptr);
  EXPECT_NE(fresh->pid(), old_pid);
  EXPECT_GT(service.system()->manager()->profile_db_failovers(), 0);

  // The new primary recovered the WAL: the profile still drives requests.
  auto stored = service.system()->profile_store()->Get("persistent");
  ASSERT_TRUE(stored.has_value());
}

// ---------- total control-plane loss (monitor as operator-of-last-resort) ---------------------

TEST(ControlPlaneLossTest, SimultaneousManagerAndAllFrontEndDeathHeals) {
  // The mutual process-peer web (manager <-> FEs, §3.1.3) deadlocks if both sides
  // die in the same detection window. The monitor — the component that would page
  // the operator — acts as the operator of last resort: it restarts the manager,
  // and restoring the control plane restores the configured roster.
  Logger::Get().set_min_level(LogLevel::kNone);
  TranSendService service(TinyOptions());
  service.Start();
  service.sim()->RunFor(Seconds(3));

  ProcessId old_manager = service.system()->manager_pid();
  FrontEndProcess* fe = service.system()->front_end(0);
  ASSERT_NE(fe, nullptr);
  ProcessId old_fe = fe->pid();
  service.system()->cluster()->Crash(old_manager);
  service.system()->cluster()->Crash(old_fe);
  ASSERT_EQ(service.system()->manager(), nullptr);
  ASSERT_TRUE(service.system()->front_ends().empty());

  service.sim()->RunFor(Seconds(15));
  ASSERT_NE(service.system()->manager(), nullptr);
  ASSERT_FALSE(service.system()->front_ends().empty());
  EXPECT_NE(service.system()->manager_pid(), old_manager);
  EXPECT_NE(service.system()->front_end(0)->pid(), old_fe);
  EXPECT_GT(service.system()->monitor()->manager_restarts_triggered(), 0);

  // Full service resumes.
  PlaybackEngine* client = service.AddPlaybackEngine();
  TraceRecord record;
  record.user_id = "afterlife";
  record.url = service.universe()->UrlAt(0);
  client->SendRequest(record);
  service.sim()->RunFor(Seconds(140));
  EXPECT_EQ(client->completed(), 1);
  EXPECT_EQ(client->errors(), 0);
}

// ---------- dynamic FE addition & load shedding -----------------------------------------------

TEST(FrontEndOpsTest, AddFrontEndServesTraffic) {
  Logger::Get().set_min_level(LogLevel::kNone);
  TranSendService service(TinyOptions());
  service.Start();
  service.sim()->RunFor(Seconds(2));
  int new_index = service.system()->AddFrontEnd();
  EXPECT_EQ(new_index, 1);
  service.sim()->RunFor(Seconds(2));
  ASSERT_EQ(service.system()->front_ends().size(), 2u);

  // The client's round robin reaches both FEs.
  PlaybackEngine* client = service.AddPlaybackEngine();
  TraceRecord record;
  record.user_id = "multi";
  record.url = service.universe()->UrlAt(0);
  for (int i = 0; i < 4; ++i) {
    client->SendRequest(record);
    service.sim()->RunFor(Seconds(40));
  }
  service.sim()->RunFor(Seconds(120));
  EXPECT_EQ(client->completed(), 4);
  int64_t total = 0;
  for (FrontEndProcess* fe : service.system()->front_ends()) {
    total += fe->completed_requests();
    EXPECT_GT(fe->completed_requests(), 0);
  }
  EXPECT_EQ(total, 4);
}

TEST(FrontEndOpsTest, ThreadPoolQueuesBeyondCapacity) {
  Logger::Get().set_min_level(LogLevel::kNone);
  TranSendOptions options = TinyOptions();
  options.sns.fe_thread_pool_size = 2;  // Tiny pool: force queueing.
  options.logic.cache_distilled = false;
  options.universe.url_count = 40;
  TranSendService service(options);
  service.Start();
  PlaybackEngine* client = service.AddPlaybackEngine();
  service.sim()->RunFor(Seconds(2));

  std::string url = BigJpegUrl(&service);
  ASSERT_FALSE(url.empty());
  TraceRecord record;
  record.user_id = "q";
  record.url = url;
  client->SendRequest(record);
  service.sim()->RunFor(Seconds(140));  // Warm cache + distiller.

  // Fire a burst far beyond 2 concurrent threads.
  for (int i = 0; i < 30; ++i) {
    client->SendRequest(record);
  }
  service.sim()->RunFor(Seconds(60));
  FrontEndProcess* fe = service.system()->front_end(0);
  ASSERT_NE(fe, nullptr);
  EXPECT_LE(fe->peak_active_requests(), 2);
  EXPECT_EQ(client->completed(), 31);  // Queued, not dropped.
  EXPECT_EQ(client->errors(), 0);
}

}  // namespace
}  // namespace sns
