// Tests for the harvest/yield availability ledger: window bucketing and
// zero-fill, run-total conservation, recovery-gap derivation against the event
// log, the response-provenance -> harvest mapping, and end-to-end wiring
// through a live TranSend system (full answers score exactly 1.0; degraded
// BASE answers score fractionally).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/obs/availability.h"
#include "src/obs/events.h"
#include "src/services/transend/transend.h"
#include "src/sns/messages.h"
#include "src/util/logging.h"
#include "src/util/rng.h"

namespace sns {
namespace {

// Same distill-heavy idiom as the flight-recorder tests: all-JPEG universe
// well above the distill threshold with variant caching off, so every request
// that completes normally pays the distiller and comes back kDistilled.
TranSendOptions DistillHeavyOptions() {
  TranSendOptions options = DefaultTranSendOptions();
  options.universe.url_count = 20;
  options.universe.sizes.gif_fraction = 0.0;
  options.universe.sizes.html_fraction = 0.0;
  options.universe.sizes.jpeg_fraction = 1.0;
  options.universe.sizes.jpeg_mu = 9.2335;
  options.universe.sizes.jpeg_sigma = 0.05;
  options.universe.sizes.error_page_fraction = 0.0;
  options.logic.cache_distilled = false;
  options.topology.worker_pool_nodes = 2;
  options.topology.front_ends = 1;
  return options;
}

// ---------------------------------------------------------------------------
// Provenance -> harvest mapping
// ---------------------------------------------------------------------------

TEST(ResponseHarvestTest, MapsProvenanceToCompleteness) {
  // Full answers are exactly 1.0 — the ledger's "every stage ran" anchor.
  EXPECT_DOUBLE_EQ(ResponseHarvest(ResponseSource::kDistilled), 1.0);
  EXPECT_DOUBLE_EQ(ResponseHarvest(ResponseSource::kPassThrough), 1.0);
  // Shedding the distillation stage costs completeness; an approximate
  // variant costs more; an error answer carries nothing.
  EXPECT_DOUBLE_EQ(ResponseHarvest(ResponseSource::kCacheOriginal), 0.65);
  EXPECT_DOUBLE_EQ(ResponseHarvest(ResponseSource::kCacheApproximate), 0.5);
  EXPECT_DOUBLE_EQ(ResponseHarvest(ResponseSource::kError), 0.0);
  // Ordering sanity: degradations are monotone in severity.
  EXPECT_GT(ResponseHarvest(ResponseSource::kCacheOriginal),
            ResponseHarvest(ResponseSource::kCacheApproximate));
}

// ---------------------------------------------------------------------------
// Ledger unit tests
// ---------------------------------------------------------------------------

TEST(AvailabilityLedgerTest, EmptyRunIsVacuouslyAvailable) {
  AvailabilityLedger ledger;
  EXPECT_DOUBLE_EQ(ledger.RunYield(), 1.0);
  EXPECT_DOUBLE_EQ(ledger.RunHarvest(), 1.0);
  EXPECT_TRUE(ledger.Windows().empty());
  EXPECT_TRUE(ledger.DeriveRecoveryGaps(nullptr).empty());
  EXPECT_EQ(ledger.RenderTable(nullptr), "  (no requests offered)\n");
}

TEST(AvailabilityLedgerTest, BucketsWindowsZeroFillsAndConserves) {
  AvailabilityLedger ledger;  // 1 s windows.
  // Window 0: two offered, two full answers. Window 1: quiet (must zero-fill).
  // Window 2: two offered — one degraded answer, one timeout.
  ledger.RecordOffered(Milliseconds(100));
  ledger.RecordAnswered(Milliseconds(400), 1.0);
  ledger.RecordOffered(Milliseconds(200));
  ledger.RecordAnswered(Milliseconds(600), 1.0);
  ledger.RecordOffered(Seconds(2) + Milliseconds(50));
  ledger.RecordAnswered(Seconds(2) + Milliseconds(300), 0.5);
  ledger.RecordOffered(Seconds(2) + Milliseconds(100));
  ledger.RecordUnanswered(Seconds(2) + Milliseconds(900), "timeout");

  // Conservation: every offered request resolved exactly one way.
  EXPECT_EQ(ledger.offered(), 4);
  EXPECT_EQ(ledger.answered(), 3);
  EXPECT_EQ(ledger.unanswered(), 1);
  EXPECT_EQ(ledger.offered(), ledger.answered() + ledger.unanswered());
  EXPECT_DOUBLE_EQ(ledger.RunYield(), 0.75);
  EXPECT_DOUBLE_EQ(ledger.RunHarvest(), (1.0 + 1.0 + 0.5) / 3.0);
  EXPECT_EQ(ledger.unanswered_by_reason().at("timeout"), 1);

  std::vector<AvailabilityLedger::WindowRow> rows = ledger.Windows();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].second, 0);
  EXPECT_EQ(rows[0].offered, 2);
  EXPECT_EQ(rows[0].answered, 2);
  EXPECT_EQ(rows[1].second, 1);  // The quiet interior window is materialized.
  EXPECT_EQ(rows[1].offered, 0);
  EXPECT_EQ(rows[1].answered, 0);
  EXPECT_EQ(rows[2].second, 2);
  EXPECT_EQ(rows[2].offered, 2);
  EXPECT_EQ(rows[2].answered, 1);
  EXPECT_EQ(rows[2].unanswered, 1);
  EXPECT_DOUBLE_EQ(rows[2].harvest_sum, 0.5);

  std::string json = ledger.ToJson(nullptr);
  EXPECT_NE(json.find("\"offered\":4"), std::string::npos);
  EXPECT_NE(json.find("\"unanswered_by_reason\":{\"timeout\":1}"), std::string::npos);
  EXPECT_NE(json.find("\"windows\":{\"second\":[0,1,2]"), std::string::npos);
}

TEST(AvailabilityLedgerTest, HarvestFractionsAreClamped) {
  AvailabilityLedger ledger;
  ledger.RecordOffered(0);
  ledger.RecordAnswered(0, 1.7);  // Out-of-contract caller: clamp, don't inflate.
  ledger.RecordOffered(0);
  ledger.RecordAnswered(0, -0.3);
  EXPECT_DOUBLE_EQ(ledger.RunHarvest(), 0.5);  // (1.0 + 0.0) / 2.
}

TEST(AvailabilityLedgerTest, RecoveryGapsAttributeToLatestPrecedingFault) {
  AvailabilityLedger ledger;
  EventLog log;
  log.RecordFault({Milliseconds(200), "warmup blip"});
  log.RecordFault({Milliseconds(1500), "crash node 3"});
  log.RecordFault({Seconds(30), "unrelated later fault"});

  // Windows 0-1 healthy; windows 2-4 offered with zero answers (the outage);
  // window 5 healthy again.
  for (int64_t s = 0; s <= 5; ++s) {
    SimTime at = Seconds(s) + Milliseconds(10);
    ledger.RecordOffered(at);
    if (s < 2 || s == 5) {
      ledger.RecordAnswered(at + Milliseconds(100), 1.0);
    } else {
      ledger.RecordUnanswered(at + Milliseconds(100), "timeout");
    }
  }

  std::vector<AvailabilityLedger::RecoveryGap> gaps = ledger.DeriveRecoveryGaps(&log);
  ASSERT_EQ(gaps.size(), 1u);
  EXPECT_DOUBLE_EQ(gaps[0].start_s, 2.0);
  EXPECT_DOUBLE_EQ(gaps[0].end_s, 5.0);
  EXPECT_DOUBLE_EQ(gaps[0].duration_s, 3.0);
  // The latest fault at or before the gap's end wins — not the warmup blip
  // and not the fault that happened long after recovery.
  EXPECT_EQ(gaps[0].fault, "crash node 3");

  std::string json = ledger.ToJson(&log);
  EXPECT_NE(json.find("\"recovery_gaps\":[{\"start_s\":2.000"), std::string::npos);
  EXPECT_NE(json.find("\"max_recovery_gap_s\":3.000"), std::string::npos);
  EXPECT_NE(json.find("\"fault\":\"crash node 3\""), std::string::npos);

  std::string table = ledger.RenderTable(&log);
  EXPECT_NE(table.find("! outage"), std::string::npos);
  EXPECT_NE(table.find("* crash node 3"), std::string::npos);
}

// ---------------------------------------------------------------------------
// End-to-end wiring through a live system
// ---------------------------------------------------------------------------

TEST(AvailabilityIntegrationTest, FullAnswersScoreExactlyOne) {
  Logger::Get().set_min_level(LogLevel::kNone);
  TranSendService service(DistillHeavyOptions());
  service.Start();
  PlaybackEngine* client = service.AddPlaybackEngine(0xA7A1);
  Rng rng(0x11AA);
  ContentUniverse* universe = service.universe();
  client->StartConstantRate(10, [&rng, universe] {
    TraceRecord record;
    record.user_id = "avail";
    record.url = universe->UrlAt(rng.UniformInt(0, universe->url_count() - 1));
    return record;
  });
  service.sim()->RunFor(Seconds(15));
  client->StopLoad();
  service.sim()->RunFor(Seconds(10));  // Drain in-flight requests.

  AvailabilityLedger* ledger = service.system()->availability();
  ASSERT_NE(ledger, nullptr);
  EXPECT_GT(ledger->offered(), 0);
  EXPECT_GT(ledger->answered(), 0);
  // Conservation after drain: nothing offered is still unresolved.
  EXPECT_EQ(ledger->offered(), ledger->answered() + ledger->unanswered());
  // Every answer in this topology is the requested representation, so run
  // harvest is exactly 1.0 — not 0.999-something.
  EXPECT_DOUBLE_EQ(ledger->RunHarvest(), 1.0);
  EXPECT_GT(ledger->RunYield(), 0.9);

  // The ledger's gauges are bound in the system constructor, so the monitor
  // registry carries the same running totals.
  EXPECT_DOUBLE_EQ(
      service.system()->metrics()->FindGauge("availability.offered")->value(),
      static_cast<double>(ledger->offered()));
  EXPECT_DOUBLE_EQ(
      service.system()->metrics()->FindGauge("availability.yield")->value(),
      ledger->RunYield());
}

TEST(AvailabilityIntegrationTest, DegradedAnswersYieldFractionalHarvest) {
  Logger::Get().set_min_level(LogLevel::kNone);
  TranSendOptions options = DistillHeavyOptions();
  // Task timeout shorter than any distillation: every attempt times out and
  // the front end falls back to the BASE approximate answer (the original
  // bytes), so the client is fully answered but every answer is degraded.
  options.sns.task_timeout = Milliseconds(1);
  options.sns.task_retries = 2;
  options.sns.task_retry_backoff_base = Milliseconds(10);
  TranSendService service(options);
  service.Start();
  PlaybackEngine* client = service.AddPlaybackEngine(0xBB22);
  Rng rng(0xBB22);
  ContentUniverse* universe = service.universe();
  client->StartConstantRate(10, [&rng, universe] {
    TraceRecord record;
    record.user_id = "degraded";
    record.url = universe->UrlAt(rng.UniformInt(0, universe->url_count() - 1));
    return record;
  });
  service.sim()->RunFor(Seconds(10));
  client->StopLoad();
  service.sim()->RunFor(Seconds(10));

  AvailabilityLedger* ledger = service.system()->availability();
  EXPECT_GT(ledger->offered(), 0);
  EXPECT_EQ(ledger->offered(), ledger->answered() + ledger->unanswered());
  // Yield stays high — BASE trades harvest, not yield, under this fault.
  EXPECT_GT(ledger->RunYield(), 0.9);
  // Harvest reflects the degradation: approximate answers score 0.5 each.
  EXPECT_LT(ledger->RunHarvest(), 1.0);
  EXPECT_NEAR(ledger->RunHarvest(), 0.5, 0.05);
  EXPECT_GT(client->responses_by_source().at("approximate"), 0);
}

}  // namespace
}  // namespace sns
