// Tests for the discrete-event simulator and timers.

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/simulator.h"
#include "src/sim/timer.h"

namespace sns {
namespace {

TEST(SimulatorTest, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(Seconds(3), [&] { order.push_back(3); });
  sim.Schedule(Seconds(1), [&] { order.push_back(1); });
  sim.Schedule(Seconds(2), [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), Seconds(3));
}

TEST(SimulatorTest, TiesBreakFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.Schedule(Seconds(1), [&order, i] { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(SimulatorTest, EventsCanScheduleEvents) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(Seconds(1), [&] {
    ++fired;
    sim.Schedule(Seconds(1), [&] { ++fired; });
  });
  sim.Run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), Seconds(2));
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  EventId id = sim.Schedule(Seconds(1), [&] { fired = true; });
  EXPECT_TRUE(sim.Cancel(id));
  EXPECT_FALSE(sim.Cancel(id));  // Double cancel is a no-op.
  sim.Run();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, CancelInvalidIdReturnsFalse) {
  Simulator sim;
  EXPECT_FALSE(sim.Cancel(kInvalidEventId));
  EXPECT_FALSE(sim.Cancel(999999));
}

TEST(SimulatorTest, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(Seconds(1), [&] { ++fired; });
  sim.Schedule(Seconds(5), [&] { ++fired; });
  sim.RunUntil(Seconds(3));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), Seconds(3));
  sim.RunFor(Seconds(3));
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), Seconds(6));
}

TEST(SimulatorTest, EventAtExactBoundaryRuns) {
  Simulator sim;
  bool fired = false;
  sim.Schedule(Seconds(3), [&] { fired = true; });
  sim.RunUntil(Seconds(3));
  EXPECT_TRUE(fired);
}

TEST(SimulatorTest, StopHaltsRun) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(Seconds(1), [&] {
    ++fired;
    sim.Stop();
  });
  sim.Schedule(Seconds(2), [&] { ++fired; });
  sim.Run();
  EXPECT_EQ(fired, 1);
  sim.Run();  // Resumes.
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, NegativeDelayClampsToNow) {
  Simulator sim;
  sim.Schedule(Seconds(1), [] {});
  sim.Run();
  SimTime before = sim.now();
  bool fired = false;
  sim.Schedule(-Seconds(5), [&] { fired = true; });
  sim.Run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.now(), before);
}

TEST(SimulatorTest, PendingAndExecutedCounts) {
  Simulator sim;
  sim.Schedule(1, [] {});
  sim.Schedule(2, [] {});
  EXPECT_EQ(sim.pending_events(), 2u);
  sim.Run();
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_EQ(sim.executed_events(), 2u);
}

TEST(PeriodicTimerTest, FiresRepeatedlyUntilStopped) {
  Simulator sim;
  int fired = 0;
  PeriodicTimer timer(&sim, Seconds(1), [&] { ++fired; });
  timer.Start();
  sim.RunUntil(Seconds(5) + Milliseconds(1.0));
  EXPECT_EQ(fired, 5);
  timer.Stop();
  sim.RunFor(Seconds(5));
  EXPECT_EQ(fired, 5);
}

TEST(PeriodicTimerTest, InitialDelayOverride) {
  Simulator sim;
  int fired = 0;
  PeriodicTimer timer(&sim, Seconds(10), [&] { ++fired; });
  timer.StartWithDelay(Milliseconds(1.0));
  sim.RunUntil(Seconds(1));
  EXPECT_EQ(fired, 1);
}

TEST(PeriodicTimerTest, CallbackMayStopTimer) {
  Simulator sim;
  int fired = 0;
  PeriodicTimer timer(&sim, Seconds(1), [&] {
    if (++fired == 3) {
      timer.Stop();
    }
  });
  timer.Start();
  sim.RunFor(Seconds(10));
  EXPECT_EQ(fired, 3);
}

TEST(PeriodicTimerTest, DestructionCancels) {
  Simulator sim;
  int fired = 0;
  {
    PeriodicTimer timer(&sim, Seconds(1), [&] { ++fired; });
    timer.Start();
  }
  sim.RunFor(Seconds(5));
  EXPECT_EQ(fired, 0);
}

TEST(OneShotTimerTest, FiresOnceAndRearms) {
  Simulator sim;
  int fired = 0;
  OneShotTimer timer(&sim);
  timer.Arm(Seconds(1), [&] { ++fired; });
  EXPECT_TRUE(timer.armed());
  sim.RunFor(Seconds(2));
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(timer.armed());
  timer.Arm(Seconds(1), [&] { fired += 10; });
  sim.RunFor(Seconds(2));
  EXPECT_EQ(fired, 11);
}

TEST(OneShotTimerTest, RearmReplacesPending) {
  Simulator sim;
  int value = 0;
  OneShotTimer timer(&sim);
  timer.Arm(Seconds(1), [&] { value = 1; });
  timer.Arm(Seconds(2), [&] { value = 2; });
  sim.RunFor(Seconds(5));
  EXPECT_EQ(value, 2);
}

}  // namespace
}  // namespace sns
