// Tests for the discrete-event simulator and timers.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/sim/simulator.h"
#include "src/sim/timer.h"

namespace sns {
namespace {

TEST(SimulatorTest, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(Seconds(3), [&] { order.push_back(3); });
  sim.Schedule(Seconds(1), [&] { order.push_back(1); });
  sim.Schedule(Seconds(2), [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), Seconds(3));
}

TEST(SimulatorTest, TiesBreakFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.Schedule(Seconds(1), [&order, i] { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(SimulatorTest, EventsCanScheduleEvents) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(Seconds(1), [&] {
    ++fired;
    sim.Schedule(Seconds(1), [&] { ++fired; });
  });
  sim.Run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), Seconds(2));
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  EventId id = sim.Schedule(Seconds(1), [&] { fired = true; });
  EXPECT_TRUE(sim.Cancel(id));
  EXPECT_FALSE(sim.Cancel(id));  // Double cancel is a no-op.
  sim.Run();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, CancelInvalidIdReturnsFalse) {
  Simulator sim;
  EXPECT_FALSE(sim.Cancel(kInvalidEventId));
  EXPECT_FALSE(sim.Cancel(999999));
}

TEST(SimulatorTest, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(Seconds(1), [&] { ++fired; });
  sim.Schedule(Seconds(5), [&] { ++fired; });
  sim.RunUntil(Seconds(3));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), Seconds(3));
  sim.RunFor(Seconds(3));
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), Seconds(6));
}

TEST(SimulatorTest, EventAtExactBoundaryRuns) {
  Simulator sim;
  bool fired = false;
  sim.Schedule(Seconds(3), [&] { fired = true; });
  sim.RunUntil(Seconds(3));
  EXPECT_TRUE(fired);
}

TEST(SimulatorTest, StopHaltsRun) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(Seconds(1), [&] {
    ++fired;
    sim.Stop();
  });
  sim.Schedule(Seconds(2), [&] { ++fired; });
  sim.Run();
  EXPECT_EQ(fired, 1);
  sim.Run();  // Resumes.
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, NegativeDelayClampsToNow) {
  Simulator sim;
  sim.Schedule(Seconds(1), [] {});
  sim.Run();
  SimTime before = sim.now();
  bool fired = false;
  sim.Schedule(-Seconds(5), [&] { fired = true; });
  sim.Run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.now(), before);
}

TEST(SimulatorTest, PendingAndExecutedCounts) {
  Simulator sim;
  sim.Schedule(1, [] {});
  sim.Schedule(2, [] {});
  EXPECT_EQ(sim.pending_events(), 2u);
  sim.Run();
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_EQ(sim.executed_events(), 2u);
}

TEST(SimulatorTest, CancelAfterFireReturnsFalse) {
  Simulator sim;
  bool fired = false;
  EventId id = sim.Schedule(Seconds(1), [&] { fired = true; });
  sim.Run();
  EXPECT_TRUE(fired);
  // Regression: the heap-era core returned true here and permanently polluted
  // its cancelled-set, which in turn made pending_events() wrap below zero.
  EXPECT_FALSE(sim.Cancel(id));
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SimulatorTest, PendingCountNeverUnderflows) {
  Simulator sim;
  std::vector<EventId> ids;
  for (int i = 0; i < 8; ++i) {
    ids.push_back(sim.Schedule(Seconds(i + 1), [] {}));
  }
  EXPECT_EQ(sim.pending_events(), 8u);
  EXPECT_TRUE(sim.Cancel(ids[0]));
  EXPECT_EQ(sim.pending_events(), 7u);
  sim.Run();
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_EQ(sim.executed_events(), 7u);
  // Cancelling every id again (all fired or cancelled) must not move the count.
  for (EventId id : ids) {
    EXPECT_FALSE(sim.Cancel(id));
  }
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_LT(sim.pending_events(), 1000000u);  // The seed bug wrapped to ~SIZE_MAX.
}

TEST(SimulatorTest, CancelInsideOwnCallbackIsNoOp) {
  Simulator sim;
  EventId id = kInvalidEventId;
  int cancels = 0;
  id = sim.Schedule(Seconds(1), [&] {
    if (sim.Cancel(id)) ++cancels;
  });
  sim.Run();
  EXPECT_EQ(cancels, 0);  // An id is dead the moment its callback starts.
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SimulatorTest, StopDuringRunUntilFreezesTime) {
  Simulator sim;
  sim.Schedule(Seconds(1), [&] { sim.Stop(); });
  sim.Schedule(Seconds(2), [] {});
  sim.RunUntil(Seconds(10));
  // Regression: the old core fast-forwarded now_ to 10s even though Stop()
  // halted the run at the 1s event.
  EXPECT_EQ(sim.now(), Seconds(1));
  sim.RunUntil(Seconds(10));  // Resumes and completes: clock advances fully.
  EXPECT_EQ(sim.now(), Seconds(10));
}

TEST(SimulatorTest, FarFutureEventsOrderAcrossOverflow) {
  // Mixes wheel-resident timers with ones past the ~68.7 s wheel horizon so
  // ordering must survive the overflow-level migrate-in path.
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(Seconds(200), [&] { order.push_back(200); });
  sim.Schedule(Seconds(1), [&] { order.push_back(1); });
  sim.Schedule(Seconds(100), [&] { order.push_back(100); });
  sim.Schedule(Seconds(70), [&] { order.push_back(70); });
  sim.Schedule(Seconds(100), [&] { order.push_back(101); });  // FIFO at equal time.
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 70, 100, 101, 200}));
  EXPECT_EQ(sim.now(), Seconds(200));
}

TEST(SimulatorTest, CancelFarFutureEvent) {
  Simulator sim;
  bool fired = false;
  EventId id = sim.Schedule(Seconds(500), [&] { fired = true; });
  EXPECT_EQ(sim.pending_events(), 1u);
  EXPECT_TRUE(sim.Cancel(id));
  EXPECT_FALSE(sim.Cancel(id));
  EXPECT_EQ(sim.pending_events(), 0u);
  sim.Run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.now(), 0);  // Nothing ran; the clock never moved.
}

TEST(SimulatorTest, ScheduleAfterPeekKeepsOrdering) {
  // RunUntil peeks (structurally advancing the wheel cursor) past a boundary
  // with nothing due; events scheduled afterwards must still order correctly.
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(Seconds(5), [&] { order.push_back(5); });
  sim.RunUntil(Seconds(2));  // No event fires; internal cursor may move.
  EXPECT_EQ(sim.now(), Seconds(2));
  sim.Schedule(Seconds(1), [&] { order.push_back(3); });   // t=3s absolute.
  sim.Schedule(Milliseconds(1.0), [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{2, 3, 5}));
}

TEST(SimulatorTest, FifoAcrossWheelWindows) {
  // Equal-time events scheduled from different callbacks (different wheel
  // placements) must still pop in schedule order.
  Simulator sim;
  std::vector<int> order;
  constexpr SimTime kTarget = 3 * kMillisecond;
  sim.Schedule(kTarget, [&] { order.push_back(0); });
  sim.Schedule(kMicrosecond, [&] {
    sim.ScheduleAt(kTarget, [&] { order.push_back(1); });
  });
  sim.Schedule(2 * kMillisecond, [&] {
    sim.ScheduleAt(kTarget, [&] { order.push_back(2); });
  });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(SimulatorTest, MoveOnlyAndLargeCaptures) {
  Simulator sim;
  // Move-only capture (impossible with the std::function-based core).
  auto token = std::make_unique<int>(7);
  int seen = 0;
  sim.Schedule(Seconds(1), [t = std::move(token), &seen] { seen = *t; });
  // Oversized capture takes SimCallback's heap fallback.
  struct Big {
    char bytes[512] = {};
  };
  Big big;
  big.bytes[0] = 42;
  char got = 0;
  sim.Schedule(Seconds(2), [big, &got] { got = big.bytes[0]; });
  sim.Run();
  EXPECT_EQ(seen, 7);
  EXPECT_EQ(got, 42);
}

TEST(PeriodicTimerTest, FiresRepeatedlyUntilStopped) {
  Simulator sim;
  int fired = 0;
  PeriodicTimer timer(&sim, Seconds(1), [&] { ++fired; });
  timer.Start();
  sim.RunUntil(Seconds(5) + Milliseconds(1.0));
  EXPECT_EQ(fired, 5);
  timer.Stop();
  sim.RunFor(Seconds(5));
  EXPECT_EQ(fired, 5);
}

TEST(PeriodicTimerTest, InitialDelayOverride) {
  Simulator sim;
  int fired = 0;
  PeriodicTimer timer(&sim, Seconds(10), [&] { ++fired; });
  timer.StartWithDelay(Milliseconds(1.0));
  sim.RunUntil(Seconds(1));
  EXPECT_EQ(fired, 1);
}

TEST(PeriodicTimerTest, CallbackMayStopTimer) {
  Simulator sim;
  int fired = 0;
  PeriodicTimer timer(&sim, Seconds(1), [&] {
    if (++fired == 3) {
      timer.Stop();
    }
  });
  timer.Start();
  sim.RunFor(Seconds(10));
  EXPECT_EQ(fired, 3);
}

TEST(PeriodicTimerTest, DestructionCancels) {
  Simulator sim;
  int fired = 0;
  {
    PeriodicTimer timer(&sim, Seconds(1), [&] { ++fired; });
    timer.Start();
  }
  sim.RunFor(Seconds(5));
  EXPECT_EQ(fired, 0);
}

TEST(OneShotTimerTest, FiresOnceAndRearms) {
  Simulator sim;
  int fired = 0;
  OneShotTimer timer(&sim);
  timer.Arm(Seconds(1), [&] { ++fired; });
  EXPECT_TRUE(timer.armed());
  sim.RunFor(Seconds(2));
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(timer.armed());
  timer.Arm(Seconds(1), [&] { fired += 10; });
  sim.RunFor(Seconds(2));
  EXPECT_EQ(fired, 11);
}

TEST(OneShotTimerTest, RearmReplacesPending) {
  Simulator sim;
  int value = 0;
  OneShotTimer timer(&sim);
  timer.Arm(Seconds(1), [&] { value = 1; });
  timer.Arm(Seconds(2), [&] { value = 2; });
  sim.RunFor(Seconds(5));
  EXPECT_EQ(value, 2);
}

}  // namespace
}  // namespace sns
