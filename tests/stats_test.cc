// Tests for the statistics accumulators.

#include <gtest/gtest.h>

#include <cmath>

#include "src/util/rng.h"
#include "src/util/stats.h"

namespace sns {
namespace {

TEST(RunningStatsTest, BasicMoments) {
  RunningStats stats;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    stats.Add(x);
  }
  EXPECT_EQ(stats.count(), 8);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-9);  // Sample variance.
}

TEST(RunningStatsTest, EmptyIsSafe) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.variance(), 0.0);
}

TEST(RunningStatsTest, MergeMatchesCombinedStream) {
  Rng rng(5);
  RunningStats all;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 1000; ++i) {
    double x = rng.Normal(3.0, 1.5);
    all.Add(x);
    (i % 2 == 0 ? a : b).Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(HistogramTest, CountsAndPercentiles) {
  Histogram hist(0, 100, 100);
  for (int i = 0; i < 100; ++i) {
    hist.Add(i + 0.5);
  }
  EXPECT_EQ(hist.TotalCount(), 100);
  EXPECT_NEAR(hist.Percentile(0.5), 50.0, 1.5);
  EXPECT_NEAR(hist.Percentile(0.95), 95.0, 1.5);
  EXPECT_NEAR(hist.Percentile(0.0), 0.0, 1.1);
}

TEST(HistogramTest, OutOfRangeGoesToOverflowButCountsTotal) {
  Histogram hist(0, 10, 10);
  hist.Add(-5);
  hist.Add(15);
  hist.Add(5);
  EXPECT_EQ(hist.TotalCount(), 3);
  EXPECT_EQ(hist.summary().count(), 3);
}

TEST(HistogramTest, UnderflowHeavyPercentilesClampToLowerBound) {
  Histogram hist(10, 20, 10);
  // 90% of the mass is below the histogram's range.
  for (int i = 0; i < 90; ++i) {
    hist.Add(-1.0);
  }
  for (int i = 0; i < 10; ++i) {
    hist.Add(15.0);
  }
  // Any quantile inside the underflow mass clamps to lo, never below it.
  EXPECT_DOUBLE_EQ(hist.Percentile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(hist.Percentile(0.5), 10.0);
  EXPECT_DOUBLE_EQ(hist.Percentile(0.9), 10.0);
  // Quantiles past the underflow mass land in the occupied bucket, in range.
  double p95 = hist.Percentile(0.95);
  EXPECT_GE(p95, 10.0);
  EXPECT_LE(p95, 20.0);
}

TEST(HistogramTest, OverflowHeavyPercentilesClampToUpperBound) {
  Histogram hist(0, 10, 10);
  for (int i = 0; i < 5; ++i) {
    hist.Add(5.0);
  }
  for (int i = 0; i < 95; ++i) {
    hist.Add(100.0);
  }
  EXPECT_DOUBLE_EQ(hist.Percentile(0.5), 10.0);
  EXPECT_DOUBLE_EQ(hist.Percentile(1.0), 10.0);
}

TEST(LogHistogramTest, BucketsSpanDecades) {
  LogHistogram hist(10, 1e6, 10);
  hist.Add(11);
  hist.Add(100000);
  EXPECT_EQ(hist.TotalCount(), 2);
  // Bucket edges are multiplicative.
  EXPECT_NEAR(hist.BucketHigh(0) / hist.BucketLow(0), std::pow(10.0, 0.1), 1e-9);
}

TEST(LogHistogramTest, PercentileApproximatesMedian) {
  LogHistogram hist(10, 1e6, 20);
  Rng rng(6);
  for (int i = 0; i < 100000; ++i) {
    hist.Add(rng.LogNormal(8.0, 1.0));  // Median e^8 ~ 2981.
  }
  EXPECT_NEAR(hist.Percentile(0.5) / 2981.0, 1.0, 0.1);
}

TEST(LogHistogramTest, NonPositivePercentilesClampToLowerBound) {
  LogHistogram hist(10, 1e3, 10);
  // Non-positive samples have no logarithm; they stay in underflow: 90% of the mass.
  for (int i = 0; i < 90; ++i) {
    hist.Add(0.0);
  }
  for (int i = 0; i < 10; ++i) {
    hist.Add(100.0);
  }
  // Quantiles inside the underflow mass must clamp to the range's lower edge —
  // previously frac went negative and the result fell below BucketLow(0).
  EXPECT_DOUBLE_EQ(hist.Percentile(0.0), hist.BucketLow(0));
  EXPECT_DOUBLE_EQ(hist.Percentile(0.5), hist.BucketLow(0));
  EXPECT_DOUBLE_EQ(hist.Percentile(0.9), hist.BucketLow(0));
  double p95 = hist.Percentile(0.95);
  EXPECT_GE(p95, hist.BucketLow(0));
  EXPECT_LE(p95, 1e3);
}

TEST(LogHistogramTest, SubRangeValuesKeepResolutionWithKnownQuantiles) {
  // Sub-millisecond SAN transit times recorded into a seconds-scaled histogram.
  // Before the downward-extension fix every sample below `lo` collapsed into one
  // underflow bucket and p50 == p99 == BucketLow(0); now the layout grows downward
  // and the quantiles resolve to their true (bucket-width-accurate) values.
  LogHistogram hist(1e-3, 10.0, 10);
  for (int i = 0; i < 90; ++i) {
    hist.Add(50e-6);  // 50 µs, two decades below lo.
  }
  for (int i = 0; i < 10; ++i) {
    hist.Add(2e-3);
  }
  EXPECT_EQ(hist.TotalCount(), 100);
  // One log10 bucket at 10/decade spans a factor of 10^0.1 ~ 1.26.
  double width = std::pow(10.0, 0.1);
  double p50 = hist.Percentile(0.5);
  EXPECT_GE(p50, 50e-6 / width);
  EXPECT_LE(p50, 50e-6 * width);
  double p99 = hist.Percentile(0.99);
  EXPECT_GE(p99, 2e-3 / width);
  EXPECT_LE(p99, 2e-3 * width);
  EXPECT_GT(p99, p50 * 10.0);  // The two modes stay distinguishable.
}

TEST(LogHistogramTest, DownwardGrowthIsBoundedAgainstDenormalJunk) {
  LogHistogram hist(1.0, 10.0, 10);
  size_t before = hist.bucket_count();
  hist.Add(1e-300);  // Honoring this would need ~3000 buckets; refuse, keep it in underflow.
  EXPECT_EQ(hist.bucket_count(), before);
  EXPECT_DOUBLE_EQ(hist.Percentile(0.5), hist.BucketLow(0));
  hist.Add(0.5);  // A reasonable sub-range value still extends.
  EXPECT_GT(hist.bucket_count(), before);
  EXPECT_LE(hist.bucket_count(), LogHistogram::kMaxBuckets);
}

TEST(LogHistogramTest, OverflowHeavyPercentilesClampToUpperBound) {
  LogHistogram hist(10, 1e3, 10);
  for (int i = 0; i < 5; ++i) {
    hist.Add(100.0);
  }
  for (int i = 0; i < 95; ++i) {
    hist.Add(1e6);
  }
  double top = hist.BucketHigh(hist.bucket_count() - 1);
  EXPECT_DOUBLE_EQ(hist.Percentile(0.5), top);
  EXPECT_DOUBLE_EQ(hist.Percentile(1.0), top);
}

TEST(EwmaTest, FirstSampleDominatesThenSmooths) {
  Ewma ewma(0.5);
  EXPECT_TRUE(ewma.empty());
  ewma.Add(10);
  EXPECT_DOUBLE_EQ(ewma.value(), 10.0);
  ewma.Add(0);
  EXPECT_DOUBLE_EQ(ewma.value(), 5.0);
  ewma.Add(0);
  EXPECT_DOUBLE_EQ(ewma.value(), 2.5);
  ewma.Reset();
  EXPECT_TRUE(ewma.empty());
}

TEST(WindowedStatsTest, SlidesOverCapacity) {
  WindowedStats window(3);
  window.Add(1);
  window.Add(2);
  window.Add(3);
  EXPECT_TRUE(window.full());
  EXPECT_DOUBLE_EQ(window.Mean(), 2.0);
  window.Add(10);  // Evicts 1.
  EXPECT_DOUBLE_EQ(window.Mean(), 5.0);
  EXPECT_DOUBLE_EQ(window.Max(), 10.0);
}

TEST(DeltaEstimatorTest, ExtrapolatesLinearTrend) {
  DeltaEstimator est;
  est.Observe(10.0, 1.0);
  est.Observe(14.0, 2.0);  // Slope 4/s.
  EXPECT_NEAR(est.Predict(3.0), 18.0, 1e-9);
  EXPECT_NEAR(est.Predict(2.5), 16.0, 1e-9);
}

TEST(DeltaEstimatorTest, SingleObservationFallsBackToLastValue) {
  DeltaEstimator est;
  est.Observe(7.0, 1.0);
  EXPECT_DOUBLE_EQ(est.Predict(5.0), 7.0);
}

TEST(DeltaEstimatorTest, NeverPredictsNegativeQueues) {
  DeltaEstimator est;
  est.Observe(4.0, 1.0);
  est.Observe(1.0, 2.0);  // Falling at 3/s.
  EXPECT_DOUBLE_EQ(est.Predict(10.0), 0.0);
}

TEST(DeltaEstimatorTest, EmptyPredictsZero) {
  DeltaEstimator est;
  EXPECT_DOUBLE_EQ(est.Predict(1.0), 0.0);
}

}  // namespace
}  // namespace sns
