// Tests for the deterministic RNG and its distributions, including property-style
// parameterized sweeps over distribution parameters.

#include <gtest/gtest.h>

#include <cmath>

#include "src/util/rng.h"
#include "src/util/stats.h"

namespace sns {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, ForkIsIndependentOfParentUsage) {
  Rng a(7);
  Rng child = a.Fork();
  uint64_t c1 = child.Next();
  Rng b(7);
  Rng child2 = b.Fork();
  EXPECT_EQ(c1, child2.Next());
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(42);
  for (int i = 0; i < 10000; ++i) {
    double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    int64_t x = rng.UniformInt(3, 7);
    EXPECT_GE(x, 3);
    EXPECT_LE(x, 7);
    saw_lo = saw_lo || x == 3;
    saw_hi = saw_hi || x == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(10);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) {
    hits += rng.Bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) {
    stats.Add(rng.Exponential(5.0));
  }
  EXPECT_NEAR(stats.mean(), 5.0, 0.1);
  EXPECT_GE(stats.min(), 0.0);
}

TEST(RngTest, NormalMoments) {
  Rng rng(12);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) {
    stats.Add(rng.Normal(10.0, 2.0));
  }
  EXPECT_NEAR(stats.mean(), 10.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(RngTest, LogNormalMeanMatchesFormula) {
  Rng rng(13);
  double mu = 8.0;
  double sigma = 0.5;
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) {
    stats.Add(rng.LogNormal(mu, sigma));
  }
  double expected = std::exp(mu + sigma * sigma / 2.0);
  EXPECT_NEAR(stats.mean() / expected, 1.0, 0.03);
}

TEST(RngTest, PoissonMeanAndSmallMean) {
  Rng rng(14);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) {
    stats.Add(static_cast<double>(rng.Poisson(4.2)));
  }
  EXPECT_NEAR(stats.mean(), 4.2, 0.1);
  EXPECT_EQ(rng.Poisson(0.0), 0);
  EXPECT_EQ(rng.Poisson(-1.0), 0);
}

TEST(RngTest, PoissonLargeMeanUsesNormalApprox) {
  Rng rng(15);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) {
    stats.Add(static_cast<double>(rng.Poisson(100.0)));
  }
  EXPECT_NEAR(stats.mean(), 100.0, 1.0);
  EXPECT_NEAR(stats.stddev(), 10.0, 0.5);
}

TEST(RngTest, BoundedParetoStaysInRange) {
  Rng rng(16);
  for (int i = 0; i < 10000; ++i) {
    double x = rng.BoundedPareto(1.2, 1.0, 1000.0);
    EXPECT_GE(x, 1.0);
    EXPECT_LE(x, 1000.0);
  }
}

TEST(RngTest, WeightedIndexRespectsWeights) {
  Rng rng(17);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 40000; ++i) {
    ++counts[rng.WeightedIndex(weights)];
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.2);
}

TEST(RngTest, WeightedIndexAllZeroFallsBackToUniform) {
  Rng rng(18);
  std::vector<double> weights = {0.0, 0.0};
  int counts[2] = {0, 0};
  for (int i = 0; i < 10000; ++i) {
    ++counts[rng.WeightedIndex(weights)];
  }
  EXPECT_GT(counts[0], 3000);
  EXPECT_GT(counts[1], 3000);
}

// Property sweep: Zipf rank frequencies are monotone non-increasing and rank 0
// dominates according to the skew.
class ZipfSweep : public ::testing::TestWithParam<double> {};

TEST_P(ZipfSweep, RanksMonotoneAndInRange) {
  double skew = GetParam();
  Rng rng(static_cast<uint64_t>(skew * 1000) + 3);
  constexpr int64_t kN = 50;
  std::vector<int64_t> counts(kN, 0);
  for (int i = 0; i < 200000; ++i) {
    int64_t rank = rng.Zipf(kN, skew);
    ASSERT_GE(rank, 0);
    ASSERT_LT(rank, kN);
    ++counts[rank];
  }
  // Head should beat tail decisively for skew > 0.
  if (skew > 0.2) {
    EXPECT_GT(counts[0], counts[kN - 1] * 2);
  }
  // Coarse monotonicity: compare decile sums.
  int64_t first_decile = 0;
  int64_t last_decile = 0;
  for (int i = 0; i < 5; ++i) {
    first_decile += counts[i];
    last_decile += counts[kN - 1 - i];
  }
  EXPECT_GE(first_decile, last_decile);
}

INSTANTIATE_TEST_SUITE_P(Skews, ZipfSweep, ::testing::Values(0.0, 0.5, 0.8, 1.0, 1.3));

}  // namespace
}  // namespace sns
