// Tests for the HotBot service: the inverted index substrate, shard workers, the
// result wire format, and the full scatter/gather system with graceful degradation.

#include <gtest/gtest.h>

#include "src/services/extras/palm_transform.h"
#include "src/services/hotbot/hotbot.h"
#include "src/sns/worker_process.h"
#include "src/util/logging.h"
#include "src/util/strings.h"

namespace sns {
namespace {

// ---------- inverted index ------------------------------------------------------------

TEST(InvertedIndexTest, SingleTermSearchRanksByTf) {
  InvertedIndexShard shard(0);
  shard.AddDocument({1, "one", {"apple"}});
  shard.AddDocument({2, "two", {"apple", "apple", "apple"}});
  shard.AddDocument({3, "three", {"banana"}});
  auto hits = shard.Search({"apple"}, 10);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].doc_id, 2);  // Higher TF first.
  EXPECT_EQ(hits[1].doc_id, 1);
  EXPECT_GT(hits[0].score, hits[1].score);
}

TEST(InvertedIndexTest, ConjunctiveSearchIntersects) {
  InvertedIndexShard shard(0);
  shard.AddDocument({1, "", {"apple", "banana"}});
  shard.AddDocument({2, "", {"apple"}});
  shard.AddDocument({3, "", {"banana"}});
  auto hits = shard.Search({"apple", "banana"}, 10);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].doc_id, 1);
}

TEST(InvertedIndexTest, MissingTermYieldsEmpty) {
  InvertedIndexShard shard(0);
  shard.AddDocument({1, "", {"apple"}});
  EXPECT_TRUE(shard.Search({"apple", "zebra"}, 10).empty());
  EXPECT_TRUE(shard.Search({}, 10).empty());
}

TEST(InvertedIndexTest, TopKTruncatesDeterministically) {
  InvertedIndexShard shard(0);
  for (int64_t i = 0; i < 50; ++i) {
    shard.AddDocument({i, "", {"term"}});
  }
  auto hits = shard.Search({"term"}, 10);
  ASSERT_EQ(hits.size(), 10u);
  // Equal scores: ascending doc id tiebreak.
  for (size_t i = 1; i < hits.size(); ++i) {
    EXPECT_LT(hits[i - 1].doc_id, hits[i].doc_id);
  }
}

TEST(InvertedIndexTest, CandidatePostingsSumsListLengths) {
  InvertedIndexShard shard(0);
  shard.AddDocument({1, "", {"a", "b"}});
  shard.AddDocument({2, "", {"a"}});
  EXPECT_EQ(shard.CandidatePostings({"a", "b"}), 3);
  EXPECT_EQ(shard.CandidatePostings({"zzz"}), 0);
}

TEST(CorpusTest, RandomShardingCoversAllDocuments) {
  CorpusConfig config;
  config.doc_count = 5000;
  auto shards = BuildShardedCorpus(config, 8);
  ASSERT_EQ(shards.size(), 8u);
  int64_t total = 0;
  for (const ShardPtr& shard : shards) {
    EXPECT_GT(shard->doc_count(), 300);  // Roughly balanced random split.
    total += shard->doc_count();
  }
  EXPECT_EQ(total, 5000);
}

TEST(CorpusTest, DeterministicForSeed) {
  CorpusConfig config;
  config.doc_count = 1000;
  auto a = BuildShardedCorpus(config, 4);
  auto b = BuildShardedCorpus(config, 4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(a[static_cast<size_t>(i)]->doc_count(), b[static_cast<size_t>(i)]->doc_count());
    EXPECT_EQ(a[static_cast<size_t>(i)]->posting_count(),
              b[static_cast<size_t>(i)]->posting_count());
  }
}

// ---------- shard worker & wire format ----------------------------------------------------

TEST(SearchWorkerTest, ProcessReturnsParsableResults) {
  CorpusConfig config;
  config.doc_count = 2000;
  auto shards = BuildShardedCorpus(config, 2);
  SearchShardWorker worker(shards[0], SearchCostConfig{});
  EXPECT_FALSE(worker.interchangeable());  // Partitions are not substitutes (§3.2).

  TaccRequest request;
  request.url = "http://hotbot/q";
  request.args[kArgQuery] = VocabularyWord(0) + " " + VocabularyWord(1);
  request.args[kArgTopK] = "5";
  TaccResult result = worker.Process(request);
  ASSERT_TRUE(result.status.ok());
  auto decoded = DecodeSearchResults(result.output->bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->shard_id, 0);
  EXPECT_EQ(decoded->doc_count, shards[0]->doc_count());
  EXPECT_LE(decoded->hits.size(), 5u);
}

TEST(SearchWorkerTest, EmptyQueryFails) {
  CorpusConfig config;
  config.doc_count = 100;
  auto shards = BuildShardedCorpus(config, 1);
  SearchShardWorker worker(shards[0], SearchCostConfig{});
  TaccRequest request;
  EXPECT_FALSE(worker.Process(request).status.ok());
}

TEST(SearchWorkerTest, EncodeDecodeRoundTrip) {
  std::vector<SearchHit> hits = {{7, 3.5, "Title A"}, {9, 1.0, "Title B"}};
  auto bytes = EncodeSearchResults(3, 12345, hits);
  auto decoded = DecodeSearchResults(bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->shard_id, 3);
  EXPECT_EQ(decoded->doc_count, 12345);
  ASSERT_EQ(decoded->hits.size(), 2u);
  EXPECT_EQ(decoded->hits[0].doc_id, 7);
  EXPECT_NEAR(decoded->hits[0].score, 3.5, 1e-6);
  EXPECT_EQ(decoded->hits[1].title, "Title B");
}

TEST(SearchWorkerTest, DecodeRejectsGarbage) {
  std::vector<uint8_t> garbage = {'h', 'i'};
  EXPECT_FALSE(DecodeSearchResults(garbage).ok());
}

// ---------- full system -----------------------------------------------------------------

HotBotOptions SmallHotBot() {
  HotBotOptions options = DefaultHotBotOptions();
  options.shard_count = 4;
  options.logic.shard_count = 4;
  options.corpus.doc_count = 4000;
  options.topology.worker_pool_nodes = 6;
  return options;
}

TEST(HotBotSystemTest, QueryReturnsResultsFromAllPartitions) {
  HotBotService service(SmallHotBot());
  service.Start();
  PlaybackEngine* client = service.AddPlaybackEngine();
  service.sim()->RunFor(Seconds(3));

  client->SendRequest(service.MakeQuery("user1", VocabularyWord(0)));
  service.sim()->RunFor(Seconds(20));

  ASSERT_EQ(client->completed(), 1);
  EXPECT_EQ(client->errors(), 0);
}

TEST(HotBotSystemTest, RepeatQueryHitsSearchCache) {
  HotBotService service(SmallHotBot());
  service.Start();
  PlaybackEngine* client = service.AddPlaybackEngine();
  service.sim()->RunFor(Seconds(3));

  client->SendRequest(service.MakeQuery("u", VocabularyWord(1)));
  service.sim()->RunFor(Seconds(20));
  client->SendRequest(service.MakeQuery("u", VocabularyWord(1)));
  service.sim()->RunFor(Seconds(10));
  EXPECT_EQ(client->completed(), 2);
  // Second answer comes fast from the integrated result cache.
  EXPECT_LT(client->latency_stats().min(), 0.2);
}

TEST(HotBotSystemTest, LosingAShardShrinksTheDatabaseGracefully) {
  // "with 26 nodes the loss of one machine results in the database dropping from
  // 54M to about 51M documents" — partial failure shrinks, not breaks (§3.2).
  Logger::Get().set_min_level(LogLevel::kNone);
  HotBotOptions options = SmallHotBot();
  options.logic.cache_searches = false;  // Fresh scatter per query.
  options.sns.task_retries = 0;          // Don't wait for a shard respawn.
  options.sns.task_timeout = Seconds(2);
  HotBotService service(options);
  service.Start();
  PlaybackEngine* client = service.AddPlaybackEngine();
  service.sim()->RunFor(Seconds(3));

  client->SendRequest(service.MakeQuery("u", VocabularyWord(0)));
  service.sim()->RunFor(Seconds(20));
  ASSERT_EQ(client->completed(), 1);

  // Kill shard 2's worker; immediately query again (before any respawn finishes).
  auto victims = service.system()->live_workers(SearchShardType(2));
  ASSERT_FALSE(victims.empty());
  int64_t full_docs = service.TotalDocuments();
  int64_t lost_docs = service.shards()[2]->doc_count();
  service.system()->cluster()->Crash(victims[0]->pid());

  client->SendRequest(service.MakeQuery("u", VocabularyWord(0) + " degraded"));
  service.sim()->RunFor(Seconds(30));
  EXPECT_EQ(client->completed(), 2);
  // The answer was flagged approximate (a partition was missing).
  auto sources = client->responses_by_source();
  EXPECT_GE(sources["approximate"], 1);
  EXPECT_GT(lost_docs, 0);
  EXPECT_LT(lost_docs, full_docs);
}

TEST(HotBotSystemTest, IncrementalDeliveryServesLaterPagesFromCache) {
  // Table 1: "integrated cache of recent searches, for incremental delivery" —
  // page 2 of a query must come from the cached result set without re-querying
  // the partitions.
  Logger::Get().set_min_level(LogLevel::kNone);
  HotBotService service(SmallHotBot());
  service.Start();
  PlaybackEngine* client = service.AddPlaybackEngine();
  service.sim()->RunFor(Seconds(3));

  std::string query = VocabularyWord(0);
  client->SendRequest(service.MakeQuery("pager", query));
  service.sim()->RunFor(Seconds(20));
  ASSERT_EQ(client->completed(), 1);

  int64_t shard_tasks_after_page1 = 0;
  for (WorkerProcess* worker : service.system()->live_workers()) {
    shard_tasks_after_page1 += worker->completed_tasks();
  }

  TraceRecord page2 = service.MakeQuery("pager", query);
  page2.params["page"] = "2";
  int64_t bytes_before = client->bytes_received();
  client->SendRequest(page2);
  service.sim()->RunFor(Seconds(10));
  ASSERT_EQ(client->completed(), 2);

  // No shard did any new work for page 2.
  int64_t shard_tasks_after_page2 = 0;
  for (WorkerProcess* worker : service.system()->live_workers()) {
    shard_tasks_after_page2 += worker->completed_tasks();
  }
  EXPECT_EQ(shard_tasks_after_page2, shard_tasks_after_page1);
  // And page 2 is a different (possibly shorter) slice, served fast.
  EXPECT_GT(client->bytes_received(), bytes_before);
  EXPECT_LT(client->latency_stats().min(), 0.2);
}

TEST(HotBotSystemTest, PageBeyondResultsIsEmptyButValid) {
  Logger::Get().set_min_level(LogLevel::kNone);
  HotBotService service(SmallHotBot());
  service.Start();
  PlaybackEngine* client = service.AddPlaybackEngine();
  service.sim()->RunFor(Seconds(3));

  TraceRecord far_page = service.MakeQuery("pager", VocabularyWord(1));
  far_page.params["page"] = "99";
  client->SendRequest(far_page);
  service.sim()->RunFor(Seconds(20));
  EXPECT_EQ(client->completed(), 1);
  EXPECT_EQ(client->errors(), 0);
}

TEST(HotBotSystemTest, PalmBrowserGetsSpoonFedPresentation) {
  // §3.2: presentation is customized per browser type. A PalmPilot user's profile
  // switches the result page to the line-oriented thin-client rendering.
  Logger::Get().set_min_level(LogLevel::kNone);
  HotBotOptions options = SmallHotBot();
  HotBotService service(options);
  UserProfile palm_user("pilot");
  palm_user.Set("browser", "palm");
  palm_user.Set("palm_cols", "24");
  service.system()->SeedProfile(palm_user);
  service.Start();
  PlaybackEngine* client = service.AddPlaybackEngine();
  service.sim()->RunFor(Seconds(3));

  client->SendRequest(service.MakeQuery("pilot", VocabularyWord(0)));
  service.sim()->RunFor(Seconds(20));
  ASSERT_EQ(client->completed(), 1);
  // The bytes delivered are SPOON text: no tabs wider than 24 columns per line.
  // (We can't read the response body from the client stats; assert indirectly via
  // a fresh query through the logic below.)
  HotBotLogicConfig logic_config;
  HotBotLogic::ParsedResultPage full;
  full.partitions_reached = 1;
  full.partitions_total = 1;
  full.hits = {{1, 2.0, "a very long document title that must wrap"}};
  auto bytes = HotBotLogic::RenderResultPage(full.hits, 1, 1, 10);
  std::string spoon = SpoonFeed(std::string(bytes.begin(), bytes.end()), 24, 12);
  for (const std::string& line : StrSplit(spoon, '\n')) {
    for (const std::string& page_line : StrSplit(line, '\f')) {
      EXPECT_LE(page_line.size(), 24u);
    }
  }
}

TEST(HotBotLogicTest, ResultPageRoundTripsThroughParse) {
  std::vector<SearchHit> hits = {{1, 9.0, "alpha"}, {2, 5.5, "beta"}};
  auto bytes = HotBotLogic::RenderResultPage(hits, 3, 4, 12345);
  auto parsed = HotBotLogic::ParseResultPage(bytes);
  EXPECT_EQ(parsed.result_count, 2);
  EXPECT_EQ(parsed.partitions_reached, 3);
  EXPECT_EQ(parsed.partitions_total, 4);
  EXPECT_EQ(parsed.docs_searched, 12345);
  ASSERT_EQ(parsed.hits.size(), 2u);
  EXPECT_EQ(parsed.hits[1].title, "beta");
  EXPECT_NEAR(parsed.hits[0].score, 9.0, 1e-6);
}

TEST(HotBotSystemTest, ClusterMoveHalfAtATimeNeverGoesDown) {
  // The paper's anecdote: "during February 1997, HotBot was physically moved (from
  // Berkeley to San Jose) without ever being down, by moving half of the cluster at
  // a time... Although various parts of the database were unavailable at different
  // times during the move, the overall service was still up and useful."
  Logger::Get().set_min_level(LogLevel::kNone);
  HotBotOptions options = SmallHotBot();
  options.logic.cache_searches = false;
  options.sns.task_timeout = Seconds(2);
  options.sns.task_retries = 1;
  HotBotService service(options);
  service.Start();
  PlaybackEngine* client = service.AddPlaybackEngine();
  service.sim()->RunFor(Seconds(3));

  // Steady query stream throughout the move.
  Rng rng(0x30E);
  auto* svc = &service;
  client->StartConstantRate(4, [&rng, svc] {
    std::string query = VocabularyWord(rng.Zipf(200, 0.9));
    return svc->MakeQuery("mover", query);
  });
  service.sim()->RunFor(Seconds(10));

  // Phase 1: power off the first half of the worker pool (shards respawn onto the
  // surviving nodes via the manager's spawn path).
  std::vector<NodeId> pool = service.system()->worker_pool();
  size_t half = pool.size() / 2;
  for (size_t i = 0; i < half; ++i) {
    service.system()->cluster()->CrashNode(pool[i]);
  }
  service.sim()->RunFor(Seconds(40));

  // Phase 2: first half comes back; second half goes down.
  for (size_t i = 0; i < half; ++i) {
    service.system()->cluster()->RestartNode(pool[i]);
  }
  for (size_t i = half; i < pool.size(); ++i) {
    service.system()->cluster()->CrashNode(pool[i]);
  }
  service.sim()->RunFor(Seconds(40));

  // Move complete: everything back.
  for (size_t i = half; i < pool.size(); ++i) {
    service.system()->cluster()->RestartNode(pool[i]);
  }
  service.sim()->RunFor(Seconds(30));
  client->StopLoad();
  service.sim()->RunFor(Seconds(10));

  // The service was "still up and useful" the whole time: answers kept flowing
  // (some approximate), and few users were affected.
  int64_t answered = client->completed();
  int64_t asked = client->sent();
  EXPECT_GT(answered, asked * 9 / 10);
  EXPECT_EQ(client->errors(), 0);
  // And the full database is searchable again after the move.
  for (int shard = 0; shard < options.shard_count; ++shard) {
    EXPECT_FALSE(service.system()->live_workers(SearchShardType(shard)).empty())
        << "shard " << shard << " missing after the move";
  }
}

TEST(HotBotSystemTest, CrashedShardIsRespawnedAndServiceHeals) {
  Logger::Get().set_min_level(LogLevel::kNone);
  HotBotOptions options = SmallHotBot();
  options.logic.cache_searches = false;
  HotBotService service(options);
  service.Start();
  PlaybackEngine* client = service.AddPlaybackEngine();
  service.sim()->RunFor(Seconds(3));

  auto victims = service.system()->live_workers(SearchShardType(1));
  ASSERT_FALSE(victims.empty());
  service.system()->cluster()->Crash(victims[0]->pid());

  // The FE's spawn request (or retry path) brings the shard back; a later query
  // sees the full database again.
  client->SendRequest(service.MakeQuery("u", VocabularyWord(2)));
  service.sim()->RunFor(Seconds(40));
  EXPECT_EQ(client->completed(), 1);
  EXPECT_FALSE(service.system()->live_workers(SearchShardType(1)).empty());

  client->SendRequest(service.MakeQuery("u", VocabularyWord(2) + " after"));
  service.sim()->RunFor(Seconds(20));
  auto sources = client->responses_by_source();
  EXPECT_GE(sources["distilled"], 1);  // Full-coverage answer after healing.
}

}  // namespace
}  // namespace sns
