// System chaos fuzzing: hundreds of random operator/fault actions against the live
// TranSend system, asserting the architecture's global invariants — the simulation
// never wedges, counters stay consistent, and after the chaos stops the process-peer
// web heals the system back to full service.

#include <gtest/gtest.h>

#include "src/services/transend/transend.h"
#include "src/sns/worker_process.h"
#include "src/util/logging.h"

namespace sns {
namespace {

class SystemFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SystemFuzz, RandomFaultsAndLoadNeverWedgeTheSystem) {
  Logger::Get().set_min_level(LogLevel::kNone);
  TranSendOptions options = DefaultTranSendOptions();
  options.universe.url_count = 80;
  options.logic.cache_distilled = false;
  options.topology.worker_pool_nodes = 5;
  options.topology.overflow_nodes = 2;
  options.topology.cache_nodes = 2;
  // Production TranSend relied on client-side balancing across front ends to mask
  // FE failures (§3.1.2); give the chaos run the same redundancy.
  options.topology.front_ends = 2;
  TranSendService service(options);
  service.Start();
  PlaybackEngine* client = service.AddPlaybackEngine(GetParam());
  service.sim()->RunFor(Seconds(3));

  Rng rng(GetParam() ^ 0xF022);
  ContentUniverse* universe = service.universe();
  client->StartConstantRate(10, [&rng, universe] {
    TraceRecord record;
    record.user_id = "chaos";
    record.url = universe->UrlAt(rng.UniformInt(0, universe->url_count() - 1));
    return record;
  });

  std::vector<NodeId> downed_nodes;
  bool partitioned = false;
  for (int step = 0; step < 200; ++step) {
    service.sim()->RunFor(Milliseconds(1000.0 + rng.UniformInt(0, 1500)));
    SnsSystem* system = service.system();
    switch (rng.UniformInt(0, 9)) {
      case 0: {  // Crash a random worker.
        auto workers = system->live_workers();
        if (!workers.empty()) {
          system->cluster()->Crash(
              workers[static_cast<size_t>(
                          rng.UniformInt(0, static_cast<int64_t>(workers.size()) - 1))]
                  ->pid());
        }
        break;
      }
      case 1:  // Crash the manager.
        if (system->manager() != nullptr && rng.Bernoulli(0.4)) {
          system->cluster()->Crash(system->manager_pid());
        }
        break;
      case 2: {  // Crash a random front end.
        auto fes = system->front_ends();
        if (!fes.empty() && rng.Bernoulli(0.4)) {
          system->cluster()->Crash(
              fes[static_cast<size_t>(
                      rng.UniformInt(0, static_cast<int64_t>(fes.size()) - 1))]
                  ->pid());
        }
        break;
      }
      case 3: {  // Crash a cache node.
        auto caches = system->cache_node_processes();
        if (!caches.empty()) {
          system->cluster()->Crash(caches[0]->pid());
        }
        break;
      }
      case 4: {  // Power-fail a worker-pool node.
        const auto& pool = system->worker_pool();
        NodeId victim = pool[static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(pool.size()) - 1))];
        if (system->cluster()->NodeUp(victim) && downed_nodes.size() < 2) {
          system->cluster()->CrashNode(victim);
          downed_nodes.push_back(victim);
        }
        break;
      }
      case 5:  // Restart a downed node.
        if (!downed_nodes.empty()) {
          system->cluster()->RestartNode(downed_nodes.back());
          downed_nodes.pop_back();
        }
        break;
      case 6:  // Partition a random worker node away / heal.
        if (!partitioned) {
          const auto& pool = system->worker_pool();
          system->san()->SetPartition(
              pool[static_cast<size_t>(
                  rng.UniformInt(0, static_cast<int64_t>(pool.size()) - 1))],
              1);
          partitioned = true;
        } else {
          system->san()->HealPartitions();
          partitioned = false;
        }
        break;
      case 7:  // Poison a request (crashes its distiller mid-task).
        if (rng.Bernoulli(0.5)) {
          TraceRecord record;
          record.user_id = "chaos";
          record.url = universe->UrlAt(rng.UniformInt(0, universe->url_count() - 1));
          client->SendRequest(record, {{"__poison", "1"}});
        }
        break;
      case 8:  // Jolt the load.
        client->SetRate(rng.Uniform(3.0, 30.0));
        break;
      case 9:  // Crash the profile DB.
        if (system->profile_db() != nullptr && rng.Bernoulli(0.3)) {
          system->cluster()->Crash(system->profile_db()->pid());
        }
        break;
    }
  }

  // Stop the chaos, heal everything, and let the process-peer web converge.
  service.system()->san()->HealPartitions();
  for (NodeId node : downed_nodes) {
    service.system()->cluster()->RestartNode(node);
  }
  client->StopLoad();
  service.sim()->RunFor(Seconds(40));

  // --- Invariants ---------------------------------------------------------------
  // The control plane healed itself.
  ASSERT_NE(service.system()->manager(), nullptr);
  EXPECT_GT(service.system()->manager()->beacons_sent(), 0);
  ASSERT_FALSE(service.system()->front_ends().empty());
  ASSERT_NE(service.system()->profile_db(), nullptr);

  // Counters are consistent.
  EXPECT_EQ(client->outstanding(), 0);
  EXPECT_LE(client->completed() + client->timeouts() + client->send_failures(),
            client->sent());

  // The service answered the overwhelming majority of chaos-era requests.
  double answered = static_cast<double>(client->completed()) /
                    static_cast<double>(std::max<int64_t>(client->sent(), 1));
  EXPECT_GT(answered, 0.90);

  // And it still works: a fresh request completes promptly.
  client->ResetStats();
  TraceRecord record;
  record.user_id = "after";
  record.url = universe->UrlAt(0);
  client->SendRequest(record);
  service.sim()->RunFor(Seconds(140));
  EXPECT_EQ(client->completed(), 1);
  EXPECT_EQ(client->errors(), 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SystemFuzz,
                         ::testing::Values(101u, 202u, 303u, 404u, 505u, 606u));

}  // namespace
}  // namespace sns
