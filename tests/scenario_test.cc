// Tests for the declarative scenario matrix (src/scenario): the committed
// smoke-matrix cell list (pinned so bench/CMakeLists.txt and the blessed
// baselines under bench/baselines/ cannot drift from it silently), the cell
// naming scheme, the recovery-gap metric, the deterministic streaming-TACC
// frame schedule, and one full cell run end to end.

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/scenario/matrix.h"
#include "src/scenario/scenario.h"
#include "src/tacc/streaming.h"
#include "src/util/logging.h"

namespace sns {
namespace {

// The committed smoke matrix, by name and in order. bench/CMakeLists.txt names
// these cells literally and bench/baselines/<name>.json holds one blessed
// baseline per cell — a change here must update both (and re-bless).
const char* const kSmokeCellNames[] = {
    "zipf_w2fe1c2r2u_f0_nom",
    "zipf_w2fe1c2r2u_f0_sat",
    "zipf_w4fe2c3r3u_f31_nom",
    "replay_w2fe2c2r1u_f0_nom",
    "replay_w4fe2c4r2u_f0_nom",
    "replay_w2fe1c2r1u_f0_sat",
    "flash_w3fe2c2r2u_f0_nom",
    "flash_w3fe2c2r2u_f47_nom",
    "flash_w3fe2c2r1u_f47_nom",
    "diurnal_w2fe1c2r2cw_f0_nom",
    "diurnal_w3fe2c2r2cw_f5a_nom",
    "stream_w2fe1c2r2u_f0_nom",
    "stream_w3fe2c2r3u_f6b_nom",
    "stream_w2fe1c2r2u_f0_sat",
};

TEST(ScenarioMatrixTest, SmokeMatrixPinsItsCellNames) {
  std::vector<ScenarioCell> cells = SmokeMatrix();
  ASSERT_EQ(cells.size(), sizeof(kSmokeCellNames) / sizeof(kSmokeCellNames[0]));
  for (size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(cells[i].Name(), kSmokeCellNames[i]) << "cell " << i;
  }
}

TEST(ScenarioMatrixTest, SmokeMatrixCoversRequiredAxes) {
  std::vector<ScenarioCell> cells = SmokeMatrix();
  EXPECT_GE(cells.size(), 12u);  // The issue's floor for the CI matrix.
  int stream = 0, flash = 0, faulted = 0, saturating = 0, core_weighted = 0;
  std::set<int> replication;
  std::set<std::string> names;
  for (const ScenarioCell& cell : cells) {
    EXPECT_TRUE(names.insert(cell.Name()).second) << "duplicate " << cell.Name();
    stream += cell.workload == WorkloadShape::kStream;
    flash += cell.workload == WorkloadShape::kFlashCrowd;
    faulted += cell.fault_seed != 0;
    saturating += cell.regime == OverloadRegime::kSaturating;
    core_weighted += cell.cluster.votes == VoteLayout::kCoreWeighted;
    replication.insert(cell.cluster.cache_replication);
    if (cell.fault_seed != 0) {
      // Every fault window must heal before the drain: the schedule horizon
      // plus the longest outage has to fit inside the measured window.
      EXPECT_LE(cell.gen.horizon + cell.gen.max_outage, cell.measure)
          << cell.Name();
    }
  }
  EXPECT_GE(stream, 1);
  EXPECT_GE(flash, 1);
  EXPECT_GE(faulted, 1);
  EXPECT_GE(saturating, 1);
  EXPECT_GE(core_weighted, 1);
  EXPECT_EQ(replication, (std::set<int>{1, 2, 3}));
}

TEST(ScenarioMatrixTest, FindCellResolvesNamesExactly) {
  std::vector<ScenarioCell> cells = SmokeMatrix();
  const ScenarioCell* cell = FindCell(cells, "stream_w3fe2c2r3u_f6b_nom");
  ASSERT_NE(cell, nullptr);
  EXPECT_EQ(cell->workload, WorkloadShape::kStream);
  EXPECT_EQ(cell->cluster.cache_replication, 3);
  EXPECT_EQ(cell->stream.sessions, 10);
  EXPECT_EQ(FindCell(cells, "no_such_cell"), nullptr);
}

TEST(ScenarioCellTest, NameEncodesEveryAxis) {
  ScenarioCell cell;
  cell.workload = WorkloadShape::kDiurnal;
  cell.cluster.worker_pool_nodes = 5;
  cell.cluster.front_ends = 3;
  cell.cluster.cache_nodes = 4;
  cell.cluster.cache_replication = 2;
  cell.cluster.votes = VoteLayout::kCoreWeighted;
  cell.regime = OverloadRegime::kSaturating;
  cell.fault_seed = 0xAB;
  EXPECT_EQ(cell.Name(), "diurnal_w5fe3c4r2cw_fab_sat");
  cell.fault_seed = 0;
  cell.cluster.votes = VoteLayout::kUniform;
  cell.regime = OverloadRegime::kNominal;
  EXPECT_EQ(cell.Name(), "diurnal_w5fe3c4r2u_f0_nom");
}

TEST(RecoveryGapTest, NoCompletionsAtAllIsOneLongGap) {
  std::map<int64_t, int64_t> per_second;
  EXPECT_EQ(LongestZeroCompletionGap(per_second, 10, 20), 10);
}

TEST(RecoveryGapTest, FullCoverageHasZeroGap) {
  std::map<int64_t, int64_t> per_second;
  for (int64_t s = 10; s < 20; ++s) {
    per_second[s] = 1;
  }
  EXPECT_EQ(LongestZeroCompletionGap(per_second, 10, 20), 0);
}

TEST(RecoveryGapTest, ReportsTheLongestInteriorGap) {
  std::map<int64_t, int64_t> per_second;
  for (int64_t s = 0; s < 30; ++s) {
    per_second[s] = 1;
  }
  per_second.erase(4);               // 1 s gap.
  for (int64_t s = 12; s < 17; ++s) {  // 5 s gap.
    per_second.erase(s);
  }
  EXPECT_EQ(LongestZeroCompletionGap(per_second, 0, 30), 5);
}

TEST(RecoveryGapTest, GapsAtTheWindowEdgesCount) {
  std::map<int64_t, int64_t> per_second;
  per_second[13] = 2;  // Covered second in the middle; gaps of 3 and 6 around it.
  EXPECT_EQ(LongestZeroCompletionGap(per_second, 10, 20), 6);
  // Buckets outside the window are ignored.
  per_second[9] = 5;
  per_second[25] = 5;
  EXPECT_EQ(LongestZeroCompletionGap(per_second, 10, 20), 6);
}

TEST(StreamScheduleTest, SameConfigYieldsIdenticalSchedule) {
  StreamSessionConfig config;
  config.sessions = 5;
  config.duration = Seconds(12);
  int64_t space = StreamUrlSpace(config);
  std::vector<StreamFrame> a = GenerateStreamFrames(config, space);
  std::vector<StreamFrame> b = GenerateStreamFrames(config, space);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.size(), static_cast<size_t>(config.sessions) *
                          static_cast<size_t>(StreamFramesPerSession(config)));
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].at, b[i].at);
    EXPECT_EQ(a[i].session, b[i].session);
    EXPECT_EQ(a[i].frame, b[i].frame);
    EXPECT_EQ(a[i].url_index, b[i].url_index);
  }
  config.seed ^= 1;
  std::vector<StreamFrame> c = GenerateStreamFrames(config, space);
  bool differs = false;
  for (size_t i = 0; i < a.size() && i < c.size(); ++i) {
    differs = differs || a[i].at != c[i].at;
  }
  EXPECT_TRUE(differs) << "reseeding did not move the frame schedule";
}

TEST(StreamScheduleTest, FramesAreOrderedFreshAndSessionDisjoint) {
  StreamSessionConfig config;
  config.sessions = 4;
  config.duration = Seconds(10);
  int64_t space = StreamUrlSpace(config);
  std::vector<StreamFrame> frames = GenerateStreamFrames(config, space);
  ASSERT_FALSE(frames.empty());
  std::set<int64_t> urls;
  for (size_t i = 0; i < frames.size(); ++i) {
    if (i > 0) {
      EXPECT_GE(frames[i].at, frames[i - 1].at);
    }
    EXPECT_GE(frames[i].at, 0);
    EXPECT_LT(frames[i].url_index, space);
    // Every frame is fresh content: no URL ever repeats across the whole run.
    EXPECT_TRUE(urls.insert(frames[i].url_index).second)
        << "frame " << i << " reuses url " << frames[i].url_index;
  }
}

// One cell end to end: clean nominal run, invariants hold, artifact lands on
// disk, and the goodput distortion knob touches only the emitted artifact copy.
TEST(ScenarioCellTest, NominalZipfCellRunsCleanAndWritesArtifact) {
  Logger::Get().set_min_level(LogLevel::kNone);
  std::vector<ScenarioCell> cells = SmokeMatrix();
  const ScenarioCell* cell = FindCell(cells, "zipf_w2fe1c2r2u_f0_nom");
  ASSERT_NE(cell, nullptr);
  CellRunOptions options;
  options.artifact_dir = testing::TempDir();
  CellResult result = RunScenarioCell(*cell, options);
  EXPECT_TRUE(result.passed()) << result.invariants.ToString();
  EXPECT_EQ(result.faults_injected, 0);
  EXPECT_GT(result.metrics.sent, 0);
  EXPECT_GT(result.metrics.goodput, 0.95);
  EXPECT_GT(result.metrics.latency_p50_s, 0.0);
  EXPECT_GE(result.metrics.latency_p99_s, result.metrics.latency_p50_s);
  EXPECT_GE(result.metrics.hit_rate, 0.0);
  EXPECT_LE(result.metrics.hit_rate, 1.0);
  EXPECT_EQ(result.metrics.recovery_s, 0.0);  // Fault-free: no outage window.
  EXPECT_EQ(result.metrics.late_completions, 0);

  ASSERT_TRUE(result.artifact_written);
  std::FILE* f = std::fopen(result.artifact_path.c_str(), "rb");
  ASSERT_NE(f, nullptr) << result.artifact_path;
  std::fclose(f);

  std::string baseline = BaselineJson(result);
  EXPECT_NE(baseline.find("\"schema_version\":2"), std::string::npos);
  EXPECT_NE(baseline.find("\"cell\":\"zipf_w2fe1c2r2u_f0_nom\""), std::string::npos);
  // v2 baselines carry the availability ledger's run metrics so bench_diff
  // can gate them alongside goodput.
  EXPECT_NE(baseline.find("\"yield\":"), std::string::npos);
  EXPECT_NE(baseline.find("\"harvest\":"), std::string::npos);

  // The distortion multiplier exists solely for the matrix-smoke WILL_FAIL
  // regression guard; it must rescale the artifact's goodput and nothing else.
  std::string genuine = MatrixSectionJson(result, 1.0);
  std::string distorted = MatrixSectionJson(result, 0.5);
  EXPECT_NE(genuine, distorted);
  EXPECT_NE(genuine.find("\"invariants_ok\":true"), std::string::npos);
  EXPECT_EQ(genuine.find("\"goodput\""), distorted.find("\"goodput\""));
  EXPECT_EQ(genuine.substr(0, genuine.find("\"goodput\"")),
            distorted.substr(0, distorted.find("\"goodput\"")));
}

}  // namespace
}  // namespace sns
