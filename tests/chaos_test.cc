// Chaos-campaign harness tests: seeded schedules hold the cluster-wide
// invariants, replays are deterministic, a manager partition provably creates
// split-brain that epoch fencing resolves, fencing off reproduces the pre-epoch
// persistent split-brain, and the minimizer shrinks failing schedules to a
// replayable minimal repro.

#include <gtest/gtest.h>

#include "src/chaos/campaign.h"
#include "src/chaos/invariants.h"
#include "src/chaos/minimizer.h"
#include "src/cluster/failure_injector.h"
#include "src/services/transend/transend.h"
#include "src/util/logging.h"

namespace sns {
namespace {

CampaignConfig SmokeConfig() {
  CampaignConfig config;
  config.gen.horizon = Seconds(30);
  config.gen.min_events = 2;
  config.gen.max_events = 5;
  config.gen.min_outage = Seconds(5);
  config.gen.max_outage = Seconds(15);
  config.warmup = Seconds(10);
  config.quiesce_settle = Seconds(20);
  return config;
}

FaultSchedule ManagerPartitionSchedule(uint64_t seed) {
  FaultSchedule schedule;
  schedule.seed = seed;
  FaultEvent split;
  split.at = Seconds(5);
  split.kind = FaultKind::kPartitionManager;
  split.duration = Seconds(15);
  schedule.events.push_back(split);
  return schedule;
}

TEST(ChaosScheduleTest, GenerationIsDeterministicAndSorted) {
  ScheduleGenConfig gen;
  FaultSchedule a = GenerateSchedule(0xFEED, gen);
  FaultSchedule b = GenerateSchedule(0xFEED, gen);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].at, b.events[i].at);
    EXPECT_EQ(a.events[i].kind, b.events[i].kind);
    EXPECT_EQ(a.events[i].index, b.events[i].index);
    EXPECT_EQ(a.events[i].duration, b.events[i].duration);
    if (i > 0) {
      EXPECT_LE(a.events[i - 1].at, a.events[i].at);
    }
  }
  EXPECT_EQ(a.ToScript(), b.ToScript());
  FaultSchedule c = GenerateSchedule(0xBEEF, gen);
  EXPECT_NE(a.ToScript(), c.ToScript());
}

// The acceptance campaign: 20 seeded schedules, every invariant holds.
TEST(ChaosCampaignTest, TwentySeededSchedulesHoldAllInvariants) {
  Logger::Get().set_min_level(LogLevel::kNone);
  CampaignResult result = RunCampaign(0xC4A05, 20, SmokeConfig());
  std::string failures;
  for (const ChaosRunResult& run : result.runs) {
    if (!run.passed()) {
      failures += run.Describe() + run.trace;
    }
  }
  EXPECT_EQ(result.failed, 0) << result.Summary() << failures;
  int64_t total_faults = 0;
  for (const ChaosRunResult& run : result.runs) {
    total_faults += run.faults_injected;
  }
  EXPECT_GT(total_faults, 20) << "campaign barely injected anything";
}

// Golden replay: pins the exact event sequence of the simulator core across
// rewrites — any divergence means event ordering changed, which breaks
// replay-based debugging across versions. Regenerate with tools/dump_chaos_trace
// ONLY for an intended behavior change, and say so in the commit message. The
// trace below was regenerated for the quorum/fencing PR (seed 0x601D, this
// SmokeConfig): the census carries a quorate count, the trace appends the
// fence-agent and membership-transition logs, and the final line reports the
// durable-write ledger — under quorum defaults this schedule now resolves by
// degrade-then-fence instead of the old split-brain-then-demote.
TEST(ChaosCampaignTest, ReplayMatchesGoldenCensusTrace) {
  Logger::Get().set_min_level(LogLevel::kNone);
  FaultSchedule schedule = GenerateSchedule(0x601D, SmokeConfig().gen);
  ChaosRunResult run = RunSchedule(schedule, SmokeConfig());
  EXPECT_TRUE(run.passed()) << run.Describe() << run.trace;
  const std::string kGolden =
      "t=0:00:10.000 managers=1 quorate=1 epoch=1\n"
      "t=0:00:15.791 beacon loss on group 1 for 0:00:13.385\n"
      "t=0:00:24.757 partition group 1 (1 nodes)\n"
      "t=0:00:38.679 heal group 1\n"
      "t=0:00:25.500 fence kill pid=1 node=0 (stale manager epoch 1, promoting epoch 2)\n"
      "t=0:00:00.000 regroup#1 node=0 members=13 votes=13/13 quorate=1\n"
      "t=0:00:10.526 regroup#2 node=5 members=13 votes=13/13 quorate=1\n"
      "t=0:00:25.010 regroup#3 node=0 members=1 votes=1/13 quorate=0\n"
      "t=0:00:25.010 manager epoch=1 degraded (votes 1/13)\n"
      "t=0:00:25.017 regroup#4 node=5 members=12 votes=12/13 quorate=1\n"
      "t=0:00:25.500 regroup#5 node=1 members=12 votes=12/13 quorate=1\n"
      "t=0:00:39.019 regroup#6 node=5 members=13 votes=13/13 quorate=1\n"
      "t=0:00:39.510 regroup#7 node=1 members=13 votes=13/13 quorate=1\n"
      "final managers=1 epoch=2 demotions=0 fence_kills=1 writes acked=88/90 lost=0 nonquorate=0\n";
  EXPECT_EQ(run.trace, kGolden);
}

TEST(ChaosCampaignTest, ReplayIsDeterministic) {
  Logger::Get().set_min_level(LogLevel::kNone);
  FaultSchedule schedule = GenerateSchedule(0xD0D0, SmokeConfig().gen);
  ChaosRunResult first = RunSchedule(schedule, SmokeConfig());
  ChaosRunResult second = RunSchedule(schedule, SmokeConfig());
  EXPECT_EQ(first.trace, second.trace);
  EXPECT_EQ(first.sent, second.sent);
  EXPECT_EQ(first.completed, second.completed);
  EXPECT_EQ(first.timeouts, second.timeouts);
  EXPECT_EQ(first.final_manager_epoch, second.final_manager_epoch);
  EXPECT_EQ(first.max_concurrent_managers, second.max_concurrent_managers);
}

// The PR 3 tentpole scenario: partitioning the manager's node forces the majority
// side to fail over while the stranded incumbent is still alive — two concurrent
// incarnations — and epoch fencing demotes the loser within a beacon period of
// the heal, so every invariant holds at quiesce. Quorum membership and STONITH
// (PR 8) are pinned off: with them on the stranded incumbent is shot at failover
// time and the split-brain window this test is about never opens.
TEST(ChaosCampaignTest, ManagerPartitionCreatesAndResolvesSplitBrain) {
  Logger::Get().set_min_level(LogLevel::kNone);
  CampaignConfig config = SmokeConfig();
  config.quorum_membership = false;
  config.stonith_fencing = false;
  ChaosRunResult run = RunSchedule(ManagerPartitionSchedule(0x5B17), config);
  EXPECT_TRUE(run.passed()) << run.Describe() << run.trace;
  EXPECT_GE(run.max_concurrent_managers, 2) << run.trace;
  EXPECT_GE(run.final_manager_epoch, 2u);
  EXPECT_GE(run.manager_demotions, 1);
}

// Pre-fix behavior: with fencing off, failover still happens (reachability-aware
// relaunch is unconditional), but after the heal both incarnations beacon forever
// — the exactly-one-manager invariant fails at quiesce.
TEST(ChaosCampaignTest, FencingOffReproducesPersistentSplitBrain) {
  Logger::Get().set_min_level(LogLevel::kNone);
  CampaignConfig config = SmokeConfig();
  config.epoch_fencing = false;
  config.quorum_membership = false;
  config.stonith_fencing = false;
  ChaosRunResult run = RunSchedule(ManagerPartitionSchedule(0x5B17), config);
  EXPECT_FALSE(run.passed()) << run.Describe() << run.trace;
  EXPECT_GE(run.max_concurrent_managers, 2);
  bool split_brain = false;
  for (const InvariantViolation& v : run.report.violations) {
    if (v.invariant == "exactly-one-manager") {
      split_brain = true;
    }
  }
  EXPECT_TRUE(split_brain) << run.report.ToString();
}

TEST(ChaosMinimizerTest, ShrinksFailingScheduleToMinimalRepro) {
  Logger::Get().set_min_level(LogLevel::kNone);
  CampaignConfig config = SmokeConfig();
  config.epoch_fencing = false;  // Guarantees the partition event alone fails.
  config.quorum_membership = false;
  config.stonith_fencing = false;  // STONITH would resolve the split instead.
  FaultSchedule schedule = ManagerPartitionSchedule(0x31);
  // Pad with noise the system masks on its own; the minimizer should strip it.
  FaultEvent crash;
  crash.at = Seconds(2);
  crash.kind = FaultKind::kCrashWorker;
  schedule.events.insert(schedule.events.begin(), crash);
  FaultEvent loss;
  loss.at = Seconds(12);
  loss.kind = FaultKind::kBeaconLoss;
  loss.duration = Seconds(2);
  schedule.events.push_back(loss);
  FaultEvent late_crash;
  late_crash.at = Seconds(20);
  late_crash.kind = FaultKind::kCrashWorker;
  late_crash.index = 3;
  schedule.events.push_back(late_crash);

  MinimizeResult result = MinimizeSchedule(schedule, config, /*max_runs=*/24);
  EXPECT_TRUE(result.still_fails);
  ASSERT_EQ(result.minimal.events.size(), 1u) << result.Repro();
  EXPECT_EQ(result.minimal.events[0].kind, FaultKind::kPartitionManager);
  EXPECT_FALSE(result.failure.ok());
  EXPECT_NE(result.Repro().find("partition_manager"), std::string::npos);
  EXPECT_GT(result.runs_used, 1);
}

TEST(ChaosMinimizerTest, PassingScheduleIsReportedAsNotFailing) {
  Logger::Get().set_min_level(LogLevel::kNone);
  FaultSchedule schedule;
  schedule.seed = 0x9;
  FaultEvent crash;
  crash.at = Seconds(3);
  crash.kind = FaultKind::kCrashWorker;
  schedule.events.push_back(crash);
  MinimizeResult result = MinimizeSchedule(schedule, SmokeConfig(), /*max_runs=*/4);
  EXPECT_FALSE(result.still_fails);
  EXPECT_EQ(result.runs_used, 1);
}

// System-level regression for the relaunch fix: the majority side must fail over
// WHILE the minority-side incumbent is still alive (pre-fix, the launcher's
// Find()-based idempotence check blocked failover for the whole outage), and the
// pair must converge to exactly the higher epoch after the heal.
TEST(PartitionToleranceTest, MajorityFailsOverWhileMinorityManagerAlive) {
  Logger::Get().set_min_level(LogLevel::kNone);
  TranSendOptions options = DefaultTranSendOptions();
  options.topology.worker_pool_nodes = 4;
  // Epoch-only story (PR 3): quorum + STONITH would fence the minority-side
  // incumbent at failover instead of leaving it alive to demote after the heal.
  options.sns.quorum_membership = false;
  options.sns.stonith_fencing = false;
  TranSendService service(options);
  service.Start();
  service.sim()->RunFor(Seconds(3));

  SnsSystem* system = service.system();
  ManagerProcess* incumbent = system->manager();
  ASSERT_NE(incumbent, nullptr);
  EXPECT_EQ(incumbent->epoch(), 1u);
  NodeId manager_node = incumbent->node();

  FailureInjector injector(system->cluster(), system->san());
  SimTime now = service.sim()->now();
  injector.PartitionAt(now + Seconds(1), {manager_node}, now + Seconds(20));

  // Mid-partition: the majority's front ends detected beacon silence and failed
  // over even though the incumbent still runs across the split.
  service.sim()->RunFor(Seconds(12));
  std::vector<ManagerProcess*> during = LiveManagers(system);
  ASSERT_EQ(during.size(), 2u) << "failover blocked by unreachable incumbent";
  EXPECT_EQ(system->manager_epoch(), 2u);
  bool incumbent_alive = false;
  for (ManagerProcess* m : during) {
    if (m->epoch() == 1) {
      incumbent_alive = true;
      EXPECT_EQ(m->node(), manager_node);
    }
  }
  EXPECT_TRUE(incumbent_alive);

  // Post-heal: the stale incarnation hears the higher epoch and demotes; exactly
  // one manager remains within a few beacon periods.
  service.sim()->RunFor(Seconds(15));
  std::vector<ManagerProcess*> after = LiveManagers(system);
  ASSERT_EQ(after.size(), 1u);
  EXPECT_EQ(after[0]->epoch(), 2u);
  EXPECT_GE(system->metrics()->GetCounter("manager.demotions")->value(), 1);
}

}  // namespace
}  // namespace sns
