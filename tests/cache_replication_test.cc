// System-level tests for the R-way replicated cache tier: replica fan-out on
// writes, failover reads down the chain, the background rebalancer restoring
// full replication after a cache-node kill, and the bounded FE profile cache.

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "src/cluster/failure_injector.h"
#include "src/services/transend/transend.h"
#include "src/util/logging.h"
#include "src/util/strings.h"

namespace sns {
namespace {

TranSendOptions ReplicationOptions(int replication) {
  TranSendOptions options = DefaultTranSendOptions();
  options.universe.url_count = 40;
  options.sns.cache_replication = replication;
  options.topology.cache_nodes = 4;
  options.topology.worker_pool_nodes = 6;
  return options;
}

void DriveLoad(TranSendService* service, PlaybackEngine* client, double rate,
               SimDuration duration, uint64_t seed) {
  Rng rng(seed);
  ContentUniverse* universe = service->universe();
  client->StartConstantRate(rate, [&rng, universe] {
    TraceRecord record;
    record.user_id = "repl";
    record.url = universe->UrlAt(rng.UniformInt(0, universe->url_count() - 1));
    return record;
  });
  service->sim()->RunFor(duration);
  client->StopLoad();
  service->sim()->RunFor(Seconds(15));  // Drain in-flight requests and puts.
}

// Recomputes the canonical replica chains from the live cache membership and
// asserts the tier converged: consistent views, no orphans, and — since these
// runs never evict — a copy on every chain member.
void ExpectFullReplication(TranSendService* service, int replication) {
  std::vector<CacheNodeProcess*> caches = service->system()->cache_node_processes();
  ASSERT_FALSE(caches.empty());
  ConsistentHashRing canonical(service->system()->config().cache_ring_vnodes);
  std::set<std::pair<NodeId, Port>> live;
  for (CacheNodeProcess* cache : caches) {
    canonical.AddMember(CacheRingMemberId(cache->endpoint()));
    live.insert({cache->endpoint().node, cache->endpoint().port});
    EXPECT_EQ(cache->evictions(), 0);
    EXPECT_EQ(cache->rejected(), 0);
    EXPECT_FALSE(cache->rebalance_active());
    std::set<std::pair<NodeId, Port>> view;
    for (const Endpoint& ep : cache->ring_members()) {
      view.insert({ep.node, ep.port});
    }
  }
  for (CacheNodeProcess* cache : caches) {
    std::set<std::pair<NodeId, Port>> view;
    for (const Endpoint& ep : cache->ring_members()) {
      view.insert({ep.node, ep.port});
    }
    EXPECT_EQ(view, live) << "cache n" << cache->node() << " membership view stale";
  }
  size_t r = static_cast<size_t>(replication);
  int audited = 0;
  for (CacheNodeProcess* cache : caches) {
    int64_t self = CacheRingMemberId(cache->endpoint());
    for (const std::string& key : cache->CacheKeys()) {
      std::vector<int64_t> chain = canonical.LookupN(key, r);
      ASSERT_FALSE(chain.empty());
      EXPECT_NE(std::find(chain.begin(), chain.end(), self), chain.end())
          << "cache n" << cache->node() << " holds orphan key " << key;
      for (int64_t member : chain) {
        Endpoint ep = CacheRingMemberEndpoint(member);
        for (CacheNodeProcess* peer : caches) {
          if (peer->endpoint() == ep) {
            EXPECT_TRUE(peer->HasKey(key))
                << "key " << key << " missing from chain member n" << peer->node();
          }
        }
      }
      ++audited;
    }
  }
  EXPECT_GT(audited, 0);
}

TEST(CacheReplicationTest, WritesFanOutToEveryChainMember) {
  Logger::Get().set_min_level(LogLevel::kNone);
  TranSendService service(ReplicationOptions(2));
  service.Start();
  PlaybackEngine* client = service.AddPlaybackEngine(0x11);
  service.sim()->RunFor(Seconds(5));
  DriveLoad(&service, client, 15, Seconds(30), 0x11);

  FrontEndProcess* fe = service.system()->front_end(0);
  ASSERT_NE(fe, nullptr);
  EXPECT_GT(fe->cache_replica_puts(), 0);
  ExpectFullReplication(&service, 2);
}

TEST(CacheReplicationTest, SingleCopyModeStoresExactlyOneReplica) {
  Logger::Get().set_min_level(LogLevel::kNone);
  TranSendService service(ReplicationOptions(1));
  service.Start();
  PlaybackEngine* client = service.AddPlaybackEngine(0x22);
  service.sim()->RunFor(Seconds(5));
  DriveLoad(&service, client, 15, Seconds(30), 0x22);

  FrontEndProcess* fe = service.system()->front_end(0);
  ASSERT_NE(fe, nullptr);
  EXPECT_EQ(fe->cache_replica_puts(), 0);
  // R=1 chains are a single member: every key lives on exactly one node.
  std::vector<CacheNodeProcess*> caches = service.system()->cache_node_processes();
  std::set<std::string> seen;
  int total = 0;
  for (CacheNodeProcess* cache : caches) {
    for (const std::string& key : cache->CacheKeys()) {
      EXPECT_TRUE(seen.insert(key).second) << "key " << key << " on two nodes";
      ++total;
    }
  }
  EXPECT_GT(total, 0);
  ExpectFullReplication(&service, 1);
}

TEST(CacheReplicationTest, NodeKillRebalancesSurvivorsBackToFullReplication) {
  Logger::Get().set_min_level(LogLevel::kNone);
  TranSendService service(ReplicationOptions(2));
  service.Start();
  PlaybackEngine* client = service.AddPlaybackEngine(0x33);
  service.sim()->RunFor(Seconds(5));

  Rng rng(0x33);
  ContentUniverse* universe = service.universe();
  client->StartConstantRate(15, [&rng, universe] {
    TraceRecord record;
    record.user_id = "repl";
    record.url = universe->UrlAt(rng.UniformInt(0, universe->url_count() - 1));
    return record;
  });
  service.sim()->RunFor(Seconds(30));

  // Kill one cache node under load. With R=2 every entry survives on the other
  // chain member; the survivors' rebalancers re-replicate the lost arcs.
  std::vector<CacheNodeProcess*> before = service.system()->cache_node_processes();
  ASSERT_EQ(before.size(), 4u);
  FailureInjector injector(service.system()->cluster(), service.system()->san());
  injector.CrashProcessAt(service.sim()->now() + Seconds(1), before[1]->pid());
  service.sim()->RunFor(Seconds(40));
  client->StopLoad();
  service.sim()->RunFor(Seconds(20));  // Drain + let rebalance/echo settle.

  EXPECT_EQ(service.system()->cache_node_processes().size(), 3u);
  int64_t pushed = 0;
  for (CacheNodeProcess* cache : service.system()->cache_node_processes()) {
    pushed += cache->rebalance_keys_pushed();
  }
  EXPECT_GT(pushed, 0);
  ExpectFullReplication(&service, 2);

  // Availability held: nearly every request answered despite the kill.
  double answered = static_cast<double>(client->completed()) /
                    static_cast<double>(client->completed() + client->timeouts());
  EXPECT_GT(answered, 0.95);
  EXPECT_EQ(client->errors(), 0);
}

// Deadline expiry during an active rebalance window: a get that dies of old age
// in flight is dropped by the cache node as `expired_gets` and must not bleed
// into the tier's hit/miss accounting — and neither must the migrated keys
// arriving as rebalance puts. A 12 ms deadline is unreachable by construction:
// the Harvest protocol pays a fresh TCP setup on both the client->FE and
// FE->cache hops, so every probe sent under it expires in flight while the
// survivors' rebalancers are repairing chains underneath the load.
TEST(CacheReplicationTest, DeadlineExpiryDuringRebalanceIsNotCountedAsMiss) {
  Logger::Get().set_min_level(LogLevel::kNone);
  TranSendOptions options = ReplicationOptions(2);
  // Throttle migration hard so the repair window stretches over seconds of sim
  // time — long enough that deadline-doomed gets provably land inside it.
  options.sns.cache_rebalance_bytes_per_s = 256.0 * 1024;
  options.sns.cache_rebalance_burst_bytes = 32.0 * 1024;
  TranSendService service(options);
  service.Start();
  PlaybackEngine* warm = service.AddPlaybackEngine(0x55);
  service.sim()->RunFor(Seconds(5));
  DriveLoad(&service, warm, 15, Seconds(30), 0x55);  // Warm the tier, then drain.

  auto total_misses = [&service] {
    int64_t total = 0;
    for (CacheNodeProcess* cache : service.system()->cache_node_processes()) {
      total += cache->misses();
    }
    return total;
  };
  auto total_expired = [&service] {
    int64_t total = 0;
    for (CacheNodeProcess* cache : service.system()->cache_node_processes()) {
      total += service.system()
                   ->metrics()
                   ->GetCounter(StrFormat("cache.n%d.expired_gets", cache->node()))
                   ->value();
    }
    return total;
  };
  auto total_rebalance_puts_in = [&service] {
    int64_t total = 0;
    for (CacheNodeProcess* cache : service.system()->cache_node_processes()) {
      total += service.system()
                   ->metrics()
                   ->GetCounter(StrFormat("cache.n%d.rebalance_puts_in", cache->node()))
                   ->value();
    }
    return total;
  };

  // Baseline over the survivors only: the victim's per-process counters vanish
  // with it, and the whole-episode delta below must compare like with like.
  std::vector<CacheNodeProcess*> before = service.system()->cache_node_processes();
  ASSERT_EQ(before.size(), 4u);
  CacheNodeProcess* victim = before[1];
  int64_t misses_before = total_misses() - victim->misses();
  int64_t expired_before = total_expired() -
                           service.system()
                               ->metrics()
                               ->GetCounter(StrFormat("cache.n%d.expired_gets", victim->node()))
                               ->value();
  int64_t puts_in_before = total_rebalance_puts_in();

  // Kill one cache node and simultaneously drive load whose deadline cannot be
  // met, so gets expire while the rebalancers migrate keys underneath them.
  FailureInjector injector(service.system()->cluster(), service.system()->san());
  injector.CrashProcessAt(service.sim()->now() + Seconds(1), victim->pid());

  PlaybackConfig expiring;
  expiring.seed = 0x66;
  expiring.request_timeout = Seconds(5);
  expiring.request_deadline = Milliseconds(12);
  PlaybackEngine* client = service.AddPlaybackEngine(expiring);
  Rng rng(0x66);
  ContentUniverse* universe = service.universe();
  client->StartConstantRate(30, [&rng, universe] {
    TraceRecord record;
    record.user_id = "repl";  // Warm profile, so the FE reaches the cache probe.
    record.url = universe->UrlAt(rng.UniformInt(0, universe->url_count() - 1));
    return record;
  });

  // Probe from inside the sim at 1 ms granularity (a pass over a warm 40-URL
  // universe lasts only a few sim-milliseconds) and pin the counters to the
  // first and last instants a survivor reports an active pass, so the
  // expired-vs-miss claim is tied to the rebalance window itself, not just the
  // episode as a whole.
  bool saw_window = false;
  int64_t expired_at_window_start = 0;
  int64_t misses_at_window_start = 0;
  int64_t expired_at_window_end = 0;
  int64_t misses_at_window_end = 0;
  std::function<void()> probe = [&] {
    bool active = false;
    for (CacheNodeProcess* cache : service.system()->cache_node_processes()) {
      active = active || cache->rebalance_active();
    }
    if (active) {
      if (!saw_window) {
        saw_window = true;
        expired_at_window_start = total_expired();
        misses_at_window_start = total_misses();
      }
      expired_at_window_end = total_expired();
      misses_at_window_end = total_misses();
    }
    service.sim()->Schedule(Milliseconds(1), probe);
  };
  service.sim()->Schedule(Milliseconds(1), probe);
  service.sim()->RunFor(Seconds(30));
  client->StopLoad();
  service.sim()->RunFor(Seconds(40));  // Drain; let throttled rebalance + echo settle.

  // The episode really contained all three ingredients: a rebalance window,
  // migrated keys landing as rebalance puts, and gets expiring in flight.
  ASSERT_TRUE(saw_window) << "no rebalance pass observed after the cache kill";
  EXPECT_GT(total_rebalance_puts_in(), puts_in_before);
  EXPECT_GT(total_expired(), expired_before);
  EXPECT_GT(expired_at_window_end, expired_at_window_start)
      << "no get expired while a rebalance pass was active";

  // The contract: neither the expired gets nor the migrated keys moved the miss
  // count — inside the window or across the whole episode.
  EXPECT_EQ(misses_at_window_end, misses_at_window_start)
      << "expired/migrated traffic during the rebalance window leaked into misses";
  EXPECT_EQ(total_misses(), misses_before)
      << "the kill + expiry episode changed the tier's miss count";

  // Every request under the unreachable deadline was shed, never served late.
  EXPECT_EQ(client->late_completions(), 0);
  EXPECT_EQ(client->completed() + client->timeouts() + client->send_failures(),
            client->sent());

  // And the tier still converged back to full replication behind it all.
  EXPECT_EQ(service.system()->cache_node_processes().size(), 3u);
  ExpectFullReplication(&service, 2);
}

TEST(CacheReplicationTest, FrontEndProfileCacheStaysWithinConfiguredBytes) {
  Logger::Get().set_min_level(LogLevel::kNone);
  TranSendOptions options = ReplicationOptions(2);
  options.sns.fe_profile_cache_bytes = 2048;  // Tiny: force eviction pressure.
  TranSendService service(options);
  service.Start();
  // Seed stored profiles: only found profiles populate the FE's read cache.
  for (int i = 0; i < 200; ++i) {
    UserProfile profile(StrFormat("user-%d", i));
    profile.Set("quality", "high");
    profile.Set("theme", StrFormat("theme-with-a-long-value-%d", i));
    service.system()->SeedProfile(profile);
  }
  PlaybackEngine* client = service.AddPlaybackEngine(0x44);
  service.sim()->RunFor(Seconds(5));

  Rng rng(0x44);
  ContentUniverse* universe = service.universe();
  int user = 0;
  client->StartConstantRate(20, [&rng, universe, &user] {
    TraceRecord record;
    record.user_id = StrFormat("user-%d", user++ % 200);  // Many distinct users.
    record.url = universe->UrlAt(rng.UniformInt(0, universe->url_count() - 1));
    return record;
  });
  service.sim()->RunFor(Seconds(40));
  client->StopLoad();
  service.sim()->RunFor(Seconds(10));

  FrontEndProcess* fe = service.system()->front_end(0);
  ASSERT_NE(fe, nullptr);
  const auto& cache = fe->profile_cache();
  EXPECT_LE(cache.used_bytes(), 2048);
  EXPECT_GT(cache.size(), 0u);
  EXPECT_GT(cache.evictions(), 0);  // 200 users cannot fit in 2 KB.
  // The gauge surfaces occupancy for the flight recorder.
  Gauge* gauge = service.system()->metrics()->GetGauge("fe.0.profile_cache_bytes");
  ASSERT_NE(gauge, nullptr);
  EXPECT_LE(gauge->value(), 2048.0);
}

}  // namespace
}  // namespace sns
