// System-level tests for the R-way replicated cache tier: replica fan-out on
// writes, failover reads down the chain, the background rebalancer restoring
// full replication after a cache-node kill, and the bounded FE profile cache.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "src/cluster/failure_injector.h"
#include "src/services/transend/transend.h"
#include "src/util/logging.h"
#include "src/util/strings.h"

namespace sns {
namespace {

TranSendOptions ReplicationOptions(int replication) {
  TranSendOptions options = DefaultTranSendOptions();
  options.universe.url_count = 40;
  options.sns.cache_replication = replication;
  options.topology.cache_nodes = 4;
  options.topology.worker_pool_nodes = 6;
  return options;
}

void DriveLoad(TranSendService* service, PlaybackEngine* client, double rate,
               SimDuration duration, uint64_t seed) {
  Rng rng(seed);
  ContentUniverse* universe = service->universe();
  client->StartConstantRate(rate, [&rng, universe] {
    TraceRecord record;
    record.user_id = "repl";
    record.url = universe->UrlAt(rng.UniformInt(0, universe->url_count() - 1));
    return record;
  });
  service->sim()->RunFor(duration);
  client->StopLoad();
  service->sim()->RunFor(Seconds(15));  // Drain in-flight requests and puts.
}

// Recomputes the canonical replica chains from the live cache membership and
// asserts the tier converged: consistent views, no orphans, and — since these
// runs never evict — a copy on every chain member.
void ExpectFullReplication(TranSendService* service, int replication) {
  std::vector<CacheNodeProcess*> caches = service->system()->cache_node_processes();
  ASSERT_FALSE(caches.empty());
  ConsistentHashRing canonical(service->system()->config().cache_ring_vnodes);
  std::set<std::pair<NodeId, Port>> live;
  for (CacheNodeProcess* cache : caches) {
    canonical.AddMember(CacheRingMemberId(cache->endpoint()));
    live.insert({cache->endpoint().node, cache->endpoint().port});
    EXPECT_EQ(cache->evictions(), 0);
    EXPECT_EQ(cache->rejected(), 0);
    EXPECT_FALSE(cache->rebalance_active());
    std::set<std::pair<NodeId, Port>> view;
    for (const Endpoint& ep : cache->ring_members()) {
      view.insert({ep.node, ep.port});
    }
  }
  for (CacheNodeProcess* cache : caches) {
    std::set<std::pair<NodeId, Port>> view;
    for (const Endpoint& ep : cache->ring_members()) {
      view.insert({ep.node, ep.port});
    }
    EXPECT_EQ(view, live) << "cache n" << cache->node() << " membership view stale";
  }
  size_t r = static_cast<size_t>(replication);
  int audited = 0;
  for (CacheNodeProcess* cache : caches) {
    int64_t self = CacheRingMemberId(cache->endpoint());
    for (const std::string& key : cache->CacheKeys()) {
      std::vector<int64_t> chain = canonical.LookupN(key, r);
      ASSERT_FALSE(chain.empty());
      EXPECT_NE(std::find(chain.begin(), chain.end(), self), chain.end())
          << "cache n" << cache->node() << " holds orphan key " << key;
      for (int64_t member : chain) {
        Endpoint ep = CacheRingMemberEndpoint(member);
        for (CacheNodeProcess* peer : caches) {
          if (peer->endpoint() == ep) {
            EXPECT_TRUE(peer->HasKey(key))
                << "key " << key << " missing from chain member n" << peer->node();
          }
        }
      }
      ++audited;
    }
  }
  EXPECT_GT(audited, 0);
}

TEST(CacheReplicationTest, WritesFanOutToEveryChainMember) {
  Logger::Get().set_min_level(LogLevel::kNone);
  TranSendService service(ReplicationOptions(2));
  service.Start();
  PlaybackEngine* client = service.AddPlaybackEngine(0x11);
  service.sim()->RunFor(Seconds(5));
  DriveLoad(&service, client, 15, Seconds(30), 0x11);

  FrontEndProcess* fe = service.system()->front_end(0);
  ASSERT_NE(fe, nullptr);
  EXPECT_GT(fe->cache_replica_puts(), 0);
  ExpectFullReplication(&service, 2);
}

TEST(CacheReplicationTest, SingleCopyModeStoresExactlyOneReplica) {
  Logger::Get().set_min_level(LogLevel::kNone);
  TranSendService service(ReplicationOptions(1));
  service.Start();
  PlaybackEngine* client = service.AddPlaybackEngine(0x22);
  service.sim()->RunFor(Seconds(5));
  DriveLoad(&service, client, 15, Seconds(30), 0x22);

  FrontEndProcess* fe = service.system()->front_end(0);
  ASSERT_NE(fe, nullptr);
  EXPECT_EQ(fe->cache_replica_puts(), 0);
  // R=1 chains are a single member: every key lives on exactly one node.
  std::vector<CacheNodeProcess*> caches = service.system()->cache_node_processes();
  std::set<std::string> seen;
  int total = 0;
  for (CacheNodeProcess* cache : caches) {
    for (const std::string& key : cache->CacheKeys()) {
      EXPECT_TRUE(seen.insert(key).second) << "key " << key << " on two nodes";
      ++total;
    }
  }
  EXPECT_GT(total, 0);
  ExpectFullReplication(&service, 1);
}

TEST(CacheReplicationTest, NodeKillRebalancesSurvivorsBackToFullReplication) {
  Logger::Get().set_min_level(LogLevel::kNone);
  TranSendService service(ReplicationOptions(2));
  service.Start();
  PlaybackEngine* client = service.AddPlaybackEngine(0x33);
  service.sim()->RunFor(Seconds(5));

  Rng rng(0x33);
  ContentUniverse* universe = service.universe();
  client->StartConstantRate(15, [&rng, universe] {
    TraceRecord record;
    record.user_id = "repl";
    record.url = universe->UrlAt(rng.UniformInt(0, universe->url_count() - 1));
    return record;
  });
  service.sim()->RunFor(Seconds(30));

  // Kill one cache node under load. With R=2 every entry survives on the other
  // chain member; the survivors' rebalancers re-replicate the lost arcs.
  std::vector<CacheNodeProcess*> before = service.system()->cache_node_processes();
  ASSERT_EQ(before.size(), 4u);
  FailureInjector injector(service.system()->cluster(), service.system()->san());
  injector.CrashProcessAt(service.sim()->now() + Seconds(1), before[1]->pid());
  service.sim()->RunFor(Seconds(40));
  client->StopLoad();
  service.sim()->RunFor(Seconds(20));  // Drain + let rebalance/echo settle.

  EXPECT_EQ(service.system()->cache_node_processes().size(), 3u);
  int64_t pushed = 0;
  for (CacheNodeProcess* cache : service.system()->cache_node_processes()) {
    pushed += cache->rebalance_keys_pushed();
  }
  EXPECT_GT(pushed, 0);
  ExpectFullReplication(&service, 2);

  // Availability held: nearly every request answered despite the kill.
  double answered = static_cast<double>(client->completed()) /
                    static_cast<double>(client->completed() + client->timeouts());
  EXPECT_GT(answered, 0.95);
  EXPECT_EQ(client->errors(), 0);
}

TEST(CacheReplicationTest, FrontEndProfileCacheStaysWithinConfiguredBytes) {
  Logger::Get().set_min_level(LogLevel::kNone);
  TranSendOptions options = ReplicationOptions(2);
  options.sns.fe_profile_cache_bytes = 2048;  // Tiny: force eviction pressure.
  TranSendService service(options);
  service.Start();
  // Seed stored profiles: only found profiles populate the FE's read cache.
  for (int i = 0; i < 200; ++i) {
    UserProfile profile(StrFormat("user-%d", i));
    profile.Set("quality", "high");
    profile.Set("theme", StrFormat("theme-with-a-long-value-%d", i));
    service.system()->SeedProfile(profile);
  }
  PlaybackEngine* client = service.AddPlaybackEngine(0x44);
  service.sim()->RunFor(Seconds(5));

  Rng rng(0x44);
  ContentUniverse* universe = service.universe();
  int user = 0;
  client->StartConstantRate(20, [&rng, universe, &user] {
    TraceRecord record;
    record.user_id = StrFormat("user-%d", user++ % 200);  // Many distinct users.
    record.url = universe->UrlAt(rng.UniformInt(0, universe->url_count() - 1));
    return record;
  });
  service.sim()->RunFor(Seconds(40));
  client->StopLoad();
  service.sim()->RunFor(Seconds(10));

  FrontEndProcess* fe = service.system()->front_end(0);
  ASSERT_NE(fe, nullptr);
  const auto& cache = fe->profile_cache();
  EXPECT_LE(cache.used_bytes(), 2048);
  EXPECT_GT(cache.size(), 0u);
  EXPECT_GT(cache.evictions(), 0);  // 200 users cannot fit in 2 KB.
  // The gauge surfaces occupancy for the flight recorder.
  Gauge* gauge = service.system()->metrics()->GetGauge("fe.0.profile_cache_bytes");
  ASSERT_NE(gauge, nullptr);
  EXPECT_LE(gauge->value(), 2048.0);
}

}  // namespace
}  // namespace sns
