// Tests for the cluster substrate: process lifecycle, CPU scheduling, node
// failures, and failure injection.

#include <gtest/gtest.h>

#include "src/cluster/cluster.h"
#include "src/cluster/failure_injector.h"
#include "src/net/san.h"
#include "src/sim/simulator.h"

namespace sns {
namespace {

struct EchoPayload : Payload {
  int value = 0;
};

// A process that records lifecycle events and echoes messages back.
class TestProcess : public Process {
 public:
  explicit TestProcess(std::vector<std::string>* log) : Process("test"), log_(log) {}

  void OnStart() override { log_->push_back("start"); }
  void OnStop() override { log_->push_back("stop"); }
  void OnMessage(const Message& msg) override {
    log_->push_back("msg:" +
                    std::to_string(static_cast<const EchoPayload&>(*msg.payload).value));
  }

  using Process::After;
  using Process::RunOnCpu;
  using Process::Send;

 private:
  std::vector<std::string>* log_;
};

class ClusterTest : public ::testing::Test {
 protected:
  ClusterTest() : san_(&sim_, SanConfig{}), cluster_(&sim_, &san_) {}

  Simulator sim_;
  San san_;
  Cluster cluster_;
};

TEST_F(ClusterTest, SpawnAssignsIdentityAndStarts) {
  NodeId node = cluster_.AddNode();
  std::vector<std::string> log;
  ProcessId pid = cluster_.Spawn(node, std::make_unique<TestProcess>(&log));
  ASSERT_NE(pid, kInvalidProcess);
  Process* p = cluster_.Find(pid);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->node(), node);
  EXPECT_TRUE(p->endpoint().valid());
  EXPECT_TRUE(p->running());
  EXPECT_EQ(log, (std::vector<std::string>{"start"}));
  EXPECT_EQ(cluster_.ProcessCountOnNode(node), 1);
}

TEST_F(ClusterTest, SpawnOnDownNodeFails) {
  NodeId node = cluster_.AddNode();
  cluster_.CrashNode(node);
  std::vector<std::string> log;
  EXPECT_EQ(cluster_.Spawn(node, std::make_unique<TestProcess>(&log)), kInvalidProcess);
}

TEST_F(ClusterTest, MessagesAreDeliveredToProcess) {
  NodeId a = cluster_.AddNode();
  NodeId b = cluster_.AddNode();
  std::vector<std::string> log_a;
  std::vector<std::string> log_b;
  ProcessId pid_a = cluster_.Spawn(a, std::make_unique<TestProcess>(&log_a));
  ProcessId pid_b = cluster_.Spawn(b, std::make_unique<TestProcess>(&log_b));

  auto* sender = static_cast<TestProcess*>(cluster_.Find(pid_a));
  Message msg;
  msg.dst = cluster_.Find(pid_b)->endpoint();
  msg.type = 1;
  msg.size_bytes = 64;
  auto payload = std::make_shared<EchoPayload>();
  payload->value = 5;
  msg.payload = payload;
  sender->Send(std::move(msg));
  sim_.Run();
  EXPECT_EQ(log_b, (std::vector<std::string>{"start", "msg:5"}));
}

TEST_F(ClusterTest, StopInvokesOnStopButCrashDoesNot) {
  NodeId node = cluster_.AddNode();
  std::vector<std::string> log1;
  std::vector<std::string> log2;
  ProcessId p1 = cluster_.Spawn(node, std::make_unique<TestProcess>(&log1));
  ProcessId p2 = cluster_.Spawn(node, std::make_unique<TestProcess>(&log2));
  cluster_.Stop(p1);
  cluster_.Crash(p2);
  EXPECT_EQ(log1, (std::vector<std::string>{"start", "stop"}));
  EXPECT_EQ(log2, (std::vector<std::string>{"start"}));  // No "stop" on crash.
  EXPECT_EQ(cluster_.Find(p1), nullptr);
  EXPECT_EQ(cluster_.Find(p2), nullptr);
  EXPECT_EQ(cluster_.total_crashes(), 1);
}

TEST_F(ClusterTest, TimersDieWithProcess) {
  NodeId node = cluster_.AddNode();
  std::vector<std::string> log;
  ProcessId pid = cluster_.Spawn(node, std::make_unique<TestProcess>(&log));
  auto* p = static_cast<TestProcess*>(cluster_.Find(pid));
  bool fired = false;
  p->After(Seconds(1), [&fired] { fired = true; });
  cluster_.Crash(pid);
  sim_.RunFor(Seconds(5));
  EXPECT_FALSE(fired);
}

TEST_F(ClusterTest, CpuCompletionsDieWithProcess) {
  NodeId node = cluster_.AddNode();
  std::vector<std::string> log;
  ProcessId pid = cluster_.Spawn(node, std::make_unique<TestProcess>(&log));
  auto* p = static_cast<TestProcess*>(cluster_.Find(pid));
  bool fired = false;
  p->RunOnCpu(Seconds(1), [&fired] { fired = true; });
  cluster_.Crash(pid);
  sim_.RunFor(Seconds(5));
  EXPECT_FALSE(fired);
}

TEST_F(ClusterTest, CpuIsFifoPerNode) {
  NodeId node = cluster_.AddNode();
  SimTime first = 0;
  SimTime second = 0;
  cluster_.RunOnCpu(node, kInvalidProcess, Seconds(1), [&] { first = sim_.now(); });
  cluster_.RunOnCpu(node, kInvalidProcess, Seconds(1), [&] { second = sim_.now(); });
  sim_.Run();
  EXPECT_EQ(first, Seconds(1));
  EXPECT_EQ(second, Seconds(2));  // Serialized on one CPU.
  EXPECT_NEAR(cluster_.CpuUtilization(node), 1.0, 1e-9);
}

TEST_F(ClusterTest, MultiCpuNodesRunInParallel) {
  NodeConfig config;
  config.cpus = 2;
  NodeId node = cluster_.AddNode(config);
  SimTime first = 0;
  SimTime second = 0;
  cluster_.RunOnCpu(node, kInvalidProcess, Seconds(1), [&] { first = sim_.now(); });
  cluster_.RunOnCpu(node, kInvalidProcess, Seconds(1), [&] { second = sim_.now(); });
  sim_.Run();
  EXPECT_EQ(first, Seconds(1));
  EXPECT_EQ(second, Seconds(1));  // Both CPUs busy concurrently.
}

TEST_F(ClusterTest, CpuSpeedScalesWork) {
  NodeConfig slow;
  slow.speed = 0.5;
  NodeId node = cluster_.AddNode(slow);
  SimTime done = 0;
  cluster_.RunOnCpu(node, kInvalidProcess, Seconds(1), [&] { done = sim_.now(); });
  sim_.Run();
  EXPECT_EQ(done, Seconds(2));
}

TEST_F(ClusterTest, CpuBacklogReflectsQueuedWork) {
  NodeId node = cluster_.AddNode();
  cluster_.RunOnCpu(node, kInvalidProcess, Seconds(3), [] {});
  EXPECT_NEAR(cluster_.CpuBacklogSeconds(node), 3.0, 1e-9);
}

TEST_F(ClusterTest, NodeCrashKillsProcessesAndRestartComesBackEmpty) {
  NodeId node = cluster_.AddNode();
  std::vector<std::string> log;
  ProcessId pid = cluster_.Spawn(node, std::make_unique<TestProcess>(&log));
  cluster_.CrashNode(node);
  EXPECT_FALSE(cluster_.NodeUp(node));
  EXPECT_EQ(cluster_.Find(pid), nullptr);
  EXPECT_EQ(log, (std::vector<std::string>{"start"}));  // Crashed, not stopped.

  cluster_.RestartNode(node);
  EXPECT_TRUE(cluster_.NodeUp(node));
  EXPECT_EQ(cluster_.ProcessCountOnNode(node), 0);
  // Fresh spawns work again.
  EXPECT_NE(cluster_.Spawn(node, std::make_unique<TestProcess>(&log)), kInvalidProcess);
}

TEST_F(ClusterTest, UpNodesFiltersOverflowAndDown) {
  NodeId a = cluster_.AddNode();
  NodeConfig overflow;
  overflow.overflow_pool = true;
  NodeId b = cluster_.AddNode(overflow);
  NodeId c = cluster_.AddNode();
  cluster_.CrashNode(c);
  auto dedicated = cluster_.UpNodes(/*include_overflow=*/false);
  EXPECT_EQ(dedicated, (std::vector<NodeId>{a}));
  auto all = cluster_.UpNodes(/*include_overflow=*/true);
  EXPECT_EQ(all, (std::vector<NodeId>{a, b}));
  EXPECT_TRUE(cluster_.IsOverflowNode(b));
  EXPECT_FALSE(cluster_.IsOverflowNode(a));
}

TEST_F(ClusterTest, FindByEndpoint) {
  NodeId node = cluster_.AddNode();
  std::vector<std::string> log;
  ProcessId pid = cluster_.Spawn(node, std::make_unique<TestProcess>(&log));
  Process* p = cluster_.Find(pid);
  EXPECT_EQ(cluster_.FindByEndpoint(p->endpoint()), p);
  EXPECT_EQ(cluster_.FindByEndpoint(Endpoint{99, 99}), nullptr);
}

TEST_F(ClusterTest, FailureInjectorScriptedCrashes) {
  NodeId node = cluster_.AddNode();
  std::vector<std::string> log;
  ProcessId pid = cluster_.Spawn(node, std::make_unique<TestProcess>(&log));
  FailureInjector injector(&cluster_, &san_);
  injector.CrashProcessAt(Seconds(5), pid);
  sim_.RunFor(Seconds(4));
  EXPECT_NE(cluster_.Find(pid), nullptr);
  sim_.RunFor(Seconds(2));
  EXPECT_EQ(cluster_.Find(pid), nullptr);
  EXPECT_EQ(injector.injected_count(), 1);
}

TEST_F(ClusterTest, FailureInjectorPartitionAndHeal) {
  cluster_.AddNode();
  cluster_.AddNode();
  FailureInjector injector(&cluster_, &san_);
  injector.PartitionAt(Seconds(1), {1}, Seconds(3));
  sim_.RunFor(Seconds(2));
  EXPECT_FALSE(san_.Reachable(0, 1));
  sim_.RunFor(Seconds(2));
  EXPECT_TRUE(san_.Reachable(0, 1));
}

TEST_F(ClusterTest, RandomCrashesRespectDeadline) {
  NodeId node = cluster_.AddNode();
  std::vector<std::string> log;
  // Spawn a fleet of victims.
  std::vector<ProcessId> pids;
  for (int i = 0; i < 20; ++i) {
    pids.push_back(cluster_.Spawn(node, std::make_unique<TestProcess>(&log)));
  }
  FailureInjector injector(&cluster_, &san_);
  Rng rng(99);
  size_t next = 0;
  injector.RandomProcessCrashes(&rng, Seconds(1), Seconds(10), [&]() -> ProcessId {
    return next < pids.size() ? pids[next++] : kInvalidProcess;
  });
  sim_.RunUntil(Seconds(60));
  EXPECT_GT(injector.injected_count(), 2);
  // No crashes scheduled past the deadline: count is frozen afterward.
  int64_t count = injector.injected_count();
  sim_.RunFor(Seconds(60));
  EXPECT_EQ(injector.injected_count(), count);
}

}  // namespace
}  // namespace sns
