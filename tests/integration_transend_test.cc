// End-to-end integration tests of the TranSend service on the simulated cluster:
// request flow, caching, demand spawning, fault masking, and BASE fallbacks.

#include <gtest/gtest.h>

#include "src/services/transend/transend.h"
#include "src/sns/worker_process.h"
#include "src/util/logging.h"

namespace sns {
namespace {

TranSendOptions SmallOptions() {
  TranSendOptions options = DefaultTranSendOptions();
  options.topology.worker_pool_nodes = 6;
  options.topology.cache_nodes = 2;
  options.universe.url_count = 200;
  return options;
}

TEST(TranSendIntegration, ServesASingleRequestEndToEnd) {
  TranSendService service(SmallOptions());
  service.Start();
  PlaybackEngine* client = service.AddPlaybackEngine();
  ASSERT_NE(client, nullptr);

  // Let beacons flow and the system settle.
  service.sim()->RunFor(Seconds(3));

  TraceRecord record;
  record.user_id = "user1";
  record.url = service.universe()->UrlAt(0);
  client->SendRequest(record);
  service.sim()->RunFor(Seconds(140));  // Worst-case origin fetch is 100 s.

  EXPECT_EQ(client->sent(), 1);
  EXPECT_EQ(client->completed(), 1);
  EXPECT_EQ(client->errors(), 0);
  EXPECT_GT(client->bytes_received(), 0);
}

TEST(TranSendIntegration, SpawnsWorkerOnDemandAndDistills) {
  TranSendOptions options = SmallOptions();
  TranSendService service(options);
  service.Start();
  PlaybackEngine* client = service.AddPlaybackEngine();
  service.sim()->RunFor(Seconds(3));

  // No workers run until load arrives (§4.6: "On-demand spawning of the first
  // distiller was observed as soon as load was offered").
  EXPECT_TRUE(service.system()->live_workers().empty());

  // Find a JPEG URL comfortably above the 1 KB threshold.
  std::string url;
  for (int64_t i = 0; i < service.universe()->url_count(); ++i) {
    std::string candidate = service.universe()->UrlAt(i);
    if (service.universe()->MimeOf(candidate) == MimeType::kJpeg &&
        service.universe()->ModeledSize(candidate) > 4096) {
      url = candidate;
      break;
    }
  }
  ASSERT_FALSE(url.empty());

  TraceRecord record;
  record.user_id = "user2";
  record.url = url;
  client->SendRequest(record);
  service.sim()->RunFor(Seconds(140));

  ASSERT_EQ(client->completed(), 1);
  EXPECT_FALSE(service.system()->live_workers(kJpegDistillerType).empty());
  auto sources = client->responses_by_source();
  EXPECT_EQ(sources["distilled"], 1) << "response should be the distilled variant";
  // Distillation shrinks the content substantially.
  EXPECT_LT(client->bytes_received(), service.universe()->ModeledSize(url));
}

TEST(TranSendIntegration, SecondRequestHitsDistilledCache) {
  TranSendService service(SmallOptions());
  service.Start();
  PlaybackEngine* client = service.AddPlaybackEngine();
  service.sim()->RunFor(Seconds(3));

  std::string url;
  for (int64_t i = 0; i < service.universe()->url_count(); ++i) {
    std::string candidate = service.universe()->UrlAt(i);
    if (service.universe()->MimeOf(candidate) == MimeType::kGif &&
        service.universe()->ModeledSize(candidate) > 4096) {
      url = candidate;
      break;
    }
  }
  ASSERT_FALSE(url.empty());

  TraceRecord record;
  record.user_id = "user3";
  record.url = url;
  client->SendRequest(record);
  service.sim()->RunFor(Seconds(140));
  ASSERT_EQ(client->completed(), 1);

  client->SendRequest(record);
  service.sim()->RunFor(Seconds(10));
  ASSERT_EQ(client->completed(), 2);
  // The repeat is served from the virtual cache, quickly.
  EXPECT_LT(client->latency_stats().min(), 0.5);
}

TEST(TranSendIntegration, MasksWorkerCrashWithRetry) {
  TranSendService service(SmallOptions());
  service.Start();
  PlaybackEngine* client = service.AddPlaybackEngine();
  service.sim()->RunFor(Seconds(3));

  std::string url;
  for (int64_t i = 0; i < service.universe()->url_count(); ++i) {
    std::string candidate = service.universe()->UrlAt(i);
    if (service.universe()->MimeOf(candidate) == MimeType::kJpeg &&
        service.universe()->ModeledSize(candidate) > 4096) {
      url = candidate;
      break;
    }
  }
  ASSERT_FALSE(url.empty());

  // Warm up: spawn the distiller.
  TraceRecord record;
  record.user_id = "user4";
  record.url = url;
  client->SendRequest(record);
  service.sim()->RunFor(Seconds(140));
  ASSERT_EQ(client->completed(), 1);

  // Kill the distiller; the next request must still complete (retry path spawns a
  // replacement or serves the approximate answer).
  auto workers = service.system()->live_workers(kJpegDistillerType);
  ASSERT_FALSE(workers.empty());
  service.system()->cluster()->Crash(workers[0]->pid());

  TraceRecord record2 = record;
  record2.url = url + "?v=2";  // Different URL: same distiller class, fresh cache key.
  client->SendRequest(record2);
  service.sim()->RunFor(Seconds(140));
  EXPECT_EQ(client->completed(), 2);
  EXPECT_EQ(client->timeouts(), 0);
}

TEST(TranSendIntegration, PoisonInputCrashesWorkerButServiceSurvives) {
  TranSendService service(SmallOptions());
  service.Start();
  PlaybackEngine* client = service.AddPlaybackEngine();
  service.sim()->RunFor(Seconds(3));

  std::string url;
  for (int64_t i = 0; i < service.universe()->url_count(); ++i) {
    std::string candidate = service.universe()->UrlAt(i);
    if (service.universe()->MimeOf(candidate) == MimeType::kJpeg &&
        service.universe()->ModeledSize(candidate) > 4096) {
      url = candidate;
      break;
    }
  }
  ASSERT_FALSE(url.empty());

  TraceRecord record;
  record.user_id = "user5";
  record.url = url;
  client->SendRequest(record, {{"__poison", "1"}});
  service.sim()->RunFor(Seconds(200));

  // The pathological input crashed distillers, but the user still got an answer —
  // in the worst case the original content (approximate answer).
  EXPECT_EQ(client->completed(), 1);
  EXPECT_GE(service.system()->cluster()->total_crashes(), 1);
}

TEST(TranSendIntegration, ManagerCrashIsMaskedAndRestartedByFrontEnd) {
  TranSendService service(SmallOptions());
  service.Start();
  PlaybackEngine* client = service.AddPlaybackEngine();
  service.sim()->RunFor(Seconds(3));

  ProcessId old_manager = service.system()->manager_pid();
  service.system()->cluster()->Crash(old_manager);

  // The front end's watchdog should notice beacon silence and restart the manager.
  service.sim()->RunFor(Seconds(15));
  ASSERT_NE(service.system()->manager(), nullptr);
  EXPECT_NE(service.system()->manager_pid(), old_manager);

  // And the system still serves requests afterwards.
  TraceRecord record;
  record.user_id = "user6";
  record.url = service.universe()->UrlAt(1);
  client->SendRequest(record);
  service.sim()->RunFor(Seconds(140));
  EXPECT_EQ(client->completed(), 1);
}

TEST(TranSendIntegration, FrontEndCrashIsRestartedByManager) {
  TranSendService service(SmallOptions());
  service.Start();
  service.sim()->RunFor(Seconds(3));

  FrontEndProcess* fe = service.system()->front_end(0);
  ASSERT_NE(fe, nullptr);
  ProcessId old_pid = fe->pid();
  service.system()->cluster()->Crash(old_pid);

  // Manager's FE lease (front_end_ttl) expires and it relaunches the FE.
  service.sim()->RunFor(Seconds(12));
  FrontEndProcess* restarted = service.system()->front_end(0);
  ASSERT_NE(restarted, nullptr);
  EXPECT_NE(restarted->pid(), old_pid);
}

}  // namespace
}  // namespace sns
