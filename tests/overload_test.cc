// Overload-control tests: per-request deadlines (accept queue, mid-pipeline, worker
// queue, cache ops), backoff retries that avoid the timed-out worker, and the
// load-accounting fixes (cache puts counted, gauges fresh at op time).

#include <gtest/gtest.h>

#include "src/cluster/cluster.h"
#include "src/net/san.h"
#include "src/services/transend/transend.h"
#include "src/sim/simulator.h"
#include "src/sns/cache_node.h"
#include "src/sns/worker_process.h"
#include "src/util/logging.h"
#include "src/util/strings.h"

namespace sns {
namespace {

TranSendOptions TinyOptions() {
  TranSendOptions options = DefaultTranSendOptions();
  options.topology.worker_pool_nodes = 4;
  options.topology.cache_nodes = 2;
  options.universe.url_count = 100;
  return options;
}

std::string BigJpegUrl(TranSendService* service) {
  for (int64_t i = 0; i < service->universe()->url_count(); ++i) {
    std::string url = service->universe()->UrlAt(i);
    if (service->universe()->MimeOf(url) == MimeType::kJpeg &&
        service->universe()->ModeledSize(url) > 8192) {
      return url;
    }
  }
  return "";
}

// ---------- deadlines on the request path ----------------------------------------------

TEST(DeadlineTest, ExpiresInAcceptQueueAndGaugesStayFresh) {
  Logger::Get().set_min_level(LogLevel::kNone);
  TranSendOptions options = TinyOptions();
  options.sns.fe_thread_pool_size = 1;  // One slow request blocks the pool.
  // No worker nodes: the blocker's distill attempt sits in the spawn-wait loop
  // (20 x 300 ms) before its approximate-answer fallback, deterministically
  // holding the single thread for ~6 s.
  options.topology.worker_pool_nodes = 0;
  TranSendService service(options);
  service.Start();
  PlaybackEngine* blocker = service.AddPlaybackEngine(0x1111);
  PlaybackConfig deadline_config;
  deadline_config.seed = 0x2222;
  deadline_config.request_deadline = Seconds(2);
  PlaybackEngine* client = service.AddPlaybackEngine(deadline_config);
  service.sim()->RunFor(Seconds(2));

  std::string url = BigJpegUrl(&service);
  ASSERT_FALSE(url.empty());
  TraceRecord record;
  record.user_id = "blocker";
  record.url = url;
  blocker->SendRequest(record);
  // Let the blocker occupy the single thread (cold path: fetch + spawn, tens of
  // seconds), then queue a deadline-bearing request behind it.
  service.sim()->RunFor(Milliseconds(500));
  TraceRecord record2;
  record2.user_id = "impatient";
  record2.url = url;
  client->SendRequest(record2);

  FrontEndProcess* fe = service.system()->front_end(0);
  ASSERT_NE(fe, nullptr);
  // The queued gauge reflects the enqueue immediately, not at the next report.
  service.sim()->RunFor(Milliseconds(300));
  EXPECT_EQ(fe->queued_requests(), 1);
  std::string prefix = StrFormat("fe.%d.", 0);
  EXPECT_EQ(service.system()->cluster()->metrics()->GetGauge(prefix + "queued_requests")->value(),
            1.0);

  // At the deadline the sweep evicts the entry and answers the client.
  service.sim()->RunFor(Seconds(4));
  EXPECT_EQ(client->completed(), 1);
  EXPECT_EQ(client->errors(), 1);
  EXPECT_EQ(client->late_completions(), 0);
  EXPECT_EQ(fe->queued_requests(), 0);
  EXPECT_GE(fe->deadline_expired(), 1);
  EXPECT_EQ(service.system()->cluster()->metrics()->GetGauge(prefix + "queued_requests")->value(),
            0.0);
}

TEST(DeadlineTest, ExpiresMidPipelineWithoutLateCompletion) {
  Logger::Get().set_min_level(LogLevel::kNone);
  TranSendService service(TinyOptions());
  service.Start();
  PlaybackConfig config;
  config.seed = 0x3333;
  config.request_deadline = Milliseconds(800);
  PlaybackEngine* client = service.AddPlaybackEngine(config);
  service.sim()->RunFor(Seconds(2));

  // Cold path (origin fetch + worker spawn) cannot finish in 800 ms: the budget
  // caps every stage timeout, so the request dies at its deadline instead of
  // completing uselessly late.
  std::string url = BigJpegUrl(&service);
  ASSERT_FALSE(url.empty());
  TraceRecord record;
  record.user_id = "deadline";
  record.url = url;
  client->SendRequest(record);
  service.sim()->RunFor(Seconds(20));

  FrontEndProcess* fe = service.system()->front_end(0);
  ASSERT_NE(fe, nullptr);
  EXPECT_EQ(client->completed(), 1);
  EXPECT_EQ(client->errors(), 1);
  EXPECT_EQ(client->late_completions(), 0);
  EXPECT_GE(fe->deadline_expired(), 1);
}

// ---------- retry discipline -----------------------------------------------------------

TEST(RetryBackoffTest, RetriesBackOffAndSpreadAcrossWorkers) {
  Logger::Get().set_min_level(LogLevel::kNone);
  TranSendOptions options = TinyOptions();
  // Task timeout shorter than any distillation: every attempt times out, so the
  // request exercises the full retry chain and falls back to the original bytes.
  options.sns.task_timeout = Milliseconds(1);
  options.sns.task_retries = 2;
  options.sns.task_retry_backoff_base = Milliseconds(10);
  TranSendService service(options);
  service.Start();
  service.system()->StartWorker(kJpegDistillerType);
  service.system()->StartWorker(kJpegDistillerType);
  PlaybackEngine* client = service.AddPlaybackEngine(0x4444);
  service.sim()->RunFor(Seconds(3));  // Both workers registered and in beacons.
  auto workers = service.system()->live_workers(kJpegDistillerType);
  ASSERT_EQ(workers.size(), 2u);

  std::string url = BigJpegUrl(&service);
  ASSERT_FALSE(url.empty());
  TraceRecord record;
  record.user_id = "retry";
  record.url = url;
  client->SendRequest(record);
  service.sim()->RunFor(Seconds(30));

  FrontEndProcess* fe = service.system()->front_end(0);
  ASSERT_NE(fe, nullptr);
  // Two timed-out attempts were retried after a backoff delay.
  EXPECT_EQ(fe->retries_backoff(), 2);
  // Exclusion: the retry after a timeout must go to the OTHER worker, so both
  // received (and eventually completed) at least one delivered task.
  EXPECT_GE(workers[0]->completed_tasks(), 1);
  EXPECT_GE(workers[1]->completed_tasks(), 1);
  // BASE fallback: the client still got an answer — the undistilled original.
  ASSERT_EQ(client->completed(), 1);
  EXPECT_EQ(client->errors(), 0);
  auto sources = client->responses_by_source();
  EXPECT_EQ(sources["approximate"], 1);
}

// ---------- worker-side deadline shedding ----------------------------------------------

class SlowEchoWorker : public TaccWorker {
 public:
  explicit SlowEchoWorker(SimDuration cost = Seconds(5)) : cost_(cost) {}
  std::string type() const override { return "slow-echo"; }
  TaccResult Process(const TaccRequest& request) override {
    return TaccResult::Ok(request.inputs.empty() ? nullptr : request.input());
  }
  SimDuration EstimateCost(const TaccRequest&) const override { return cost_; }

 private:
  SimDuration cost_;
};

// Records task responses addressed to it.
class ResponseSink : public Process {
 public:
  ResponseSink() : Process("sink") {}
  void OnMessage(const Message& msg) override {
    if (msg.type == kMsgTaskResponse) {
      const auto& reply = static_cast<const TaskResponsePayload&>(*msg.payload);
      responses_.emplace_back(reply.task_id, reply.status);
    } else if (msg.type == kMsgCacheReply) {
      ++cache_replies_;
    }
  }
  using Process::Send;
  const std::vector<std::pair<uint64_t, Status>>& responses() const { return responses_; }
  int cache_replies() const { return cache_replies_; }

 private:
  std::vector<std::pair<uint64_t, Status>> responses_;
  int cache_replies_ = 0;
};

struct RawHarness {
  RawHarness() : san(&sim, SanConfig{}), cluster(&sim, &san) {}
  Simulator sim;
  San san;
  Cluster cluster;
};

void SendTask(ResponseSink* sink, const Endpoint& worker, uint64_t task_id,
              SimTime deadline) {
  auto payload = std::make_shared<TaskRequestPayload>();
  payload->task_id = task_id;
  payload->url = "http://example.com/x.jpg";
  payload->reply_to = sink->endpoint();
  payload->deadline = deadline;
  Message msg;
  msg.dst = worker;
  msg.type = kMsgTaskRequest;
  msg.transport = Transport::kReliable;
  msg.size_bytes = 256;
  msg.payload = payload;
  sink->Send(std::move(msg));
}

TEST(WorkerDeadlineTest, ShedsExpiredTasksAtEnqueueAndDequeueAndRefusesInfeasible) {
  RawHarness h;
  // One single-CPU node shared by a contending worker and the worker under test:
  // the contender's 12 s CPU slice delays the test worker's service far beyond its
  // own queued-cost estimate, which is how an admitted task can still expire in
  // the queue (the dequeue-shed backstop).
  NodeId node = h.cluster.AddNode();
  auto contender_owner = std::make_unique<WorkerProcess>(
      SnsConfig{}, std::make_unique<SlowEchoWorker>(Seconds(12)));
  WorkerProcess* contender = contender_owner.get();
  ASSERT_NE(h.cluster.Spawn(node, std::move(contender_owner)), kInvalidProcess);
  auto worker_owner =
      std::make_unique<WorkerProcess>(SnsConfig{}, std::make_unique<SlowEchoWorker>());
  WorkerProcess* worker = worker_owner.get();
  ASSERT_NE(h.cluster.Spawn(node, std::move(worker_owner)), kInvalidProcess);
  auto sink_owner = std::make_unique<ResponseSink>();
  ResponseSink* sink = sink_owner.get();
  ASSERT_NE(h.cluster.Spawn(h.cluster.AddNode(), std::move(sink_owner)), kInvalidProcess);
  h.sim.RunFor(Seconds(1));

  // Task 10: pins the node's only CPU via the contender until t ~ 13 s.
  SendTask(sink, contender->endpoint(), 10, kTimeNever);
  h.sim.RunFor(Milliseconds(100));
  // Task 1: no deadline; "in service" at the worker but its 5 s CPU slice queues
  // behind the contender's, so it actually finishes at t ~ 18 s.
  SendTask(sink, worker->endpoint(), 1, kTimeNever);
  h.sim.RunFor(Milliseconds(100));
  // Task 2: feasible by the queued-cost estimate (~11.25 s needed vs a 12.2 s
  // deadline), so admission accepts it — but CPU contention pushes its dequeue to
  // t ~ 18 s, past its deadline, so the worker sheds it when the CPU frees up.
  SendTask(sink, worker->endpoint(), 2, h.sim.now() + Seconds(11));
  h.sim.RunFor(Milliseconds(100));
  // Task 3: already expired on arrival; shed before even queueing.
  SendTask(sink, worker->endpoint(), 3, h.sim.now() - Seconds(1));
  h.sim.RunFor(Milliseconds(100));
  // Task 4: not yet expired, but the queued backlog cannot possibly meet its 3 s
  // deadline — admission refuses it up front with ResourceExhausted so the front
  // end can fall back to an approximate answer while there is still time.
  SendTask(sink, worker->endpoint(), 4, h.sim.now() + Seconds(3));
  h.sim.RunFor(Seconds(30));

  ASSERT_EQ(sink->responses().size(), 5u);
  EXPECT_EQ(worker->expired_tasks(), 2);   // Task 3 at enqueue, task 2 at dequeue.
  EXPECT_EQ(worker->rejected_tasks(), 1);  // Task 4 refused by admission.
  EXPECT_EQ(worker->completed_tasks(), 1);
  EXPECT_EQ(contender->completed_tasks(), 1);
  for (const auto& [task_id, status] : sink->responses()) {
    if (task_id == 1 || task_id == 10) {
      EXPECT_TRUE(status.ok()) << "task " << task_id;
    } else if (task_id == 4) {
      EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
    } else {
      EXPECT_EQ(status.code(), StatusCode::kTimeout) << "task " << task_id;
    }
  }
}

// ---------- cache-node accounting ------------------------------------------------------

TEST(CacheAccountingTest, PutsCountAsOutstandingAndGaugesRefreshAtOpTime) {
  RawHarness h;
  NodeId node = h.cluster.AddNode();
  auto cache_owner = std::make_unique<CacheNodeProcess>(SnsConfig{}, CacheNodeConfig{});
  CacheNodeProcess* cache = cache_owner.get();
  ASSERT_NE(h.cluster.Spawn(node, std::move(cache_owner)), kInvalidProcess);
  auto sink_owner = std::make_unique<ResponseSink>();
  ResponseSink* sink = sink_owner.get();
  ASSERT_NE(h.cluster.Spawn(h.cluster.AddNode(), std::move(sink_owner)), kInvalidProcess);

  auto put = std::make_shared<CachePutPayload>();
  put->key = "k1";
  put->content = Content::Make("k1", MimeType::kJpeg, std::vector<uint8_t>(1000, 7));
  Message msg;
  msg.dst = cache->endpoint();
  msg.type = kMsgCachePut;
  msg.transport = Transport::kReliable;
  msg.size_bytes = 1000;
  msg.payload = put;
  sink->Send(std::move(msg));

  // The put must be visible in `outstanding_` while its CPU slice runs — this is
  // what the manager's load view samples.
  bool saw_outstanding = false;
  for (int i = 0; i < 100 && !saw_outstanding; ++i) {
    h.sim.RunFor(Milliseconds(1));
    saw_outstanding = cache->outstanding_ops() > 0;
  }
  EXPECT_TRUE(saw_outstanding);

  h.sim.RunFor(Milliseconds(50));
  EXPECT_EQ(cache->outstanding_ops(), 0.0);
  EXPECT_EQ(cache->used_bytes(), 1000);
  // Gauges were refreshed when the op completed — well before the report timer
  // (and with no manager known, ReportLoad never even runs its refresh).
  std::string prefix = StrFormat("cache.n%d.", cache->node());
  EXPECT_EQ(h.cluster.metrics()->GetGauge(prefix + "used_bytes")->value(), 1000.0);
}

TEST(CacheAccountingTest, ExpiredGetsAreDroppedWithoutReply) {
  RawHarness h;
  NodeId node = h.cluster.AddNode();
  auto cache_owner = std::make_unique<CacheNodeProcess>(SnsConfig{}, CacheNodeConfig{});
  CacheNodeProcess* cache = cache_owner.get();
  ASSERT_NE(h.cluster.Spawn(node, std::move(cache_owner)), kInvalidProcess);
  auto sink_owner = std::make_unique<ResponseSink>();
  ResponseSink* sink = sink_owner.get();
  ASSERT_NE(h.cluster.Spawn(h.cluster.AddNode(), std::move(sink_owner)), kInvalidProcess);
  h.sim.RunFor(Seconds(1));

  auto get = std::make_shared<CacheGetPayload>();
  get->op_id = 1;
  get->key = "k1";
  get->reply_to = sink->endpoint();
  get->deadline = h.sim.now() - Milliseconds(1);  // Already expired.
  Message msg;
  msg.dst = cache->endpoint();
  msg.type = kMsgCacheGet;
  msg.transport = Transport::kReliable;
  msg.size_bytes = 128;
  msg.payload = get;
  sink->Send(std::move(msg));
  h.sim.RunFor(Seconds(1));

  EXPECT_EQ(sink->cache_replies(), 0);
  std::string prefix = StrFormat("cache.n%d.", cache->node());
  EXPECT_EQ(h.cluster.metrics()->GetCounter(prefix + "expired_gets")->value(), 1);
  EXPECT_EQ(h.cluster.metrics()->GetCounter(prefix + "gets")->value(), 0);
}

}  // namespace
}  // namespace sns
