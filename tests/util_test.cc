// Unit tests for src/util: time formatting, status/result, strings, token bucket.

#include <gtest/gtest.h>

#include "src/util/status.h"
#include "src/util/strings.h"
#include "src/util/time.h"
#include "src/util/token_bucket.h"

namespace sns {
namespace {

// ---------- time -------------------------------------------------------------

TEST(TimeTest, UnitConversions) {
  EXPECT_EQ(Seconds(1.0), 1000 * Milliseconds(1.0));
  EXPECT_EQ(Milliseconds(1.0), 1000 * Microseconds(1));
  EXPECT_EQ(Minutes(2), 120 * kSecond);
  EXPECT_EQ(Hours(1), 3600 * kSecond);
  EXPECT_DOUBLE_EQ(ToSeconds(Seconds(2.5)), 2.5);
  EXPECT_DOUBLE_EQ(ToMilliseconds(Microseconds(1500)), 1.5);
}

TEST(TimeTest, FormatTime) {
  EXPECT_EQ(FormatTime(0), "0:00:00.000");
  EXPECT_EQ(FormatTime(Seconds(61) + Milliseconds(7.0)), "0:01:01.007");
  EXPECT_EQ(FormatTime(Hours(2) + Minutes(3) + Seconds(4)), "2:03:04.000");
}

TEST(TimeTest, FormatDurationPicksUnits) {
  EXPECT_EQ(FormatDuration(Nanoseconds(12)), "12ns");
  EXPECT_EQ(FormatDuration(Microseconds(2) + Nanoseconds(500)), "2.5us");
  EXPECT_EQ(FormatDuration(Milliseconds(17.0)), "17.0ms");
  EXPECT_EQ(FormatDuration(Seconds(2.5)), "2.50s");
  EXPECT_EQ(FormatDuration(Minutes(90)), "1.50h");
}

// ---------- status / result ---------------------------------------------------

TEST(StatusTest, OkByDefault) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = TimeoutError("manager beacon lost");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kTimeout);
  EXPECT_EQ(status.ToString(), "TIMEOUT: manager beacon lost");
}

TEST(StatusTest, AllConstructorsProduceDistinctCodes) {
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(UnavailableError("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(InvalidArgumentError("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ResourceExhaustedError("x").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(FailedPreconditionError("x").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(CorruptionError("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> result = NotFoundError("nope");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(result.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> result = std::string("payload");
  std::string taken = std::move(result).value();
  EXPECT_EQ(taken, "payload");
}

// ---------- strings -----------------------------------------------------------

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StringsTest, JoinAndSplit) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(StrJoin({}, ","), "");
  std::vector<std::string> parts = StrSplit("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(StrSplit("", ',').size(), 1u);
}

TEST(StringsTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(999), "999 B");
  EXPECT_EQ(HumanBytes(12300), "12.3 KB");
  EXPECT_EQ(HumanBytes(4000000), "4.0 MB");
  EXPECT_EQ(HumanBytes(6000000000LL), "6.00 GB");
}

TEST(StringsTest, AffixesAndCase) {
  EXPECT_TRUE(StartsWith("http://x", "http://"));
  EXPECT_FALSE(StartsWith("x", "http://"));
  EXPECT_TRUE(EndsWith("photo.jpg", ".jpg"));
  EXPECT_FALSE(EndsWith(".jpg", "photo.jpg"));
  EXPECT_EQ(AsciiLower("MiXeD123"), "mixed123");
}

TEST(StringsTest, Fnv1aIsStableAndSpreads) {
  EXPECT_EQ(Fnv1a("abc"), Fnv1a("abc"));
  EXPECT_NE(Fnv1a("abc"), Fnv1a("abd"));
  EXPECT_NE(Fnv1a(""), Fnv1a("a"));
}

// ---------- token bucket ---------------------------------------------------------

TEST(TokenBucketTest, StartsFull) {
  TokenBucket bucket(10.0, 5.0);
  EXPECT_TRUE(bucket.TryTake(0, 5.0));
  EXPECT_FALSE(bucket.TryTake(0, 0.5));
}

TEST(TokenBucketTest, RefillsAtRate) {
  TokenBucket bucket(10.0, 5.0);
  ASSERT_TRUE(bucket.TryTake(0, 5.0));
  // After 0.3 s, 3 tokens accrued.
  EXPECT_TRUE(bucket.TryTake(Milliseconds(300), 3.0));
  EXPECT_FALSE(bucket.TryTake(Milliseconds(300), 0.5));
}

TEST(TokenBucketTest, CapsAtBurst) {
  TokenBucket bucket(10.0, 5.0);
  bucket.TryTake(0, 5.0);
  EXPECT_NEAR(bucket.available(Seconds(100)), 5.0, 1e-9);
}

TEST(TokenBucketTest, NextAvailablePredictsRefillTime) {
  TokenBucket bucket(10.0, 5.0);
  bucket.TryTake(0, 5.0);
  SimTime when = bucket.NextAvailable(0, 2.0);
  EXPECT_NEAR(ToSeconds(when), 0.2, 1e-6);
  EXPECT_TRUE(bucket.TryTake(when, 2.0));
}

TEST(TokenBucketTest, ZeroRateNeverRefills) {
  TokenBucket bucket(0.0, 1.0);
  bucket.TryTake(0, 1.0);
  EXPECT_EQ(bucket.NextAvailable(0, 1.0), kTimeNever);
}

}  // namespace
}  // namespace sns
