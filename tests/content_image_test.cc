// Tests for the image substrate: pixel operations and the SGIF/SJPG codecs,
// including parameterized property sweeps over quality and palette sizes.

#include <gtest/gtest.h>

#include "src/content/gif_codec.h"
#include "src/content/image.h"
#include "src/content/jpeg_codec.h"

namespace sns {
namespace {

RasterImage TestPhoto(int w = 64, int h = 48, uint64_t seed = 11) {
  Rng rng(seed);
  return SynthesizePhoto(&rng, w, h);
}

// ---------- image operations ---------------------------------------------------

TEST(ImageOpsTest, BoxDownscaleHalvesDimensions) {
  RasterImage img = TestPhoto(64, 48);
  RasterImage small = BoxDownscale(img, 2);
  EXPECT_EQ(small.width(), 32);
  EXPECT_EQ(small.height(), 24);
  RasterImage same = BoxDownscale(img, 1);
  EXPECT_EQ(same.width(), 64);
}

TEST(ImageOpsTest, BoxDownscaleRoundsUpOddDimensions) {
  RasterImage img = TestPhoto(65, 49);
  RasterImage small = BoxDownscale(img, 2);
  EXPECT_EQ(small.width(), 33);
  EXPECT_EQ(small.height(), 25);
}

TEST(ImageOpsTest, BoxDownscaleOfFlatImageIsExact) {
  RasterImage img(16, 16);
  for (Pixel& p : img.pixels()) {
    p = Pixel{100, 150, 200};
  }
  RasterImage small = BoxDownscale(img, 4);
  for (const Pixel& p : small.pixels()) {
    EXPECT_EQ(p, (Pixel{100, 150, 200}));
  }
}

TEST(ImageOpsTest, LowPassReducesHighFrequencyEnergy) {
  // Checkerboard: maximal high-frequency content.
  RasterImage img(32, 32);
  for (int y = 0; y < 32; ++y) {
    for (int x = 0; x < 32; ++x) {
      uint8_t v = ((x + y) % 2 == 0) ? 255 : 0;
      img.at(x, y) = Pixel{v, v, v};
    }
  }
  RasterImage smooth = LowPassFilter(img, 1);
  // Neighbor differences shrink dramatically.
  int64_t before = 0;
  int64_t after = 0;
  for (int y = 0; y < 32; ++y) {
    for (int x = 1; x < 32; ++x) {
      before += std::abs(img.at(x, y).r - img.at(x - 1, y).r);
      after += std::abs(smooth.at(x, y).r - smooth.at(x - 1, y).r);
    }
  }
  EXPECT_LT(after, before / 2);
}

TEST(ImageOpsTest, ReduceBitDepthQuantizesLevels) {
  RasterImage img = TestPhoto();
  RasterImage reduced = ReduceBitDepth(img, 3);
  std::set<uint8_t> levels;
  for (const Pixel& p : reduced.pixels()) {
    levels.insert(p.r);
  }
  EXPECT_LE(levels.size(), 8u);
  // 8-bit reduction is identity.
  RasterImage same = ReduceBitDepth(img, 8);
  EXPECT_NEAR(MeanAbsoluteError(img, same), 0.0, 1e-9);
}

TEST(ImageOpsTest, MedianCutRespectsPaletteBudget) {
  RasterImage img = TestPhoto();
  std::vector<uint8_t> indices;
  std::vector<Pixel> palette = MedianCutPalette(img, 16, &indices);
  EXPECT_LE(palette.size(), 16u);
  EXPECT_EQ(indices.size(), img.pixels().size());
  for (uint8_t index : indices) {
    EXPECT_LT(index, palette.size());
  }
}

TEST(ImageOpsTest, MedianCutOnFewColorsIsLossless) {
  RasterImage img(8, 8);
  for (int i = 0; i < 64; ++i) {
    img.pixels()[static_cast<size_t>(i)] = (i % 2 == 0) ? Pixel{255, 0, 0} : Pixel{0, 0, 255};
  }
  std::vector<uint8_t> indices;
  std::vector<Pixel> palette = MedianCutPalette(img, 8, &indices);
  for (size_t i = 0; i < indices.size(); ++i) {
    EXPECT_EQ(palette[indices[i]], img.pixels()[i]);
  }
}

// ---------- SGIF codec --------------------------------------------------------------

TEST(GifCodecTest, RoundTripPreservesDimensions) {
  RasterImage img = TestPhoto(50, 37);
  auto encoded = GifEncode(img, 256);
  ASSERT_TRUE(IsGif(encoded));
  auto decoded = GifDecode(encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->width(), 50);
  EXPECT_EQ(decoded->height(), 37);
  // Lossy only through palette quantization.
  EXPECT_LT(MeanAbsoluteError(img, *decoded), 12.0);
}

TEST(GifCodecTest, FlatColorImageIsPixelExactAndTiny) {
  RasterImage img(40, 40);
  for (Pixel& p : img.pixels()) {
    p = Pixel{10, 20, 30};
  }
  auto encoded = GifEncode(img, 256);
  EXPECT_LT(encoded.size(), 120u);  // LZW crushes the constant run.
  auto decoded = GifDecode(encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_NEAR(MeanAbsoluteError(img, *decoded), 0.0, 1e-9);
}

TEST(GifCodecTest, IconCompressesBetterThanPhoto) {
  Rng rng(3);
  RasterImage icon = SynthesizeIcon(&rng, 64, 64);
  RasterImage photo = SynthesizePhoto(&rng, 64, 64);
  EXPECT_LT(GifEncode(icon, 64).size(), GifEncode(photo, 64).size());
}

TEST(GifCodecTest, RejectsGarbage) {
  std::vector<uint8_t> garbage = {'X', 'X', 1, 2, 3, 4, 5, 6, 7, 8, 9};
  EXPECT_FALSE(IsGif(garbage));
  EXPECT_FALSE(GifDecode(garbage).ok());
}

TEST(GifCodecTest, TruncatedStreamFailsCleanly) {
  RasterImage img = TestPhoto(32, 32);
  auto encoded = GifEncode(img, 64);
  encoded.resize(encoded.size() / 2);
  auto decoded = GifDecode(encoded);
  EXPECT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
}

TEST(GifCodecTest, TrailingPaddingIsIgnored) {
  RasterImage img = TestPhoto(24, 24);
  auto encoded = GifEncode(img, 64);
  auto baseline = GifDecode(encoded);
  ASSERT_TRUE(baseline.ok());
  encoded.resize(encoded.size() + 500, 0xAB);  // The universe pads to target sizes.
  auto padded = GifDecode(encoded);
  ASSERT_TRUE(padded.ok());
  EXPECT_NEAR(MeanAbsoluteError(*baseline, *padded), 0.0, 1e-9);
}

class GifPaletteSweep : public ::testing::TestWithParam<int> {};

TEST_P(GifPaletteSweep, RoundTripsAtAnyPaletteSize) {
  int colors = GetParam();
  RasterImage img = TestPhoto(40, 30, static_cast<uint64_t>(colors));
  auto encoded = GifEncode(img, colors);
  auto decoded = GifDecode(encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->width(), img.width());
  // Fewer colors -> worse fidelity, but bounded.
  EXPECT_LT(MeanAbsoluteError(img, *decoded), colors >= 64 ? 16.0 : 60.0);
}

INSTANTIATE_TEST_SUITE_P(Palettes, GifPaletteSweep, ::testing::Values(2, 4, 16, 64, 256));

// ---------- SJPG codec ---------------------------------------------------------------

TEST(JpegCodecTest, RoundTripCloseAtHighQuality) {
  RasterImage img = TestPhoto(64, 48);
  auto encoded = JpegEncode(img, 90);
  ASSERT_TRUE(IsJpeg(encoded));
  auto decoded = JpegDecode(encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->width(), 64);
  EXPECT_EQ(decoded->height(), 48);
  EXPECT_LT(MeanAbsoluteError(img, *decoded), 6.0);
}

TEST(JpegCodecTest, QualityFieldReadable) {
  auto encoded = JpegEncode(TestPhoto(), 42);
  auto quality = JpegQualityOf(encoded);
  ASSERT_TRUE(quality.ok());
  EXPECT_EQ(*quality, 42);
}

TEST(JpegCodecTest, NonMultipleOf8DimensionsWork) {
  RasterImage img = TestPhoto(37, 23);
  auto decoded = JpegDecode(JpegEncode(img, 75));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->width(), 37);
  EXPECT_EQ(decoded->height(), 23);
}

TEST(JpegCodecTest, RejectsGarbageAndTruncation) {
  std::vector<uint8_t> garbage(64, 0x55);
  EXPECT_FALSE(JpegDecode(garbage).ok());
  auto encoded = JpegEncode(TestPhoto(), 75);
  encoded.resize(encoded.size() / 3);
  EXPECT_FALSE(JpegDecode(encoded).ok());
}

TEST(JpegCodecTest, PaperExampleShapeScale2Quality25) {
  // Fig. 3: "Scaling this JPEG image by a factor of 2 in each dimension and
  // reducing JPEG quality to 25 results in a size reduction from 10KB to 1.5KB"
  // — check the ~5-8x reduction shape on our codec.
  RasterImage img = TestPhoto(200, 150, 77);
  auto original = JpegEncode(img, 85);
  RasterImage distilled_img = BoxDownscale(img, 2);
  auto distilled = JpegEncode(distilled_img, 25);
  double ratio = static_cast<double>(original.size()) / static_cast<double>(distilled.size());
  EXPECT_GT(ratio, 3.0);
  EXPECT_LT(ratio, 20.0);
}

class JpegQualitySweep : public ::testing::TestWithParam<int> {};

TEST_P(JpegQualitySweep, SizeAndErrorMonotoneInQuality) {
  int quality = GetParam();
  RasterImage img = TestPhoto(80, 60, 5);
  auto encoded = JpegEncode(img, quality);
  auto decoded = JpegDecode(encoded);
  ASSERT_TRUE(decoded.ok());

  // Compare against the adjacent lower quality: size shrinks, error grows.
  if (quality > 10) {
    auto lower = JpegEncode(img, quality - 15);
    auto lower_decoded = JpegDecode(lower);
    ASSERT_TRUE(lower_decoded.ok());
    EXPECT_LE(lower.size(), encoded.size());
    EXPECT_GE(MeanAbsoluteError(img, *lower_decoded) + 0.5,
              MeanAbsoluteError(img, *decoded));
  }
}

INSTANTIATE_TEST_SUITE_P(Qualities, JpegQualitySweep, ::testing::Values(20, 40, 60, 80, 95));

}  // namespace
}  // namespace sns
