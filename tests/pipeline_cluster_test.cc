// Integration tests of TACC pipeline composition ACROSS cluster workers: each stage
// is dispatched to a (possibly different) worker chosen by the manager stub, with
// the SNS layer's retries masking mid-pipeline failures — the paper's Unix-pipe
// analogy made distributed (§2.3).

#include <gtest/gtest.h>

#include <set>

#include "src/services/extras/keyword_filter.h"
#include "src/services/extras/palm_transform.h"
#include "src/services/transend/distillers.h"
#include "src/sns/system.h"
#include "src/util/logging.h"
#include "src/workload/content_universe.h"
#include "src/workload/origin_server.h"
#include "src/workload/playback.h"

namespace sns {
namespace {

// FE logic that runs a fixed three-stage pipeline over fetched pages.
class PipelineLogic : public FrontEndLogic {
 public:
  void HandleRequest(RequestContext* ctx) override {
    ctx->GetProfile([](RequestContext* c, bool, const UserProfile& profile) {
      c->SetProfile(profile);
      c->Fetch(c->request().url, [](RequestContext* c2, Status status, ContentPtr page) {
        if (!status.ok()) {
          c2->Respond(status, nullptr, ResponseSource::kError, false);
          return;
        }
        PipelineSpec spec;
        spec.stages.push_back({kHtmlDistillerType, {}});
        spec.stages.push_back({kKeywordFilterType, {{kArgKeywords, "lorem"}}});
        spec.stages.push_back({kPalmTransformType, {{kArgColumns, "30"}}});
        c2->CallPipeline(spec, {page},
                         [](RequestContext* c3, Status st, ContentPtr out) {
                           if (!st.ok()) {
                             c3->Respond(st, nullptr, ResponseSource::kError, false);
                             return;
                           }
                           c3->Respond(Status::Ok(), out, ResponseSource::kDistilled, false);
                         });
      });
    });
  }
};

struct PipelineFixture {
  PipelineFixture() {
    Logger::Get().set_min_level(LogLevel::kNone);
    SnsConfig config;
    SystemTopology topology;
    topology.worker_pool_nodes = 5;
    topology.cache_nodes = 1;
    topology.with_origin = true;
    system = std::make_unique<SnsSystem>(config, topology);
    system->registry()->Register(kHtmlDistillerType,
                                 [] { return std::make_unique<HtmlDistiller>(); });
    system->registry()->Register(kKeywordFilterType,
                                 [] { return std::make_unique<KeywordFilterWorker>(); });
    system->registry()->Register(kPalmTransformType,
                                 [] { return std::make_unique<PalmTransformWorker>(); });
    system->set_logic_factory([](int) { return std::make_shared<PipelineLogic>(); });

    ContentUniverseConfig universe_config;
    universe_config.url_count = 40;
    universe = std::make_unique<ContentUniverse>(universe_config);
    system->set_origin_factory([this] {
      return std::make_unique<OriginServerProcess>(OriginConfig{}, universe.get());
    });
    system->Start();

    NodeConfig client_node;
    client_node.workers_allowed = false;
    NodeId node = system->cluster()->AddNode(client_node);
    PlaybackConfig playback_config;
    playback_config.front_ends = [this] {
      std::vector<Endpoint> fes;
      for (FrontEndProcess* fe : system->front_ends()) {
        fes.push_back(fe->endpoint());
      }
      return fes;
    };
    auto engine = std::make_unique<PlaybackEngine>(playback_config);
    client = engine.get();
    system->cluster()->Spawn(node, std::move(engine));
    system->sim()->RunFor(Seconds(3));
  }

  std::string HtmlUrl() const {
    for (int i = 0; i < 40; ++i) {
      if (universe->MimeOf(universe->UrlAt(i)) == MimeType::kHtml) {
        return universe->UrlAt(i);
      }
    }
    return "";
  }

  std::unique_ptr<SnsSystem> system;
  std::unique_ptr<ContentUniverse> universe;
  PlaybackEngine* client = nullptr;
};

TEST(PipelineClusterTest, ThreeStagePipelineSpansWorkers) {
  PipelineFixture fixture;
  std::string url = fixture.HtmlUrl();
  ASSERT_FALSE(url.empty());

  TraceRecord record;
  record.user_id = "p";
  record.url = url;
  fixture.client->SendRequest(record);
  fixture.system->sim()->RunFor(Seconds(140));

  ASSERT_EQ(fixture.client->completed(), 1);
  EXPECT_EQ(fixture.client->errors(), 0);
  // All three worker classes were spawned on demand, each on its own node.
  EXPECT_EQ(fixture.system->live_workers(kHtmlDistillerType).size(), 1u);
  EXPECT_EQ(fixture.system->live_workers(kKeywordFilterType).size(), 1u);
  EXPECT_EQ(fixture.system->live_workers(kPalmTransformType).size(), 1u);
  std::set<NodeId> nodes;
  for (WorkerProcess* worker : fixture.system->live_workers()) {
    nodes.insert(worker->node());
  }
  EXPECT_EQ(nodes.size(), 3u);
  EXPECT_GT(fixture.client->bytes_received(), 0);
}

TEST(PipelineClusterTest, MidPipelineWorkerCrashIsMasked) {
  PipelineFixture fixture;
  std::string url = fixture.HtmlUrl();
  ASSERT_FALSE(url.empty());

  // First request spawns the pipeline workers.
  TraceRecord record;
  record.user_id = "p";
  record.url = url;
  fixture.client->SendRequest(record);
  fixture.system->sim()->RunFor(Seconds(140));
  ASSERT_EQ(fixture.client->completed(), 1);

  // Kill the middle stage's worker, then run a second URL through.
  auto filters = fixture.system->live_workers(kKeywordFilterType);
  ASSERT_FALSE(filters.empty());
  fixture.system->cluster()->Crash(filters[0]->pid());

  TraceRecord second = record;
  second.url = url + "?v=2";
  fixture.client->SendRequest(second);
  fixture.system->sim()->RunFor(Seconds(140));
  EXPECT_EQ(fixture.client->completed(), 2);
  EXPECT_EQ(fixture.client->errors(), 0);
  EXPECT_FALSE(fixture.system->live_workers(kKeywordFilterType).empty());
}

}  // namespace
}  // namespace sns
