// Tests for the storage substrate: LRU cache, consistent hashing, the WAL-backed
// KV store (ACID), and soft-state tables (BASE).

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "src/store/consistent_hash.h"
#include "src/store/kvstore.h"
#include "src/store/lru_cache.h"
#include "src/store/soft_state.h"
#include "src/util/strings.h"

namespace sns {
namespace {

// ---------- LRU cache ---------------------------------------------------------

TEST(LruCacheTest, PutGetAndPromotion) {
  LruCache<std::string, int> cache(3);  // Unit-cost entries.
  cache.Put("a", 1);
  cache.Put("b", 2);
  cache.Put("c", 3);
  EXPECT_EQ(*cache.Get("a"), 1);  // Promotes "a".
  cache.Put("d", 4);              // Evicts "b" (LRU).
  EXPECT_FALSE(cache.Get("b").has_value());
  EXPECT_TRUE(cache.Get("a").has_value());
  EXPECT_EQ(cache.evictions(), 1);
}

TEST(LruCacheTest, ByteCapacityAccounting) {
  LruCache<std::string, std::string> cache(
      100, [](const std::string& v) { return static_cast<int64_t>(v.size()); });
  cache.Put("a", std::string(40, 'x'));
  cache.Put("b", std::string(40, 'y'));
  EXPECT_EQ(cache.used_bytes(), 80);
  cache.Put("c", std::string(40, 'z'));  // Evicts "a".
  EXPECT_EQ(cache.used_bytes(), 80);
  EXPECT_FALSE(cache.Contains("a"));
  EXPECT_TRUE(cache.Contains("b"));
}

TEST(LruCacheTest, OversizedValueIsRejected) {
  LruCache<std::string, std::string> cache(
      10, [](const std::string& v) { return static_cast<int64_t>(v.size()); });
  cache.Put("big", std::string(50, 'x'));
  EXPECT_FALSE(cache.Contains("big"));
  EXPECT_EQ(cache.used_bytes(), 0);
}

TEST(LruCacheTest, ReplaceUpdatesSize) {
  LruCache<std::string, std::string> cache(
      100, [](const std::string& v) { return static_cast<int64_t>(v.size()); });
  cache.Put("a", std::string(60, 'x'));
  cache.Put("a", std::string(10, 'y'));
  EXPECT_EQ(cache.used_bytes(), 10);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(LruCacheTest, HitRateAndCounters) {
  LruCache<std::string, int> cache(2);
  cache.Put("a", 1);
  cache.Get("a");
  cache.Get("missing");
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.misses(), 1);
  EXPECT_DOUBLE_EQ(cache.HitRate(), 0.5);
  cache.ResetCounters();
  EXPECT_EQ(cache.hits(), 0);
}

TEST(LruCacheTest, EraseAndClear) {
  LruCache<std::string, int> cache(4);
  cache.Put("a", 1);
  cache.Put("b", 2);
  EXPECT_TRUE(cache.Erase("a"));
  EXPECT_FALSE(cache.Erase("a"));
  EXPECT_EQ(cache.size(), 1u);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.used_bytes(), 0);
}

TEST(LruCacheTest, OversizedReplacementPreservesExistingEntry) {
  // Regression: Put used to erase the old entry before the over-capacity check,
  // so replacing a key with an oversized value silently destroyed the key.
  LruCache<std::string, std::string> cache(
      20, [](const std::string& v) { return static_cast<int64_t>(v.size()); });
  cache.Put("a", std::string(10, 'x'));
  cache.Put("a", std::string(50, 'y'));  // Over capacity: rejected.
  ASSERT_TRUE(cache.Contains("a"));
  EXPECT_EQ(*cache.Get("a"), std::string(10, 'x'));
  EXPECT_EQ(cache.used_bytes(), 10);
  EXPECT_EQ(cache.rejected(), 1);
}

TEST(LruCacheTest, RejectedCounterAccumulates) {
  LruCache<std::string, std::string> cache(
      10, [](const std::string& v) { return static_cast<int64_t>(v.size()); });
  cache.Put("a", std::string(11, 'x'));
  cache.Put("b", std::string(99, 'y'));
  EXPECT_EQ(cache.rejected(), 2);
  EXPECT_EQ(cache.size(), 0u);
  cache.Put("c", std::string(5, 'z'));  // Fits: not rejected.
  EXPECT_EQ(cache.rejected(), 2);
}

TEST(LruCacheTest, ForEachVisitsAllEntriesWithoutPromotion) {
  LruCache<std::string, int> cache(3);
  cache.Put("a", 1);
  cache.Put("b", 2);
  cache.Put("c", 3);
  std::map<std::string, int> seen;
  cache.ForEach([&seen](const std::string& k, const int& v, int64_t) { seen[k] = v; });
  EXPECT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen["a"], 1);
  cache.Put("d", 4);  // "a" is still LRU despite ForEach: evicted.
  EXPECT_FALSE(cache.Contains("a"));
  EXPECT_EQ(cache.hits(), 0);
}

TEST(LruCacheTest, PeekDoesNotPromoteOrCount) {
  LruCache<std::string, int> cache(2);
  cache.Put("a", 1);
  cache.Put("b", 2);
  EXPECT_NE(cache.Peek("a"), nullptr);
  cache.Put("c", 3);  // "a" is still LRU despite Peek: evicted.
  EXPECT_FALSE(cache.Contains("a"));
  EXPECT_EQ(cache.hits(), 0);
}

// ---------- consistent hashing ------------------------------------------------------

TEST(ConsistentHashTest, LookupStableAcrossCalls) {
  ConsistentHashRing ring;
  ring.AddMember(1);
  ring.AddMember(2);
  ring.AddMember(3);
  for (int i = 0; i < 50; ++i) {
    std::string key = StrFormat("key%d", i);
    EXPECT_EQ(*ring.Lookup(key), *ring.Lookup(key));
  }
}

TEST(ConsistentHashTest, EmptyRingReturnsNullopt) {
  ConsistentHashRing ring;
  EXPECT_FALSE(ring.Lookup("x").has_value());
}

TEST(ConsistentHashTest, BalancesAcrossMembers) {
  ConsistentHashRing ring(128);
  for (int64_t m = 0; m < 4; ++m) {
    ring.AddMember(m);
  }
  std::map<int64_t, int> counts;
  for (int i = 0; i < 20000; ++i) {
    ++counts[*ring.Lookup(StrFormat("url-%d", i))];
  }
  for (const auto& [member, count] : counts) {
    EXPECT_GT(count, 2500) << "member " << member << " underloaded";
    EXPECT_LT(count, 9000) << "member " << member << " overloaded";
  }
}

TEST(ConsistentHashTest, RemovalOnlyRemapsVictimKeys) {
  // Paper §3.1.5: "automatically re-hashing when cache nodes are added or removed"
  // — the point of consistent hashing is that survivors keep their keys.
  ConsistentHashRing ring(128);
  for (int64_t m = 0; m < 4; ++m) {
    ring.AddMember(m);
  }
  std::map<std::string, int64_t> before;
  for (int i = 0; i < 5000; ++i) {
    std::string key = StrFormat("url-%d", i);
    before[key] = *ring.Lookup(key);
  }
  ring.RemoveMember(2);
  int moved = 0;
  for (const auto& [key, owner] : before) {
    int64_t now = *ring.Lookup(key);
    if (owner != 2) {
      EXPECT_EQ(now, owner) << "non-victim key remapped: " << key;
    } else {
      EXPECT_NE(now, 2);
      ++moved;
    }
  }
  EXPECT_GT(moved, 0);
}

TEST(ConsistentHashTest, LookupNReturnsDistinctMembers) {
  ConsistentHashRing ring;
  for (int64_t m = 0; m < 5; ++m) {
    ring.AddMember(m);
  }
  auto chain = ring.LookupN("some-key", 3);
  ASSERT_EQ(chain.size(), 3u);
  EXPECT_NE(chain[0], chain[1]);
  EXPECT_NE(chain[1], chain[2]);
  EXPECT_NE(chain[0], chain[2]);
  // Asking for more than exist returns all members once.
  EXPECT_EQ(ring.LookupN("k", 10).size(), 5u);
}

TEST(ConsistentHashTest, VnodePointCollisionsDoNotCorruptRing) {
  // Regression: the ring used to be a map<point, member>, so two vnodes hashing
  // to the same point silently overwrote each other on AddMember — and
  // RemoveMember of the second member then deleted the *survivor's* vnode,
  // leaving the ring missing arcs it should still own. Force every vnode of
  // every member onto colliding points to prove the set-of-pairs ring keeps them
  // all distinct.
  auto collide = [](int64_t /*member*/, int vnode) {
    return static_cast<uint64_t>(vnode);  // Same point for every member.
  };
  ConsistentHashRing ring(8, collide);
  ring.AddMember(1);
  ring.AddMember(2);
  EXPECT_EQ(ring.PointCount(), 16u);  // 8 vnodes each, none clobbered.
  ring.RemoveMember(2);
  EXPECT_EQ(ring.PointCount(), 8u);  // Member 1's colliding vnodes all survive.
  EXPECT_TRUE(ring.HasMember(1));
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(*ring.Lookup(StrFormat("k%d", i)), 1);
  }
}

TEST(ConsistentHashTest, CollidingPointsBreakTiesDeterministically) {
  auto collide = [](int64_t, int vnode) { return static_cast<uint64_t>(vnode); };
  ConsistentHashRing a(4, collide);
  ConsistentHashRing b(4, collide);
  // Insertion order must not matter: ties on a point break by member id.
  a.AddMember(7);
  a.AddMember(3);
  b.AddMember(3);
  b.AddMember(7);
  for (int i = 0; i < 50; ++i) {
    std::string key = StrFormat("k%d", i);
    EXPECT_EQ(*a.Lookup(key), *b.Lookup(key));
    EXPECT_EQ(a.LookupN(key, 2), b.LookupN(key, 2));
  }
}

TEST(ConsistentHashTest, LookupNChainOrderIsDeterministicAcrossRings) {
  ConsistentHashRing a(64);
  ConsistentHashRing b(64);
  for (int64_t m = 0; m < 6; ++m) {
    a.AddMember(m);
  }
  for (int64_t m = 5; m >= 0; --m) {
    b.AddMember(m);  // Reverse insertion order.
  }
  for (int i = 0; i < 200; ++i) {
    std::string key = StrFormat("url-%d", i);
    EXPECT_EQ(a.LookupN(key, 3), b.LookupN(key, 3));
  }
}

TEST(ConsistentHashTest, MembershipChangeRemapsAboutOneNthOfChains) {
  // The replication analogue of RemovalOnlyRemapsVictimKeys: adding or removing
  // one of N nodes should change roughly 1/N of the R=2 replica chains, not
  // reshuffle the world.
  constexpr int kKeys = 4000;
  ConsistentHashRing ring(128);
  for (int64_t m = 0; m < 8; ++m) {
    ring.AddMember(m);
  }
  std::vector<std::vector<int64_t>> before(kKeys);
  for (int i = 0; i < kKeys; ++i) {
    before[i] = ring.LookupN(StrFormat("url-%d", i), 2);
  }

  ring.RemoveMember(3);
  int changed_on_remove = 0;
  for (int i = 0; i < kKeys; ++i) {
    auto now = ring.LookupN(StrFormat("url-%d", i), 2);
    bool was_on_victim =
        std::find(before[i].begin(), before[i].end(), 3) != before[i].end();
    if (now != before[i]) {
      ++changed_on_remove;
      // Only chains that touched the victim's arcs may change.
      EXPECT_TRUE(was_on_victim) << "chain for url-" << i << " changed spuriously";
    } else {
      EXPECT_FALSE(was_on_victim);
    }
  }
  // With R=2 of N=8 members, ~2/8 of chains touch the victim.
  EXPECT_GT(changed_on_remove, kKeys / 8);
  EXPECT_LT(changed_on_remove, kKeys / 2);

  ring.AddMember(3);  // Restore: chains must return to the original assignment.
  int changed_on_add = 0;
  for (int i = 0; i < kKeys; ++i) {
    if (ring.LookupN(StrFormat("url-%d", i), 2) != before[i]) {
      ++changed_on_add;
    }
  }
  EXPECT_EQ(changed_on_add, 0);
}

TEST(ConsistentHashTest, LookupNPrimaryMatchesLookup) {
  ConsistentHashRing ring(64);
  for (int64_t m = 0; m < 5; ++m) {
    ring.AddMember(m);
  }
  for (int i = 0; i < 100; ++i) {
    std::string key = StrFormat("k%d", i);
    EXPECT_EQ(ring.LookupN(key, 3)[0], *ring.Lookup(key));
  }
}

// ---------- KvStore (ACID) ---------------------------------------------------------

TEST(KvStoreTest, PutGetDelete) {
  KvStore store;
  EXPECT_TRUE(store.Put("user1", "profile-data").ok());
  EXPECT_EQ(*store.Get("user1"), "profile-data");
  EXPECT_TRUE(store.Delete("user1").ok());
  EXPECT_FALSE(store.Get("user1").has_value());
}

TEST(KvStoreTest, CrashRecoveryReplaysWal) {
  KvStore store;
  store.Put("a", "1");
  store.Put("b", "2");
  store.Put("a", "3");
  store.SimulateCrash();
  EXPECT_FALSE(store.Get("a").has_value());  // Volatile state gone.
  auto recovered = store.Recover();
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(*recovered, 3);
  EXPECT_EQ(*store.Get("a"), "3");
  EXPECT_EQ(*store.Get("b"), "2");
}

TEST(KvStoreTest, MultiKeyCommitIsAtomicOnRecovery) {
  KvStore store;
  store.Commit({{KvStore::Op::Kind::kPut, "x", "1"},
                {KvStore::Op::Kind::kPut, "y", "2"},
                {KvStore::Op::Kind::kDelete, "z", ""}});
  store.SimulateCrash();
  ASSERT_TRUE(store.Recover().ok());
  EXPECT_EQ(*store.Get("x"), "1");
  EXPECT_EQ(*store.Get("y"), "2");
}

TEST(KvStoreTest, EmptyCommitRejected) {
  KvStore store;
  EXPECT_EQ(store.Commit({}).code(), StatusCode::kInvalidArgument);
}

TEST(KvStoreTest, TornWriteDiscardedOnRecovery) {
  KvStore store;
  store.Put("a", "1");
  store.Put("b", "2");
  ASSERT_TRUE(store.TearLastRecord().ok());
  store.SimulateCrash();
  auto recovered = store.Recover();
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(*recovered, 1);  // Only the intact prefix.
  EXPECT_TRUE(store.Get("a").has_value());
  EXPECT_FALSE(store.Get("b").has_value());
  EXPECT_EQ(store.wal_records(), 1u);  // Truncated.
}

TEST(KvStoreTest, CorruptRecordStopsReplay) {
  KvStore store;
  store.Put("a", "1");
  store.Put("b", "2");
  store.Put("c", "3");
  ASSERT_TRUE(store.CorruptLogRecord(1).ok());
  store.SimulateCrash();
  auto recovered = store.Recover();
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(*recovered, 1);
  EXPECT_TRUE(store.Get("a").has_value());
  EXPECT_FALSE(store.Get("b").has_value());
  EXPECT_FALSE(store.Get("c").has_value());  // After the corruption: discarded.
}

TEST(KvStoreTest, CheckpointCompactsWal) {
  KvStore store;
  for (int i = 0; i < 100; ++i) {
    store.Put("key", StrFormat("v%d", i));
  }
  EXPECT_EQ(store.wal_records(), 100u);
  store.Checkpoint();
  EXPECT_EQ(store.wal_records(), 1u);
  store.SimulateCrash();
  ASSERT_TRUE(store.Recover().ok());
  EXPECT_EQ(*store.Get("key"), "v99");
}

TEST(KvStoreTest, WalBytesGrowWithData) {
  KvStore store;
  int64_t empty = store.wal_bytes();
  store.Put("key", std::string(1000, 'x'));
  EXPECT_GT(store.wal_bytes(), empty + 1000);
}

// ---------- Soft-state table (BASE) -----------------------------------------------

TEST(SoftStateTest, RefreshAndExpiry) {
  SoftStateTable<std::string, int> table(Seconds(5));
  table.Refresh("worker1", 7, /*now=*/0);
  EXPECT_EQ(*table.Get("worker1", Seconds(4)), 7);
  EXPECT_FALSE(table.Get("worker1", Seconds(5)).has_value());  // Lease over.
}

TEST(SoftStateTest, TouchRenewsLease) {
  SoftStateTable<std::string, int> table(Seconds(5));
  table.Refresh("w", 1, 0);
  EXPECT_TRUE(table.Touch("w", Seconds(4)));
  EXPECT_TRUE(table.Get("w", Seconds(8)).has_value());
  EXPECT_FALSE(table.Touch("w", Seconds(20)));  // Expired: cannot touch.
}

TEST(SoftStateTest, ExpireInvokesCallbackAndPrunes) {
  SoftStateTable<std::string, int> table(Seconds(5));
  table.Refresh("a", 1, 0);
  table.Refresh("b", 2, Seconds(3));
  std::vector<std::string> expired;
  size_t count = table.Expire(Seconds(6), [&](const std::string& key, const int&) {
    expired.push_back(key);
  });
  EXPECT_EQ(count, 1u);
  EXPECT_EQ(expired, (std::vector<std::string>{"a"}));
  EXPECT_EQ(table.SizeIncludingExpired(), 1u);
}

TEST(SoftStateTest, GetMutableAllowsInPlaceUpdate) {
  SoftStateTable<std::string, int> table(Seconds(5));
  table.Refresh("w", 1, 0);
  int* value = table.GetMutable("w", Seconds(1));
  ASSERT_NE(value, nullptr);
  *value = 42;
  EXPECT_EQ(*table.Get("w", Seconds(2)), 42);
  EXPECT_EQ(table.GetMutable("missing", 0), nullptr);
}

TEST(SoftStateTest, LiveKeysAndForEachSkipExpired) {
  SoftStateTable<std::string, int> table(Seconds(5));
  table.Refresh("live", 1, Seconds(3));
  table.Refresh("dead", 2, 0);
  SimTime now = Seconds(6);
  EXPECT_EQ(table.LiveKeys(now), (std::vector<std::string>{"live"}));
  EXPECT_EQ(table.LiveCount(now), 1u);
  int visited = 0;
  table.ForEach(now, [&](const std::string&, const int&) { ++visited; });
  EXPECT_EQ(visited, 1);
}

TEST(SoftStateTest, EraseRemovesImmediately) {
  SoftStateTable<std::string, int> table(Seconds(5));
  table.Refresh("w", 1, 0);
  EXPECT_TRUE(table.Erase("w"));
  EXPECT_FALSE(table.Erase("w"));
  EXPECT_FALSE(table.Get("w", 0).has_value());
}

}  // namespace
}  // namespace sns
