// Quorum membership, fencing, and the durable write-ack contract (DESIGN.md
// §14): two-node quorum-disk tiebreaking at the unit level, fenced failover and
// symmetric-partition arbitration at the system level, a 20-seed chaos campaign
// holding the acked-write-durable / no-minority-ack invariants, and the
// regression run proving the pre-quorum baseline loses acknowledged writes.

#include <gtest/gtest.h>

#include "src/chaos/campaign.h"
#include "src/chaos/invariants.h"
#include "src/chaos/minimizer.h"
#include "src/cluster/failure_injector.h"
#include "src/net/san.h"
#include "src/quorum/membership.h"
#include "src/quorum/quorum_disk.h"
#include "src/services/transend/transend.h"
#include "src/sim/simulator.h"
#include "src/store/kvstore.h"
#include "src/tacc/profile.h"
#include "src/util/logging.h"
#include "src/util/strings.h"

namespace sns {
namespace {

// ---------- quorum disk lease semantics -------------------------------------------------

TEST(QuorumDiskTest, LeaseRenewalBlocksRivalsUntilExpiry) {
  KvStore store;
  QuorumDisk disk(&store, Seconds(3));
  EXPECT_FALSE(disk.Owner(0).has_value());

  // Node 1 claims the unowned disk and renews freely.
  EXPECT_TRUE(disk.TryClaim(1, Seconds(0)));
  EXPECT_EQ(disk.Owner(Seconds(1)).value_or(kInvalidNode), 1);
  EXPECT_TRUE(disk.TryClaim(1, Seconds(2)));

  // A rival is refused while the lease is live...
  EXPECT_FALSE(disk.TryClaim(2, Seconds(4)));
  EXPECT_EQ(disk.Owner(Seconds(4)).value_or(kInvalidNode), 1);
  // ...and wins once it expires (last renewal at t=2 + 3s lease = t=5).
  EXPECT_FALSE(disk.Owner(Seconds(5)).has_value());
  EXPECT_TRUE(disk.TryClaim(2, Seconds(6)));
  EXPECT_EQ(disk.Owner(Seconds(7)).value_or(kInvalidNode), 2);
}

TEST(QuorumDiskTest, TornLeaseRecordIsTreatedAsUnowned) {
  KvStore store;
  QuorumDisk disk(&store, Seconds(3));
  ASSERT_TRUE(disk.TryClaim(1, Seconds(0)));
  store.Put("qdisk/lease", "garbage");
  EXPECT_FALSE(disk.Owner(Seconds(1)).has_value());
  EXPECT_TRUE(disk.TryClaim(2, Seconds(1)));
}

// ---------- membership / regroup --------------------------------------------------------

class MembershipFixture : public ::testing::Test {
 protected:
  MembershipFixture() : san_(&sim_, SanConfig{}) {}

  void AddVoters(int count, MembershipService* membership) {
    for (NodeId node = 0; node < count; ++node) {
      san_.AddNode(node);
      membership->SetVotes(node, 1);
    }
  }

  Simulator sim_;
  San san_;
  KvStore disk_store_;
};

TEST_F(MembershipFixture, StrictMajorityWinsWithoutDisk) {
  MembershipService membership(&san_, nullptr);
  AddVoters(3, &membership);
  san_.SetPartition(2, 1);  // Node 2 alone vs {0, 1}.

  MembershipView majority = membership.Regroup(0, Seconds(1));
  EXPECT_TRUE(majority.quorate);
  EXPECT_EQ(majority.votes_held, 2);
  EXPECT_EQ(majority.votes_total, 3);

  MembershipView minority = membership.Regroup(2, Seconds(1));
  EXPECT_FALSE(minority.quorate);
  EXPECT_EQ(minority.votes_held, 1);

  san_.HealPartitions();
  MembershipView healed = membership.Regroup(2, Seconds(2));
  EXPECT_TRUE(healed.quorate);
  EXPECT_EQ(healed.votes_held, 3);
  // Every view change appended a transition line.
  EXPECT_GE(membership.transitions().size(), 3u);
}

// The two-node symmetric partition: both sides hold exactly half the votes; the
// side holding the disk lease wins, the other demotes.
TEST_F(MembershipFixture, TwoNodeTieGoesToTheDiskOwner) {
  QuorumDisk disk(&disk_store_, Seconds(3));
  MembershipService membership(&san_, &disk);
  AddVoters(2, &membership);

  // Node 0 is the incumbent leader: its renewing regroup claims the disk.
  MembershipView before = membership.Regroup(0, Seconds(1), /*renew=*/true);
  EXPECT_TRUE(before.quorate);
  ASSERT_EQ(disk.Owner(Seconds(1)).value_or(kInvalidNode), 0);

  san_.SetPartition(1, 1);  // Symmetric 1-vote vs 1-vote split.

  MembershipView owner_side = membership.Regroup(0, Seconds(2), /*renew=*/true);
  EXPECT_TRUE(owner_side.tie);
  EXPECT_TRUE(owner_side.tie_won_by_disk);
  EXPECT_TRUE(owner_side.quorate);

  // The loser: its lease claim bounces off node 0's live lease, and the
  // read-only arbitration sees an owner it cannot reach.
  MembershipView loser_renew = membership.Regroup(1, Seconds(2), /*renew=*/true);
  EXPECT_TRUE(loser_renew.tie);
  EXPECT_FALSE(loser_renew.quorate);
  MembershipView loser_gate = membership.Regroup(1, Seconds(2));
  EXPECT_FALSE(loser_gate.quorate);

  // Heal: both sides see 2/2 votes again and are quorate outright.
  san_.HealPartitions();
  EXPECT_TRUE(membership.Regroup(0, Seconds(3), /*renew=*/true).quorate);
  EXPECT_TRUE(membership.Regroup(1, Seconds(3)).quorate);
}

// A dead incumbent's unexpired lease still blocks the challenger (the disk
// cannot tell dead from partitioned); the challenger claims after expiry.
TEST_F(MembershipFixture, ChallengerClaimsOnlyAfterLeaseExpiry) {
  QuorumDisk disk(&disk_store_, Seconds(3));
  MembershipService membership(&san_, &disk);
  AddVoters(2, &membership);
  ASSERT_TRUE(membership.Regroup(0, Seconds(10), /*renew=*/true).quorate);

  san_.SetNodeUp(0, false);  // Incumbent dies; lease runs to t=13.

  MembershipView blocked = membership.Regroup(1, Seconds(11), /*renew=*/true);
  EXPECT_TRUE(blocked.tie);
  EXPECT_FALSE(blocked.quorate);

  MembershipView claimed = membership.Regroup(1, Seconds(14), /*renew=*/true);
  EXPECT_TRUE(claimed.tie);
  EXPECT_TRUE(claimed.tie_won_by_disk);
  EXPECT_TRUE(claimed.quorate);
  EXPECT_EQ(disk.Owner(Seconds(14)).value_or(kInvalidNode), 1);

  // The old incumbent restarts: it is back in the member set, and the majority
  // (2/2, no tie) is quorate from both vantages — rejoin is clean.
  san_.SetNodeUp(0, true);
  EXPECT_TRUE(membership.Regroup(0, Seconds(15)).quorate);
  EXPECT_TRUE(membership.Regroup(1, Seconds(15), /*renew=*/true).quorate);
}

// ---------- system-level: degrade, fence, failover --------------------------------------

// A manager partitioned into a strict minority degrades to read-only instead of
// acting on stale state; the majority fences it (STONITH) and promotes a
// successor; after the heal exactly one manager remains.
TEST(QuorumSystemTest, MinorityManagerDegradesThenIsFencedByMajority) {
  Logger::Get().set_min_level(LogLevel::kNone);
  TranSendOptions options = DefaultTranSendOptions();
  options.topology.worker_pool_nodes = 4;
  TranSendService service(options);
  service.Start();
  service.sim()->RunFor(Seconds(3));

  SnsSystem* system = service.system();
  ManagerProcess* incumbent = system->manager();
  ASSERT_NE(incumbent, nullptr);
  NodeId manager_node = incumbent->node();

  FailureInjector injector(system->cluster(), system->san());
  SimTime now = service.sim()->now();
  injector.PartitionAt(now + Seconds(1), {manager_node}, now + Seconds(20));

  // Within a couple of beacon periods the incumbent has regrouped, found itself
  // in a 1-vote minority, and degraded — before the majority's watchdogs fire.
  service.sim()->RunFor(Seconds(3));
  ASSERT_NE(system->cluster()->Find(incumbent->pid()), nullptr);
  EXPECT_TRUE(incumbent->read_only_degraded());
  EXPECT_GE(incumbent->quorum_losses(), 1);

  // The majority side detects beacon silence, shoots the incumbent through the
  // fence device, and promotes epoch 2. No split-brain window at all.
  service.sim()->RunFor(Seconds(10));
  EXPECT_GE(system->metrics()->GetCounter("fencing.kills")->value(), 1);
  std::vector<ManagerProcess*> during = LiveManagers(system);
  ASSERT_EQ(during.size(), 1u);
  EXPECT_EQ(during[0]->epoch(), 2u);

  // Post-heal: still exactly one manager, and it holds quorum.
  service.sim()->RunFor(Seconds(15));
  std::vector<ManagerProcess*> after = LiveManagers(system);
  ASSERT_EQ(after.size(), 1u);
  EXPECT_EQ(after[0]->epoch(), 2u);
  EXPECT_FALSE(after[0]->read_only_degraded());
}

// The symmetric 50/50 split at system level: the disk-owning side (the
// incumbent manager renews the lease with every beacon) keeps serving; the
// minority side's watchdogs are refused promotion, so the cluster never grows a
// second manager; the stranded profile DB is fenced before its successor
// recovers the WAL, and no write is acknowledged from the losing side.
TEST(QuorumSystemTest, SymmetricPartitionResolvesTowardDiskOwner) {
  Logger::Get().set_min_level(LogLevel::kNone);
  TranSendOptions options = DefaultTranSendOptions();
  options.topology.worker_pool_nodes = 5;
  options.topology.front_ends = 2;
  options.topology.cache_nodes = 2;
  TranSendService service(options);
  service.Start();
  service.sim()->RunFor(Seconds(3));

  SnsSystem* system = service.system();
  // 12 voting nodes: manager, 2 FEs, 2 caches, the DB, origin, 5 workers. Split
  // the DB, one FE, one cache, and three workers (6 votes) away from the
  // manager's side (6 votes): an exact tie, broken by the manager's quorum-disk
  // lease.
  ASSERT_EQ(system->membership()->votes_total(), 12);
  ProfileDbProcess* db = system->profile_db();
  ASSERT_NE(db, nullptr);
  uint64_t first_generation = db->generation();
  std::vector<NodeId> minority = {db->node(), system->fe_nodes()[1],
                                  system->cache_node_processes()[1]->node(),
                                  system->worker_pool()[0], system->worker_pool()[1],
                                  system->worker_pool()[2]};

  FailureInjector injector(system->cluster(), system->san());
  SimTime now = service.sim()->now();
  injector.PartitionAt(now + Seconds(1), minority, now + Seconds(25));

  // Profile writes flow throughout the split; unique user per write so
  // durability of every acked value is decidable afterwards.
  int64_t write_seq = 0;
  std::vector<std::string> acked_users;
  PlaybackConfig writer_config;
  writer_config.seed = 0x3717;
  writer_config.request_timeout = Seconds(6);
  writer_config.on_response = [&acked_users](const std::string& user, bool ok) {
    if (ok) {
      acked_users.push_back(user);
    }
  };
  PlaybackEngine* writer = service.AddPlaybackEngine(writer_config);
  writer->StartConstantRate(2.0, [&write_seq] {
    TraceRecord record;
    record.user_id = StrFormat("tie%lld", static_cast<long long>(write_seq));
    record.params["set_qpref"] = StrFormat("v%lld", static_cast<long long>(write_seq));
    record.url = "http://site0.example.edu/obj0.jpg";
    ++write_seq;
    return record;
  });

  service.sim()->RunFor(Seconds(15));
  // Mid-partition: the tie resolved toward the incumbent — one manager, epoch 1,
  // still quorate; the stranded DB was fenced and a successor generation
  // recovered the WAL on the majority side.
  std::vector<ManagerProcess*> during = LiveManagers(system);
  ASSERT_EQ(during.size(), 1u);
  EXPECT_EQ(during[0]->epoch(), 1u);
  EXPECT_FALSE(during[0]->read_only_degraded());
  EXPECT_GE(system->metrics()->GetCounter("fencing.kills")->value(), 1);
  ASSERT_NE(system->profile_db(), nullptr);
  EXPECT_GT(system->profile_db()->generation(), first_generation);

  service.sim()->RunFor(Seconds(30));
  writer->StopLoad();
  service.sim()->RunFor(Seconds(10));

  // The losing side never acknowledged a write, and every write the client saw
  // acknowledged is in the ACID store with the acknowledged value.
  EXPECT_EQ(system->metrics()->GetCounter("profiledb.writes_nonquorate")->value(), 0);
  EXPECT_GT(acked_users.size(), 0u);
  for (const std::string& user : acked_users) {
    auto record = system->profile_store()->Get(user);
    ASSERT_TRUE(record.has_value()) << "acked write for " << user << " lost";
    auto profile = UserProfile::Deserialize(user, *record);
    ASSERT_TRUE(profile.ok());
    EXPECT_EQ(profile->GetOr("qpref", ""), "v" + user.substr(3));
  }

  // Heal rejoined cleanly: one manager (epoch 1 — no failover ever happened),
  // one DB incarnation.
  std::vector<ManagerProcess*> after = LiveManagers(system);
  ASSERT_EQ(after.size(), 1u);
  EXPECT_EQ(after[0]->epoch(), 1u);
  EXPECT_EQ(LiveProfileDbProcesses(system).size(), 1u);
}

// ---------- chaos campaign with the §14 invariants --------------------------------------

CampaignConfig QuorumCampaignConfig() {
  CampaignConfig config;
  config.gen.horizon = Seconds(30);
  config.gen.min_events = 2;
  config.gen.max_events = 5;
  config.gen.min_outage = Seconds(5);
  config.gen.max_outage = Seconds(15);
  // Bias the mix toward the faults this PR is about: partitions (fenced
  // failovers) and profile-DB crashes/partitions.
  config.gen.kind_weights = {1.0, 1.0, 1.0, 1.0, 1.0, 2.0, 1.0, 1.0, 1.0, 2.0, 2.0};
  config.warmup = Seconds(10);
  config.quiesce_settle = Seconds(20);
  return config;
}

// The acceptance campaign for the §14 contract: 20 seeds, R=2 caches, fault mix
// including partitions and fenced failovers; zero acked-write loss and zero
// minority-side acks across every schedule.
TEST(QuorumCampaignTest, TwentySeedsZeroAckedWriteLoss) {
  Logger::Get().set_min_level(LogLevel::kNone);
  CampaignResult result = RunCampaign(0x9D15C, 20, QuorumCampaignConfig());
  std::string failures;
  int64_t fence_kills = 0;
  int64_t writes_acked = 0;
  for (const ChaosRunResult& run : result.runs) {
    if (!run.passed()) {
      failures += run.Describe() + run.trace;
    }
    EXPECT_EQ(run.writes_lost, 0) << run.Describe();
    EXPECT_EQ(run.nonquorate_writes, 0) << run.Describe();
    fence_kills += run.fence_kills;
    writes_acked += run.writes_acked;
  }
  EXPECT_EQ(result.failed, 0) << result.Summary() << failures;
  EXPECT_GT(fence_kills, 0) << "campaign never exercised a fenced failover";
  EXPECT_GT(writes_acked, 0) << "campaign never acknowledged a profile write";
}

// Cross-feature campaign: the quorum/durability invariants (6-8) and the
// replicated-cache-tier convergence invariant (5) exercised by the same 20
// schedules, at R=3 with the fault mix biased toward cache-node crashes on top
// of the partition/DB faults above. Replica-chain rebalances triggered by
// cache deaths must converge at quiesce even when the same schedule is
// simultaneously fencing managers and failing over the profile DB — the two
// subsystems share the SAN and the membership beacons, so this composition is
// where independent per-feature campaigns have a blind spot.
TEST(QuorumCampaignTest, TwentySeedsCacheReplicationThreeConverges) {
  Logger::Get().set_min_level(LogLevel::kNone);
  CampaignConfig config = QuorumCampaignConfig();
  config.cache_replication = 3;
  config.cache_nodes = 3;
  // Keep the quorum-heavy mix but make every schedule likely to kill caches.
  config.gen.kind_weights = {1.0, 1.0, 1.0, 3.0, 1.0, 2.0, 1.0, 1.0, 1.0, 2.0, 2.0};
  CampaignResult result = RunCampaign(0xCAC3E3, 20, config);
  std::string failures;
  int64_t cache_faults = 0;
  for (const ChaosRunResult& run : result.runs) {
    if (!run.passed()) {
      failures += run.Describe() + run.trace;
    }
    EXPECT_EQ(run.writes_lost, 0) << run.Describe();
    EXPECT_EQ(run.nonquorate_writes, 0) << run.Describe();
    for (const FaultEvent& ev : run.schedule.events) {
      if (ev.kind == FaultKind::kCrashCacheNode) {
        ++cache_faults;
      }
    }
  }
  EXPECT_EQ(result.failed, 0) << result.Summary() << failures;
  EXPECT_GT(cache_faults, 0) << "campaign never crashed a cache node";
}

// The regression the tentpole exists to prevent: with quorum, STONITH, and the
// write-ack contract all off (the PR 3 baseline), partitioning the profile DB
// while writes flow loses acknowledged writes — the front end fire-and-forgets
// the put and tells the client Ok while the SAN drops the message. The failing
// schedule minimizes to the single partition event, and the same schedule
// passes with the contract on.
TEST(QuorumRegressionTest, BaselineLosesAckedWritesAndMinimizes) {
  Logger::Get().set_min_level(LogLevel::kNone);
  CampaignConfig baseline = QuorumCampaignConfig();
  baseline.quorum_membership = false;
  baseline.stonith_fencing = false;
  baseline.profile_write_acks = false;

  FaultSchedule schedule;
  schedule.seed = 0xFA15EACC;
  FaultEvent noise;
  noise.at = Seconds(2);
  noise.kind = FaultKind::kCrashWorker;
  schedule.events.push_back(noise);
  FaultEvent split;
  split.at = Seconds(5);
  split.kind = FaultKind::kPartitionProfileDb;
  split.duration = Seconds(15);
  schedule.events.push_back(split);

  ChaosRunResult run = RunSchedule(schedule, baseline);
  EXPECT_FALSE(run.passed()) << "baseline unexpectedly held the write contract";
  EXPECT_GT(run.writes_lost, 0) << run.Describe() << run.trace;
  bool durability_violated = false;
  for (const InvariantViolation& v : run.report.violations) {
    if (v.invariant == "acked-write-durable") {
      durability_violated = true;
    }
  }
  EXPECT_TRUE(durability_violated) << run.report.ToString();

  // The minimizer strips the worker-crash noise: the partition alone loses writes.
  MinimizeResult minimized = MinimizeSchedule(schedule, baseline, /*max_runs=*/12);
  EXPECT_TRUE(minimized.still_fails);
  ASSERT_EQ(minimized.minimal.events.size(), 1u) << minimized.Repro();
  EXPECT_EQ(minimized.minimal.events[0].kind, FaultKind::kPartitionProfileDb);

  // Control: the identical schedule under the shipped defaults holds the
  // contract — unacked writes may be lost, acknowledged ones never.
  ChaosRunResult fixed = RunSchedule(schedule, QuorumCampaignConfig());
  EXPECT_TRUE(fixed.passed()) << fixed.Describe() << fixed.trace;
  EXPECT_EQ(fixed.writes_lost, 0);
  EXPECT_EQ(fixed.nonquorate_writes, 0);
}

}  // namespace
}  // namespace sns
