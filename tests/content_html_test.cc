// Tests for HTML generation, scanning, the TranSend munger, and keyword
// highlighting.

#include <gtest/gtest.h>

#include "src/content/html.h"
#include "src/content/mime.h"

namespace sns {
namespace {

TEST(MimeTest, FromUrl) {
  EXPECT_EQ(MimeTypeFromUrl("http://x/a.html"), MimeType::kHtml);
  EXPECT_EQ(MimeTypeFromUrl("http://x/a.HTM"), MimeType::kHtml);
  EXPECT_EQ(MimeTypeFromUrl("http://x/dir/"), MimeType::kHtml);
  EXPECT_EQ(MimeTypeFromUrl("http://x/a.gif"), MimeType::kGif);
  EXPECT_EQ(MimeTypeFromUrl("http://x/a.JPG"), MimeType::kJpeg);
  EXPECT_EQ(MimeTypeFromUrl("http://x/a.jpeg?b=1"), MimeType::kJpeg);
  EXPECT_EQ(MimeTypeFromUrl("http://x/a.tar"), MimeType::kOther);
  EXPECT_STREQ(MimeTypeName(MimeType::kGif), "image/gif");
}

TEST(HtmlGenTest, GeneratedPageHasRequestedStructure) {
  Rng rng(21);
  HtmlGenOptions options;
  options.paragraphs = 4;
  options.inline_images = 3;
  options.links = 2;
  std::string page = GenerateHtmlPage(&rng, options);
  EXPECT_NE(page.find("<html>"), std::string::npos);
  EXPECT_EQ(ExtractImageRefs(page).size(), 3u);
  EXPECT_LE(ExtractLinks(page).size(), 2u);
}

TEST(HtmlGenTest, DeterministicForSeed) {
  Rng a(5);
  Rng b(5);
  HtmlGenOptions options;
  EXPECT_EQ(GenerateHtmlPage(&a, options), GenerateHtmlPage(&b, options));
}

TEST(HtmlScanTest, ParsesAttributesWithMixedQuoting) {
  std::string html = "<img src=\"a.gif\" alt='pic' width=40><a HREF=\"x.html\">t</a>";
  auto tags = ScanTags(html);
  ASSERT_EQ(tags.size(), 3u);
  EXPECT_EQ(tags[0].name, "img");
  EXPECT_EQ(TagAttr(tags[0], "src"), "a.gif");
  EXPECT_EQ(TagAttr(tags[0], "alt"), "pic");
  EXPECT_EQ(TagAttr(tags[0], "width"), "40");
  EXPECT_EQ(tags[1].name, "a");
  EXPECT_EQ(TagAttr(tags[1], "href"), "x.html");  // Attribute names lowercased.
  EXPECT_EQ(tags[2].name, "/a");
}

TEST(HtmlScanTest, ToleratesStrayAngleBracket) {
  std::string html = "a < b and <b>bold</b>";
  auto tags = ScanTags(html);
  // "< b and <b>" parses as one weird tag, then "/b"; no crash, no hang.
  EXPECT_GE(tags.size(), 1u);
  EXPECT_EQ(StripTags("<p>x</p>"), " x ");
}

TEST(HtmlScanTest, StripTagsKeepsText) {
  std::string text = StripTags("<html><body><h1>Title</h1><p>hello world</p></body></html>");
  EXPECT_NE(text.find("Title"), std::string::npos);
  EXPECT_NE(text.find("hello world"), std::string::npos);
  EXPECT_EQ(text.find("<"), std::string::npos);
}

TEST(MungeTest, AddsToolbarAfterBody) {
  std::string html = "<html><body><p>content</p></body></html>";
  MungeOptions options;
  std::string munged = MungeHtml(html, options);
  size_t body = munged.find("<body>");
  size_t toolbar = munged.find("transend-toolbar");
  ASSERT_NE(toolbar, std::string::npos);
  EXPECT_LT(body, toolbar);
  EXPECT_LT(toolbar, munged.find("<p>content</p>"));
}

TEST(MungeTest, RewritesImageSrcsThroughProxyWithOriginalLinks) {
  std::string html = "<body><img src=\"http://cnn.com/pic.gif\" alt=\"x\"></body>";
  MungeOptions options;
  std::string munged = MungeHtml(html, options);
  EXPECT_NE(munged.find(options.proxy_prefix + "http://cnn.com/pic.gif"), std::string::npos);
  EXPECT_NE(munged.find("<a href=\"http://cnn.com/pic.gif\">[original]</a>"),
            std::string::npos);
  EXPECT_NE(munged.find("alt=\"x\""), std::string::npos);  // Other attrs preserved.
}

TEST(MungeTest, OptionsDisableFeatures) {
  std::string html = "<body><img src=\"a.gif\"></body>";
  MungeOptions options;
  options.add_toolbar = false;
  options.add_original_links = false;
  std::string munged = MungeHtml(html, options);
  EXPECT_EQ(munged.find("transend-toolbar"), std::string::npos);
  EXPECT_EQ(munged.find("[original]"), std::string::npos);
  EXPECT_NE(munged.find(options.proxy_prefix), std::string::npos);
}

TEST(MungeTest, PageWithoutBodyGetsToolbarAtTop) {
  std::string munged = MungeHtml("<p>bare fragment</p>", MungeOptions{});
  ASSERT_NE(munged.find("transend-toolbar"), std::string::npos);
  EXPECT_LT(munged.find("transend-toolbar"), munged.find("bare fragment"));
}

TEST(HighlightTest, WrapsWholeWordsCaseInsensitively) {
  std::string html = "<p>Cluster clusters CLUSTER</p>";
  std::string out = HighlightKeyword(html, "cluster", "<b>", "</b>");
  EXPECT_NE(out.find("<b>Cluster</b>"), std::string::npos);
  EXPECT_NE(out.find("<b>CLUSTER</b>"), std::string::npos);
  // "clusters" is a different word: not wrapped.
  EXPECT_EQ(out.find("<b>clusters</b>"), std::string::npos);
}

TEST(HighlightTest, SkipsTextInsideTags) {
  std::string html = "<a href=\"cluster.html\">cluster</a>";
  std::string out = HighlightKeyword(html, "cluster", "<b>", "</b>");
  EXPECT_NE(out.find("href=\"cluster.html\""), std::string::npos);  // Untouched.
  EXPECT_NE(out.find("<b>cluster</b>"), std::string::npos);
}

TEST(HighlightTest, EmptyKeywordIsIdentity) {
  std::string html = "<p>x</p>";
  EXPECT_EQ(HighlightKeyword(html, "", "<b>", "</b>"), html);
}

}  // namespace
}  // namespace sns
