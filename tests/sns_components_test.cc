// Component-level tests of the SNS layer on a minimal live system: manager soft
// state and spawning, worker stub behavior, cache nodes, the profile DB, and the
// monitor.

#include <gtest/gtest.h>

#include "src/services/transend/transend.h"
#include "src/sns/worker_process.h"
#include "src/util/logging.h"

namespace sns {
namespace {

TranSendOptions TinyOptions() {
  TranSendOptions options = DefaultTranSendOptions();
  options.topology.worker_pool_nodes = 4;
  options.topology.cache_nodes = 2;
  options.universe.url_count = 100;
  return options;
}

TEST(ManagerTest, WorkersRegisterViaBeaconsAndAppearInHints) {
  TranSendService service(TinyOptions());
  service.Start();
  service.system()->StartWorker(kJpegDistillerType);
  service.system()->StartWorker(kGifDistillerType);
  service.sim()->RunFor(Seconds(3));

  ManagerProcess* manager = service.system()->manager();
  ASSERT_NE(manager, nullptr);
  EXPECT_EQ(manager->KnownWorkerCount(), 2u);
  EXPECT_EQ(manager->KnownWorkerCount(kJpegDistillerType), 1u);
  EXPECT_GT(manager->beacons_sent(), 1);
  EXPECT_GT(manager->reports_received(), 0);
}

TEST(ManagerTest, DeadWorkerExpiresFromSoftState) {
  Logger::Get().set_min_level(LogLevel::kNone);
  TranSendService service(TinyOptions());
  service.Start();
  service.system()->StartWorker(kJpegDistillerType);
  service.sim()->RunFor(Seconds(3));
  ASSERT_EQ(service.system()->manager()->KnownWorkerCount(), 1u);

  auto workers = service.system()->live_workers(kJpegDistillerType);
  service.system()->cluster()->Crash(workers[0]->pid());
  // Lease (worker_ttl = 3 s) expires without any report.
  service.sim()->RunFor(Seconds(6));
  EXPECT_EQ(service.system()->manager()->KnownWorkerCount(), 0u);
}

TEST(ManagerTest, SpawnRequestCreatesMissingWorkerType) {
  TranSendService service(TinyOptions());
  service.Start();
  service.sim()->RunFor(Seconds(2));
  EXPECT_TRUE(service.system()->live_workers(kHtmlDistillerType).empty());

  // Simulate a front end asking for a missing type.
  FrontEndProcess* fe = service.system()->front_end(0);
  ASSERT_NE(fe, nullptr);
  // Drive through the real path: a client request for an HTML page.
  PlaybackEngine* client = service.AddPlaybackEngine();
  TraceRecord record;
  record.user_id = "u";
  record.url = "http://site0.example.edu/obj1.html";
  client->SendRequest(record);
  service.sim()->RunFor(Seconds(140));
  EXPECT_FALSE(service.system()->live_workers(kHtmlDistillerType).empty());
}

TEST(ManagerTest, PlacementAvoidsInfrastructureNodes) {
  TranSendService service(TinyOptions());
  service.Start();
  PlaybackEngine* client = service.AddPlaybackEngine();
  service.sim()->RunFor(Seconds(2));
  TraceRecord record;
  record.user_id = "u";
  record.url = "http://site0.example.edu/obj2.jpg";
  client->SendRequest(record);
  service.sim()->RunFor(Seconds(140));

  for (WorkerProcess* worker : service.system()->live_workers()) {
    NodeId node = worker->node();
    EXPECT_TRUE(service.system()->cluster()->WorkersAllowed(node));
    EXPECT_NE(node, service.system()->manager_node());
  }
}

TEST(ManagerTest, OverflowPoolUsedOnlyWhenDedicatedExhausted) {
  Logger::Get().set_min_level(LogLevel::kNone);
  TranSendOptions options = TinyOptions();
  options.topology.worker_pool_nodes = 1;
  options.topology.overflow_nodes = 2;
  TranSendService service(options);
  service.Start();
  service.sim()->RunFor(Seconds(2));

  ManagerProcess* manager = service.system()->manager();
  ASSERT_NE(manager, nullptr);
  // First worker lands on the dedicated node.
  service.system()->StartWorker(kJpegDistillerType);
  service.sim()->RunFor(Seconds(2));
  auto workers = service.system()->live_workers();
  ASSERT_EQ(workers.size(), 1u);
  EXPECT_FALSE(service.system()->cluster()->IsOverflowNode(workers[0]->node()));
}

TEST(ManagerTest, NoWorkerNodesFallsBackToApproximateAnswer) {
  // BASE end to end: with nowhere to spawn distillers, the request is still
  // answered — with the original content ("an approximate answer delivered
  // quickly is more useful than the exact answer delivered slowly", §3.1.8).
  Logger::Get().set_min_level(LogLevel::kNone);
  TranSendOptions options = TinyOptions();
  options.topology.worker_pool_nodes = 0;  // No capacity for workers at all.
  options.sns.task_retries = 0;
  TranSendService service(options);
  service.Start();
  PlaybackEngine* client = service.AddPlaybackEngine();
  service.sim()->RunFor(Seconds(2));

  std::string url;
  for (int64_t i = 0; i < service.universe()->url_count(); ++i) {
    std::string candidate = service.universe()->UrlAt(i);
    if (service.universe()->MimeOf(candidate) == MimeType::kJpeg &&
        service.universe()->ModeledSize(candidate) > 4096) {
      url = candidate;
      break;
    }
  }
  ASSERT_FALSE(url.empty());
  TraceRecord record;
  record.user_id = "fallback";
  record.url = url;
  client->SendRequest(record);
  service.sim()->RunFor(Seconds(150));

  ASSERT_EQ(client->completed(), 1);
  EXPECT_EQ(client->errors(), 0);
  auto sources = client->responses_by_source();
  EXPECT_EQ(sources["approximate"], 1);
  // The user got the ORIGINAL bytes, undistilled.
  EXPECT_GE(client->bytes_received(), service.universe()->ModeledSize(url));
}

TEST(WorkerProcessTest, QueuesTasksFifoAndReportsLoad) {
  TranSendService service(TinyOptions());
  service.Start();
  ProcessId pid = service.system()->StartWorker(kJpegDistillerType);
  ASSERT_NE(pid, kInvalidProcess);
  service.sim()->RunFor(Seconds(3));

  auto* worker = dynamic_cast<WorkerProcess*>(service.system()->cluster()->Find(pid));
  ASSERT_NE(worker, nullptr);
  EXPECT_EQ(worker->worker_type(), kJpegDistillerType);
  EXPECT_EQ(worker->QueueLength(), 0.0);
  EXPECT_GT(service.system()->manager()->reports_received(), 0);
}

TEST(CacheNodeTest, StoresAndServesContent) {
  TranSendService service(TinyOptions());
  service.Start();
  PlaybackEngine* client = service.AddPlaybackEngine();
  service.sim()->RunFor(Seconds(2));

  TraceRecord record;
  record.user_id = "u";
  record.url = service.universe()->UrlAt(3);
  client->SendRequest(record);
  service.sim()->RunFor(Seconds(140));
  ASSERT_EQ(client->completed(), 1);

  int64_t cached_bytes = 0;
  for (CacheNodeProcess* cache : service.system()->cache_node_processes()) {
    cached_bytes += cache->used_bytes();
  }
  EXPECT_GT(cached_bytes, 0);  // The original (and maybe variant) were injected.
}

TEST(CacheNodeTest, CrashLosesDataButServiceRegenerates) {
  // "All cached data can be thrown away at the cost of performance" (§3.1.5).
  Logger::Get().set_min_level(LogLevel::kNone);
  TranSendService service(TinyOptions());
  service.Start();
  PlaybackEngine* client = service.AddPlaybackEngine();
  service.sim()->RunFor(Seconds(2));

  TraceRecord record;
  record.user_id = "u";
  record.url = service.universe()->UrlAt(5);
  client->SendRequest(record);
  service.sim()->RunFor(Seconds(140));
  ASSERT_EQ(client->completed(), 1);

  for (CacheNodeProcess* cache : service.system()->cache_node_processes()) {
    service.system()->cluster()->Crash(cache->pid());
  }
  client->SendRequest(record);
  service.sim()->RunFor(Seconds(140));
  EXPECT_EQ(client->completed(), 2);  // Re-fetched from the origin.
  EXPECT_EQ(client->errors(), 0);
}

TEST(ProfileDbTest, ProfilesDriveDistillationParameters) {
  TranSendService service(TinyOptions());
  UserProfile lo("lowuser");
  lo.Set("quality", "low");
  service.system()->SeedProfile(lo);
  UserProfile hi("highuser");
  hi.Set("quality", "high");
  service.system()->SeedProfile(hi);
  service.Start();
  PlaybackEngine* client = service.AddPlaybackEngine();
  service.sim()->RunFor(Seconds(2));

  // Find a large opaque JPEG so the reduction model applies cleanly.
  std::string url;
  for (int64_t i = 0; i < service.universe()->url_count(); ++i) {
    std::string candidate = service.universe()->UrlAt(i);
    if (service.universe()->MimeOf(candidate) == MimeType::kJpeg &&
        service.universe()->ModeledSize(candidate) > 8192) {
      url = candidate;
      break;
    }
  }
  ASSERT_FALSE(url.empty());

  TraceRecord low_record{0, "lowuser", url, {}};
  client->SendRequest(low_record);
  service.sim()->RunFor(Seconds(140));
  int64_t low_bytes = client->bytes_received();
  ASSERT_EQ(client->completed(), 1);

  TraceRecord high_record{0, "highuser", url, {}};
  client->SendRequest(high_record);
  service.sim()->RunFor(Seconds(30));
  ASSERT_EQ(client->completed(), 2);
  int64_t high_bytes = client->bytes_received() - low_bytes;
  // "low" (scale 4, q10) must be much smaller than "high" (scale 1, q50).
  EXPECT_LT(low_bytes * 3, high_bytes);
  EXPECT_GT(service.system()->profile_db()->reads(), 0);
}

TEST(ProfileDbTest, SurvivesCrashViaWalRecovery) {
  Logger::Get().set_min_level(LogLevel::kNone);
  TranSendService service(TinyOptions());
  UserProfile profile("durable-user");
  profile.Set("quality", "low");
  service.system()->SeedProfile(profile);
  service.Start();
  service.sim()->RunFor(Seconds(2));

  // Crash the DB process; the KvStore (the "disk") persists; respawn recovers.
  ProfileDbProcess* db = service.system()->profile_db();
  ASSERT_NE(db, nullptr);
  service.system()->cluster()->Crash(db->pid());
  service.system()->profile_store()->SimulateCrash();
  auto recovered = service.system()->profile_store()->Recover();
  ASSERT_TRUE(recovered.ok());
  auto stored = service.system()->profile_store()->Get("durable-user");
  ASSERT_TRUE(stored.has_value());
  auto parsed = UserProfile::Deserialize("durable-user", *stored);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->GetOr("quality", ""), "low");
}

TEST(MonitorTest, TracksComponentsAndAlarmsOnSilence) {
  Logger::Get().set_min_level(LogLevel::kNone);
  TranSendService service(TinyOptions());
  service.Start();
  service.system()->StartWorker(kJpegDistillerType);
  service.sim()->RunFor(Seconds(4));

  MonitorProcess* monitor = service.system()->monitor();
  ASSERT_NE(monitor, nullptr);
  EXPECT_GT(monitor->beacons_observed(), 0);
  EXPECT_GE(monitor->LiveComponentCount(), 2u);  // Manager + worker at least.
  std::string snapshot = monitor->RenderSnapshot();
  EXPECT_NE(snapshot.find("manager"), std::string::npos);
  EXPECT_NE(snapshot.find(kJpegDistillerType), std::string::npos);

  // Kill the worker: the monitor pages the operator when reports stop.
  int alarms_before = static_cast<int>(monitor->alarms().size());
  auto workers = service.system()->live_workers(kJpegDistillerType);
  service.system()->cluster()->Crash(workers[0]->pid());
  service.sim()->RunFor(Seconds(10));
  EXPECT_GT(static_cast<int>(monitor->alarms().size()), alarms_before);
}

// A worker whose instances are NOT interchangeable, like HotBot's statically
// partitioned search shards (§3.2).
class ShardWorker : public TaccWorker {
 public:
  std::string type() const override { return "search-shard"; }
  TaccResult Process(const TaccRequest& request) override {
    return TaccResult::Ok(request.inputs.empty() ? nullptr : request.input());
  }
  bool interchangeable() const override { return false; }
};

// Observes manager beacons (the same multicast the stubs use) and can forge a
// stub-style dead report, letting tests drive the manager's soft-state paths.
class BeaconProbe : public Process {
 public:
  BeaconProbe() : Process("beacon-probe") {}

  void OnStart() override { JoinGroup(kGroupManagerBeacon); }
  void OnStop() override { LeaveGroup(kGroupManagerBeacon); }
  void OnMessage(const Message& msg) override {
    if (msg.type == kMsgManagerBeacon) {
      last_beacon_ = static_cast<const ManagerBeaconPayload&>(*msg.payload);
      ++beacons_seen_;
    }
  }

  // Forges the report a front-end stub sends when it observes a worker dead
  // (broken connection): queue_length = -1.
  void SendDeadReport(const std::string& worker_type, const Endpoint& worker) {
    auto payload = std::make_shared<LoadReportPayload>();
    payload->kind = ComponentKind::kWorker;
    payload->worker_type = worker_type;
    payload->component = worker;
    payload->queue_length = -1;
    Message msg;
    msg.dst = last_beacon_.manager;
    msg.type = kMsgLoadReport;
    msg.transport = Transport::kDatagram;
    msg.size_bytes = 80;
    msg.payload = payload;
    Send(std::move(msg));
  }

  const ManagerBeaconPayload& last_beacon() const { return last_beacon_; }
  int64_t beacons_seen() const { return beacons_seen_; }

 private:
  ManagerBeaconPayload last_beacon_;
  int64_t beacons_seen_ = 0;
};

const WorkerHint* FindHint(const ManagerBeaconPayload& beacon, const Endpoint& worker) {
  for (const WorkerHint& hint : beacon.workers) {
    if (hint.endpoint == worker) {
      return &hint;
    }
  }
  return nullptr;
}

TEST(ManagerTest, ReregistrationPreservesAffinityClass) {
  // A non-interchangeable worker must stay non-interchangeable across every
  // (re-)registration path: the explicit register at startup, the beacon-triggered
  // re-register after a manager restart, and the implicit re-register via load
  // report after the manager dropped the entry (a dead report it believed).
  Logger::Get().set_min_level(LogLevel::kNone);
  TranSendService service(TinyOptions());
  service.system()->registry()->Register("search-shard",
                                         [] { return std::make_unique<ShardWorker>(); });
  service.Start();
  service.system()->StartWorker("search-shard");

  NodeConfig probe_node_config;
  probe_node_config.workers_allowed = false;
  NodeId probe_node = service.system()->cluster()->AddNode(probe_node_config);
  auto probe_owner = std::make_unique<BeaconProbe>();
  BeaconProbe* probe = probe_owner.get();
  service.system()->cluster()->Spawn(probe_node, std::move(probe_owner));

  service.sim()->RunFor(Seconds(3));
  auto shards = service.system()->live_workers("search-shard");
  ASSERT_EQ(shards.size(), 1u);
  Endpoint shard_ep = shards[0]->endpoint();

  // Explicit registration at startup.
  ASSERT_GT(probe->beacons_seen(), 0);
  const WorkerHint* hint = FindHint(probe->last_beacon(), shard_ep);
  ASSERT_NE(hint, nullptr);
  EXPECT_FALSE(hint->interchangeable);

  // Manager restart: the worker re-registers when it sees the new incarnation's
  // first beacon (no recovery code, §3.1.3).
  ProcessId old_manager = service.system()->manager_pid();
  service.system()->cluster()->Crash(old_manager);
  service.sim()->RunFor(Seconds(15));
  ASSERT_NE(service.system()->manager(), nullptr);
  ASSERT_NE(service.system()->manager_pid(), old_manager);
  hint = FindHint(probe->last_beacon(), shard_ep);
  ASSERT_NE(hint, nullptr);
  EXPECT_FALSE(hint->interchangeable);

  // Implicit re-registration: a forged dead report makes the manager drop the
  // entry; the worker's next periodic load report re-creates it. The hint must
  // carry the worker's real affinity class, not the default.
  probe->SendDeadReport("search-shard", shard_ep);
  service.sim()->RunFor(Seconds(3));
  bool original_still_live = false;
  for (WorkerProcess* worker : service.system()->live_workers("search-shard")) {
    original_still_live = original_still_live || worker->endpoint() == shard_ep;
  }
  ASSERT_TRUE(original_still_live);
  hint = FindHint(probe->last_beacon(), shard_ep);
  ASSERT_NE(hint, nullptr);
  EXPECT_FALSE(hint->interchangeable);
}

// Records relaunch requests without actually starting anything, so the beacon
// silence persists and the throttle (not a fresh manager) is what limits calls.
class CountingLauncher : public ComponentLauncher {
 public:
  ProcessId LaunchWorker(const std::string&, NodeId) override { return kInvalidProcess; }
  ProcessId RelaunchManager(NodeId) override {
    ++manager_relaunches;
    return kInvalidProcess;
  }
  ProcessId RelaunchFrontEnd(int, NodeId) override { return kInvalidProcess; }
  ProcessId RelaunchProfileDb(NodeId) override { return kInvalidProcess; }

  int manager_relaunches = 0;
};

// Sends one hand-built manager beacon at startup, then goes silent forever.
class ForgedBeaconSender : public Process {
 public:
  ForgedBeaconSender() : Process("forged-beacon") {}
  void OnStart() override {
    auto payload = std::make_shared<ManagerBeaconPayload>();
    payload->manager = Endpoint{node(), 1};
    Message msg;
    msg.type = kMsgManagerBeacon;
    msg.transport = Transport::kDatagram;
    msg.size_bytes = WireSizeOf(*payload);
    msg.payload = payload;
    SendMulticast(kGroupManagerBeacon, std::move(msg));
  }
};

TEST(MonitorTest, SweepRestartsManagerOncePerSilenceWindow) {
  // The sweep runs every monitor_report_period (1 s), but a persistent silence
  // must trigger one relaunch attempt per silence window (manager_silence_restart
  // + report period = 5 s), not one per sweep — otherwise a dead launcher target
  // gets hammered every second.
  Logger::Get().set_min_level(LogLevel::kNone);
  Simulator sim;
  San san(&sim, SanConfig{});
  Cluster cluster(&sim, &san);
  NodeId node = cluster.AddNode();
  SnsConfig config;
  CountingLauncher launcher;
  auto owner = std::make_unique<MonitorProcess>(config, &launcher);
  MonitorProcess* monitor = owner.get();
  cluster.Spawn(node, std::move(owner));
  cluster.Spawn(node, std::make_unique<ForgedBeaconSender>());

  // Beacon lands just after t=0; the silence threshold is crossed at ~5 s and the
  // next 1 s sweep fires the first (and only) relaunch of that window.
  sim.RunFor(Seconds(7));
  EXPECT_EQ(launcher.manager_relaunches, 1);
  EXPECT_GE(monitor->beacons_observed(), 1);

  sim.RunFor(Seconds(3));  // t=10: well within the second window — still one.
  EXPECT_EQ(launcher.manager_relaunches, 1);

  sim.RunFor(Seconds(3));  // t=13: second window elapsed — exactly one more.
  EXPECT_EQ(launcher.manager_relaunches, 2);
}

TEST(MonitorTest, AlarmHandlerInvoked) {
  Logger::Get().set_min_level(LogLevel::kNone);
  TranSendService service(TinyOptions());
  service.Start();
  service.system()->StartWorker(kJpegDistillerType);
  service.sim()->RunFor(Seconds(4));
  std::vector<MonitorAlarm> pages;
  service.system()->monitor()->set_alarm_handler(
      [&pages](const MonitorAlarm& alarm) { pages.push_back(alarm); });
  auto workers = service.system()->live_workers(kJpegDistillerType);
  service.system()->cluster()->Crash(workers[0]->pid());
  service.sim()->RunFor(Seconds(10));
  ASSERT_FALSE(pages.empty());
  EXPECT_NE(pages[0].message.find("stopped reporting"), std::string::npos);
}

}  // namespace
}  // namespace sns
