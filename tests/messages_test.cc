// Tests for the SNS wire-message helpers and determinism of the whole stack.

#include <gtest/gtest.h>

#include "src/services/transend/transend.h"
#include "src/sns/messages.h"
#include "src/util/logging.h"

namespace sns {
namespace {

// ---------- names -----------------------------------------------------------------

TEST(MessageNamesTest, ComponentKindNamesAreDistinct) {
  std::set<std::string> names;
  for (ComponentKind kind :
       {ComponentKind::kManager, ComponentKind::kFrontEnd, ComponentKind::kWorker,
        ComponentKind::kCacheNode, ComponentKind::kProfileDb, ComponentKind::kMonitor,
        ComponentKind::kOrigin, ComponentKind::kClient}) {
    names.insert(ComponentKindName(kind));
  }
  EXPECT_EQ(names.size(), 8u);
}

TEST(MessageNamesTest, ResponseSourceNamesAreDistinct) {
  std::set<std::string> names;
  for (ResponseSource source :
       {ResponseSource::kDistilled, ResponseSource::kCacheOriginal,
        ResponseSource::kCacheApproximate, ResponseSource::kPassThrough,
        ResponseSource::kError}) {
    names.insert(ResponseSourceName(source));
  }
  EXPECT_EQ(names.size(), 5u);
}

TEST(EndpointTest, ValidityEqualityAndHash) {
  Endpoint a{1, 2};
  Endpoint b{1, 2};
  Endpoint c{1, 3};
  Endpoint invalid;
  EXPECT_TRUE(a.valid());
  EXPECT_FALSE(invalid.valid());
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EndpointHash hash;
  EXPECT_EQ(hash(a), hash(b));
  EXPECT_NE(hash(a), hash(c));
  EXPECT_EQ(a.ToString(), "n1:p2");
}

// ---------- wire sizes -----------------------------------------------------------------
// Serialization delays depend on these; the invariant that matters is that payload
// bytes dominate for content-carrying messages and headers stay small.

TEST(WireSizeTest, ContentBytesDominate) {
  auto content = Content::Make("u", MimeType::kJpeg, std::vector<uint8_t>(10000, 1));

  TaskRequestPayload task;
  task.inputs.push_back(content);
  EXPECT_GE(WireSizeOf(task), 10000);
  EXPECT_LE(WireSizeOf(task), 10000 + 512);

  TaskResponsePayload response;
  response.output = content;
  EXPECT_GE(WireSizeOf(response), 10000);

  CachePutPayload put;
  put.key = "k";
  put.content = content;
  EXPECT_GE(WireSizeOf(put), 10000);

  ClientResponsePayload client_response;
  client_response.content = content;
  EXPECT_GE(WireSizeOf(client_response), 10000);
}

TEST(WireSizeTest, ProfileAndArgsAreCounted) {
  TaskRequestPayload task;
  task.inputs.push_back(Content::Make("u", MimeType::kHtml, {}));
  int64_t base = WireSizeOf(task);
  task.profile.Set("keywords", std::string(500, 'k'));
  task.args["x"] = std::string(300, 'a');
  EXPECT_GE(WireSizeOf(task), base + 800);
}

TEST(WireSizeTest, BeaconGrowsWithHintTable) {
  ManagerBeaconPayload beacon;
  int64_t empty = WireSizeOf(beacon);
  for (int i = 0; i < 900; ++i) {
    WorkerHint hint;
    hint.endpoint = Endpoint{i, i};
    hint.worker_type = "distill-jpeg";
    beacon.workers.push_back(hint);
  }
  // §4.6: with 900 distillers the beacon is a substantial but bounded packet.
  EXPECT_GT(WireSizeOf(beacon), empty + 900 * 20);
  EXPECT_LT(WireSizeOf(beacon), 100000);
}

// ---------- whole-stack determinism ---------------------------------------------------
// The README's reproducibility claim: identical configuration and seeds produce
// bit-identical results, even through spawning, retries and lottery scheduling.

TEST(DeterminismTest, IdenticalRunsProduceIdenticalStats) {
  auto run_once = [] {
    Logger::Get().set_min_level(LogLevel::kNone);
    TranSendOptions options = DefaultTranSendOptions();
    options.universe.url_count = 60;
    options.logic.cache_distilled = false;
    options.topology.worker_pool_nodes = 4;
    TranSendService service(options);
    service.Start();
    PlaybackEngine* client = service.AddPlaybackEngine(0xD37);
    service.sim()->RunFor(Seconds(2));
    Rng rng(0xD37);
    ContentUniverse* universe = service.universe();
    client->StartConstantRate(15, [&rng, universe] {
      TraceRecord record;
      record.user_id = "det";
      record.url = universe->UrlAt(rng.UniformInt(0, universe->url_count() - 1));
      return record;
    });
    service.sim()->RunFor(Seconds(60));
    client->StopLoad();
    service.sim()->RunFor(Seconds(5));
    struct Result {
      int64_t sent;
      int64_t completed;
      int64_t bytes;
      double mean_latency;
      uint64_t events;
    };
    return Result{client->sent(), client->completed(), client->bytes_received(),
                  client->latency_stats().mean(), service.sim()->executed_events()};
  };
  auto a = run_once();
  auto b = run_once();
  EXPECT_EQ(a.sent, b.sent);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.bytes, b.bytes);
  EXPECT_DOUBLE_EQ(a.mean_latency, b.mean_latency);
  EXPECT_EQ(a.events, b.events);
}

}  // namespace
}  // namespace sns
