// SGIF: a GIF-like image codec — palette quantization + variable-width LZW.
//
// Stands in for the GIF files in the trace (50% of requests, paper §4.1). The format
// keeps GIF's essential properties: lossless given the palette, great on flat-color
// icons, mediocre on photos — which is why TranSend's GIF distiller converts photos
// to JPEG ("the JPEG representation is smaller and faster to operate on for most
// images", §3.1.6 footnote).

#ifndef SRC_CONTENT_GIF_CODEC_H_
#define SRC_CONTENT_GIF_CODEC_H_

#include <cstdint>
#include <vector>

#include "src/content/image.h"
#include "src/util/status.h"

namespace sns {

// Encodes with a median-cut palette of at most `palette_colors` (2..256).
std::vector<uint8_t> GifEncode(const RasterImage& image, int palette_colors = 256);

Result<RasterImage> GifDecode(const std::vector<uint8_t>& bytes);

// True if `bytes` starts with the SGIF magic.
bool IsGif(const std::vector<uint8_t>& bytes);

}  // namespace sns

#endif  // SRC_CONTENT_GIF_CODEC_H_
