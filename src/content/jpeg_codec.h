// SJPG: a JPEG-like lossy image codec — YCbCr conversion, 4:2:0 chroma
// subsampling, 8x8 block DCT, quality-scaled quantization, zigzag + exp-Golomb
// entropy coding.
//
// This is the real transform pipeline behind TranSend's "scaling and low-pass
// filtering of JPEG images" distiller (paper §3.1.6): re-encoding at a lower quality
// genuinely shrinks the byte stream, reproducing Fig. 3's 10 KB -> 1.5 KB example
// class of reductions.

#ifndef SRC_CONTENT_JPEG_CODEC_H_
#define SRC_CONTENT_JPEG_CODEC_H_

#include <cstdint>
#include <vector>

#include "src/content/image.h"
#include "src/util/status.h"

namespace sns {

// quality in [1, 100]; lower = smaller and blurrier.
std::vector<uint8_t> JpegEncode(const RasterImage& image, int quality);

Result<RasterImage> JpegDecode(const std::vector<uint8_t>& bytes);

// Reads just the quality field from an encoded image (used by the distiller to skip
// re-encoding content that is already below the target quality).
Result<int> JpegQualityOf(const std::vector<uint8_t>& bytes);

bool IsJpeg(const std::vector<uint8_t>& bytes);

}  // namespace sns

#endif  // SRC_CONTENT_JPEG_CODEC_H_
