// MIME datatypes for web content.
//
// Paper §4.1: GIF, HTML and JPEG covered 90% of traced traffic (50%, 22%, 18%), and
// TranSend's three distillers target exactly these; other types pass through
// unmodified.

#ifndef SRC_CONTENT_MIME_H_
#define SRC_CONTENT_MIME_H_

#include <string>

namespace sns {

enum class MimeType {
  kHtml,
  kGif,
  kJpeg,
  kOther,  // Passed through undistilled.
};

const char* MimeTypeName(MimeType type);

// Guesses from a URL's extension, defaulting to kOther. (The paper notes error
// pages mistaken for images by extension — Fig. 5's spikes; the trace generator
// reproduces that by mislabeling a small fraction.)
MimeType MimeTypeFromUrl(const std::string& url);

}  // namespace sns

#endif  // SRC_CONTENT_MIME_H_
