#include "src/content/mime.h"

#include "src/util/strings.h"

namespace sns {

const char* MimeTypeName(MimeType type) {
  switch (type) {
    case MimeType::kHtml:
      return "text/html";
    case MimeType::kGif:
      return "image/gif";
    case MimeType::kJpeg:
      return "image/jpeg";
    case MimeType::kOther:
      return "application/octet-stream";
  }
  return "application/octet-stream";
}

MimeType MimeTypeFromUrl(const std::string& url) {
  std::string lower = AsciiLower(url);
  // Strip query string before looking at the extension.
  size_t q = lower.find('?');
  if (q != std::string::npos) {
    lower = lower.substr(0, q);
  }
  if (EndsWith(lower, ".html") || EndsWith(lower, ".htm") || EndsWith(lower, "/")) {
    return MimeType::kHtml;
  }
  if (EndsWith(lower, ".gif")) {
    return MimeType::kGif;
  }
  if (EndsWith(lower, ".jpg") || EndsWith(lower, ".jpeg")) {
    return MimeType::kJpeg;
  }
  return MimeType::kOther;
}

}  // namespace sns
