#include "src/content/gif_codec.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "src/content/bitstream.h"

namespace sns {

namespace {

constexpr uint8_t kMagic0 = 'S';
constexpr uint8_t kMagic1 = 'G';
constexpr int kMaxCodeBits = 12;
constexpr int kMaxCodes = 1 << kMaxCodeBits;  // 4096, as in real GIF.

int BitsForPalette(int colors) {
  int bits = 1;
  while ((1 << bits) < colors) {
    ++bits;
  }
  return bits;
}

// LZW with variable code width, clear and end codes, GIF-style.
void LzwEncode(const std::vector<uint8_t>& symbols, int symbol_bits, BitWriter* out) {
  const uint32_t clear_code = 1u << symbol_bits;
  const uint32_t end_code = clear_code + 1;
  uint32_t next_code = end_code + 1;
  int code_bits = symbol_bits + 1;

  // Dictionary: (prefix_code << 8 | symbol) -> code.
  std::unordered_map<uint32_t, uint32_t> dict;
  auto reset = [&] {
    dict.clear();
    next_code = end_code + 1;
    code_bits = symbol_bits + 1;
  };

  out->WriteBits(clear_code, code_bits);
  reset();

  if (symbols.empty()) {
    out->WriteBits(end_code, code_bits);
    return;
  }

  uint32_t prefix = symbols[0];
  for (size_t i = 1; i < symbols.size(); ++i) {
    uint8_t sym = symbols[i];
    uint32_t key = (prefix << 8) | sym;
    auto it = dict.find(key);
    if (it != dict.end()) {
      prefix = it->second;
      continue;
    }
    out->WriteBits(prefix, code_bits);
    if (next_code < kMaxCodes) {
      dict[key] = next_code++;
      if (next_code > (1u << code_bits) && code_bits < kMaxCodeBits) {
        ++code_bits;
      }
    } else {
      out->WriteBits(clear_code, code_bits);
      reset();
    }
    prefix = sym;
  }
  out->WriteBits(prefix, code_bits);
  out->WriteBits(end_code, code_bits);
}

Status LzwDecode(BitReader* in, int symbol_bits, size_t expected_symbols,
                 std::vector<uint8_t>* out) {
  const uint32_t clear_code = 1u << symbol_bits;
  const uint32_t end_code = clear_code + 1;

  // Dictionary entry: (prefix code, appended symbol). Root codes map to themselves.
  std::vector<std::pair<uint32_t, uint8_t>> dict;
  uint32_t next_code = 0;
  int code_bits = 0;
  auto reset = [&] {
    dict.assign(end_code + 1, {0, 0});
    next_code = end_code + 1;
    code_bits = symbol_bits + 1;
  };
  reset();

  auto expand = [&](uint32_t code, std::vector<uint8_t>* dst) -> Status {
    // Walks prefix links; a root code terminates.
    std::vector<uint8_t> reversed;
    while (true) {
      if (code < clear_code) {
        reversed.push_back(static_cast<uint8_t>(code));
        break;
      }
      if (code >= dict.size() || code == clear_code || code == end_code) {
        return CorruptionError("bad LZW code");
      }
      reversed.push_back(dict[code].second);
      code = dict[code].first;
      if (reversed.size() > expected_symbols + 1) {
        return CorruptionError("LZW expansion loop");
      }
    }
    dst->insert(dst->end(), reversed.rbegin(), reversed.rend());
    return Status::Ok();
  };

  auto first_symbol = [&](uint32_t code) -> uint8_t {
    while (code >= clear_code) {
      code = dict[code].first;
    }
    return static_cast<uint8_t>(code);
  };

  uint32_t prev = UINT32_MAX;
  while (out->size() < expected_symbols) {
    uint32_t code = in->ReadBits(code_bits);
    if (in->error()) {
      return CorruptionError("LZW stream truncated");
    }
    if (code == end_code) {
      break;
    }
    if (code == clear_code) {
      reset();
      prev = UINT32_MAX;
      continue;
    }
    if (prev == UINT32_MAX) {
      if (code >= clear_code) {
        return CorruptionError("LZW first code not a root");
      }
      Status s = expand(code, out);
      if (!s.ok()) {
        return s;
      }
      prev = code;
      continue;
    }
    if (code < next_code) {
      Status s = expand(code, out);
      if (!s.ok()) {
        return s;
      }
      if (next_code < kMaxCodes) {
        dict.push_back({prev, first_symbol(code)});
        ++next_code;
      }
    } else if (code == next_code && next_code < kMaxCodes) {
      // The classic KwKwK case.
      dict.push_back({prev, first_symbol(prev)});
      ++next_code;
      Status s = expand(code, out);
      if (!s.ok()) {
        return s;
      }
    } else {
      return CorruptionError("LZW code out of range");
    }
    if (next_code >= (1u << code_bits) && code_bits < kMaxCodeBits) {
      ++code_bits;
    }
    prev = code;
  }
  return Status::Ok();
}

}  // namespace

std::vector<uint8_t> GifEncode(const RasterImage& image, int palette_colors) {
  palette_colors = std::clamp(palette_colors, 2, 256);
  std::vector<uint8_t> indices;
  std::vector<Pixel> palette = MedianCutPalette(image, palette_colors, &indices);

  BitWriter out;
  out.WriteByte(kMagic0);
  out.WriteByte(kMagic1);
  out.WriteU16(static_cast<uint16_t>(image.width()));
  out.WriteU16(static_cast<uint16_t>(image.height()));
  out.WriteByte(static_cast<uint8_t>(palette.size() - 1));
  for (const Pixel& p : palette) {
    out.WriteByte(p.r);
    out.WriteByte(p.g);
    out.WriteByte(p.b);
  }
  int symbol_bits = std::max(2, BitsForPalette(static_cast<int>(palette.size())));
  LzwEncode(indices, symbol_bits, &out);
  return out.Finish();
}

Result<RasterImage> GifDecode(const std::vector<uint8_t>& bytes) {
  if (!IsGif(bytes)) {
    return CorruptionError("not an SGIF image");
  }
  BitReader in(bytes.data(), bytes.size());
  in.ReadByte();
  in.ReadByte();
  int width = in.ReadU16();
  int height = in.ReadU16();
  int palette_size = in.ReadByte() + 1;
  // Reject implausible headers before allocating pixel buffers: a corrupt header
  // must not turn into a multi-gigabyte allocation.
  constexpr int64_t kMaxPixels = int64_t{1} << 24;  // 16 Mpx ~ 4096x4096.
  if (width <= 0 || height <= 0 ||
      static_cast<int64_t>(width) * static_cast<int64_t>(height) > kMaxPixels) {
    return CorruptionError("bad SGIF dimensions");
  }
  // A plausible stream must have at least the palette + some code bits.
  if (bytes.size() < static_cast<size_t>(7 + 3 * palette_size)) {
    return CorruptionError("SGIF header truncated");
  }
  std::vector<Pixel> palette(static_cast<size_t>(palette_size));
  for (Pixel& p : palette) {
    p.r = in.ReadByte();
    p.g = in.ReadByte();
    p.b = in.ReadByte();
  }
  if (in.error()) {
    return CorruptionError("SGIF header truncated");
  }
  int symbol_bits = std::max(2, BitsForPalette(palette_size));
  auto expected = static_cast<size_t>(width) * static_cast<size_t>(height);
  std::vector<uint8_t> indices;
  indices.reserve(expected);
  Status s = LzwDecode(&in, symbol_bits, expected, &indices);
  if (!s.ok()) {
    return s;
  }
  if (indices.size() != expected) {
    return CorruptionError("SGIF pixel count mismatch");
  }
  RasterImage img(width, height);
  for (size_t i = 0; i < expected; ++i) {
    uint8_t idx = indices[i];
    if (idx >= palette.size()) {
      return CorruptionError("SGIF palette index out of range");
    }
    img.pixels()[i] = palette[idx];
  }
  return img;
}

bool IsGif(const std::vector<uint8_t>& bytes) {
  return bytes.size() > 8 && bytes[0] == kMagic0 && bytes[1] == kMagic1;
}

}  // namespace sns
