// Bit-level I/O used by the image codecs (LZW variable-width codes, exp-Golomb
// coefficient coding).

#ifndef SRC_CONTENT_BITSTREAM_H_
#define SRC_CONTENT_BITSTREAM_H_

#include <cstdint>
#include <vector>

namespace sns {

class BitWriter {
 public:
  // Appends the low `nbits` of `value`, LSB-first.
  void WriteBits(uint32_t value, int nbits) {
    for (int i = 0; i < nbits; ++i) {
      accum_ |= static_cast<uint32_t>((value >> i) & 1u) << filled_;
      if (++filled_ == 8) {
        bytes_.push_back(static_cast<uint8_t>(accum_));
        accum_ = 0;
        filled_ = 0;
      }
    }
  }

  void WriteByte(uint8_t b) { WriteBits(b, 8); }
  void WriteU16(uint16_t v) { WriteBits(v, 16); }
  void WriteU32(uint32_t v) { WriteBits(v, 32); }

  // Exp-Golomb (gamma) code for unsigned v >= 0.
  void WriteGolomb(uint32_t v) {
    uint32_t x = v + 1;
    int bits = 0;
    while ((x >> bits) > 1) {
      ++bits;
    }
    WriteBits(0, bits);           // `bits` zeros.
    WriteBits(1, 1);              // Stop bit (LSB-first: marks the length).
    WriteBits(x & ((1u << bits) - 1), bits);  // Remaining bits of x.
  }

  // Signed mapping: 0, -1, 1, -2, 2, ... -> 0, 1, 2, 3, 4, ...
  void WriteSignedGolomb(int32_t v) {
    uint32_t mapped = v > 0 ? static_cast<uint32_t>(2 * v) - 1
                            : static_cast<uint32_t>(-2 * static_cast<int64_t>(v));
    WriteGolomb(mapped);
  }

  // Flushes any partial byte (zero-padded) and returns the buffer.
  std::vector<uint8_t> Finish() {
    if (filled_ > 0) {
      bytes_.push_back(static_cast<uint8_t>(accum_));
      accum_ = 0;
      filled_ = 0;
    }
    return std::move(bytes_);
  }

  size_t bit_count() const { return bytes_.size() * 8 + static_cast<size_t>(filled_); }

 private:
  std::vector<uint8_t> bytes_;
  uint32_t accum_ = 0;
  int filled_ = 0;
};

class BitReader {
 public:
  BitReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  // Reads `nbits` LSB-first; sets the error flag and returns 0 on underrun.
  uint32_t ReadBits(int nbits) {
    uint32_t value = 0;
    for (int i = 0; i < nbits; ++i) {
      size_t byte = pos_ >> 3;
      if (byte >= size_) {
        error_ = true;
        return 0;
      }
      uint32_t bit = (data_[byte] >> (pos_ & 7)) & 1u;
      value |= bit << i;
      ++pos_;
    }
    return value;
  }

  uint8_t ReadByte() { return static_cast<uint8_t>(ReadBits(8)); }
  uint16_t ReadU16() { return static_cast<uint16_t>(ReadBits(16)); }
  uint32_t ReadU32() { return ReadBits(32); }

  uint32_t ReadGolomb() {
    int zeros = 0;
    while (!error_ && ReadBits(1) == 0) {
      if (++zeros > 32) {
        error_ = true;
        return 0;
      }
    }
    uint32_t rest = zeros > 0 ? ReadBits(zeros) : 0;
    uint32_t x = (1u << zeros) | rest;
    return x - 1;
  }

  int32_t ReadSignedGolomb() {
    uint32_t mapped = ReadGolomb();
    if ((mapped & 1u) != 0) {
      return static_cast<int32_t>((mapped + 1) / 2);
    }
    return -static_cast<int32_t>(mapped / 2);
  }

  bool error() const { return error_; }
  size_t bits_consumed() const { return pos_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  bool error_ = false;
};

}  // namespace sns

#endif  // SRC_CONTENT_BITSTREAM_H_
