#include "src/content/html.h"

#include <cctype>

#include "src/util/strings.h"

namespace sns {

namespace {

const char* const kLoremWords[] = {
    "lorem",   "ipsum",  "dolor",    "sit",    "amet",       "consectetur", "adipiscing",
    "elit",    "sed",    "do",       "eiusmod", "tempor",    "incididunt",  "ut",
    "labore",  "et",     "dolore",   "magna",  "aliqua",     "enim",        "ad",
    "minim",   "veniam", "quis",     "nostrud", "exercitation", "ullamco",  "laboris",
    "nisi",    "aliquip", "ex",      "ea",     "commodo",    "consequat",   "duis",
    "aute",    "irure",  "in",       "reprehenderit", "voluptate", "velit", "esse",
    "cillum",  "fugiat", "nulla",    "pariatur", "excepteur", "sint",       "occaecat",
    "cupidatat", "non",  "proident", "sunt",   "culpa",      "qui",         "officia",
    "deserunt", "mollit", "anim",    "id",     "est",        "laborum",     "berkeley",
    "cluster", "service", "network", "distill", "proxy",     "cache",       "worker"};

std::string RandomWord(Rng* rng) {
  size_t n = sizeof(kLoremWords) / sizeof(kLoremWords[0]);
  return kLoremWords[rng->UniformInt(0, static_cast<int64_t>(n) - 1)];
}

bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

}  // namespace

std::string GenerateHtmlPage(Rng* rng, const HtmlGenOptions& options) {
  std::string out;
  out += "<html><head><title>";
  for (int i = 0; i < 4; ++i) {
    out += RandomWord(rng);
    out += i < 3 ? " " : "";
  }
  out += "</title></head><body>\n";
  out += "<h1>" + RandomWord(rng) + " " + RandomWord(rng) + "</h1>\n";

  int images_left = options.inline_images;
  int links_left = options.links;
  for (int p = 0; p < options.paragraphs; ++p) {
    out += "<p>";
    for (int w = 0; w < options.words_per_paragraph; ++w) {
      if (links_left > 0 && rng->Bernoulli(0.04)) {
        out += StrFormat("<a href=\"%s/page%lld.html\">%s</a> ", options.base_url.c_str(),
                         static_cast<long long>(rng->UniformInt(0, 9999)),
                         RandomWord(rng).c_str());
        --links_left;
        continue;
      }
      out += RandomWord(rng);
      out += " ";
    }
    out += "</p>\n";
    if (images_left > 0) {
      bool jpeg = rng->Bernoulli(0.35);
      out += StrFormat("<img src=\"%s/img%lld.%s\" alt=\"%s\">\n", options.base_url.c_str(),
                       static_cast<long long>(rng->UniformInt(0, 99999)), jpeg ? "jpg" : "gif",
                       RandomWord(rng).c_str());
      --images_left;
    }
  }
  // Flush any remaining images at the bottom of the page.
  while (images_left-- > 0) {
    out += StrFormat("<img src=\"%s/img%lld.gif\">\n", options.base_url.c_str(),
                     static_cast<long long>(rng->UniformInt(0, 99999)));
  }
  out += "</body></html>\n";
  return out;
}

std::vector<HtmlTag> ScanTags(const std::string& html) {
  std::vector<HtmlTag> tags;
  size_t i = 0;
  while (i < html.size()) {
    if (html[i] != '<') {
      ++i;
      continue;
    }
    size_t close = html.find('>', i);
    if (close == std::string::npos) {
      break;
    }
    HtmlTag tag;
    tag.begin = i;
    tag.end = close + 1;
    size_t p = i + 1;
    // Tag name (may start with '/').
    size_t name_start = p;
    if (p < close && html[p] == '/') {
      ++p;
    }
    while (p < close && !std::isspace(static_cast<unsigned char>(html[p]))) {
      ++p;
    }
    tag.name = AsciiLower(html.substr(name_start, p - name_start));
    // Attributes: name[=value], value optionally quoted.
    while (p < close) {
      while (p < close && std::isspace(static_cast<unsigned char>(html[p]))) {
        ++p;
      }
      if (p >= close) {
        break;
      }
      size_t attr_start = p;
      while (p < close && html[p] != '=' && !std::isspace(static_cast<unsigned char>(html[p]))) {
        ++p;
      }
      std::string attr_name = AsciiLower(html.substr(attr_start, p - attr_start));
      std::string attr_value;
      if (p < close && html[p] == '=') {
        ++p;
        if (p < close && (html[p] == '"' || html[p] == '\'')) {
          char quote = html[p++];
          size_t value_start = p;
          while (p < close && html[p] != quote) {
            ++p;
          }
          attr_value = html.substr(value_start, p - value_start);
          if (p < close) {
            ++p;  // Skip the closing quote.
          }
        } else {
          size_t value_start = p;
          while (p < close && !std::isspace(static_cast<unsigned char>(html[p]))) {
            ++p;
          }
          attr_value = html.substr(value_start, p - value_start);
        }
      }
      if (!attr_name.empty()) {
        tag.attrs.emplace_back(std::move(attr_name), std::move(attr_value));
      }
    }
    tags.push_back(std::move(tag));
    i = close + 1;
  }
  return tags;
}

std::string TagAttr(const HtmlTag& tag, const std::string& attr) {
  for (const auto& [name, value] : tag.attrs) {
    if (name == attr) {
      return value;
    }
  }
  return "";
}

std::vector<std::string> ExtractImageRefs(const std::string& html) {
  std::vector<std::string> refs;
  for (const HtmlTag& tag : ScanTags(html)) {
    if (tag.name == "img") {
      std::string src = TagAttr(tag, "src");
      if (!src.empty()) {
        refs.push_back(std::move(src));
      }
    }
  }
  return refs;
}

std::vector<std::string> ExtractLinks(const std::string& html) {
  std::vector<std::string> links;
  for (const HtmlTag& tag : ScanTags(html)) {
    if (tag.name == "a") {
      std::string href = TagAttr(tag, "href");
      if (!href.empty()) {
        links.push_back(std::move(href));
      }
    }
  }
  return links;
}

std::string StripTags(const std::string& html) {
  std::string out;
  out.reserve(html.size());
  bool in_tag = false;
  for (char c : html) {
    if (c == '<') {
      in_tag = true;
    } else if (c == '>') {
      in_tag = false;
      out += ' ';
    } else if (!in_tag) {
      out += c;
    }
  }
  return out;
}

std::string MungeHtml(const std::string& html, const MungeOptions& options) {
  std::vector<HtmlTag> tags = ScanTags(html);
  std::string out;
  out.reserve(html.size() + 512);

  // Insert the toolbar right after <body> (or at the very top if no body tag).
  size_t toolbar_insert = std::string::npos;
  if (options.add_toolbar) {
    toolbar_insert = 0;
    for (const HtmlTag& tag : tags) {
      if (tag.name == "body") {
        toolbar_insert = tag.end;
        break;
      }
    }
  }

  size_t cursor = 0;
  auto copy_until = [&](size_t until) {
    if (until > cursor) {
      out.append(html, cursor, until - cursor);
      cursor = until;
    }
  };

  if (toolbar_insert == 0 && options.add_toolbar) {
    out += options.toolbar_html;
    out += "\n";
    toolbar_insert = std::string::npos;  // Done.
  }

  for (const HtmlTag& tag : tags) {
    if (options.add_toolbar && toolbar_insert != std::string::npos &&
        tag.end == toolbar_insert) {
      copy_until(tag.end);
      out += options.toolbar_html;
      out += "\n";
      toolbar_insert = std::string::npos;
      continue;
    }
    if (tag.name == "img" && options.annotate_images) {
      std::string src = TagAttr(tag, "src");
      if (!src.empty()) {
        copy_until(tag.begin);
        out += "<img src=\"" + options.proxy_prefix + src + "\"";
        for (const auto& [name, value] : tag.attrs) {
          if (name != "src") {
            out += " " + name + "=\"" + value + "\"";
          }
        }
        out += ">";
        if (options.add_original_links) {
          out += " <a href=\"" + src + "\">[original]</a>";
        }
        cursor = tag.end;
      }
    }
  }
  copy_until(html.size());
  return out;
}

std::string HighlightKeyword(const std::string& html, const std::string& keyword,
                             const std::string& open_markup, const std::string& close_markup) {
  if (keyword.empty()) {
    return html;
  }
  std::string lower_html = AsciiLower(html);
  std::string lower_kw = AsciiLower(keyword);
  std::string out;
  out.reserve(html.size());
  bool in_tag = false;
  size_t i = 0;
  while (i < html.size()) {
    char c = html[i];
    if (c == '<') {
      in_tag = true;
    } else if (c == '>') {
      in_tag = false;
    }
    bool match = false;
    if (!in_tag && lower_html.compare(i, lower_kw.size(), lower_kw) == 0) {
      bool left_ok = i == 0 || !IsWordChar(html[i - 1]);
      size_t after = i + lower_kw.size();
      bool right_ok = after >= html.size() || !IsWordChar(html[after]);
      match = left_ok && right_ok;
    }
    if (match) {
      out += open_markup;
      out.append(html, i, lower_kw.size());
      out += close_markup;
      i += lower_kw.size();
    } else {
      out += c;
      ++i;
    }
  }
  return out;
}

}  // namespace sns
