#include "src/content/jpeg_codec.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "src/content/bitstream.h"

namespace sns {

namespace {

constexpr uint8_t kMagic0 = 'S';
constexpr uint8_t kMagic1 = 'J';
constexpr int kBlock = 8;

// Standard JPEG Annex K luminance/chrominance quantization tables.
constexpr std::array<int, 64> kLumaQuant = {
    16, 11, 10, 16, 24,  40,  51,  61,  12, 12, 14, 19, 26,  58,  60,  55,
    14, 13, 16, 24, 40,  57,  69,  56,  14, 17, 22, 29, 51,  87,  80,  62,
    18, 22, 37, 56, 68,  109, 103, 77,  24, 35, 55, 64, 81,  104, 113, 92,
    49, 64, 78, 87, 103, 121, 120, 101, 72, 92, 95, 98, 112, 100, 103, 99};

constexpr std::array<int, 64> kChromaQuant = {
    17, 18, 24, 47, 99, 99, 99, 99, 18, 21, 26, 66, 99, 99, 99, 99,
    24, 26, 56, 99, 99, 99, 99, 99, 47, 66, 99, 99, 99, 99, 99, 99,
    99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99,
    99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99};

// Zigzag scan order for an 8x8 block.
constexpr std::array<int, 64> kZigzag = {
    0,  1,  8,  16, 9,  2,  3,  10, 17, 24, 32, 25, 18, 11, 4,  5,
    12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6,  7,  14, 21, 28,
    35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51,
    58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63};

// libjpeg's quality-to-scale mapping.
int QualityScale(int quality) {
  quality = std::clamp(quality, 1, 100);
  return quality < 50 ? 5000 / quality : 200 - quality * 2;
}

std::array<int, 64> ScaledTable(const std::array<int, 64>& base, int quality) {
  int scale = QualityScale(quality);
  std::array<int, 64> out{};
  for (int i = 0; i < 64; ++i) {
    out[i] = std::clamp((base[i] * scale + 50) / 100, 1, 255);
  }
  return out;
}

// Naive 2-D DCT-II / DCT-III on an 8x8 block. O(64*16) with separable passes.
void ForwardDct(const double in[kBlock][kBlock], double out[kBlock][kBlock]) {
  static double cos_table[kBlock][kBlock];
  static bool init = false;
  if (!init) {
    for (int x = 0; x < kBlock; ++x) {
      for (int u = 0; u < kBlock; ++u) {
        cos_table[x][u] = std::cos((2 * x + 1) * u * M_PI / 16.0);
      }
    }
    init = true;
  }
  double tmp[kBlock][kBlock];
  // Rows.
  for (int y = 0; y < kBlock; ++y) {
    for (int u = 0; u < kBlock; ++u) {
      double sum = 0;
      for (int x = 0; x < kBlock; ++x) {
        sum += in[y][x] * cos_table[x][u];
      }
      tmp[y][u] = sum * (u == 0 ? std::sqrt(1.0 / kBlock) : std::sqrt(2.0 / kBlock));
    }
  }
  // Columns.
  for (int u = 0; u < kBlock; ++u) {
    for (int v = 0; v < kBlock; ++v) {
      double sum = 0;
      for (int y = 0; y < kBlock; ++y) {
        sum += tmp[y][u] * cos_table[y][v];
      }
      out[v][u] = sum * (v == 0 ? std::sqrt(1.0 / kBlock) : std::sqrt(2.0 / kBlock));
    }
  }
}

void InverseDct(const double in[kBlock][kBlock], double out[kBlock][kBlock]) {
  static double cos_table[kBlock][kBlock];
  static bool init = false;
  if (!init) {
    for (int x = 0; x < kBlock; ++x) {
      for (int u = 0; u < kBlock; ++u) {
        cos_table[x][u] = std::cos((2 * x + 1) * u * M_PI / 16.0);
      }
    }
    init = true;
  }
  double tmp[kBlock][kBlock];
  // Columns first (inverse of the forward order).
  for (int u = 0; u < kBlock; ++u) {
    for (int y = 0; y < kBlock; ++y) {
      double sum = 0;
      for (int v = 0; v < kBlock; ++v) {
        double c = v == 0 ? std::sqrt(1.0 / kBlock) : std::sqrt(2.0 / kBlock);
        sum += c * in[v][u] * cos_table[y][v];
      }
      tmp[y][u] = sum;
    }
  }
  // Rows.
  for (int y = 0; y < kBlock; ++y) {
    for (int x = 0; x < kBlock; ++x) {
      double sum = 0;
      for (int u = 0; u < kBlock; ++u) {
        double c = u == 0 ? std::sqrt(1.0 / kBlock) : std::sqrt(2.0 / kBlock);
        sum += c * tmp[y][u] * cos_table[x][u];
      }
      out[y][x] = sum;
    }
  }
}

struct Plane {
  int width = 0;
  int height = 0;
  std::vector<double> samples;  // Centered at 0 (sample - 128).

  double at(int x, int y) const {
    x = std::clamp(x, 0, width - 1);
    y = std::clamp(y, 0, height - 1);
    return samples[static_cast<size_t>(y) * static_cast<size_t>(width) + static_cast<size_t>(x)];
  }
  void set(int x, int y, double v) {
    samples[static_cast<size_t>(y) * static_cast<size_t>(width) + static_cast<size_t>(x)] = v;
  }
};

// Encodes one plane: per-block DCT, quantize, zigzag, DC-delta + (run, level) AC
// pairs with an end-of-block sentinel (run == 63).
void EncodePlane(const Plane& plane, const std::array<int, 64>& quant, BitWriter* out) {
  int blocks_x = (plane.width + kBlock - 1) / kBlock;
  int blocks_y = (plane.height + kBlock - 1) / kBlock;
  int prev_dc = 0;
  for (int by = 0; by < blocks_y; ++by) {
    for (int bx = 0; bx < blocks_x; ++bx) {
      double block[kBlock][kBlock];
      for (int y = 0; y < kBlock; ++y) {
        for (int x = 0; x < kBlock; ++x) {
          block[y][x] = plane.at(bx * kBlock + x, by * kBlock + y);
        }
      }
      double freq[kBlock][kBlock];
      ForwardDct(block, freq);
      int coeffs[64];
      for (int i = 0; i < 64; ++i) {
        int pos = kZigzag[i];
        double value = freq[pos / kBlock][pos % kBlock];
        coeffs[i] = static_cast<int>(std::lround(value / quant[i]));
      }
      out->WriteSignedGolomb(coeffs[0] - prev_dc);
      prev_dc = coeffs[0];
      int run = 0;
      for (int i = 1; i < 64; ++i) {
        if (coeffs[i] == 0) {
          ++run;
          continue;
        }
        out->WriteGolomb(static_cast<uint32_t>(run));
        out->WriteSignedGolomb(coeffs[i]);
        run = 0;
      }
      out->WriteGolomb(63);  // EOB (valid in-pair runs are <= 62).
    }
  }
}

Status DecodePlane(BitReader* in, const std::array<int, 64>& quant, Plane* plane) {
  int blocks_x = (plane->width + kBlock - 1) / kBlock;
  int blocks_y = (plane->height + kBlock - 1) / kBlock;
  int prev_dc = 0;
  for (int by = 0; by < blocks_y; ++by) {
    for (int bx = 0; bx < blocks_x; ++bx) {
      int coeffs[64] = {0};
      int dc_delta = in->ReadSignedGolomb();
      prev_dc += dc_delta;
      coeffs[0] = prev_dc;
      // The encoder always terminates a block with the EOB token (run == 63), even
      // when the final zigzag position held a nonzero coefficient — so the decoder
      // must keep reading until it consumes that token.
      int i = 1;
      for (;;) {
        uint32_t run = in->ReadGolomb();
        if (in->error()) {
          return CorruptionError("SJPG stream truncated");
        }
        if (run == 63) {
          break;  // EOB.
        }
        i += static_cast<int>(run);
        if (i >= 64) {
          return CorruptionError("SJPG run overflows block");
        }
        coeffs[i] = in->ReadSignedGolomb();
        ++i;
      }
      double freq[kBlock][kBlock];
      for (int k = 0; k < 64; ++k) {
        int pos = kZigzag[k];
        freq[pos / kBlock][pos % kBlock] = static_cast<double>(coeffs[k]) * quant[k];
      }
      double block[kBlock][kBlock];
      InverseDct(freq, block);
      for (int y = 0; y < kBlock; ++y) {
        for (int x = 0; x < kBlock; ++x) {
          int px = bx * kBlock + x;
          int py = by * kBlock + y;
          if (px < plane->width && py < plane->height) {
            plane->set(px, py, block[y][x]);
          }
        }
      }
    }
  }
  return Status::Ok();
}

}  // namespace

std::vector<uint8_t> JpegEncode(const RasterImage& image, int quality) {
  quality = std::clamp(quality, 1, 100);
  int w = image.width();
  int h = image.height();

  // RGB -> YCbCr (BT.601), center at zero.
  Plane y_plane{w, h, std::vector<double>(static_cast<size_t>(w) * h)};
  Plane cb_full{w, h, std::vector<double>(static_cast<size_t>(w) * h)};
  Plane cr_full{w, h, std::vector<double>(static_cast<size_t>(w) * h)};
  for (int yy = 0; yy < h; ++yy) {
    for (int xx = 0; xx < w; ++xx) {
      const Pixel& p = image.at(xx, yy);
      double r = p.r;
      double g = p.g;
      double b = p.b;
      y_plane.set(xx, yy, 0.299 * r + 0.587 * g + 0.114 * b - 128.0);
      cb_full.set(xx, yy, -0.168736 * r - 0.331264 * g + 0.5 * b);
      cr_full.set(xx, yy, 0.5 * r - 0.418688 * g - 0.081312 * b);
    }
  }
  // 4:2:0 chroma subsampling.
  int cw = (w + 1) / 2;
  int ch = (h + 1) / 2;
  Plane cb{cw, ch, std::vector<double>(static_cast<size_t>(cw) * ch)};
  Plane cr{cw, ch, std::vector<double>(static_cast<size_t>(cw) * ch)};
  for (int yy = 0; yy < ch; ++yy) {
    for (int xx = 0; xx < cw; ++xx) {
      double cb_sum = 0;
      double cr_sum = 0;
      for (int dy = 0; dy < 2; ++dy) {
        for (int dx = 0; dx < 2; ++dx) {
          cb_sum += cb_full.at(xx * 2 + dx, yy * 2 + dy);
          cr_sum += cr_full.at(xx * 2 + dx, yy * 2 + dy);
        }
      }
      cb.set(xx, yy, cb_sum / 4.0);
      cr.set(xx, yy, cr_sum / 4.0);
    }
  }

  BitWriter out;
  out.WriteByte(kMagic0);
  out.WriteByte(kMagic1);
  out.WriteU16(static_cast<uint16_t>(w));
  out.WriteU16(static_cast<uint16_t>(h));
  out.WriteByte(static_cast<uint8_t>(quality));
  std::array<int, 64> luma = ScaledTable(kLumaQuant, quality);
  std::array<int, 64> chroma = ScaledTable(kChromaQuant, quality);
  EncodePlane(y_plane, luma, &out);
  EncodePlane(cb, chroma, &out);
  EncodePlane(cr, chroma, &out);
  return out.Finish();
}

Result<RasterImage> JpegDecode(const std::vector<uint8_t>& bytes) {
  if (!IsJpeg(bytes)) {
    return CorruptionError("not an SJPG image");
  }
  BitReader in(bytes.data(), bytes.size());
  in.ReadByte();
  in.ReadByte();
  int w = in.ReadU16();
  int h = in.ReadU16();
  int quality = in.ReadByte();
  // Reject implausible headers before allocating plane buffers (a corrupt header
  // must not turn into a multi-gigabyte allocation), and require a minimum bit
  // budget: even an all-zero image needs ~2 bits per 8x8 block per plane.
  constexpr int64_t kMaxPixels = int64_t{1} << 24;
  if (w <= 0 || h <= 0 || in.error() ||
      static_cast<int64_t>(w) * static_cast<int64_t>(h) > kMaxPixels) {
    return CorruptionError("bad SJPG header");
  }
  int64_t luma_blocks =
      (static_cast<int64_t>(w) + 7) / 8 * ((static_cast<int64_t>(h) + 7) / 8);
  if (static_cast<int64_t>(bytes.size()) * 8 < luma_blocks * 2) {
    return CorruptionError("SJPG stream too short for dimensions");
  }
  std::array<int, 64> luma = ScaledTable(kLumaQuant, quality);
  std::array<int, 64> chroma = ScaledTable(kChromaQuant, quality);
  Plane y_plane{w, h, std::vector<double>(static_cast<size_t>(w) * h)};
  int cw = (w + 1) / 2;
  int ch = (h + 1) / 2;
  Plane cb{cw, ch, std::vector<double>(static_cast<size_t>(cw) * ch)};
  Plane cr{cw, ch, std::vector<double>(static_cast<size_t>(cw) * ch)};
  Status s = DecodePlane(&in, luma, &y_plane);
  if (!s.ok()) {
    return s;
  }
  s = DecodePlane(&in, chroma, &cb);
  if (!s.ok()) {
    return s;
  }
  s = DecodePlane(&in, chroma, &cr);
  if (!s.ok()) {
    return s;
  }
  RasterImage img(w, h);
  for (int yy = 0; yy < h; ++yy) {
    for (int xx = 0; xx < w; ++xx) {
      double y = y_plane.at(xx, yy) + 128.0;
      double cb_v = cb.at(xx / 2, yy / 2);
      double cr_v = cr.at(xx / 2, yy / 2);
      double r = y + 1.402 * cr_v;
      double g = y - 0.344136 * cb_v - 0.714136 * cr_v;
      double b = y + 1.772 * cb_v;
      img.at(xx, yy) =
          Pixel{static_cast<uint8_t>(std::clamp(static_cast<int>(std::lround(r)), 0, 255)),
                static_cast<uint8_t>(std::clamp(static_cast<int>(std::lround(g)), 0, 255)),
                static_cast<uint8_t>(std::clamp(static_cast<int>(std::lround(b)), 0, 255))};
    }
  }
  return img;
}

Result<int> JpegQualityOf(const std::vector<uint8_t>& bytes) {
  if (!IsJpeg(bytes) || bytes.size() < 7) {
    return CorruptionError("not an SJPG image");
  }
  return static_cast<int>(bytes[6]);
}

bool IsJpeg(const std::vector<uint8_t>& bytes) {
  return bytes.size() > 7 && bytes[0] == kMagic0 && bytes[1] == kMagic1;
}

}  // namespace sns
