#include "src/content/image.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace sns {

const Pixel& RasterImage::at_clamped(int x, int y) const {
  x = std::clamp(x, 0, width_ - 1);
  y = std::clamp(y, 0, height_ - 1);
  return at(x, y);
}

RasterImage BoxDownscale(const RasterImage& in, int factor) {
  assert(factor >= 1);
  if (factor == 1 || in.empty()) {
    return in;
  }
  int out_w = (in.width() + factor - 1) / factor;
  int out_h = (in.height() + factor - 1) / factor;
  RasterImage out(out_w, out_h);
  for (int oy = 0; oy < out_h; ++oy) {
    for (int ox = 0; ox < out_w; ++ox) {
      int64_t r = 0;
      int64_t g = 0;
      int64_t b = 0;
      int count = 0;
      for (int dy = 0; dy < factor; ++dy) {
        for (int dx = 0; dx < factor; ++dx) {
          int x = ox * factor + dx;
          int y = oy * factor + dy;
          if (x < in.width() && y < in.height()) {
            const Pixel& p = in.at(x, y);
            r += p.r;
            g += p.g;
            b += p.b;
            ++count;
          }
        }
      }
      out.at(ox, oy) = Pixel{static_cast<uint8_t>(r / count), static_cast<uint8_t>(g / count),
                             static_cast<uint8_t>(b / count)};
    }
  }
  return out;
}

RasterImage LowPassFilter(const RasterImage& in, int passes) {
  RasterImage current = in;
  for (int pass = 0; pass < passes; ++pass) {
    RasterImage next(current.width(), current.height());
    for (int y = 0; y < current.height(); ++y) {
      for (int x = 0; x < current.width(); ++x) {
        int r = 0;
        int g = 0;
        int b = 0;
        for (int dy = -1; dy <= 1; ++dy) {
          for (int dx = -1; dx <= 1; ++dx) {
            const Pixel& p = current.at_clamped(x + dx, y + dy);
            r += p.r;
            g += p.g;
            b += p.b;
          }
        }
        next.at(x, y) = Pixel{static_cast<uint8_t>(r / 9), static_cast<uint8_t>(g / 9),
                              static_cast<uint8_t>(b / 9)};
      }
    }
    current = std::move(next);
  }
  return current;
}

RasterImage ReduceBitDepth(const RasterImage& in, int bits) {
  assert(bits >= 1 && bits <= 8);
  int shift = 8 - bits;
  RasterImage out = in;
  for (Pixel& p : out.pixels()) {
    // Quantize and re-expand so the value stays in [0,255].
    auto q = [shift](uint8_t v) {
      uint8_t truncated = static_cast<uint8_t>((v >> shift) << shift);
      // Replicate high bits into low bits to spread levels across the full range.
      return static_cast<uint8_t>(truncated | (truncated >> (8 - shift == 0 ? 1 : shift)));
    };
    if (shift > 0) {
      p = Pixel{q(p.r), q(p.g), q(p.b)};
    }
  }
  return out;
}

namespace {

struct Box {
  std::vector<Pixel> pixels;

  int WidestChannel() const {
    uint8_t rmin = 255, rmax = 0, gmin = 255, gmax = 0, bmin = 255, bmax = 0;
    for (const Pixel& p : pixels) {
      rmin = std::min(rmin, p.r);
      rmax = std::max(rmax, p.r);
      gmin = std::min(gmin, p.g);
      gmax = std::max(gmax, p.g);
      bmin = std::min(bmin, p.b);
      bmax = std::max(bmax, p.b);
    }
    int rspan = rmax - rmin;
    int gspan = gmax - gmin;
    int bspan = bmax - bmin;
    if (rspan >= gspan && rspan >= bspan) {
      return 0;
    }
    return gspan >= bspan ? 1 : 2;
  }

  int Span() const {
    uint8_t lo[3] = {255, 255, 255};
    uint8_t hi[3] = {0, 0, 0};
    for (const Pixel& p : pixels) {
      uint8_t c[3] = {p.r, p.g, p.b};
      for (int i = 0; i < 3; ++i) {
        lo[i] = std::min(lo[i], c[i]);
        hi[i] = std::max(hi[i], c[i]);
      }
    }
    return (hi[0] - lo[0]) + (hi[1] - lo[1]) + (hi[2] - lo[2]);
  }

  Pixel Mean() const {
    int64_t r = 0, g = 0, b = 0;
    for (const Pixel& p : pixels) {
      r += p.r;
      g += p.g;
      b += p.b;
    }
    auto n = static_cast<int64_t>(pixels.size());
    return Pixel{static_cast<uint8_t>(r / n), static_cast<uint8_t>(g / n),
                 static_cast<uint8_t>(b / n)};
  }
};

}  // namespace

std::vector<Pixel> MedianCutPalette(const RasterImage& in, int colors,
                                    std::vector<uint8_t>* indices) {
  assert(colors >= 1 && colors <= 256);
  std::vector<Box> boxes;
  boxes.push_back(Box{in.pixels()});
  while (static_cast<int>(boxes.size()) < colors) {
    // Split the box with the largest color span.
    size_t widest = 0;
    int best_span = -1;
    for (size_t i = 0; i < boxes.size(); ++i) {
      if (boxes[i].pixels.size() >= 2) {
        int span = boxes[i].Span();
        if (span > best_span) {
          best_span = span;
          widest = i;
        }
      }
    }
    if (best_span <= 0) {
      break;  // All boxes are single colors.
    }
    Box& box = boxes[widest];
    int channel = box.WidestChannel();
    auto key = [channel](const Pixel& p) {
      return channel == 0 ? p.r : (channel == 1 ? p.g : p.b);
    };
    std::sort(box.pixels.begin(), box.pixels.end(),
              [&key](const Pixel& a, const Pixel& b) { return key(a) < key(b); });
    size_t mid = box.pixels.size() / 2;
    Box right;
    right.pixels.assign(box.pixels.begin() + static_cast<long>(mid), box.pixels.end());
    box.pixels.resize(mid);
    boxes.push_back(std::move(right));
  }
  std::vector<Pixel> palette;
  palette.reserve(boxes.size());
  for (const Box& box : boxes) {
    palette.push_back(box.pixels.empty() ? Pixel{} : box.Mean());
  }
  if (indices != nullptr) {
    indices->resize(in.pixels().size());
    for (size_t i = 0; i < in.pixels().size(); ++i) {
      const Pixel& p = in.pixels()[i];
      int best = 0;
      int best_dist = INT32_MAX;
      for (size_t c = 0; c < palette.size(); ++c) {
        int dr = p.r - palette[c].r;
        int dg = p.g - palette[c].g;
        int db = p.b - palette[c].b;
        int dist = dr * dr + dg * dg + db * db;
        if (dist < best_dist) {
          best_dist = dist;
          best = static_cast<int>(c);
        }
      }
      (*indices)[i] = static_cast<uint8_t>(best);
    }
  }
  return palette;
}

double MeanAbsoluteError(const RasterImage& a, const RasterImage& b) {
  assert(a.width() == b.width() && a.height() == b.height());
  if (a.empty()) {
    return 0.0;
  }
  int64_t total = 0;
  for (size_t i = 0; i < a.pixels().size(); ++i) {
    total += std::abs(a.pixels()[i].r - b.pixels()[i].r);
    total += std::abs(a.pixels()[i].g - b.pixels()[i].g);
    total += std::abs(a.pixels()[i].b - b.pixels()[i].b);
  }
  return static_cast<double>(total) / (static_cast<double>(a.pixels().size()) * 3.0);
}

RasterImage SynthesizePhoto(Rng* rng, int width, int height) {
  RasterImage img(width, height);
  // Base: two-corner gradient.
  Pixel c0{static_cast<uint8_t>(rng->UniformInt(0, 255)),
           static_cast<uint8_t>(rng->UniformInt(0, 255)),
           static_cast<uint8_t>(rng->UniformInt(0, 255))};
  Pixel c1{static_cast<uint8_t>(rng->UniformInt(0, 255)),
           static_cast<uint8_t>(rng->UniformInt(0, 255)),
           static_cast<uint8_t>(rng->UniformInt(0, 255))};
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      double t = (static_cast<double>(x) / std::max(width - 1, 1) +
                  static_cast<double>(y) / std::max(height - 1, 1)) /
                 2.0;
      img.at(x, y) = Pixel{static_cast<uint8_t>(c0.r + t * (c1.r - c0.r)),
                           static_cast<uint8_t>(c0.g + t * (c1.g - c0.g)),
                           static_cast<uint8_t>(c0.b + t * (c1.b - c0.b))};
    }
  }
  // Soft elliptical blobs.
  int blobs = static_cast<int>(rng->UniformInt(3, 8));
  for (int i = 0; i < blobs; ++i) {
    int cx = static_cast<int>(rng->UniformInt(0, width - 1));
    int cy = static_cast<int>(rng->UniformInt(0, height - 1));
    double radius = rng->Uniform(0.1, 0.4) * std::min(width, height);
    Pixel color{static_cast<uint8_t>(rng->UniformInt(0, 255)),
                static_cast<uint8_t>(rng->UniformInt(0, 255)),
                static_cast<uint8_t>(rng->UniformInt(0, 255))};
    for (int y = 0; y < height; ++y) {
      for (int x = 0; x < width; ++x) {
        double dx = x - cx;
        double dy = y - cy;
        double d = std::sqrt(dx * dx + dy * dy);
        if (d < radius) {
          double alpha = 0.7 * (1.0 - d / radius);
          Pixel& p = img.at(x, y);
          p.r = static_cast<uint8_t>(p.r + alpha * (color.r - p.r));
          p.g = static_cast<uint8_t>(p.g + alpha * (color.g - p.g));
          p.b = static_cast<uint8_t>(p.b + alpha * (color.b - p.b));
        }
      }
    }
  }
  // Mild sensor noise.
  for (Pixel& p : img.pixels()) {
    auto jitter = [&](uint8_t v) {
      int nv = v + static_cast<int>(rng->UniformInt(-4, 4));
      return static_cast<uint8_t>(std::clamp(nv, 0, 255));
    };
    p = Pixel{jitter(p.r), jitter(p.g), jitter(p.b)};
  }
  return img;
}

RasterImage SynthesizeIcon(Rng* rng, int width, int height) {
  RasterImage img(width, height);
  Pixel bg{static_cast<uint8_t>(rng->UniformInt(0, 255)),
           static_cast<uint8_t>(rng->UniformInt(0, 255)),
           static_cast<uint8_t>(rng->UniformInt(0, 255))};
  for (Pixel& p : img.pixels()) {
    p = bg;
  }
  // A handful of flat-color rectangles.
  int shapes = static_cast<int>(rng->UniformInt(2, 5));
  for (int i = 0; i < shapes; ++i) {
    int x0 = static_cast<int>(rng->UniformInt(0, std::max(width - 2, 0)));
    int y0 = static_cast<int>(rng->UniformInt(0, std::max(height - 2, 0)));
    int x1 = static_cast<int>(rng->UniformInt(x0, width - 1));
    int y1 = static_cast<int>(rng->UniformInt(y0, height - 1));
    Pixel color{static_cast<uint8_t>(rng->UniformInt(0, 255)),
                static_cast<uint8_t>(rng->UniformInt(0, 255)),
                static_cast<uint8_t>(rng->UniformInt(0, 255))};
    for (int y = y0; y <= y1; ++y) {
      for (int x = x0; x <= x1; ++x) {
        img.at(x, y) = color;
      }
    }
  }
  return img;
}

}  // namespace sns
