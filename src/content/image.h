// Raster images and pixel operations used by the distillers.
//
// TranSend's image distillers (paper §3.1.6, Fig. 3) scale images down and reduce
// quality: "Scaling this JPEG image by a factor of 2 in each dimension and reducing
// JPEG quality to 25 results in a size reduction from 10KB to 1.5KB." The operations
// here — box downscale, low-pass filter, color quantization — are the real pixel
// math those distillers run, applied to synthetically generated images.

#ifndef SRC_CONTENT_IMAGE_H_
#define SRC_CONTENT_IMAGE_H_

#include <cstdint>
#include <vector>

#include "src/util/rng.h"

namespace sns {

struct Pixel {
  uint8_t r = 0;
  uint8_t g = 0;
  uint8_t b = 0;
  bool operator==(const Pixel& o) const { return r == o.r && g == o.g && b == o.b; }
};

class RasterImage {
 public:
  RasterImage() = default;
  RasterImage(int width, int height) : width_(width), height_(height) {
    pixels_.assign(static_cast<size_t>(width) * static_cast<size_t>(height), Pixel{});
  }

  int width() const { return width_; }
  int height() const { return height_; }
  bool empty() const { return pixels_.empty(); }
  int64_t pixel_count() const { return static_cast<int64_t>(pixels_.size()); }

  const Pixel& at(int x, int y) const {
    return pixels_[static_cast<size_t>(y) * static_cast<size_t>(width_) + static_cast<size_t>(x)];
  }
  Pixel& at(int x, int y) {
    return pixels_[static_cast<size_t>(y) * static_cast<size_t>(width_) + static_cast<size_t>(x)];
  }
  // Clamped access for filters that read past edges.
  const Pixel& at_clamped(int x, int y) const;

  const std::vector<Pixel>& pixels() const { return pixels_; }
  std::vector<Pixel>& pixels() { return pixels_; }

 private:
  int width_ = 0;
  int height_ = 0;
  std::vector<Pixel> pixels_;
};

// --- Operations (each returns a new image) -------------------------------------------

// Averages factor x factor blocks; output dimensions are ceil(dim/factor).
RasterImage BoxDownscale(const RasterImage& in, int factor);

// 3x3 box blur applied `passes` times (the paper's "low-pass filter").
RasterImage LowPassFilter(const RasterImage& in, int passes);

// Reduces each channel to `bits` significant bits (bit-depth reduction for
// handheld-device variants, paper §2.3).
RasterImage ReduceBitDepth(const RasterImage& in, int bits);

// Median-cut color quantization to at most `colors` palette entries. Returns the
// palette and writes each pixel's palette index into `indices`.
std::vector<Pixel> MedianCutPalette(const RasterImage& in, int colors,
                                    std::vector<uint8_t>* indices);

// Mean absolute per-channel error between same-sized images (quality metric for
// tests: distillation must stay "still useful").
double MeanAbsoluteError(const RasterImage& a, const RasterImage& b);

// --- Synthesis -----------------------------------------------------------------------

// Generates a "photo-like" image: smooth gradients, soft blobs and mild noise.
// Compresses well at low quality — the content class TranSend distills hardest.
RasterImage SynthesizePhoto(Rng* rng, int width, int height);

// Generates an "icon/cartoon-like" image: few flat colors, hard edges — the under-
// 1KB GIF class (bullets, icons) that TranSend passes through undistilled.
RasterImage SynthesizeIcon(Rng* rng, int width, int height);

}  // namespace sns

#endif  // SRC_CONTENT_IMAGE_H_
