// Synthetic HTML generation, a minimal tag scanner, and the rewriting primitives
// behind TranSend's HTML "munger" distiller.
//
// Paper §3.1.6: the HTML distiller "marks up inline image references with
// distillation preferences, adds extra links next to distilled images so that users
// can retrieve the original content, and adds a 'toolbar' to each page". These are
// genuine string transformations over genuine (synthetic) pages.

#ifndef SRC_CONTENT_HTML_H_
#define SRC_CONTENT_HTML_H_

#include <string>
#include <vector>

#include "src/util/rng.h"

namespace sns {

// --- Generation -------------------------------------------------------------------

struct HtmlGenOptions {
  int paragraphs = 5;
  int words_per_paragraph = 60;
  int inline_images = 3;   // <img src=...> references emitted into the page.
  int links = 4;
  std::string base_url = "http://www.example.edu";
};

// Produces a page with headings, lorem-style prose, links, and <img> references.
// Image URLs are synthesized under base_url; callers collect them via
// ExtractImageRefs to fetch/distill referenced content.
std::string GenerateHtmlPage(Rng* rng, const HtmlGenOptions& options);

// --- Scanning ----------------------------------------------------------------------

struct HtmlTag {
  std::string name;                 // Lowercased, e.g. "img", "a", "/a".
  size_t begin = 0;                 // Offset of '<'.
  size_t end = 0;                   // Offset one past '>'.
  std::vector<std::pair<std::string, std::string>> attrs;
};

// Scans all tags in order; tolerant of attribute quoting styles and stray '<'.
std::vector<HtmlTag> ScanTags(const std::string& html);

// Returns the value of `attr` within a tag, or "" if absent.
std::string TagAttr(const HtmlTag& tag, const std::string& attr);

// All <img src=...> URLs in document order.
std::vector<std::string> ExtractImageRefs(const std::string& html);

// All <a href=...> URLs in document order.
std::vector<std::string> ExtractLinks(const std::string& html);

// Plain text with all tags removed (used by the keyword-filter and culture-page
// aggregators).
std::string StripTags(const std::string& html);

// --- Rewriting -------------------------------------------------------------------

struct MungeOptions {
  bool add_toolbar = true;           // Prepend the TranSend preferences toolbar.
  bool annotate_images = true;       // Rewrite <img> srcs through the proxy.
  bool add_original_links = true;    // "[original]" link next to each image.
  std::string proxy_prefix = "http://transend.berkeley.edu/distill?src=";
  std::string toolbar_html =
      "<div class=\"transend-toolbar\">[TranSend] quality: <a href=\"/prefs?q=low\">low</a> "
      "<a href=\"/prefs?q=med\">med</a> <a href=\"/prefs?q=high\">high</a></div>";
};

// Applies the TranSend HTML distillation: returns the rewritten page.
std::string MungeHtml(const std::string& html, const MungeOptions& options);

// Wraps every occurrence of `keyword` (case-insensitive, whole word) in the given
// open/close markup, skipping text inside tags. The keyword-filter service (§5.1).
std::string HighlightKeyword(const std::string& html, const std::string& keyword,
                             const std::string& open_markup, const std::string& close_markup);

}  // namespace sns

#endif  // SRC_CONTENT_HTML_H_
