// A unit of web content flowing through the system: the thing caches store and
// distillers transform.

#ifndef SRC_CONTENT_CONTENT_H_
#define SRC_CONTENT_CONTENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/content/mime.h"

namespace sns {

struct Content {
  std::string url;
  MimeType mime = MimeType::kOther;
  std::vector<uint8_t> bytes;  // Encoded representation (SGIF/SJPG/HTML text/...).

  int64_t size() const { return static_cast<int64_t>(bytes.size()); }

  static std::shared_ptr<const Content> Make(std::string url, MimeType mime,
                                             std::vector<uint8_t> bytes) {
    auto c = std::make_shared<Content>();
    c->url = std::move(url);
    c->mime = mime;
    c->bytes = std::move(bytes);
    return c;
  }
};

using ContentPtr = std::shared_ptr<const Content>;

}  // namespace sns

#endif  // SRC_CONTENT_CONTENT_H_
