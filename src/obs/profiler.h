// Low-overhead wall-clock zone profiler for the engine hot paths.
//
// Everything else in src/obs measures *simulated* time. This profiler measures
// *host* CPU wall-clock — where the engine itself burns cycles — which is what
// ROADMAP items 1 and 2 need ("intrusive per-process queues if profiles still
// show them"; "bench the manager ... until beacon fan-in or spawn-policy scans
// saturate"). Spans and critical paths tell you where the cluster spends sim
// time; zones tell you where the simulator spends real time.
//
// Model: a static registry of named zones (registered once per instrumentation
// site via SNS_PROFILE_ZONE), RAII scope objects, and thread-local accumulators
// merged on snapshot. Attribution is nesting-exact: a zone's `total` is the
// wall time between its outermost entry and exit (re-entrant inner frames do
// not double-count), and its `self` is total minus the time attributed to
// nested zones, so self sums are disjoint and comparable.
//
// Cost discipline: disabled (the default), a zone entry is one predicted
// branch — zero accumulation, safe to leave compiled into release paths.
// Enabled, every entry pays an exact count increment; clock reads are taken
// only on every 2^stride_log2-th entry, and the observed duration is scaled by
// the stride so totals remain unbiased estimates. Hot leaf zones (timer-wheel
// schedule/cancel at ~100 ns/op) register with a stride so two clock_gettime
// calls are amortized away; zones registered with stride 0 are timed on every
// entry and their self/total attribution is exact, not statistical. Enable()
// calibrates the per-entry cost of both paths, so SelfOverhead() reports a
// *measured* bound (calibrated cost x exact entry counts / measured wall
// window) — the number the profile-smoke CI gate holds under 3%.
//
// Single-threaded simulators are the design center: toggling Enable/Disable
// while zones are open on another thread is not supported.

#ifndef SRC_OBS_PROFILER_H_
#define SRC_OBS_PROFILER_H_

#include <time.h>

#include <cstdint>
#include <string>
#include <vector>

namespace sns {

namespace prof_internal {

constexpr int kMaxZones = 128;
constexpr int kMaxDepth = 64;

struct Frame {
  int zone;
  int64_t start_ns;
  int64_t child_ns;  // Scaled time attributed to nested zones so far.
};

struct ThreadState {
  int64_t count[kMaxZones] = {};        // Exact entries (every entry counts).
  int64_t timed[kMaxZones] = {};        // Entries that took clock readings.
  int64_t total_ns[kMaxZones] = {};     // Scaled; outermost frames only.
  int64_t self_ns[kMaxZones] = {};      // Scaled; total minus nested zones.
  int64_t root_ns[kMaxZones] = {};      // Scaled; frames entered at stack depth 0.
  int32_t live_depth[kMaxZones] = {};   // Open timed frames per zone (re-entrancy).
  Frame stack[kMaxDepth];
  int stack_depth = 0;
};

extern bool g_enabled;
extern thread_local ThreadState* g_tls;
extern uint64_t g_stride_mask[kMaxZones];  // (1 << stride_log2) - 1 per zone.

// Registers this thread's state with the profiler (first zone entry per thread).
ThreadState* TlsSlow();

inline int64_t NowNs() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1000000000 + ts.tv_nsec;
}

}  // namespace prof_internal

class Profiler {
 public:
  static Profiler& Get();

  // Registers (or finds) the zone named `name`. Idempotent by name: the first
  // registration's stride wins. stride_log2 > 0 times every 2^k-th entry; 0
  // times every entry (exact attribution). Returns the zone id.
  int RegisterZone(const char* name, int stride_log2 = 0);

  static bool enabled() { return prof_internal::g_enabled; }
  // Turns collection on and calibrates the per-entry cost model (untimed and
  // timed paths) used by SelfOverheadNs(). Accumulators are reset.
  void Enable();
  void Disable();
  // Zeroes accumulators and the measurement window; registrations survive.
  void Reset();

  // Brackets the wall-clock window Coverage()/SelfOverhead() are computed
  // against. Begin/End may be called repeatedly; windows accumulate.
  void BeginMeasurement();
  void EndMeasurement();
  int64_t measured_wall_ns() const;

  struct ZoneStats {
    std::string name;
    int stride_log2 = 0;
    int64_t count = 0;     // Exact.
    int64_t timed = 0;     // Entries that took clock readings.
    int64_t total_ns = 0;  // Exact for stride 0; scaled estimate otherwise.
    int64_t self_ns = 0;
    int64_t root_ns = 0;   // Portion of total entered at the top of the stack.
  };
  // Merged across threads, ordered by descending self_ns.
  std::vector<ZoneStats> Snapshot() const;

  // Calibrated cost model (ns per entry; 0 until Enable() has calibrated).
  double entry_cost_ns() const { return entry_cost_ns_; }
  double timed_entry_cost_ns() const { return timed_entry_cost_ns_; }
  // Measured bound on profiler-added wall time: calibrated costs x counts.
  int64_t SelfOverheadNs() const;
  // Fraction of the measurement window attributed to named root-level zones.
  double Coverage() const;
  // SelfOverheadNs() as a fraction of the measurement window.
  double SelfOverhead() const;

  // The bench artifact "profile" section. Always valid JSON; when the profiler
  // never ran it is {"enabled":false,...} with empty zones.
  std::string ToJson() const;

 private:
  Profiler() = default;

  double entry_cost_ns_ = 0;
  double timed_entry_cost_ns_ = 0;
};

// RAII zone scope. The constructor argument is a zone id from RegisterZone.
class ProfileZone {
 public:
  explicit ProfileZone(int zone) {
    if (__builtin_expect(!prof_internal::g_enabled, 1)) {
      return;
    }
    Enter(zone);
  }
  ~ProfileZone() {
    if (__builtin_expect(zone_ < 0, 1)) {
      return;
    }
    Exit();
  }

  ProfileZone(const ProfileZone&) = delete;
  ProfileZone& operator=(const ProfileZone&) = delete;

 private:
  void Enter(int zone) {
    using namespace prof_internal;
    ThreadState* t = g_tls;
    if (__builtin_expect(t == nullptr, 0)) {
      t = TlsSlow();
    }
    uint64_t n = static_cast<uint64_t>(t->count[zone]++);
    if ((n & g_stride_mask[zone]) != 0 || t->stack_depth >= kMaxDepth) {
      return;  // Untimed entry: the count was the whole cost.
    }
    ++t->timed[zone];
    ++t->live_depth[zone];
    Frame& f = t->stack[t->stack_depth++];
    f.zone = zone;
    f.child_ns = 0;
    f.start_ns = NowNs();
    zone_ = zone;
  }

  void Exit();

  int zone_ = -1;
};

// Declares a zone site: registers the zone once (function-local static) and
// opens an RAII scope covering the rest of the enclosing block.
#define SNS_PROF_CONCAT_(a, b) a##b
#define SNS_PROF_CONCAT(a, b) SNS_PROF_CONCAT_(a, b)
#define SNS_PROFILE_ZONE(name) SNS_PROFILE_ZONE_STRIDE(name, 0)
#define SNS_PROFILE_ZONE_STRIDE(name, stride_log2)                        \
  static const int SNS_PROF_CONCAT(sns_prof_zone_id_, __LINE__) =         \
      ::sns::Profiler::Get().RegisterZone((name), (stride_log2));         \
  ::sns::ProfileZone SNS_PROF_CONCAT(sns_prof_scope_, __LINE__)(          \
      SNS_PROF_CONCAT(sns_prof_zone_id_, __LINE__))

// Chrome-trace counter-track events ("C" phase) for every zone with nonzero
// self time, suffixed with a trailing comma when non-empty — ready to splice
// into ExportChromeTrace's event stream. Empty when the profiler never ran.
std::string ProfilerCounterTrackJson();

}  // namespace sns

#endif  // SRC_OBS_PROFILER_H_
