// Critical-path analysis: decomposes each completed request's end-to-end latency
// into named stages by walking its span tree.
//
// Answers "where did this request's 800 ms go?" — the question an end-of-run
// counter snapshot cannot. For every trace with a recorded root span the analyzer
// attributes each nanosecond of the root's duration to exactly one stage:
// intervals covered by a child span recurse into the child; gaps between children
// are charged to the enclosing span's own stage (for the root that is SAN
// transit — time the request spent on the wire between client and front end).
// Children are clipped to their parent's window and to each other, so the stage
// sums equal the root's duration *exactly* (integer nanoseconds, no residue).
//
// Stage names (the vocabulary of the breakdown table):
//   fe_accept_queue_wait  waiting for a free front-end thread
//   fe_processing         front-end dispatch logic + per-request CPU
//   cache_lookup          cache-node get handling
//   cache_write           cache-node put handling (usually off the critical path)
//   profile_lookup        customization-database fetch (network included)
//   origin_fetch          fetch from the simulated Internet
//   worker_queue_wait     queued at the worker before service
//   worker_service        worker compute
//   san_transit           message transit between components
//   retry_backoff_idle    deliberate idle between task retry attempts
//   manager_stub_lookup   waiting on the manager to locate/spawn a worker

#ifndef SRC_OBS_CRITICAL_PATH_H_
#define SRC_OBS_CRITICAL_PATH_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/obs/trace.h"
#include "src/util/stats.h"
#include "src/util/time.h"

namespace sns {

// The stage charged for a span's self time (the parts of its window not covered
// by children). Unknown operations attribute to their own name, keeping sums
// exact for services that add custom spans.
std::string CriticalStageFor(const std::string& operation);

// One request's decomposition. Invariant: the values in `stages` sum to `total`.
struct CriticalPath {
  uint64_t trace_id = 0;
  SimDuration total = 0;  // Root span duration (client-observed latency).
  std::string root_outcome;
  std::map<std::string, SimDuration> stages;

  SimDuration StageSum() const;
};

// Decomposes one trace's spans (as returned by TraceCollector::Trace). Returns
// nullopt for traces without a root span (requests still in flight when the
// collector was read, or partially evicted traces).
std::optional<CriticalPath> AnalyzeTrace(const std::vector<SpanRecord>& spans);

// Aggregates per-request decompositions into per-stage histograms and a
// p50/p99 breakdown table.
class CriticalPathSummary {
 public:
  CriticalPathSummary();

  void Add(const CriticalPath& path);
  // Analyzes and adds every retained trace of `collector` that has a root span.
  static CriticalPathSummary FromCollector(const TraceCollector& collector);

  int64_t request_count() const { return requests_; }
  std::vector<std::string> StageNames() const;
  // Per-request seconds spent in the stage; nullptr for unknown stages.
  const LogHistogram* StageHistogram(const std::string& stage) const;
  const LogHistogram& TotalHistogram() const { return total_hist_; }

  // {"requests":N,"total":{...},"stages":{"name":{"count":..,"total_s":..,
  //  "share":..,"p50_s":..,"p99_s":..},...}} — share is the stage's fraction of
  // all attributed time across requests.
  std::string ToJson() const;
  // Human-readable breakdown table (bench stdout).
  std::string RenderTable() const;

 private:
  struct StageStats {
    LogHistogram hist;
    double total_s = 0.0;
    int64_t count = 0;  // Requests with nonzero time in this stage.
  };

  StageStats* GetStage(const std::string& stage);

  int64_t requests_ = 0;
  LogHistogram total_hist_;
  std::map<std::string, StageStats> stages_;
};

}  // namespace sns

#endif  // SRC_OBS_CRITICAL_PATH_H_
