#include "src/obs/events.h"

#include <utility>

namespace sns {

void EventLog::RecordMessage(SanEvent ev) {
  ++messages_recorded_;
  messages_.push_back(std::move(ev));
  while (messages_.size() > max_messages_) {
    messages_.pop_front();
  }
}

void EventLog::RecordFault(FaultInstant ev) {
  ++faults_recorded_;
  faults_.push_back(std::move(ev));
  while (faults_.size() > max_faults_) {
    faults_.pop_front();
  }
}

}  // namespace sns
