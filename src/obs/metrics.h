// Cluster-wide metrics registry: named counters, gauges, and histograms.
//
// Every Process registers instruments here instead of keeping ad-hoc counter
// members, so the monitor (paper §3.1.7) and the bench harness can export one
// machine-readable snapshot of the whole system. Names are dotted paths:
// "<component>[.<instance>].<metric>", e.g. "manager.beacons_sent",
// "fe.0.completed_requests", "worker.distill-jpeg.p17.completed_tasks".
//
// Instruments live as long as the registry (i.e. the Cluster): a restarted process
// re-attaches to the same instrument, so counters are cumulative across process
// incarnations — soft state dies with a process, measurements do not.

#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "src/util/stats.h"

namespace sns {

// Escapes a string for embedding inside a JSON string literal.
std::string JsonEscape(const std::string& s);

// Monotonically increasing count of events.
class Counter {
 public:
  void Increment(int64_t by = 1) { value_ += by; }
  int64_t value() const { return value_; }

 private:
  int64_t value_ = 0;
};

// Last-writer-wins instantaneous value (queue depth, bytes in use, ...).
class Gauge {
 public:
  void Set(double value) { value_ = value; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Finds or creates the named instrument. Returned pointers are stable for the
  // registry's lifetime. For histograms the bucket layout is fixed by the first
  // caller; later callers with a different layout get the existing instrument.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name, double lo, double hi, size_t buckets);

  // Lookup without creation; nullptr when absent.
  const Counter* FindCounter(const std::string& name) const;
  const Gauge* FindGauge(const std::string& name) const;
  const Histogram* FindHistogram(const std::string& name) const;

  // Convenience: counter value or 0 when the instrument does not exist yet.
  int64_t CounterValue(const std::string& name) const;

  size_t instrument_count() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  // Visit every instrument in sorted name order (the time-series recorder samples
  // the whole registry each tick through these).
  template <typename Fn>
  void ForEachCounter(Fn&& fn) const {
    for (const auto& [name, counter] : counters_) {
      fn(name, *counter);
    }
  }
  template <typename Fn>
  void ForEachGauge(Fn&& fn) const {
    for (const auto& [name, gauge] : gauges_) {
      fn(name, *gauge);
    }
  }
  template <typename Fn>
  void ForEachHistogram(Fn&& fn) const {
    for (const auto& [name, histogram] : histograms_) {
      fn(name, *histogram);
    }
  }

  // One "name value" line per instrument, sorted by name (histograms render
  // count/mean/p50/p95/p99). Meant for logs and the monitor's text page.
  std::string RenderText() const;

  // {"counters":{...},"gauges":{...},"histograms":{"name":{"count":..,...}}}.
  std::string RenderJson() const;

 private:
  // std::map keeps deterministic, sorted iteration for exports; unique_ptr keeps
  // instrument addresses stable across rehash-free inserts.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace sns

#endif  // SRC_OBS_METRICS_H_
