#include "src/obs/availability.h"

#include <algorithm>

#include "src/util/strings.h"

namespace sns {

AvailabilityLedger::AvailabilityLedger(SimDuration window)
    : window_(window > 0 ? window : Seconds(1)) {}

void AvailabilityLedger::BindMetrics(MetricsRegistry* metrics) {
  offered_gauge_ = metrics->GetGauge("availability.offered");
  answered_gauge_ = metrics->GetGauge("availability.answered");
  yield_gauge_ = metrics->GetGauge("availability.yield");
  harvest_gauge_ = metrics->GetGauge("availability.harvest");
  UpdateGauges();
}

void AvailabilityLedger::UpdateGauges() {
  if (offered_gauge_ == nullptr) {
    return;
  }
  offered_gauge_->Set(static_cast<double>(offered_));
  answered_gauge_->Set(static_cast<double>(answered_));
  yield_gauge_->Set(RunYield());
  harvest_gauge_->Set(RunHarvest());
}

void AvailabilityLedger::RecordOffered(SimTime at) {
  ++offered_;
  WindowRow& row = windows_[WindowIndex(at)];
  row.second = WindowIndex(at);
  ++row.offered;
  UpdateGauges();
}

void AvailabilityLedger::RecordAnswered(SimTime at, double harvest) {
  harvest = std::clamp(harvest, 0.0, 1.0);
  ++answered_;
  harvest_sum_ += harvest;
  WindowRow& row = windows_[WindowIndex(at)];
  row.second = WindowIndex(at);
  ++row.answered;
  row.harvest_sum += harvest;
  UpdateGauges();
}

void AvailabilityLedger::RecordUnanswered(SimTime at, const std::string& reason) {
  ++unanswered_;
  ++unanswered_by_reason_[reason];
  WindowRow& row = windows_[WindowIndex(at)];
  row.second = WindowIndex(at);
  ++row.unanswered;
  UpdateGauges();
}

double AvailabilityLedger::RunYield() const {
  return offered_ > 0 ? static_cast<double>(answered_) / static_cast<double>(offered_)
                      : 1.0;
}

double AvailabilityLedger::RunHarvest() const {
  return answered_ > 0 ? harvest_sum_ / static_cast<double>(answered_) : 1.0;
}

std::vector<AvailabilityLedger::WindowRow> AvailabilityLedger::Windows() const {
  std::vector<WindowRow> rows;
  if (windows_.empty()) {
    return rows;
  }
  int64_t first = windows_.begin()->first;
  int64_t last = windows_.rbegin()->first;
  rows.reserve(static_cast<size_t>(last - first + 1));
  for (int64_t s = first; s <= last; ++s) {
    auto it = windows_.find(s);
    if (it != windows_.end()) {
      rows.push_back(it->second);
    } else {
      WindowRow quiet;
      quiet.second = s;
      rows.push_back(quiet);
    }
  }
  return rows;
}

std::vector<AvailabilityLedger::RecoveryGap> AvailabilityLedger::DeriveRecoveryGaps(
    const EventLog* events) const {
  std::vector<RecoveryGap> gaps;
  std::vector<WindowRow> rows = Windows();
  double window_s = ToSeconds(window_);
  size_t i = 0;
  while (i < rows.size()) {
    if (rows[i].offered > 0 && rows[i].answered == 0) {
      size_t j = i;
      while (j < rows.size() && rows[j].offered > 0 && rows[j].answered == 0) {
        ++j;
      }
      RecoveryGap gap;
      gap.start_s = static_cast<double>(rows[i].second) * window_s;
      gap.end_s = static_cast<double>(rows[i].second + static_cast<int64_t>(j - i)) *
                  window_s;
      gap.duration_s = gap.end_s - gap.start_s;
      if (events != nullptr) {
        // Attribute to the latest fault at or before the gap's end — the fault
        // whose recovery this gap measures.
        SimTime gap_end = static_cast<SimTime>(gap.end_s * kSecond);
        for (const FaultInstant& fault : events->faults()) {
          if (fault.at <= gap_end) {
            gap.fault = fault.what;
          }
        }
      }
      gaps.push_back(std::move(gap));
      i = j;
    } else {
      ++i;
    }
  }
  return gaps;
}

std::string AvailabilityLedger::ToJson(const EventLog* events) const {
  std::vector<WindowRow> rows = Windows();
  std::string seconds, offered, answered, yields, harvests;
  for (const WindowRow& row : rows) {
    const char* sep = seconds.empty() ? "" : ",";
    seconds += StrFormat("%s%lld", sep, static_cast<long long>(row.second));
    offered += StrFormat("%s%lld", sep, static_cast<long long>(row.offered));
    answered += StrFormat("%s%lld", sep, static_cast<long long>(row.answered));
    double y = row.offered > 0
                   ? static_cast<double>(row.answered) / static_cast<double>(row.offered)
                   : 1.0;
    double h = row.answered > 0 ? row.harvest_sum / static_cast<double>(row.answered)
                                : 1.0;
    yields += StrFormat("%s%.4f", sep, y);
    harvests += StrFormat("%s%.4f", sep, h);
  }

  std::string reasons;
  for (const auto& [reason, count] : unanswered_by_reason_) {
    if (!reasons.empty()) reasons += ",";
    reasons += StrFormat("\"%s\":%lld", JsonEscape(reason).c_str(),
                         static_cast<long long>(count));
  }

  std::string faults;
  if (events != nullptr) {
    for (const FaultInstant& fault : events->faults()) {
      if (!faults.empty()) faults += ",";
      faults += StrFormat("{\"t_s\":%.3f,\"what\":\"%s\"}", ToSeconds(fault.at),
                          JsonEscape(fault.what).c_str());
    }
  }

  std::string gaps_json;
  double max_gap_s = 0;
  for (const RecoveryGap& gap : DeriveRecoveryGaps(events)) {
    if (!gaps_json.empty()) gaps_json += ",";
    gaps_json += StrFormat(
        "{\"start_s\":%.3f,\"end_s\":%.3f,\"duration_s\":%.3f,\"fault\":\"%s\"}",
        gap.start_s, gap.end_s, gap.duration_s, JsonEscape(gap.fault).c_str());
    max_gap_s = std::max(max_gap_s, gap.duration_s);
  }

  return StrFormat(
      "{\"window_s\":%.3f,\"offered\":%lld,\"answered\":%lld,\"unanswered\":%lld,"
      "\"yield\":%.6f,\"harvest\":%.6f,\"unanswered_by_reason\":{%s},"
      "\"windows\":{\"second\":[%s],\"offered\":[%s],\"answered\":[%s],"
      "\"yield\":[%s],\"harvest\":[%s]},"
      "\"faults\":[%s],\"recovery_gaps\":[%s],\"max_recovery_gap_s\":%.3f}",
      ToSeconds(window_), static_cast<long long>(offered_),
      static_cast<long long>(answered_), static_cast<long long>(unanswered_),
      RunYield(), RunHarvest(), reasons.c_str(), seconds.c_str(), offered.c_str(),
      answered.c_str(), yields.c_str(), harvests.c_str(), faults.c_str(),
      gaps_json.c_str(), max_gap_s);
}

std::string AvailabilityLedger::RenderTable(const EventLog* events) const {
  std::vector<WindowRow> rows = Windows();
  if (rows.empty()) {
    return "  (no requests offered)\n";
  }
  std::vector<RecoveryGap> gaps = DeriveRecoveryGaps(events);
  double window_s = ToSeconds(window_);
  std::string out = StrFormat("  %6s %8s %9s %7s %9s  %s\n", "t(s)", "offered",
                              "answered", "yield", "harvest", "events");
  for (const WindowRow& row : rows) {
    double t = static_cast<double>(row.second) * window_s;
    double y = row.offered > 0
                   ? static_cast<double>(row.answered) / static_cast<double>(row.offered)
                   : 1.0;
    double h = row.answered > 0 ? row.harvest_sum / static_cast<double>(row.answered)
                                : 1.0;
    std::string notes;
    if (events != nullptr) {
      for (const FaultInstant& fault : events->faults()) {
        if (WindowIndex(fault.at) == row.second) {
          if (!notes.empty()) notes += "; ";
          notes += "* " + fault.what;
        }
      }
    }
    for (const RecoveryGap& gap : gaps) {
      if (t >= gap.start_s && t < gap.end_s) {
        if (!notes.empty()) notes += "; ";
        notes += "! outage";
      }
    }
    out += StrFormat("  %6.0f %8lld %9lld %7.3f %9.3f  %s\n", t,
                     static_cast<long long>(row.offered),
                     static_cast<long long>(row.answered), y, h, notes.c_str());
  }
  out += StrFormat("  run: yield %.4f harvest %.4f", RunYield(), RunHarvest());
  if (!gaps.empty()) {
    double max_gap = 0;
    for (const RecoveryGap& gap : gaps) max_gap = std::max(max_gap, gap.duration_s);
    out += StrFormat(", %zu recovery gap(s), longest %.0f s", gaps.size(), max_gap);
  }
  out += "\n";
  return out;
}

void AvailabilityLedger::Reset() {
  offered_ = 0;
  answered_ = 0;
  unanswered_ = 0;
  harvest_sum_ = 0;
  windows_.clear();
  unanswered_by_reason_.clear();
  UpdateGauges();
}

}  // namespace sns
