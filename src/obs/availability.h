// Harvest/yield availability ledger (the paper's §3.3 degradation model, with
// the Fox/Brewer harvest-yield vocabulary).
//
//   yield   = answered / offered       — what fraction of queries got an answer
//   harvest = completeness of answers  — how much of the full answer each got
//
// Every offered request is recorded once; every resolution is recorded once as
// either an answer carrying a harvest fraction in [0, 1] (1.0 = the full
// requested representation; approximate/degraded answers proportionally less —
// the mapping from response provenance to fraction lives with the service
// layer, see ResponseHarvest in src/sns/messages.h) or as unanswered with a
// reason (error / timeout / late / send_failed). The ledger buckets both into
// fixed windows of sim time, producing the yield and harvest time-series, and
// folds the EventLog's fault instants (injector faults, quorum transitions,
// fence kills) into an availability timeline: per-window yield annotated with
// the faults that landed there, plus derived recovery gaps — maximal runs of
// windows where load was offered but nothing was answered, attributed to the
// most recent preceding fault. This is the "paper-style availability figure"
// ROADMAP item 5 wants in place of the single recovery_s scalar.
//
// Layering: obs stays service-agnostic. The ledger takes plain times and
// fractions; what a fraction *means* is the caller's contract.

#ifndef SRC_OBS_AVAILABILITY_H_
#define SRC_OBS_AVAILABILITY_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/obs/events.h"
#include "src/obs/metrics.h"
#include "src/util/time.h"

namespace sns {

class AvailabilityLedger {
 public:
  explicit AvailabilityLedger(SimDuration window = Seconds(1));

  // Registers and thereafter maintains the availability.* gauges (offered,
  // answered, yield, harvest) so monitor snapshots carry the running totals.
  void BindMetrics(MetricsRegistry* metrics);

  void RecordOffered(SimTime at);
  // `harvest` in [0, 1] (clamped): the completeness of the answer.
  void RecordAnswered(SimTime at, double harvest);
  // reason: "error", "timeout", "late", "send_failed" (free-form tolerated).
  void RecordUnanswered(SimTime at, const std::string& reason);

  int64_t offered() const { return offered_; }
  int64_t answered() const { return answered_; }
  int64_t unanswered() const { return unanswered_; }
  // Whole-run yield: answered / offered (1.0 when nothing was offered).
  double RunYield() const;
  // Whole-run harvest: mean fraction over answered requests (1.0 when none).
  double RunHarvest() const;

  struct WindowRow {
    int64_t second = 0;  // Window index in units of `window` (seconds for 1 s).
    int64_t offered = 0;
    int64_t answered = 0;
    int64_t unanswered = 0;
    double harvest_sum = 0;  // Sum of per-answer fractions in this window.
  };

  struct RecoveryGap {
    double start_s = 0;     // First zero-yield window (inclusive), seconds.
    double end_s = 0;       // First window with answers again (exclusive).
    double duration_s = 0;
    std::string fault;      // Most recent preceding fault, "" if none found.
  };

  // Contiguous per-window rows from first to last activity (quiet interior
  // windows filled with zeros). Empty when nothing was recorded.
  std::vector<WindowRow> Windows() const;
  // Maximal runs of windows with offered > 0 and answered == 0, each
  // attributed to the latest fault in `events` at or before the run's end.
  std::vector<RecoveryGap> DeriveRecoveryGaps(const EventLog* events) const;

  const std::map<std::string, int64_t>& unanswered_by_reason() const {
    return unanswered_by_reason_;
  }

  // The artifact "availability" section: run totals, windowed yield/harvest
  // series (columnar), fault annotations, and derived recovery gaps.
  std::string ToJson(const EventLog* events) const;
  // Paper-style figure table: one row per window with yield, harvest, and
  // fault/gap annotations. For bench/scenario console output.
  std::string RenderTable(const EventLog* events) const;

  void Reset();

 private:
  int64_t WindowIndex(SimTime at) const { return at / window_; }
  void UpdateGauges();

  SimDuration window_;
  int64_t offered_ = 0;
  int64_t answered_ = 0;
  int64_t unanswered_ = 0;
  double harvest_sum_ = 0;
  std::map<int64_t, WindowRow> windows_;
  std::map<std::string, int64_t> unanswered_by_reason_;

  Gauge* offered_gauge_ = nullptr;
  Gauge* answered_gauge_ = nullptr;
  Gauge* yield_gauge_ = nullptr;
  Gauge* harvest_gauge_ = nullptr;
};

}  // namespace sns

#endif  // SRC_OBS_AVAILABILITY_H_
