// Distributed request tracing for the simulated cluster.
//
// The paper's monitor (§3.1.7) observes components from the outside; traces add the
// complementary inside view: one record per hop of a request's life (front end,
// cache, worker, manager) stitched together by a trace id that rides on every
// Message. Ids are allocated by a cluster-wide TraceCollector, so they are
// deterministic across runs of the simulator.

#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/util/time.h"

namespace sns {

// Carried on every Message (src/net/message.h). A zero trace_id means "untraced";
// background chatter (beacons, load reports) stays untraced unless a component
// deliberately stamps it from a request context.
struct TraceContext {
  uint64_t trace_id = 0;        // Groups all spans of one client request.
  uint64_t span_id = 0;         // This hop's span.
  uint64_t parent_span_id = 0;  // 0 for the root span.
  uint32_t hop_count = 0;       // Hops from the root; guards against forward loops.

  bool valid() const { return trace_id != 0; }
};

// One completed unit of work inside a trace, recorded by the process that did it.
struct SpanRecord {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;
  std::string component;  // Process name, e.g. "front-end-0".
  std::string operation;  // e.g. "fe.request", "cache.get", "worker.task".
  int32_t node = -1;
  SimTime start = 0;
  SimTime end = 0;
  std::string outcome;  // "ok", "hit", "miss", "error", "timeout", ...

  std::string ToJson() const;
};

// Allocates trace/span ids and accumulates finished spans, reassembling them into
// whole-request traces. Owned by the Cluster so every Process shares one instance.
// Retention is bounded: once more than `max_traces` distinct trace ids are held, the
// oldest trace is evicted FIFO (long experiments keep the tail, dumps stay bounded).
class TraceCollector {
 public:
  explicit TraceCollector(size_t max_traces = 4096) : max_traces_(max_traces) {}

  // Starts a new trace; the returned context is the root span.
  TraceContext StartTrace();

  // Derives the context for a child span of `parent`. If `parent` is invalid the
  // result is invalid too (untraced work stays untraced).
  TraceContext ChildOf(const TraceContext& parent);

  // Records a finished span. Invalid (untraced) spans are dropped.
  void Record(SpanRecord span);

  // All spans of one trace, ordered by (start, span_id). Empty if unknown/evicted.
  std::vector<SpanRecord> Trace(uint64_t trace_id) const;

  // Trace ids currently retained, oldest first.
  std::vector<uint64_t> TraceIds() const;

  size_t trace_count() const { return spans_by_trace_.size(); }
  size_t span_count() const { return span_count_; }
  uint64_t traces_started() const { return next_trace_id_ - 1; }

  // {"traces":[{"trace_id":N,"spans":[...]}, ...]} — traces oldest first.
  std::string ToJson() const;
  std::string TraceToJson(uint64_t trace_id) const;

 private:
  void EvictOldest();

  size_t max_traces_;
  uint64_t next_trace_id_ = 1;
  uint64_t next_span_id_ = 1;
  size_t span_count_ = 0;
  std::deque<uint64_t> trace_order_;  // Insertion order for FIFO eviction.
  std::unordered_map<uint64_t, std::vector<SpanRecord>> spans_by_trace_;
};

}  // namespace sns

#endif  // SRC_OBS_TRACE_H_
