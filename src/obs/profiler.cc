#include "src/obs/profiler.h"

#include <algorithm>
#include <mutex>

#include "src/obs/metrics.h"
#include "src/util/strings.h"

namespace sns {

namespace prof_internal {

bool g_enabled = false;
thread_local ThreadState* g_tls = nullptr;
uint64_t g_stride_mask[kMaxZones] = {};

namespace {

// Registry + thread-state roster, guarded by one mutex. Zone registration and
// thread attach are rare; the hot path touches only g_tls / g_stride_mask.
struct Registry {
  std::mutex mu;
  std::vector<std::string> names;
  std::vector<int> strides;
  std::vector<ThreadState*> threads;
};

Registry& Reg() {
  static Registry* r = new Registry;  // Leaked: zones outlive static dtors.
  return *r;
}

}  // namespace

ThreadState* TlsSlow() {
  Registry& reg = Reg();
  std::lock_guard<std::mutex> lock(reg.mu);
  if (g_tls == nullptr) {
    g_tls = new ThreadState;  // Leaked with the registry; threads are few.
    reg.threads.push_back(g_tls);
  }
  return g_tls;
}

}  // namespace prof_internal

using prof_internal::Frame;
using prof_internal::kMaxZones;
using prof_internal::NowNs;
using prof_internal::Reg;
using prof_internal::ThreadState;

namespace {

// Measurement window accumulation (single-writer: the driving thread).
int64_t g_window_accum_ns = 0;
int64_t g_window_open_at = -1;

// Calibration scratch zone ids (registered lazily inside Enable()).
int g_calib_untimed = -1;
int g_calib_timed = -1;

}  // namespace

void ProfileZone::Exit() {
  using namespace prof_internal;
  ThreadState* t = g_tls;
  int64_t now = NowNs();
  Frame f = t->stack[--t->stack_depth];
  int64_t dur = now - f.start_ns;
  if (dur < 0) dur = 0;
  int shift = __builtin_ctzll(g_stride_mask[zone_] + 1);
  int64_t scaled = dur << shift;
  int64_t self = dur - f.child_ns;
  if (self < 0) self = 0;  // Scaled child estimates can overshoot the frame.
  t->self_ns[zone_] += self << shift;
  if (--t->live_depth[zone_] == 0) {
    t->total_ns[zone_] += scaled;  // Outermost frame only (re-entrancy).
  }
  if (t->stack_depth > 0) {
    t->stack[t->stack_depth - 1].child_ns += scaled;
  } else {
    t->root_ns[zone_] += scaled;
  }
}

Profiler& Profiler::Get() {
  static Profiler* p = new Profiler;
  return *p;
}

int Profiler::RegisterZone(const char* name, int stride_log2) {
  prof_internal::Registry& reg = Reg();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (size_t i = 0; i < reg.names.size(); ++i) {
    if (reg.names[i] == name) {
      return static_cast<int>(i);
    }
  }
  if (reg.names.size() >= kMaxZones) {
    return static_cast<int>(reg.names.size()) - 1;  // Saturate: misattribute, don't crash.
  }
  if (stride_log2 < 0) stride_log2 = 0;
  if (stride_log2 > 20) stride_log2 = 20;
  int id = static_cast<int>(reg.names.size());
  reg.names.emplace_back(name);
  reg.strides.push_back(stride_log2);
  prof_internal::g_stride_mask[id] = (1ull << stride_log2) - 1;
  return id;
}

void Profiler::Enable() {
  if (g_calib_untimed < 0) {
    // Stride 2^20: after the first entry the calibration loop exercises the
    // pure count-only path, which is what the hot zones pay almost always.
    g_calib_untimed = RegisterZone("prof.calibrate_untimed", 20);
    g_calib_timed = RegisterZone("prof.calibrate_timed", 0);
  }
  prof_internal::g_enabled = true;
  constexpr int kUntimedReps = 1 << 17;
  constexpr int kTimedReps = 1 << 13;
  int64_t t0 = NowNs();
  for (int i = 0; i < kUntimedReps; ++i) {
    ProfileZone z(g_calib_untimed);
  }
  int64_t t1 = NowNs();
  for (int i = 0; i < kTimedReps; ++i) {
    ProfileZone z(g_calib_timed);
  }
  int64_t t2 = NowNs();
  entry_cost_ns_ = static_cast<double>(t1 - t0) / kUntimedReps;
  timed_entry_cost_ns_ = static_cast<double>(t2 - t1) / kTimedReps;
  Reset();
}

void Profiler::Disable() { prof_internal::g_enabled = false; }

void Profiler::Reset() {
  prof_internal::Registry& reg = Reg();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (ThreadState* t : reg.threads) {
    *t = ThreadState{};
  }
  g_window_accum_ns = 0;
  g_window_open_at = -1;
}

void Profiler::BeginMeasurement() {
  if (g_window_open_at < 0) {
    g_window_open_at = NowNs();
  }
}

void Profiler::EndMeasurement() {
  if (g_window_open_at >= 0) {
    g_window_accum_ns += NowNs() - g_window_open_at;
    g_window_open_at = -1;
  }
}

int64_t Profiler::measured_wall_ns() const {
  int64_t open = g_window_open_at >= 0 ? NowNs() - g_window_open_at : 0;
  return g_window_accum_ns + open;
}

std::vector<Profiler::ZoneStats> Profiler::Snapshot() const {
  prof_internal::Registry& reg = Reg();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::vector<ZoneStats> out(reg.names.size());
  for (size_t z = 0; z < reg.names.size(); ++z) {
    out[z].name = reg.names[z];
    out[z].stride_log2 = reg.strides[z];
  }
  for (const ThreadState* t : reg.threads) {
    for (size_t z = 0; z < reg.names.size(); ++z) {
      out[z].count += t->count[z];
      out[z].timed += t->timed[z];
      out[z].total_ns += t->total_ns[z];
      out[z].self_ns += t->self_ns[z];
      out[z].root_ns += t->root_ns[z];
    }
  }
  out.erase(std::remove_if(out.begin(), out.end(),
                           [](const ZoneStats& s) { return s.count == 0; }),
            out.end());
  std::sort(out.begin(), out.end(), [](const ZoneStats& a, const ZoneStats& b) {
    return a.self_ns > b.self_ns;
  });
  return out;
}

int64_t Profiler::SelfOverheadNs() const {
  double ns = 0;
  for (const ZoneStats& z : Snapshot()) {
    ns += static_cast<double>(z.count - z.timed) * entry_cost_ns_ +
          static_cast<double>(z.timed) * timed_entry_cost_ns_;
  }
  return static_cast<int64_t>(ns);
}

double Profiler::Coverage() const {
  int64_t window = measured_wall_ns();
  if (window <= 0) {
    return 0;
  }
  int64_t root = 0;
  for (const ZoneStats& z : Snapshot()) {
    root += z.root_ns;
  }
  return static_cast<double>(root) / static_cast<double>(window);
}

double Profiler::SelfOverhead() const {
  int64_t window = measured_wall_ns();
  if (window <= 0) {
    return 0;
  }
  return static_cast<double>(SelfOverheadNs()) / static_cast<double>(window);
}

std::string Profiler::ToJson() const {
  bool ran = measured_wall_ns() > 0 || !Snapshot().empty();
  std::string zones;
  for (const ZoneStats& z : Snapshot()) {
    if (!zones.empty()) zones += ",";
    zones += StrFormat(
        "{\"name\":\"%s\",\"stride_log2\":%d,\"count\":%lld,\"timed\":%lld,"
        "\"total_ns\":%lld,\"self_ns\":%lld,\"root_ns\":%lld}",
        JsonEscape(z.name).c_str(), z.stride_log2, static_cast<long long>(z.count),
        static_cast<long long>(z.timed), static_cast<long long>(z.total_ns),
        static_cast<long long>(z.self_ns), static_cast<long long>(z.root_ns));
  }
  return StrFormat(
      "{\"enabled\":%s,\"measured_wall_ns\":%lld,\"coverage\":%.6f,"
      "\"self_overhead\":%.6f,\"entry_cost_ns\":%.3f,\"timed_entry_cost_ns\":%.3f,"
      "\"zones\":[%s]}",
      ran ? "true" : "false", static_cast<long long>(measured_wall_ns()),
      Coverage(), SelfOverhead(), entry_cost_ns_, timed_entry_cost_ns_,
      zones.c_str());
}

std::string ProfilerCounterTrackJson() {
  const Profiler& prof = Profiler::Get();
  std::vector<Profiler::ZoneStats> zones = prof.Snapshot();
  if (zones.empty()) {
    return "";
  }
  // One counter track per zone on a dedicated "pid", sampled at the window
  // bounds so Perfetto draws cumulative self/total milliseconds.
  constexpr int kProfilerPid = 9999;
  double end_us =
      std::max(1.0, static_cast<double>(prof.measured_wall_ns()) / 1000.0);
  std::string out = StrFormat(
      "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":%d,"
      "\"args\":{\"name\":\"host profiler (wall-clock)\"}},",
      kProfilerPid);
  for (const Profiler::ZoneStats& z : zones) {
    double self_ms = static_cast<double>(z.self_ns) / 1e6;
    double total_ms = static_cast<double>(z.total_ns) / 1e6;
    out += StrFormat(
        "{\"ph\":\"C\",\"name\":\"prof.%s\",\"cat\":\"profile\",\"pid\":%d,"
        "\"tid\":0,\"ts\":0,\"args\":{\"self_ms\":0,\"total_ms\":0}},"
        "{\"ph\":\"C\",\"name\":\"prof.%s\",\"cat\":\"profile\",\"pid\":%d,"
        "\"tid\":0,\"ts\":%.3f,\"args\":{\"self_ms\":%.3f,\"total_ms\":%.3f}},",
        JsonEscape(z.name).c_str(), kProfilerPid, JsonEscape(z.name).c_str(),
        kProfilerPid, end_us, self_ms, total_ms);
  }
  return out;
}

}  // namespace sns
