// Chrome-trace ("Trace Event Format") JSON export, openable in ui.perfetto.dev
// (or chrome://tracing), joining three event sources on one timeline:
//   - TraceCollector spans as complete ("X") slices, one track per
//     (node, component) pair — pid = cluster node, tid = component lane;
//   - SAN message send/deliver pairs as flow arrows ("s"/"f") between tiny
//     marker slices on each node's "san" lane, so a request's causality is a
//     connected chain across processes; drops render as terminal slices;
//   - injected faults as global instant events ("i", scope "g") that draw a
//     vertical marker across every track.
//
// Timestamps are microseconds (the format's unit); sim time is nanoseconds, so
// slices keep sub-microsecond precision via fractional ts values.

#ifndef SRC_OBS_PERFETTO_H_
#define SRC_OBS_PERFETTO_H_

#include <string>

#include "src/obs/events.h"
#include "src/obs/trace.h"

namespace sns {

// Renders every retained trace of `collector`, plus (optionally) the message and
// fault events of `events`, as one Chrome-trace JSON document.
std::string ExportChromeTrace(const TraceCollector& collector, const EventLog* events = nullptr);

}  // namespace sns

#endif  // SRC_OBS_PERFETTO_H_
