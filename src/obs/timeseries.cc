#include "src/obs/timeseries.h"

#include <utility>

#include "src/util/strings.h"

namespace sns {

void TimeSeriesRecorder::AddProbe(const std::string& series, std::function<double()> probe) {
  probes_[series] = std::move(probe);
}

void TimeSeriesRecorder::Record(const std::string& name, SimTime now, double value) {
  Series& s = series_[name];
  s.t.push_back(now);
  s.v.push_back(value);
  while (s.t.size() > max_samples_) {
    s.t.pop_front();
    s.v.pop_front();
  }
}

void TimeSeriesRecorder::SampleAt(SimTime now) {
  ++samples_taken_;
  if (registry_ != nullptr) {
    registry_->ForEachCounter([this, now](const std::string& name, const Counter& c) {
      Record(name, now, static_cast<double>(c.value()));
    });
    registry_->ForEachGauge([this, now](const std::string& name, const Gauge& g) {
      Record(name, now, g.value());
    });
    registry_->ForEachHistogram([this, now](const std::string& name, const Histogram& h) {
      Record(name + ".count", now, static_cast<double>(h.TotalCount()));
      Record(name + ".mean", now, h.summary().mean());
    });
  }
  for (const auto& [name, probe] : probes_) {
    Record(name, now, probe());
  }
}

std::vector<std::string> TimeSeriesRecorder::SeriesNames() const {
  std::vector<std::string> names;
  names.reserve(series_.size());
  for (const auto& [name, s] : series_) {
    names.push_back(name);
  }
  return names;
}

const TimeSeriesRecorder::Series* TimeSeriesRecorder::Find(const std::string& name) const {
  auto it = series_.find(name);
  return it == series_.end() ? nullptr : &it->second;
}

std::string TimeSeriesRecorder::ToJson() const {
  std::string out = StrFormat("{\"interval_ns\":%lld,\"samples\":%lld,\"series\":{",
                              static_cast<long long>(interval_),
                              static_cast<long long>(samples_taken_));
  bool first_series = true;
  for (const auto& [name, s] : series_) {
    if (!first_series) out += ",";
    first_series = false;
    out += "\"" + JsonEscape(name) + "\":{\"t_ns\":[";
    bool first = true;
    for (SimTime t : s.t) {
      if (!first) out += ",";
      first = false;
      out += StrFormat("%lld", static_cast<long long>(t));
    }
    out += "],\"v\":[";
    first = true;
    for (double v : s.v) {
      if (!first) out += ",";
      first = false;
      out += StrFormat("%.6g", v);
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

}  // namespace sns
