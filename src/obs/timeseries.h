// TimeSeriesRecorder: periodic sampling of the whole metrics registry into
// bounded ring buffers, one series per instrument.
//
// End-of-run snapshots (the monitor's ExportJson) answer "how much, in total?";
// the figures in the paper's evaluation — queue lengths tracking an offered-load
// burst (Fig. 6), distillers spawning as the manager's spawn threshold trips —
// need "how much, *when*?". Each sample tick records every registered counter
// (cumulative value), gauge (instantaneous value), and histogram (count and
// mean), plus any custom probes (per-node CPU utilization, values that live
// outside the registry). Rings are bounded, so long experiments keep the most
// recent window.
//
// The recorder is driven externally via SampleAt(now): it has no event-loop
// dependency of its own (obs stays below sim/net in the layer order); SnsSystem
// owns a PeriodicTimer that calls it on the configured cadence.

#ifndef SRC_OBS_TIMESERIES_H_
#define SRC_OBS_TIMESERIES_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/util/time.h"

namespace sns {

class TimeSeriesRecorder {
 public:
  struct Series {
    std::deque<SimTime> t;  // Sample times, parallel to v.
    std::deque<double> v;
  };

  explicit TimeSeriesRecorder(const MetricsRegistry* registry,
                              SimDuration interval = Milliseconds(250),
                              size_t max_samples = 4096)
      : registry_(registry), interval_(interval), max_samples_(max_samples) {}

  // Registers a custom probe sampled alongside the registry (e.g. node CPU, which
  // lives in the Cluster, not the registry). Re-registering a name replaces it.
  void AddProbe(const std::string& series, std::function<double()> probe);

  // Takes one sample of every instrument and probe at sim-time `now`.
  void SampleAt(SimTime now);

  SimDuration interval() const { return interval_; }
  int64_t samples_taken() const { return samples_taken_; }
  size_t series_count() const { return series_.size(); }
  std::vector<std::string> SeriesNames() const;
  const Series* Find(const std::string& name) const;

  // Columnar JSON:
  //   {"interval_ns":N,"samples":N,"series":{"name":{"t_ns":[...],"v":[...]},...}}
  // Series are sorted by name; arrays are parallel and bounded by max_samples.
  std::string ToJson() const;

 private:
  void Record(const std::string& name, SimTime now, double value);

  const MetricsRegistry* registry_;
  SimDuration interval_;
  size_t max_samples_;
  int64_t samples_taken_ = 0;
  std::map<std::string, std::function<double()>> probes_;
  std::map<std::string, Series> series_;
};

}  // namespace sns

#endif  // SRC_OBS_TIMESERIES_H_
