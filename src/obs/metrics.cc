#include "src/obs/metrics.h"

#include "src/util/strings.h"

namespace sns {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  auto& slot = counters_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>();
  }
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  auto& slot = gauges_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Gauge>();
  }
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name, double lo, double hi,
                                         size_t buckets) {
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>(lo, hi, buckets);
  }
  return slot.get();
}

const Counter* MetricsRegistry::FindCounter(const std::string& name) const {
  auto it = counters_.find(name);
  return it != counters_.end() ? it->second.get() : nullptr;
}

const Gauge* MetricsRegistry::FindGauge(const std::string& name) const {
  auto it = gauges_.find(name);
  return it != gauges_.end() ? it->second.get() : nullptr;
}

const Histogram* MetricsRegistry::FindHistogram(const std::string& name) const {
  auto it = histograms_.find(name);
  return it != histograms_.end() ? it->second.get() : nullptr;
}

int64_t MetricsRegistry::CounterValue(const std::string& name) const {
  const Counter* c = FindCounter(name);
  return c != nullptr ? c->value() : 0;
}

std::string MetricsRegistry::RenderText() const {
  std::string out;
  for (const auto& [name, counter] : counters_) {
    out += StrFormat("%s %lld\n", name.c_str(), static_cast<long long>(counter->value()));
  }
  for (const auto& [name, gauge] : gauges_) {
    out += StrFormat("%s %.6g\n", name.c_str(), gauge->value());
  }
  for (const auto& [name, hist] : histograms_) {
    out += StrFormat("%s count=%lld mean=%.6g p50=%.6g p95=%.6g p99=%.6g\n", name.c_str(),
                     static_cast<long long>(hist->TotalCount()), hist->summary().mean(),
                     hist->Percentile(0.50), hist->Percentile(0.95), hist->Percentile(0.99));
  }
  return out;
}

std::string MetricsRegistry::RenderJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (!first) out += ",";
    first = false;
    out += StrFormat("\"%s\":%lld", JsonEscape(name).c_str(),
                     static_cast<long long>(counter->value()));
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    if (!first) out += ",";
    first = false;
    out += StrFormat("\"%s\":%.6g", JsonEscape(name).c_str(), gauge->value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : histograms_) {
    if (!first) out += ",";
    first = false;
    out += StrFormat(
        "\"%s\":{\"count\":%lld,\"mean\":%.6g,\"min\":%.6g,\"max\":%.6g,"
        "\"p50\":%.6g,\"p95\":%.6g,\"p99\":%.6g}",
        JsonEscape(name).c_str(), static_cast<long long>(hist->TotalCount()),
        hist->summary().mean(), hist->summary().min(), hist->summary().max(),
        hist->Percentile(0.50), hist->Percentile(0.95), hist->Percentile(0.99));
  }
  out += "}}";
  return out;
}

}  // namespace sns
