#include "src/obs/perfetto.h"

#include <cstdint>
#include <map>
#include <utility>

#include "src/obs/metrics.h"
#include "src/obs/profiler.h"
#include "src/util/strings.h"

namespace sns {

namespace {

// Lanes ("threads") are allocated per (node, component-name) pair as they appear;
// each node also gets a dedicated "san" lane for message markers.
class LaneTable {
 public:
  int Lane(int32_t node, const std::string& component, std::string* metadata) {
    auto key = std::make_pair(node, component);
    auto it = lanes_.find(key);
    if (it != lanes_.end()) {
      return it->second;
    }
    int lane = ++next_lane_per_node_[node];
    lanes_[key] = lane;
    if (seen_nodes_.insert({node, 0}).second) {
      *metadata += StrFormat(
          "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":%d,\"args\":{\"name\":\"node %d\"}},",
          node, node);
    }
    *metadata += StrFormat(
        "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":%d,\"tid\":%d,"
        "\"args\":{\"name\":\"%s\"}},",
        node, lane, JsonEscape(component).c_str());
    return lane;
  }

 private:
  std::map<std::pair<int32_t, std::string>, int> lanes_;
  std::map<int32_t, int> next_lane_per_node_;
  std::map<int32_t, int> seen_nodes_;
};

double ToMicros(SimTime t) { return static_cast<double>(t) / 1000.0; }

}  // namespace

std::string ExportChromeTrace(const TraceCollector& collector, const EventLog* events) {
  LaneTable lanes;
  std::string metadata;
  std::string body;

  for (uint64_t trace_id : collector.TraceIds()) {
    for (const SpanRecord& span : collector.Trace(trace_id)) {
      int lane = lanes.Lane(span.node, span.component, &metadata);
      body += StrFormat(
          "{\"ph\":\"X\",\"name\":\"%s\",\"cat\":\"span\",\"pid\":%d,\"tid\":%d,"
          "\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"trace_id\":%llu,\"span_id\":%llu,"
          "\"parent_span_id\":%llu,\"outcome\":\"%s\"}},",
          JsonEscape(span.operation).c_str(), span.node, lane, ToMicros(span.start),
          ToMicros(span.end - span.start), static_cast<unsigned long long>(span.trace_id),
          static_cast<unsigned long long>(span.span_id),
          static_cast<unsigned long long>(span.parent_span_id), JsonEscape(span.outcome).c_str());
    }
  }

  if (events != nullptr) {
    for (const SanEvent& ev : events->messages()) {
      // Marker slices anchor the flow arrows; 1 µs of nominal width keeps them
      // clickable without implying real duration.
      switch (ev.kind) {
        case SanEvent::Kind::kSend: {
          int lane = lanes.Lane(ev.src_node, "san", &metadata);
          body += StrFormat(
              "{\"ph\":\"X\",\"name\":\"send msg.%u\",\"cat\":\"san\",\"pid\":%d,\"tid\":%d,"
              "\"ts\":%.3f,\"dur\":1,\"args\":{\"seq\":%llu,\"trace_id\":%llu,\"bytes\":%lld}},",
              ev.msg_type, ev.src_node, lane, ToMicros(ev.at),
              static_cast<unsigned long long>(ev.seq),
              static_cast<unsigned long long>(ev.trace_id), static_cast<long long>(ev.size_bytes));
          body += StrFormat(
              "{\"ph\":\"s\",\"name\":\"msg\",\"cat\":\"san\",\"id\":%llu,\"pid\":%d,"
              "\"tid\":%d,\"ts\":%.3f},",
              static_cast<unsigned long long>(ev.seq), ev.src_node, lane, ToMicros(ev.at));
          break;
        }
        case SanEvent::Kind::kDeliver: {
          int lane = lanes.Lane(ev.dst_node, "san", &metadata);
          body += StrFormat(
              "{\"ph\":\"X\",\"name\":\"recv msg.%u\",\"cat\":\"san\",\"pid\":%d,\"tid\":%d,"
              "\"ts\":%.3f,\"dur\":1,\"args\":{\"seq\":%llu,\"trace_id\":%llu}},",
              ev.msg_type, ev.dst_node, lane, ToMicros(ev.at),
              static_cast<unsigned long long>(ev.seq),
              static_cast<unsigned long long>(ev.trace_id));
          body += StrFormat(
              "{\"ph\":\"f\",\"bp\":\"e\",\"name\":\"msg\",\"cat\":\"san\",\"id\":%llu,"
              "\"pid\":%d,\"tid\":%d,\"ts\":%.3f},",
              static_cast<unsigned long long>(ev.seq), ev.dst_node, lane, ToMicros(ev.at));
          break;
        }
        case SanEvent::Kind::kDrop: {
          int32_t node = ev.dst_node >= 0 ? ev.dst_node : ev.src_node;
          int lane = lanes.Lane(node, "san", &metadata);
          body += StrFormat(
              "{\"ph\":\"X\",\"name\":\"drop msg.%u (%s)\",\"cat\":\"san\",\"pid\":%d,"
              "\"tid\":%d,\"ts\":%.3f,\"dur\":1,\"args\":{\"seq\":%llu,\"trace_id\":%llu}},",
              ev.msg_type, JsonEscape(ev.detail).c_str(), node, lane, ToMicros(ev.at),
              static_cast<unsigned long long>(ev.seq),
              static_cast<unsigned long long>(ev.trace_id));
          body += StrFormat(
              "{\"ph\":\"f\",\"bp\":\"e\",\"name\":\"msg\",\"cat\":\"san\",\"id\":%llu,"
              "\"pid\":%d,\"tid\":%d,\"ts\":%.3f},",
              static_cast<unsigned long long>(ev.seq), node, lane, ToMicros(ev.at));
          break;
        }
      }
    }
    for (const FaultInstant& fault : events->faults()) {
      body += StrFormat(
          "{\"ph\":\"i\",\"s\":\"g\",\"name\":\"%s\",\"cat\":\"fault\",\"pid\":0,\"tid\":0,"
          "\"ts\":%.3f},",
          JsonEscape(fault.what).c_str(), ToMicros(fault.at));
    }
  }

  // Host-CPU zone profiler counter tracks (empty unless the profiler ran):
  // they land in their own pid so they render as a separate "host cpu" group
  // below the simulated-time lanes.
  body += ProfilerCounterTrackJson();

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  out += metadata;
  out += body;
  // Tolerate the trailing comma by closing with a harmless metadata event.
  out += "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":0,\"args\":{\"name\":\"cluster\"}}";
  out += "]}";
  return out;
}

}  // namespace sns
