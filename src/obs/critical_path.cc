#include "src/obs/critical_path.h"

#include <algorithm>
#include <unordered_map>

#include "src/obs/metrics.h"
#include "src/util/strings.h"

namespace sns {

namespace {

// Sub-microsecond stage slices up to the fetch-timeout scale, 10 buckets/decade.
constexpr double kStageHistLo = 1e-6;
constexpr double kStageHistHi = 1e3;
constexpr size_t kStageHistBpd = 10;

// Guards the tree walk against malformed parentage (a span cycle would otherwise
// recurse forever; real traces are a few hops deep).
constexpr int kMaxDepth = 128;

struct Walk {
  const std::unordered_map<uint64_t, std::vector<const SpanRecord*>>* children;
  std::map<std::string, SimDuration>* stages;
};

void Attribute(const Walk& walk, const SpanRecord& span, SimTime lo, SimTime hi, int depth) {
  const std::string self_stage = CriticalStageFor(span.operation);
  SimTime cursor = lo;
  auto kids = walk.children->find(span.span_id);
  if (kids != walk.children->end() && depth < kMaxDepth) {
    for (const SpanRecord* child : kids->second) {
      SimTime child_lo = std::clamp(child->start, cursor, hi);
      SimTime child_hi = std::clamp(child->end, child_lo, hi);
      if (child_lo > cursor) {
        (*walk.stages)[self_stage] += child_lo - cursor;
      }
      Attribute(walk, *child, child_lo, child_hi, depth + 1);
      cursor = std::max(cursor, child_hi);
    }
  }
  if (hi > cursor) {
    (*walk.stages)[self_stage] += hi - cursor;
  }
}

}  // namespace

std::string CriticalStageFor(const std::string& operation) {
  if (operation == "client.request") return "san_transit";
  if (operation == "fe.request") return "fe_processing";
  if (operation == "fe.queue_wait") return "fe_accept_queue_wait";
  // The FE-side facility spans cover [send .. reply]; their self time (outside
  // the server-side child span) is wire time.
  if (operation == "fe.task_attempt") return "san_transit";
  if (operation == "fe.cache_get" || operation == "fe.cache_put") return "san_transit";
  if (operation == "fe.profile_get") return "profile_lookup";
  if (operation == "fe.fetch") return "origin_fetch";
  if (operation == "fe.retry_backoff") return "retry_backoff_idle";
  if (operation == "fe.spawn_wait") return "manager_stub_lookup";
  if (operation == "manager.spawn_request") return "manager_stub_lookup";
  if (operation == "cache.get") return "cache_lookup";
  if (operation == "cache.put") return "cache_write";
  // A worker.task span with queue_wait/service children has ~zero self time; one
  // without them (expired/rejected before service) spent its window queued.
  if (operation == "worker.task" || operation == "worker.queue_wait") {
    return "worker_queue_wait";
  }
  if (operation == "worker.service") return "worker_service";
  return operation;
}

SimDuration CriticalPath::StageSum() const {
  SimDuration sum = 0;
  for (const auto& [stage, d] : stages) {
    sum += d;
  }
  return sum;
}

std::optional<CriticalPath> AnalyzeTrace(const std::vector<SpanRecord>& spans) {
  if (spans.empty()) {
    return std::nullopt;
  }
  const SpanRecord* root = nullptr;
  for (const SpanRecord& span : spans) {
    if (span.parent_span_id != 0) {
      continue;
    }
    // Prefer the client's root; among several parentless spans take the earliest.
    if (root == nullptr || (span.operation == "client.request" && root->operation != "client.request") ||
        (span.operation == root->operation && span.start < root->start)) {
      root = &span;
    }
  }
  if (root == nullptr) {
    return std::nullopt;  // Request still in flight (or root evicted): skip.
  }
  std::unordered_map<uint64_t, std::vector<const SpanRecord*>> children;
  for (const SpanRecord& span : spans) {
    if (span.parent_span_id != 0 && &span != root) {
      children[span.parent_span_id].push_back(&span);
    }
  }
  for (auto& [parent, kids] : children) {
    std::sort(kids.begin(), kids.end(), [](const SpanRecord* a, const SpanRecord* b) {
      if (a->start != b->start) return a->start < b->start;
      return a->span_id < b->span_id;
    });
  }
  CriticalPath path;
  path.trace_id = root->trace_id;
  path.total = root->end - root->start;
  path.root_outcome = root->outcome;
  Walk walk{&children, &path.stages};
  Attribute(walk, *root, root->start, root->end, 0);
  return path;
}

CriticalPathSummary::CriticalPathSummary()
    : total_hist_(kStageHistLo, kStageHistHi, kStageHistBpd) {}

CriticalPathSummary::StageStats* CriticalPathSummary::GetStage(const std::string& stage) {
  auto it = stages_.find(stage);
  if (it == stages_.end()) {
    it = stages_
             .emplace(stage,
                      StageStats{LogHistogram(kStageHistLo, kStageHistHi, kStageHistBpd)})
             .first;
  }
  return &it->second;
}

void CriticalPathSummary::Add(const CriticalPath& path) {
  ++requests_;
  if (path.total > 0) {
    total_hist_.Add(ToSeconds(path.total));
  }
  for (const auto& [stage, d] : path.stages) {
    if (d <= 0) {
      continue;
    }
    StageStats* stats = GetStage(stage);
    double seconds = ToSeconds(d);
    stats->hist.Add(seconds);
    stats->total_s += seconds;
    ++stats->count;
  }
}

CriticalPathSummary CriticalPathSummary::FromCollector(const TraceCollector& collector) {
  CriticalPathSummary summary;
  for (uint64_t trace_id : collector.TraceIds()) {
    auto path = AnalyzeTrace(collector.Trace(trace_id));
    if (path.has_value()) {
      summary.Add(*path);
    }
  }
  return summary;
}

std::vector<std::string> CriticalPathSummary::StageNames() const {
  std::vector<std::string> names;
  names.reserve(stages_.size());
  for (const auto& [name, stats] : stages_) {
    names.push_back(name);
  }
  return names;
}

const LogHistogram* CriticalPathSummary::StageHistogram(const std::string& stage) const {
  auto it = stages_.find(stage);
  return it == stages_.end() ? nullptr : &it->second.hist;
}

std::string CriticalPathSummary::ToJson() const {
  double attributed_s = 0.0;
  for (const auto& [name, stats] : stages_) {
    attributed_s += stats.total_s;
  }
  std::string out = StrFormat(
      "{\"requests\":%lld,\"total\":{\"count\":%lld,\"mean_s\":%.6g,\"p50_s\":%.6g,"
      "\"p99_s\":%.6g},\"stages\":{",
      static_cast<long long>(requests_), static_cast<long long>(total_hist_.TotalCount()),
      total_hist_.summary().mean(), total_hist_.Percentile(0.5), total_hist_.Percentile(0.99));
  bool first = true;
  for (const auto& [name, stats] : stages_) {
    if (!first) out += ",";
    first = false;
    out += StrFormat(
        "\"%s\":{\"count\":%lld,\"total_s\":%.6g,\"share\":%.4f,\"p50_s\":%.6g,"
        "\"p99_s\":%.6g}",
        JsonEscape(name).c_str(), static_cast<long long>(stats.count), stats.total_s,
        attributed_s > 0 ? stats.total_s / attributed_s : 0.0, stats.hist.Percentile(0.5),
        stats.hist.Percentile(0.99));
  }
  out += "}}";
  return out;
}

std::string CriticalPathSummary::RenderTable() const {
  double attributed_s = 0.0;
  for (const auto& [name, stats] : stages_) {
    attributed_s += stats.total_s;
  }
  std::string out = StrFormat("critical path over %lld request(s):\n",
                              static_cast<long long>(requests_));
  out += StrFormat("  %-22s %10s %7s %12s %12s\n", "stage", "total_s", "share", "p50_ms",
                   "p99_ms");
  for (const auto& [name, stats] : stages_) {
    out += StrFormat("  %-22s %10.3f %6.1f%% %12.3f %12.3f\n", name.c_str(), stats.total_s,
                     attributed_s > 0 ? 100.0 * stats.total_s / attributed_s : 0.0,
                     1e3 * stats.hist.Percentile(0.5), 1e3 * stats.hist.Percentile(0.99));
  }
  out += StrFormat("  %-22s %10s %7s %12.3f %12.3f\n", "end_to_end", "", "",
                   1e3 * total_hist_.Percentile(0.5), 1e3 * total_hist_.Percentile(0.99));
  return out;
}

}  // namespace sns
