// Flight-recorder event log: SAN message lifecycle events and injected-fault
// instants, collected on one sim-time timeline.
//
// Spans (src/obs/trace.h) show what each component did; this log adds the edges
// between them — every traced message's send, deliver, or drop, correlated by a
// per-message sequence number — plus the faults the chaos harness injected. The
// Perfetto exporter (src/obs/perfetto.h) joins all three into a single
// causally-linked timeline, the debugging view the cluster-service literature
// argues is the only way to follow distributed state transitions.
//
// This layer deliberately knows nothing about src/net types (net links obs, not
// the reverse): nodes are raw int32 ids, message types raw uint32s.

#ifndef SRC_OBS_EVENTS_H_
#define SRC_OBS_EVENTS_H_

#include <cstdint>
#include <deque>
#include <string>

#include "src/util/time.h"

namespace sns {

// One step in a SAN message's life. Send/Deliver pairs share a seq; a Drop
// terminates the message's timeline instead of a Deliver.
struct SanEvent {
  enum class Kind { kSend, kDeliver, kDrop };

  Kind kind = Kind::kSend;
  uint64_t seq = 0;  // Correlates the send with its deliver/drop.
  SimTime at = 0;
  int32_t src_node = -1;
  int32_t dst_node = -1;
  uint32_t msg_type = 0;
  int64_t size_bytes = 0;
  uint64_t trace_id = 0;  // The request trace the message was stamped with.
  uint64_t span_id = 0;
  std::string detail;  // Drop reason ("unreachable", "saturated", ...), else empty.
};

// A fault the injector applied (process crash, node outage, partition, beacon
// loss), as a point on the timeline.
struct FaultInstant {
  SimTime at = 0;
  std::string what;  // e.g. "crash pid 7", "partition group 1 (2 nodes)".
};

// Bounded FIFO store for both event classes. Long experiments keep the tail;
// exports stay bounded.
class EventLog {
 public:
  explicit EventLog(size_t max_messages = 65536, size_t max_faults = 4096)
      : max_messages_(max_messages), max_faults_(max_faults) {}

  // Allocates the next message sequence number (the SAN stamps one per traced send).
  uint64_t NextSeq() { return next_seq_++; }

  void RecordMessage(SanEvent ev);
  void RecordFault(FaultInstant ev);

  const std::deque<SanEvent>& messages() const { return messages_; }
  const std::deque<FaultInstant>& faults() const { return faults_; }
  // Total events ever recorded (including those evicted from the ring).
  int64_t messages_recorded() const { return messages_recorded_; }
  int64_t faults_recorded() const { return faults_recorded_; }

 private:
  size_t max_messages_;
  size_t max_faults_;
  uint64_t next_seq_ = 1;
  int64_t messages_recorded_ = 0;
  int64_t faults_recorded_ = 0;
  std::deque<SanEvent> messages_;
  std::deque<FaultInstant> faults_;
};

}  // namespace sns

#endif  // SRC_OBS_EVENTS_H_
