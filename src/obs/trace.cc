#include "src/obs/trace.h"

#include <algorithm>

#include "src/obs/metrics.h"
#include "src/util/strings.h"

namespace sns {

std::string SpanRecord::ToJson() const {
  return StrFormat(
      "{\"span_id\":%llu,\"parent_span_id\":%llu,\"component\":\"%s\",\"operation\":\"%s\","
      "\"node\":%d,\"start_ns\":%lld,\"end_ns\":%lld,\"outcome\":\"%s\"}",
      static_cast<unsigned long long>(span_id), static_cast<unsigned long long>(parent_span_id),
      JsonEscape(component).c_str(), JsonEscape(operation).c_str(), node,
      static_cast<long long>(start), static_cast<long long>(end), JsonEscape(outcome).c_str());
}

TraceContext TraceCollector::StartTrace() {
  TraceContext ctx;
  ctx.trace_id = next_trace_id_++;
  ctx.span_id = next_span_id_++;
  return ctx;
}

TraceContext TraceCollector::ChildOf(const TraceContext& parent) {
  if (!parent.valid()) {
    return TraceContext{};
  }
  TraceContext ctx;
  ctx.trace_id = parent.trace_id;
  ctx.span_id = next_span_id_++;
  ctx.parent_span_id = parent.span_id;
  ctx.hop_count = parent.hop_count + 1;
  return ctx;
}

void TraceCollector::Record(SpanRecord span) {
  if (span.trace_id == 0) {
    return;
  }
  auto it = spans_by_trace_.find(span.trace_id);
  if (it == spans_by_trace_.end()) {
    if (spans_by_trace_.size() >= max_traces_) {
      EvictOldest();
    }
    it = spans_by_trace_.emplace(span.trace_id, std::vector<SpanRecord>{}).first;
    trace_order_.push_back(span.trace_id);
  }
  it->second.push_back(std::move(span));
  ++span_count_;
}

std::vector<SpanRecord> TraceCollector::Trace(uint64_t trace_id) const {
  auto it = spans_by_trace_.find(trace_id);
  if (it == spans_by_trace_.end()) {
    return {};
  }
  std::vector<SpanRecord> spans = it->second;
  std::sort(spans.begin(), spans.end(), [](const SpanRecord& a, const SpanRecord& b) {
    if (a.start != b.start) return a.start < b.start;
    return a.span_id < b.span_id;
  });
  return spans;
}

std::vector<uint64_t> TraceCollector::TraceIds() const {
  return {trace_order_.begin(), trace_order_.end()};
}

std::string TraceCollector::ToJson() const {
  std::string out = "{\"traces\":[";
  bool first = true;
  for (uint64_t id : trace_order_) {
    if (!first) out += ",";
    first = false;
    out += TraceToJson(id);
  }
  out += "]}";
  return out;
}

std::string TraceCollector::TraceToJson(uint64_t trace_id) const {
  std::string out = StrFormat("{\"trace_id\":%llu,\"spans\":[",
                              static_cast<unsigned long long>(trace_id));
  bool first = true;
  for (const SpanRecord& span : Trace(trace_id)) {
    if (!first) out += ",";
    first = false;
    out += span.ToJson();
  }
  out += "]}";
  return out;
}

void TraceCollector::EvictOldest() {
  if (trace_order_.empty()) {
    return;
  }
  uint64_t victim = trace_order_.front();
  trace_order_.pop_front();
  auto it = spans_by_trace_.find(victim);
  if (it != spans_by_trace_.end()) {
    span_count_ -= it->second.size();
    spans_by_trace_.erase(it);
  }
}

}  // namespace sns
