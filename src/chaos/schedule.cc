#include "src/chaos/schedule.h"

#include <algorithm>
#include <tuple>

#include "src/util/rng.h"
#include "src/util/strings.h"

namespace sns {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrashManager:
      return "crash_manager";
    case FaultKind::kCrashWorker:
      return "crash_worker";
    case FaultKind::kCrashFrontEnd:
      return "crash_front_end";
    case FaultKind::kCrashCacheNode:
      return "crash_cache_node";
    case FaultKind::kKillWorkerNode:
      return "kill_worker_node";
    case FaultKind::kPartitionManager:
      return "partition_manager";
    case FaultKind::kPartitionWorkers:
      return "partition_workers";
    case FaultKind::kPartitionFrontEnd:
      return "partition_front_end";
    case FaultKind::kBeaconLoss:
      return "beacon_loss";
    case FaultKind::kCrashProfileDb:
      return "crash_profile_db";
    case FaultKind::kPartitionProfileDb:
      return "partition_profile_db";
  }
  return "unknown";
}

std::string FaultSchedule::ToScript() const {
  std::string out = StrFormat("schedule seed=0x%llX (%zu events)\n",
                              static_cast<unsigned long long>(seed), events.size());
  for (const FaultEvent& ev : events) {
    out += StrFormat("  +%s %s index=%d", FormatTime(ev.at).c_str(),
                     FaultKindName(ev.kind), ev.index);
    if (ev.kind == FaultKind::kPartitionWorkers) {
      out += StrFormat(" count=%d", ev.count);
    }
    if (ev.duration > 0) {
      out += StrFormat(" duration=%s", FormatTime(ev.duration).c_str());
    }
    out += "\n";
  }
  return out;
}

FaultSchedule GenerateSchedule(uint64_t seed, const ScheduleGenConfig& config) {
  Rng rng(seed);
  FaultSchedule schedule;
  schedule.seed = seed;
  int n = static_cast<int>(rng.UniformInt(config.min_events, config.max_events));
  std::vector<double> weights = config.kind_weights;
  weights.resize(kFaultKindCount, 0.0);
  for (int i = 0; i < n; ++i) {
    FaultEvent ev;
    ev.at = static_cast<SimDuration>(
        rng.Uniform(0.0, static_cast<double>(config.horizon)));
    ev.kind = static_cast<FaultKind>(rng.WeightedIndex(weights));
    ev.index = static_cast<int>(rng.UniformInt(0, 7));
    ev.count = static_cast<int>(rng.UniformInt(1, config.max_partition_nodes));
    ev.duration = static_cast<SimDuration>(rng.Uniform(
        static_cast<double>(config.min_outage), static_cast<double>(config.max_outage)));
    schedule.events.push_back(ev);
  }
  std::sort(schedule.events.begin(), schedule.events.end(),
            [](const FaultEvent& a, const FaultEvent& b) {
              return std::make_tuple(a.at, static_cast<int>(a.kind), a.index) <
                     std::make_tuple(b.at, static_cast<int>(b.kind), b.index);
            });
  return schedule;
}

}  // namespace sns
