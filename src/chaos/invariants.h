// Cluster-wide invariants, checked at quiesce points of a chaos run.
//
// A quiesce point is a moment when every injected fault has been applied and
// healed, client load has stopped and drained, and several beacon/TTL periods have
// elapsed. At such a point the paper's architecture promises:
//
//   1. Exactly one live manager incarnation ("eventually exactly one"): epoch
//      fencing demotes every superseded incarnation within a beacon period of the
//      partition healing (§3.1.3 extended with incarnation numbers).
//   2. Every client request was answered or expired: sent = completed + timeouts +
//      send_failures with nothing outstanding, and no completion arrived after its
//      deadline (the BASE accounting of §4.5 — requests are never silently lost).
//   3. The soft-state roster converged to the live roster: the surviving manager's
//      worker and front-end tables match the processes actually alive (soft state
//      rebuilt from beacons and load reports, §3.1.8).
//   4. Every front end's cache-ring membership equals the live cache nodes, so a
//      node join/leave remapped only its ring arcs and the ring healed (§3.1.5).
//   5. The replicated cache tier converged: every cache node's own membership view
//      matches the live cache set, no rebalance pass is still running, no node
//      holds a key its current replica chain does not assign to it (orphan-free),
//      and — when no entry was ever evicted or rejected, so completeness is
//      decidable — every member of a key's chain holds the key (full
//      replication). This is the R-way extension of the paper's "cached data can
//      be thrown away" guarantee: after churn the survivors re-converge to R
//      copies of everything that fits.
//   6. The durable-write contract (DESIGN.md §14): no acknowledged profile-DB
//      write is ever lost — every write the client saw answered Ok is present in
//      the ACID store with the acknowledged value — and no minority partition
//      ever acknowledged a write (profiledb.writes_nonquorate stays zero). Holds
//      across every generated fault schedule, including fenced failovers.
//   7. Exactly one live profile-DB incarnation (generation fencing + STONITH
//      demote every superseded incarnation, mirroring the manager's epoch story).

#ifndef SRC_CHAOS_INVARIANTS_H_
#define SRC_CHAOS_INVARIANTS_H_

#include <string>
#include <vector>

#include "src/sns/system.h"
#include "src/workload/playback.h"

namespace sns {

struct InvariantViolation {
  std::string invariant;  // Short name, e.g. "exactly-one-manager".
  std::string detail;
};

struct InvariantReport {
  std::vector<InvariantViolation> violations;
  bool ok() const { return violations.empty(); }
  std::string ToString() const;
};

// Cluster-wide process census (includes incarnations the system no longer tracks,
// e.g. a stale manager stranded by a partition — exactly what the invariants are
// about).
std::vector<ManagerProcess*> LiveManagers(SnsSystem* system);
std::vector<FrontEndProcess*> LiveFrontEndProcesses(SnsSystem* system);
std::vector<CacheNodeProcess*> LiveCacheNodeProcesses(SnsSystem* system);
std::vector<ProfileDbProcess*> LiveProfileDbProcesses(SnsSystem* system);

// Client-observed ledger of profile writes: one entry per write request, marked
// acked when the service answered Ok. The durability invariant demands every
// acked entry's value be present in the profile store at quiesce.
struct ProfileWriteLedger {
  struct Entry {
    std::string user_id;
    std::string pref_key;
    std::string pref_value;
    bool acked = false;
  };
  std::vector<Entry> entries;
  int64_t acked() const {
    int64_t n = 0;
    for (const Entry& e : entries) n += e.acked ? 1 : 0;
    return n;
  }
};

// Runs all quiesce-point invariants. `clients` are the playback engines whose
// accounting is checked; `writes` (optional) enables the durable-write checks.
InvariantReport CheckInvariantsAtQuiesce(SnsSystem* system,
                                         const std::vector<PlaybackEngine*>& clients,
                                         const ProfileWriteLedger* writes = nullptr);

}  // namespace sns

#endif  // SRC_CHAOS_INVARIANTS_H_
