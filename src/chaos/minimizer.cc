#include "src/chaos/minimizer.h"

#include "src/util/strings.h"

namespace sns {

std::string MinimizeResult::Repro() const {
  std::string out = StrFormat("minimal repro (%zu event(s), %d run(s) used):\n",
                              minimal.events.size(), runs_used);
  out += minimal.ToScript();
  out += failure.ToString();
  return out;
}

MinimizeResult MinimizeSchedule(const FaultSchedule& failing, const CampaignConfig& config,
                                int max_runs) {
  MinimizeResult result;
  result.minimal = failing;

  ChaosRunResult baseline = RunSchedule(result.minimal, config);
  ++result.runs_used;
  if (baseline.passed()) {
    return result;  // Nothing to minimize: still_fails stays false.
  }
  result.still_fails = true;
  result.failure = baseline.report;

  bool progress = true;
  while (progress && result.runs_used < max_runs) {
    progress = false;
    for (size_t i = 0; i < result.minimal.events.size() && result.runs_used < max_runs;
         ++i) {
      FaultSchedule candidate = result.minimal;
      candidate.events.erase(candidate.events.begin() + static_cast<long>(i));
      ChaosRunResult run = RunSchedule(candidate, config);
      ++result.runs_used;
      if (!run.passed()) {
        result.minimal = std::move(candidate);
        result.failure = run.report;
        progress = true;
        break;  // Restart the sweep over the shorter schedule.
      }
    }
  }
  return result;
}

}  // namespace sns
