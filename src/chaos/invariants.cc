#include "src/chaos/invariants.h"

#include <algorithm>
#include <set>

#include "src/sns/messages.h"
#include "src/store/consistent_hash.h"
#include "src/util/strings.h"

namespace sns {
namespace {

// Every live process of type T anywhere in the cluster, discovered by walking the
// process table rather than the system's bookkeeping (which only tracks the
// incarnations it launched most recently).
template <typename T>
std::vector<T*> LiveProcessesOfType(SnsSystem* system) {
  std::vector<T*> out;
  Cluster* cluster = system->cluster();
  for (NodeId node : cluster->AllNodes()) {
    for (ProcessId pid : cluster->ProcessesOnNode(node)) {
      auto* p = dynamic_cast<T*>(cluster->Find(pid));
      if (p != nullptr) {
        out.push_back(p);
      }
    }
  }
  return out;
}

std::set<std::pair<NodeId, Port>> EndpointSet(const std::vector<Endpoint>& endpoints) {
  std::set<std::pair<NodeId, Port>> out;
  for (const Endpoint& ep : endpoints) {
    out.insert({ep.node, ep.port});
  }
  return out;
}

std::string DescribeEndpointSet(const std::set<std::pair<NodeId, Port>>& set) {
  std::string out = "{";
  bool first = true;
  for (const auto& [node, port] : set) {
    if (!first) out += ",";
    first = false;
    out += StrFormat("n%d:%d", node, port);
  }
  return out + "}";
}

}  // namespace

std::string InvariantReport::ToString() const {
  if (ok()) {
    return "all invariants hold\n";
  }
  std::string out = StrFormat("%zu invariant violation(s):\n", violations.size());
  for (const InvariantViolation& v : violations) {
    out += StrFormat("  [%s] %s\n", v.invariant.c_str(), v.detail.c_str());
  }
  return out;
}

std::vector<ManagerProcess*> LiveManagers(SnsSystem* system) {
  return LiveProcessesOfType<ManagerProcess>(system);
}

std::vector<FrontEndProcess*> LiveFrontEndProcesses(SnsSystem* system) {
  return LiveProcessesOfType<FrontEndProcess>(system);
}

std::vector<CacheNodeProcess*> LiveCacheNodeProcesses(SnsSystem* system) {
  return LiveProcessesOfType<CacheNodeProcess>(system);
}

std::vector<ProfileDbProcess*> LiveProfileDbProcesses(SnsSystem* system) {
  return LiveProcessesOfType<ProfileDbProcess>(system);
}

InvariantReport CheckInvariantsAtQuiesce(SnsSystem* system,
                                         const std::vector<PlaybackEngine*>& clients,
                                         const ProfileWriteLedger* writes) {
  InvariantReport report;
  auto violate = [&report](const char* invariant, std::string detail) {
    report.violations.push_back({invariant, std::move(detail)});
  };

  // 6. The durable-write contract. Checked first (and independently of the
  // manager census): losing an acknowledged write is the headline violation and
  // must be reported even when the run also wedged the control plane.
  if (writes != nullptr) {
    for (const ProfileWriteLedger::Entry& entry : writes->entries) {
      if (!entry.acked) {
        continue;  // Unacked writes may or may not have landed; both are legal.
      }
      auto record = system->profile_store()->Get(entry.user_id);
      if (!record.has_value()) {
        violate("acked-write-durable",
                StrFormat("acked write for user '%s' missing from profile store",
                          entry.user_id.c_str()));
        continue;
      }
      auto profile = UserProfile::Deserialize(entry.user_id, *record);
      if (!profile.ok() || profile->GetOr(entry.pref_key, "") != entry.pref_value) {
        violate("acked-write-durable",
                StrFormat("acked write for user '%s' lost: %s=%s not in store",
                          entry.user_id.c_str(), entry.pref_key.c_str(),
                          entry.pref_value.c_str()));
      }
    }
  }
  int64_t nonquorate =
      system->metrics()->GetCounter("profiledb.writes_nonquorate")->value();
  if (nonquorate > 0) {
    violate("no-minority-ack",
            StrFormat("%lld profile write(s) committed while non-quorate",
                      static_cast<long long>(nonquorate)));
  }

  // 7. Eventually exactly one live profile-DB incarnation.
  if (system->topology().with_profile_db) {
    std::vector<ProfileDbProcess*> dbs = LiveProfileDbProcesses(system);
    if (dbs.size() != 1) {
      std::string detail = StrFormat("%zu live profile-db incarnation(s):", dbs.size());
      for (ProfileDbProcess* db : dbs) {
        detail += StrFormat(" gen=%llu@n%d", static_cast<unsigned long long>(db->generation()),
                            db->node());
      }
      violate("exactly-one-profile-db", detail);
    }
  }

  // 1. Eventually exactly one live manager.
  std::vector<ManagerProcess*> managers = LiveManagers(system);
  if (managers.size() != 1) {
    std::string detail = StrFormat("%zu live manager incarnation(s):", managers.size());
    for (ManagerProcess* m : managers) {
      detail += StrFormat(" epoch=%llu@n%d", static_cast<unsigned long long>(m->epoch()),
                          m->node());
    }
    violate("exactly-one-manager", detail);
    return report;  // The roster/ring checks are meaningless with 0 or 2 managers.
  }
  ManagerProcess* manager = managers[0];

  // 2. Every client request answered or expired; none late, none leaked.
  for (size_t i = 0; i < clients.size(); ++i) {
    PlaybackEngine* client = clients[i];
    int64_t accounted =
        client->completed() + client->timeouts() + client->send_failures();
    if (client->sent() != accounted || client->outstanding() != 0) {
      violate("answered-or-expired",
              StrFormat("client %zu: sent=%lld != completed=%lld + timeouts=%lld + "
                        "send_failures=%lld (outstanding=%lld)",
                        i, static_cast<long long>(client->sent()),
                        static_cast<long long>(client->completed()),
                        static_cast<long long>(client->timeouts()),
                        static_cast<long long>(client->send_failures()),
                        static_cast<long long>(client->outstanding())));
    }
    // Late completions (an OK response landing between deadline and timeout) are
    // NOT a violation: the end-to-end deadline is best-effort — a response
    // already in flight when the deadline passes is still delivered. They are
    // surfaced in the run trace, and conservation above still accounts them.
  }

  // 3. Soft-state roster converged to the live roster.
  size_t live_workers = system->live_workers().size();
  if (manager->KnownWorkerCount() != live_workers) {
    violate("roster-convergence",
            StrFormat("manager knows %zu worker(s), %zu live",
                      manager->KnownWorkerCount(), live_workers));
  }
  size_t live_fes = LiveFrontEndProcesses(system).size();
  if (manager->KnownFrontEndCount() != live_fes) {
    violate("roster-convergence",
            StrFormat("manager knows %zu front end(s), %zu live",
                      manager->KnownFrontEndCount(), live_fes));
  }

  // 4. Every front end's cache ring matches the live cache nodes.
  std::vector<Endpoint> cache_eps;
  for (CacheNodeProcess* cache : LiveCacheNodeProcesses(system)) {
    cache_eps.push_back(cache->endpoint());
  }
  auto live_cache_set = EndpointSet(cache_eps);
  for (FrontEndProcess* fe : LiveFrontEndProcesses(system)) {
    auto ring_set = EndpointSet(fe->stub().cache_nodes());
    if (ring_set != live_cache_set) {
      violate("cache-ring-convergence",
              StrFormat("fe %d ring %s != live caches %s", fe->fe_index(),
                        DescribeEndpointSet(ring_set).c_str(),
                        DescribeEndpointSet(live_cache_set).c_str()));
    }
  }

  // 5. Replica-chain convergence across the cache tier.
  std::vector<CacheNodeProcess*> caches = LiveCacheNodeProcesses(system);
  for (CacheNodeProcess* cache : caches) {
    auto view = EndpointSet(cache->ring_members());
    if (view != live_cache_set) {
      violate("replica-chain-convergence",
              StrFormat("cache n%d membership view %s != live caches %s", cache->node(),
                        DescribeEndpointSet(view).c_str(),
                        DescribeEndpointSet(live_cache_set).c_str()));
    }
    if (cache->rebalance_active()) {
      violate("replica-chain-convergence",
              StrFormat("cache n%d rebalance still active at quiesce", cache->node()));
    }
  }

  // Canonical chains from the live membership, with the same member encoding and
  // vnode count every node uses, so this recomputes exactly what they computed.
  const SnsConfig& config = system->config();
  ConsistentHashRing canonical(config.cache_ring_vnodes);
  for (const Endpoint& ep : cache_eps) {
    canonical.AddMember(CacheRingMemberId(ep));
  }
  size_t r = config.cache_replication > 0 ? static_cast<size_t>(config.cache_replication)
                                          : size_t{1};
  // Completeness (every chain member holds the key) is only decidable if no node
  // ever evicted or rejected an entry: capacity pressure legitimately leaves
  // holes. Orphans (holding a key outside one's chain) are a violation always.
  bool lossless = true;
  for (CacheNodeProcess* cache : caches) {
    if (cache->evictions() > 0 || cache->rejected() > 0) {
      lossless = false;
    }
  }
  for (CacheNodeProcess* cache : caches) {
    int64_t self = CacheRingMemberId(cache->endpoint());
    for (const std::string& key : cache->CacheKeys()) {
      std::vector<int64_t> chain = canonical.LookupN(key, r);
      if (std::find(chain.begin(), chain.end(), self) == chain.end()) {
        violate("replica-chain-convergence",
                StrFormat("cache n%d holds orphan key '%s' outside its chain",
                          cache->node(), key.c_str()));
        continue;
      }
      if (!lossless) continue;
      for (int64_t member : chain) {
        if (member == self) continue;
        Endpoint peer_ep = CacheRingMemberEndpoint(member);
        for (CacheNodeProcess* peer : caches) {
          if (peer->endpoint().node == peer_ep.node &&
              peer->endpoint().port == peer_ep.port && !peer->HasKey(key)) {
            violate("replica-chain-convergence",
                    StrFormat("key '%s' missing from chain member n%d (held by n%d)",
                              key.c_str(), peer->node(), cache->node()));
          }
        }
      }
    }
  }

  return report;
}

}  // namespace sns
