// Seeded fault-schedule generation for the chaos-campaign harness.
//
// A FaultSchedule is a deterministic function of its seed: the same seed always
// yields the same events, and replaying a schedule against the same system build
// yields the same simulated event trace. Victims are chosen *symbolically* (an
// index into the live candidates of a kind), so a schedule stays meaningful as the
// cluster changes shape mid-run; the campaign runner resolves indices to concrete
// pids/nodes at fire time.

#ifndef SRC_CHAOS_SCHEDULE_H_
#define SRC_CHAOS_SCHEDULE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/time.h"

namespace sns {

enum class FaultKind {
  kCrashManager = 0,   // Crash the current manager process.
  kCrashWorker,        // Crash one live worker.
  kCrashFrontEnd,      // Crash one live front end.
  kCrashCacheNode,     // Crash one live cache-node process.
  kKillWorkerNode,     // Power off a worker-pool node; it restarts after `duration`.
  kPartitionManager,   // Split the manager's node away for `duration`.
  kPartitionWorkers,   // Split `count` worker-pool nodes away for `duration`.
  kPartitionFrontEnd,  // Split one front end's node away for `duration`.
  kBeaconLoss,         // Suppress the manager-beacon multicast for `duration`.
  kCrashProfileDb,     // Crash the current profile-DB process.
  kPartitionProfileDb,  // Split the profile DB's node away for `duration`.
};
inline constexpr int kFaultKindCount = 11;

const char* FaultKindName(FaultKind kind);

struct FaultEvent {
  SimDuration at = 0;  // Offset from the start of the fault window.
  FaultKind kind = FaultKind::kCrashWorker;
  int index = 0;             // Victim selector, modulo the live candidates at fire time.
  int count = 1;             // kPartitionWorkers: how many nodes to split away.
  SimDuration duration = 0;  // Outage / partition / loss window (0 where n/a).
};

struct FaultSchedule {
  uint64_t seed = 0;
  std::vector<FaultEvent> events;  // Sorted by `at`.

  // Replayable description — the seed plus one line per event — printed verbatim
  // by failure reports so a failing run is a copy-pasteable repro.
  std::string ToScript() const;
};

struct ScheduleGenConfig {
  SimDuration horizon = Seconds(60);  // Events land in [0, horizon).
  int min_events = 2;
  int max_events = 6;
  SimDuration min_outage = Seconds(4);
  SimDuration max_outage = Seconds(20);
  int max_partition_nodes = 3;
  // Relative draw weight per FaultKind (enum order). Zero removes a kind.
  std::vector<double> kind_weights = {1.0, 2.0, 1.0, 1.0, 1.0, 1.5, 1.0, 1.0, 1.0, 1.0, 1.0};
};

FaultSchedule GenerateSchedule(uint64_t seed, const ScheduleGenConfig& config);

}  // namespace sns

#endif  // SRC_CHAOS_SCHEDULE_H_
