// The chaos campaign: seeded fault schedules driven against a full TranSend
// system, with invariants checked at quiesce.
//
// Each run builds a fresh simulated cluster, applies constant client load with
// per-request deadlines, compiles the schedule's symbolic fault events into
// FailureInjector calls (resolving victims against the live topology at fire
// time), lets every fault heal, drains the load, and then checks the
// cluster-wide invariants of src/chaos/invariants.h. Runs are deterministic:
// the same schedule against the same build produces byte-identical traces.

#ifndef SRC_CHAOS_CAMPAIGN_H_
#define SRC_CHAOS_CAMPAIGN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/chaos/invariants.h"
#include "src/chaos/schedule.h"

namespace sns {

struct CampaignConfig {
  ScheduleGenConfig gen;
  // Gates the tentpole fix: with fencing off, a failover during a partition leaves
  // two manager incarnations beaconing forever after heal — the pre-epoch behavior
  // the regression tests demonstrate.
  bool epoch_fencing = true;
  // Quorum membership, STONITH fencing, and the durable write-ack contract
  // (DESIGN.md §14). All default on; turning them off reproduces the PR 3
  // epoch-only baseline, under which the acked-write-durable invariant is
  // demonstrably violated (the quorum regression test).
  bool quorum_membership = true;
  bool stonith_fencing = true;
  bool profile_write_acks = true;
  // Profile-write side load: a second client writes one unique user's prefs at
  // this rate; each write is ledgered and the acked ones must survive to quiesce.
  double profile_write_rate = 2.0;
  double request_rate = 15.0;
  SimDuration warmup = Seconds(12);
  SimDuration request_deadline = Seconds(8);
  SimDuration request_timeout = Seconds(12);
  // Post-drain settle window: beacon periods + soft-state TTLs must elapse so the
  // roster and ring invariants measure convergence, not mid-flight churn.
  SimDuration quiesce_settle = Seconds(30);
  int worker_pool_nodes = 6;
  int front_ends = 2;
  int cache_nodes = 2;
  // R-way cache replication: campaigns run with R=2 so every schedule exercises
  // replica-chain rebalancing and the replica-chain-convergence invariant.
  int cache_replication = 2;
  int url_count = 40;
};

struct ChaosRunResult {
  FaultSchedule schedule;
  InvariantReport report;
  // Peak number of concurrently live manager incarnations observed by the
  // half-second sampler (>= 2 proves the run created real split-brain).
  int max_concurrent_managers = 0;
  uint64_t final_manager_epoch = 0;
  int64_t manager_demotions = 0;
  int64_t faults_injected = 0;
  int64_t sent = 0;
  int64_t completed = 0;
  int64_t timeouts = 0;
  int64_t send_failures = 0;
  // OK responses landing between deadline and timeout; allowed (best-effort
  // deadline), reported for visibility.
  int64_t late_completions = 0;
  // Quorum/fencing accounting (PR 8).
  int64_t fence_kills = 0;
  int64_t writes_sent = 0;   // Profile writes issued by the writer client.
  int64_t writes_acked = 0;  // ... of which the client saw answered Ok.
  int64_t writes_lost = 0;   // Acked writes missing from the store at quiesce.
  int64_t nonquorate_writes = 0;  // Commits applied on a minority side.
  // Sim-time-stamped event trace (fault injections + manager-census transitions).
  // Deterministic: identical across replays of the same schedule.
  std::string trace;

  bool passed() const { return report.ok(); }
  std::string Describe() const;
};

ChaosRunResult RunSchedule(const FaultSchedule& schedule, const CampaignConfig& config);

// Resolves one symbolic fault event against the live topology and applies it
// through `injector` (so it lands in the injector's deterministic event log).
// Shared by the campaign runner and the scenario-matrix harness, which drives
// the same generated schedules under arbitrary workloads.
class SnsSystem;
class FailureInjector;
void ApplyScheduledFault(const FaultEvent& event, SnsSystem* system,
                         FailureInjector* injector);

struct CampaignResult {
  std::vector<ChaosRunResult> runs;
  int failed = 0;
  std::string Summary() const;
};

// Runs `schedule_count` schedules generated from seeds base_seed, base_seed+1, ...
CampaignResult RunCampaign(uint64_t base_seed, int schedule_count,
                           const CampaignConfig& config);

}  // namespace sns

#endif  // SRC_CHAOS_CAMPAIGN_H_
