#include "src/chaos/campaign.h"

#include <algorithm>
#include <functional>
#include <memory>
#include <unordered_map>

#include "src/cluster/failure_injector.h"
#include "src/services/transend/transend.h"
#include "src/util/strings.h"

namespace sns {
namespace {

TranSendOptions ChaosOptions(const CampaignConfig& config) {
  TranSendOptions options = DefaultTranSendOptions();
  // All-JPEG universe: every request re-distills, keeping the worker pool
  // load-bearing throughout the fault storm (same idiom as the fault tests).
  options.universe.url_count = config.url_count;
  options.universe.sizes.gif_fraction = 0.0;
  options.universe.sizes.html_fraction = 0.0;
  options.universe.sizes.jpeg_fraction = 1.0;
  options.universe.sizes.jpeg_mu = 9.2335;
  options.universe.sizes.jpeg_sigma = 0.05;
  options.universe.sizes.error_page_fraction = 0.0;
  options.logic.cache_distilled = false;
  options.topology.worker_pool_nodes = config.worker_pool_nodes;
  options.topology.front_ends = config.front_ends;
  options.topology.cache_nodes = config.cache_nodes;
  options.sns.manager_epoch_fencing = config.epoch_fencing;
  options.sns.quorum_membership = config.quorum_membership;
  options.sns.stonith_fencing = config.stonith_fencing;
  options.sns.profile_write_acks = config.profile_write_acks;
  options.sns.cache_replication = config.cache_replication;
  return options;
}

}  // namespace

// Resolves a symbolic fault event against the live topology and applies it (via
// the injector, so it lands in the injector's event log).
void ApplyScheduledFault(const FaultEvent& ev, SnsSystem* system, FailureInjector* injector) {
  Simulator* sim = system->sim();
  SimTime now = sim->now();
  auto pick = [&ev](size_t size) {
    return static_cast<size_t>(ev.index) % size;
  };
  switch (ev.kind) {
    case FaultKind::kCrashManager: {
      ProcessId pid = system->manager_pid();
      if (pid != kInvalidProcess && system->cluster()->Find(pid) != nullptr) {
        injector->CrashProcessAt(now, pid);
      }
      break;
    }
    case FaultKind::kCrashWorker: {
      auto workers = system->live_workers();
      if (!workers.empty()) {
        injector->CrashProcessAt(now, workers[pick(workers.size())]->pid());
      }
      break;
    }
    case FaultKind::kCrashFrontEnd: {
      auto fes = system->front_ends();
      if (!fes.empty()) {
        injector->CrashProcessAt(now, fes[pick(fes.size())]->pid());
      }
      break;
    }
    case FaultKind::kCrashCacheNode: {
      auto caches = system->cache_node_processes();
      if (!caches.empty()) {
        injector->CrashProcessAt(now, caches[pick(caches.size())]->pid());
      }
      break;
    }
    case FaultKind::kKillWorkerNode: {
      const auto& pool = system->worker_pool();
      if (!pool.empty()) {
        NodeId victim = pool[pick(pool.size())];
        if (system->cluster()->NodeUp(victim)) {
          injector->CrashNodeAt(now, victim);
          injector->RestartNodeAt(now + ev.duration, victim);
        }
      }
      break;
    }
    case FaultKind::kPartitionManager: {
      ManagerProcess* manager = system->manager();
      if (manager != nullptr &&
          system->san()->PartitionGroupOf(manager->node()) == 0) {
        injector->PartitionAt(now, {manager->node()}, now + ev.duration);
      }
      break;
    }
    case FaultKind::kPartitionWorkers: {
      std::vector<NodeId> victims;
      const auto& pool = system->worker_pool();
      for (size_t i = 0; i < pool.size() && victims.size() < static_cast<size_t>(ev.count);
           ++i) {
        NodeId node = pool[(static_cast<size_t>(ev.index) + i) % pool.size()];
        if (system->cluster()->NodeUp(node) && system->san()->PartitionGroupOf(node) == 0 &&
            std::find(victims.begin(), victims.end(), node) == victims.end()) {
          victims.push_back(node);
        }
      }
      if (!victims.empty()) {
        injector->PartitionAt(now, victims, now + ev.duration);
      }
      break;
    }
    case FaultKind::kPartitionFrontEnd: {
      auto fes = system->front_ends();
      if (!fes.empty()) {
        NodeId victim = fes[pick(fes.size())]->node();
        if (system->san()->PartitionGroupOf(victim) == 0) {
          injector->PartitionAt(now, {victim}, now + ev.duration);
        }
      }
      break;
    }
    case FaultKind::kBeaconLoss:
      injector->BeaconLossAt(now, kGroupManagerBeacon, ev.duration);
      break;
    case FaultKind::kCrashProfileDb: {
      ProfileDbProcess* db = system->profile_db();
      if (db != nullptr) {
        injector->CrashProcessAt(now, db->pid());
      }
      break;
    }
    case FaultKind::kPartitionProfileDb: {
      ProfileDbProcess* db = system->profile_db();
      if (db != nullptr && system->san()->PartitionGroupOf(db->node()) == 0) {
        injector->PartitionAt(now, {db->node()}, now + ev.duration);
      }
      break;
    }
  }
}

std::string ChaosRunResult::Describe() const {
  std::string out = schedule.ToScript();
  out += StrFormat(
      "  result: %s, max_managers=%d, final_epoch=%llu, demotions=%lld, faults=%lld\n",
      passed() ? "PASS" : "FAIL", max_concurrent_managers,
      static_cast<unsigned long long>(final_manager_epoch),
      static_cast<long long>(manager_demotions), static_cast<long long>(faults_injected));
  out += StrFormat(
      "  clients: sent=%lld completed=%lld timeouts=%lld send_failures=%lld late=%lld\n",
      static_cast<long long>(sent), static_cast<long long>(completed),
      static_cast<long long>(timeouts), static_cast<long long>(send_failures),
      static_cast<long long>(late_completions));
  out += StrFormat(
      "  writes: acked=%lld/%lld lost=%lld nonquorate=%lld fence_kills=%lld\n",
      static_cast<long long>(writes_acked), static_cast<long long>(writes_sent),
      static_cast<long long>(writes_lost), static_cast<long long>(nonquorate_writes),
      static_cast<long long>(fence_kills));
  if (!passed()) {
    out += report.ToString();
  }
  return out;
}

ChaosRunResult RunSchedule(const FaultSchedule& schedule, const CampaignConfig& config) {
  ChaosRunResult result;
  result.schedule = schedule;

  TranSendService service(ChaosOptions(config));
  service.Start();
  PlaybackConfig playback;
  playback.seed = schedule.seed ^ 0xC11E47ULL;
  playback.request_timeout = config.request_timeout;
  playback.request_deadline = config.request_deadline;
  PlaybackEngine* client = service.AddPlaybackEngine(playback);

  // Profile-write side load feeding the acked-write ledger: one unique user per
  // write, so durability of each acked value is decidable at quiesce (no
  // last-writer races between ledger entries).
  ProfileWriteLedger ledger;
  std::unordered_map<std::string, size_t> ledger_index;
  PlaybackConfig writer_config;
  writer_config.seed = schedule.seed ^ 0x3717E5ULL;
  writer_config.request_timeout = config.request_timeout;
  writer_config.request_deadline = config.request_deadline;
  writer_config.on_response = [&ledger, &ledger_index](const std::string& user, bool ok) {
    auto it = ledger_index.find(user);
    if (ok && it != ledger_index.end()) {
      ledger.entries[it->second].acked = true;
    }
  };
  PlaybackEngine* writer = service.AddPlaybackEngine(writer_config);

  Simulator* sim = service.sim();
  SnsSystem* system = service.system();
  ContentUniverse* universe = service.universe();
  Rng load_rng(schedule.seed ^ 0x10ADULL);
  client->StartConstantRate(config.request_rate, [&load_rng, universe] {
    TraceRecord record;
    record.user_id = "chaos";
    record.url = universe->UrlAt(load_rng.UniformInt(0, universe->url_count() - 1));
    return record;
  });
  // Warm up: the manager spawns the initial workers under load. Stats are NOT
  // reset — requests in flight at a reset would complete without a matching
  // send, breaking the answered-or-expired conservation check; accounting from
  // t=0 keeps sent == completed + timeouts + send_failures exact.
  sim->RunFor(config.warmup);

  // The ledgered writer starts only after warmup: before the first manager
  // beacon reaches the front ends, the pre-PR-8 fire-and-forget path false-acks
  // puts into the void, so a t=0 writer would make even the empty schedule lose
  // acked writes under the baseline config — the contract under test is
  // steady-state durability across faults, not the cold-start race.
  int64_t write_seq = 0;
  writer->StartConstantRate(
      config.profile_write_rate, [&ledger, &ledger_index, &write_seq, universe] {
        TraceRecord record;
        record.user_id = StrFormat("qw%lld", static_cast<long long>(write_seq));
        record.url = universe->UrlAt(0);
        std::string value = StrFormat("v%lld", static_cast<long long>(write_seq));
        record.params["set_qpref"] = value;
        ledger_index[record.user_id] = ledger.entries.size();
        ledger.entries.push_back({record.user_id, "qpref", value, false});
        ++write_seq;
        return record;
      });

  FailureInjector injector(system->cluster(), system->san());
  system->AttachFailureInjector(&injector);
  SimTime fault_start = sim->now();
  for (const FaultEvent& ev : schedule.events) {
    sim->ScheduleAt(fault_start + ev.at,
                    [&ev, system, &injector] { ApplyScheduledFault(ev, system, &injector); });
  }

  // Half-second census of live manager incarnations; trace records transitions.
  SimTime sample_end = fault_start + config.gen.horizon + config.gen.max_outage +
                       config.request_timeout + config.quiesce_settle;
  int last_census = -1;
  int last_quorate = -1;
  std::function<void()> sample = [&] {
    std::vector<ManagerProcess*> managers = LiveManagers(system);
    int census = static_cast<int>(managers.size());
    int quorate = 0;
    for (ManagerProcess* m : managers) {
      if (!m->read_only_degraded()) {
        ++quorate;
      }
    }
    result.max_concurrent_managers = std::max(result.max_concurrent_managers, census);
    if (census != last_census || quorate != last_quorate) {
      result.trace += StrFormat("t=%s managers=%d quorate=%d epoch=%llu\n",
                                FormatTime(sim->now()).c_str(), census, quorate,
                                static_cast<unsigned long long>(system->manager_epoch()));
      last_census = census;
      last_quorate = quorate;
    }
    if (sim->now() < sample_end) {
      sim->Schedule(Milliseconds(500), sample);
    }
  };
  sim->Schedule(0, sample);

  // Fault window, plus slack for the longest outage to heal.
  sim->RunFor(config.gen.horizon + config.gen.max_outage);
  client->StopLoad();
  writer->StopLoad();
  // Drain: every outstanding request completes or times out.
  sim->RunFor(config.request_timeout + Seconds(2));
  // Settle: beacons, TTL expiries, and re-registrations converge the soft state.
  sim->RunFor(config.quiesce_settle);

  result.report = CheckInvariantsAtQuiesce(system, {client, writer}, &ledger);
  result.final_manager_epoch = system->manager_epoch();
  result.manager_demotions = system->metrics()->GetCounter("manager.demotions")->value();
  result.faults_injected = injector.injected_count();
  result.sent = client->sent() + writer->sent();
  result.completed = client->completed() + writer->completed();
  result.timeouts = client->timeouts() + writer->timeouts();
  result.send_failures = client->send_failures() + writer->send_failures();
  result.late_completions = client->late_completions() + writer->late_completions();
  result.fence_kills = system->metrics()->GetCounter("fencing.kills")->value();
  result.writes_sent = static_cast<int64_t>(ledger.entries.size());
  result.writes_acked = ledger.acked();
  result.nonquorate_writes =
      system->metrics()->GetCounter("profiledb.writes_nonquorate")->value();
  for (const InvariantViolation& v : result.report.violations) {
    if (v.invariant == "acked-write-durable") {
      ++result.writes_lost;
    }
  }
  for (const std::string& line : injector.event_log()) {
    result.trace += line + "\n";
  }
  for (const std::string& line : system->fence_agent()->log()) {
    result.trace += line + "\n";
  }
  for (const std::string& line : system->membership()->transitions()) {
    result.trace += line + "\n";
  }
  result.trace += StrFormat(
      "final managers=%zu epoch=%llu demotions=%lld fence_kills=%lld "
      "writes acked=%lld/%lld lost=%lld nonquorate=%lld\n",
      LiveManagers(system).size(),
      static_cast<unsigned long long>(result.final_manager_epoch),
      static_cast<long long>(result.manager_demotions),
      static_cast<long long>(result.fence_kills),
      static_cast<long long>(result.writes_acked),
      static_cast<long long>(result.writes_sent),
      static_cast<long long>(result.writes_lost),
      static_cast<long long>(result.nonquorate_writes));
  return result;
}

std::string CampaignResult::Summary() const {
  std::string out =
      StrFormat("chaos campaign: %zu run(s), %d failed\n", runs.size(), failed);
  for (const ChaosRunResult& run : runs) {
    out += StrFormat("  seed=0x%llX %s events=%zu max_managers=%d epoch=%llu\n",
                     static_cast<unsigned long long>(run.schedule.seed),
                     run.passed() ? "PASS" : "FAIL", run.schedule.events.size(),
                     run.max_concurrent_managers,
                     static_cast<unsigned long long>(run.final_manager_epoch));
  }
  return out;
}

CampaignResult RunCampaign(uint64_t base_seed, int schedule_count,
                           const CampaignConfig& config) {
  CampaignResult result;
  for (int i = 0; i < schedule_count; ++i) {
    FaultSchedule schedule = GenerateSchedule(base_seed + static_cast<uint64_t>(i),
                                              config.gen);
    ChaosRunResult run = RunSchedule(schedule, config);
    if (!run.passed()) {
      ++result.failed;
    }
    result.runs.push_back(std::move(run));
  }
  return result;
}

}  // namespace sns
