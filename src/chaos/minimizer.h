// Schedule minimization: shrink a failing fault schedule to a minimal repro.
//
// Greedy delta-debugging over the event list: repeatedly try dropping one event
// and keep the reduction whenever the shrunk schedule still violates an
// invariant, until no single-event removal preserves the failure (1-minimal) or
// the run budget is exhausted. Every candidate is a full deterministic chaos run,
// so the result is a schedule that provably still fails — printed as a replayable
// seed + script.

#ifndef SRC_CHAOS_MINIMIZER_H_
#define SRC_CHAOS_MINIMIZER_H_

#include <string>

#include "src/chaos/campaign.h"

namespace sns {

struct MinimizeResult {
  // The smallest schedule found that still fails (== the input when the input
  // passes or nothing could be removed).
  FaultSchedule minimal;
  // The violation the minimal schedule produces.
  InvariantReport failure;
  int runs_used = 0;
  bool still_fails = false;

  // The copy-pasteable repro block: seed, script, and the violation.
  std::string Repro() const;
};

MinimizeResult MinimizeSchedule(const FaultSchedule& failing, const CampaignConfig& config,
                                int max_runs = 64);

}  // namespace sns

#endif  // SRC_CHAOS_MINIMIZER_H_
