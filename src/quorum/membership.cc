#include "src/quorum/membership.h"

#include <utility>

#include "src/util/strings.h"
#include "src/util/time.h"

namespace sns {

MembershipService::MembershipService(const San* san, QuorumDisk* disk)
    : san_(san), disk_(disk) {}

void MembershipService::SetVotes(NodeId node, int32_t votes) {
  votes_[node] = votes;
}

int32_t MembershipService::votes(NodeId node) const {
  auto it = votes_.find(node);
  return it == votes_.end() ? 0 : it->second;
}

int32_t MembershipService::votes_total() const {
  int32_t total = 0;
  for (const auto& [node, v] : votes_) {
    total += v;
  }
  return total;
}

void MembershipService::BindMetrics(MetricsRegistry* metrics) {
  votes_held_gauge_ = metrics->GetGauge("quorum.votes_held");
  votes_total_gauge_ = metrics->GetGauge("quorum.votes_total");
  quorate_gauge_ = metrics->GetGauge("quorum.is_quorate");
}

MembershipView MembershipService::Regroup(NodeId vantage, SimTime now, bool renew) {
  MembershipView view;
  for (const auto& [node, node_votes] : votes_) {
    if (node_votes <= 0) {
      continue;
    }
    view.votes_total += node_votes;
    if (san_->NodeUp(node) && san_->Reachable(vantage, node)) {
      view.members.push_back(node);
      view.votes_held += node_votes;
    }
  }
  if (2 * view.votes_held > view.votes_total) {
    view.quorate = true;
  } else if (2 * view.votes_held == view.votes_total && view.votes_held > 0) {
    view.tie = true;
    if (disk_ != nullptr) {
      if (renew) {
        // Assert ownership: renew our lease, or claim an expired/unowned one.
        view.tie_won_by_disk = disk_->TryClaim(vantage, now);
      } else {
        // Read-only arbitration: the tie goes to the side holding the lease;
        // an expired or unowned disk is claimable, so the challenger may
        // proceed (its promoted manager will claim on its first beacon).
        std::optional<NodeId> owner = disk_->Owner(now);
        view.tie_won_by_disk =
            !owner.has_value() ||
            (san_->NodeUp(*owner) && san_->Reachable(vantage, *owner));
      }
      view.quorate = view.tie_won_by_disk;
    }
  }
  if (renew && disk_ != nullptr && view.quorate && !view.tie) {
    // A majority-side leader keeps the disk warm so a later even split breaks
    // toward the side that was last in charge (qdiskd master heartbeat).
    disk_->TryClaim(vantage, now);
  }

  LastView& last = last_[vantage];
  if (!last.valid || last.members != view.members || last.quorate != view.quorate) {
    ++regroup_seq_;
    std::string line = StrFormat(
        "t=%s regroup#%llu node=%d members=%zu votes=%d/%d quorate=%d",
        FormatTime(now).c_str(), static_cast<unsigned long long>(regroup_seq_),
        vantage, view.members.size(), view.votes_held, view.votes_total,
        view.quorate ? 1 : 0);
    if (event_sink_) {
      event_sink_(now, line);
    }
    transitions_.push_back(std::move(line));
    last.members = view.members;
    last.quorate = view.quorate;
    last.valid = true;
  }
  view.regroup_seq = regroup_seq_;

  if (renew) {
    if (votes_held_gauge_ != nullptr) {
      votes_held_gauge_->Set(view.votes_held);
      votes_total_gauge_->Set(view.votes_total);
      quorate_gauge_->Set(view.quorate ? 1 : 0);
    }
  }
  return view;
}

void MembershipService::NoteTransition(SimTime at, std::string line) {
  if (event_sink_) {
    event_sink_(at, line);
  }
  transitions_.push_back(std::move(line));
}

}  // namespace sns
