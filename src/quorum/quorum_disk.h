// Simulated quorum disk (tiebreaker for even vote splits).
//
// Models the shared-SCSI quorum partition of the Red Hat cluster suite's qdiskd
// and of MSCS: a small disk region, reachable from every node regardless of SAN
// partitions (it sits on the storage bus, not the network), holding a
// lease-stamped ownership record. A manager renews the lease every beacon tick;
// a challenger may claim it only after the incumbent's lease expires. The
// record is persisted through an ordinary KvStore so it survives process
// crashes exactly like the profile database does.

#ifndef SRC_QUORUM_QUORUM_DISK_H_
#define SRC_QUORUM_QUORUM_DISK_H_

#include <optional>

#include "src/net/message.h"
#include "src/store/kvstore.h"
#include "src/util/time.h"

namespace sns {

class QuorumDisk {
 public:
  // `store` must outlive the disk. `lease` is how long a claim stays valid
  // without renewal; it should comfortably exceed the renewer's tick period.
  QuorumDisk(KvStore* store, SimDuration lease);

  // Claims or renews the lease for `node`. Succeeds when `node` already holds
  // a valid lease, when the disk is unowned, or when the previous owner's
  // lease has expired (the incumbent stopped renewing — dead or deposed).
  // Returns whether `node` holds the lease after the call.
  bool TryClaim(NodeId node, SimTime now);

  // The current lease holder, or nullopt if unowned or expired.
  std::optional<NodeId> Owner(SimTime now) const;

  SimDuration lease() const { return lease_; }
  int64_t claims() const { return claims_; }

 private:
  struct Lease {
    NodeId owner = kInvalidNode;
    SimTime expiry = 0;
  };
  std::optional<Lease> ReadLease() const;
  void WriteLease(const Lease& lease);

  KvStore* store_;
  SimDuration lease_;
  int64_t claims_ = 0;  // Successful claims by a node that was not the owner.
};

}  // namespace sns

#endif  // SRC_QUORUM_QUORUM_DISK_H_
