// STONITH-style fencing.
//
// Before a successor is promoted over an incumbent that is alive but
// unreachable, the incumbent is killed out of band ("shoot the other node in
// the head") so it can never race the successor for shared state. FenceAgent
// models the fence device: it has a back channel to every node (the cluster's
// management network, not the partitioned SAN), so a fence request succeeds
// even when the victim is on the far side of a partition.
//
// StoreReservation models the storage-side half of fencing (SCSI reserve): a
// shared store is claimed by a component generation, and once a newer
// generation claims it, every older generation's writes bounce at the bus.

#ifndef SRC_QUORUM_FENCING_H_
#define SRC_QUORUM_FENCING_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/obs/metrics.h"

namespace sns {

class FenceAgent {
 public:
  explicit FenceAgent(Cluster* cluster);

  void BindMetrics(MetricsRegistry* metrics);

  // Kills `pid` if it is still alive. Returns whether a kill happened.
  // Deterministic and immediate: the fence device does not negotiate.
  bool Fence(ProcessId pid, const std::string& reason);

  // Mirrors every kill line to an external timeline; SnsSystem folds these
  // into the flight-recorder fault log so fence events annotate the
  // availability timeline next to the faults that provoked them.
  void set_event_sink(std::function<void(SimTime, const std::string&)> sink) {
    event_sink_ = std::move(sink);
  }

  int64_t kills() const { return kills_; }
  const std::vector<std::string>& log() const { return log_; }

 private:
  Cluster* cluster_;
  int64_t kills_ = 0;
  Counter* kills_counter_ = nullptr;
  std::vector<std::string> log_;
  std::function<void(SimTime, const std::string&)> event_sink_;
};

// SCSI-reserve analog for a shared KvStore: the highest generation to claim
// the reservation holds it. With enforcement off (the pre-quorum baseline)
// every incarnation "holds" it, reproducing the unfenced free-for-all.
class StoreReservation {
 public:
  explicit StoreReservation(bool enforce = true) : enforce_(enforce) {}

  void set_enforce(bool enforce) { enforce_ = enforce; }
  void Claim(uint64_t generation) {
    if (generation > holder_) {
      holder_ = generation;
    }
  }
  bool HeldBy(uint64_t generation) const {
    return !enforce_ || generation >= holder_;
  }
  uint64_t holder() const { return holder_; }

 private:
  bool enforce_;
  uint64_t holder_ = 0;
};

}  // namespace sns

#endif  // SRC_QUORUM_FENCING_H_
