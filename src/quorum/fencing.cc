#include "src/quorum/fencing.h"

#include "src/util/logging.h"
#include "src/util/strings.h"
#include "src/util/time.h"

namespace sns {

FenceAgent::FenceAgent(Cluster* cluster) : cluster_(cluster) {}

void FenceAgent::BindMetrics(MetricsRegistry* metrics) {
  kills_counter_ = metrics->GetCounter("fencing.kills");
}

bool FenceAgent::Fence(ProcessId pid, const std::string& reason) {
  Process* victim = cluster_->Find(pid);
  if (victim == nullptr) {
    return false;  // Already dead: fencing is idempotent.
  }
  ++kills_;
  if (kills_counter_ != nullptr) {
    kills_counter_->Increment();
  }
  std::string line =
      StrFormat("t=%s fence kill pid=%lld node=%d (%s)",
                FormatTime(cluster_->sim()->now()).c_str(), static_cast<long long>(pid),
                victim->node(), reason.c_str());
  log_.push_back(line);
  SNS_LOG(kInfo, "fence") << line;
  if (event_sink_) {
    event_sink_(cluster_->sim()->now(), line);
  }
  cluster_->Crash(pid);
  return true;
}

}  // namespace sns
