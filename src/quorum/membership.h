// Vote-based cluster membership (MSCS regroup / cman vote counting).
//
// Every voting node carries a configurable vote count (cman's `votes` knob,
// default 1). A regroup round, run from a vantage node, computes the connected
// set of live voters and their vote sum; the side holding a strict majority of
// the total registered votes (2*held > total, cman's expected_votes majority)
// is quorate. An exact 50/50 split is broken by the quorum disk: the side that
// can see a live disk lease — or claim an expired one — wins the tie, so a
// two-node cluster resolves partitions deterministically instead of
// deadlocking or split-braining.
//
// The service is an omniscient oracle over San ground truth (node up/down and
// partition groups), standing in for the message rounds of a real regroup
// protocol: in the simulator, "ran a regroup round at time t" and "read the
// SAN state at time t" produce identical answers, with no protocol latency to
// model. Membership is evaluated at decision points (beacon ticks, relaunch
// gates, write commits), not cached, so every answer reflects the instant it
// is asked.

#ifndef SRC_QUORUM_MEMBERSHIP_H_
#define SRC_QUORUM_MEMBERSHIP_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/net/san.h"
#include "src/obs/metrics.h"
#include "src/quorum/quorum_disk.h"

namespace sns {

// The outcome of one regroup round, as seen from a vantage node.
struct MembershipView {
  uint64_t regroup_seq = 0;           // Global transition counter at this round.
  std::vector<NodeId> members;        // Live voters reachable from the vantage.
  int32_t votes_held = 0;             // Vote sum of `members`.
  int32_t votes_total = 0;            // Vote sum of every registered voter.
  bool quorate = false;
  bool tie = false;                   // Exactly half the votes on this side.
  bool tie_won_by_disk = false;       // Tie resolved in our favor by the disk.
};

class MembershipService {
 public:
  // `disk` may be null: then an exact tie is simply not quorate (strict
  // majority required), which is the safe default for odd-vote clusters.
  MembershipService(const San* san, QuorumDisk* disk);

  // Registers (or updates) a node's votes. Nodes with zero votes (clients,
  // load generators) never affect quorum.
  void SetVotes(NodeId node, int32_t votes);
  int32_t votes(NodeId node) const;
  int32_t votes_total() const;

  void BindMetrics(MetricsRegistry* metrics);

  // Runs a regroup round from `vantage`. With `renew` set the caller asserts
  // leadership from this vantage: on a tie it claims/renews the quorum-disk
  // lease for the vantage node, and the exported quorum gauges track this
  // view. Without `renew` (relaunch gates, write commits) the round is
  // read-only: a tie is quorate only if the current lease holder is on the
  // vantage's side, or the lease is claimable (expired/unowned).
  MembershipView Regroup(NodeId vantage, SimTime now, bool renew = false);

  // Appends an externally produced line to the transition log (managers log
  // their degrade/resume flips here so one trace tells the whole story).
  void NoteTransition(SimTime at, std::string line);

  // Mirrors every transition line (regroup view changes and NoteTransition
  // entries) to an external timeline. SnsSystem folds these into the
  // flight-recorder fault log, so quorum flips annotate the availability
  // timeline and Perfetto traces alongside injected faults.
  void set_event_sink(std::function<void(SimTime, const std::string&)> sink) {
    event_sink_ = std::move(sink);
  }

  uint64_t regroup_seq() const { return regroup_seq_; }
  const std::vector<std::string>& transitions() const { return transitions_; }

 private:
  const San* san_;
  QuorumDisk* disk_;
  std::map<NodeId, int32_t> votes_;
  uint64_t regroup_seq_ = 0;

  struct LastView {
    std::vector<NodeId> members;
    bool quorate = false;
    bool valid = false;
  };
  std::map<NodeId, LastView> last_;  // Per-vantage, for transition detection.
  std::vector<std::string> transitions_;
  std::function<void(SimTime, const std::string&)> event_sink_;

  Gauge* votes_held_gauge_ = nullptr;
  Gauge* votes_total_gauge_ = nullptr;
  Gauge* quorate_gauge_ = nullptr;
};

}  // namespace sns

#endif  // SRC_QUORUM_MEMBERSHIP_H_
