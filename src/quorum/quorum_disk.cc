#include "src/quorum/quorum_disk.h"

#include <cstdio>
#include <cstdlib>

#include "src/util/strings.h"

namespace sns {
namespace {

constexpr char kLeaseKey[] = "qdisk/lease";

}  // namespace

QuorumDisk::QuorumDisk(KvStore* store, SimDuration lease)
    : store_(store), lease_(lease) {}

std::optional<QuorumDisk::Lease> QuorumDisk::ReadLease() const {
  std::optional<std::string> raw = store_->Get(kLeaseKey);
  if (!raw.has_value()) {
    return std::nullopt;
  }
  Lease lease;
  long long owner = 0;
  long long expiry = 0;
  if (std::sscanf(raw->c_str(), "%lld %lld", &owner, &expiry) != 2) {
    return std::nullopt;  // Torn or corrupt record: treat as unowned.
  }
  lease.owner = static_cast<NodeId>(owner);
  lease.expiry = static_cast<SimTime>(expiry);
  return lease;
}

void QuorumDisk::WriteLease(const Lease& lease) {
  store_->Put(kLeaseKey, StrFormat("%lld %lld", static_cast<long long>(lease.owner),
                                   static_cast<long long>(lease.expiry)));
}

bool QuorumDisk::TryClaim(NodeId node, SimTime now) {
  std::optional<Lease> current = ReadLease();
  if (current.has_value() && current->owner != node && current->expiry > now) {
    return false;  // Another node holds a live lease.
  }
  if (!current.has_value() || current->owner != node) {
    ++claims_;
  }
  WriteLease(Lease{node, now + lease_});
  return true;
}

std::optional<NodeId> QuorumDisk::Owner(SimTime now) const {
  std::optional<Lease> current = ReadLease();
  if (!current.has_value() || current->expiry <= now) {
    return std::nullopt;
  }
  return current->owner;
}

}  // namespace sns
