#include "src/net/link.h"

#include <algorithm>

namespace sns {

SimDuration Link::ServiceTime(int64_t size_bytes) const {
  double bits = static_cast<double>(size_bytes) * 8.0;
  auto serialization = static_cast<SimDuration>(bits / config_.bandwidth_bps *
                                                static_cast<double>(kSecond));
  return config_.per_message_overhead + serialization;
}

std::optional<SimTime> Link::Transmit(SimTime now, int64_t size_bytes, bool drop_if_saturated) {
  SimTime start = std::max(now, busy_until_);
  SimDuration queue_delay = start - now;
  if (drop_if_saturated && queue_delay > config_.max_datagram_queue_delay) {
    ++messages_dropped_;
    return std::nullopt;
  }
  SimDuration service = ServiceTime(size_bytes);
  busy_until_ = start + service;
  busy_time_ += service;
  ++messages_sent_;
  bytes_sent_ += size_bytes;
  return busy_until_;
}

double Link::Utilization(SimTime now) const {
  if (now <= 0) {
    return 0.0;
  }
  // Count committed future busy time as utilization too; clamp to 1.
  double u = static_cast<double>(busy_time_) / static_cast<double>(now);
  return std::min(u, 1.0);
}

}  // namespace sns
