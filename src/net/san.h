// The system-area network: a switched star connecting all cluster nodes.
//
// Reproduces the transport behaviors the paper's architecture depends on:
//   - Reliable point-to-point channels (TCP-like) with connection setup cost. A
//     reliable send to a dead *process* on a live node fails fast ("broken
//     connection", used by the manager to detect distiller crashes, §3.1.3). A send
//     to a dead/partitioned *node* is silently lost, leaving detection to
//     application timeouts (§2.2.4).
//   - Best-effort datagrams and IP multicast groups (the beacon channels). Under
//     link saturation these are dropped, reproducing §4.6's finding that a 10 Mb/s
//     SAN loses the manager's control traffic under load.
//   - Network partitions (§2.2.4's "workers lost because of a SAN partition").
//
// Routing state is kept flat for delivery speed (DESIGN.md §12): node state is a
// dense vector indexed by NodeId, multicast groups a dense vector of *sorted*
// member lists (sorted order makes fan-out deterministic), and the per-endpoint
// handler table an open-addressing FlatMap keyed by the packed (node, port)
// pair. Every per-hop lambda moves the Message through rather than copying it.

#ifndef SRC_NET_SAN_H_
#define SRC_NET_SAN_H_

#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "src/net/link.h"
#include "src/net/message.h"
#include "src/obs/events.h"
#include "src/obs/metrics.h"
#include "src/sim/simulator.h"
#include "src/util/flat_map.h"

namespace sns {

struct SanConfig {
  LinkConfig default_link;
  // Extra one-time latency charged when a reliable sender has no cached connection
  // to the destination (three-way handshake + kernel work). The paper measured TCP
  // setup/teardown at ~15 ms of Harvest's 27 ms hit time on its hardware; the
  // Harvest cache protocol forces a fresh connection per request
  // (force_new_connection below).
  SimDuration tcp_setup_cost = Milliseconds(1.0);
  // Wire size of handshake packets charged to both NICs on connection setup.
  int64_t handshake_bytes = 40;
};

class San {
 public:
  San(Simulator* sim, SanConfig config);

  // --- Topology -------------------------------------------------------------
  void AddNode(NodeId node);
  void AddNode(NodeId node, const LinkConfig& link);
  bool HasNode(NodeId node) const;
  // Replaces both directions' link configuration for a node's NIC.
  void SetNodeLinkConfig(NodeId node, const LinkConfig& link);

  Link* egress(NodeId node);
  Link* ingress(NodeId node);

  // --- Process endpoints ----------------------------------------------------
  void Bind(const Endpoint& ep, MessageHandler handler);
  void Unbind(const Endpoint& ep);
  bool IsBound(const Endpoint& ep) const;

  // --- Sending --------------------------------------------------------------
  struct SendOptions {
    // Harvest cache behavior: open a fresh TCP connection for this request even if
    // one is cached (paper §3.1.5, third deficiency).
    bool force_new_connection = false;
    // Reliable only: invoked (at failure-detection time) if the destination process
    // is not bound although its node is reachable.
    SendFailedHandler on_failed;
  };

  void Send(Message msg) { Send(std::move(msg), SendOptions{}); }
  void Send(Message msg, SendOptions opts);

  // --- Multicast ------------------------------------------------------------
  void JoinGroup(McastGroup group, const Endpoint& ep);
  void LeaveGroup(McastGroup group, const Endpoint& ep);
  // Best-effort delivery to every subscriber except the sender itself, in
  // ascending (node, port) order.
  void SendMulticast(McastGroup group, Message msg);
  size_t GroupSize(McastGroup group) const;

  // --- Failure injection ------------------------------------------------------
  // Nodes in different partition groups cannot exchange traffic. Default group 0.
  void SetPartition(NodeId node, int32_t partition_group);
  // Returns every node to the default group, collapsing all partitions at once.
  void HealPartitions();
  // Returns only the nodes in `partition_group` to the default group, leaving any
  // other concurrent split in place (multi-group chaos schedules heal
  // independently).
  void HealPartition(int32_t partition_group);
  int32_t PartitionGroupOf(NodeId node) const;
  bool Reachable(NodeId a, NodeId b) const;

  // Silently drops every multicast send to `group` until `until` (models the
  // beacon-channel loss of §4.6 as an injectable fault). A later call replaces the
  // group's window.
  void DropMulticastUntil(McastGroup group, SimTime until);

  // A down node neither sends nor receives; all its in-flight traffic is lost.
  void SetNodeUp(NodeId node, bool up);
  bool NodeUp(NodeId node) const;

  // --- Observability ----------------------------------------------------------
  // Flight recorder: every traced message's send/deliver/drop is logged with a
  // correlating sequence number (untraced control chatter is skipped to bound
  // volume). Not owned; may be null.
  void set_event_log(EventLog* log) { event_log_ = log; }
  // Mirrors the transport counters below into the registry so monitor snapshots
  // and the time-series recorder see them ("san.messages_delivered", ...).
  void BindMetrics(MetricsRegistry* registry);

  int64_t messages_delivered() const { return messages_delivered_; }
  int64_t datagrams_dropped() const { return datagrams_dropped_; }
  int64_t reliable_failed_fast() const { return reliable_failed_fast_; }
  int64_t messages_lost_unreachable() const { return messages_lost_unreachable_; }
  int64_t multicast_suppressed() const { return multicast_suppressed_; }
  std::vector<NodeId> Nodes() const;

  Simulator* sim() { return sim_; }

 private:
  // Dense per-node slot; a slot with no Link objects is "node not added".
  struct NodeState {
    std::unique_ptr<Link> egress;
    std::unique_ptr<Link> ingress;
    bool up = true;
    int32_t partition_group = 0;
    bool exists() const { return egress != nullptr; }
  };

  // Dense per-group slot. Members are kept sorted so multicast fan-out order is
  // deterministic (ascending (node, port), matching the ordered-set original).
  struct GroupState {
    std::vector<std::pair<NodeId, Port>> members;
    SimTime drop_until = 0;  // 0 = no active suppression window.
  };

  struct ConnKey {
    Endpoint src;
    Endpoint dst;
    bool operator==(const ConnKey& o) const { return src == o.src && dst == o.dst; }
  };
  struct ConnKeyHash {
    size_t operator()(const ConnKey& k) const {
      EndpointHash h;
      return h(k.src) * 1000003u ^ h(k.dst);
    }
  };

  static uint64_t PackEndpoint(const Endpoint& ep) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(ep.node)) << 32) |
           static_cast<uint32_t>(ep.port);
  }

  NodeState* GetNode(NodeId node);
  const NodeState* GetNode(NodeId node) const;

  // Enqueues on the destination's ingress link at `arrival` and schedules final
  // delivery. `setup` adds handshake packets and latency (new reliable connection).
  // `seq` correlates the event-log entries of one message's lifecycle (0 = untraced).
  void DeliverToNode(Message msg, SimTime arrival, bool setup, SendOptions opts, uint64_t seq);
  void FinalDeliver(const Message& msg, const SendOptions& opts, uint64_t seq);

  // Event-log helper: records the lifecycle step when the message is traced.
  void LogEvent(SanEvent::Kind kind, const Message& msg, uint64_t seq, const char* detail);
  void CountLost() {
    ++messages_lost_unreachable_;
    if (ctr_lost_unreachable_ != nullptr) ctr_lost_unreachable_->Increment();
  }
  void CountDropped() {
    ++datagrams_dropped_;
    if (ctr_datagrams_dropped_ != nullptr) ctr_datagrams_dropped_->Increment();
  }

  Simulator* sim_;
  SanConfig config_;
  std::vector<NodeState> nodes_;    // Indexed by NodeId.
  std::vector<GroupState> groups_;  // Indexed by McastGroup.
  FlatMap<uint64_t, MessageHandler> handlers_;  // Keyed by PackEndpoint().
  std::unordered_set<ConnKey, ConnKeyHash> connections_;

  int64_t messages_delivered_ = 0;
  int64_t datagrams_dropped_ = 0;
  int64_t reliable_failed_fast_ = 0;
  int64_t messages_lost_unreachable_ = 0;
  int64_t multicast_suppressed_ = 0;

  EventLog* event_log_ = nullptr;
  Counter* ctr_delivered_ = nullptr;
  Counter* ctr_datagrams_dropped_ = nullptr;
  Counter* ctr_failed_fast_ = nullptr;
  Counter* ctr_lost_unreachable_ = nullptr;
  Counter* ctr_multicast_suppressed_ = nullptr;
};

}  // namespace sns

#endif  // SRC_NET_SAN_H_
