// A simplex network link with finite bandwidth, per-message processing overhead, and
// a bounded queue.
//
// Each node attaches to the SAN switch through one egress and one ingress link. A
// message occupies the link for `overhead + bits/bandwidth`; messages queue FIFO.
// Datagrams whose queueing delay would exceed the configured bound are dropped —
// this is how the model reproduces the paper's §4.6 observation that on a saturated
// 10 Mb/s SAN the unreliable multicast control traffic is lost, crippling load
// balancing, while on 100 Mb/s it is not.

#ifndef SRC_NET_LINK_H_
#define SRC_NET_LINK_H_

#include <cstdint>
#include <optional>
#include <string>

#include "src/util/time.h"

namespace sns {

struct LinkConfig {
  double bandwidth_bps = 100e6;          // 100 Mb/s switched Ethernet default.
  SimDuration propagation = Microseconds(50);
  SimDuration per_message_overhead = Microseconds(100);  // NIC/kernel per-packet cost.
  SimDuration max_datagram_queue_delay = Milliseconds(50);  // Drop threshold.
};

class Link {
 public:
  Link(std::string name, LinkConfig config)
      : name_(std::move(name)), config_(config) {}

  // Attempts to transmit `size_bytes` starting no earlier than `now`. Returns the
  // time the last bit leaves the link (before propagation), or nullopt if the
  // message was dropped (only possible when drop_if_saturated is true).
  std::optional<SimTime> Transmit(SimTime now, int64_t size_bytes, bool drop_if_saturated);

  // Serialization time for a message of this size on this link.
  SimDuration ServiceTime(int64_t size_bytes) const;

  SimTime busy_until() const { return busy_until_; }
  SimDuration propagation() const { return config_.propagation; }

  // Observability for the monitor and the saturation benchmarks.
  int64_t messages_sent() const { return messages_sent_; }
  int64_t messages_dropped() const { return messages_dropped_; }
  int64_t bytes_sent() const { return bytes_sent_; }
  SimDuration busy_time() const { return busy_time_; }

  // Mean utilization in [0,1] over [0, now].
  double Utilization(SimTime now) const;

  const std::string& name() const { return name_; }
  const LinkConfig& config() const { return config_; }
  void set_config(const LinkConfig& config) { config_ = config; }

 private:
  std::string name_;
  LinkConfig config_;
  SimTime busy_until_ = 0;
  int64_t messages_sent_ = 0;
  int64_t messages_dropped_ = 0;
  int64_t bytes_sent_ = 0;
  SimDuration busy_time_ = 0;
};

}  // namespace sns

#endif  // SRC_NET_LINK_H_
