#include "src/net/message.h"

#include "src/util/strings.h"

namespace sns {

std::string Endpoint::ToString() const {
  return StrFormat("n%d:p%d", node, port);
}

}  // namespace sns
