// Message and addressing types for the simulated system-area network.
//
// Addressing follows the paper's architecture: every software component (front end,
// manager, worker stub, cache node, monitor) is a process pinned to a node and
// reachable at a (node, port) endpoint. Payloads are polymorphic; each layer defines
// its own payload structs (see src/sns/messages.h).

#ifndef SRC_NET_MESSAGE_H_
#define SRC_NET_MESSAGE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "src/obs/trace.h"
#include "src/util/time.h"

namespace sns {

using NodeId = int32_t;
constexpr NodeId kInvalidNode = -1;

using Port = int32_t;
constexpr Port kInvalidPort = -1;

// Multicast group identifiers (well-known channels, paper §3.1.2-3.1.3).
using McastGroup = int32_t;

struct Endpoint {
  NodeId node = kInvalidNode;
  Port port = kInvalidPort;

  bool valid() const { return node != kInvalidNode && port != kInvalidPort; }
  bool operator==(const Endpoint& o) const { return node == o.node && port == o.port; }
  bool operator!=(const Endpoint& o) const { return !(*this == o); }
  std::string ToString() const;
};

struct EndpointHash {
  size_t operator()(const Endpoint& e) const {
    return std::hash<uint64_t>()((static_cast<uint64_t>(static_cast<uint32_t>(e.node)) << 32) |
                                 static_cast<uint32_t>(e.port));
  }
};

// Base class for message payloads. Layers downcast based on Message::type.
struct Payload {
  virtual ~Payload() = default;
};

// Message delivery classes, mirroring the two transports the paper uses:
// reliable point-to-point connections (TCP) and best-effort IP multicast / UDP.
enum class Transport {
  kDatagram,  // Best effort; dropped when a link is saturated or a peer is gone.
  kReliable,  // Never dropped by queueing; pays connection setup cost; fails fast
              // (sender notified) if the destination process is not bound.
};

struct Message {
  Endpoint src;
  Endpoint dst;              // For multicast, filled per subscriber on delivery.
  uint32_t type = 0;         // Layer-defined discriminator for payload downcast.
  int64_t size_bytes = 64;   // Wire size; drives serialization delay.
  Transport transport = Transport::kDatagram;
  McastGroup group = -1;     // >= 0 when this was a multicast delivery.
  SimTime sent_at = 0;
  TraceContext trace;        // Request tracing context; invalid for untraced traffic.
  std::shared_ptr<const Payload> payload;
};

// Receive handler installed for a bound endpoint.
using MessageHandler = std::function<void(const Message&)>;

// Callback informing a reliable sender that delivery failed fast (peer process is
// not bound even though its node is reachable — the "broken connection" the manager
// uses to detect distiller crashes, paper §3.1.3).
using SendFailedHandler = std::function<void(const Message&)>;

}  // namespace sns

#endif  // SRC_NET_MESSAGE_H_
