#include "src/net/san.h"

#include <algorithm>
#include <utility>

#include "src/obs/profiler.h"
#include "src/util/logging.h"
#include "src/util/strings.h"

namespace sns {

San::San(Simulator* sim, SanConfig config) : sim_(sim), config_(config) {}

void San::BindMetrics(MetricsRegistry* registry) {
  ctr_delivered_ = registry->GetCounter("san.messages_delivered");
  ctr_datagrams_dropped_ = registry->GetCounter("san.datagrams_dropped");
  ctr_failed_fast_ = registry->GetCounter("san.reliable_failed_fast");
  ctr_lost_unreachable_ = registry->GetCounter("san.messages_lost_unreachable");
  ctr_multicast_suppressed_ = registry->GetCounter("san.multicast_suppressed");
  // Binding mid-run re-baselines the registry view from the cumulative members.
  ctr_delivered_->Increment(messages_delivered_ - ctr_delivered_->value());
  ctr_datagrams_dropped_->Increment(datagrams_dropped_ - ctr_datagrams_dropped_->value());
  ctr_failed_fast_->Increment(reliable_failed_fast_ - ctr_failed_fast_->value());
  ctr_lost_unreachable_->Increment(messages_lost_unreachable_ - ctr_lost_unreachable_->value());
  ctr_multicast_suppressed_->Increment(multicast_suppressed_ -
                                       ctr_multicast_suppressed_->value());
}

void San::LogEvent(SanEvent::Kind kind, const Message& msg, uint64_t seq, const char* detail) {
  if (event_log_ == nullptr || seq == 0) {
    return;
  }
  SanEvent ev;
  ev.kind = kind;
  ev.seq = seq;
  ev.at = sim_->now();
  ev.src_node = msg.src.node;
  ev.dst_node = msg.dst.node;
  ev.msg_type = msg.type;
  ev.size_bytes = msg.size_bytes;
  ev.trace_id = msg.trace.trace_id;
  ev.span_id = msg.trace.span_id;
  ev.detail = detail;
  event_log_->RecordMessage(std::move(ev));
}

void San::AddNode(NodeId node) { AddNode(node, config_.default_link); }

void San::AddNode(NodeId node, const LinkConfig& link) {
  if (node < 0) {
    return;
  }
  if (static_cast<size_t>(node) >= nodes_.size()) {
    nodes_.resize(static_cast<size_t>(node) + 1);
  }
  NodeState& state = nodes_[static_cast<size_t>(node)];
  state.egress = std::make_unique<Link>(StrFormat("n%d.egress", node), link);
  state.ingress = std::make_unique<Link>(StrFormat("n%d.ingress", node), link);
  state.up = true;
  state.partition_group = 0;
}

bool San::HasNode(NodeId node) const { return GetNode(node) != nullptr; }

void San::SetNodeLinkConfig(NodeId node, const LinkConfig& link) {
  NodeState* state = GetNode(node);
  if (state != nullptr) {
    state->egress->set_config(link);
    state->ingress->set_config(link);
  }
}

Link* San::egress(NodeId node) {
  NodeState* state = GetNode(node);
  return state != nullptr ? state->egress.get() : nullptr;
}

Link* San::ingress(NodeId node) {
  NodeState* state = GetNode(node);
  return state != nullptr ? state->ingress.get() : nullptr;
}

San::NodeState* San::GetNode(NodeId node) {
  if (node < 0 || static_cast<size_t>(node) >= nodes_.size()) {
    return nullptr;
  }
  NodeState& state = nodes_[static_cast<size_t>(node)];
  return state.exists() ? &state : nullptr;
}

const San::NodeState* San::GetNode(NodeId node) const {
  return const_cast<San*>(this)->GetNode(node);
}

void San::Bind(const Endpoint& ep, MessageHandler handler) {
  handlers_.Set(PackEndpoint(ep), std::move(handler));
}

void San::Unbind(const Endpoint& ep) {
  handlers_.Erase(PackEndpoint(ep));
  // Tear down cached connections touching this endpoint so the next sender pays
  // setup again and dead-process sends can fail fast.
  for (auto it = connections_.begin(); it != connections_.end();) {
    if (it->src == ep || it->dst == ep) {
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
  std::pair<NodeId, Port> member{ep.node, ep.port};
  for (GroupState& group : groups_) {
    auto it = std::lower_bound(group.members.begin(), group.members.end(), member);
    if (it != group.members.end() && *it == member) {
      group.members.erase(it);
    }
  }
}

bool San::IsBound(const Endpoint& ep) const {
  return handlers_.Find(PackEndpoint(ep)) != nullptr;
}

void San::Send(Message msg, SendOptions opts) {
  SNS_PROFILE_ZONE_STRIDE("san.route", 4);
  msg.sent_at = sim_->now();
  uint64_t seq = (event_log_ != nullptr && msg.trace.valid()) ? event_log_->NextSeq() : 0;
  LogEvent(SanEvent::Kind::kSend, msg, seq, "");
  NodeState* src_node = GetNode(msg.src.node);
  if (src_node == nullptr || !src_node->up) {
    CountLost();
    LogEvent(SanEvent::Kind::kDrop, msg, seq, "unreachable");
    return;
  }
  bool reliable = msg.transport == Transport::kReliable;
  bool setup = false;
  if (reliable) {
    ConnKey key{msg.src, msg.dst};
    if (opts.force_new_connection || connections_.count(key) == 0) {
      setup = true;
      if (!opts.force_new_connection) {
        connections_.insert(key);
      }
    }
  }
  if (setup) {
    // Handshake packets occupy the sender's NIC before the payload.
    src_node->egress->Transmit(sim_->now(), config_.handshake_bytes, false);
  }
  auto departure =
      src_node->egress->Transmit(sim_->now(), msg.size_bytes, /*drop_if_saturated=*/!reliable);
  if (!departure.has_value()) {
    CountDropped();
    LogEvent(SanEvent::Kind::kDrop, msg, seq, "saturated");
    return;
  }
  SimTime arrival = *departure + src_node->egress->propagation();
  DeliverToNode(std::move(msg), arrival, setup, std::move(opts), seq);
}

void San::DeliverToNode(Message msg, SimTime arrival, bool setup, SendOptions opts,
                        uint64_t seq) {
  // Both hop lambdas are `mutable` and hand the Message onward by move: one
  // in-flight message performs zero Message copies and zero payload-refcount
  // round-trips between Send() and the handler. Their capture sets are sized to
  // stay within SimCallback's inline storage — growing either is a perf bug.
  sim_->ScheduleAt(arrival, [this, msg = std::move(msg), setup, opts = std::move(opts),
                             seq]() mutable {
    NodeState* src_node = GetNode(msg.src.node);
    NodeState* dst_node = GetNode(msg.dst.node);
    bool reliable = msg.transport == Transport::kReliable;
    if (src_node == nullptr || dst_node == nullptr || !src_node->up || !dst_node->up ||
        !Reachable(msg.src.node, msg.dst.node)) {
      CountLost();
      LogEvent(SanEvent::Kind::kDrop, msg, seq, "unreachable");
      return;
    }
    if (setup) {
      dst_node->ingress->Transmit(sim_->now(), config_.handshake_bytes, false);
    }
    auto finish = dst_node->ingress->Transmit(sim_->now(), msg.size_bytes,
                                              /*drop_if_saturated=*/!reliable);
    if (!finish.has_value()) {
      CountDropped();
      LogEvent(SanEvent::Kind::kDrop, msg, seq, "saturated");
      return;
    }
    SimTime deliver_at = *finish + dst_node->ingress->propagation();
    if (setup) {
      deliver_at += config_.tcp_setup_cost;
    }
    sim_->ScheduleAt(deliver_at,
                     [this, msg = std::move(msg), opts = std::move(opts), seq]() mutable {
                       FinalDeliver(msg, opts, seq);
                     });
  });
}

void San::FinalDeliver(const Message& msg, const SendOptions& opts, uint64_t seq) {
  SNS_PROFILE_ZONE_STRIDE("san.deliver", 4);
  const NodeState* dst_node = GetNode(msg.dst.node);
  if (dst_node == nullptr || !dst_node->up || !Reachable(msg.src.node, msg.dst.node)) {
    CountLost();
    LogEvent(SanEvent::Kind::kDrop, msg, seq, "unreachable");
    return;
  }
  const MessageHandler* bound = handlers_.Find(PackEndpoint(msg.dst));
  if (bound == nullptr) {
    if (msg.transport == Transport::kReliable) {
      ++reliable_failed_fast_;
      if (ctr_failed_fast_ != nullptr) ctr_failed_fast_->Increment();
      LogEvent(SanEvent::Kind::kDrop, msg, seq, "no_handler");
      if (opts.on_failed) {
        opts.on_failed(msg);
      }
    } else {
      CountLost();
      LogEvent(SanEvent::Kind::kDrop, msg, seq, "no_handler");
    }
    return;
  }
  ++messages_delivered_;
  if (ctr_delivered_ != nullptr) ctr_delivered_->Increment();
  LogEvent(SanEvent::Kind::kDeliver, msg, seq, "");
  // Copy the handler: the callee may unbind (e.g., crash) during handling.
  MessageHandler handler = *bound;
  handler(msg);
}

void San::JoinGroup(McastGroup group, const Endpoint& ep) {
  if (group < 0) {
    return;
  }
  if (static_cast<size_t>(group) >= groups_.size()) {
    groups_.resize(static_cast<size_t>(group) + 1);
  }
  auto& members = groups_[static_cast<size_t>(group)].members;
  std::pair<NodeId, Port> member{ep.node, ep.port};
  auto it = std::lower_bound(members.begin(), members.end(), member);
  if (it == members.end() || *it != member) {
    members.insert(it, member);
  }
}

void San::LeaveGroup(McastGroup group, const Endpoint& ep) {
  if (group < 0 || static_cast<size_t>(group) >= groups_.size()) {
    return;
  }
  auto& members = groups_[static_cast<size_t>(group)].members;
  std::pair<NodeId, Port> member{ep.node, ep.port};
  auto it = std::lower_bound(members.begin(), members.end(), member);
  if (it != members.end() && *it == member) {
    members.erase(it);
  }
}

size_t San::GroupSize(McastGroup group) const {
  if (group < 0 || static_cast<size_t>(group) >= groups_.size()) {
    return 0;
  }
  return groups_[static_cast<size_t>(group)].members.size();
}

void San::SendMulticast(McastGroup group, Message msg) {
  SNS_PROFILE_ZONE_STRIDE("san.route", 4);
  GroupState* gs = (group >= 0 && static_cast<size_t>(group) < groups_.size())
                       ? &groups_[static_cast<size_t>(group)]
                       : nullptr;
  if (gs != nullptr && gs->drop_until != 0) {
    if (sim_->now() < gs->drop_until) {
      ++multicast_suppressed_;
      if (ctr_multicast_suppressed_ != nullptr) ctr_multicast_suppressed_->Increment();
      return;
    }
    gs->drop_until = 0;  // Window elapsed.
  }
  msg.sent_at = sim_->now();
  msg.transport = Transport::kDatagram;
  msg.group = group;
  NodeState* src_node = GetNode(msg.src.node);
  if (src_node == nullptr || !src_node->up) {
    CountLost();
    return;
  }
  if (gs == nullptr || gs->members.empty()) {
    return;
  }
  // One egress transmission; the switch replicates to each subscriber.
  auto departure = src_node->egress->Transmit(sim_->now(), msg.size_bytes, true);
  if (!departure.has_value()) {
    CountDropped();
    return;
  }
  SimTime arrival = *departure + src_node->egress->propagation();
  for (const auto& [node, port] : gs->members) {
    if (node == msg.src.node && port == msg.src.port) {
      continue;  // Don't loop back to the sender.
    }
    Message copy = msg;
    copy.dst = Endpoint{node, port};
    // Each replica gets its own lifecycle on the timeline.
    uint64_t seq = (event_log_ != nullptr && copy.trace.valid()) ? event_log_->NextSeq() : 0;
    LogEvent(SanEvent::Kind::kSend, copy, seq, "");
    DeliverToNode(std::move(copy), arrival, /*setup=*/false, SendOptions{}, seq);
  }
}

void San::SetPartition(NodeId node, int32_t partition_group) {
  NodeState* state = GetNode(node);
  if (state != nullptr) {
    state->partition_group = partition_group;
  }
}

void San::HealPartitions() {
  for (NodeState& state : nodes_) {
    state.partition_group = 0;
  }
}

void San::HealPartition(int32_t partition_group) {
  if (partition_group == 0) {
    return;  // Group 0 is the default side; "healing" it is meaningless.
  }
  for (NodeState& state : nodes_) {
    if (state.partition_group == partition_group) {
      state.partition_group = 0;
    }
  }
}

int32_t San::PartitionGroupOf(NodeId node) const {
  const NodeState* state = GetNode(node);
  return state != nullptr ? state->partition_group : 0;
}

void San::DropMulticastUntil(McastGroup group, SimTime until) {
  if (group < 0) {
    return;
  }
  if (static_cast<size_t>(group) >= groups_.size()) {
    groups_.resize(static_cast<size_t>(group) + 1);
  }
  groups_[static_cast<size_t>(group)].drop_until = until;
}

bool San::Reachable(NodeId a, NodeId b) const {
  const NodeState* na = GetNode(a);
  const NodeState* nb = GetNode(b);
  if (na == nullptr || nb == nullptr) {
    return false;
  }
  return na->partition_group == nb->partition_group;
}

void San::SetNodeUp(NodeId node, bool up) {
  NodeState* state = GetNode(node);
  if (state != nullptr) {
    state->up = up;
  }
}

bool San::NodeUp(NodeId node) const {
  const NodeState* state = GetNode(node);
  return state != nullptr && state->up;
}

std::vector<NodeId> San::Nodes() const {
  std::vector<NodeId> out;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].exists()) {
      out.push_back(static_cast<NodeId>(i));
    }
  }
  return out;
}

}  // namespace sns
