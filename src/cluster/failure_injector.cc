#include "src/cluster/failure_injector.h"

#include <utility>

#include "src/util/logging.h"
#include "src/util/strings.h"

namespace sns {

void FailureInjector::LogEvent(const std::string& what) {
  events_.push_back(StrFormat("t=%s %s", FormatTime(cluster_->sim()->now()).c_str(),
                              what.c_str()));
  if (event_sink_) {
    event_sink_(cluster_->sim()->now(), what);
  }
}

void FailureInjector::CrashProcessAt(SimTime when, ProcessId pid) {
  cluster_->sim()->ScheduleAt(when, [this, pid] {
    if (cluster_->Find(pid) != nullptr) {
      ++injected_;
      SNS_LOG(kInfo, "inject") << "crashing pid " << pid;
      LogEvent(StrFormat("crash pid %ld", pid));
      cluster_->Crash(pid);
    }
  });
}

void FailureInjector::CrashNodeAt(SimTime when, NodeId node) {
  cluster_->sim()->ScheduleAt(when, [this, node] {
    ++injected_;
    LogEvent(StrFormat("kill node %d", node));
    cluster_->CrashNode(node);
  });
}

void FailureInjector::RestartNodeAt(SimTime when, NodeId node) {
  cluster_->sim()->ScheduleAt(when, [this, node] {
    LogEvent(StrFormat("restart node %d", node));
    cluster_->RestartNode(node);
  });
}

int32_t FailureInjector::PartitionAt(SimTime when, const std::vector<NodeId>& minority,
                                     SimTime heal_at) {
  int32_t group = next_group_++;
  cluster_->sim()->ScheduleAt(when, [this, minority, group] {
    ++injected_;
    SNS_LOG(kInfo, "inject") << "partitioning " << minority.size()
                             << " node(s) away as group " << group;
    LogEvent(StrFormat("partition group %d (%zu nodes)", group, minority.size()));
    for (NodeId node : minority) {
      san_->SetPartition(node, group);
    }
  });
  if (heal_at != kTimeNever) {
    cluster_->sim()->ScheduleAt(heal_at, [this, group] {
      SNS_LOG(kInfo, "inject") << "healing partition group " << group;
      LogEvent(StrFormat("heal group %d", group));
      san_->HealPartition(group);
    });
  }
  return group;
}

void FailureInjector::BeaconLossAt(SimTime when, McastGroup group, SimDuration duration) {
  cluster_->sim()->ScheduleAt(when, [this, group, duration] {
    ++injected_;
    SNS_LOG(kInfo, "inject") << "dropping multicast group " << group << " for "
                             << FormatTime(duration);
    LogEvent(StrFormat("beacon loss on group %d for %s", group,
                       FormatTime(duration).c_str()));
    san_->DropMulticastUntil(group, cluster_->sim()->now() + duration);
  });
}

void FailureInjector::RandomProcessCrashes(Rng* rng, SimDuration mean_interval, SimTime until,
                                           std::function<ProcessId()> victim_picker) {
  ScheduleNextRandomCrash(rng, mean_interval, until, std::move(victim_picker));
}

void FailureInjector::ScheduleNextRandomCrash(Rng* rng, SimDuration mean_interval, SimTime until,
                                              std::function<ProcessId()> victim_picker) {
  auto delay = static_cast<SimDuration>(rng->Exponential(static_cast<double>(mean_interval)));
  SimTime when = cluster_->sim()->now() + delay;
  if (when > until) {
    return;
  }
  cluster_->sim()->ScheduleAt(
      when, [this, rng, mean_interval, until, picker = std::move(victim_picker)]() mutable {
        ProcessId victim = picker();
        if (victim != kInvalidProcess && cluster_->Find(victim) != nullptr) {
          ++injected_;
          SNS_LOG(kInfo, "inject") << "random crash of pid " << victim;
          LogEvent(StrFormat("random crash pid %ld", victim));
          cluster_->Crash(victim);
        }
        ScheduleNextRandomCrash(rng, mean_interval, until, std::move(picker));
      });
}

void FailureInjector::RandomFaults(Rng* rng, const RandomFaultMix& mix) {
  ScheduleNextRandomFault(rng, std::make_shared<const RandomFaultMix>(mix));
}

void FailureInjector::ScheduleNextRandomFault(Rng* rng,
                                              std::shared_ptr<const RandomFaultMix> mix) {
  auto delay =
      static_cast<SimDuration>(rng->Exponential(static_cast<double>(mix->mean_interval)));
  SimTime when = cluster_->sim()->now() + delay;
  if (when > mix->until) {
    return;
  }
  cluster_->sim()->ScheduleAt(when, [this, rng, mix = std::move(mix)] {
    ApplyRandomFault(rng, *mix);
    ScheduleNextRandomFault(rng, mix);
  });
}

void FailureInjector::ApplyRandomFault(Rng* rng, const RandomFaultMix& mix) {
  // A class without a picker can never fire, whatever its weight says.
  std::vector<double> weights = {
      mix.process_victim ? mix.process_crash_weight : 0.0,
      mix.node_victim ? mix.node_outage_weight : 0.0,
      mix.partition_victims ? mix.partition_weight : 0.0,
  };
  if (weights[0] <= 0 && weights[1] <= 0 && weights[2] <= 0) {
    return;
  }
  SimTime now = cluster_->sim()->now();
  switch (rng->WeightedIndex(weights)) {
    case 0: {
      ProcessId victim = mix.process_victim();
      if (victim != kInvalidProcess && cluster_->Find(victim) != nullptr) {
        ++injected_;
        SNS_LOG(kInfo, "inject") << "random crash of pid " << victim;
        LogEvent(StrFormat("random crash pid %ld", victim));
        cluster_->Crash(victim);
      }
      break;
    }
    case 1: {
      NodeId victim = mix.node_victim();
      if (victim != kInvalidNode && cluster_->NodeUp(victim)) {
        ++injected_;
        LogEvent(StrFormat("random node outage: node %d for %s", victim,
                           FormatTime(mix.node_downtime).c_str()));
        cluster_->CrashNode(victim);
        RestartNodeAt(now + mix.node_downtime, victim);
      }
      break;
    }
    case 2: {
      std::vector<NodeId> minority = mix.partition_victims();
      if (!minority.empty()) {
        LogEvent(StrFormat("random partition of %zu node(s) for %s", minority.size(),
                           FormatTime(mix.partition_duration).c_str()));
        // PartitionAt schedules at absolute times; firing "now" applies instantly.
        PartitionAt(now, minority, now + mix.partition_duration);
      }
      break;
    }
    default:
      break;
  }
}

}  // namespace sns
