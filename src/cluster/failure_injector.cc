#include "src/cluster/failure_injector.h"

#include "src/util/logging.h"

namespace sns {

void FailureInjector::CrashProcessAt(SimTime when, ProcessId pid) {
  cluster_->sim()->ScheduleAt(when, [this, pid] {
    if (cluster_->Find(pid) != nullptr) {
      ++injected_;
      SNS_LOG(kInfo, "inject") << "crashing pid " << pid;
      cluster_->Crash(pid);
    }
  });
}

void FailureInjector::CrashNodeAt(SimTime when, NodeId node) {
  cluster_->sim()->ScheduleAt(when, [this, node] {
    ++injected_;
    cluster_->CrashNode(node);
  });
}

void FailureInjector::RestartNodeAt(SimTime when, NodeId node) {
  cluster_->sim()->ScheduleAt(when, [this, node] { cluster_->RestartNode(node); });
}

void FailureInjector::PartitionAt(SimTime when, const std::vector<NodeId>& minority,
                                  SimTime heal_at) {
  cluster_->sim()->ScheduleAt(when, [this, minority] {
    ++injected_;
    SNS_LOG(kInfo, "inject") << "partitioning " << minority.size() << " node(s) away";
    for (NodeId node : minority) {
      san_->SetPartition(node, 1);
    }
  });
  if (heal_at != kTimeNever) {
    cluster_->sim()->ScheduleAt(heal_at, [this] {
      SNS_LOG(kInfo, "inject") << "healing partition";
      san_->HealPartitions();
    });
  }
}

void FailureInjector::RandomProcessCrashes(Rng* rng, SimDuration mean_interval, SimTime until,
                                           std::function<ProcessId()> victim_picker) {
  ScheduleNextRandomCrash(rng, mean_interval, until, std::move(victim_picker));
}

void FailureInjector::ScheduleNextRandomCrash(Rng* rng, SimDuration mean_interval, SimTime until,
                                              std::function<ProcessId()> victim_picker) {
  auto delay = static_cast<SimDuration>(rng->Exponential(static_cast<double>(mean_interval)));
  SimTime when = cluster_->sim()->now() + delay;
  if (when > until) {
    return;
  }
  cluster_->sim()->ScheduleAt(
      when, [this, rng, mean_interval, until, picker = std::move(victim_picker)]() mutable {
        ProcessId victim = picker();
        if (victim != kInvalidProcess && cluster_->Find(victim) != nullptr) {
          ++injected_;
          SNS_LOG(kInfo, "inject") << "random crash of pid " << victim;
          cluster_->Crash(victim);
        }
        ScheduleNextRandomCrash(rng, mean_interval, until, std::move(picker));
      });
}

}  // namespace sns
