// The cluster substrate: nodes (dedicated and overflow pools), CPU scheduling, and
// process lifecycle management.
//
// Stands in for the paper's physical NOW: commodity nodes with their own CPUs,
// busses and disks, connected only through the SAN. Supports the operations the SNS
// layer builds on: spawning a worker on any node with spare cycles (§1.3 "a worker
// ... can run anywhere that significant CPU cycles are available"), recruiting
// overflow machines during bursts (§2.2.3), and killing processes or whole nodes to
// exercise fault masking (§4.5's experiment manually kills distillers).

#ifndef SRC_CLUSTER_CLUSTER_H_
#define SRC_CLUSTER_CLUSTER_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/cluster/process.h"
#include "src/net/san.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/sim/simulator.h"
#include "src/util/stats.h"

namespace sns {

struct NodeConfig {
  int cpus = 1;          // HotBot mixed single- and dual-CPU nodes (§3.2).
  double speed = 1.0;    // Relative CPU speed; cpu_time is divided by this.
  bool overflow_pool = false;  // Overflow machines are not dedicated (§2.2.3).
  // Nodes reserved for infrastructure (front ends, caches, the origin gateway) are
  // not eligible targets when the manager places new workers.
  bool workers_allowed = true;
  std::optional<LinkConfig> link;  // Overrides the SAN default when set.
};

class Cluster {
 public:
  Cluster(Simulator* sim, San* san);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  // --- Nodes ---------------------------------------------------------------
  NodeId AddNode(const NodeConfig& config = NodeConfig{});
  std::vector<NodeId> AddNodes(int count, const NodeConfig& config = NodeConfig{});
  bool NodeUp(NodeId node) const;
  bool IsOverflowNode(NodeId node) const;
  bool WorkersAllowed(NodeId node) const;
  std::vector<NodeId> AllNodes() const;
  std::vector<NodeId> UpNodes(bool include_overflow) const;

  // Number of live processes hosted on a node.
  int ProcessCountOnNode(NodeId node) const;

  // Fraction of time the node's CPUs were busy over [0, now].
  double CpuUtilization(NodeId node) const;

  // --- Processes -------------------------------------------------------------
  // Starts `process` on `node`; assigns a pid and a fresh endpoint, binds it to the
  // SAN and invokes OnStart. Returns kInvalidProcess if the node is absent or down.
  ProcessId Spawn(NodeId node, std::unique_ptr<Process> process);

  // Graceful stop: OnStop runs, then the endpoint unbinds.
  void Stop(ProcessId pid);

  // Crash: the process vanishes without OnStop; pending timers and CPU work are
  // discarded; its endpoint unbinds (reliable senders fail fast, §3.1.3).
  void Crash(ProcessId pid);

  Process* Find(ProcessId pid) const;
  // The process bound to `ep`, if any.
  Process* FindByEndpoint(const Endpoint& ep) const;
  std::vector<ProcessId> ProcessesOnNode(NodeId node) const;

  // --- Node-level failures ------------------------------------------------------
  // Power-fails a node: all its processes crash; the SAN stops carrying its traffic.
  void CrashNode(NodeId node);
  // Brings a crashed node back up (empty; processes must be respawned).
  void RestartNode(NodeId node);

  // --- CPU ------------------------------------------------------------------
  // Charges `cpu_time` of CPU to `node` on behalf of process `owner` (may be
  // kInvalidProcess for systemic work); runs `done` on completion unless the owner
  // died or the node crashed in the meantime.
  void RunOnCpu(NodeId node, ProcessId owner, SimDuration cpu_time, std::function<void()> done);

  // Instantaneous CPU backlog of the node in seconds of queued work.
  double CpuBacklogSeconds(NodeId node) const;

  Simulator* sim() { return sim_; }
  San* san() { return san_; }

  // Shared observability plane: one metrics registry and one trace collector for
  // the whole cluster, outliving any individual process (paper §3.1.7 monitor).
  MetricsRegistry* metrics() { return &metrics_; }
  TraceCollector* tracer() { return &tracer_; }

  int64_t total_spawns() const { return total_spawns_; }
  int64_t total_crashes() const { return total_crashes_; }

 private:
  struct NodeState {
    NodeConfig config;
    bool up = true;
    uint64_t incarnation = 0;  // Bumped on crash so stale CPU completions drop.
    std::vector<SimTime> cpu_busy_until;
    SimDuration cpu_busy_total = 0;
    std::vector<ProcessId> processes;
  };

  NodeState* GetNode(NodeId node);
  const NodeState* GetNode(NodeId node) const;
  void RemoveProcess(ProcessId pid, bool graceful);

  Simulator* sim_;
  San* san_;
  MetricsRegistry metrics_;
  TraceCollector tracer_;
  NodeId next_node_ = 0;
  Port next_port_ = 1;
  ProcessId next_pid_ = 1;
  std::map<NodeId, NodeState> nodes_;
  std::map<ProcessId, std::unique_ptr<Process>> processes_;
  int64_t total_spawns_ = 0;
  int64_t total_crashes_ = 0;
};

}  // namespace sns

#endif  // SRC_CLUSTER_CLUSTER_H_
