#include "src/cluster/cluster.h"

#include <algorithm>

#include "src/util/logging.h"

namespace sns {

Cluster::Cluster(Simulator* sim, San* san) : sim_(sim), san_(san) {}

Cluster::~Cluster() {
  // Unbind remaining endpoints so the SAN holds no dangling handlers.
  for (auto& [pid, process] : processes_) {
    if (process->running_) {
      san_->Unbind(process->endpoint_);
    }
  }
}

NodeId Cluster::AddNode(const NodeConfig& config) {
  NodeId id = next_node_++;
  NodeState state;
  state.config = config;
  state.cpu_busy_until.assign(static_cast<size_t>(std::max(config.cpus, 1)), 0);
  nodes_[id] = std::move(state);
  if (config.link.has_value()) {
    san_->AddNode(id, *config.link);
  } else {
    san_->AddNode(id);
  }
  return id;
}

std::vector<NodeId> Cluster::AddNodes(int count, const NodeConfig& config) {
  std::vector<NodeId> ids;
  ids.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    ids.push_back(AddNode(config));
  }
  return ids;
}

bool Cluster::NodeUp(NodeId node) const {
  const NodeState* state = GetNode(node);
  return state != nullptr && state->up;
}

bool Cluster::IsOverflowNode(NodeId node) const {
  const NodeState* state = GetNode(node);
  return state != nullptr && state->config.overflow_pool;
}

bool Cluster::WorkersAllowed(NodeId node) const {
  const NodeState* state = GetNode(node);
  return state != nullptr && state->config.workers_allowed;
}

std::vector<NodeId> Cluster::AllNodes() const {
  std::vector<NodeId> out;
  out.reserve(nodes_.size());
  for (const auto& [id, state] : nodes_) {
    out.push_back(id);
  }
  return out;
}

std::vector<NodeId> Cluster::UpNodes(bool include_overflow) const {
  std::vector<NodeId> out;
  for (const auto& [id, state] : nodes_) {
    if (state.up && (include_overflow || !state.config.overflow_pool)) {
      out.push_back(id);
    }
  }
  return out;
}

int Cluster::ProcessCountOnNode(NodeId node) const {
  const NodeState* state = GetNode(node);
  return state == nullptr ? 0 : static_cast<int>(state->processes.size());
}

double Cluster::CpuUtilization(NodeId node) const {
  const NodeState* state = GetNode(node);
  SimTime now = sim_->now();
  if (state == nullptr || now <= 0) {
    return 0.0;
  }
  double capacity = static_cast<double>(now) * static_cast<double>(state->cpu_busy_until.size());
  return std::min(static_cast<double>(state->cpu_busy_total) / capacity, 1.0);
}

ProcessId Cluster::Spawn(NodeId node, std::unique_ptr<Process> process) {
  NodeState* state = GetNode(node);
  if (state == nullptr || !state->up) {
    return kInvalidProcess;
  }
  ProcessId pid = next_pid_++;
  Process* p = process.get();
  p->pid_ = pid;
  p->endpoint_ = Endpoint{node, next_port_++};
  p->cluster_ = this;
  p->running_ = true;
  state->processes.push_back(pid);
  processes_[pid] = std::move(process);
  san_->Bind(p->endpoint_, [this, pid](const Message& msg) {
    Process* target = Find(pid);
    if (target != nullptr && target->running_) {
      target->OnMessage(msg);
    }
  });
  ++total_spawns_;
  SNS_LOG(kDebug, "cluster") << "spawned " << p->name() << " pid=" << pid
                             << " at " << p->endpoint().ToString();
  p->OnStart();
  return pid;
}

void Cluster::Stop(ProcessId pid) { RemoveProcess(pid, /*graceful=*/true); }

void Cluster::Crash(ProcessId pid) {
  ++total_crashes_;
  RemoveProcess(pid, /*graceful=*/false);
}

void Cluster::RemoveProcess(ProcessId pid, bool graceful) {
  auto it = processes_.find(pid);
  if (it == processes_.end()) {
    return;
  }
  Process* p = it->second.get();
  if (graceful && p->running_) {
    p->OnStop();
  }
  p->running_ = false;
  for (EventId timer : p->pending_timers_) {
    sim_->Cancel(timer);
  }
  p->pending_timers_.clear();
  san_->Unbind(p->endpoint_);
  NodeState* node = GetNode(p->endpoint_.node);
  if (node != nullptr) {
    auto& procs = node->processes;
    procs.erase(std::remove(procs.begin(), procs.end(), pid), procs.end());
  }
  SNS_LOG(kDebug, "cluster") << (graceful ? "stopped " : "crashed ") << p->name()
                             << " pid=" << pid;
  processes_.erase(it);
}

Process* Cluster::Find(ProcessId pid) const {
  auto it = processes_.find(pid);
  return it == processes_.end() ? nullptr : it->second.get();
}

Process* Cluster::FindByEndpoint(const Endpoint& ep) const {
  for (const auto& [pid, process] : processes_) {
    if (process->endpoint_ == ep) {
      return process.get();
    }
  }
  return nullptr;
}

std::vector<ProcessId> Cluster::ProcessesOnNode(NodeId node) const {
  const NodeState* state = GetNode(node);
  return state == nullptr ? std::vector<ProcessId>{} : state->processes;
}

void Cluster::CrashNode(NodeId node) {
  NodeState* state = GetNode(node);
  if (state == nullptr || !state->up) {
    return;
  }
  state->up = false;
  ++state->incarnation;
  san_->SetNodeUp(node, false);
  // Crash processes; copy the list since Crash mutates it.
  std::vector<ProcessId> victims = state->processes;
  for (ProcessId pid : victims) {
    Crash(pid);
  }
  // Queued CPU work is abandoned.
  std::fill(state->cpu_busy_until.begin(), state->cpu_busy_until.end(), sim_->now());
  SNS_LOG(kInfo, "cluster") << "node " << node << " crashed";
}

void Cluster::RestartNode(NodeId node) {
  NodeState* state = GetNode(node);
  if (state == nullptr || state->up) {
    return;
  }
  state->up = true;
  san_->SetNodeUp(node, true);
  SNS_LOG(kInfo, "cluster") << "node " << node << " restarted";
}

void Cluster::RunOnCpu(NodeId node, ProcessId owner, SimDuration cpu_time,
                       std::function<void()> done) {
  NodeState* state = GetNode(node);
  if (state == nullptr || !state->up) {
    return;
  }
  if (cpu_time < 0) {
    cpu_time = 0;
  }
  auto scaled = static_cast<SimDuration>(static_cast<double>(cpu_time) / state->config.speed);
  // Pick the CPU that frees up first (work-conserving multiprocessor).
  size_t cpu = 0;
  for (size_t i = 1; i < state->cpu_busy_until.size(); ++i) {
    if (state->cpu_busy_until[i] < state->cpu_busy_until[cpu]) {
      cpu = i;
    }
  }
  SimTime start = std::max(sim_->now(), state->cpu_busy_until[cpu]);
  SimTime finish = start + scaled;
  state->cpu_busy_until[cpu] = finish;
  state->cpu_busy_total += scaled;
  uint64_t incarnation = state->incarnation;
  sim_->ScheduleAt(finish, [this, node, owner, incarnation, done = std::move(done)] {
    NodeState* s = GetNode(node);
    if (s == nullptr || !s->up || s->incarnation != incarnation) {
      return;  // Node crashed while the work was queued.
    }
    if (owner != kInvalidProcess) {
      Process* p = Find(owner);
      if (p == nullptr || !p->running_) {
        return;  // Owner died; its completion is meaningless.
      }
    }
    done();
  });
}

double Cluster::CpuBacklogSeconds(NodeId node) const {
  const NodeState* state = GetNode(node);
  if (state == nullptr) {
    return 0.0;
  }
  SimTime now = sim_->now();
  SimDuration backlog = 0;
  for (SimTime busy_until : state->cpu_busy_until) {
    if (busy_until > now) {
      backlog += busy_until - now;
    }
  }
  return ToSeconds(backlog);
}

Cluster::NodeState* Cluster::GetNode(NodeId node) {
  auto it = nodes_.find(node);
  return it == nodes_.end() ? nullptr : &it->second;
}

const Cluster::NodeState* Cluster::GetNode(NodeId node) const {
  auto it = nodes_.find(node);
  return it == nodes_.end() ? nullptr : &it->second;
}

}  // namespace sns
