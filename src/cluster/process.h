// The process abstraction: a software component pinned to one cluster node.
//
// Paper §2.1: "each component in the diagram is confined to one node" — front ends,
// the manager, workers, caches and the monitor are all Processes. A process owns an
// endpoint on the SAN, can charge work to its node's CPU, set timers, and crash
// without taking the system down (worker isolation, §2.2.5). Timers and pending CPU
// completions die with the process.

#ifndef SRC_CLUSTER_PROCESS_H_
#define SRC_CLUSTER_PROCESS_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_set>

#include "src/net/message.h"
#include "src/net/san.h"
#include "src/sim/simulator.h"

namespace sns {

class Cluster;
class MetricsRegistry;

using ProcessId = int64_t;
constexpr ProcessId kInvalidProcess = -1;

class Process {
 public:
  explicit Process(std::string name) : name_(std::move(name)) {}
  virtual ~Process() = default;

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  // --- Lifecycle hooks (override in subclasses) -------------------------------
  // Called once when the process starts running on its node.
  virtual void OnStart() {}
  // Called for each message delivered to this process's endpoint.
  virtual void OnMessage(const Message& msg) { (void)msg; }
  // Called on graceful stop only. A crash (or node failure) skips this — all state
  // is simply gone, which is exactly the regime BASE soft state is designed for.
  virtual void OnStop() {}

  // --- Identity ----------------------------------------------------------------
  const std::string& name() const { return name_; }
  ProcessId pid() const { return pid_; }
  NodeId node() const { return endpoint_.node; }
  const Endpoint& endpoint() const { return endpoint_; }
  bool running() const { return running_; }

 protected:
  Simulator* sim() const;
  San* san() const;
  Cluster* cluster() const { return cluster_; }

  // --- Observability -------------------------------------------------------------
  // Shared cluster-wide instruments; valid once the process is spawned.
  MetricsRegistry* metrics() const;
  TraceCollector* tracer() const;

  // Opens a new root trace (e.g. a client issuing a request).
  TraceContext StartTrace() const;
  // Derives this process's span context from an incoming message's context;
  // invalid in, invalid out.
  TraceContext ChildSpan(const TraceContext& parent) const;
  // Records a finished span for this process: component/node filled in, end time
  // is the current sim time. No-op for invalid contexts.
  void RecordSpan(const TraceContext& ctx, const std::string& operation, SimTime start,
                  std::string outcome) const;

  // Sends from this process's endpoint. msg.src is filled in automatically.
  void Send(Message msg, San::SendOptions opts = {});
  void SendMulticast(McastGroup group, Message msg);
  void JoinGroup(McastGroup group);
  void LeaveGroup(McastGroup group);

  // Runs `done` once the node's CPU has executed `cpu_time` of work for this
  // process. The node CPU is a FIFO queue shared by all processes on the node; this
  // is where distillation cost, TCP/kernel per-request overhead, etc. are charged.
  // If the process dies first, `done` never runs.
  void RunOnCpu(SimDuration cpu_time, std::function<void()> done);

  // One-shot timer owned by this process; auto-cancelled if the process dies.
  EventId After(SimDuration delay, std::function<void()> fn);
  void CancelTimer(EventId id);

 private:
  friend class Cluster;

  std::string name_;
  ProcessId pid_ = kInvalidProcess;
  Endpoint endpoint_;
  Cluster* cluster_ = nullptr;
  bool running_ = false;
  std::unordered_set<EventId> pending_timers_;
};

}  // namespace sns

#endif  // SRC_CLUSTER_PROCESS_H_
