#include "src/cluster/process.h"

#include "src/cluster/cluster.h"

namespace sns {

Simulator* Process::sim() const { return cluster_->sim(); }

San* Process::san() const { return cluster_->san(); }

MetricsRegistry* Process::metrics() const { return cluster_->metrics(); }

TraceCollector* Process::tracer() const { return cluster_->tracer(); }

TraceContext Process::StartTrace() const { return cluster_->tracer()->StartTrace(); }

TraceContext Process::ChildSpan(const TraceContext& parent) const {
  return cluster_->tracer()->ChildOf(parent);
}

void Process::RecordSpan(const TraceContext& ctx, const std::string& operation, SimTime start,
                         std::string outcome) const {
  if (!ctx.valid()) {
    return;
  }
  SpanRecord span;
  span.trace_id = ctx.trace_id;
  span.span_id = ctx.span_id;
  span.parent_span_id = ctx.parent_span_id;
  span.component = name_;
  span.operation = operation;
  span.node = endpoint_.node;
  span.start = start;
  span.end = sim()->now();
  span.outcome = std::move(outcome);
  cluster_->tracer()->Record(std::move(span));
}

void Process::Send(Message msg, San::SendOptions opts) {
  msg.src = endpoint_;
  san()->Send(std::move(msg), std::move(opts));
}

void Process::SendMulticast(McastGroup group, Message msg) {
  msg.src = endpoint_;
  san()->SendMulticast(group, std::move(msg));
}

void Process::JoinGroup(McastGroup group) { san()->JoinGroup(group, endpoint_); }

void Process::LeaveGroup(McastGroup group) { san()->LeaveGroup(group, endpoint_); }

void Process::RunOnCpu(SimDuration cpu_time, std::function<void()> done) {
  cluster_->RunOnCpu(endpoint_.node, pid_, cpu_time, std::move(done));
}

EventId Process::After(SimDuration delay, std::function<void()> fn) {
  auto id_holder = std::make_shared<EventId>(kInvalidEventId);
  EventId id = sim()->Schedule(delay, [this, id_holder, fn = std::move(fn)] {
    pending_timers_.erase(*id_holder);
    // The cluster cancels pending timers on death, so reaching here implies alive;
    // still guard for robustness against same-timestamp orderings.
    if (!running_) {
      return;
    }
    fn();
  });
  *id_holder = id;
  pending_timers_.insert(id);
  return id;
}

void Process::CancelTimer(EventId id) {
  if (pending_timers_.erase(id) > 0) {
    sim()->Cancel(id);
  }
}

}  // namespace sns
