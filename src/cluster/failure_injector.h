// Failure injection: scripted and randomized crashes of processes, nodes, and SAN
// partitions.
//
// Used by the fault-tolerance experiments (paper §4.5 manually kills two distillers
// mid-run) and by the property tests that assert the system masks arbitrary
// transient faults.

#ifndef SRC_CLUSTER_FAILURE_INJECTOR_H_
#define SRC_CLUSTER_FAILURE_INJECTOR_H_

#include <functional>
#include <string>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/util/rng.h"

namespace sns {

class FailureInjector {
 public:
  FailureInjector(Cluster* cluster, San* san) : cluster_(cluster), san_(san) {}

  // --- Scripted faults ----------------------------------------------------------
  void CrashProcessAt(SimTime when, ProcessId pid);
  void CrashNodeAt(SimTime when, NodeId node);
  void RestartNodeAt(SimTime when, NodeId node);
  // Splits `minority` away from the rest of the cluster at `when`, healing at
  // `heal_at` (use kTimeNever for a permanent split).
  void PartitionAt(SimTime when, const std::vector<NodeId>& minority, SimTime heal_at);

  // --- Randomized faults ----------------------------------------------------------
  // Crashes processes selected by `victim_picker` (returns kInvalidProcess to skip a
  // round) at exponentially distributed intervals with the given mean, until
  // `until`. Process-peer fault tolerance should keep the service up throughout.
  void RandomProcessCrashes(Rng* rng, SimDuration mean_interval, SimTime until,
                            std::function<ProcessId()> victim_picker);

  int64_t injected_count() const { return injected_; }

 private:
  void ScheduleNextRandomCrash(Rng* rng, SimDuration mean_interval, SimTime until,
                               std::function<ProcessId()> victim_picker);

  Cluster* cluster_;
  San* san_;
  int64_t injected_ = 0;
};

}  // namespace sns

#endif  // SRC_CLUSTER_FAILURE_INJECTOR_H_
