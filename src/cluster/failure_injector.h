// Failure injection: scripted and randomized crashes of processes, nodes, and SAN
// partitions.
//
// Used by the fault-tolerance experiments (paper §4.5 manually kills two distillers
// mid-run), by the property tests that assert the system masks arbitrary transient
// faults, and by the chaos-campaign harness (src/chaos), which compiles a seeded
// fault schedule into scripted calls on this class.

#ifndef SRC_CLUSTER_FAILURE_INJECTOR_H_
#define SRC_CLUSTER_FAILURE_INJECTOR_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/util/rng.h"
#include "src/util/time.h"

namespace sns {

class FailureInjector {
 public:
  FailureInjector(Cluster* cluster, San* san) : cluster_(cluster), san_(san) {}

  // --- Scripted faults ----------------------------------------------------------
  void CrashProcessAt(SimTime when, ProcessId pid);
  void CrashNodeAt(SimTime when, NodeId node);
  void RestartNodeAt(SimTime when, NodeId node);
  // Splits `minority` into a freshly allocated partition group at `when`, healing
  // only that group at `heal_at` (kTimeNever = permanent). Each call gets its own
  // group, so overlapping splits coexist and heal independently. Returns the
  // allocated group id.
  int32_t PartitionAt(SimTime when, const std::vector<NodeId>& minority, SimTime heal_at);
  // Suppresses every multicast send to `group` during [when, when + duration) —
  // the beacon-loss fault (paper §4.6's lost control traffic, made injectable).
  void BeaconLossAt(SimTime when, McastGroup group, SimDuration duration);

  // --- Randomized faults ----------------------------------------------------------
  // Crashes processes selected by `victim_picker` (returns kInvalidProcess to skip a
  // round) at exponentially distributed intervals with the given mean, until
  // `until`. Process-peer fault tolerance should keep the service up throughout.
  void RandomProcessCrashes(Rng* rng, SimDuration mean_interval, SimTime until,
                            std::function<ProcessId()> victim_picker);

  // Mixed randomized faults: each round picks a fault class by weight. A picker
  // returning no victim (kInvalidProcess / kInvalidNode / empty vector) skips the
  // round; a class with weight 0 or no picker is never drawn.
  struct RandomFaultMix {
    SimDuration mean_interval = Seconds(10);
    SimTime until = 0;
    double process_crash_weight = 1.0;
    double node_outage_weight = 0.0;  // CrashNode, then RestartNode after downtime.
    double partition_weight = 0.0;    // Timed split, healed after duration.
    SimDuration node_downtime = Seconds(5);
    SimDuration partition_duration = Seconds(5);
    std::function<ProcessId()> process_victim;
    std::function<NodeId()> node_victim;
    std::function<std::vector<NodeId>()> partition_victims;
  };
  void RandomFaults(Rng* rng, const RandomFaultMix& mix);

  // --- Observability --------------------------------------------------------------
  int64_t injected_count() const { return injected_; }
  // Human-readable, sim-time-stamped record of every fault actually applied (in
  // injection order); deterministic for a given seed, so chaos traces can diff it.
  const std::vector<std::string>& event_log() const { return events_; }

  // Also forwards every applied fault to `sink` (sim time + description) — the
  // flight recorder hangs fault instants on the Perfetto timeline through this.
  void set_event_sink(std::function<void(SimTime, const std::string&)> sink) {
    event_sink_ = std::move(sink);
  }

 private:
  void ScheduleNextRandomCrash(Rng* rng, SimDuration mean_interval, SimTime until,
                               std::function<ProcessId()> victim_picker);
  void ScheduleNextRandomFault(Rng* rng, std::shared_ptr<const RandomFaultMix> mix);
  void ApplyRandomFault(Rng* rng, const RandomFaultMix& mix);
  void LogEvent(const std::string& what);

  Cluster* cluster_;
  San* san_;
  int64_t injected_ = 0;
  int32_t next_group_ = 1;  // Partition groups allocated per PartitionAt call.
  std::vector<std::string> events_;
  std::function<void(SimTime, const std::string&)> event_sink_;
};

}  // namespace sns

#endif  // SRC_CLUSTER_FAILURE_INJECTOR_H_
