// Soft-state table with TTL expiry: the BASE building block.
//
// Paper §2.2.4: components carry caches of peer state refreshed by periodic
// messages; entries not refreshed within their TTL are presumed dead and expire.
// The manager's distiller table, the manager stub's load-hint cache, and the
// monitor's component registry are all SoftStateTables.

#ifndef SRC_STORE_SOFT_STATE_H_
#define SRC_STORE_SOFT_STATE_H_

#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/util/time.h"

namespace sns {

template <typename K, typename V, typename Hash = std::hash<K>>
class SoftStateTable {
 public:
  explicit SoftStateTable(SimDuration default_ttl) : default_ttl_(default_ttl) {}

  // Inserts or refreshes an entry; its lease now runs until now + ttl.
  void Refresh(const K& key, V value, SimTime now) { Refresh(key, std::move(value), now, default_ttl_); }
  void Refresh(const K& key, V value, SimTime now, SimDuration ttl) {
    entries_[key] = Entry{std::move(value), now + ttl};
  }

  // Renews the lease without replacing the value; returns false if absent/expired.
  bool Touch(const K& key, SimTime now) {
    auto it = entries_.find(key);
    if (it == entries_.end() || it->second.expires_at <= now) {
      return false;
    }
    it->second.expires_at = now + default_ttl_;
    return true;
  }

  // Returns the value if present and unexpired.
  std::optional<V> Get(const K& key, SimTime now) const {
    auto it = entries_.find(key);
    if (it == entries_.end() || it->second.expires_at <= now) {
      return std::nullopt;
    }
    return it->second.value;
  }

  // Mutable access for in-place updates (e.g., bump a queue-length field).
  V* GetMutable(const K& key, SimTime now) {
    auto it = entries_.find(key);
    if (it == entries_.end() || it->second.expires_at <= now) {
      return nullptr;
    }
    return &it->second.value;
  }

  bool Contains(const K& key, SimTime now) const { return Get(key, now).has_value(); }

  bool Erase(const K& key) { return entries_.erase(key) > 0; }

  // Removes expired entries, invoking `on_expired` for each (the manager uses this
  // to declare distillers dead and notify stubs). Returns the number expired.
  size_t Expire(SimTime now, std::function<void(const K&, const V&)> on_expired = nullptr) {
    size_t count = 0;
    for (auto it = entries_.begin(); it != entries_.end();) {
      if (it->second.expires_at <= now) {
        if (on_expired) {
          on_expired(it->first, it->second.value);
        }
        it = entries_.erase(it);
        ++count;
      } else {
        ++it;
      }
    }
    return count;
  }

  // Live keys as of `now` (unexpired; does not prune).
  std::vector<K> LiveKeys(SimTime now) const {
    std::vector<K> keys;
    for (const auto& [key, entry] : entries_) {
      if (entry.expires_at > now) {
        keys.push_back(key);
      }
    }
    return keys;
  }

  // Visits every live entry.
  void ForEach(SimTime now, const std::function<void(const K&, const V&)>& fn) const {
    for (const auto& [key, entry] : entries_) {
      if (entry.expires_at > now) {
        fn(key, entry.value);
      }
    }
  }

  size_t SizeIncludingExpired() const { return entries_.size(); }
  size_t LiveCount(SimTime now) const {
    size_t n = 0;
    for (const auto& [key, entry] : entries_) {
      if (entry.expires_at > now) {
        ++n;
      }
    }
    return n;
  }

  void Clear() { entries_.clear(); }
  SimDuration default_ttl() const { return default_ttl_; }

 private:
  struct Entry {
    V value;
    SimTime expires_at;
  };

  SimDuration default_ttl_;
  std::unordered_map<K, Entry, Hash> entries_;
};

}  // namespace sns

#endif  // SRC_STORE_SOFT_STATE_H_
