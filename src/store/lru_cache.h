// Byte-capacity LRU cache.
//
// Backs the cache workers (paper §3.1.5) and the §4.4 cache-simulation study of hit
// rate vs cache size vs user population. Capacity is accounted in bytes because the
// paper sizes caches in MB/GB ("even a small cache (400MB) can reduce the load...").
// Header-only template so keys/values stay strongly typed per use.

#ifndef SRC_STORE_LRU_CACHE_H_
#define SRC_STORE_LRU_CACHE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <optional>
#include <unordered_map>

namespace sns {

template <typename K, typename V, typename Hash = std::hash<K>>
class LruCache {
 public:
  // size_of returns the charged size of a value in bytes (>= 0).
  LruCache(int64_t capacity_bytes, std::function<int64_t(const V&)> size_of)
      : capacity_bytes_(capacity_bytes), size_of_(std::move(size_of)) {}

  // Convenience for fixed-cost entries (classic count-based LRU with unit sizes).
  explicit LruCache(int64_t capacity_entries)
      : LruCache(capacity_entries, [](const V&) { return int64_t{1}; }) {}

  // Returns the value and promotes the entry to most-recently-used.
  std::optional<V> Get(const K& key) {
    auto it = index_.find(key);
    if (it == index_.end()) {
      ++misses_;
      return std::nullopt;
    }
    ++hits_;
    order_.splice(order_.begin(), order_, it->second);
    return it->second->value;
  }

  // Peeks without promoting or counting a hit/miss.
  const V* Peek(const K& key) const {
    auto it = index_.find(key);
    return it == index_.end() ? nullptr : &it->second->value;
  }

  bool Contains(const K& key) const { return index_.count(key) > 0; }

  // Inserts or replaces; evicts LRU entries until the new value fits. A value
  // larger than the whole capacity is not cached at all — and when it would
  // have replaced an existing entry, that entry is left untouched (the reject
  // check must precede the erase, or the old value silently vanishes).
  void Put(const K& key, V value) {
    int64_t size = size_of_(value);
    if (size > capacity_bytes_) {
      ++rejected_;
      return;
    }
    auto it = index_.find(key);
    if (it != index_.end()) {
      used_bytes_ -= it->second->size;
      order_.erase(it->second);
      index_.erase(it);
    }
    EvictUntilFits(size);
    order_.push_front(Entry{key, std::move(value), size});
    index_[key] = order_.begin();
    used_bytes_ += size;
  }

  bool Erase(const K& key) {
    auto it = index_.find(key);
    if (it == index_.end()) {
      return false;
    }
    used_bytes_ -= it->second->size;
    order_.erase(it->second);
    index_.erase(it);
    return true;
  }

  void Clear() {
    order_.clear();
    index_.clear();
    used_bytes_ = 0;
  }

  // Visits every entry from most- to least-recently-used without promoting or
  // counting hits. Lets a rebalancer scan its partition without perturbing
  // recency order. `fn(key, value, size_bytes)` must not mutate the cache.
  void ForEach(const std::function<void(const K&, const V&, int64_t)>& fn) const {
    for (const Entry& e : order_) {
      fn(e.key, e.value, e.size);
    }
  }

  size_t size() const { return index_.size(); }
  int64_t used_bytes() const { return used_bytes_; }
  int64_t capacity_bytes() const { return capacity_bytes_; }
  int64_t hits() const { return hits_; }
  int64_t misses() const { return misses_; }
  int64_t evictions() const { return evictions_; }
  int64_t rejected() const { return rejected_; }
  double HitRate() const {
    int64_t total = hits_ + misses_;
    return total > 0 ? static_cast<double>(hits_) / static_cast<double>(total) : 0.0;
  }
  void ResetCounters() {
    hits_ = 0;
    misses_ = 0;
    evictions_ = 0;
    rejected_ = 0;
  }

 private:
  struct Entry {
    K key;
    V value;
    int64_t size;
  };

  void EvictUntilFits(int64_t incoming) {
    while (!order_.empty() && used_bytes_ + incoming > capacity_bytes_) {
      const Entry& victim = order_.back();
      used_bytes_ -= victim.size;
      index_.erase(victim.key);
      order_.pop_back();
      ++evictions_;
    }
  }

  int64_t capacity_bytes_;
  std::function<int64_t(const V&)> size_of_;
  std::list<Entry> order_;  // Front = most recently used.
  std::unordered_map<K, typename std::list<Entry>::iterator, Hash> index_;
  int64_t used_bytes_ = 0;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
  int64_t evictions_ = 0;
  int64_t rejected_ = 0;
};

}  // namespace sns

#endif  // SRC_STORE_LRU_CACHE_H_
