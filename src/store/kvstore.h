// A small ACID key-value store with a write-ahead log: the customization database.
//
// Paper §2.3/§3.1.4: the user-profile database is the one deliberately ACID
// component of a mostly-BASE service (TranSend used gdbm, HotBot used Informix).
// This store provides atomic, durable single-key writes via a checksummed WAL with
// crash recovery by replay. `SimulateCrash()` drops all volatile state so tests can
// prove recovery; `Corrupt*` helpers let tests exercise torn-write handling.
//
// The store itself is synchronous and time-free; the process hosting it (the profile
// DB process, src/sns/profile_db.h) charges commit latency to its node.

#ifndef SRC_STORE_KVSTORE_H_
#define SRC_STORE_KVSTORE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/util/status.h"

namespace sns {

class KvStore {
 public:
  KvStore() = default;

  // --- ACID operations -----------------------------------------------------------
  // Durable single-key put: appends to the WAL, then applies to the table.
  Status Put(const std::string& key, const std::string& value);
  Status Delete(const std::string& key);
  std::optional<std::string> Get(const std::string& key) const;
  bool Contains(const std::string& key) const { return table_.count(key) > 0; }

  // Atomic multi-key transaction: all puts/deletes apply or none do.
  struct Op {
    enum class Kind { kPut, kDelete } kind;
    std::string key;
    std::string value;  // Empty for deletes.
  };
  Status Commit(const std::vector<Op>& ops);

  size_t size() const { return table_.size(); }

  // --- Crash / recovery ------------------------------------------------------------
  // Drops all in-memory state (as a process crash would); the WAL survives.
  void SimulateCrash();

  // Replays the WAL to rebuild the table. Stops at the first corrupt or torn
  // record, discarding it and everything after (standard WAL semantics). Returns the
  // number of records applied.
  Result<int64_t> Recover();

  // Compacts the WAL into a single snapshot of current state.
  void Checkpoint();

  // --- Fault-injection hooks for tests -----------------------------------------------
  // Flips a byte in WAL record `index`, simulating media corruption.
  Status CorruptLogRecord(size_t index);
  // Truncates the last record mid-write (a torn write during a crash).
  Status TearLastRecord();

  size_t wal_records() const { return wal_.size(); }
  int64_t wal_bytes() const;

 private:
  struct LogRecord {
    // Serialized form: one committed transaction.
    std::vector<Op> ops;
    uint64_t checksum = 0;  // Over the serialized ops.
    bool torn = false;      // Simulated partial write.
  };

  static uint64_t ChecksumOps(const std::vector<Op>& ops);
  void ApplyOps(const std::vector<Op>& ops);

  std::map<std::string, std::string> table_;  // Volatile.
  std::vector<LogRecord> wal_;                // "Durable".
};

}  // namespace sns

#endif  // SRC_STORE_KVSTORE_H_
