#include "src/store/kvstore.h"

#include "src/util/strings.h"

namespace sns {

uint64_t KvStore::ChecksumOps(const std::vector<Op>& ops) {
  uint64_t h = 0xCBF29CE484222325ULL;
  auto mix = [&h](const void* data, size_t len) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < len; ++i) {
      h ^= p[i];
      h *= 0x100000001B3ULL;
    }
  };
  for (const Op& op : ops) {
    auto kind = static_cast<uint8_t>(op.kind);
    mix(&kind, 1);
    uint32_t klen = static_cast<uint32_t>(op.key.size());
    uint32_t vlen = static_cast<uint32_t>(op.value.size());
    mix(&klen, sizeof(klen));
    mix(op.key.data(), op.key.size());
    mix(&vlen, sizeof(vlen));
    mix(op.value.data(), op.value.size());
  }
  return h;
}

void KvStore::ApplyOps(const std::vector<Op>& ops) {
  for (const Op& op : ops) {
    if (op.kind == Op::Kind::kPut) {
      table_[op.key] = op.value;
    } else {
      table_.erase(op.key);
    }
  }
}

Status KvStore::Put(const std::string& key, const std::string& value) {
  return Commit({Op{Op::Kind::kPut, key, value}});
}

Status KvStore::Delete(const std::string& key) {
  return Commit({Op{Op::Kind::kDelete, key, ""}});
}

std::optional<std::string> KvStore::Get(const std::string& key) const {
  auto it = table_.find(key);
  if (it == table_.end()) {
    return std::nullopt;
  }
  return it->second;
}

Status KvStore::Commit(const std::vector<Op>& ops) {
  if (ops.empty()) {
    return InvalidArgumentError("empty transaction");
  }
  LogRecord record;
  record.ops = ops;
  record.checksum = ChecksumOps(ops);
  wal_.push_back(std::move(record));  // "fsync" point: record is durable.
  ApplyOps(ops);
  return Status::Ok();
}

void KvStore::SimulateCrash() { table_.clear(); }

Result<int64_t> KvStore::Recover() {
  table_.clear();
  int64_t applied = 0;
  size_t valid_prefix = 0;
  for (const LogRecord& record : wal_) {
    if (record.torn || record.checksum != ChecksumOps(record.ops)) {
      break;  // Discard this record and everything after it.
    }
    ApplyOps(record.ops);
    ++applied;
    ++valid_prefix;
  }
  wal_.resize(valid_prefix);
  return applied;
}

void KvStore::Checkpoint() {
  std::vector<Op> snapshot;
  snapshot.reserve(table_.size());
  for (const auto& [key, value] : table_) {
    snapshot.push_back(Op{Op::Kind::kPut, key, value});
  }
  wal_.clear();
  if (!snapshot.empty()) {
    LogRecord record;
    record.ops = std::move(snapshot);
    record.checksum = ChecksumOps(record.ops);
    wal_.push_back(std::move(record));
  }
}

Status KvStore::CorruptLogRecord(size_t index) {
  if (index >= wal_.size()) {
    return InvalidArgumentError("no such WAL record");
  }
  LogRecord& record = wal_[index];
  if (record.ops.empty()) {
    return InvalidArgumentError("empty record");
  }
  if (!record.ops[0].value.empty()) {
    record.ops[0].value[0] = static_cast<char>(record.ops[0].value[0] ^ 0x5A);
  } else if (!record.ops[0].key.empty()) {
    record.ops[0].key[0] = static_cast<char>(record.ops[0].key[0] ^ 0x5A);
  }
  return Status::Ok();
}

Status KvStore::TearLastRecord() {
  if (wal_.empty()) {
    return FailedPreconditionError("WAL is empty");
  }
  wal_.back().torn = true;
  return Status::Ok();
}

int64_t KvStore::wal_bytes() const {
  int64_t total = 0;
  for (const LogRecord& record : wal_) {
    total += 16;  // Record header + checksum.
    for (const Op& op : record.ops) {
      total += 9 + static_cast<int64_t>(op.key.size() + op.value.size());
    }
  }
  return total;
}

}  // namespace sns
