#include "src/store/consistent_hash.h"

#include "src/util/strings.h"

namespace sns {

uint64_t ConsistentHashRing::PointHash(int64_t member, int vnode) const {
  if (point_hash_) {
    return point_hash_(member, vnode);
  }
  char buf[32];
  // Mix member and vnode through FNV for well-spread ring points.
  std::snprintf(buf, sizeof(buf), "%lld#%d", static_cast<long long>(member), vnode);
  return Fnv1a(buf, std::char_traits<char>::length(buf));
}

void ConsistentHashRing::AddMember(int64_t member) {
  if (!members_.insert(member).second) {
    return;
  }
  for (int v = 0; v < vnodes_; ++v) {
    ring_.insert({PointHash(member, v), member});
  }
}

void ConsistentHashRing::RemoveMember(int64_t member) {
  if (members_.erase(member) == 0) {
    return;
  }
  for (int v = 0; v < vnodes_; ++v) {
    ring_.erase({PointHash(member, v), member});
  }
}

std::vector<int64_t> ConsistentHashRing::Members() const {
  return std::vector<int64_t>(members_.begin(), members_.end());
}

std::optional<int64_t> ConsistentHashRing::Lookup(const std::string& key) const {
  return LookupHash(Fnv1a(key));
}

std::optional<int64_t> ConsistentHashRing::LookupHash(uint64_t hash) const {
  if (ring_.empty()) {
    return std::nullopt;
  }
  auto it = ring_.lower_bound({hash, INT64_MIN});
  if (it == ring_.end()) {
    it = ring_.begin();  // Wrap around.
  }
  return it->second;
}

std::vector<int64_t> ConsistentHashRing::LookupN(const std::string& key, size_t n) const {
  std::vector<int64_t> out;
  if (ring_.empty() || n == 0) {
    return out;
  }
  uint64_t hash = Fnv1a(key);
  auto it = ring_.lower_bound({hash, INT64_MIN});
  size_t visited = 0;
  while (out.size() < n && visited < ring_.size()) {
    if (it == ring_.end()) {
      it = ring_.begin();
    }
    bool seen = false;
    for (int64_t m : out) {
      if (m == it->second) {
        seen = true;
        break;
      }
    }
    if (!seen) {
      out.push_back(it->second);
    }
    ++it;
    ++visited;
  }
  return out;
}

}  // namespace sns
