// Consistent hashing of a key space across cache partitions.
//
// Paper §3.1.5: "the manager stub can manage a number of separate cache nodes as a
// single virtual cache, hashing the key space across the separate caches and
// automatically re-hashing when cache nodes are added or removed." A ring with
// virtual nodes keeps the re-hashed fraction near 1/n on membership change.

#ifndef SRC_STORE_CONSISTENT_HASH_H_
#define SRC_STORE_CONSISTENT_HASH_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace sns {

class ConsistentHashRing {
 public:
  // Maps (member, vnode) to a ring point. Injectable so tests can force point
  // collisions deterministically; production rings use the default FNV mix.
  using PointHashFn = std::function<uint64_t(int64_t member, int vnode)>;

  // vnodes: virtual points per member; more points = smoother balance.
  explicit ConsistentHashRing(int vnodes = 64) : vnodes_(vnodes) {}
  ConsistentHashRing(int vnodes, PointHashFn point_hash)
      : vnodes_(vnodes), point_hash_(std::move(point_hash)) {}

  void AddMember(int64_t member);
  void RemoveMember(int64_t member);
  bool HasMember(int64_t member) const { return members_.count(member) > 0; }
  size_t MemberCount() const { return members_.size(); }
  size_t PointCount() const { return ring_.size(); }
  std::vector<int64_t> Members() const;

  // Member owning `key`; nullopt when the ring is empty.
  std::optional<int64_t> Lookup(const std::string& key) const;
  std::optional<int64_t> LookupHash(uint64_t hash) const;

  // The first `n` distinct members encountered clockwise from the key's position —
  // usable for replication / failover chains.
  std::vector<int64_t> LookupN(const std::string& key, size_t n) const;

 private:
  uint64_t PointHash(int64_t member, int vnode) const;

  int vnodes_;
  PointHashFn point_hash_;  // Empty = default FNV point hash.
  std::set<int64_t> members_;
  // Ring points ordered by (point, member). Keying on the pair makes insertion
  // collision-safe: two members whose vnodes hash to the same point both keep
  // their entries (deterministically tie-broken by member id), and removal
  // erases exactly the departing member's points. A plain point->member map
  // silently dropped one side of every collision, and RemoveMember then deleted
  // the survivor's vnode for good.
  std::set<std::pair<uint64_t, int64_t>> ring_;
};

}  // namespace sns

#endif  // SRC_STORE_CONSISTENT_HASH_H_
