// Consistent hashing of a key space across cache partitions.
//
// Paper §3.1.5: "the manager stub can manage a number of separate cache nodes as a
// single virtual cache, hashing the key space across the separate caches and
// automatically re-hashing when cache nodes are added or removed." A ring with
// virtual nodes keeps the re-hashed fraction near 1/n on membership change.

#ifndef SRC_STORE_CONSISTENT_HASH_H_
#define SRC_STORE_CONSISTENT_HASH_H_

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace sns {

class ConsistentHashRing {
 public:
  // vnodes: virtual points per member; more points = smoother balance.
  explicit ConsistentHashRing(int vnodes = 64) : vnodes_(vnodes) {}

  void AddMember(int64_t member);
  void RemoveMember(int64_t member);
  bool HasMember(int64_t member) const { return members_.count(member) > 0; }
  size_t MemberCount() const { return members_.size(); }
  std::vector<int64_t> Members() const;

  // Member owning `key`; nullopt when the ring is empty.
  std::optional<int64_t> Lookup(const std::string& key) const;
  std::optional<int64_t> LookupHash(uint64_t hash) const;

  // The first `n` distinct members encountered clockwise from the key's position —
  // usable for replication / failover chains.
  std::vector<int64_t> LookupN(const std::string& key, size_t n) const;

 private:
  static uint64_t PointHash(int64_t member, int vnode);

  int vnodes_;
  std::set<int64_t> members_;
  std::map<uint64_t, int64_t> ring_;  // point -> member
};

}  // namespace sns

#endif  // SRC_STORE_CONSISTENT_HASH_H_
