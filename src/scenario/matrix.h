// The committed scenario matrices.
//
// SmokeMatrix() is the CI matrix behind the `matrix-smoke` ctest label: every
// cell here has a blessed baseline under bench/baselines/ and is diffed against
// it by tools/bench_diff on every run. The cell list is part of the repo's
// contract — bench/CMakeLists.txt names each cell literally, and
// tests/scenario_test.cc pins the list so the two cannot drift silently.
// Regenerate baselines with tools/bless_baseline after any change that
// legitimately moves the numbers.

#ifndef SRC_SCENARIO_MATRIX_H_
#define SRC_SCENARIO_MATRIX_H_

#include <string>
#include <vector>

#include "src/scenario/scenario.h"

namespace sns {

// The CI smoke matrix: 13 cells sweeping workload shape (replay, zipf, flash
// crowd, compressed diurnal, streaming TACC), cluster size (2-4 worker nodes,
// 1-2 front ends, 2-4 cache nodes), cache replication R in {1,2,3}, quorum
// vote layout (uniform vs core-weighted), fault schedules (fault-free and
// seeded chaos), and overload regime (nominal vs saturating).
std::vector<ScenarioCell> SmokeMatrix();

// Finds a cell by Name() in `cells`; nullptr when absent.
const ScenarioCell* FindCell(const std::vector<ScenarioCell>& cells,
                             const std::string& name);

}  // namespace sns

#endif  // SRC_SCENARIO_MATRIX_H_
