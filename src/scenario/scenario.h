// Declarative scenario matrix: one cell = {workload shape, cluster shape,
// fault schedule, overload regime}.
//
// The chaos campaign answers "do the invariants hold under faults?"; the bench
// binaries answer "does the paper's curve reproduce?". A scenario cell answers
// both at once for an arbitrary point in the configuration space: it builds the
// cluster the cell describes, drives the cell's workload shape at the cell's
// operating point, compiles the cell's fault schedule through the same
// ApplyScheduledFault path the campaign uses, checks every quiesce invariant,
// and emits a BENCH_matrix_<cell>.json artifact whose "matrix" section carries
// the cell's headline metrics (latency percentiles, goodput, cache hit rate,
// recovery time). Because the simulator is deterministic, the same cell on the
// same build produces byte-identical metrics — which is what makes exact
// baseline-diff perf gating (tools/bench_diff) feasible in CI.

#ifndef SRC_SCENARIO_SCENARIO_H_
#define SRC_SCENARIO_SCENARIO_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/chaos/invariants.h"
#include "src/chaos/schedule.h"
#include "src/tacc/streaming.h"
#include "src/util/time.h"

namespace sns {

// The workload axis. Replay and diurnal play generated request traces (flat
// and compressed-24h-cycle respectively); zipf draws URLs with a popularity
// skew at constant rate; flash steps the arrival rate 10x mid-run (the
// "flash crowd" overload of paper §2.1); stream is the long-lived-session
// per-frame-deadline workload of src/tacc/streaming.h.
enum class WorkloadShape { kReplay, kZipf, kFlashCrowd, kDiurnal, kStream };

// The quorum vote axis: uniform one-node-one-vote, or the core-weighted layout
// (SnsConfig::infra_node_votes) where the stateful service core outvotes the
// worker pool.
enum class VoteLayout { kUniform, kCoreWeighted };

// The offered-load axis: nominal sits well inside the worker/FE capacity of the
// cell's cluster; saturating offers ~2x capacity so the cell measures graceful
// degradation rather than headroom.
enum class OverloadRegime { kNominal, kSaturating };

const char* WorkloadShapeName(WorkloadShape shape);    // "replay", "zipf", ...
const char* VoteLayoutName(VoteLayout layout);         // "uniform"/"core-weighted"
const char* OverloadRegimeName(OverloadRegime regime); // "nominal"/"saturating"

struct ClusterShape {
  int worker_pool_nodes = 2;
  int front_ends = 1;
  int cache_nodes = 2;
  int cache_replication = 2;
  VoteLayout votes = VoteLayout::kUniform;
};

struct ScenarioCell {
  WorkloadShape workload = WorkloadShape::kZipf;
  ClusterShape cluster;
  OverloadRegime regime = OverloadRegime::kNominal;
  // 0 = fault-free cell. Otherwise GenerateSchedule(fault_seed, gen) is
  // resolved against the live topology at fire time, exactly as the chaos
  // campaign does. The schedule window (gen.horizon + gen.max_outage) must fit
  // inside `measure` so every fault heals before the drain.
  uint64_t fault_seed = 0;
  ScheduleGenConfig gen;
  // Workload seed: request arrival draws, URL choices, user identities.
  uint64_t seed = 0x5CE4A210;
  // Measured load window (after warmup, before drain).
  SimDuration measure = Seconds(40);
  // Stream cells only; stream.duration is forced to `measure`.
  StreamSessionConfig stream;

  // Deterministic cell id, used for artifact and baseline file names:
  //   <shape>_w<W>fe<F>c<C>r<R><u|cw>_<f0|fXX>_<nom|sat>
  // e.g. "zipf_w2fe1c2r2u_f0_nom", "stream_w2fe1c2r2u_f3c_sat".
  std::string Name() const;
};

// Offered-load operating points derived from the calibrated capacity model:
// one distiller sustains ~23 req/s, one front end saturates near ~70 req/s.
double CellCapacity(const ClusterShape& cluster);
double CellOfferedRate(const ScenarioCell& cell);

struct CellMetrics {
  double latency_p50_s = 0;
  double latency_p99_s = 0;
  // Fraction of sent requests answered Ok within deadline:
  // (completed - errors - late_completions) / sent.
  double goodput = 0;
  // Cache-tier hit fraction over the whole run, via the per-node gauges (which
  // survive cache-node deaths).
  double hit_rate = 1.0;
  // Longest run of consecutive whole seconds with zero request completions
  // inside the load window — the client-visible outage from the worst fault.
  double recovery_s = 0;
  // Harvest/yield (paper §1.2, DESIGN.md §15) over the whole run, from the
  // system availability ledger: yield = answered/offered, harvest = mean
  // completeness of the answers (degraded/approximate answers < 1.0).
  double yield = 1.0;
  double harvest = 1.0;
  int64_t sent = 0;
  int64_t completed = 0;
  int64_t errors = 0;
  int64_t timeouts = 0;
  int64_t late_completions = 0;
};

struct CellResult {
  ScenarioCell cell;
  CellMetrics metrics;
  InvariantReport invariants;
  int64_t faults_injected = 0;
  bool artifact_written = false;
  std::string artifact_path;
  // Paper-style availability figure: per-second offered/answered/yield/harvest
  // rows with fault and outage annotations (AvailabilityLedger::RenderTable).
  std::string availability_table;

  bool passed() const { return invariants.ok(); }
};

struct CellRunOptions {
  // Directory receiving BENCH_matrix_<cell>.json; empty = no artifact.
  std::string artifact_dir;
  // Artifact-only multiplier applied to the emitted goodput metric. The run's
  // real CellResult is untouched. Exists so the matrix-smoke regression guard
  // can prove bench_diff catches an injected goodput regression (a WILL_FAIL
  // ctest runs one cell with 0.8 and diffs it against the blessed baseline).
  double distort_goodput = 1.0;
  // Appended to the artifact *file name* (not the cell name), so a distorted
  // artifact can sit next to the genuine one.
  std::string artifact_suffix;
};

// Builds the cell's cluster, runs warmup + load + faults + drain + settle,
// checks all quiesce invariants, computes the cell metrics, and (optionally)
// writes the artifact. Deterministic for a fixed cell spec.
CellResult RunScenarioCell(const ScenarioCell& cell, const CellRunOptions& options = {});

// Longest run of consecutive whole seconds in [from_s, to_s) absent from
// `completions_per_second` (the playback engine's completion buckets).
// Exposed for direct unit testing of the recovery metric.
int64_t LongestZeroCompletionGap(const std::map<int64_t, int64_t>& completions_per_second,
                                 int64_t from_s, int64_t to_s);

// Baseline-file JSON for one cell: {"schema_version":2,"cell":...,"metrics":...}.
// tools/bless_baseline writes these; tools/bench_diff reads them back.
std::string BaselineJson(const CellResult& result);

// The artifact's "matrix" section (cell spec + invariant verdict + metrics).
std::string MatrixSectionJson(const CellResult& result, double distort_goodput = 1.0);

}  // namespace sns

#endif  // SRC_SCENARIO_SCENARIO_H_
