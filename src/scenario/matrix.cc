#include "src/scenario/matrix.h"

namespace sns {
namespace {

// Shared schedule-generation shape for fault cells: the fault window plus the
// longest outage must fit inside the 40 s measured window (RunScenarioCell
// extends the window if it does not, but keeping it inside preserves identical
// load windows across fault-free and faulted cells of the same shape).
ScheduleGenConfig FaultWindow() {
  ScheduleGenConfig gen;
  gen.horizon = Seconds(20);
  gen.min_events = 2;
  gen.max_events = 3;
  gen.min_outage = Seconds(4);
  gen.max_outage = Seconds(10);
  gen.max_partition_nodes = 2;
  return gen;
}

ClusterShape Shape(int workers, int front_ends, int caches, int replication,
                   VoteLayout votes = VoteLayout::kUniform) {
  ClusterShape shape;
  shape.worker_pool_nodes = workers;
  shape.front_ends = front_ends;
  shape.cache_nodes = caches;
  shape.cache_replication = replication;
  shape.votes = votes;
  return shape;
}

ScenarioCell Cell(WorkloadShape workload, ClusterShape cluster,
                  OverloadRegime regime = OverloadRegime::kNominal,
                  uint64_t fault_seed = 0) {
  ScenarioCell cell;
  cell.workload = workload;
  cell.cluster = cluster;
  cell.regime = regime;
  cell.fault_seed = fault_seed;
  if (fault_seed != 0) {
    cell.gen = FaultWindow();
  }
  return cell;
}

}  // namespace

std::vector<ScenarioCell> SmokeMatrix() {
  std::vector<ScenarioCell> cells;

  // --- Zipf request/response: hot-document skew. ----------------------------------
  cells.push_back(Cell(WorkloadShape::kZipf, Shape(2, 1, 2, 2)));
  cells.push_back(
      Cell(WorkloadShape::kZipf, Shape(2, 1, 2, 2), OverloadRegime::kSaturating));
  // Larger cluster at R=3 under a balanced fault schedule.
  cells.push_back(Cell(WorkloadShape::kZipf, Shape(4, 2, 3, 3),
                       OverloadRegime::kNominal, 0x31));

  // --- Trace replay: flat diurnal, short-timescale bursts only. -------------------
  cells.push_back(Cell(WorkloadShape::kReplay, Shape(2, 2, 2, 1)));
  cells.push_back(Cell(WorkloadShape::kReplay, Shape(4, 2, 4, 2)));
  cells.push_back(
      Cell(WorkloadShape::kReplay, Shape(2, 1, 2, 1), OverloadRegime::kSaturating));

  // --- Flash crowd: 10x step arrivals. --------------------------------------------
  cells.push_back(Cell(WorkloadShape::kFlashCrowd, Shape(3, 2, 2, 2)));
  {
    // The crowd arrives while partitions carve the cluster: the overload and
    // fault axes composed in one cell.
    ScenarioCell cell = Cell(WorkloadShape::kFlashCrowd, Shape(3, 2, 2, 2),
                             OverloadRegime::kNominal, 0x47);
    cell.gen.kind_weights = {1.0, 1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 1.5, 1.0, 1.0, 1.0};
    cells.push_back(cell);
  }
  {
    // The same crowd and the same fault schedule with replication stripped to
    // R=1: the pair is the paper-style availability figure (yield timeline
    // under faults, R=1 vs R=2) in EXPERIMENTS.md.
    ScenarioCell cell = Cell(WorkloadShape::kFlashCrowd, Shape(3, 2, 2, 1),
                             OverloadRegime::kNominal, 0x47);
    cell.gen.kind_weights = {1.0, 1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 1.5, 1.0, 1.0, 1.0};
    cells.push_back(cell);
  }

  // --- Compressed diurnal replay under the core-weighted vote layout. -------------
  cells.push_back(Cell(WorkloadShape::kDiurnal,
                       Shape(2, 1, 2, 2, VoteLayout::kCoreWeighted)));
  {
    // Partition- and profile-DB-biased faults against core-weighted quorum:
    // stranding worker-pool nodes must never cost the service core quorum.
    ScenarioCell cell =
        Cell(WorkloadShape::kDiurnal, Shape(3, 2, 2, 2, VoteLayout::kCoreWeighted),
             OverloadRegime::kNominal, 0x5A);
    cell.gen.kind_weights = {1.0, 1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 1.0, 1.0, 2.0, 2.0};
    cells.push_back(cell);
  }

  // --- Streaming TACC: long-lived sessions, per-frame deadlines. ------------------
  cells.push_back(Cell(WorkloadShape::kStream, Shape(2, 1, 2, 2)));
  {
    // Cache-crash-biased faults against R=3: every frame is fresh content, so
    // the cell measures whether replica failover keeps frames inside deadline.
    ScenarioCell cell = Cell(WorkloadShape::kStream, Shape(3, 2, 2, 3),
                             OverloadRegime::kNominal, 0x6B);
    cell.stream.sessions = 10;
    cell.gen.kind_weights = {1.0, 1.0, 1.0, 4.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0};
    cells.push_back(cell);
  }
  {
    // Saturating stream: 16 sessions x 4 fps = 64 frames/s against ~46 req/s of
    // distiller capacity. Streams never back off, so goodput measures graceful
    // degradation under sustained structural overload.
    ScenarioCell cell =
        Cell(WorkloadShape::kStream, Shape(2, 1, 2, 2), OverloadRegime::kSaturating);
    cell.stream.sessions = 16;
    cells.push_back(cell);
  }

  return cells;
}

const ScenarioCell* FindCell(const std::vector<ScenarioCell>& cells,
                             const std::string& name) {
  for (const ScenarioCell& cell : cells) {
    if (cell.Name() == name) {
      return &cell;
    }
  }
  return nullptr;
}

}  // namespace sns
