#include "src/scenario/scenario.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <utility>

#include "src/chaos/campaign.h"
#include "src/cluster/failure_injector.h"
#include "src/obs/critical_path.h"
#include "src/obs/metrics.h"
#include "src/obs/profiler.h"
#include "src/services/transend/transend.h"
#include "src/util/strings.h"
#include "src/workload/trace.h"

namespace sns {

const char* WorkloadShapeName(WorkloadShape shape) {
  switch (shape) {
    case WorkloadShape::kReplay: return "replay";
    case WorkloadShape::kZipf: return "zipf";
    case WorkloadShape::kFlashCrowd: return "flash";
    case WorkloadShape::kDiurnal: return "diurnal";
    case WorkloadShape::kStream: return "stream";
  }
  return "unknown";
}

const char* VoteLayoutName(VoteLayout layout) {
  return layout == VoteLayout::kCoreWeighted ? "core-weighted" : "uniform";
}

const char* OverloadRegimeName(OverloadRegime regime) {
  return regime == OverloadRegime::kSaturating ? "saturating" : "nominal";
}

std::string ScenarioCell::Name() const {
  std::string fault_tag =
      fault_seed == 0
          ? std::string("f0")
          : StrFormat("f%02llx", static_cast<unsigned long long>(fault_seed & 0xFF));
  return StrFormat("%s_w%dfe%dc%dr%d%s_%s_%s", WorkloadShapeName(workload),
                   cluster.worker_pool_nodes, cluster.front_ends, cluster.cache_nodes,
                   cluster.cache_replication,
                   cluster.votes == VoteLayout::kCoreWeighted ? "cw" : "u",
                   fault_tag.c_str(),
                   regime == OverloadRegime::kSaturating ? "sat" : "nom");
}

double CellCapacity(const ClusterShape& cluster) {
  // One distiller sustains ~23 req/s on ~10 KB JPEGs; one front end's network
  // path saturates near ~70 req/s (§4.6 calibration).
  return std::min(23.0 * cluster.worker_pool_nodes, 70.0 * cluster.front_ends);
}

double CellOfferedRate(const ScenarioCell& cell) {
  double capacity = CellCapacity(cell.cluster);
  switch (cell.workload) {
    case WorkloadShape::kStream:
      // Streams do not back off: the offered rate is fixed by the session count.
      return cell.stream.sessions * cell.stream.frames_per_second;
    case WorkloadShape::kFlashCrowd:
      // Base rate before the 10x step; the step itself lands at ~1.5x capacity,
      // which is what makes it a flash crowd rather than a ramp.
      return std::clamp(0.15 * capacity, 4.0, 12.0);
    default:
      break;
  }
  if (cell.regime == OverloadRegime::kSaturating) {
    return std::min(2.0 * capacity, 90.0);
  }
  return std::clamp(0.4 * capacity, 6.0, 24.0);
}

int64_t LongestZeroCompletionGap(const std::map<int64_t, int64_t>& completions_per_second,
                                 int64_t from_s, int64_t to_s) {
  int64_t longest = 0;
  int64_t gap = 0;
  for (int64_t s = from_s; s < to_s; ++s) {
    auto it = completions_per_second.find(s);
    if (it == completions_per_second.end() || it->second == 0) {
      ++gap;
      longest = std::max(longest, gap);
    } else {
      gap = 0;
    }
  }
  return longest;
}

namespace {

constexpr SimDuration kWarmup = Seconds(8);
constexpr double kWarmupRate = 6.0;
constexpr SimDuration kRequestDeadline = Seconds(4);
constexpr SimDuration kRequestTimeout = Seconds(8);
// Post-drain settle window: beacon periods, soft-state TTLs, and rebalance
// passes must all finish before the convergence invariants are decidable.
constexpr SimDuration kQuiesceSettle = Seconds(30);

// Number of URLs in the universe of request/response cells. Small enough that
// the cache tier warms quickly and the hit-rate metric measures fault damage,
// not cold-start misses.
constexpr int64_t kUrlCount = 40;

StreamSessionConfig CellStreamConfig(const ScenarioCell& cell) {
  StreamSessionConfig stream = cell.stream;
  stream.duration = cell.measure;
  stream.seed = cell.stream.seed ^ cell.seed;
  return stream;
}

TranSendOptions CellOptions(const ScenarioCell& cell) {
  TranSendOptions options = DefaultTranSendOptions();
  // All-JPEG universe with distilled results uncached: every request
  // re-distills, keeping the worker pool load-bearing (the chaos-campaign
  // idiom — otherwise the cache absorbs the workload and worker faults are
  // invisible).
  options.universe.url_count =
      cell.workload == WorkloadShape::kStream
          ? std::max<int64_t>(StreamUrlSpace(CellStreamConfig(cell)), 1)
          : kUrlCount;
  options.universe.sizes.gif_fraction = 0.0;
  options.universe.sizes.html_fraction = 0.0;
  options.universe.sizes.jpeg_fraction = 1.0;
  options.universe.sizes.jpeg_mu = 9.2335;
  options.universe.sizes.jpeg_sigma = 0.05;
  options.universe.sizes.error_page_fraction = 0.0;
  options.logic.cache_distilled = false;
  options.topology.worker_pool_nodes = cell.cluster.worker_pool_nodes;
  options.topology.front_ends = cell.cluster.front_ends;
  options.topology.cache_nodes = cell.cluster.cache_nodes;
  options.sns.cache_replication = cell.cluster.cache_replication;
  if (cell.cluster.votes == VoteLayout::kCoreWeighted) {
    options.sns.infra_node_votes = 3;
  }
  if (cell.workload == WorkloadShape::kStream) {
    // Stream sources are nearby capture points, not the wide-area Internet:
    // fetching a fresh frame costs tens of milliseconds, so the per-frame
    // deadline is spent in the distiller chain, where the cell wants it.
    options.origin.latency_mu = std::log(0.08);
    options.origin.latency_sigma = 0.3;
    options.origin.min_latency = Milliseconds(20);
    options.origin.max_latency = Milliseconds(500);
  }
  return options;
}

std::string MetricsJson(const CellMetrics& m, double distort_goodput) {
  return StrFormat(
      "{\"latency_p50_s\":%.9g,\"latency_p99_s\":%.9g,\"goodput\":%.9g,"
      "\"hit_rate\":%.9g,\"recovery_s\":%.9g,\"yield\":%.9g,\"harvest\":%.9g,"
      "\"sent\":%lld,\"completed\":%lld,"
      "\"errors\":%lld,\"timeouts\":%lld,\"late_completions\":%lld}",
      m.latency_p50_s, m.latency_p99_s, m.goodput * distort_goodput, m.hit_rate,
      m.recovery_s, m.yield, m.harvest, static_cast<long long>(m.sent),
      static_cast<long long>(m.completed), static_cast<long long>(m.errors),
      static_cast<long long>(m.timeouts),
      static_cast<long long>(m.late_completions));
}

}  // namespace

std::string BaselineJson(const CellResult& result) {
  return StrFormat("{\"schema_version\":2,\"cell\":\"%s\",\"metrics\":%s}\n",
                   JsonEscape(result.cell.Name()).c_str(),
                   MetricsJson(result.metrics, 1.0).c_str());
}

std::string MatrixSectionJson(const CellResult& result, double distort_goodput) {
  const ScenarioCell& cell = result.cell;
  std::string cluster = StrFormat(
      "{\"worker_pool_nodes\":%d,\"front_ends\":%d,\"cache_nodes\":%d,"
      "\"cache_replication\":%d,\"votes\":\"%s\"}",
      cell.cluster.worker_pool_nodes, cell.cluster.front_ends,
      cell.cluster.cache_nodes, cell.cluster.cache_replication,
      VoteLayoutName(cell.cluster.votes));
  return StrFormat(
      "{\"cell\":\"%s\",\"workload\":\"%s\",\"regime\":\"%s\","
      "\"seed\":%llu,\"fault_seed\":%llu,\"cluster\":%s,"
      "\"invariants_ok\":%s,\"violations\":%zu,\"faults_injected\":%lld,"
      "\"metrics\":%s}",
      JsonEscape(cell.Name()).c_str(), WorkloadShapeName(cell.workload),
      OverloadRegimeName(cell.regime), static_cast<unsigned long long>(cell.seed),
      static_cast<unsigned long long>(cell.fault_seed), cluster.c_str(),
      result.invariants.ok() ? "true" : "false",
      result.invariants.violations.size(),
      static_cast<long long>(result.faults_injected),
      MetricsJson(result.metrics, distort_goodput).c_str());
}

namespace {

// Writes the uniform BENCH artifact (schema v2: snapshot, timeseries,
// critical_path, availability, profile, traces) plus the cell's "matrix"
// section (the validator allows extra top-level keys, so matrix artifacts pass
// the same schema check as every other bench artifact).
bool WriteCellArtifact(SnsSystem* system, const CellResult& result,
                       const CellRunOptions& options, const std::string& path) {
  MonitorProcess* monitor = system->monitor();
  std::string snapshot = monitor != nullptr ? monitor->ExportJson()
                                            : system->metrics()->RenderJson();
  std::string timeseries =
      system->recorder() != nullptr ? system->recorder()->ToJson() : "{}";
  CriticalPathSummary paths = CriticalPathSummary::FromCollector(*system->tracer());
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  std::fprintf(
      f,
      "{\"meta\":{\"schema_version\":2,\"bench\":\"%s\",\"time_ns\":%lld},"
      "\"snapshot\":%s,\"timeseries\":%s,\"critical_path\":%s,"
      "\"availability\":%s,\"profile\":%s,\"traces\":%s,"
      "\"matrix\":%s}\n",
      JsonEscape("matrix_" + result.cell.Name()).c_str(),
      static_cast<long long>(system->sim()->now()), snapshot.c_str(),
      timeseries.c_str(), paths.ToJson().c_str(),
      system->availability()->ToJson(system->event_log()).c_str(),
      Profiler::Get().ToJson().c_str(), system->tracer()->ToJson().c_str(),
      MatrixSectionJson(result, options.distort_goodput).c_str());
  std::fclose(f);
  return true;
}

}  // namespace

CellResult RunScenarioCell(const ScenarioCell& cell, const CellRunOptions& options) {
  CellResult result;
  result.cell = cell;
  if (cell.workload == WorkloadShape::kStream) {
    result.cell.stream = CellStreamConfig(cell);
  }

  TranSendService service(CellOptions(cell));
  service.Start();
  Simulator* sim = service.sim();
  SnsSystem* system = service.system();
  ContentUniverse* universe = service.universe();

  // The cache-tier gauge names are keyed by node id; capture the ids now so the
  // hit-rate metric survives cache-node deaths mid-run.
  std::vector<int> cache_node_ids;
  for (CacheNodeProcess* cache : system->cache_node_processes()) {
    cache_node_ids.push_back(cache->node());
  }

  SimDuration deadline = cell.workload == WorkloadShape::kStream
                             ? result.cell.stream.frame_deadline
                             : kRequestDeadline;
  PlaybackConfig client_config;
  client_config.seed = cell.seed ^ 0xC311ULL;
  client_config.request_deadline = deadline;
  client_config.request_timeout = kRequestTimeout;
  PlaybackEngine* client = service.AddPlaybackEngine(client_config);

  PlaybackConfig warm_config;
  warm_config.seed = cell.seed ^ 0x3A43ULL;
  warm_config.request_deadline = kRequestDeadline;
  warm_config.request_timeout = kRequestTimeout;
  PlaybackEngine* warm_client = service.AddPlaybackEngine(warm_config);

  // Warmup under light load: the manager spawns the initial workers and the
  // cache tier fills, so the measured window starts from a running cluster.
  // Stats are never reset — accounting from t=0 keeps the answered-or-expired
  // conservation invariant exact.
  Rng warm_rng(cell.seed ^ 0x3A43BEEFULL);
  warm_client->StartConstantRate(kWarmupRate, [&warm_rng, universe] {
    TraceRecord record;
    record.user_id = "warmup";
    record.url = universe->UrlAt(warm_rng.UniformInt(0, universe->url_count() - 1));
    return record;
  });
  sim->RunFor(kWarmup);
  warm_client->StopLoad();

  // --- The cell's workload shape, driven over [now, now + load_window]. -----------
  double rate = CellOfferedRate(cell);
  SimDuration load_window = cell.measure;
  if (cell.fault_seed != 0) {
    load_window = std::max(load_window,
                           cell.gen.horizon + cell.gen.max_outage + Seconds(2));
  }
  bool constant_rate_load = false;
  Rng load_rng(cell.seed ^ 0x10ADULL);
  switch (cell.workload) {
    case WorkloadShape::kZipf: {
      // Zipf-skewed URL popularity over a modest user population — the
      // HotBot-style shape where a few hot documents dominate.
      constant_rate_load = true;
      client->StartConstantRate(rate, [&load_rng, universe] {
        TraceRecord record;
        record.user_id = StrFormat(
            "u%lld", static_cast<long long>(load_rng.Zipf(64, 0.8)));
        record.url = universe->UrlAt(load_rng.Zipf(universe->url_count(), 0.9));
        return record;
      });
      break;
    }
    case WorkloadShape::kFlashCrowd: {
      // 10x step arrivals: quiet base load, then the crowd arrives for a
      // quarter of the window, then leaves. The step peak sits near 1.5x the
      // cell's capacity, so the cluster must shed or degrade, then recover.
      constant_rate_load = true;
      client->StartConstantRate(rate, [&load_rng, universe] {
        TraceRecord record;
        record.user_id = StrFormat(
            "u%lld", static_cast<long long>(load_rng.Zipf(256, 0.7)));
        record.url = universe->UrlAt(load_rng.Zipf(universe->url_count(), 0.9));
        return record;
      });
      SimTime flash_on = sim->now() + load_window * 3 / 10;
      SimTime flash_off = sim->now() + load_window * 11 / 20;
      sim->ScheduleAt(flash_on, [client, rate] { client->SetRate(10.0 * rate); });
      sim->ScheduleAt(flash_off, [client, rate] { client->SetRate(rate); });
      break;
    }
    case WorkloadShape::kReplay:
    case WorkloadShape::kDiurnal: {
      // Trace playback through the Fig. 6 burst generator. Replay keeps the
      // diurnal swing flat (pure short-timescale burstiness); diurnal
      // compresses a full 24 h cycle into the measured window.
      TraceGenConfig gen;
      gen.seed = cell.seed ^ 0xD1A17ULL;
      gen.duration = load_window;
      gen.mean_rate = rate;
      gen.user_count = 256;
      if (cell.workload == WorkloadShape::kDiurnal) {
        gen.diurnal_amplitude = 0.55;
        gen.diurnal_period = load_window;
      } else {
        gen.diurnal_amplitude = 0.0;
      }
      TraceGenerator generator(gen, universe);
      client->PlayTrace(generator.GenerateVector(), Seconds(1));
      break;
    }
    case WorkloadShape::kStream: {
      // Long-lived sessions emitting fresh frames on per-frame deadlines; the
      // schedule generator lives in src/tacc/streaming.h.
      std::vector<StreamFrame> frames =
          GenerateStreamFrames(result.cell.stream, universe->url_count());
      std::vector<TraceRecord> records;
      records.reserve(frames.size());
      for (const StreamFrame& frame : frames) {
        TraceRecord record;
        record.time = frame.at;
        record.user_id = StreamUserId(frame.session);
        record.url = universe->UrlAt(frame.url_index);
        records.push_back(std::move(record));
      }
      client->PlayTrace(std::move(records), Seconds(1));
      break;
    }
  }
  SimTime load_start = sim->now() + (constant_rate_load ? 0 : Seconds(1));

  // --- Fault schedule, compiled through the campaign's applicator. ----------------
  FailureInjector injector(system->cluster(), system->san());
  system->AttachFailureInjector(&injector);
  FaultSchedule schedule;
  if (cell.fault_seed != 0) {
    schedule = GenerateSchedule(cell.fault_seed, cell.gen);
    SimTime fault_start = load_start;
    for (const FaultEvent& ev : schedule.events) {
      sim->ScheduleAt(fault_start + ev.at, [&ev, system, &injector] {
        ApplyScheduledFault(ev, system, &injector);
      });
    }
  }

  sim->RunFor(load_window + Seconds(1));
  if (constant_rate_load) {
    client->StopLoad();
  }
  // Drain: every outstanding request completes or times out.
  sim->RunFor(kRequestTimeout + Seconds(2));
  // Settle: beacons, TTL expiries, and rebalance passes converge the soft state.
  sim->RunFor(kQuiesceSettle);

  result.invariants = CheckInvariantsAtQuiesce(system, {client, warm_client});
  result.faults_injected = injector.injected_count();

  CellMetrics& m = result.metrics;
  m.sent = client->sent();
  m.completed = client->completed();
  m.errors = client->errors();
  m.timeouts = client->timeouts();
  m.late_completions = client->late_completions();
  m.latency_p50_s = client->latency_histogram().Percentile(0.50);
  m.latency_p99_s = client->latency_histogram().Percentile(0.99);
  m.goodput = m.sent > 0 ? static_cast<double>(m.completed - m.errors -
                                               m.late_completions) /
                               static_cast<double>(m.sent)
                         : 0.0;
  int64_t hits = 0;
  int64_t misses = 0;
  for (int node : cache_node_ids) {
    std::string prefix = StrFormat("cache.n%d.", node);
    hits += static_cast<int64_t>(
        system->metrics()->GetGauge(prefix + "hits")->value());
    misses += static_cast<int64_t>(
        system->metrics()->GetGauge(prefix + "misses")->value());
  }
  m.hit_rate = (hits + misses) > 0
                   ? static_cast<double>(hits) / static_cast<double>(hits + misses)
                   : 1.0;
  m.recovery_s = static_cast<double>(LongestZeroCompletionGap(
      client->completions_per_second(), load_start / kSecond + 1,
      (load_start + load_window) / kSecond));
  // Both playback engines (warmup and load) share the system ledger, so the
  // run-level yield/harvest cover every request the cell ever offered —
  // consistent with the never-reset accounting above.
  m.yield = system->availability()->RunYield();
  m.harvest = system->availability()->RunHarvest();
  result.availability_table = system->availability()->RenderTable(system->event_log());

  if (!options.artifact_dir.empty()) {
    std::string path = options.artifact_dir + "/BENCH_matrix_" + cell.Name() +
                       options.artifact_suffix + ".json";
    result.artifact_written = WriteCellArtifact(system, result, options, path);
    result.artifact_path = path;
  }
  return result;
}

}  // namespace sns
