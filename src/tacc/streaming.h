// Stream-oriented TACC workload: long-lived sessions with per-frame deadlines.
//
// The request/response shapes the rest of the harness plays (replay, Zipf,
// flash crowd) arrive, complete, and leave; a *stream* session never leaves.
// Following the Stanford stream-oriented cluster framework (PAPERS.md,
// cs/0504051), each session emits frames at a fixed rate for the whole run,
// every frame is fresh content that must be pulled from the session's source
// and chained through the distillers, and a frame is only worth delivering
// while its per-frame deadline holds — goodput is frames meeting deadline, not
// frames eventually answered. This stresses the load balancer in ways
// request/response never does: offered load never decays when the cluster
// lags (sessions do not back off), arrivals are phase-structured rather than
// Poisson, and a burst of deadline misses is user-visible as a glitch even
// when every frame is eventually "answered".
//
// This file is deliberately free of cluster/workload dependencies: it produces
// a deterministic frame schedule (times, session ids, URL indices) that the
// scenario runner maps onto client requests. The same config + seed always
// yields byte-identical schedules, so matrix cells built on it are replayable.

#ifndef SRC_TACC_STREAMING_H_
#define SRC_TACC_STREAMING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/time.h"

namespace sns {

struct StreamSessionConfig {
  int sessions = 8;
  double frames_per_second = 4.0;
  // Per-frame deadline budget: a frame not delivered within this of its emit
  // time is a goodput loss even if an answer eventually arrives.
  SimDuration frame_deadline = Milliseconds(2500);
  // Total length of every session (sessions are long-lived: they all span the
  // whole window).
  SimDuration duration = Seconds(40);
  // Session start offsets. 0 = spread sessions evenly across one frame period,
  // which de-phases the per-session clocks the way independent clients would.
  SimDuration session_stagger = 0;
  // Deterministic per-frame timing jitter as a fraction of the frame period
  // (models source-side capture jitter; keeps the schedule from being a pure
  // comb while staying reproducible).
  double frame_jitter = 0.15;
  uint64_t seed = 0x57EA43;
};

// One frame of one session, in emit order.
struct StreamFrame {
  SimTime at = 0;       // Emit time, relative to the start of the stream window.
  int session = 0;      // 0-based session index.
  int64_t frame = 0;    // 0-based frame index within the session.
  int64_t url_index = 0;  // Index into the content universe for this frame.
};

// Frames per session implied by `duration` and `frames_per_second`.
int64_t StreamFramesPerSession(const StreamSessionConfig& config);

// Smallest universe that gives every frame of every session a distinct URL
// (frames are fresh content; a looped clip would turn the workload back into a
// cache test).
int64_t StreamUrlSpace(const StreamSessionConfig& config);

// The session's stable client identity ("stream-s07"): long-lived, so per-user
// state (profiles, FE caches) sees one user per session for the whole run.
std::string StreamUserId(int session);

// Generates the full schedule, sorted by emit time (ties broken by session then
// frame, so the order is total and deterministic). Each session s walks its own
// disjoint block of `url_space` URLs; url_space must be >= StreamUrlSpace().
std::vector<StreamFrame> GenerateStreamFrames(const StreamSessionConfig& config,
                                              int64_t url_space);

// Goodput accounting for a stream run: frames on time / frames emitted.
struct StreamGoodput {
  int64_t frames = 0;
  int64_t on_time = 0;
  double goodput() const {
    return frames > 0 ? static_cast<double>(on_time) / static_cast<double>(frames) : 0.0;
  }
};

}  // namespace sns

#endif  // SRC_TACC_STREAMING_H_
