#include "src/tacc/worker.h"

#include <cstdlib>

namespace sns {

int64_t TaccRequest::ArgIntOr(const std::string& key, int64_t fallback) const {
  auto it = args.find(key);
  if (it == args.end()) {
    return fallback;
  }
  char* end = nullptr;
  int64_t parsed = std::strtoll(it->second.c_str(), &end, 10);
  return (end != nullptr && *end == '\0' && end != it->second.c_str()) ? parsed : fallback;
}

int64_t TaccRequest::TotalInputBytes() const {
  int64_t total = 0;
  for (const ContentPtr& c : inputs) {
    if (c != nullptr) {
      total += c->size();
    }
  }
  return total;
}

SimDuration CostFromModel(const CostModel& model, int64_t input_bytes) {
  return model.fixed + static_cast<SimDuration>(static_cast<double>(model.per_kilobyte) *
                                                (static_cast<double>(input_bytes) / 1024.0));
}

SimDuration TaccWorker::EstimateCost(const TaccRequest& request) const {
  return CostFromModel(CostModel{}, request.TotalInputBytes());
}

}  // namespace sns
