// Worker registry: maps worker-type names to factories.
//
// The manager spawns "more instances of that component class" on demand (§2.2.1);
// the registry is how it knows how to construct an instance of a class. Services
// register their worker types here at configuration time.

#ifndef SRC_TACC_REGISTRY_H_
#define SRC_TACC_REGISTRY_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/tacc/worker.h"

namespace sns {

class WorkerRegistry {
 public:
  using Factory = std::function<TaccWorkerPtr()>;

  // Registers (or replaces) the factory for a worker type.
  void Register(const std::string& type, Factory factory);

  bool Has(const std::string& type) const { return factories_.count(type) > 0; }

  // Creates a fresh worker instance; nullptr for unknown types.
  TaccWorkerPtr Create(const std::string& type) const;

  std::vector<std::string> Types() const;
  size_t size() const { return factories_.size(); }

 private:
  std::map<std::string, Factory> factories_;
};

}  // namespace sns

#endif  // SRC_TACC_REGISTRY_H_
