// The TACC worker API: composable, stateless building blocks.
//
// Paper §2.3: services are built by chaining stateless transformation and
// aggregation workers, Unix-pipeline style. A worker sees its input object(s), the
// requesting user's profile (delivered automatically), and service-chosen arguments;
// it returns transformed or aggregated content. Workers "need not be thread-safe,
// and can, in fact, crash without taking the system down" (§2.2.5) — worker code
// here is pure compute, and the SNS worker stub wraps it with queueing, load
// reporting and crash containment.

#ifndef SRC_TACC_WORKER_H_
#define SRC_TACC_WORKER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/content/content.h"
#include "src/tacc/profile.h"
#include "src/util/status.h"
#include "src/util/time.h"

namespace sns {

struct TaccRequest {
  std::string url;                      // Object being operated on (cache key base).
  std::vector<ContentPtr> inputs;       // 1 for transformers, N for aggregators.
  UserProfile profile;                  // Mass customization (§2.3).
  std::map<std::string, std::string> args;  // Per-stage arguments from the service.

  const ContentPtr& input() const { return inputs.front(); }
  std::string ArgOr(const std::string& key, const std::string& fallback) const {
    auto it = args.find(key);
    return it == args.end() ? fallback : it->second;
  }
  int64_t ArgIntOr(const std::string& key, int64_t fallback) const;
  int64_t TotalInputBytes() const;
};

struct TaccResult {
  Status status;
  ContentPtr output;

  static TaccResult Ok(ContentPtr content) { return TaccResult{Status::Ok(), std::move(content)}; }
  static TaccResult Fail(Status status) { return TaccResult{std::move(status), nullptr}; }
};

class TaccWorker {
 public:
  virtual ~TaccWorker() = default;

  // Worker class name ("distill-jpeg", "search-shard-3", ...). Load balancing and
  // spawning operate per class: instances of the same type are interchangeable.
  virtual std::string type() const = 0;

  // Pure computation; must not retain state between calls (statelessness is what
  // lets the SNS layer restart workers anywhere, §2.2).
  virtual TaccResult Process(const TaccRequest& request) = 0;

  // Simulated CPU cost of processing `request`, charged to the hosting node. The
  // default models the paper's measured distillation behavior: a fixed dispatch
  // cost plus a per-input-kilobyte slope (Fig. 7 measured ~8 ms/KB for GIF).
  virtual SimDuration EstimateCost(const TaccRequest& request) const;

  // Workers whose instances are NOT interchangeable (HotBot's statically
  // partitioned search shards, §3.2) return false; the manager then never treats
  // one instance as a substitute for another.
  virtual bool interchangeable() const { return true; }
};

using TaccWorkerPtr = std::unique_ptr<TaccWorker>;

// Default cost-model constants (overridable per worker).
struct CostModel {
  SimDuration fixed = Milliseconds(2);
  SimDuration per_kilobyte = Milliseconds(8);  // Paper Fig. 7 slope.
};

SimDuration CostFromModel(const CostModel& model, int64_t input_bytes);

}  // namespace sns

#endif  // SRC_TACC_WORKER_H_
