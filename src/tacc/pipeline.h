// Pipeline composition of TACC workers.
//
// Paper §2.3: "Our initial implementation allows Unix-pipeline-like chaining of an
// arbitrary number of stateless transformations and aggregations". A PipelineSpec
// names the stages; RunPipelineLocally executes one synchronously (tests, examples,
// and the FE's degraded local fallback), while in the full system the front end
// ships each stage to a worker selected by the manager stub.

#ifndef SRC_TACC_PIPELINE_H_
#define SRC_TACC_PIPELINE_H_

#include <map>
#include <string>
#include <vector>

#include "src/tacc/registry.h"
#include "src/tacc/worker.h"

namespace sns {

struct PipelineStage {
  std::string worker_type;
  std::map<std::string, std::string> args;
};

struct PipelineSpec {
  std::vector<PipelineStage> stages;

  bool empty() const { return stages.empty(); }
  std::string ToString() const;  // "distill-gif | distill-jpeg | munge-html"

  static PipelineSpec Single(std::string worker_type,
                             std::map<std::string, std::string> args = {});
};

// Runs the pipeline in-process: stage i+1's input is stage i's output. The profile
// and URL flow through unchanged (the TACC contract). Fails on the first stage
// error or unknown worker type.
TaccResult RunPipelineLocally(const WorkerRegistry& registry, const PipelineSpec& spec,
                              const TaccRequest& initial);

// Total estimated CPU cost of running `spec` on `initial` (approximate: assumes
// stage outputs have the same size as inputs).
SimDuration EstimatePipelineCost(const WorkerRegistry& registry, const PipelineSpec& spec,
                                 const TaccRequest& initial);

}  // namespace sns

#endif  // SRC_TACC_PIPELINE_H_
