#include "src/tacc/pipeline.h"

#include "src/util/strings.h"

namespace sns {

std::string PipelineSpec::ToString() const {
  std::vector<std::string> names;
  names.reserve(stages.size());
  for (const PipelineStage& stage : stages) {
    names.push_back(stage.worker_type);
  }
  return StrJoin(names, " | ");
}

PipelineSpec PipelineSpec::Single(std::string worker_type,
                                  std::map<std::string, std::string> args) {
  PipelineSpec spec;
  spec.stages.push_back(PipelineStage{std::move(worker_type), std::move(args)});
  return spec;
}

TaccResult RunPipelineLocally(const WorkerRegistry& registry, const PipelineSpec& spec,
                              const TaccRequest& initial) {
  TaccRequest request = initial;
  ContentPtr current = initial.inputs.empty() ? nullptr : initial.inputs.front();
  for (size_t i = 0; i < spec.stages.size(); ++i) {
    const PipelineStage& stage = spec.stages[i];
    TaccWorkerPtr worker = registry.Create(stage.worker_type);
    if (worker == nullptr) {
      return TaccResult::Fail(NotFoundError("unknown worker type: " + stage.worker_type));
    }
    request.args = stage.args;
    if (i > 0) {
      request.inputs.assign(1, current);
    }
    TaccResult result = worker->Process(request);
    if (!result.status.ok()) {
      return result;
    }
    current = result.output;
  }
  return TaccResult::Ok(current);
}

SimDuration EstimatePipelineCost(const WorkerRegistry& registry, const PipelineSpec& spec,
                                 const TaccRequest& initial) {
  SimDuration total = 0;
  TaccRequest request = initial;
  for (const PipelineStage& stage : spec.stages) {
    TaccWorkerPtr worker = registry.Create(stage.worker_type);
    if (worker == nullptr) {
      continue;
    }
    request.args = stage.args;
    total += worker->EstimateCost(request);
  }
  return total;
}

}  // namespace sns
