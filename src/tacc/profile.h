// User customization profiles.
//
// Paper §2.3: "The customization database, a traditional ACID database, maps a user
// identification token (such as an IP address or cookie) to a list of key-value
// pairs for each user of the service. ... the appropriate profile information is
// automatically delivered to workers along with the input data".

#ifndef SRC_TACC_PROFILE_H_
#define SRC_TACC_PROFILE_H_

#include <map>
#include <optional>
#include <string>

#include "src/util/status.h"

namespace sns {

class UserProfile {
 public:
  UserProfile() = default;
  explicit UserProfile(std::string user_id) : user_id_(std::move(user_id)) {}

  const std::string& user_id() const { return user_id_; }
  void set_user_id(std::string id) { user_id_ = std::move(id); }

  void Set(const std::string& key, std::string value) { pairs_[key] = std::move(value); }
  std::optional<std::string> Get(const std::string& key) const;
  std::string GetOr(const std::string& key, const std::string& fallback) const;
  int64_t GetIntOr(const std::string& key, int64_t fallback) const;
  bool GetBoolOr(const std::string& key, bool fallback) const;
  bool Has(const std::string& key) const { return pairs_.count(key) > 0; }
  size_t size() const { return pairs_.size(); }
  const std::map<std::string, std::string>& pairs() const { return pairs_; }

  // Wire/storage form: length-prefixed key-value records (safe for arbitrary
  // bytes). Used to persist profiles in the ACID KvStore.
  std::string Serialize() const;
  static Result<UserProfile> Deserialize(const std::string& user_id, const std::string& data);

  // Approximate bytes on the wire, for SAN sizing.
  int64_t WireSize() const;

 private:
  std::string user_id_;
  std::map<std::string, std::string> pairs_;
};

}  // namespace sns

#endif  // SRC_TACC_PROFILE_H_
