#include "src/tacc/streaming.h"

#include <algorithm>

#include "src/util/rng.h"
#include "src/util/strings.h"

namespace sns {

int64_t StreamFramesPerSession(const StreamSessionConfig& config) {
  if (config.frames_per_second <= 0 || config.duration <= 0) {
    return 0;
  }
  return static_cast<int64_t>(ToSeconds(config.duration) * config.frames_per_second);
}

int64_t StreamUrlSpace(const StreamSessionConfig& config) {
  return StreamFramesPerSession(config) * static_cast<int64_t>(std::max(config.sessions, 0));
}

std::string StreamUserId(int session) { return StrFormat("stream-s%02d", session); }

std::vector<StreamFrame> GenerateStreamFrames(const StreamSessionConfig& config,
                                              int64_t url_space) {
  std::vector<StreamFrame> frames;
  int64_t per_session = StreamFramesPerSession(config);
  if (per_session <= 0 || config.sessions <= 0) {
    return frames;
  }
  frames.reserve(static_cast<size_t>(per_session) * static_cast<size_t>(config.sessions));
  SimDuration period = Seconds(1.0 / config.frames_per_second);
  SimDuration stagger = config.session_stagger > 0
                            ? config.session_stagger
                            : period / std::max(config.sessions, 1);
  // Each session's URL block is disjoint so no frame repeats content within a
  // run; the modulo keeps an undersized url_space safe (it degrades to repeats
  // rather than out-of-range indices).
  int64_t block = std::max<int64_t>(url_space / config.sessions, 1);
  for (int s = 0; s < config.sessions; ++s) {
    // Per-session RNG stream: adding/removing a session never re-times the rest.
    Rng rng(config.seed ^ (0x9E3779B97F4A7C15ULL * static_cast<uint64_t>(s + 1)));
    SimTime start = stagger * s;
    for (int64_t f = 0; f < per_session; ++f) {
      StreamFrame frame;
      double jitter = config.frame_jitter > 0
                          ? rng.Uniform(-config.frame_jitter, config.frame_jitter)
                          : 0.0;
      SimDuration offset = static_cast<SimDuration>(static_cast<double>(period) * jitter);
      frame.at = std::max<SimTime>(start + period * f + offset, 0);
      frame.session = s;
      frame.frame = f;
      frame.url_index = (static_cast<int64_t>(s) * block + f) % std::max<int64_t>(url_space, 1);
      frames.push_back(frame);
    }
  }
  std::sort(frames.begin(), frames.end(), [](const StreamFrame& a, const StreamFrame& b) {
    if (a.at != b.at) return a.at < b.at;
    if (a.session != b.session) return a.session < b.session;
    return a.frame < b.frame;
  });
  return frames;
}

}  // namespace sns
