#include "src/tacc/profile.h"

#include <cstdlib>
#include <cstring>

#include "src/util/strings.h"

namespace sns {

std::optional<std::string> UserProfile::Get(const std::string& key) const {
  auto it = pairs_.find(key);
  if (it == pairs_.end()) {
    return std::nullopt;
  }
  return it->second;
}

std::string UserProfile::GetOr(const std::string& key, const std::string& fallback) const {
  auto v = Get(key);
  return v.has_value() ? *v : fallback;
}

int64_t UserProfile::GetIntOr(const std::string& key, int64_t fallback) const {
  auto v = Get(key);
  if (!v.has_value()) {
    return fallback;
  }
  char* end = nullptr;
  int64_t parsed = std::strtoll(v->c_str(), &end, 10);
  return (end != nullptr && *end == '\0' && end != v->c_str()) ? parsed : fallback;
}

bool UserProfile::GetBoolOr(const std::string& key, bool fallback) const {
  auto v = Get(key);
  if (!v.has_value()) {
    return fallback;
  }
  if (*v == "true" || *v == "1" || *v == "yes") {
    return true;
  }
  if (*v == "false" || *v == "0" || *v == "no") {
    return false;
  }
  return fallback;
}

namespace {

void AppendLengthPrefixed(std::string* out, const std::string& s) {
  uint32_t len = static_cast<uint32_t>(s.size());
  out->append(reinterpret_cast<const char*>(&len), sizeof(len));
  out->append(s);
}

bool ReadLengthPrefixed(const std::string& data, size_t* pos, std::string* out) {
  if (*pos + sizeof(uint32_t) > data.size()) {
    return false;
  }
  uint32_t len = 0;
  std::memcpy(&len, data.data() + *pos, sizeof(len));
  *pos += sizeof(len);
  if (*pos + len > data.size()) {
    return false;
  }
  out->assign(data, *pos, len);
  *pos += len;
  return true;
}

}  // namespace

std::string UserProfile::Serialize() const {
  std::string out;
  uint32_t count = static_cast<uint32_t>(pairs_.size());
  out.append(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const auto& [key, value] : pairs_) {
    AppendLengthPrefixed(&out, key);
    AppendLengthPrefixed(&out, value);
  }
  return out;
}

Result<UserProfile> UserProfile::Deserialize(const std::string& user_id,
                                             const std::string& data) {
  UserProfile profile(user_id);
  size_t pos = 0;
  if (data.size() < sizeof(uint32_t)) {
    return CorruptionError("profile record too short");
  }
  uint32_t count = 0;
  std::memcpy(&count, data.data(), sizeof(count));
  pos += sizeof(count);
  for (uint32_t i = 0; i < count; ++i) {
    std::string key;
    std::string value;
    if (!ReadLengthPrefixed(data, &pos, &key) || !ReadLengthPrefixed(data, &pos, &value)) {
      return CorruptionError("profile record truncated");
    }
    profile.Set(key, std::move(value));
  }
  return profile;
}

int64_t UserProfile::WireSize() const {
  int64_t size = static_cast<int64_t>(user_id_.size()) + 8;
  for (const auto& [key, value] : pairs_) {
    size += static_cast<int64_t>(key.size() + value.size()) + 8;
  }
  return size;
}

}  // namespace sns
