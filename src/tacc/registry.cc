#include "src/tacc/registry.h"

namespace sns {

void WorkerRegistry::Register(const std::string& type, Factory factory) {
  factories_[type] = std::move(factory);
}

TaccWorkerPtr WorkerRegistry::Create(const std::string& type) const {
  auto it = factories_.find(type);
  if (it == factories_.end()) {
    return nullptr;
  }
  return it->second();
}

std::vector<std::string> WorkerRegistry::Types() const {
  std::vector<std::string> types;
  types.reserve(factories_.size());
  for (const auto& [type, factory] : factories_) {
    types.push_back(type);
  }
  return types;
}

}  // namespace sns
