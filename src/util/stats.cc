#include "src/util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

namespace sns {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  double delta = other.mean_ - mean_;
  int64_t total = count_ + other.count_;
  double nb = static_cast<double>(other.count_);
  double na = static_cast<double>(count_);
  double nt = static_cast<double>(total);
  m2_ += other.m2_ + delta * delta * na * nb / nt;
  mean_ += delta * nb / nt;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ = total;
}

double RunningStats::variance() const {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

std::string RunningStats::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "n=%lld mean=%.3f min=%.3f max=%.3f sd=%.3f",
                static_cast<long long>(count_), mean(), min(), max(), stddev());
  return buf;
}

Histogram::Histogram(double lo, double hi, size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)), counts_(buckets, 0) {
  assert(hi > lo && buckets > 0);
}

void Histogram::Add(double x) {
  summary_.Add(x);
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto i = static_cast<size_t>((x - lo_) / width_);
  if (i >= counts_.size()) {
    i = counts_.size() - 1;  // Guard against floating-point edge at hi.
  }
  ++counts_[i];
}

double Histogram::Percentile(double p) const {
  if (total_ == 0) {
    return 0.0;
  }
  p = std::clamp(p, 0.0, 1.0);
  double target = p * static_cast<double>(total_);
  double acc = static_cast<double>(underflow_);
  if (target <= acc) {
    // The quantile falls inside the underflow bucket, whose true extent is
    // unknown; clamp to the histogram's lower bound.
    return lo_;
  }
  for (size_t i = 0; i < counts_.size(); ++i) {
    double next = acc + static_cast<double>(counts_[i]);
    if (target <= next && counts_[i] > 0) {
      double frac = (target - acc) / static_cast<double>(counts_[i]);
      return BucketLow(i) + frac * width_;
    }
    acc = next;
  }
  // Remaining mass is in the overflow bucket; clamp to the upper bound.
  return hi_;
}

double Histogram::Fraction(size_t i) const {
  return total_ > 0 ? static_cast<double>(counts_[i]) / static_cast<double>(total_) : 0.0;
}

LogHistogram::LogHistogram(double lo, double hi, size_t buckets_per_decade)
    : log_lo_(std::log10(lo)), log_step_(1.0 / static_cast<double>(buckets_per_decade)) {
  assert(lo > 0 && hi > lo && buckets_per_decade > 0);
  auto n = static_cast<size_t>(std::ceil((std::log10(hi) - log_lo_) / log_step_));
  counts_.assign(std::max<size_t>(n, 1), 0);
}

void LogHistogram::Add(double x) {
  summary_.Add(x);
  ++total_;
  if (x <= 0) {
    ++underflow_;
    return;
  }
  double pos = (std::log10(x) - log_lo_) / log_step_;
  if (pos < 0) {
    // A positive sample below the current bottom edge: extend the layout downward
    // by whole buckets so the sample keeps log-scale resolution. Inserting at the
    // front and lowering log_lo_ by the same number of steps leaves every existing
    // sample in its bucket and the top edge where it was.
    double need = std::ceil(-pos);
    if (need > static_cast<double>(kMaxBuckets) ||
        counts_.size() + static_cast<size_t>(need) > kMaxBuckets) {
      ++underflow_;
      return;
    }
    auto extra = static_cast<size_t>(need);
    counts_.insert(counts_.begin(), extra, 0);
    log_lo_ -= log_step_ * static_cast<double>(extra);
    pos = (std::log10(x) - log_lo_) / log_step_;
    if (pos < 0) {
      pos = 0;  // Guard against floating-point residue at the new bottom edge.
    }
  }
  auto i = static_cast<size_t>(pos);
  if (i >= counts_.size()) {
    ++overflow_;
    return;
  }
  ++counts_[i];
}

double LogHistogram::BucketLow(size_t i) const {
  return std::pow(10.0, log_lo_ + log_step_ * static_cast<double>(i));
}

double LogHistogram::Fraction(size_t i) const {
  return total_ > 0 ? static_cast<double>(counts_[i]) / static_cast<double>(total_) : 0.0;
}

double LogHistogram::Percentile(double p) const {
  if (total_ == 0) {
    return 0.0;
  }
  p = std::clamp(p, 0.0, 1.0);
  double target = p * static_cast<double>(total_);
  double acc = static_cast<double>(underflow_);
  if (target <= acc) {
    // Without this clamp an underflow-heavy distribution drives `frac` negative in
    // the first occupied bucket and the result lands below the histogram range.
    return BucketLow(0);
  }
  for (size_t i = 0; i < counts_.size(); ++i) {
    double next = acc + static_cast<double>(counts_[i]);
    if (target <= next && counts_[i] > 0) {
      double frac = (target - acc) / static_cast<double>(counts_[i]);
      double lo = BucketLow(i);
      return lo + frac * (BucketHigh(i) - lo);
    }
    acc = next;
  }
  // Remaining mass is in the overflow bucket; clamp to the upper bound.
  return BucketHigh(counts_.size() - 1);
}

void Ewma::Add(double x) {
  if (empty_) {
    value_ = x;
    empty_ = false;
  } else {
    value_ = alpha_ * x + (1.0 - alpha_) * value_;
  }
}

void Ewma::Reset() {
  value_ = 0.0;
  empty_ = true;
}

void WindowedStats::Add(double x) {
  window_.push_back(x);
  if (window_.size() > capacity_) {
    window_.pop_front();
  }
}

double WindowedStats::Mean() const {
  if (window_.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (double x : window_) {
    sum += x;
  }
  return sum / static_cast<double>(window_.size());
}

double WindowedStats::Max() const {
  if (window_.empty()) {
    return 0.0;
  }
  return *std::max_element(window_.begin(), window_.end());
}

void DeltaEstimator::Observe(double value, double time_s) {
  if (has_last_ && time_s > last_time_s_) {
    slope_per_s_ = (value - last_value_) / (time_s - last_time_s_);
    has_slope_ = true;
  }
  last_value_ = value;
  last_time_s_ = time_s;
  has_last_ = true;
}

double DeltaEstimator::Predict(double time_s) const {
  if (!has_last_) {
    return 0.0;
  }
  if (!has_slope_ || time_s <= last_time_s_) {
    return last_value_;
  }
  double predicted = last_value_ + slope_per_s_ * (time_s - last_time_s_);
  return predicted < 0.0 ? 0.0 : predicted;
}

}  // namespace sns
