#include "src/util/strings.h"

#include <cctype>
#include <cstdio>

namespace sns {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string StrJoin(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) {
      out += sep;
    }
    out += parts[i];
  }
  return out;
}

std::vector<std::string> StrSplit(const std::string& s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string HumanBytes(int64_t bytes) {
  double b = static_cast<double>(bytes);
  if (b < 1000.0) {
    return StrFormat("%lld B", static_cast<long long>(bytes));
  }
  if (b < 1000.0 * 1000.0) {
    return StrFormat("%.1f KB", b / 1000.0);
  }
  if (b < 1000.0 * 1000.0 * 1000.0) {
    return StrFormat("%.1f MB", b / 1e6);
  }
  return StrFormat("%.2f GB", b / 1e9);
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string AsciiLower(std::string s) {
  for (char& c : s) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return s;
}

uint64_t Fnv1a(const void* data, size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = 0xCBF29CE484222325ULL;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ULL;
  }
  return h;
}

uint64_t Fnv1a(const std::string& s) { return Fnv1a(s.data(), s.size()); }

}  // namespace sns
