#include "src/util/time.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>

namespace sns {

std::string FormatTime(SimTime t) {
  bool negative = t < 0;
  if (negative) {
    t = -t;
  }
  int64_t total_ms = t / kMillisecond;
  int64_t ms = total_ms % 1000;
  int64_t total_s = total_ms / 1000;
  int64_t s = total_s % 60;
  int64_t total_m = total_s / 60;
  int64_t m = total_m % 60;
  int64_t h = total_m / 60;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s%" PRId64 ":%02" PRId64 ":%02" PRId64 ".%03" PRId64,
                negative ? "-" : "", h, m, s, ms);
  return buf;
}

std::string FormatDuration(SimDuration d) {
  char buf[64];
  double abs_d = static_cast<double>(d < 0 ? -d : d);
  if (abs_d < static_cast<double>(kMicrosecond)) {
    std::snprintf(buf, sizeof(buf), "%" PRId64 "ns", d);
  } else if (abs_d < static_cast<double>(kMillisecond)) {
    std::snprintf(buf, sizeof(buf), "%.1fus", static_cast<double>(d) / kMicrosecond);
  } else if (abs_d < static_cast<double>(kSecond)) {
    std::snprintf(buf, sizeof(buf), "%.1fms", static_cast<double>(d) / kMillisecond);
  } else if (abs_d < static_cast<double>(kMinute)) {
    std::snprintf(buf, sizeof(buf), "%.2fs", static_cast<double>(d) / kSecond);
  } else if (abs_d < static_cast<double>(kHour)) {
    std::snprintf(buf, sizeof(buf), "%.1fmin", static_cast<double>(d) / kMinute);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fh", static_cast<double>(d) / kHour);
  }
  return buf;
}

}  // namespace sns
