#include "src/util/token_bucket.h"

#include <algorithm>
#include <cmath>

namespace sns {

TokenBucket::TokenBucket(double rate_per_s, double burst)
    : rate_per_s_(rate_per_s), burst_(burst), tokens_(burst) {}

void TokenBucket::Refill(SimTime now) {
  if (now <= last_refill_) {
    return;
  }
  double elapsed_s = ToSeconds(now - last_refill_);
  tokens_ = std::min(burst_, tokens_ + elapsed_s * rate_per_s_);
  last_refill_ = now;
}

bool TokenBucket::TryTake(SimTime now, double tokens) {
  Refill(now);
  if (tokens_ + 1e-12 >= tokens) {
    tokens_ -= tokens;
    return true;
  }
  return false;
}

SimTime TokenBucket::NextAvailable(SimTime now, double tokens) {
  Refill(now);
  if (tokens_ + 1e-12 >= tokens) {
    return now;
  }
  if (rate_per_s_ <= 0) {
    return kTimeNever;
  }
  double deficit = tokens - tokens_;
  return now + Seconds(deficit / rate_per_s_);
}

double TokenBucket::available(SimTime now) {
  Refill(now);
  return tokens_;
}

}  // namespace sns
