// Open-addressing hash map for integer keys on simulator hot paths.
//
// The SAN resolves a message handler on every single delivery; with
// std::unordered_map that lookup is a bucket-pointer chase per hop. FlatMap
// stores control+slots in one flat array with linear probing, so the common
// hit touches one or two cache lines. Deliberately minimal: integer keys only,
// no iterator stability across rehash, values must be movable. Iteration order
// is unspecified — callers needing deterministic order must sort (the SAN only
// iterates for shutdown-style bookkeeping, never on delivery paths).

#ifndef SRC_UTIL_FLAT_MAP_H_
#define SRC_UTIL_FLAT_MAP_H_

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

namespace sns {

template <typename K, typename V>
class FlatMap {
  static_assert(std::is_integral_v<K> && sizeof(K) <= 8,
                "FlatMap supports integer keys only");

 public:
  FlatMap() = default;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // Inserts or overwrites.
  void Set(K key, V value) {
    if ((size_ + tombstones_ + 1) * 4 >= capacity() * 3) Grow();
    size_t i = FindSlot(key);
    Slot& s = slots_[i];
    if (s.state == kFull) {
      s.value = std::move(value);
      return;
    }
    if (s.state == kTombstone) --tombstones_;
    s.state = kFull;
    s.key = key;
    s.value = std::move(value);
    ++size_;
  }

  V* Find(K key) {
    if (capacity() == 0) return nullptr;
    size_t mask = capacity() - 1;
    size_t i = Hash(key) & mask;
    while (true) {
      Slot& s = slots_[i];
      if (s.state == kEmpty) return nullptr;
      if (s.state == kFull && s.key == key) return &s.value;
      i = (i + 1) & mask;
    }
  }
  const V* Find(K key) const { return const_cast<FlatMap*>(this)->Find(key); }

  bool Erase(K key) {
    if (capacity() == 0) return false;
    size_t mask = capacity() - 1;
    size_t i = Hash(key) & mask;
    while (true) {
      Slot& s = slots_[i];
      if (s.state == kEmpty) return false;
      if (s.state == kFull && s.key == key) {
        s.state = kTombstone;
        s.value = V();
        --size_;
        ++tombstones_;
        return true;
      }
      i = (i + 1) & mask;
    }
  }

  // Erases every entry for which pred(key, value) is true; returns the count.
  template <typename Pred>
  size_t EraseIf(Pred pred) {
    size_t erased = 0;
    for (Slot& s : slots_) {
      if (s.state == kFull && pred(s.key, s.value)) {
        s.state = kTombstone;
        s.value = V();
        --size_;
        ++tombstones_;
        ++erased;
      }
    }
    return erased;
  }

  void Clear() {
    slots_.clear();
    size_ = 0;
    tombstones_ = 0;
  }

 private:
  enum State : uint8_t { kEmpty = 0, kTombstone, kFull };
  struct Slot {
    K key{};
    V value{};
    State state = kEmpty;
  };

  size_t capacity() const { return slots_.size(); }

  static size_t Hash(K key) {
    // splitmix64 finalizer: cheap, full-avalanche mixing for sequential ids.
    uint64_t x = static_cast<uint64_t>(key);
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ull;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBull;
    x ^= x >> 31;
    return static_cast<size_t>(x);
  }

  // First matching-or-insertable slot for `key` (prefers a tombstone on miss).
  size_t FindSlot(K key) const {
    size_t mask = capacity() - 1;
    size_t i = Hash(key) & mask;
    size_t first_tomb = SIZE_MAX;
    while (true) {
      const Slot& s = slots_[i];
      if (s.state == kFull && s.key == key) return i;
      if (s.state == kTombstone && first_tomb == SIZE_MAX) first_tomb = i;
      if (s.state == kEmpty) return first_tomb != SIZE_MAX ? first_tomb : i;
      i = (i + 1) & mask;
    }
  }

  void Grow() {
    size_t new_cap = capacity() == 0 ? 16 : capacity() * 2;
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_cap, Slot{});
    size_ = 0;
    tombstones_ = 0;
    for (Slot& s : old) {
      if (s.state == kFull) Set(s.key, std::move(s.value));
    }
  }

  std::vector<Slot> slots_;
  size_t size_ = 0;
  size_t tombstones_ = 0;
};

}  // namespace sns

#endif  // SRC_UTIL_FLAT_MAP_H_
