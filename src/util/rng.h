// Deterministic pseudo-random number generation and the distributions used by the
// workload models.
//
// Every stochastic element of the system (trace generation, lottery scheduling,
// failure injection, network jitter) draws from an explicitly seeded Rng so that runs
// are reproducible. The generator is xoshiro256**, seeded via splitmix64.

#ifndef SRC_UTIL_RNG_H_
#define SRC_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sns {

class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform random 64-bit value.
  uint64_t Next();

  // Uniform in [0, 1).
  double NextDouble();

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Uniform real in [lo, hi).
  double Uniform(double lo, double hi);

  // True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  // Exponential with the given mean (> 0).
  double Exponential(double mean);

  // Standard normal via Box-Muller (cached pair).
  double Normal(double mean, double stddev);

  // Poisson-distributed count with the given mean (Knuth for small means, normal
  // approximation above 60).
  int64_t Poisson(double mean);

  // Log-normal parameterized by the underlying normal's mu and sigma.
  double LogNormal(double mu, double sigma);

  // Bounded Pareto on [lo, hi) with shape alpha > 0. Heavy-tailed; used for
  // self-similar ON/OFF burst modeling.
  double BoundedPareto(double alpha, double lo, double hi);

  // Zipf-like rank selection over n items with skew s (s=0 is uniform). Returns a
  // rank in [0, n). Uses rejection-inversion; O(1) per draw after setup-free math.
  int64_t Zipf(int64_t n, double s);

  // Picks an index in [0, weights.size()) with probability proportional to weight.
  // Zero or negative weights are treated as zero. If all weights are zero, picks
  // uniformly. This is the primitive behind lottery scheduling.
  size_t WeightedIndex(const std::vector<double>& weights);

  // Derives an independent child generator; used to give each component its own
  // stream so adding draws in one place does not perturb another.
  Rng Fork();

 private:
  uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace sns

#endif  // SRC_UTIL_RNG_H_
