// Token bucket rate limiter over simulated time. Used by the playback engine's
// constant-rate mode and by per-link pacing experiments.

#ifndef SRC_UTIL_TOKEN_BUCKET_H_
#define SRC_UTIL_TOKEN_BUCKET_H_

#include "src/util/time.h"

namespace sns {

class TokenBucket {
 public:
  // rate_per_s tokens accrue per simulated second, up to `burst` stored tokens.
  TokenBucket(double rate_per_s, double burst);

  // Attempts to take `tokens` at time `now`; returns true on success.
  bool TryTake(SimTime now, double tokens = 1.0);

  // Earliest time at which `tokens` would be available (>= now).
  SimTime NextAvailable(SimTime now, double tokens = 1.0);

  void set_rate(double rate_per_s) { rate_per_s_ = rate_per_s; }
  double rate() const { return rate_per_s_; }
  double available(SimTime now);

 private:
  void Refill(SimTime now);

  double rate_per_s_;
  double burst_;
  double tokens_;
  SimTime last_refill_ = 0;
};

}  // namespace sns

#endif  // SRC_UTIL_TOKEN_BUCKET_H_
