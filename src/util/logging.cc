#include "src/util/logging.h"

#include <cstdio>

namespace sns {

Logger& Logger::Get() {
  static Logger instance;
  return instance;
}

void Logger::Write(LogLevel level, const char* component, const std::string& message) {
  const char* tag = "?";
  switch (level) {
    case LogLevel::kDebug:
      tag = "D";
      break;
    case LogLevel::kInfo:
      tag = "I";
      break;
    case LogLevel::kWarning:
      tag = "W";
      break;
    case LogLevel::kError:
      tag = "E";
      break;
    case LogLevel::kNone:
      return;
  }
  std::string line;
  if (time_source_) {
    line += "[" + FormatTime(time_source_()) + "] ";
  }
  line += tag;
  line += " ";
  line += component;
  line += ": ";
  line += message;
  if (sink_) {
    sink_(line);
  } else {
    std::fprintf(stderr, "%s\n", line.c_str());
  }
}

}  // namespace sns
