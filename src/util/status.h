// Exception-free error handling: Status and Result<T>.
//
// The library is built with the convention that fallible operations return a Status
// (for side-effecting calls) or a Result<T> (for value-producing calls). This mirrors
// the paper's BASE philosophy at the code level: callers are expected to handle
// partial failure as a normal outcome, not an exceptional one.

#ifndef SRC_UTIL_STATUS_H_
#define SRC_UTIL_STATUS_H_

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace sns {

enum class StatusCode {
  kOk = 0,
  kNotFound,        // Key, worker, or node absent.
  kUnavailable,     // Transient failure: peer down, link saturated; retry may succeed.
  kTimeout,         // Deadline expired (the paper's backstop failure detector).
  kInvalidArgument, // Caller error.
  kResourceExhausted,  // Queue full, cache full, no free nodes.
  kFailedPrecondition, // Operation illegal in current state.
  kCorruption,      // Stored or transmitted data failed validation.
  kInternal,        // Bug.
};

// Human-readable name of a status code ("kOk" -> "OK").
const char* StatusCodeName(StatusCode code);

// A cheap, copyable success/error value with an optional message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "TIMEOUT: manager beacon lost".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

Status NotFoundError(std::string message);
Status UnavailableError(std::string message);
Status TimeoutError(std::string message);
Status InvalidArgumentError(std::string message);
Status ResourceExhaustedError(std::string message);
Status FailedPreconditionError(std::string message);
Status CorruptionError(std::string message);
Status InternalError(std::string message);

// Result<T> holds either a T or a non-OK Status.
template <typename T>
class Result {
 public:
  // Intentionally implicit so `return value;` and `return SomeError(...);` both work.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : value_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    assert(!std::get<Status>(value_).ok() && "Result<T> must not hold an OK status");
  }

  bool ok() const { return std::holds_alternative<T>(value_); }

  const Status& status() const {
    static const Status kOkStatus;
    return ok() ? kOkStatus : std::get<Status>(value_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(value_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(value_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(value_));
  }

  const T& value_or(const T& fallback) const {
    return ok() ? std::get<T>(value_) : fallback;
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> value_;
};

}  // namespace sns

#endif  // SRC_UTIL_STATUS_H_
