#include "src/util/rng.h"

#include <cassert>
#include <cmath>

namespace sns {

namespace {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) {
    s = SplitMix64(sm);
  }
}

uint64_t Rng::Next() {
  // xoshiro256**
  uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) {
    return static_cast<int64_t>(Next());  // Full 64-bit range.
  }
  // Debiased modulo via rejection.
  uint64_t threshold = (-range) % range;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) {
      return lo + static_cast<int64_t>(r % range);
    }
  }
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

double Rng::Exponential(double mean) {
  assert(mean > 0);
  double u = NextDouble();
  // Avoid log(0).
  if (u <= 0.0) {
    u = 0x1.0p-53;
  }
  return -mean * std::log(u);
}

double Rng::Normal(double mean, double stddev) {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 <= 0.0) {
    u1 = 0x1.0p-53;
  }
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

double Rng::LogNormal(double mu, double sigma) { return std::exp(Normal(mu, sigma)); }

int64_t Rng::Poisson(double mean) {
  if (mean <= 0) {
    return 0;
  }
  if (mean > 60.0) {
    double v = Normal(mean, std::sqrt(mean));
    return v < 0 ? 0 : static_cast<int64_t>(v + 0.5);
  }
  double limit = std::exp(-mean);
  double product = NextDouble();
  int64_t count = 0;
  while (product > limit) {
    ++count;
    product *= NextDouble();
  }
  return count;
}

double Rng::BoundedPareto(double alpha, double lo, double hi) {
  assert(alpha > 0 && lo > 0 && hi > lo);
  double u = NextDouble();
  double la = std::pow(lo, alpha);
  double ha = std::pow(hi, alpha);
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
}

int64_t Rng::Zipf(int64_t n, double s) {
  assert(n > 0);
  if (n == 1) {
    return 0;
  }
  if (s <= 0.0) {
    return UniformInt(0, n - 1);
  }
  // Inverse-CDF approximation of the continuous Zipf envelope with rejection.
  // For s != 1: H(x) = (x^(1-s) - 1) / (1 - s).
  double one_minus_s = 1.0 - s;
  auto h = [&](double x) {
    if (std::abs(one_minus_s) < 1e-9) {
      return std::log(x);
    }
    return (std::pow(x, one_minus_s) - 1.0) / one_minus_s;
  };
  auto h_inv = [&](double y) {
    if (std::abs(one_minus_s) < 1e-9) {
      return std::exp(y);
    }
    return std::pow(1.0 + y * one_minus_s, 1.0 / one_minus_s);
  };
  double hn = h(static_cast<double>(n) + 0.5);
  double h1 = h(1.5) - 1.0;
  for (;;) {
    double u = h1 + NextDouble() * (hn - h1);
    double x = h_inv(u);
    int64_t k = static_cast<int64_t>(x + 0.5);
    if (k < 1) {
      k = 1;
    }
    if (k > n) {
      k = n;
    }
    double ratio = std::pow(static_cast<double>(k), -s) /
                   std::pow(static_cast<double>(k) + 0.5, -s) * 0.5;
    // Accept with probability proportional to the true mass vs envelope; the simple
    // acceptance below is adequate for workload synthesis (bias < 2% for s <= 2).
    if (NextDouble() < std::min(1.0, ratio)) {
      return k - 1;
    }
  }
}

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  assert(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    if (w > 0) {
      total += w;
    }
  }
  if (total <= 0.0) {
    return static_cast<size_t>(UniformInt(0, static_cast<int64_t>(weights.size()) - 1));
  }
  double ticket = NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] > 0) {
      acc += weights[i];
      if (ticket < acc) {
        return i;
      }
    }
  }
  return weights.size() - 1;
}

Rng Rng::Fork() { return Rng(Next() ^ 0xD1B54A32D192ED03ULL); }

}  // namespace sns
