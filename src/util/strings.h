// Small string utilities (printf-style formatting, joining, human-readable sizes).

#ifndef SRC_UTIL_STRINGS_H_
#define SRC_UTIL_STRINGS_H_

#include <cstdarg>
#include <cstdint>
#include <string>
#include <vector>

namespace sns {

// printf into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// Joins elements with a separator.
std::string StrJoin(const std::vector<std::string>& parts, const std::string& sep);

// Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string> StrSplit(const std::string& s, char delim);

// "12.3 KB", "4.0 MB" — bytes rendered with a binary-ish 1000 divisor to match the
// paper's usage (it quotes KB as 1000s).
std::string HumanBytes(int64_t bytes);

// True if `s` begins with / ends with the given affix.
bool StartsWith(const std::string& s, const std::string& prefix);
bool EndsWith(const std::string& s, const std::string& suffix);

// Lowercases ASCII in place and returns the result.
std::string AsciiLower(std::string s);

// FNV-1a 64-bit hash of a byte string; stable across platforms, used for cache keys
// and consistent hashing.
uint64_t Fnv1a(const std::string& s);
uint64_t Fnv1a(const void* data, size_t len);

}  // namespace sns

#endif  // SRC_UTIL_STRINGS_H_
