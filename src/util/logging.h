// Minimal leveled logging with an injectable simulated-time source.
//
// Components log against the simulation clock, matching how the paper's monitor
// timestamps component reports. Logging defaults to warnings-and-up so tests and
// benchmarks stay quiet; examples turn on info-level narration.

#ifndef SRC_UTIL_LOGGING_H_
#define SRC_UTIL_LOGGING_H_

#include <functional>
#include <sstream>
#include <string>

#include "src/util/time.h"

namespace sns {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kNone = 4 };

class Logger {
 public:
  static Logger& Get();

  void set_min_level(LogLevel level) { min_level_ = level; }
  LogLevel min_level() const { return min_level_; }

  // The simulator installs a clock callback so log lines carry sim time.
  void set_time_source(std::function<SimTime()> source) { time_source_ = std::move(source); }
  void clear_time_source() { time_source_ = nullptr; }

  // Redirect output (tests capture it); defaults to stderr.
  void set_sink(std::function<void(const std::string&)> sink) { sink_ = std::move(sink); }
  void clear_sink() { sink_ = nullptr; }

  bool Enabled(LogLevel level) const { return level >= min_level_; }
  void Write(LogLevel level, const char* component, const std::string& message);

 private:
  Logger() = default;
  LogLevel min_level_ = LogLevel::kWarning;
  std::function<SimTime()> time_source_;
  std::function<void(const std::string&)> sink_;
};

// Stream-style helper: SNS_LOG(kInfo, "manager") << "spawned distiller " << id;
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* component) : level_(level), component_(component) {}
  ~LogMessage() {
    if (Logger::Get().Enabled(level_)) {
      Logger::Get().Write(level_, component_, stream_.str());
    }
  }
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (Logger::Get().Enabled(level_)) {
      stream_ << value;
    }
    return *this;
  }

 private:
  LogLevel level_;
  const char* component_;
  std::ostringstream stream_;
};

#define SNS_LOG(level, component) ::sns::LogMessage(::sns::LogLevel::level, component)

}  // namespace sns

#endif  // SRC_UTIL_LOGGING_H_
