// Statistics accumulators: running summaries, histograms, and moving averages.
//
// The manager's load-balancing policy (paper §3.1.2) relies on weighted moving
// averages of worker queue lengths; the evaluation section reports means, peaks, and
// percentile distributions. These small types back all of that.

#ifndef SRC_UTIL_STATS_H_
#define SRC_UTIL_STATS_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

namespace sns {

// Streaming summary: count / mean / min / max / stddev in O(1) space (Welford).
class RunningStats {
 public:
  void Add(double x);
  void Merge(const RunningStats& other);

  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double variance() const;
  double stddev() const;
  double sum() const { return mean_ * static_cast<double>(count_); }

  std::string ToString() const;

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Histogram over fixed-width linear buckets; tracks out-of-range values in
// underflow/overflow buckets and supports percentile queries.
class Histogram {
 public:
  // Buckets cover [lo, hi) split into `buckets` equal cells.
  Histogram(double lo, double hi, size_t buckets);

  void Add(double x);
  int64_t TotalCount() const { return total_; }

  // Approximate p-quantile (p in [0,1]) by linear interpolation within the bucket.
  double Percentile(double p) const;

  double lo() const { return lo_; }
  double hi() const { return hi_; }
  size_t bucket_count() const { return counts_.size(); }
  int64_t bucket(size_t i) const { return counts_[i]; }
  double BucketLow(size_t i) const { return lo_ + width_ * static_cast<double>(i); }

  // Fraction of samples in bucket i.
  double Fraction(size_t i) const;

  const RunningStats& summary() const { return summary_; }

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<int64_t> counts_;
  int64_t underflow_ = 0;
  int64_t overflow_ = 0;
  int64_t total_ = 0;
  RunningStats summary_;
};

// Histogram with logarithmically spaced buckets, natural for content sizes that span
// 10 B .. 1 MB (paper Fig. 5 uses a log-scaled x axis).
//
// The configured [lo, hi) is a starting layout, not a hard floor: positive samples
// below `lo` grow the bucket vector downward (up to kMaxBuckets total) so that
// sub-range values — e.g. sub-millisecond SAN transit times in a seconds-scaled
// histogram — keep real resolution instead of collapsing into one underflow bucket
// where every quantile degenerates to the same value. Only non-positive samples
// (which have no logarithm) land in underflow.
class LogHistogram {
 public:
  // Total bucket cap; a positive sample so small that honoring it would exceed the
  // cap is counted as underflow instead of allocating unbounded memory.
  static constexpr size_t kMaxBuckets = 512;

  // Buckets per decade controls resolution; range [lo, hi) with lo > 0.
  LogHistogram(double lo, double hi, size_t buckets_per_decade);

  void Add(double x);
  int64_t TotalCount() const { return total_; }
  size_t bucket_count() const { return counts_.size(); }
  int64_t bucket(size_t i) const { return counts_[i]; }
  double BucketLow(size_t i) const;
  double BucketHigh(size_t i) const { return BucketLow(i + 1); }
  double Fraction(size_t i) const;
  double Percentile(double p) const;
  const RunningStats& summary() const { return summary_; }

 private:
  double log_lo_;
  double log_step_;
  std::vector<int64_t> counts_;
  int64_t underflow_ = 0;
  int64_t overflow_ = 0;
  int64_t total_ = 0;
  RunningStats summary_;
};

// Exponentially weighted moving average. The manager aggregates distiller load
// reports into an EWMA before broadcasting hints (paper §3.1.2).
class Ewma {
 public:
  // alpha in (0, 1]: weight of the newest observation.
  explicit Ewma(double alpha) : alpha_(alpha) {}

  void Add(double x);
  double value() const { return value_; }
  bool empty() const { return empty_; }
  void Reset();

 private:
  double alpha_;
  double value_ = 0.0;
  bool empty_ = true;
};

// Fixed-size sliding window average / max, used for rate measurements over buckets.
class WindowedStats {
 public:
  explicit WindowedStats(size_t capacity) : capacity_(capacity) {}

  void Add(double x);
  double Mean() const;
  double Max() const;
  size_t size() const { return window_.size(); }
  bool full() const { return window_.size() == capacity_; }

 private:
  size_t capacity_;
  std::deque<double> window_;
};

// Estimates the first-order rate of change of a series from successive samples;
// used by the manager stub to extrapolate stale queue-length reports between
// beacons (the fix for the oscillation described in paper §4.5).
class DeltaEstimator {
 public:
  // Records an observation at the given time; returns nothing.
  void Observe(double value, double time_s);

  // Predicted value at `time_s` by linear extrapolation from the last observation.
  // Falls back to the raw last value if fewer than two observations exist.
  double Predict(double time_s) const;

  double last_value() const { return last_value_; }
  double slope_per_s() const { return slope_per_s_; }

 private:
  bool has_last_ = false;
  bool has_slope_ = false;
  double last_value_ = 0.0;
  double last_time_s_ = 0.0;
  double slope_per_s_ = 0.0;
};

}  // namespace sns

#endif  // SRC_UTIL_STATS_H_
