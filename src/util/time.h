// Simulated-time representation used throughout the library.
//
// All timing in the system flows from the discrete-event simulator, never from the
// wall clock, so results are bit-for-bit reproducible. Time is an integer count of
// nanoseconds to avoid floating-point drift in long runs.

#ifndef SRC_UTIL_TIME_H_
#define SRC_UTIL_TIME_H_

#include <cstdint>
#include <string>

namespace sns {

// A point in simulated time, in nanoseconds since simulation start.
using SimTime = int64_t;

// A span of simulated time, in nanoseconds.
using SimDuration = int64_t;

constexpr SimDuration kNanosecond = 1;
constexpr SimDuration kMicrosecond = 1000 * kNanosecond;
constexpr SimDuration kMillisecond = 1000 * kMicrosecond;
constexpr SimDuration kSecond = 1000 * kMillisecond;
constexpr SimDuration kMinute = 60 * kSecond;
constexpr SimDuration kHour = 60 * kMinute;

constexpr SimTime kTimeNever = INT64_MAX;

constexpr SimDuration Nanoseconds(int64_t n) { return n; }
constexpr SimDuration Microseconds(int64_t n) { return n * kMicrosecond; }
constexpr SimDuration Milliseconds(double n) {
  return static_cast<SimDuration>(n * static_cast<double>(kMillisecond));
}
constexpr SimDuration Seconds(double n) {
  return static_cast<SimDuration>(n * static_cast<double>(kSecond));
}
constexpr SimDuration Minutes(double n) {
  return static_cast<SimDuration>(n * static_cast<double>(kMinute));
}
constexpr SimDuration Hours(double n) {
  return static_cast<SimDuration>(n * static_cast<double>(kHour));
}

constexpr double ToSeconds(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}
constexpr double ToMilliseconds(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kMillisecond);
}

// Renders a time as "H:MM:SS.mmm" for logs and monitor output.
std::string FormatTime(SimTime t);

// Renders a duration compactly, picking an appropriate unit ("17ms", "2.5s").
std::string FormatDuration(SimDuration d);

}  // namespace sns

#endif  // SRC_UTIL_TIME_H_
