#include "src/util/status.h"

namespace sns {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kTimeout:
      return "TIMEOUT";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kCorruption:
      return "CORRUPTION";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

Status NotFoundError(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
Status UnavailableError(std::string message) {
  return Status(StatusCode::kUnavailable, std::move(message));
}
Status TimeoutError(std::string message) {
  return Status(StatusCode::kTimeout, std::move(message));
}
Status InvalidArgumentError(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
Status ResourceExhaustedError(std::string message) {
  return Status(StatusCode::kResourceExhausted, std::move(message));
}
Status FailedPreconditionError(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
Status CorruptionError(std::string message) {
  return Status(StatusCode::kCorruption, std::move(message));
}
Status InternalError(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}

}  // namespace sns
