#include "src/services/extras/metasearch.h"

#include <algorithm>
#include <set>

#include "src/util/strings.h"

namespace sns {

std::vector<MetasearchResult> SimulateEngine(const std::string& engine,
                                             const std::string& query, int k) {
  std::vector<MetasearchResult> results;
  uint64_t h = Fnv1a(engine + "|" + query);
  for (int rank = 1; rank <= k; ++rank) {
    h = h * 6364136223846793005ULL + 1442695040888963407ULL;
    MetasearchResult r;
    r.engine = engine;
    r.rank = rank;
    // Overlapping result space across engines (mod 1000) so deduplication matters.
    r.url = StrFormat("http://result%llu.example.com/page",
                      static_cast<unsigned long long>(h % 1000));
    r.title = StrFormat("%s result %d for '%s'", engine.c_str(), rank, query.c_str());
    results.push_back(std::move(r));
  }
  return results;
}

std::vector<MetasearchResult> CollateResults(
    const std::vector<std::vector<MetasearchResult>>& per_engine, int k) {
  std::vector<MetasearchResult> collated;
  std::set<std::string> seen;
  size_t max_len = 0;
  for (const auto& list : per_engine) {
    max_len = std::max(max_len, list.size());
  }
  // Interleave by rank: rank-1 answers from every engine first, then rank-2, ...
  for (size_t rank = 0; rank < max_len && collated.size() < static_cast<size_t>(k); ++rank) {
    for (const auto& list : per_engine) {
      if (rank < list.size() && seen.insert(list[rank].url).second) {
        collated.push_back(list[rank]);
        if (collated.size() >= static_cast<size_t>(k)) {
          break;
        }
      }
    }
  }
  return collated;
}

TaccResult MetasearchWorker::Process(const TaccRequest& request) {
  std::string query = request.ArgOr(kArgSearchString, "");
  if (query.empty()) {
    return TaccResult::Fail(InvalidArgumentError("metasearch: empty query"));
  }
  std::string engines = request.ArgOr(kArgEngines, "altavista,excite,infoseek");
  int k = static_cast<int>(request.ArgIntOr("k", 10));
  std::vector<std::vector<MetasearchResult>> per_engine;
  for (const std::string& engine : StrSplit(engines, ',')) {
    if (!engine.empty()) {
      per_engine.push_back(SimulateEngine(engine, query, k));
    }
  }
  std::vector<MetasearchResult> collated = CollateResults(per_engine, k);
  std::string page = "<html><body><h1>Metasearch: " + query + "</h1><ol>\n";
  for (const MetasearchResult& r : collated) {
    page += StrFormat("<li><a href=\"%s\">%s</a> <i>(%s)</i></li>\n", r.url.c_str(),
                      r.title.c_str(), r.engine.c_str());
  }
  page += "</ol></body></html>\n";
  std::vector<uint8_t> bytes(page.begin(), page.end());
  return TaccResult::Ok(Content::Make(request.url, MimeType::kHtml, std::move(bytes)));
}

SimDuration MetasearchWorker::EstimateCost(const TaccRequest& request) const {
  // Dominated by the (simulated) WAN queries to the underlying engines.
  int engines = 1;
  for (char c : request.ArgOr(kArgEngines, "a,b,c")) {
    if (c == ',') {
      ++engines;
    }
  }
  return Milliseconds(40) * engines;
}

}  // namespace sns
