// The TranSend metasearch aggregator (paper §5.1).
//
// "an aggregator accepts a search string from a user, queries a number of popular
// search engines, and collates the top results from each into a single result
// page... implemented using 3 pages of Perl code in roughly 2.5 hours, and inherits
// scalability, fault tolerance, and high availability from the SNS layer."
//
// The "popular search engines" are simulated: each engine produces a deterministic
// ranked result list from the query (as if fetched over the WAN); the aggregator's
// real work — deduplicating and interleaving results by rank — is genuine.

#ifndef SRC_SERVICES_EXTRAS_METASEARCH_H_
#define SRC_SERVICES_EXTRAS_METASEARCH_H_

#include <string>
#include <vector>

#include "src/tacc/worker.h"

namespace sns {

inline constexpr char kMetasearchType[] = "metasearch";
inline constexpr char kArgSearchString[] = "q";
inline constexpr char kArgEngines[] = "engines";

struct MetasearchResult {
  std::string engine;
  std::string url;
  std::string title;
  int rank = 0;
};

// One simulated engine's top-`k` answers for `query`.
std::vector<MetasearchResult> SimulateEngine(const std::string& engine,
                                             const std::string& query, int k);

// Interleaves per-engine lists by rank, dropping duplicate URLs (first engine wins).
std::vector<MetasearchResult> CollateResults(
    const std::vector<std::vector<MetasearchResult>>& per_engine, int k);

class MetasearchWorker : public TaccWorker {
 public:
  std::string type() const override { return kMetasearchType; }
  TaccResult Process(const TaccRequest& request) override;
  SimDuration EstimateCost(const TaccRequest& request) const override;
};

}  // namespace sns

#endif  // SRC_SERVICES_EXTRAS_METASEARCH_H_
