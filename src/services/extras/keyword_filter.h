// The keyword-filter aggregator (paper §5.1).
//
// "The keyword filter aggregator is very simple (about 10 lines of Perl). It allows
// users to specify a [pattern] as customization preference... A simple example
// filter marks all occurrences of the chosen keywords with large, bold, red
// typeface." Keywords come from the user profile (key "keywords", comma-separated)
// or the per-request arg of the same name.

#ifndef SRC_SERVICES_EXTRAS_KEYWORD_FILTER_H_
#define SRC_SERVICES_EXTRAS_KEYWORD_FILTER_H_

#include <string>

#include "src/tacc/worker.h"

namespace sns {

inline constexpr char kKeywordFilterType[] = "filter-keywords";
inline constexpr char kArgKeywords[] = "keywords";

class KeywordFilterWorker : public TaccWorker {
 public:
  std::string type() const override { return kKeywordFilterType; }
  TaccResult Process(const TaccRequest& request) override;
  SimDuration EstimateCost(const TaccRequest& request) const override;
};

}  // namespace sns

#endif  // SRC_SERVICES_EXTRAS_KEYWORD_FILTER_H_
