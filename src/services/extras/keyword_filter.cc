#include "src/services/extras/keyword_filter.h"

#include "src/content/html.h"
#include "src/util/strings.h"

namespace sns {

TaccResult KeywordFilterWorker::Process(const TaccRequest& request) {
  if (request.inputs.empty() || request.input() == nullptr) {
    return TaccResult::Fail(InvalidArgumentError("filter-keywords: no input"));
  }
  std::string keywords = request.ArgOr(kArgKeywords, request.profile.GetOr(kArgKeywords, ""));
  std::string html(request.input()->bytes.begin(), request.input()->bytes.end());
  for (const std::string& keyword : StrSplit(keywords, ',')) {
    if (!keyword.empty()) {
      html = HighlightKeyword(html, keyword, "<b><font color=\"red\" size=\"+1\">",
                              "</font></b>");
    }
  }
  std::vector<uint8_t> bytes(html.begin(), html.end());
  return TaccResult::Ok(Content::Make(request.url, MimeType::kHtml, std::move(bytes)));
}

SimDuration KeywordFilterWorker::EstimateCost(const TaccRequest& request) const {
  return Milliseconds(0.5) + static_cast<SimDuration>(
                                 static_cast<double>(Milliseconds(0.3)) *
                                 (static_cast<double>(request.TotalInputBytes()) / 1024.0));
}

}  // namespace sns
