// The Bay Area Culture Page aggregator (paper §5.1).
//
// "This service retrieves scheduling information from a number of cultural pages on
// the web, and collates the results into a single, comprehensive calendar of
// upcoming events... extremely general, layout-independent heuristics are used to
// extract scheduling information from the cultural pages. About 10-20% of the time,
// the heuristics spuriously pick up non-date text..., but the service is still
// useful and users simply ignore spurious results" — approximate answers at the
// application layer.
//
// The worker is an N-input aggregator: its inputs are the fetched cultural pages;
// it strips tags, scans sentences for date-like patterns (month names, d/m forms),
// filters by the user's date window, and renders a calendar page.

#ifndef SRC_SERVICES_EXTRAS_CULTURE_PAGE_H_
#define SRC_SERVICES_EXTRAS_CULTURE_PAGE_H_

#include <string>
#include <vector>

#include "src/tacc/worker.h"
#include "src/util/rng.h"

namespace sns {

inline constexpr char kCulturePageType[] = "culture-page";

struct ExtractedEvent {
  int month = 0;  // 1..12; 0 when the heuristic misfired on non-date text.
  int day = 0;
  std::string description;
  bool spurious = false;  // Ground truth for tests; a real service wouldn't know.
};

// Heuristic date extraction from plain text. Sentences containing a month name or
// a d/m numeric form become events; the heuristics are deliberately loose and also
// match things like "may concerns" (the paper's 10-20% spurious pickups).
std::vector<ExtractedEvent> ExtractEvents(const std::string& text);

// Generates a synthetic cultural page with `events` real listings plus prose that
// the loose heuristics can spuriously match.
std::string GenerateCulturePage(Rng* rng, const std::string& venue, int events);

class CulturePageWorker : public TaccWorker {
 public:
  std::string type() const override { return kCulturePageType; }
  TaccResult Process(const TaccRequest& request) override;
  SimDuration EstimateCost(const TaccRequest& request) const override;
};

}  // namespace sns

#endif  // SRC_SERVICES_EXTRAS_CULTURE_PAGE_H_
