#include "src/services/extras/palm_transform.h"

#include <cctype>

#include "src/content/html.h"
#include "src/util/strings.h"

namespace sns {

std::string SpoonFeed(const std::string& html, int cols, int rows) {
  if (cols < 8) {
    cols = 8;
  }
  if (rows < 2) {
    rows = 2;
  }
  // Replace images with placeholders before stripping tags.
  std::string marked;
  marked.reserve(html.size());
  size_t cursor = 0;
  int image_index = 0;
  for (const HtmlTag& tag : ScanTags(html)) {
    if (tag.name == "img") {
      marked.append(html, cursor, tag.begin - cursor);
      marked += StrFormat(" [IMG %d] ", ++image_index);
      cursor = tag.end;
    }
  }
  marked.append(html, cursor, html.size() - cursor);

  std::string text = StripTags(marked);
  // Collapse whitespace into single spaces.
  std::string collapsed;
  bool in_space = true;
  for (char c : text) {
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      if (!in_space) {
        collapsed += ' ';
        in_space = true;
      }
    } else {
      collapsed += c;
      in_space = false;
    }
  }

  // Greedy word wrap to `cols`, page break every `rows` lines.
  std::string out;
  int line_len = 0;
  int line_count = 0;
  for (const std::string& word : StrSplit(collapsed, ' ')) {
    if (word.empty()) {
      continue;
    }
    int needed = static_cast<int>(word.size()) + (line_len > 0 ? 1 : 0);
    if (line_len + needed > cols && line_len > 0) {
      out += '\n';
      line_len = 0;
      if (++line_count % rows == 0) {
        out += '\f';  // Page break.
      }
    }
    if (line_len > 0) {
      out += ' ';
      ++line_len;
    }
    // Hard-break words longer than the device width.
    std::string w = word;
    while (static_cast<int>(w.size()) > cols) {
      out += w.substr(0, static_cast<size_t>(cols - line_len));
      w = w.substr(static_cast<size_t>(cols - line_len));
      out += '\n';
      line_len = 0;
      if (++line_count % rows == 0) {
        out += '\f';
      }
    }
    out += w;
    line_len += static_cast<int>(w.size());
  }
  return out;
}

TaccResult PalmTransformWorker::Process(const TaccRequest& request) {
  if (request.inputs.empty() || request.input() == nullptr) {
    return TaccResult::Fail(InvalidArgumentError("palm-transform: no input"));
  }
  int cols = static_cast<int>(
      request.ArgIntOr(kArgColumns, request.profile.GetIntOr("palm_cols", 40)));
  int rows = static_cast<int>(
      request.ArgIntOr(kArgRows, request.profile.GetIntOr("palm_rows", 12)));
  std::string html(request.input()->bytes.begin(), request.input()->bytes.end());
  std::string spoon = SpoonFeed(html, cols, rows);
  std::vector<uint8_t> bytes(spoon.begin(), spoon.end());
  return TaccResult::Ok(Content::Make(request.url, MimeType::kOther, std::move(bytes)));
}

SimDuration PalmTransformWorker::EstimateCost(const TaccRequest& request) const {
  return Milliseconds(1) + static_cast<SimDuration>(
                               static_cast<double>(Milliseconds(1.2)) *
                               (static_cast<double>(request.TotalInputBytes()) / 1024.0));
}

}  // namespace sns
