// The PalmPilot thin-client transformer (paper §5.1).
//
// "We have built TranSend workers that output simplified markup and scaled-down
// images ready to be 'spoon fed' to an extremely simple browser client, given
// knowledge of the client's screen dimensions and font metrics. This greatly
// simplifies client-side code since no HTML parsing, layout, or image processing is
// necessary."
//
// The worker performs real layout: it parses HTML, strips markup, wraps text to the
// device's column width, paginates to the device's row count, and replaces inline
// images with compact placeholders — emitting a line-oriented "SPOON" format a
// dumb client can render byte-for-byte.

#ifndef SRC_SERVICES_EXTRAS_PALM_TRANSFORM_H_
#define SRC_SERVICES_EXTRAS_PALM_TRANSFORM_H_

#include <string>

#include "src/tacc/worker.h"

namespace sns {

inline constexpr char kPalmTransformType[] = "palm-transform";
inline constexpr char kArgColumns[] = "cols";  // Device text columns (default 40).
inline constexpr char kArgRows[] = "rows";     // Rows per page (default 12).

// Converts HTML into paginated SPOON text: lines are exactly <= cols characters,
// pages separated by "\f", images rendered as "[IMG n]" placeholders.
std::string SpoonFeed(const std::string& html, int cols, int rows);

class PalmTransformWorker : public TaccWorker {
 public:
  std::string type() const override { return kPalmTransformType; }
  TaccResult Process(const TaccRequest& request) override;
  SimDuration EstimateCost(const TaccRequest& request) const override;
};

}  // namespace sns

#endif  // SRC_SERVICES_EXTRAS_PALM_TRANSFORM_H_
