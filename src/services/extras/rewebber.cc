#include "src/services/extras/rewebber.h"

#include "src/util/strings.h"

namespace sns {

std::vector<uint8_t> XorKeystream(const std::vector<uint8_t>& data, const std::string& key) {
  std::vector<uint8_t> out(data.size());
  uint64_t state = Fnv1a(key) | 1;
  for (size_t i = 0; i < data.size(); ++i) {
    // xorshift64* keystream.
    state ^= state >> 12;
    state ^= state << 25;
    state ^= state >> 27;
    out[i] = data[i] ^ static_cast<uint8_t>((state * 0x2545F4914F6CDD1DULL) >> 56);
  }
  return out;
}

TaccResult RewebberWorker::Process(const TaccRequest& request) {
  if (request.inputs.empty() || request.input() == nullptr) {
    return TaccResult::Fail(InvalidArgumentError("rewebber: no input"));
  }
  std::string key = request.ArgOr(kArgKey, request.profile.GetOr(kArgKey, "default-hop-key"));
  std::vector<uint8_t> transformed = XorKeystream(request.input()->bytes, key);
  // Encrypted payloads are opaque; decrypted ones regain the original type.
  MimeType mime = encrypt_ ? MimeType::kOther : request.input()->mime;
  return TaccResult::Ok(Content::Make(request.url, mime, std::move(transformed)));
}

SimDuration RewebberWorker::EstimateCost(const TaccRequest& request) const {
  // "Computationally intensive": modeled on late-90s public-key + stream crypto.
  return Milliseconds(8) + static_cast<SimDuration>(
                               static_cast<double>(Milliseconds(2)) *
                               (static_cast<double>(request.TotalInputBytes()) / 1024.0));
}

}  // namespace sns
