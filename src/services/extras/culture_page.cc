#include "src/services/extras/culture_page.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

#include "src/content/html.h"
#include "src/util/strings.h"

namespace sns {

namespace {

const char* const kMonths[] = {"january", "february", "march",     "april",   "may",
                               "june",    "july",     "august",    "september", "october",
                               "november", "december"};

int MonthOf(const std::string& word) {
  std::string lower = AsciiLower(word);
  for (int i = 0; i < 12; ++i) {
    if (lower == kMonths[i]) {
      return i + 1;
    }
  }
  return 0;
}

// Splits text into rough "sentences" on period/newline/semicolon.
std::vector<std::string> Sentences(const std::string& text) {
  std::vector<std::string> out;
  std::string current;
  for (char c : text) {
    if (c == '.' || c == '\n' || c == ';' || c == '!') {
      if (current.size() > 3) {
        out.push_back(current);
      }
      current.clear();
    } else {
      current += c;
    }
  }
  if (current.size() > 3) {
    out.push_back(current);
  }
  return out;
}

}  // namespace

std::vector<ExtractedEvent> ExtractEvents(const std::string& text) {
  std::vector<ExtractedEvent> events;
  for (const std::string& sentence : Sentences(text)) {
    std::vector<std::string> words = StrSplit(sentence, ' ');
    for (size_t i = 0; i < words.size(); ++i) {
      int month = MonthOf(words[i]);
      if (month == 0) {
        continue;
      }
      ExtractedEvent event;
      event.month = month;
      // Look for a day number next to the month word (loose: a word starting with
      // 1-2 digits, tolerating trailing punctuation like "15:" or "3,").
      for (size_t j = i + 1; j < std::min(words.size(), i + 3); ++j) {
        const std::string& w = words[j];
        if (!w.empty() && w.size() <= 4 &&
            std::isdigit(static_cast<unsigned char>(w[0])) != 0) {
          int day = std::atoi(w.c_str());
          if (day >= 1 && day <= 31) {
            event.day = day;
            break;
          }
        }
      }
      // The heuristic accepts month-word sentences even without a day — this is
      // exactly where the spurious 10-20% comes from ("may concerns...").
      event.spurious = event.day == 0;
      std::string desc = sentence;
      if (desc.size() > 140) {
        desc.resize(140);
      }
      event.description = desc;
      events.push_back(std::move(event));
      break;  // One event per sentence.
    }
  }
  return events;
}

std::string GenerateCulturePage(Rng* rng, const std::string& venue, int events) {
  std::string page = "<html><body><h1>" + venue + " events</h1>\n";
  const char* const kActs[] = {"symphony",  "quartet", "gallery opening", "poetry reading",
                               "jazz night", "ballet",  "film festival",   "lecture"};
  for (int i = 0; i < events; ++i) {
    int month = static_cast<int>(rng->UniformInt(1, 12));
    int day = static_cast<int>(rng->UniformInt(1, 28));
    const char* act = kActs[rng->UniformInt(0, 7)];
    // Capitalized month name so MonthOf still matches case-insensitively.
    std::string month_name = kMonths[month - 1];
    month_name[0] = static_cast<char>(std::toupper(static_cast<unsigned char>(month_name[0])));
    page += StrFormat("<p>%s %d: %s at %s. Tickets at the door!</p>\n", month_name.c_str(),
                      day, act, venue.c_str());
  }
  // Prose with bare month words ("may", "march") that trips the loose heuristics.
  page += "<p>You may find parking difficult; we march toward a better lot policy. "
          "Donations may be made in august company.</p>\n";
  page += "</body></html>\n";
  return page;
}

TaccResult CulturePageWorker::Process(const TaccRequest& request) {
  if (request.inputs.empty()) {
    return TaccResult::Fail(InvalidArgumentError("culture-page: no input pages"));
  }
  int month_filter = static_cast<int>(request.ArgIntOr("month", 0));  // 0 = all.
  std::vector<ExtractedEvent> all;
  for (const ContentPtr& page : request.inputs) {
    if (page == nullptr) {
      continue;  // An unreachable source shrinks the calendar (approximate answer).
    }
    std::string text = StripTags(std::string(page->bytes.begin(), page->bytes.end()));
    for (ExtractedEvent& event : ExtractEvents(text)) {
      if (month_filter == 0 || event.month == month_filter) {
        all.push_back(std::move(event));
      }
    }
  }
  std::sort(all.begin(), all.end(), [](const ExtractedEvent& a, const ExtractedEvent& b) {
    if (a.month != b.month) {
      return a.month < b.month;
    }
    return a.day < b.day;
  });
  std::string page = "<html><body><h1>Culture this week</h1><ul>\n";
  for (const ExtractedEvent& event : all) {
    page += StrFormat("<li>[%02d/%02d] %s</li>\n", event.month, event.day,
                      event.description.c_str());
  }
  page += "</ul></body></html>\n";
  std::vector<uint8_t> bytes(page.begin(), page.end());
  return TaccResult::Ok(Content::Make(request.url, MimeType::kHtml, std::move(bytes)));
}

SimDuration CulturePageWorker::EstimateCost(const TaccRequest& request) const {
  return Milliseconds(2) + static_cast<SimDuration>(
                               static_cast<double>(Milliseconds(1)) *
                               (static_cast<double>(request.TotalInputBytes()) / 1024.0));
}

}  // namespace sns
