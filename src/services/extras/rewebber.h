// The anonymous rewebber's encryption/decryption workers (paper §5.1).
//
// "an anonymous rewebber network allows web authors to anonymously publish their
// content. ... its workers perform encryption and decryption ... Since encryption
// and decryption of distinct pages requested by independent users is both
// computationally intensive and highly parallelizable, this service is a natural
// fit for our architecture."
//
// The cipher is a keyed XOR keystream (a stand-in for the real public-key layers of
// [Goldberg & Wagner]): genuinely self-inverse byte transformation with a
// computationally-intensive cost model. Chaining N encrypt stages with distinct
// keys models an N-hop rewebber chain; decrypt stages applied in reverse order
// recover the original.

#ifndef SRC_SERVICES_EXTRAS_REWEBBER_H_
#define SRC_SERVICES_EXTRAS_REWEBBER_H_

#include <string>
#include <vector>

#include "src/tacc/worker.h"

namespace sns {

inline constexpr char kRewebberEncryptType[] = "rewebber-encrypt";
inline constexpr char kRewebberDecryptType[] = "rewebber-decrypt";
inline constexpr char kArgKey[] = "key";

// XOR keystream derived from `key`; applying twice with the same key is identity.
std::vector<uint8_t> XorKeystream(const std::vector<uint8_t>& data, const std::string& key);

class RewebberWorker : public TaccWorker {
 public:
  explicit RewebberWorker(bool encrypt) : encrypt_(encrypt) {}
  std::string type() const override {
    return encrypt_ ? kRewebberEncryptType : kRewebberDecryptType;
  }
  TaccResult Process(const TaccRequest& request) override;
  SimDuration EstimateCost(const TaccRequest& request) const override;

 private:
  bool encrypt_;
};

}  // namespace sns

#endif  // SRC_SERVICES_EXTRAS_REWEBBER_H_
