#include "src/services/transend/distillers.h"

#include <algorithm>
#include <cmath>

#include "src/content/gif_codec.h"
#include "src/content/html.h"
#include "src/content/image.h"
#include "src/content/jpeg_codec.h"
#include "src/util/strings.h"

namespace sns {

namespace {

constexpr int64_t kMinDistilledBytes = 160;

// Opaque content transform: produce undecodable bytes of the modeled size.
ContentPtr OpaqueOutput(const TaccRequest& request, MimeType mime, int64_t out_size) {
  std::vector<uint8_t> bytes(static_cast<size_t>(std::max(out_size, kMinDistilledBytes)));
  uint64_t h = Fnv1a(request.url) * 0x9E3779B97F4A7C15ULL;
  for (size_t i = 0; i < bytes.size(); ++i) {
    h ^= h >> 12;
    h ^= h << 25;
    h ^= h >> 27;
    bytes[i] = static_cast<uint8_t>(h * 0x2545F4914F6CDD1DULL >> 56);
  }
  if (bytes.size() >= 2) {
    bytes[0] = 'X';
    bytes[1] = 'X';
  }
  return Content::Make(request.url, mime, std::move(bytes));
}

SimDuration NoisyCost(SimDuration fixed, SimDuration per_kb, int64_t bytes, double sigma,
                      const std::string& url) {
  double kb = static_cast<double>(bytes) / 1024.0;
  double base = static_cast<double>(fixed) + static_cast<double>(per_kb) * kb;
  return static_cast<SimDuration>(base * CostNoiseFactor(url, sigma));
}

}  // namespace

double ImageReductionRatio(int scale, int quality) {
  scale = std::max(scale, 1);
  quality = std::clamp(quality, 1, 100);
  // quality term: ~0.6 at q100 falling to ~0.12 at q1; scale term: 1/scale.
  double quality_term = 0.10 + 0.50 * (static_cast<double>(quality) / 100.0);
  double ratio = quality_term / static_cast<double>(scale);
  return std::clamp(ratio, 0.01, 1.0);
}

double CostNoiseFactor(const std::string& url, double sigma) {
  // A deterministic standard-normal-ish draw from the URL hash (sum of 4 uniforms,
  // variance 1/3 each -> scale by sqrt(3)/2 ... close enough for jitter purposes).
  uint64_t h = Fnv1a(url) ^ 0xD15717;
  double sum = 0;
  for (int i = 0; i < 4; ++i) {
    h = h * 6364136223846793005ULL + 1442695040888963407ULL;
    sum += static_cast<double>(h >> 11) * 0x1.0p-53;
  }
  double z = (sum - 2.0) * 1.732;  // ~N(0,1)
  return std::exp(std::clamp(z, -2.0, 2.0) * sigma);
}

// ---------- JPEG distiller --------------------------------------------------------

TaccResult JpegDistiller::Process(const TaccRequest& request) {
  if (request.inputs.empty() || request.input() == nullptr) {
    return TaccResult::Fail(InvalidArgumentError("distill-jpeg: no input"));
  }
  const ContentPtr& in = request.input();
  int scale = static_cast<int>(request.ArgIntOr(kArgScale, 2));
  int quality = static_cast<int>(request.ArgIntOr(kArgQuality, 25));
  if (IsJpeg(in->bytes)) {
    auto decoded = JpegDecode(in->bytes);
    if (!decoded.ok()) {
      return TaccResult::Fail(decoded.status());
    }
    RasterImage image = std::move(decoded).value();
    if (scale > 1) {
      image = BoxDownscale(image, scale);
    }
    image = LowPassFilter(image, 1);
    return TaccResult::Ok(
        Content::Make(request.url, MimeType::kJpeg, JpegEncode(image, quality)));
  }
  // Opaque benchmark content: apply the calibrated reduction model.
  int64_t out = static_cast<int64_t>(static_cast<double>(in->size()) *
                                     ImageReductionRatio(scale, quality));
  return TaccResult::Ok(OpaqueOutput(request, MimeType::kJpeg, out));
}

SimDuration JpegDistiller::EstimateCost(const TaccRequest& request) const {
  return NoisyCost(cost_.jpeg_fixed, cost_.jpeg_per_kb, request.TotalInputBytes(),
                   cost_.noise_sigma, request.url);
}

// ---------- GIF distiller ------------------------------------------------------------

TaccResult GifDistiller::Process(const TaccRequest& request) {
  if (request.inputs.empty() || request.input() == nullptr) {
    return TaccResult::Fail(InvalidArgumentError("distill-gif: no input"));
  }
  const ContentPtr& in = request.input();
  int scale = static_cast<int>(request.ArgIntOr(kArgScale, 2));
  int quality = static_cast<int>(request.ArgIntOr(kArgQuality, 25));
  if (IsGif(in->bytes)) {
    // GIF -> JPEG conversion followed by JPEG degradation (§3.1.6).
    auto decoded = GifDecode(in->bytes);
    if (!decoded.ok()) {
      return TaccResult::Fail(decoded.status());
    }
    RasterImage image = std::move(decoded).value();
    if (scale > 1) {
      image = BoxDownscale(image, scale);
    }
    return TaccResult::Ok(
        Content::Make(request.url, MimeType::kJpeg, JpegEncode(image, quality)));
  }
  // GIF->JPEG conversion itself shrinks photos ~3x before quality reduction.
  int64_t out = static_cast<int64_t>(static_cast<double>(in->size()) * 0.55 *
                                     ImageReductionRatio(scale, quality));
  return TaccResult::Ok(OpaqueOutput(request, MimeType::kJpeg, out));
}

SimDuration GifDistiller::EstimateCost(const TaccRequest& request) const {
  return NoisyCost(cost_.gif_fixed, cost_.gif_per_kb, request.TotalInputBytes(),
                   cost_.noise_sigma, request.url);
}

// ---------- HTML distiller (the munger) -------------------------------------------------

TaccResult HtmlDistiller::Process(const TaccRequest& request) {
  if (request.inputs.empty() || request.input() == nullptr) {
    return TaccResult::Fail(InvalidArgumentError("munge-html: no input"));
  }
  const ContentPtr& in = request.input();
  std::string html(in->bytes.begin(), in->bytes.end());
  MungeOptions options;
  // The user interface for TranSend is controlled by the HTML distiller, under the
  // direction of the user preferences from the front end (§3.1.6).
  options.add_toolbar = request.profile.GetBoolOr("toolbar", true);
  options.add_original_links = request.profile.GetBoolOr("original_links", true);
  options.proxy_prefix =
      "http://transend.berkeley.edu/distill?q=" + request.profile.GetOr("quality", "med") +
      "&src=";
  std::string munged = MungeHtml(html, options);
  std::vector<uint8_t> bytes(munged.begin(), munged.end());
  return TaccResult::Ok(Content::Make(request.url, MimeType::kHtml, std::move(bytes)));
}

SimDuration HtmlDistiller::EstimateCost(const TaccRequest& request) const {
  return NoisyCost(cost_.html_fixed, cost_.html_per_kb, request.TotalInputBytes(),
                   cost_.noise_sigma, request.url);
}

void RegisterTranSendDistillers(WorkerRegistry* registry, const DistillerCostConfig& cost) {
  registry->Register(kJpegDistillerType,
                     [cost] { return std::make_unique<JpegDistiller>(cost); });
  registry->Register(kGifDistillerType,
                     [cost] { return std::make_unique<GifDistiller>(cost); });
  registry->Register(kHtmlDistillerType,
                     [cost] { return std::make_unique<HtmlDistiller>(cost); });
}

}  // namespace sns
