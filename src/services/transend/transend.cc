#include "src/services/transend/transend.h"

namespace sns {

TranSendOptions DefaultTranSendOptions() {
  TranSendOptions options;

  // --- SAN: switched 100 Mb/s Ethernet (§4). ---
  options.topology.san.default_link.bandwidth_bps = 100e6;
  options.topology.san.default_link.propagation = Microseconds(50);
  options.topology.san.default_link.per_message_overhead = Microseconds(150);
  options.topology.san.default_link.max_datagram_queue_delay = Milliseconds(50);
  // Per-connection setup: part of the measured 27 ms Harvest hit time (§4.4), paid
  // on every cache request (fresh connection each time) but amortized elsewhere.
  options.topology.san.tcp_setup_cost = Milliseconds(7);

  // --- Front-end NIC: TCP/kernel processing dominates ("more than 70% of its time
  // in the kernel", §4.4); calibrated so one FE saturates near ~75 req/s. ---
  LinkConfig fe_link = options.topology.san.default_link;
  fe_link.per_message_overhead = Milliseconds(2.1);
  options.topology.fe_link = fe_link;

  // --- The Internet behind a 10 Mb/s segment (§4). ---
  LinkConfig origin_link = options.topology.san.default_link;
  origin_link.bandwidth_bps = 10e6;
  options.topology.origin_link = origin_link;
  options.topology.with_origin = true;

  // --- TranSend ran Harvest on four nodes with ~6 GB total cache (§4.4). ---
  options.topology.cache_nodes = 4;
  options.topology.cache.capacity_bytes = 1500LL * 1000 * 1000;
  options.topology.cache.cpu_per_get = Milliseconds(10);
  options.topology.worker_pool_nodes = 10;
  options.topology.front_ends = 1;  // Production ran a single ~400-thread FE.

  options.sns.spawn_threshold_h = 10.0;
  options.sns.spawn_cooldown_d = Seconds(12);

  options.universe.url_count = 20000;
  options.universe.real_image_max_bytes = 0;  // Opaque imagery for speed.

  return options;
}

TranSendService::TranSendService(const TranSendOptions& options)
    : options_(options), universe_(options.universe), system_(options.sns, options.topology) {
  RegisterTranSendDistillers(system_.registry(), options_.distiller_cost);
  TranSendLogicConfig logic_config = options_.logic;
  system_.set_logic_factory([logic_config](int /*fe_index*/) {
    return std::make_shared<TranSendLogic>(logic_config);
  });
  OriginConfig origin_config = options_.origin;
  system_.set_origin_factory([this, origin_config]() {
    return std::make_unique<OriginServerProcess>(origin_config, &universe_);
  });
}

void TranSendService::Start() { system_.Start(); }

std::vector<Endpoint> TranSendService::LiveFrontEnds() const {
  std::vector<Endpoint> endpoints;
  for (FrontEndProcess* fe : system_.front_ends()) {
    endpoints.push_back(fe->endpoint());
  }
  return endpoints;
}

PlaybackEngine* TranSendService::AddPlaybackEngine(uint64_t seed) {
  PlaybackConfig config;
  config.seed = seed;
  return AddPlaybackEngine(std::move(config));
}

PlaybackEngine* TranSendService::AddPlaybackEngine(PlaybackConfig config) {
  NodeConfig client;
  client.workers_allowed = false;
  client.link = options_.client_link;
  NodeId node = system_.cluster()->AddNode(client);
  config.front_ends = [this] { return LiveFrontEnds(); };
  if (config.availability == nullptr) {
    config.availability = system_.availability();
  }
  auto engine = std::make_unique<PlaybackEngine>(config);
  PlaybackEngine* raw = engine.get();
  ProcessId pid = system_.cluster()->Spawn(node, std::move(engine));
  if (pid == kInvalidProcess) {
    return nullptr;
  }
  playback_pids_.push_back(pid);
  return raw;
}

}  // namespace sns
