// TranSend, assembled: the scalable Web distillation proxy of paper §3.
//
// This class is the "service author" side of the layered architecture: it
// configures an SnsSystem with the TranSend topology (front ends on heavier-kernel
// NICs, four cache nodes, the dialup-facing origin gateway), registers the three
// distillers, installs the dispatch logic, and provides playback engines standing
// in for the 25,000-user dialup population. Default constants are calibrated to the
// paper's measurements — see the field comments.

#ifndef SRC_SERVICES_TRANSEND_TRANSEND_H_
#define SRC_SERVICES_TRANSEND_TRANSEND_H_

#include <memory>
#include <vector>

#include "src/sns/system.h"
#include "src/services/transend/distillers.h"
#include "src/services/transend/transend_logic.h"
#include "src/workload/content_universe.h"
#include "src/workload/origin_server.h"
#include "src/workload/playback.h"

namespace sns {

struct TranSendOptions {
  SnsConfig sns;
  SystemTopology topology;
  TranSendLogicConfig logic;
  DistillerCostConfig distiller_cost;
  ContentUniverseConfig universe;
  OriginConfig origin;
  // Each playback engine gets its own client node with this link.
  LinkConfig client_link;
};

// Calibrated defaults reproducing the paper's operating points:
//   - one distiller sustains ~23 req/s on ~10 KB JPEG inputs;
//   - one front end's network path saturates near ~75 req/s (TCP/kernel bound);
//   - a cache hit costs ~27 ms including per-request TCP connection setup;
//   - manager beacons 1/s, worker load reports 2/s, spawn threshold H, cooldown D.
TranSendOptions DefaultTranSendOptions();

class TranSendService {
 public:
  explicit TranSendService(const TranSendOptions& options = DefaultTranSendOptions());

  // Builds and starts the system (no workers yet: they spawn on demand).
  void Start();

  // Adds a playback engine on a fresh client node. The engine balances across live
  // front ends automatically.
  PlaybackEngine* AddPlaybackEngine(uint64_t seed = 0xCAFE);
  // Variant taking a caller-built config (per-request deadline, timeout, seed);
  // the engine's front-end callback is wired to this service's live FEs.
  PlaybackEngine* AddPlaybackEngine(PlaybackConfig config);

  SnsSystem* system() { return &system_; }
  Simulator* sim() { return system_.sim(); }
  ContentUniverse* universe() { return &universe_; }
  const TranSendOptions& options() const { return options_; }

  // Live front-end endpoints (client-side balancing callback).
  std::vector<Endpoint> LiveFrontEnds() const;

 private:
  TranSendOptions options_;
  ContentUniverse universe_;
  SnsSystem system_;
  std::vector<ProcessId> playback_pids_;
};

}  // namespace sns

#endif  // SRC_SERVICES_TRANSEND_TRANSEND_H_
