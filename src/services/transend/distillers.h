// TranSend's datatype-specific distillers (paper §3.1.6).
//
// Three parameterizable TACC workers:
//   - distill-jpeg: scaling and low-pass filtering of JPEG images (re-encoded at a
//     lower quality).
//   - distill-gif:  GIF-to-JPEG conversion followed by JPEG degradation (the paper
//     chose this "after discovering that the JPEG representation is smaller and
//     faster to operate on for most images").
//   - munge-html:   marks up inline image references with distillation preferences,
//     adds [original] links next to distilled images, and prepends the preferences
//     toolbar.
//
// Each distiller transforms real bytes when the input is decodable (SGIF/SJPG/HTML)
// and falls back to a calibrated size-reduction model for opaque benchmark content.
// Simulated CPU cost follows Fig. 7: roughly linear in input size (the GIF distiller
// measured ~8 ms/KB), with item-to-item variance.

#ifndef SRC_SERVICES_TRANSEND_DISTILLERS_H_
#define SRC_SERVICES_TRANSEND_DISTILLERS_H_

#include <string>

#include "src/tacc/registry.h"
#include "src/tacc/worker.h"

namespace sns {

// Shared argument names.
//   "scale":   integer downscale factor (>= 1).
//   "quality": target JPEG quality (1..100).
inline constexpr char kArgScale[] = "scale";
inline constexpr char kArgQuality[] = "quality";

inline constexpr char kJpegDistillerType[] = "distill-jpeg";
inline constexpr char kGifDistillerType[] = "distill-gif";
inline constexpr char kHtmlDistillerType[] = "munge-html";

struct DistillerCostConfig {
  // Fig. 7: ~8 ms per input KB for the GIF distiller (decode + scale + re-encode).
  SimDuration gif_fixed = Milliseconds(4);
  SimDuration gif_per_kb = Milliseconds(8);
  // JPEG path is cheaper (no palette work); calibrated so a distiller sustains
  // ~23 requests/second on the ~10 KB images of the §4.6 scalability experiment.
  SimDuration jpeg_fixed = Milliseconds(2);
  SimDuration jpeg_per_kb = Milliseconds(4);
  // "the HTML distiller is far more efficient".
  SimDuration html_fixed = Milliseconds(1);
  SimDuration html_per_kb = Milliseconds(0.8);
  // Lognormal sigma of the per-item cost noise (Fig. 7 shows large variance).
  double noise_sigma = 0.25;
};

class JpegDistiller : public TaccWorker {
 public:
  explicit JpegDistiller(const DistillerCostConfig& cost = DistillerCostConfig{})
      : cost_(cost) {}
  std::string type() const override { return kJpegDistillerType; }
  TaccResult Process(const TaccRequest& request) override;
  SimDuration EstimateCost(const TaccRequest& request) const override;

 private:
  DistillerCostConfig cost_;
};

class GifDistiller : public TaccWorker {
 public:
  explicit GifDistiller(const DistillerCostConfig& cost = DistillerCostConfig{})
      : cost_(cost) {}
  std::string type() const override { return kGifDistillerType; }
  TaccResult Process(const TaccRequest& request) override;
  SimDuration EstimateCost(const TaccRequest& request) const override;

 private:
  DistillerCostConfig cost_;
};

class HtmlDistiller : public TaccWorker {
 public:
  explicit HtmlDistiller(const DistillerCostConfig& cost = DistillerCostConfig{})
      : cost_(cost) {}
  std::string type() const override { return kHtmlDistillerType; }
  TaccResult Process(const TaccRequest& request) override;
  SimDuration EstimateCost(const TaccRequest& request) const override;

 private:
  DistillerCostConfig cost_;
};

// Registers all three distiller factories.
void RegisterTranSendDistillers(WorkerRegistry* registry,
                                const DistillerCostConfig& cost = DistillerCostConfig{});

// Expected output/input size ratio for image distillation — used for opaque
// content and exposed for tests. Calibrated to the paper's example: scale 2 +
// quality 25 turns a 10 KB JPEG into ~1.5 KB (Fig. 3).
double ImageReductionRatio(int scale, int quality);

// Deterministic per-item cost jitter in [e^-2s, e^2s], keyed by URL.
double CostNoiseFactor(const std::string& url, double sigma);

}  // namespace sns

#endif  // SRC_SERVICES_TRANSEND_DISTILLERS_H_
