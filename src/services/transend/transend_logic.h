// TranSend's front-end dispatch logic: the Service layer of Figure 2.
//
// Request flow (§3.1.1): pair the request with the user's customization
// preferences, probe the virtual cache for the requested distilled variant, fall
// back to the cached original (fetching from the Internet on a full miss), run the
// appropriate distiller pipeline, inject the result back into the cache, and reply.
//
// BASE behaviors implemented here (§3.1.8):
//   - content below the 1 KB threshold, or types with no distiller, pass through;
//   - on distiller failure/overload the user gets the original content quickly
//     rather than the exact answer slowly (approximate answers);
//   - a cache timeout is just a miss.

#ifndef SRC_SERVICES_TRANSEND_TRANSEND_LOGIC_H_
#define SRC_SERVICES_TRANSEND_TRANSEND_LOGIC_H_

#include <map>
#include <string>

#include "src/sns/front_end.h"

namespace sns {

struct TranSendLogicConfig {
  // "data under 1 KB is transferred to the client unmodified, since distillation of
  // such small content rarely results in a size reduction" (§4.1).
  int64_t distill_threshold_bytes = 1024;
  // Store distilled variants back into the virtual cache. The scalability
  // experiment turns this off so every request re-distills (§4.6).
  bool cache_distilled = true;
  // Store fetched originals in the cache.
  bool cache_originals = true;
  // Defaults when the user has no profile entry.
  std::string default_quality = "med";  // low | med | high
  // Map a quality label to distiller args.
  static std::map<std::string, std::string> ArgsForQuality(const std::string& label);
};

class TranSendLogic : public FrontEndLogic {
 public:
  explicit TranSendLogic(const TranSendLogicConfig& config) : config_(config) {}

  void HandleRequest(RequestContext* ctx) override;

  // Cache key helpers (also used by tests).
  static std::string OriginalKey(const std::string& url);
  static std::string VariantKey(const std::string& url, const std::string& quality);

 private:
  void WithOriginal(RequestContext* ctx, const std::string& quality);
  void Distill(RequestContext* ctx, const std::string& quality, ContentPtr original,
               bool original_was_cached);

  TranSendLogicConfig config_;
};

}  // namespace sns

#endif  // SRC_SERVICES_TRANSEND_TRANSEND_LOGIC_H_
