#include "src/services/transend/transend_logic.h"

#include "src/content/mime.h"
#include "src/services/transend/distillers.h"

namespace sns {

std::map<std::string, std::string> TranSendLogicConfig::ArgsForQuality(
    const std::string& label) {
  // Fig. 3's example operating point is the "med" setting: scale 2, quality 25.
  if (label == "low") {
    return {{kArgScale, "4"}, {kArgQuality, "10"}};
  }
  if (label == "high") {
    return {{kArgScale, "1"}, {kArgQuality, "50"}};
  }
  return {{kArgScale, "2"}, {kArgQuality, "25"}};
}

std::string TranSendLogic::OriginalKey(const std::string& url) { return url + "|orig"; }

std::string TranSendLogic::VariantKey(const std::string& url, const std::string& quality) {
  // "Users of TranSend request objects that are named by the object URL and the
  // user preferences" (§3.1.8).
  return url + "|distilled|" + quality;
}

void TranSendLogic::HandleRequest(RequestContext* ctx) {
  ctx->GetProfile([this](RequestContext* c, bool /*found*/, const UserProfile& profile) {
    c->SetProfile(profile);
    // The preferences UI (§2.2.1: the front end "provides the user interface to the
    // profile database"; §3.1.6: the toolbar's /prefs links land here). Any
    // "set_<key>" parameter updates the user's profile through the write-through
    // cache and the ACID store.
    bool updated_prefs = false;
    UserProfile updated = profile;
    if (updated.user_id().empty()) {
      updated.set_user_id(c->request().user_id);
    }
    for (const auto& [key, value] : c->request().params) {
      if (key.rfind("set_", 0) == 0 && key.size() > 4) {
        updated.Set(key.substr(4), value);
        updated_prefs = true;
      }
    }
    if (updated_prefs) {
      // Durable-write contract (DESIGN.md §14): the "saved" page goes out only
      // after the profile DB acknowledges the commit; a refused or unacked
      // write surfaces as an error instead of a false confirmation.
      c->PutProfile(updated, [updated](RequestContext* c2, Status status) {
        if (!status.ok()) {
          c2->Respond(status, nullptr, ResponseSource::kPassThrough, false);
          return;
        }
        c2->SetProfile(updated);
        std::string page = "<html><body><div class=\"transend-toolbar\">Preferences saved for " +
                           updated.user_id() + ".</div></body></html>";
        c2->Respond(Status::Ok(),
                    Content::Make(c2->request().url, MimeType::kHtml,
                                  std::vector<uint8_t>(page.begin(), page.end())),
                    ResponseSource::kPassThrough, false);
      });
      return;
    }
    std::string quality = profile.GetOr("quality", config_.default_quality);
    MimeType mime = MimeTypeFromUrl(c->request().url);
    bool distillable = profile.GetBoolOr("distill", true) &&
                       (mime == MimeType::kGif || mime == MimeType::kJpeg ||
                        mime == MimeType::kHtml);
    if (!distillable) {
      // No distiller for this type: pass the original through (§4.1).
      WithOriginal(c, "");
      return;
    }
    // First choice: the already-distilled variant in the cache.
    c->CacheGet(VariantKey(c->request().url, quality),
                [this, quality](RequestContext* c2, bool hit, ContentPtr content) {
                  if (hit) {
                    c2->Respond(Status::Ok(), content, ResponseSource::kDistilled, true);
                    return;
                  }
                  WithOriginal(c2, quality);
                });
  });
}

void TranSendLogic::WithOriginal(RequestContext* ctx, const std::string& quality) {
  ctx->CacheGet(
      OriginalKey(ctx->request().url),
      [this, quality](RequestContext* c, bool hit, ContentPtr content) {
        if (hit) {
          Distill(c, quality, std::move(content), /*original_was_cached=*/true);
          return;
        }
        // Full miss: fetch from the Internet (the dominant latency, §4.4).
        c->Fetch(c->request().url, [this, quality](RequestContext* c2, Status status,
                                                   ContentPtr fetched) {
          if (!status.ok()) {
            c2->Respond(status, nullptr, ResponseSource::kError, false);
            return;
          }
          if (config_.cache_originals) {
            c2->CachePut(OriginalKey(c2->request().url), fetched);
          }
          Distill(c2, quality, std::move(fetched), /*original_was_cached=*/false);
        });
      });
}

void TranSendLogic::Distill(RequestContext* ctx, const std::string& quality,
                            ContentPtr original, bool original_was_cached) {
  MimeType mime = MimeTypeFromUrl(ctx->request().url);
  // `quality` empty means the type was not distillable at all.
  if (quality.empty() || original == nullptr ||
      original->size() < config_.distill_threshold_bytes) {
    ctx->Respond(Status::Ok(), original,
                 quality.empty() ? ResponseSource::kPassThrough : ResponseSource::kCacheOriginal,
                 original_was_cached);
    return;
  }

  std::string worker_type;
  switch (mime) {
    case MimeType::kGif:
      worker_type = kGifDistillerType;
      break;
    case MimeType::kJpeg:
      worker_type = kJpegDistillerType;
      break;
    case MimeType::kHtml:
      worker_type = kHtmlDistillerType;
      break;
    case MimeType::kOther:
      ctx->Respond(Status::Ok(), original, ResponseSource::kPassThrough, original_was_cached);
      return;
  }

  std::map<std::string, std::string> args = TranSendLogicConfig::ArgsForQuality(quality);
  // Forward fault-injection markers ("__poison") from the client request.
  for (const auto& [key, value] : ctx->request().params) {
    if (key.rfind("__", 0) == 0) {
      args[key] = value;
    }
  }

  ctx->CallWorker(
      worker_type, std::move(args), {original},
      [this, quality, original, original_was_cached](RequestContext* c, Status status,
                                                     ContentPtr distilled) {
        if (!status.ok() || distilled == nullptr) {
          // BASE approximate answer: "If the required distiller has temporarily or
          // permanently failed, the system can return the original content"
          // (§3.1.8). Fast and useful beats exact and slow.
          c->Respond(Status::Ok(), original, ResponseSource::kCacheApproximate,
                     original_was_cached);
          return;
        }
        if (config_.cache_distilled) {
          c->CachePut(VariantKey(c->request().url, quality), distilled);
        }
        c->Respond(Status::Ok(), distilled, ResponseSource::kDistilled, original_was_cached);
      });
}

}  // namespace sns
