// HotBot, assembled (paper §3.2, Table 1): static data partitioning, parallel
// query scatter/gather, per-node multi-threaded HTTP front ends, an ACID profile
// database, and fast shard restart after node failures.

#ifndef SRC_SERVICES_HOTBOT_HOTBOT_H_
#define SRC_SERVICES_HOTBOT_HOTBOT_H_

#include <memory>
#include <vector>

#include "src/services/hotbot/hotbot_logic.h"
#include "src/services/hotbot/inverted_index.h"
#include "src/services/hotbot/search_worker.h"
#include "src/sns/system.h"
#include "src/workload/playback.h"

namespace sns {

struct HotBotOptions {
  SnsConfig sns;
  SystemTopology topology;
  HotBotLogicConfig logic;
  CorpusConfig corpus;
  SearchCostConfig search_cost;
  int shard_count = 8;
};

// Defaults modeled on the paper: HTTP front ends run 50-80 threads per node (§3.2);
// dynamic spawning is effectively disabled (workers are bound to their partitions);
// a result cache holds recent searches.
HotBotOptions DefaultHotBotOptions();

class HotBotService {
 public:
  explicit HotBotService(const HotBotOptions& options = DefaultHotBotOptions());

  // Starts the system and pins one worker per shard onto the worker pool.
  void Start();

  PlaybackEngine* AddPlaybackEngine(uint64_t seed = 0xB07);

  SnsSystem* system() { return &system_; }
  Simulator* sim() { return system_.sim(); }
  const std::vector<ShardPtr>& shards() const { return shards_; }
  const HotBotOptions& options() const { return options_; }
  int64_t TotalDocuments() const;

  std::vector<Endpoint> LiveFrontEnds() const;

  // Builds a query TraceRecord for the playback engine.
  TraceRecord MakeQuery(const std::string& user, const std::string& query) const;

 private:
  HotBotOptions options_;
  std::vector<ShardPtr> shards_;
  SnsSystem system_;
  std::vector<ProcessId> playback_pids_;
};

}  // namespace sns

#endif  // SRC_SERVICES_HOTBOT_HOTBOT_H_
