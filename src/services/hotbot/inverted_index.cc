#include "src/services/hotbot/inverted_index.h"

#include <algorithm>
#include <unordered_map>

#include "src/util/strings.h"

namespace sns {

void InvertedIndexShard::AddDocument(const SearchDocument& doc) {
  ++doc_count_;
  titles_[doc.id] = doc.title;
  std::unordered_map<std::string, int32_t> tf;
  for (const std::string& term : doc.terms) {
    ++tf[term];
  }
  for (const auto& [term, count] : tf) {
    postings_[term].push_back(Posting{doc.id, count});
    ++posting_count_;
  }
  // Postings stay sorted because documents are added in increasing id order within
  // a shard; enforce anyway for arbitrary insertion orders.
  for (const auto& [term, count] : tf) {
    auto& list = postings_[term];
    if (list.size() >= 2 && list[list.size() - 2].doc_id > list.back().doc_id) {
      std::sort(list.begin(), list.end(),
                [](const Posting& a, const Posting& b) { return a.doc_id < b.doc_id; });
    }
  }
}

std::vector<SearchHit> InvertedIndexShard::Search(const std::vector<std::string>& terms,
                                                  size_t k) const {
  if (terms.empty()) {
    return {};
  }
  // Gather posting lists; an absent term makes the conjunction empty.
  std::vector<const std::vector<Posting>*> lists;
  for (const std::string& term : terms) {
    auto it = postings_.find(term);
    if (it == postings_.end()) {
      return {};
    }
    lists.push_back(&it->second);
  }
  // Intersect starting from the rarest list.
  std::sort(lists.begin(), lists.end(),
            [](const auto* a, const auto* b) { return a->size() < b->size(); });
  std::vector<SearchHit> hits;
  for (const Posting& seed_posting : *lists[0]) {
    double score = seed_posting.tf;
    bool all = true;
    for (size_t i = 1; i < lists.size(); ++i) {
      const auto& list = *lists[i];
      auto it = std::lower_bound(
          list.begin(), list.end(), seed_posting.doc_id,
          [](const Posting& p, int64_t id) { return p.doc_id < id; });
      if (it == list.end() || it->doc_id != seed_posting.doc_id) {
        all = false;
        break;
      }
      score += it->tf;
    }
    if (all) {
      auto title = titles_.find(seed_posting.doc_id);
      hits.push_back(SearchHit{seed_posting.doc_id, score,
                               title != titles_.end() ? title->second : ""});
    }
  }
  std::sort(hits.begin(), hits.end(), [](const SearchHit& a, const SearchHit& b) {
    if (a.score != b.score) {
      return a.score > b.score;
    }
    return a.doc_id < b.doc_id;
  });
  if (hits.size() > k) {
    hits.resize(k);
  }
  return hits;
}

int64_t InvertedIndexShard::CandidatePostings(const std::vector<std::string>& terms) const {
  int64_t total = 0;
  for (const std::string& term : terms) {
    auto it = postings_.find(term);
    if (it != postings_.end()) {
      total += static_cast<int64_t>(it->second.size());
    }
  }
  return total;
}

std::string VocabularyWord(int64_t rank) {
  return StrFormat("kw%lld", static_cast<long long>(rank));
}

std::vector<ShardPtr> BuildShardedCorpus(const CorpusConfig& config, int shard_count) {
  Rng rng(config.seed);
  std::vector<std::shared_ptr<InvertedIndexShard>> shards;
  shards.reserve(static_cast<size_t>(shard_count));
  for (int i = 0; i < shard_count; ++i) {
    shards.push_back(std::make_shared<InvertedIndexShard>(i));
  }
  for (int64_t id = 0; id < config.doc_count; ++id) {
    SearchDocument doc;
    doc.id = id;
    doc.title = StrFormat("Document %lld (%s %s)", static_cast<long long>(id),
                          VocabularyWord(rng.Zipf(config.vocabulary, config.term_zipf_skew)).c_str(),
                          VocabularyWord(rng.Zipf(config.vocabulary, config.term_zipf_skew)).c_str());
    int64_t terms = rng.UniformInt(config.min_terms, config.max_terms);
    doc.terms.reserve(static_cast<size_t>(terms));
    for (int64_t t = 0; t < terms; ++t) {
      doc.terms.push_back(VocabularyWord(rng.Zipf(config.vocabulary, config.term_zipf_skew)));
    }
    // Random distribution of documents to shards (§3.2).
    auto shard = static_cast<size_t>(rng.UniformInt(0, shard_count - 1));
    shards[shard]->AddDocument(doc);
  }
  std::vector<ShardPtr> out;
  out.reserve(shards.size());
  for (auto& shard : shards) {
    out.push_back(std::move(shard));
  }
  return out;
}

std::vector<std::string> SampleQueryTerms(const CorpusConfig& config, Rng* rng, int terms) {
  std::vector<std::string> out;
  out.reserve(static_cast<size_t>(terms));
  for (int i = 0; i < terms; ++i) {
    out.push_back(VocabularyWord(rng->Zipf(config.vocabulary, config.term_zipf_skew)));
  }
  return out;
}

}  // namespace sns
