// Inverted-index substrate for the HotBot search engine (paper §3.2).
//
// HotBot "performs millions of queries per day against a database of over 50
// million web pages", statically partitioned across worker nodes: "the database
// partitioning distributes documents randomly and it is acceptable to lose part of
// the database temporarily". This module provides a synthetic corpus generator, a
// real in-memory inverted index with TF scoring, and random sharding.

#ifndef SRC_SERVICES_HOTBOT_INVERTED_INDEX_H_
#define SRC_SERVICES_HOTBOT_INVERTED_INDEX_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/util/rng.h"

namespace sns {

struct SearchDocument {
  int64_t id = 0;
  std::string title;
  std::vector<std::string> terms;
};

struct SearchHit {
  int64_t doc_id = 0;
  double score = 0;
  std::string title;
};

class InvertedIndexShard {
 public:
  explicit InvertedIndexShard(int shard_id) : shard_id_(shard_id) {}

  void AddDocument(const SearchDocument& doc);

  // Conjunctive (AND) query with TF-sum ranking; returns up to `k` hits, highest
  // score first (ties by ascending doc id for determinism).
  std::vector<SearchHit> Search(const std::vector<std::string>& terms, size_t k) const;

  // Total postings that a query over `terms` must scan (drives simulated cost).
  int64_t CandidatePostings(const std::vector<std::string>& terms) const;

  int shard_id() const { return shard_id_; }
  int64_t doc_count() const { return doc_count_; }
  int64_t term_count() const { return static_cast<int64_t>(postings_.size()); }
  int64_t posting_count() const { return posting_count_; }

 private:
  struct Posting {
    int64_t doc_id;
    int32_t tf;
  };

  int shard_id_;
  int64_t doc_count_ = 0;
  int64_t posting_count_ = 0;
  std::map<std::string, std::vector<Posting>> postings_;  // Sorted by doc id.
  std::map<int64_t, std::string> titles_;
};

using ShardPtr = std::shared_ptr<const InvertedIndexShard>;

struct CorpusConfig {
  uint64_t seed = 0x407B07;
  int64_t doc_count = 20000;
  int64_t vocabulary = 5000;
  double term_zipf_skew = 1.05;
  int min_terms = 30;
  int max_terms = 200;
};

// Builds `shard_count` shards with documents distributed randomly (as HotBot did).
std::vector<ShardPtr> BuildShardedCorpus(const CorpusConfig& config, int shard_count);

// Draws a query of `terms` Zipf-popular vocabulary words.
std::vector<std::string> SampleQueryTerms(const CorpusConfig& config, Rng* rng, int terms);

// The vocabulary word with the given rank (rank 0 = most popular).
std::string VocabularyWord(int64_t rank);

}  // namespace sns

#endif  // SRC_SERVICES_HOTBOT_INVERTED_INDEX_H_
