// HotBot's front-end logic: parallel scatter/gather over statically partitioned
// search shards (paper §3.2).
//
// "Every query goes to all workers in parallel." Shards that fail or time out
// simply shrink the searched database for that query — the paper's graceful
// degradation ("with 26 nodes the loss of one machine results in the database
// dropping from 54M to about 51M documents"). Recent searches are cached
// ("integrated cache of recent searches, for incremental delivery", Table 1).

#ifndef SRC_SERVICES_HOTBOT_HOTBOT_LOGIC_H_
#define SRC_SERVICES_HOTBOT_HOTBOT_LOGIC_H_

#include <memory>
#include <string>
#include <vector>

#include "src/services/hotbot/search_worker.h"
#include "src/sns/front_end.h"

namespace sns {

struct HotBotLogicConfig {
  int shard_count = 8;
  int results_per_page = 10;
  bool cache_searches = true;
  // How many hits a search gathers and caches, regardless of page size — this is
  // what makes "incremental delivery" (Table 1) possible: page 2, 3, ... of the
  // same query are sliced from the cached result set without re-querying shards.
  int cached_result_depth = 50;
};

class HotBotLogic : public FrontEndLogic {
 public:
  explicit HotBotLogic(const HotBotLogicConfig& config) : config_(config) {}

  void HandleRequest(RequestContext* ctx) override;

  // The recent-search cache key: per query (and depth), NOT per page — all pages of
  // a query share one cached result set (incremental delivery, Table 1).
  static std::string SearchCacheKey(const std::string& query, int k);

  // Renders the final result page (plain text; "dynamic HTML" stand-in). The header
  // carries reachable-partition and document counts so clients can see degradation:
  //   "results <n> partitions <reached>/<total> docs <searched>".
  static std::vector<uint8_t> RenderResultPage(const std::vector<SearchHit>& hits,
                                               int reached, int total, int64_t docs_searched);
  struct ParsedResultPage {
    int result_count = 0;
    int partitions_reached = 0;
    int partitions_total = 0;
    int64_t docs_searched = 0;
    std::vector<SearchHit> hits;
  };
  static ParsedResultPage ParseResultPage(const std::vector<uint8_t>& bytes);

 private:
  void RunQuery(RequestContext* ctx, const std::string& query, int page);
  // Slices page `page` (1-based, results_per_page hits) out of a full cached result
  // set and responds with it.
  void RespondPage(RequestContext* ctx, const ParsedResultPage& full, int page,
                   bool cache_hit);

  HotBotLogicConfig config_;
};

}  // namespace sns

#endif  // SRC_SERVICES_HOTBOT_HOTBOT_LOGIC_H_
