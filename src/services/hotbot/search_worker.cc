#include "src/services/hotbot/search_worker.h"

#include <cstdlib>

#include "src/util/strings.h"

namespace sns {

std::string SearchShardType(int shard_id) { return StrFormat("search-shard-%d", shard_id); }

TaccResult SearchShardWorker::Process(const TaccRequest& request) {
  std::string query = request.ArgOr(kArgQuery, "");
  if (query.empty()) {
    return TaccResult::Fail(InvalidArgumentError("search: empty query"));
  }
  auto k = static_cast<size_t>(request.ArgIntOr(kArgTopK, 10));
  std::vector<std::string> terms;
  for (const std::string& term : StrSplit(query, ' ')) {
    if (!term.empty()) {
      terms.push_back(term);
    }
  }
  std::vector<SearchHit> hits = shard_->Search(terms, k);
  return TaccResult::Ok(Content::Make(request.url, MimeType::kOther,
                                      EncodeSearchResults(shard_->shard_id(),
                                                          shard_->doc_count(), hits)));
}

SimDuration SearchShardWorker::EstimateCost(const TaccRequest& request) const {
  std::string query = request.ArgOr(kArgQuery, "");
  std::vector<std::string> terms;
  for (const std::string& term : StrSplit(query, ' ')) {
    if (!term.empty()) {
      terms.push_back(term);
    }
  }
  double thousands = static_cast<double>(shard_->CandidatePostings(terms)) / 1000.0;
  return cost_.fixed + static_cast<SimDuration>(
                           static_cast<double>(cost_.per_thousand_postings) * thousands);
}

std::vector<uint8_t> EncodeSearchResults(int shard_id, int64_t doc_count,
                                         const std::vector<SearchHit>& hits) {
  std::string out = StrFormat("shard %d docs %lld\n", shard_id,
                              static_cast<long long>(doc_count));
  for (const SearchHit& hit : hits) {
    out += StrFormat("%lld\t%.3f\t%s\n", static_cast<long long>(hit.doc_id), hit.score,
                     hit.title.c_str());
  }
  return std::vector<uint8_t>(out.begin(), out.end());
}

Result<DecodedSearchResults> DecodeSearchResults(const std::vector<uint8_t>& bytes) {
  DecodedSearchResults out;
  std::string text(bytes.begin(), bytes.end());
  std::vector<std::string> lines = StrSplit(text, '\n');
  if (lines.empty()) {
    return CorruptionError("empty search results");
  }
  long long docs = 0;
  if (std::sscanf(lines[0].c_str(), "shard %d docs %lld", &out.shard_id, &docs) != 2) {
    return CorruptionError("bad search result header");
  }
  out.doc_count = docs;
  for (size_t i = 1; i < lines.size(); ++i) {
    if (lines[i].empty()) {
      continue;
    }
    std::vector<std::string> fields = StrSplit(lines[i], '\t');
    if (fields.size() < 3) {
      return CorruptionError("bad search result line");
    }
    SearchHit hit;
    hit.doc_id = std::strtoll(fields[0].c_str(), nullptr, 10);
    hit.score = std::strtod(fields[1].c_str(), nullptr);
    hit.title = fields[2];
    out.hits.push_back(std::move(hit));
  }
  return out;
}

void RegisterSearchShards(WorkerRegistry* registry, const std::vector<ShardPtr>& shards,
                          const SearchCostConfig& cost) {
  for (const ShardPtr& shard : shards) {
    registry->Register(SearchShardType(shard->shard_id()), [shard, cost] {
      return std::make_unique<SearchShardWorker>(shard, cost);
    });
  }
}

}  // namespace sns
