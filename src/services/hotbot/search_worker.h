// Search-shard workers: HotBot's non-interchangeable workers (paper §3.2, Table 1).
//
// "HotBot workers statically partition the search-engine database... each worker
// handles a subset of the database proportional to its CPU power, and every query
// goes to all workers in parallel." Each shard is its own worker *type*
// ("search-shard-N"), so the SNS manager never substitutes one partition for
// another; a crashed shard can be respawned anywhere because the (read-only) index
// is shared, modeling HotBot's RAID + fast-restart regime.

#ifndef SRC_SERVICES_HOTBOT_SEARCH_WORKER_H_
#define SRC_SERVICES_HOTBOT_SEARCH_WORKER_H_

#include <string>
#include <vector>

#include "src/services/hotbot/inverted_index.h"
#include "src/tacc/registry.h"
#include "src/tacc/worker.h"

namespace sns {

inline constexpr char kArgQuery[] = "query";
inline constexpr char kArgTopK[] = "k";

std::string SearchShardType(int shard_id);

struct SearchCostConfig {
  SimDuration fixed = Milliseconds(2);
  SimDuration per_thousand_postings = Milliseconds(3);
};

class SearchShardWorker : public TaccWorker {
 public:
  SearchShardWorker(ShardPtr shard, const SearchCostConfig& cost)
      : shard_(std::move(shard)), cost_(cost) {}

  std::string type() const override { return SearchShardType(shard_->shard_id()); }
  bool interchangeable() const override { return false; }
  TaccResult Process(const TaccRequest& request) override;
  SimDuration EstimateCost(const TaccRequest& request) const override;

 private:
  ShardPtr shard_;
  SearchCostConfig cost_;
};

// Wire format for shard results: one "doc_id<TAB>score<TAB>title" line per hit,
// first line "shard <id> docs <n>".
std::vector<uint8_t> EncodeSearchResults(int shard_id, int64_t doc_count,
                                         const std::vector<SearchHit>& hits);
struct DecodedSearchResults {
  int shard_id = -1;
  int64_t doc_count = 0;
  std::vector<SearchHit> hits;
};
Result<DecodedSearchResults> DecodeSearchResults(const std::vector<uint8_t>& bytes);

// Registers factories for all shards; each factory shares the immutable shard.
void RegisterSearchShards(WorkerRegistry* registry, const std::vector<ShardPtr>& shards,
                          const SearchCostConfig& cost = SearchCostConfig{});

}  // namespace sns

#endif  // SRC_SERVICES_HOTBOT_SEARCH_WORKER_H_
