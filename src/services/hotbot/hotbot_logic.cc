#include "src/services/hotbot/hotbot_logic.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "src/services/extras/palm_transform.h"
#include "src/util/strings.h"

namespace sns {

std::string HotBotLogic::SearchCacheKey(const std::string& query, int k) {
  return StrFormat("search|%s|k=%d", query.c_str(), k);
}

std::vector<uint8_t> HotBotLogic::RenderResultPage(const std::vector<SearchHit>& hits,
                                                   int reached, int total,
                                                   int64_t docs_searched) {
  std::string page = StrFormat("results %zu partitions %d/%d docs %lld\n", hits.size(),
                               reached, total, static_cast<long long>(docs_searched));
  for (const SearchHit& hit : hits) {
    page += StrFormat("%lld\t%.3f\t%s\n", static_cast<long long>(hit.doc_id), hit.score,
                      hit.title.c_str());
  }
  return std::vector<uint8_t>(page.begin(), page.end());
}

HotBotLogic::ParsedResultPage HotBotLogic::ParseResultPage(const std::vector<uint8_t>& bytes) {
  ParsedResultPage out;
  std::string text(bytes.begin(), bytes.end());
  std::vector<std::string> lines = StrSplit(text, '\n');
  if (lines.empty()) {
    return out;
  }
  long long docs = 0;
  std::sscanf(lines[0].c_str(), "results %d partitions %d/%d docs %lld", &out.result_count,
              &out.partitions_reached, &out.partitions_total, &docs);
  out.docs_searched = docs;
  for (size_t i = 1; i < lines.size(); ++i) {
    if (lines[i].empty()) {
      continue;
    }
    std::vector<std::string> fields = StrSplit(lines[i], '\t');
    if (fields.size() < 3) {
      continue;
    }
    SearchHit hit;
    hit.doc_id = std::strtoll(fields[0].c_str(), nullptr, 10);
    hit.score = std::strtod(fields[1].c_str(), nullptr);
    hit.title = fields[2];
    out.hits.push_back(std::move(hit));
  }
  return out;
}

void HotBotLogic::HandleRequest(RequestContext* ctx) {
  ctx->GetProfile([this](RequestContext* c, bool /*found*/, const UserProfile& profile) {
    c->SetProfile(profile);
    auto query_it = c->request().params.find(kArgQuery);
    std::string query = query_it != c->request().params.end() ? query_it->second : "";
    if (query.empty()) {
      c->Respond(InvalidArgumentError("missing query"), nullptr, ResponseSource::kError,
                 false);
      return;
    }
    auto page_it = c->request().params.find("page");
    int page = page_it != c->request().params.end()
                   ? std::max(1, std::atoi(page_it->second.c_str()))
                   : 1;
    if (!config_.cache_searches) {
      RunQuery(c, query, page);
      return;
    }
    // Incremental delivery (Table 1): all pages of a query share one cached result
    // set; only a full miss re-queries the partitions.
    c->CacheGet(SearchCacheKey(query, config_.cached_result_depth),
                [this, query, page](RequestContext* c2, bool hit, ContentPtr content) {
                  if (hit && content != nullptr) {
                    RespondPage(c2, ParseResultPage(content->bytes), page,
                                /*cache_hit=*/true);
                    return;
                  }
                  RunQuery(c2, query, page);
                });
  });
}

void HotBotLogic::RespondPage(RequestContext* ctx, const ParsedResultPage& full, int page,
                              bool cache_hit) {
  int k = static_cast<int>(
      ctx->profile().GetIntOr("results_per_page", config_.results_per_page));
  auto begin = static_cast<size_t>((page - 1) * k);
  std::vector<SearchHit> slice;
  for (size_t i = begin; i < full.hits.size() && slice.size() < static_cast<size_t>(k); ++i) {
    slice.push_back(full.hits[i]);
  }
  std::vector<uint8_t> body = RenderResultPage(slice, full.partitions_reached,
                                               full.partitions_total, full.docs_searched);
  MimeType mime = MimeType::kHtml;
  // "The HTTP front ends ... handle the presentation and customization of results
  // based on user preferences and browser type" (§3.2): thin clients get the
  // paginated SPOON rendering instead of HTML.
  if (ctx->profile().GetOr("browser", "html") == "palm") {
    std::string html(body.begin(), body.end());
    std::string spoon =
        SpoonFeed(html, static_cast<int>(ctx->profile().GetIntOr("palm_cols", 40)),
                  static_cast<int>(ctx->profile().GetIntOr("palm_rows", 12)));
    body.assign(spoon.begin(), spoon.end());
    mime = MimeType::kOther;
  }
  ContentPtr rendered = Content::Make(ctx->request().url, mime, std::move(body));
  bool partial = full.partitions_reached < full.partitions_total;
  ctx->Respond(Status::Ok(), rendered,
               partial ? ResponseSource::kCacheApproximate : ResponseSource::kDistilled,
               cache_hit);
}

void HotBotLogic::RunQuery(RequestContext* ctx, const std::string& query, int page) {
  // Scatter to every partition in parallel; gather with graceful degradation.
  struct GatherState {
    int expected = 0;
    int received = 0;
    int reached = 0;
    int64_t docs = 0;
    std::vector<SearchHit> hits;
  };
  auto state = std::make_shared<GatherState>();
  state->expected = config_.shard_count;

  auto finalize = [this, state, query, page](RequestContext* c) {
    std::sort(state->hits.begin(), state->hits.end(),
              [](const SearchHit& a, const SearchHit& b) {
                if (a.score != b.score) {
                  return a.score > b.score;
                }
                return a.doc_id < b.doc_id;
              });
    if (state->hits.size() > static_cast<size_t>(config_.cached_result_depth)) {
      state->hits.resize(static_cast<size_t>(config_.cached_result_depth));
    }
    ParsedResultPage full;
    full.partitions_reached = state->reached;
    full.partitions_total = state->expected;
    full.docs_searched = state->docs;
    full.hits = std::move(state->hits);
    if (config_.cache_searches) {
      // Cache the FULL result set (depth hits) so later pages of this query are
      // incremental deliveries from the cache.
      c->CachePut(SearchCacheKey(query, config_.cached_result_depth),
                  Content::Make(c->request().url, MimeType::kHtml,
                                RenderResultPage(full.hits, full.partitions_reached,
                                                 full.partitions_total, full.docs_searched)));
    }
    RespondPage(c, full, page, /*cache_hit=*/false);
  };

  for (int shard = 0; shard < config_.shard_count; ++shard) {
    std::map<std::string, std::string> args;
    args[kArgQuery] = query;
    args[kArgTopK] = StrFormat("%d", config_.cached_result_depth);
    for (const auto& [key, value] : ctx->request().params) {
      if (key.rfind("__", 0) == 0) {
        args[key] = value;  // Fault-injection markers.
      }
    }
    ctx->CallWorker(SearchShardType(shard), std::move(args), {},
                    [state, finalize](RequestContext* c, Status status, ContentPtr content) {
                      ++state->received;
                      if (status.ok() && content != nullptr) {
                        auto decoded = DecodeSearchResults(content->bytes);
                        if (decoded.ok()) {
                          ++state->reached;
                          state->docs += decoded->doc_count;
                          for (const SearchHit& hit : decoded->hits) {
                            state->hits.push_back(hit);
                          }
                        }
                      }
                      if (state->received == state->expected) {
                        finalize(c);
                      }
                    });
  }
}

}  // namespace sns
