#include "src/services/hotbot/hotbot.h"

namespace sns {

HotBotOptions DefaultHotBotOptions() {
  HotBotOptions options;
  options.shard_count = 8;
  options.logic.shard_count = options.shard_count;
  options.corpus.doc_count = 20000;

  // "The HTTP front ends in HotBot run 50-80 threads per node" (§3.2).
  options.sns.fe_thread_pool_size = 64;
  // Workers are statically bound to partitions; the queue-threshold spawner stays
  // out of the way (replacement after a crash still works via spawn requests).
  options.sns.spawn_threshold_h = 1e9;

  options.topology.front_ends = 2;
  options.topology.cache_nodes = 2;  // The integrated cache of recent searches.
  options.topology.worker_pool_nodes = options.shard_count + 2;  // Headroom for restarts.
  options.topology.with_origin = false;
  return options;
}

HotBotService::HotBotService(const HotBotOptions& options)
    : options_(options),
      shards_(BuildShardedCorpus(options.corpus, options.shard_count)),
      system_(options.sns, options.topology) {
  RegisterSearchShards(system_.registry(), shards_, options_.search_cost);
  HotBotLogicConfig logic_config = options_.logic;
  logic_config.shard_count = options_.shard_count;
  system_.set_logic_factory(
      [logic_config](int /*fe_index*/) { return std::make_shared<HotBotLogic>(logic_config); });
}

void HotBotService::Start() {
  system_.Start();
  for (int shard = 0; shard < options_.shard_count; ++shard) {
    system_.StartWorker(SearchShardType(shard));
  }
}

std::vector<Endpoint> HotBotService::LiveFrontEnds() const {
  std::vector<Endpoint> endpoints;
  for (FrontEndProcess* fe : system_.front_ends()) {
    endpoints.push_back(fe->endpoint());
  }
  return endpoints;
}

PlaybackEngine* HotBotService::AddPlaybackEngine(uint64_t seed) {
  NodeConfig client;
  client.workers_allowed = false;
  NodeId node = system_.cluster()->AddNode(client);
  PlaybackConfig config;
  config.seed = seed;
  config.front_ends = [this] { return LiveFrontEnds(); };
  config.availability = system_.availability();
  auto engine = std::make_unique<PlaybackEngine>(config);
  PlaybackEngine* raw = engine.get();
  ProcessId pid = system_.cluster()->Spawn(node, std::move(engine));
  if (pid == kInvalidProcess) {
    return nullptr;
  }
  playback_pids_.push_back(pid);
  return raw;
}

int64_t HotBotService::TotalDocuments() const {
  int64_t total = 0;
  for (const ShardPtr& shard : shards_) {
    total += shard->doc_count();
  }
  return total;
}

TraceRecord HotBotService::MakeQuery(const std::string& user, const std::string& query) const {
  TraceRecord record;
  record.user_id = user;
  record.url = "http://www.hotbot.com/search?q=" + query;
  record.params[kArgQuery] = query;
  (void)this;
  return record;
}

}  // namespace sns
