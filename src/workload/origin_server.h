// The origin server: the simulated Internet behind the proxy.
//
// Models the paper's cache-miss penalty (§4.4): "The miss penalty (i.e., the time
// to fetch data from the Internet) varies widely, from 100 ms through 100 seconds."
// Fetch latency is drawn from a heavy-tailed lognormal clipped to that range, on
// top of the (optionally 10 Mb/s) origin link's serialization delay.

#ifndef SRC_WORKLOAD_ORIGIN_SERVER_H_
#define SRC_WORKLOAD_ORIGIN_SERVER_H_

#include "src/cluster/process.h"
#include "src/sns/messages.h"
#include "src/util/rng.h"
#include "src/workload/content_universe.h"

namespace sns {

struct OriginConfig {
  uint64_t seed = 0x0121617;
  // Lognormal "wide-area RTT + server time" parameters; median ~600 ms with a tail
  // into tens of seconds, clipped to [min, max].
  double latency_mu = -0.5;   // log(seconds)
  double latency_sigma = 1.1;
  SimDuration min_latency = Milliseconds(100);
  SimDuration max_latency = Seconds(100);
  // Fraction of fetches that never return (unreachable servers); the FE's fetch
  // timeout is the only recovery.
  double blackhole_fraction = 0.0;
};

class OriginServerProcess : public Process {
 public:
  OriginServerProcess(const OriginConfig& config, ContentUniverse* universe);

  void OnMessage(const Message& msg) override;

  int64_t fetches_served() const { return fetches_; }
  int64_t bytes_served() const { return bytes_; }

 private:
  OriginConfig config_;
  ContentUniverse* universe_;
  Rng rng_;
  int64_t fetches_ = 0;
  int64_t bytes_ = 0;
};

}  // namespace sns

#endif  // SRC_WORKLOAD_ORIGIN_SERVER_H_
