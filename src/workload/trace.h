// Synthetic HTTP request traces with the burstiness structure of Fig. 6.
//
// The paper's traced load shows "a strong 24 hour cycle that is overlaid with
// shorter time-scale bursts" visible at 2-minute, 30-second and 1-second bucketings
// (5.8 req/s avg / 12.6 peak over 24 h; 8.1 avg / 20 peak over 3.5 min). The
// generator composes a diurnal sinusoid with two lognormal AR(1) modulation
// processes (minute-scale and second-scale), then draws per-second Poisson counts —
// reproducing bursts across all three displayed time scales.

#ifndef SRC_WORKLOAD_TRACE_H_
#define SRC_WORKLOAD_TRACE_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/util/rng.h"
#include "src/util/time.h"
#include "src/workload/content_universe.h"

namespace sns {

struct TraceRecord {
  SimTime time = 0;
  std::string user_id;
  std::string url;
  // Extra request parameters (e.g., HotBot's query string).
  std::map<std::string, std::string> params;
};

struct TraceGenConfig {
  uint64_t seed = 0x7124CE;
  SimDuration duration = Hours(24);
  double mean_rate = 5.8;           // Requests/second (paper Fig. 6a average).
  double diurnal_amplitude = 0.55;  // Peak-to-mean swing of the 24 h cycle.
  SimDuration diurnal_period = Hours(24);
  // Minute-scale modulation (AR(1) on log rate, stepped every minute).
  double slow_rho = 0.95;
  double slow_sigma = 0.22;
  // Second-scale modulation.
  double fast_rho = 0.90;
  double fast_sigma = 0.40;

  int64_t user_count = 8000;  // ~8000 distinct users surfed during the trace (§4.6).
  double user_zipf_skew = 0.7;
};

class TraceGenerator {
 public:
  TraceGenerator(const TraceGenConfig& config, const ContentUniverse* universe);

  // Streams records in time order. Returns the number generated.
  int64_t Generate(const std::function<void(const TraceRecord&)>& emit);

  // Convenience for small traces.
  std::vector<TraceRecord> GenerateVector();

  // The instantaneous target rate at `t` for the generator's current modulation
  // state — exposed for tests of the arrival model.
  double mean_rate() const { return config_.mean_rate; }

 private:
  TraceGenConfig config_;
  const ContentUniverse* universe_;
};

// Buckets record timestamps and reports per-bucket counts — the analysis behind
// Fig. 6's three panels. Returns counts indexed by bucket.
std::vector<int64_t> BucketCounts(const std::vector<SimTime>& times, SimDuration bucket,
                                  SimDuration total);

}  // namespace sns

#endif  // SRC_WORKLOAD_TRACE_H_
