#include "src/workload/size_model.h"

#include <algorithm>

namespace sns {

MimeType SizeModel::SampleMime(Rng* rng) const {
  double u = rng->NextDouble();
  if (u < config_.gif_fraction) {
    return MimeType::kGif;
  }
  u -= config_.gif_fraction;
  if (u < config_.html_fraction) {
    return MimeType::kHtml;
  }
  u -= config_.html_fraction;
  if (u < config_.jpeg_fraction) {
    return MimeType::kJpeg;
  }
  return MimeType::kOther;
}

int64_t SizeModel::SampleSize(MimeType mime, Rng* rng) const {
  switch (mime) {
    case MimeType::kHtml:
      return Clamp(rng->LogNormal(config_.html_mu, config_.html_sigma));
    case MimeType::kGif:
      if (rng->NextDouble() < config_.gif_icon_fraction) {
        return Clamp(rng->LogNormal(config_.gif_icon_mu, config_.gif_icon_sigma));
      }
      return Clamp(rng->LogNormal(config_.gif_photo_mu, config_.gif_photo_sigma));
    case MimeType::kJpeg:
      return Clamp(rng->LogNormal(config_.jpeg_mu, config_.jpeg_sigma));
    case MimeType::kOther:
      return Clamp(rng->LogNormal(config_.other_mu, config_.other_sigma));
  }
  return config_.min_bytes;
}

bool SizeModel::SampleErrorPage(MimeType mime, Rng* rng) const {
  if (mime != MimeType::kGif && mime != MimeType::kJpeg) {
    return false;
  }
  return rng->NextDouble() < config_.error_page_fraction;
}

int64_t SizeModel::Clamp(double bytes) const {
  auto b = static_cast<int64_t>(bytes);
  return std::clamp(b, config_.min_bytes, config_.max_bytes);
}

}  // namespace sns
