#include "src/workload/playback.h"

#include "src/util/logging.h"

namespace sns {

PlaybackEngine::PlaybackEngine(const PlaybackConfig& config)
    : Process("playback"), config_(config), rng_(config.seed) {}

void PlaybackEngine::OnStop() { StopLoad(); }

void PlaybackEngine::StartConstantRate(double requests_per_second,
                                       std::function<TraceRecord()> next) {
  next_fn_ = std::move(next);
  rate_ = requests_per_second;
  if (rate_event_ == kInvalidEventId && rate_ > 0) {
    rate_event_ = After(Seconds(1.0 / rate_), [this] { ConstantRateTick(); });
  }
}

void PlaybackEngine::SetRate(double requests_per_second) { rate_ = requests_per_second; }

void PlaybackEngine::StopLoad() {
  if (rate_event_ != kInvalidEventId) {
    CancelTimer(rate_event_);
    rate_event_ = kInvalidEventId;
  }
  rate_ = 0;
  trace_.clear();
  trace_pos_ = 0;
}

void PlaybackEngine::ConstantRateTick() {
  rate_event_ = kInvalidEventId;
  if (rate_ <= 0 || !next_fn_) {
    return;
  }
  SendRequest(next_fn_());
  rate_event_ = After(Seconds(1.0 / rate_), [this] { ConstantRateTick(); });
}

void PlaybackEngine::PlayTrace(std::vector<TraceRecord> records, SimDuration lead_in) {
  trace_ = std::move(records);
  trace_pos_ = 0;
  if (trace_.empty()) {
    return;
  }
  trace_offset_ = sim()->now() + lead_in - trace_.front().time;
  PlayNextFromTrace();
}

void PlaybackEngine::PlayNextFromTrace() {
  if (trace_pos_ >= trace_.size()) {
    trace_.clear();
    return;
  }
  const TraceRecord& record = trace_[trace_pos_];
  SimTime fire_at = record.time + trace_offset_;
  SimDuration delay = fire_at > sim()->now() ? fire_at - sim()->now() : 0;
  After(delay, [this] {
    if (trace_pos_ < trace_.size()) {
      SendRequest(trace_[trace_pos_]);
      ++trace_pos_;
      PlayNextFromTrace();
    }
  });
}

Endpoint PlaybackEngine::PickFrontEnd() {
  if (!config_.front_ends) {
    return Endpoint{};
  }
  std::vector<Endpoint> fes = config_.front_ends();
  if (fes.empty()) {
    return Endpoint{};
  }
  fe_rr_ = (fe_rr_ + 1) % fes.size();
  return fes[fe_rr_];
}

uint64_t PlaybackEngine::SendRequest(const TraceRecord& record,
                                     std::map<std::string, std::string> params) {
  ++sent_;
  if (config_.availability != nullptr) {
    config_.availability->RecordOffered(sim()->now());
  }
  Endpoint fe = PickFrontEnd();
  if (!fe.valid()) {
    ++send_failures_;  // No live front end at all right now.
    if (config_.availability != nullptr) {
      config_.availability->RecordUnanswered(sim()->now(), "send_failed");
    }
    return 0;
  }
  uint64_t id = next_request_id_++;
  auto payload = std::make_shared<ClientRequestPayload>();
  payload->client_request_id = id;
  payload->url = record.url;
  payload->user_id = record.user_id;
  payload->params = record.params;
  for (auto& [key, value] : params) {
    payload->params[key] = std::move(value);
  }
  if (config_.request_deadline > 0) {
    payload->deadline = sim()->now() + config_.request_deadline;
  }

  PendingRequest pending;
  pending.sent_at = sim()->now();
  pending.deadline = payload->deadline;
  pending.user_id = record.user_id;
  pending.trace = StartTrace();  // Root span: the whole client-observed request.
  pending.timeout = After(config_.request_timeout, [this, id] {
    auto it = pending_.find(id);
    if (it != pending_.end()) {
      RecordSpan(it->second.trace, "client.request", it->second.sent_at, "timeout");
      pending_.erase(it);
      ++timeouts_;
      if (config_.availability != nullptr) {
        config_.availability->RecordUnanswered(sim()->now(), "timeout");
      }
    }
  });
  pending_[id] = pending;

  Message msg;
  msg.dst = fe;
  msg.type = kMsgClientRequest;
  msg.transport = Transport::kReliable;
  msg.size_bytes = WireSizeOf(*payload);
  msg.payload = payload;
  msg.trace = pending.trace;
  San::SendOptions opts;
  opts.on_failed = [this, id](const Message&) {
    // The chosen front end is gone; client-side balancing will route the next
    // request elsewhere. This one is counted as a failure.
    auto it = pending_.find(id);
    if (it != pending_.end()) {
      RecordSpan(it->second.trace, "client.request", it->second.sent_at, "send_failed");
      CancelTimer(it->second.timeout);
      pending_.erase(it);
      ++send_failures_;
      if (config_.availability != nullptr) {
        config_.availability->RecordUnanswered(sim()->now(), "send_failed");
      }
    }
  };
  uint64_t trace_id = pending.trace.trace_id;
  Send(std::move(msg), std::move(opts));
  return trace_id;
}

void PlaybackEngine::OnMessage(const Message& msg) {
  if (msg.type != kMsgClientResponse) {
    return;
  }
  const auto& reply = static_cast<const ClientResponsePayload&>(*msg.payload);
  auto it = pending_.find(reply.client_request_id);
  if (it == pending_.end()) {
    return;  // Already timed out.
  }
  double latency = ToSeconds(sim()->now() - it->second.sent_at);
  SimTime deadline = it->second.deadline;
  std::string user_id = std::move(it->second.user_id);
  RecordSpan(it->second.trace, "client.request", it->second.sent_at,
             reply.status.ok() ? "ok" : "error");
  CancelTimer(it->second.timeout);
  pending_.erase(it);
  if (config_.on_response) {
    config_.on_response(user_id, reply.status.ok());
  }

  ++completed_;
  bool late = deadline != kTimeNever && sim()->now() > deadline;
  if (reply.status.ok() && late) {
    ++late_completions_;
  }
  if (config_.availability != nullptr) {
    // Ledger semantics: an answer counts toward yield only if it was an OK
    // response delivered inside the client's deadline. A late OK answered
    // nobody — by then the user has navigated away (§4.5's whole premise).
    if (reply.status.ok() && !late) {
      config_.availability->RecordAnswered(sim()->now(), ResponseHarvest(reply.source));
    } else {
      config_.availability->RecordUnanswered(sim()->now(),
                                             reply.status.ok() ? "late" : "error");
    }
  }
  latency_s_.Add(latency);
  latency_hist_.Add(latency);
  ++by_source_[ResponseSourceName(reply.source)];
  ++completions_sec_[sim()->now() / kSecond];
  if (!reply.status.ok()) {
    ++errors_;
  }
  if (reply.content != nullptr) {
    bytes_received_ += reply.content->size();
  }
}

double PlaybackEngine::RecentThroughput(SimDuration window) const {
  if (window <= 0) {
    return 0;
  }
  int64_t now_sec = sim()->now() / kSecond;
  int64_t from_sec = now_sec - window / kSecond;
  int64_t count = 0;
  for (auto it = completions_sec_.lower_bound(from_sec); it != completions_sec_.end(); ++it) {
    count += it->second;
  }
  return static_cast<double>(count) / ToSeconds(window);
}

void PlaybackEngine::ResetStats() {
  sent_ = 0;
  completed_ = 0;
  errors_ = 0;
  timeouts_ = 0;
  send_failures_ = 0;
  late_completions_ = 0;
  bytes_received_ = 0;
  latency_s_ = RunningStats();
  latency_hist_ = Histogram(0.0, 30.0, 3000);
  by_source_.clear();
  completions_sec_.clear();
}

}  // namespace sns
