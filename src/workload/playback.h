// The trace playback engine (paper §4.1).
//
// "The engine can generate requests at a constant (and dynamically tunable) rate,
// or it can faithfully play back a trace according to the timestamps in the trace
// file." It doubles as the client population: it applies client-side front-end
// selection (round-robin over the currently live FEs — the role the paper gives
// client-side JavaScript), per-request timeouts, and detailed latency accounting.

#ifndef SRC_WORKLOAD_PLAYBACK_H_
#define SRC_WORKLOAD_PLAYBACK_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/cluster/process.h"
#include "src/obs/availability.h"
#include "src/sim/timer.h"
#include "src/sns/messages.h"
#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/workload/trace.h"

namespace sns {

struct PlaybackConfig {
  uint64_t seed = 0xCAFE;
  SimDuration request_timeout = Seconds(30);
  // When > 0, each request carries an absolute deadline of now + request_deadline;
  // the service sheds the request wherever it is when the deadline passes. 0 keeps
  // the legacy best-effort behavior (no deadline on the wire).
  SimDuration request_deadline = 0;
  // Client-side load balancing: returns the currently live front ends. Re-queried
  // for every request, masking transient FE failures (§3.1.2).
  std::function<std::vector<Endpoint>()> front_ends;
  // Fired once per completed request (not for timeouts / send failures) with the
  // request's user id and whether the service answered Ok. The chaos campaign's
  // write ledger uses this to mark which profile writes the client saw
  // acknowledged.
  std::function<void(const std::string& user_id, bool ok)> on_response;
  // When set, every request is entered into the harvest/yield ledger: offered at
  // send time, answered (with a harvest fraction derived from the response's
  // provenance) or unanswered (timeout / error / late / no reachable FE) at
  // resolution. Not owned. TranSendService wires its system ledger in by default.
  AvailabilityLedger* availability = nullptr;
};

class PlaybackEngine : public Process {
 public:
  explicit PlaybackEngine(const PlaybackConfig& config);

  void OnStop() override;

  // --- Load generation ------------------------------------------------------------
  // Constant-rate mode: issues `next` every 1/rate seconds until StopLoad or rate
  // change. Rate may be changed on the fly (the "dynamically tunable" knob).
  void StartConstantRate(double requests_per_second, std::function<TraceRecord()> next);
  void SetRate(double requests_per_second);
  void StopLoad();

  // Trace mode: plays `records` (sorted by time) with timestamps offset to start
  // `lead_in` from now.
  void PlayTrace(std::vector<TraceRecord> records, SimDuration lead_in = Seconds(1));

  // One-shot request (tests and examples). Returns the trace id of the root span
  // opened for the request (0 if no front end was reachable).
  uint64_t SendRequest(const TraceRecord& record,
                       std::map<std::string, std::string> params = {});

  // --- Results --------------------------------------------------------------------
  int64_t sent() const { return sent_; }
  int64_t completed() const { return completed_; }
  int64_t errors() const { return errors_; }        // Error statuses from the service.
  int64_t timeouts() const { return timeouts_; }    // No response at all.
  int64_t send_failures() const { return send_failures_; }
  // OK responses that arrived after the request's deadline — should stay zero when
  // the service enforces deadlines end to end.
  int64_t late_completions() const { return late_completions_; }
  int64_t bytes_received() const { return bytes_received_; }
  int64_t outstanding() const { return static_cast<int64_t>(pending_.size()); }
  const RunningStats& latency_stats() const { return latency_s_; }
  const Histogram& latency_histogram() const { return latency_hist_; }
  const std::map<std::string, int64_t>& responses_by_source() const { return by_source_; }
  // Completed-request counts bucketed by second of completion (throughput curves).
  const std::map<int64_t, int64_t>& completions_per_second() const { return completions_sec_; }
  // Observed service throughput over the last `window` (completions/second).
  double RecentThroughput(SimDuration window) const;
  void ResetStats();

 private:
  struct PendingRequest {
    SimTime sent_at = 0;
    SimTime deadline = kTimeNever;
    EventId timeout = kInvalidEventId;
    TraceContext trace;  // Root span of the request's end-to-end trace.
    std::string user_id;
  };

  void OnMessage(const Message& msg) override;
  void ConstantRateTick();
  void PlayNextFromTrace();
  Endpoint PickFrontEnd();

  PlaybackConfig config_;
  Rng rng_;
  uint64_t next_request_id_ = 1;
  size_t fe_rr_ = 0;

  // Constant-rate state.
  double rate_ = 0;
  std::function<TraceRecord()> next_fn_;
  EventId rate_event_ = kInvalidEventId;

  // Trace state.
  std::vector<TraceRecord> trace_;
  size_t trace_pos_ = 0;
  SimTime trace_offset_ = 0;

  std::unordered_map<uint64_t, PendingRequest> pending_;

  int64_t sent_ = 0;
  int64_t completed_ = 0;
  int64_t errors_ = 0;
  int64_t timeouts_ = 0;
  int64_t send_failures_ = 0;
  int64_t late_completions_ = 0;
  int64_t bytes_received_ = 0;
  RunningStats latency_s_;
  Histogram latency_hist_{0.0, 30.0, 3000};
  std::map<std::string, int64_t> by_source_;
  std::map<int64_t, int64_t> completions_sec_;
};

}  // namespace sns

#endif  // SRC_WORKLOAD_PLAYBACK_H_
