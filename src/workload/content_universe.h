// The simulated web: a deterministic mapping from URLs to content.
//
// Stands in for the live Internet behind the paper's proxy. Every URL's content is
// a pure function of (universe seed, url), so runs are reproducible and any
// component can regenerate the same bytes — which is precisely the property BASE
// soft state relies on ("transformed content ... can be regenerated from the
// original", §3.1.8).
//
// Two content modes:
//   - real:   images are synthesized and actually encoded with the SGIF/SJPG codecs,
//             so distillers run genuine pixel transforms. Costs real host CPU;
//             meant for examples, tests, and small universes.
//   - opaque: content is random bytes of the modeled size (not decodable).
//             Distillers detect this and fall back to a calibrated size-reduction
//             model, keeping SAN/cache byte counts realistic at negligible host
//             cost; meant for large-scale benchmarks.
// HTML is always real (generation is cheap), so the HTML munger always does real
// string rewriting.

#ifndef SRC_WORKLOAD_CONTENT_UNIVERSE_H_
#define SRC_WORKLOAD_CONTENT_UNIVERSE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/content/content.h"
#include "src/workload/size_model.h"

namespace sns {

struct ContentUniverseConfig {
  uint64_t seed = 0xBE12C0DE;
  int64_t url_count = 10000;
  SizeModelConfig sizes;
  // Encode real raster images when the modeled size is at most this; 0 = always
  // opaque imagery.
  int64_t real_image_max_bytes = 0;
  double zipf_skew = 0.8;  // URL popularity for SamplePopularUrl.
};

class ContentUniverse {
 public:
  explicit ContentUniverse(const ContentUniverseConfig& config);

  // The i-th URL (0 <= i < url_count). URL extensions encode the MIME type.
  std::string UrlAt(int64_t index) const;
  int64_t url_count() const { return config_.url_count; }

  // Zipf-popularity URL draw (popular pages dominate, giving cache locality).
  std::string SamplePopularUrl(Rng* rng) const;

  // Deterministic content for a URL (memoized). Unknown URLs still produce
  // deterministic content keyed by their hash.
  ContentPtr GetContent(const std::string& url);

  // Modeled (pre-generation) size of a URL's content; cheap, no synthesis.
  int64_t ModeledSize(const std::string& url) const;
  MimeType MimeOf(const std::string& url) const;

  const SizeModel& size_model() const { return size_model_; }

  size_t generated_count() const { return cache_.size(); }
  int64_t generated_bytes() const { return generated_bytes_; }

 private:
  struct UrlTraits {
    MimeType mime = MimeType::kOther;
    int64_t size = 0;
    bool error_page = false;
  };
  UrlTraits TraitsOf(const std::string& url) const;
  ContentPtr Generate(const std::string& url, const UrlTraits& traits) const;

  ContentUniverseConfig config_;
  SizeModel size_model_;
  std::unordered_map<std::string, ContentPtr> cache_;
  int64_t generated_bytes_ = 0;
};

// True if `bytes` are real decodable content for their MIME type (images only;
// opaque blobs fail the magic check).
bool IsRealImage(MimeType mime, const std::vector<uint8_t>& bytes);

}  // namespace sns

#endif  // SRC_WORKLOAD_CONTENT_UNIVERSE_H_
