#include "src/workload/content_universe.h"

#include <algorithm>
#include <cmath>

#include "src/content/gif_codec.h"
#include "src/content/html.h"
#include "src/content/image.h"
#include "src/content/jpeg_codec.h"
#include "src/util/strings.h"

namespace sns {

namespace {

const char* ExtensionFor(MimeType mime) {
  switch (mime) {
    case MimeType::kHtml:
      return "html";
    case MimeType::kGif:
      return "gif";
    case MimeType::kJpeg:
      return "jpg";
    case MimeType::kOther:
      return "dat";
  }
  return "dat";
}

// Pads encoded content with trailing bytes up to `target` — decoders stop at the
// logical end of stream, so padding is ignored on decode but counts on the wire.
void PadTo(std::vector<uint8_t>* bytes, int64_t target, Rng* rng) {
  while (static_cast<int64_t>(bytes->size()) < target) {
    bytes->push_back(static_cast<uint8_t>(rng->UniformInt(0, 255)));
  }
}

}  // namespace

bool IsRealImage(MimeType mime, const std::vector<uint8_t>& bytes) {
  if (mime == MimeType::kGif) {
    return IsGif(bytes);
  }
  if (mime == MimeType::kJpeg) {
    return IsJpeg(bytes);
  }
  return false;
}

ContentUniverse::ContentUniverse(const ContentUniverseConfig& config)
    : config_(config), size_model_(config.sizes) {}

std::string ContentUniverse::UrlAt(int64_t index) const {
  // Derive the mime type for this slot deterministically from the index.
  Rng rng(config_.seed ^ (0x51AB1E5ULL + static_cast<uint64_t>(index) * 0x9E3779B97F4A7C15ULL));
  MimeType mime = size_model_.SampleMime(&rng);
  return StrFormat("http://site%lld.example.edu/obj%lld.%s",
                   static_cast<long long>(index % 977), static_cast<long long>(index),
                   ExtensionFor(mime));
}

std::string ContentUniverse::SamplePopularUrl(Rng* rng) const {
  int64_t rank = rng->Zipf(config_.url_count, config_.zipf_skew);
  return UrlAt(rank);
}

ContentUniverse::UrlTraits ContentUniverse::TraitsOf(const std::string& url) const {
  UrlTraits traits;
  traits.mime = MimeTypeFromUrl(url);
  Rng rng(config_.seed ^ Fnv1a(url));
  traits.error_page = size_model_.SampleErrorPage(traits.mime, &rng);
  if (traits.error_page) {
    traits.size = rng.UniformInt(size_model_.config().error_page_min,
                                 size_model_.config().error_page_max);
  } else {
    traits.size = size_model_.SampleSize(traits.mime, &rng);
  }
  return traits;
}

int64_t ContentUniverse::ModeledSize(const std::string& url) const {
  return TraitsOf(url).size;
}

MimeType ContentUniverse::MimeOf(const std::string& url) const {
  return MimeTypeFromUrl(url);
}

ContentPtr ContentUniverse::GetContent(const std::string& url) {
  auto it = cache_.find(url);
  if (it != cache_.end()) {
    return it->second;
  }
  ContentPtr content = Generate(url, TraitsOf(url));
  generated_bytes_ += content->size();
  cache_[url] = content;
  return content;
}

ContentPtr ContentUniverse::Generate(const std::string& url, const UrlTraits& traits) const {
  Rng rng(config_.seed ^ Fnv1a(url) ^ 0xC0FFEE);
  std::vector<uint8_t> bytes;

  if (traits.error_page) {
    // An HTML error message served under an image URL (Fig. 5's spikes).
    std::string body = "<html><body><h1>404 Not Found</h1><p>" + url +
                       " could not be located on this server.</p></body></html>";
    bytes.assign(body.begin(), body.end());
    PadTo(&bytes, traits.size, &rng);
    return Content::Make(url, traits.mime, std::move(bytes));
  }

  switch (traits.mime) {
    case MimeType::kHtml: {
      HtmlGenOptions options;
      // Scale prose volume to approximate the target size (~7 bytes per word).
      int64_t body_budget = std::max<int64_t>(traits.size - 300, 100);
      options.paragraphs = std::max(1, static_cast<int>(body_budget / 500));
      options.words_per_paragraph =
          std::max(10, static_cast<int>(body_budget / (7 * options.paragraphs)));
      options.inline_images = static_cast<int>(rng.UniformInt(0, 5));
      options.links = static_cast<int>(rng.UniformInt(1, 8));
      std::string page = GenerateHtmlPage(&rng, options);
      bytes.assign(page.begin(), page.end());
      // Pad with an HTML comment so the page stays well-formed.
      if (static_cast<int64_t>(bytes.size()) < traits.size) {
        std::string pad = "<!-- ";
        bytes.insert(bytes.end(), pad.begin(), pad.end());
        while (static_cast<int64_t>(bytes.size()) < traits.size - 4) {
          bytes.push_back(static_cast<uint8_t>('a' + rng.UniformInt(0, 25)));
        }
        std::string close = " -->";
        bytes.insert(bytes.end(), close.begin(), close.end());
      }
      break;
    }
    case MimeType::kGif:
    case MimeType::kJpeg: {
      bool real = traits.size <= config_.real_image_max_bytes;
      if (real) {
        // Choose dimensions so the encoded size lands near the target, then pad.
        bool jpeg = traits.mime == MimeType::kJpeg;
        bool icon = !jpeg && traits.size < 1024;
        double bpp = jpeg ? 0.18 : (icon ? 0.14 : 0.75);
        double pixels = std::max(64.0, static_cast<double>(traits.size) / bpp);
        int width = std::clamp(static_cast<int>(std::sqrt(pixels * 4.0 / 3.0)), 8, 1024);
        int height = std::clamp(static_cast<int>(pixels / width), 8, 1024);
        RasterImage img = icon ? SynthesizeIcon(&rng, width, height)
                               : SynthesizePhoto(&rng, width, height);
        bytes = jpeg ? JpegEncode(img, 85) : GifEncode(img, icon ? 32 : 128);
        PadTo(&bytes, traits.size, &rng);
      } else {
        // Opaque image: correct size, undecodable (no codec magic).
        bytes.resize(static_cast<size_t>(traits.size));
        for (auto& b : bytes) {
          b = static_cast<uint8_t>(rng.UniformInt(0, 255));
        }
        if (bytes.size() >= 2) {
          bytes[0] = 'X';  // Ensure the magic check fails.
          bytes[1] = 'X';
        }
      }
      break;
    }
    case MimeType::kOther: {
      bytes.resize(static_cast<size_t>(traits.size));
      for (auto& b : bytes) {
        b = static_cast<uint8_t>(rng.UniformInt(0, 255));
      }
      break;
    }
  }
  return Content::Make(url, traits.mime, std::move(bytes));
}

}  // namespace sns
