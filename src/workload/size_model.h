// Content-length distributions calibrated to the paper's trace statistics (Fig. 5).
//
// From §4.1: GIF, HTML, JPEG are 50%/22%/18% of requests; average content lengths
// are HTML 5131 B, GIF 3428 B, JPEG 12070 B. The GIF distribution is bimodal with a
// plateau below 1 KB (icons, bullets) and one above (photos, cartoons) — the 1 KB
// distillation threshold "exactly separates these two classes". JPEGs fall off
// rapidly below 1 KB. A small fraction of "image" URLs are actually HTML error
// messages mistaken for images by extension (the spikes at the left of Fig. 5).

#ifndef SRC_WORKLOAD_SIZE_MODEL_H_
#define SRC_WORKLOAD_SIZE_MODEL_H_

#include <cstdint>

#include "src/content/mime.h"
#include "src/util/rng.h"

namespace sns {

struct SizeModelConfig {
  // Request mix (§4.1). The remainder is "other" (passed through undistilled).
  double gif_fraction = 0.50;
  double html_fraction = 0.22;
  double jpeg_fraction = 0.18;

  // Lognormal parameters, chosen so the means match the paper's.
  double html_mu = 8.043;  // mean ~5131 B
  double html_sigma = 1.0;
  double gif_icon_fraction = 0.55;  // The sub-1KB plateau.
  double gif_icon_mu = 5.678;       // mean ~350 B
  double gif_icon_sigma = 0.6;
  double gif_photo_mu = 8.56;       // mean ~7190 B; overall GIF mean ~3428 B
  double gif_photo_sigma = 0.8;
  double jpeg_mu = 9.037;           // mean ~12070 B
  double jpeg_sigma = 0.85;
  double other_mu = 7.6;
  double other_sigma = 1.2;

  // Fraction of image URLs that are really error pages (Fig. 5's left spikes).
  double error_page_fraction = 0.02;
  int64_t error_page_min = 180;
  int64_t error_page_max = 420;

  int64_t min_bytes = 24;
  int64_t max_bytes = 1000000;  // Fig. 5's x-axis tops out at 1e6.
};

class SizeModel {
 public:
  explicit SizeModel(const SizeModelConfig& config = SizeModelConfig{}) : config_(config) {}

  // Draws a MIME type according to the request mix.
  MimeType SampleMime(Rng* rng) const;

  // Draws an encoded content length for the given type.
  int64_t SampleSize(MimeType mime, Rng* rng) const;

  // True if this particular image URL should be an error page in disguise.
  bool SampleErrorPage(MimeType mime, Rng* rng) const;

  const SizeModelConfig& config() const { return config_; }

 private:
  int64_t Clamp(double bytes) const;

  SizeModelConfig config_;
};

}  // namespace sns

#endif  // SRC_WORKLOAD_SIZE_MODEL_H_
