#include "src/workload/trace.h"

#include <cmath>

#include "src/util/strings.h"

namespace sns {

TraceGenerator::TraceGenerator(const TraceGenConfig& config, const ContentUniverse* universe)
    : config_(config), universe_(universe) {}

int64_t TraceGenerator::Generate(const std::function<void(const TraceRecord&)>& emit) {
  Rng rng(config_.seed);
  Rng url_rng = rng.Fork();
  Rng user_rng = rng.Fork();

  // Normalize the lognormal modulators to unit mean: E[exp(X)] = exp(sigma_st^2/2)
  // for the stationary X ~ N(0, sigma_st^2) with sigma_st^2 = sigma^2/(1-rho^2)...
  // Here the step noise has stddev sigma*sqrt(1-rho^2), making the stationary
  // stddev exactly sigma, so subtract sigma^2/2.
  double slow_x = 0.0;
  double fast_x = 0.0;
  double slow_correction = config_.slow_sigma * config_.slow_sigma / 2.0;
  double fast_correction = config_.fast_sigma * config_.fast_sigma / 2.0;

  int64_t total_seconds = config_.duration / kSecond;
  int64_t generated = 0;
  for (int64_t sec = 0; sec < total_seconds; ++sec) {
    if (sec % 60 == 0) {
      double noise = rng.Normal(0.0, config_.slow_sigma *
                                         std::sqrt(1.0 - config_.slow_rho * config_.slow_rho));
      slow_x = config_.slow_rho * slow_x + noise;
    }
    double fast_noise = rng.Normal(0.0, config_.fast_sigma *
                                            std::sqrt(1.0 - config_.fast_rho * config_.fast_rho));
    fast_x = config_.fast_rho * fast_x + fast_noise;

    double t_frac = static_cast<double>(sec * kSecond) / static_cast<double>(config_.diurnal_period);
    // Trough in the early morning, peak in the evening (paper Fig. 6a).
    double diurnal = 1.0 + config_.diurnal_amplitude * std::sin(2.0 * M_PI * t_frac - M_PI / 2);
    double rate = config_.mean_rate * diurnal * std::exp(slow_x - slow_correction) *
                  std::exp(fast_x - fast_correction);
    int64_t count = rng.Poisson(rate);
    for (int64_t i = 0; i < count; ++i) {
      TraceRecord record;
      record.time = sec * kSecond + rng.UniformInt(0, kSecond - 1);
      int64_t user = user_rng.Zipf(config_.user_count, config_.user_zipf_skew);
      record.user_id = StrFormat("user%lld", static_cast<long long>(user));
      record.url = universe_ != nullptr ? universe_->SamplePopularUrl(&url_rng)
                                        : StrFormat("http://example.edu/obj%lld.html",
                                                    static_cast<long long>(i));
      emit(record);
      ++generated;
    }
  }
  return generated;
}

std::vector<TraceRecord> TraceGenerator::GenerateVector() {
  std::vector<TraceRecord> records;
  Generate([&records](const TraceRecord& r) { records.push_back(r); });
  // Within-second timestamps are random; sort so playback sees ordered times.
  std::sort(records.begin(), records.end(),
            [](const TraceRecord& a, const TraceRecord& b) { return a.time < b.time; });
  return records;
}

std::vector<int64_t> BucketCounts(const std::vector<SimTime>& times, SimDuration bucket,
                                  SimDuration total) {
  auto buckets = static_cast<size_t>((total + bucket - 1) / bucket);
  std::vector<int64_t> counts(buckets, 0);
  for (SimTime t : times) {
    if (t >= 0 && t < total) {
      ++counts[static_cast<size_t>(t / bucket)];
    }
  }
  return counts;
}

}  // namespace sns
