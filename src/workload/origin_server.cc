#include "src/workload/origin_server.h"

#include <algorithm>

namespace sns {

OriginServerProcess::OriginServerProcess(const OriginConfig& config, ContentUniverse* universe)
    : Process("origin"), config_(config), universe_(universe), rng_(config.seed) {}

void OriginServerProcess::OnMessage(const Message& msg) {
  if (msg.type != kMsgFetchRequest) {
    return;
  }
  auto fetch = std::static_pointer_cast<const FetchRequestPayload>(msg.payload);
  if (config_.blackhole_fraction > 0 && rng_.Bernoulli(config_.blackhole_fraction)) {
    return;  // Unreachable server; the front end's timeout handles it.
  }
  double latency_s = rng_.LogNormal(config_.latency_mu, config_.latency_sigma);
  SimDuration delay = std::clamp(Seconds(latency_s), config_.min_latency, config_.max_latency);
  After(delay, [this, fetch] {
    ContentPtr content = universe_->GetContent(fetch->url);
    ++fetches_;
    bytes_ += content->size();
    auto reply = std::make_shared<FetchResponsePayload>();
    reply->op_id = fetch->op_id;
    reply->status = Status::Ok();
    reply->content = content;
    Message out;
    out.dst = fetch->reply_to;
    out.type = kMsgFetchResponse;
    out.transport = Transport::kReliable;
    out.size_bytes = 96 + content->size();
    out.payload = reply;
    Send(std::move(out));
  });
}

}  // namespace sns
