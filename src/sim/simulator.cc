#include "src/sim/simulator.h"

#include <algorithm>

#include "src/obs/profiler.h"
#include "src/util/logging.h"

namespace sns {

namespace {

// EventId <-> (record index, generation). Index is biased by one so that the
// all-zero id stays invalid.
inline EventId MakeId(uint32_t ri, uint32_t gen) {
  return (static_cast<uint64_t>(gen) << 32) | (static_cast<uint64_t>(ri) + 1);
}
inline bool SplitId(EventId id, uint32_t* ri, uint32_t* gen) {
  uint32_t lo = static_cast<uint32_t>(id & 0xFFFFFFFFull);
  if (lo == 0) return false;
  *ri = lo - 1;
  *gen = static_cast<uint32_t>(id >> 32);
  return true;
}

}  // namespace

int Simulator::Bitmap256::FindFrom(uint32_t from) const {
  if (from >= kSlotCount) return -1;
  uint32_t word = from >> 6;
  uint64_t masked = w[word] & (~0ull << (from & 63));
  while (true) {
    if (masked != 0) {
      return static_cast<int>((word << 6) + __builtin_ctzll(masked));
    }
    if (++word == 4) return -1;
    masked = w[word];
  }
}

Simulator::Simulator() {
  for (int l = 0; l < kLevels; ++l) {
    slots_[l].assign(kSlotCount, kNil);
  }
  Logger::Get().set_time_source([this] { return now_; });
}

Simulator::~Simulator() { Logger::Get().clear_time_source(); }

// --- Slab --------------------------------------------------------------------

uint32_t Simulator::AllocRec() {
  if (free_head_ != kNil) {
    uint32_t ri = free_head_;
    free_head_ = RecAt(ri).next;
    return ri;
  }
  if ((rec_count_ & kChunkMask) == 0) {
    chunks_.push_back(std::make_unique<Rec[]>(kChunkSize));
  }
  return rec_count_++;
}

void Simulator::FreeRec(uint32_t ri) {
  Rec& r = RecAt(ri);
  r.cb.Reset();
  r.gen++;  // Invalidates every outstanding EventId for this slot.
  r.state = RecState::kFree;
  r.next = free_head_;
  r.prev = kNil;
  free_head_ = ri;
}

// --- Scheduling --------------------------------------------------------------

EventId Simulator::Schedule(SimDuration delay, SimCallback fn) {
  if (delay < 0) delay = 0;
  return ScheduleAt(now_ + delay, std::move(fn));
}

EventId Simulator::ScheduleAt(SimTime t, SimCallback fn) {
  // Strided: schedule runs ~100 ns, so per-call clock reads would dominate.
  SNS_PROFILE_ZONE_STRIDE("sim.schedule", 7);
  if (t < now_) t = now_;
  uint32_t ri = AllocRec();
  Rec& r = RecAt(ri);
  r.time = t;
  r.seq = next_seq_++;
  r.cb = std::move(fn);
  ++pending_;
  return Place(ri);
}

EventId Simulator::Place(uint32_t ri) {
  Rec& r = RecAt(ri);
  uint64_t tick = TickOf(r.time);
  if (tick <= cur_tick_) {
    // At or behind the wheel cursor (which may have run ahead of now_ during a
    // structural peek): merge straight into the due list, keeping it sorted.
    r.state = RecState::kInDue;
    InsertDueSorted(ri);
  } else {
    uint64_t delta = tick - cur_tick_;
    if (delta < kWheelSpanTicks) {
      PlaceInWheel(ri, delta);
    } else {
      r.state = RecState::kInOverflow;
      overflow_.push(OverflowEntry{r.time, r.seq, ri, r.gen});
    }
  }
  return MakeId(ri, r.gen);
}

void Simulator::PlaceInWheel(uint32_t ri, uint64_t delta) {
  Rec& r = RecAt(ri);
  uint64_t tick = TickOf(r.time);
  int level;
  if (delta < (1ull << kSlotBits)) {
    level = 0;
  } else if (delta < (1ull << (2 * kSlotBits))) {
    level = 1;
  } else {
    level = 2;
  }
  uint32_t slot =
      static_cast<uint32_t>(tick >> (kSlotBits * level)) & kSlotMask;
  r.state = RecState::kInWheel;
  PushSlot(level, slot, ri);
}

void Simulator::PushSlot(int level, uint32_t slot, uint32_t ri) {
  Rec& r = RecAt(ri);
  r.level = static_cast<uint8_t>(level);
  r.slot = static_cast<uint8_t>(slot);
  uint32_t head = slots_[level][slot];
  r.next = head;
  r.prev = kNil;
  if (head != kNil) RecAt(head).prev = ri;
  slots_[level][slot] = ri;
  occupied_[level].Set(slot);
  ++wheel_count_;
}

void Simulator::UnlinkFromSlot(uint32_t ri) {
  Rec& r = RecAt(ri);
  if (r.prev != kNil) {
    RecAt(r.prev).next = r.next;
  } else {
    slots_[r.level][r.slot] = r.next;
    if (r.next == kNil) occupied_[r.level].Clear(r.slot);
  }
  if (r.next != kNil) RecAt(r.next).prev = r.prev;
  --wheel_count_;
}

// --- Cancellation ------------------------------------------------------------

bool Simulator::Cancel(EventId id) {
  SNS_PROFILE_ZONE_STRIDE("sim.cancel", 7);
  uint32_t ri, gen;
  if (!SplitId(id, &ri, &gen)) return false;
  if (ri >= rec_count_) return false;
  Rec& r = RecAt(ri);
  if (r.gen != gen) return false;  // Fired, cancelled, or slot reused: stale id.
  switch (r.state) {
    case RecState::kInWheel:
      UnlinkFromSlot(ri);
      FreeRec(ri);
      break;
    case RecState::kInDue:
      // Already extracted for firing; leave the entry in due_ (drain skips it)
      // but kill the callback now so captured state is released promptly.
      r.cb.Reset();
      r.state = RecState::kCancelledDue;
      break;
    case RecState::kInOverflow:
      // The heap entry goes stale (gen mismatch) and is skipped on pop.
      FreeRec(ri);
      break;
    case RecState::kFree:
    case RecState::kCancelledDue:
      return false;
  }
  --pending_;
  return true;
}

// --- Cursor advance ----------------------------------------------------------

void Simulator::InsertDueSorted(uint32_t ri) {
  auto it = std::upper_bound(
      due_.begin() + static_cast<ptrdiff_t>(due_pos_), due_.end(), ri,
      [this](uint32_t a, uint32_t b) {
        const Rec& ra = RecAt(a);
        const Rec& rb = RecAt(b);
        if (ra.time != rb.time) return ra.time < rb.time;
        return ra.seq < rb.seq;
      });
  due_.insert(it, ri);
}

void Simulator::LoadLevel0Slot(uint32_t slot) {
  uint32_t ri = slots_[0][slot];
  slots_[0][slot] = kNil;
  occupied_[0].Clear(slot);
  size_t start = due_.size();
  while (ri != kNil) {
    Rec& r = RecAt(ri);
    uint32_t next = r.next;
    r.state = RecState::kInDue;
    r.next = kNil;
    r.prev = kNil;
    due_.push_back(ri);
    --wheel_count_;
    ri = next;
  }
  std::sort(due_.begin() + static_cast<ptrdiff_t>(start), due_.end(),
            [this](uint32_t a, uint32_t b) {
              const Rec& ra = RecAt(a);
              const Rec& rb = RecAt(b);
              if (ra.time != rb.time) return ra.time < rb.time;
              return ra.seq < rb.seq;
            });
}

void Simulator::CascadeSlot(int level, uint32_t slot) {
  uint32_t ri = slots_[level][slot];
  slots_[level][slot] = kNil;
  occupied_[level].Clear(slot);
  while (ri != kNil) {
    Rec& r = RecAt(ri);
    uint32_t next = r.next;
    --wheel_count_;
    uint64_t tick = TickOf(r.time);
    // cur_tick_ is already the new window base, so the record's recomputed
    // delta lands it on a lower level (or this level's correct post-wrap slot).
    if (tick <= cur_tick_) {
      r.state = RecState::kInDue;
      InsertDueSorted(ri);
    } else {
      PlaceInWheel(ri, tick - cur_tick_);
    }
    ri = next;
  }
}

void Simulator::EnterWindow(uint64_t new_cur) {
  bool crossed_l1_epoch =
      (new_cur >> (2 * kSlotBits)) != (cur_tick_ >> (2 * kSlotBits));
  cur_tick_ = new_cur;
  if (crossed_l1_epoch) {
    CascadeSlot(2, static_cast<uint32_t>(new_cur >> (2 * kSlotBits)) & kSlotMask);
  }
  CascadeSlot(1, static_cast<uint32_t>(new_cur >> kSlotBits) & kSlotMask);
}

void Simulator::DrainOverflow() {
  while (!overflow_.empty()) {
    const OverflowEntry& top = overflow_.top();
    Rec& r = RecAt(top.rec);
    if (r.gen != top.gen || r.state != RecState::kInOverflow) {
      overflow_.pop();  // Cancelled (slot freed or reused) — drop the husk.
      continue;
    }
    uint64_t tick = TickOf(r.time);
    if (tick >= cur_tick_ + kWheelSpanTicks) break;
    uint32_t ri = top.rec;
    overflow_.pop();
    if (tick <= cur_tick_) {
      r.state = RecState::kInDue;
      InsertDueSorted(ri);
    } else {
      PlaceInWheel(ri, tick - cur_tick_);
    }
  }
}

bool Simulator::PrepareDue() {
  // Compact the drained prefix once it pays for itself.
  if (due_pos_ == due_.size()) {
    due_.clear();
    due_pos_ = 0;
  } else if (due_pos_ > 4096 && due_pos_ * 2 > due_.size()) {
    due_.erase(due_.begin(), due_.begin() + static_cast<ptrdiff_t>(due_pos_));
    due_pos_ = 0;
  }
  while (due_pos_ == due_.size()) {
    if (wheel_count_ == 0) {
      // Wheel empty: jump the cursor straight to the earliest live far timer.
      bool found = false;
      while (!overflow_.empty()) {
        const OverflowEntry& top = overflow_.top();
        const Rec& r = RecAt(top.rec);
        if (r.gen != top.gen || r.state != RecState::kInOverflow) {
          overflow_.pop();
          continue;
        }
        found = true;
        break;
      }
      if (!found) return false;
      uint64_t target = TickOf(overflow_.top().time);
      if (target > cur_tick_) EnterWindow(target);
      DrainOverflow();
      continue;
    }
    // Migrate far timers whose tick has entered the wheel horizon BEFORE
    // choosing where to jump — otherwise a jump could leapfrog one.
    DrainOverflow();
    uint32_t idx0 = static_cast<uint32_t>(cur_tick_) & kSlotMask;
    int s = occupied_[0].FindFrom(idx0);
    if (s >= 0) {
      cur_tick_ = (cur_tick_ & ~static_cast<uint64_t>(kSlotMask)) |
                  static_cast<uint64_t>(s);
      LoadLevel0Slot(static_cast<uint32_t>(s));
      continue;
    }
    if (occupied_[0].Any()) {
      // Occupied level-0 slots exist but all wrapped past this window's end:
      // step to the next level-1 window, which re-routes them forward.
      EnterWindow((cur_tick_ | kSlotMask) + 1);
      continue;
    }
    uint32_t idx1 = static_cast<uint32_t>(cur_tick_ >> kSlotBits) & kSlotMask;
    s = occupied_[1].FindFrom(idx1 + 1);
    if (s >= 0) {
      EnterWindow((cur_tick_ & ~((1ull << (2 * kSlotBits)) - 1)) |
                  (static_cast<uint64_t>(s) << kSlotBits));
      continue;
    }
    if (occupied_[1].Any()) {
      EnterWindow((cur_tick_ | ((1ull << (2 * kSlotBits)) - 1)) + 1);
      continue;
    }
    uint32_t idx2 =
        static_cast<uint32_t>(cur_tick_ >> (2 * kSlotBits)) & kSlotMask;
    s = occupied_[2].FindFrom(idx2 + 1);
    if (s >= 0) {
      EnterWindow((cur_tick_ & ~(kWheelSpanTicks - 1)) |
                  (static_cast<uint64_t>(s) << (2 * kSlotBits)));
      continue;
    }
    // Level 2 occupied only by wrapped slots: advance a full level-2 epoch.
    EnterWindow((cur_tick_ | (kWheelSpanTicks - 1)) + 1);
  }
  return true;
}

SimTime Simulator::PeekNextTime() {
  while (true) {
    if (!PrepareDue()) return kTimeNever;
    Rec& r = RecAt(due_[due_pos_]);
    if (r.state == RecState::kCancelledDue) {
      FreeRec(due_[due_pos_]);
      ++due_pos_;
      continue;
    }
    return r.time;
  }
}

// --- Execution ---------------------------------------------------------------

bool Simulator::Step() {
  SimCallback cb;
  {
    // Wheel bookkeeping: cursor advance, cascades, due extraction.
    SNS_PROFILE_ZONE_STRIDE("sim.fire", 6);
    if (PeekNextTime() == kTimeNever) return false;
    uint32_t ri = due_[due_pos_++];
    Rec& r = RecAt(ri);
    now_ = r.time;
    cb = std::move(r.cb);
    FreeRec(ri);  // Before invoking: Cancel(this event's id) inside cb is a no-op.
    --pending_;
    ++executed_;
  }
  {
    // Callback execution: everything the event actually does.
    SNS_PROFILE_ZONE_STRIDE("sim.dispatch", 6);
    cb();
  }
  return true;
}

void Simulator::Run() {
  stopped_ = false;
  while (!stopped_ && Step()) {
  }
}

void Simulator::RunUntil(SimTime t) {
  stopped_ = false;
  while (!stopped_) {
    SimTime next = PeekNextTime();
    if (next == kTimeNever || next > t) break;
    Step();
  }
  // Contract: Stop() freezes time at the stopping event; only a completed run
  // fast-forwards the clock to the requested boundary.
  if (!stopped_ && now_ < t) now_ = t;
}

void Simulator::RunFor(SimDuration d) { RunUntil(now_ + d); }

}  // namespace sns
