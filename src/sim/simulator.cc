#include "src/sim/simulator.h"

#include "src/util/logging.h"

namespace sns {

Simulator::Simulator() {
  Logger::Get().set_time_source([this] { return now_; });
}

Simulator::~Simulator() { Logger::Get().clear_time_source(); }

EventId Simulator::Schedule(SimDuration delay, std::function<void()> fn) {
  if (delay < 0) {
    delay = 0;
  }
  return ScheduleAt(now_ + delay, std::move(fn));
}

EventId Simulator::ScheduleAt(SimTime t, std::function<void()> fn) {
  if (t < now_) {
    t = now_;
  }
  EventId id = next_id_++;
  heap_.push(Event{t, id, std::move(fn)});
  return id;
}

bool Simulator::Cancel(EventId id) {
  if (id == kInvalidEventId || id >= next_id_) {
    return false;
  }
  // Lazily removed when popped. Double-cancel is a no-op returning false.
  return cancelled_.insert(id).second;
}

bool Simulator::Step() {
  while (!heap_.empty()) {
    Event ev = heap_.top();
    heap_.pop();
    auto it = cancelled_.find(ev.id);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    now_ = ev.time;
    ++executed_;
    ev.fn();
    return true;
  }
  return false;
}

void Simulator::Run() {
  stopped_ = false;
  while (!stopped_ && Step()) {
  }
}

void Simulator::RunUntil(SimTime t) {
  stopped_ = false;
  while (!stopped_ && !heap_.empty()) {
    // Peek past cancelled events without executing.
    while (!heap_.empty() && cancelled_.count(heap_.top().id) > 0) {
      cancelled_.erase(heap_.top().id);
      heap_.pop();
    }
    if (heap_.empty() || heap_.top().time > t) {
      break;
    }
    Step();
  }
  if (now_ < t) {
    now_ = t;
  }
}

void Simulator::RunFor(SimDuration d) { RunUntil(now_ + d); }

}  // namespace sns
