#include "src/sim/timer.h"

#include <utility>

namespace sns {

PeriodicTimer::PeriodicTimer(Simulator* sim, SimDuration period, std::function<void()> fn)
    : sim_(sim), period_(period), fn_(std::move(fn)) {}

PeriodicTimer::~PeriodicTimer() { Stop(); }

void PeriodicTimer::Start() { StartWithDelay(period_); }

void PeriodicTimer::StartWithDelay(SimDuration initial_delay) {
  Stop();
  pending_ = sim_->Schedule(initial_delay, [this] { Fire(); });
}

void PeriodicTimer::Stop() {
  if (pending_ != kInvalidEventId) {
    sim_->Cancel(pending_);
    pending_ = kInvalidEventId;
  }
}

void PeriodicTimer::Fire() {
  // Reschedule before invoking so the callback may Stop() or change the period.
  pending_ = sim_->Schedule(period_, [this] { Fire(); });
  fn_();
}

OneShotTimer::~OneShotTimer() { Cancel(); }

void OneShotTimer::Arm(SimDuration delay, std::function<void()> fn) {
  Cancel();
  pending_ = sim_->Schedule(delay, [this, fn = std::move(fn)] {
    pending_ = kInvalidEventId;
    fn();
  });
}

void OneShotTimer::Cancel() {
  if (pending_ != kInvalidEventId) {
    sim_->Cancel(pending_);
    pending_ = kInvalidEventId;
  }
}

}  // namespace sns
