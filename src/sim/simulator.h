// Deterministic discrete-event simulator.
//
// This is the substrate that stands in for the paper's physical cluster testbed
// (15 SPARC Ultra-1s on switched Ethernet): all other modules — the SAN model, node
// CPU scheduling, SNS beacons and timeouts, the trace playback engine — are driven by
// events scheduled here. Events at equal times fire in scheduling order (FIFO), so a
// run is a pure function of its inputs and seeds.

#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "src/util/time.h"

namespace sns {

using EventId = uint64_t;
constexpr EventId kInvalidEventId = 0;

class Simulator {
 public:
  Simulator();
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  // Schedules `fn` to run after `delay` (clamped to >= 0). Returns an id usable with
  // Cancel().
  EventId Schedule(SimDuration delay, std::function<void()> fn);

  // Schedules `fn` at absolute time `t` (clamped to >= now).
  EventId ScheduleAt(SimTime t, std::function<void()> fn);

  // Cancels a pending event. Returns true if the event existed and had not fired.
  bool Cancel(EventId id);

  // Runs a single event; returns false if the queue is empty.
  bool Step();

  // Runs until the queue empties or Stop() is called.
  void Run();

  // Runs events with time <= t, then sets now to t.
  void RunUntil(SimTime t);

  // Convenience: RunUntil(now + d).
  void RunFor(SimDuration d);

  // Makes Run()/RunUntil() return after the current event completes.
  void Stop() { stopped_ = true; }

  size_t pending_events() const { return heap_.size() - cancelled_.size(); }
  uint64_t executed_events() const { return executed_; }

 private:
  struct Event {
    SimTime time;
    EventId id;  // Monotonically increasing: ties break FIFO.
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.id > b.id;
    }
  };

  SimTime now_ = 0;
  EventId next_id_ = 1;
  bool stopped_ = false;
  uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace sns

#endif  // SRC_SIM_SIMULATOR_H_
