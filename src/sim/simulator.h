// Deterministic discrete-event simulator.
//
// This is the substrate that stands in for the paper's physical cluster testbed
// (15 SPARC Ultra-1s on switched Ethernet): all other modules — the SAN model, node
// CPU scheduling, SNS beacons and timeouts, the trace playback engine — are driven by
// events scheduled here. Events at equal times fire in scheduling order (FIFO), so a
// run is a pure function of its inputs and seeds.
//
// Internals (DESIGN.md §12): a three-level hierarchical timer wheel (256 slots
// per level, 4.096 µs ticks, ~68.7 s in-wheel horizon) with a sorted overflow
// heap for far timers. Event records live in a slab (chunked, free-listed) and
// carry their callback in inline storage (src/sim/callback.h), so the
// dominant schedule → cancel and schedule → fire lifecycles perform no heap
// allocation. Schedule and cancel are O(1) for in-wheel events; equal-time
// ordering is enforced by a per-slot sort on a monotonic sequence number, which
// preserves exact FIFO semantics across the wheel/overflow split.

#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <queue>
#include <vector>

#include "src/sim/callback.h"
#include "src/util/time.h"

namespace sns {

// Opaque handle for a scheduled event: slab slot in the low 32 bits (biased by
// one so 0 stays invalid), slot generation in the high 32. Generations make
// handles single-use: once an event fires or is cancelled its handle goes stale
// and Cancel() on it returns false forever, even after the slot is reused.
using EventId = uint64_t;
constexpr EventId kInvalidEventId = 0;

class Simulator {
 public:
  Simulator();
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  // Schedules `fn` to run after `delay` (clamped to >= 0). Returns an id usable with
  // Cancel(). Accepts any callable, including move-only and `mutable` lambdas;
  // captures up to SimCallback::kInlineCapacity bytes are stored without allocating.
  EventId Schedule(SimDuration delay, SimCallback fn);

  // Schedules `fn` at absolute time `t` (clamped to >= now).
  EventId ScheduleAt(SimTime t, SimCallback fn);

  // Cancels a pending event. Returns true iff the event existed, had not fired,
  // and was not already cancelled — in exactly that case the callback will never
  // run. Ids of fired events return false (an id is dead the moment its callback
  // starts, including from inside that callback). Cancel never perturbs
  // bookkeeping: pending_events() stays exact under any Cancel sequence.
  bool Cancel(EventId id);

  // Runs a single event; returns false if no pending events remain.
  bool Step();

  // Runs until the queue empties or Stop() is called.
  void Run();

  // Runs events with time <= t. If the run completes (queue drained past t and
  // Stop() was never called), now() is advanced to exactly t. If Stop() fires
  // mid-run, time FREEZES at the stopping event: now() stays at that event's
  // time rather than jumping to t, so a stopper can inspect or checkpoint the
  // world at the moment it halted. A later Run*/Step call resumes normally.
  void RunUntil(SimTime t);

  // Convenience: RunUntil(now + d).
  void RunFor(SimDuration d);

  // Makes Run()/RunUntil() return after the current event completes.
  void Stop() { stopped_ = true; }

  // Exact count of scheduled-but-not-yet-fired events (cancelled events leave
  // the count immediately; fired events are never double-subtracted).
  size_t pending_events() const { return pending_; }
  uint64_t executed_events() const { return executed_; }

 private:
  // --- Wheel geometry --------------------------------------------------------
  // Three levels of 256 slots over 4.096 µs ticks: level 0 spans ~1 ms, level 1
  // ~268 ms, level 2 ~68.7 s. Events beyond the level-2 horizon wait in a
  // min-heap and migrate into the wheel as the cursor approaches them.
  static constexpr uint32_t kTickShift = 12;  // 1 tick = 4096 ns.
  static constexpr uint32_t kSlotBits = 8;
  static constexpr uint32_t kSlotCount = 1u << kSlotBits;   // 256
  static constexpr uint32_t kSlotMask = kSlotCount - 1;
  static constexpr int kLevels = 3;
  static constexpr uint64_t kWheelSpanTicks = 1ull << (kSlotBits * kLevels);
  static constexpr uint32_t kNil = 0xFFFFFFFFu;

  enum class RecState : uint8_t {
    kFree = 0,
    kInWheel,        // Linked into a wheel slot (level_/slot_ valid).
    kInOverflow,     // Waiting in the far-future heap.
    kInDue,          // Extracted into due_, awaiting firing.
    kCancelledDue,   // Cancelled while in due_; freed when drained past.
  };

  struct Rec {
    SimTime time = 0;
    uint64_t seq = 0;       // Monotonic schedule order: ties break FIFO.
    uint32_t next = kNil;   // Intrusive doubly-linked slot list / free list.
    uint32_t prev = kNil;
    uint32_t gen = 0;       // Bumped on free; stale EventIds mismatch.
    RecState state = RecState::kFree;
    uint8_t level = 0;      // Wheel position while kInWheel.
    uint8_t slot = 0;
    SimCallback cb;
  };

  struct Bitmap256 {
    uint64_t w[4] = {0, 0, 0, 0};
    void Set(uint32_t i) { w[i >> 6] |= 1ull << (i & 63); }
    void Clear(uint32_t i) { w[i >> 6] &= ~(1ull << (i & 63)); }
    bool Any() const { return (w[0] | w[1] | w[2] | w[3]) != 0; }
    // First set bit >= from, or -1. `from` may be kSlotCount (returns -1).
    int FindFrom(uint32_t from) const;
  };

  struct OverflowEntry {
    SimTime time;
    uint64_t seq;
    uint32_t rec;
    uint32_t gen;  // Stale (cancelled, slot reused) entries are skipped on pop.
  };
  struct OverflowLater {
    bool operator()(const OverflowEntry& a, const OverflowEntry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  // --- Slab ------------------------------------------------------------------
  static constexpr uint32_t kChunkShift = 10;  // 1024 records per chunk.
  static constexpr uint32_t kChunkSize = 1u << kChunkShift;
  static constexpr uint32_t kChunkMask = kChunkSize - 1;

  Rec& RecAt(uint32_t ri) { return chunks_[ri >> kChunkShift][ri & kChunkMask]; }
  uint32_t AllocRec();
  void FreeRec(uint32_t ri);

  // --- Placement & advance ---------------------------------------------------
  static uint64_t TickOf(SimTime t) { return static_cast<uint64_t>(t) >> kTickShift; }

  EventId Place(uint32_t ri);              // User-path: may target due_ directly.
  void PlaceInWheel(uint32_t ri, uint64_t delta);  // delta in [0, kWheelSpanTicks).
  void PushSlot(int level, uint32_t slot, uint32_t ri);
  void UnlinkFromSlot(uint32_t ri);
  void CascadeSlot(int level, uint32_t slot);  // Re-places a slot's records.
  void LoadLevel0Slot(uint32_t slot);          // Slot -> due_, sorted (time, seq).
  void EnterWindow(uint64_t new_cur);          // Advance cursor, cascade crossings.
  void DrainOverflow();                        // Migrate in-horizon far timers.
  void InsertDueSorted(uint32_t ri);
  bool PrepareDue();                           // False iff no pending events.
  SimTime PeekNextTime();                      // kTimeNever iff none; skips cancelled.

  SimTime now_ = 0;
  bool stopped_ = false;
  uint64_t next_seq_ = 1;
  uint64_t executed_ = 0;
  size_t pending_ = 0;

  uint64_t cur_tick_ = 0;      // Wheel cursor; may run ahead of TickOf(now_)
                               // after a structural peek — events landing behind
                               // it go straight into due_.
  size_t wheel_count_ = 0;     // Records currently linked into wheel slots.
  std::vector<uint32_t> slots_[kLevels];  // kSlotCount list heads per level.
  Bitmap256 occupied_[kLevels];

  // Events extracted for firing, ascending (time, seq); due_pos_ is the drain
  // cursor. New events that land at or behind cur_tick_ are merge-inserted.
  std::vector<uint32_t> due_;
  size_t due_pos_ = 0;

  std::priority_queue<OverflowEntry, std::vector<OverflowEntry>, OverflowLater> overflow_;

  std::vector<std::unique_ptr<Rec[]>> chunks_;
  uint32_t rec_count_ = 0;    // Total records ever materialized (all chunks).
  uint32_t free_head_ = kNil;
};

}  // namespace sns

#endif  // SRC_SIM_SIMULATOR_H_
