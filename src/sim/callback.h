// Move-only callable with inline storage, used for simulator event callbacks.
//
// The simulator schedules hundreds of millions of events per run; std::function
// heap-allocates any capture larger than its tiny SBO (16 bytes on libstdc++),
// which makes every scheduled event a malloc/free pair. SimCallback keeps
// captures up to kInlineCapacity bytes inside the event record itself (the
// records live in the simulator's slab, so a small-capture event performs zero
// allocations end to end) and falls back to the heap only for oversized
// captures. The capacity is sized so the SAN's per-hop delivery lambdas — which
// capture a whole Message — stay inline; see src/net/san.cc.
//
// Unlike std::function it is move-only (so events can own move-only state) and
// invokes the target as non-const (so `mutable` lambdas can move their captures
// onward, e.g. handing a Message to the next delivery hop without copying).

#ifndef SRC_SIM_CALLBACK_H_
#define SRC_SIM_CALLBACK_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace sns {

class SimCallback {
 public:
  // Large enough for the SAN delivery-hop lambdas (Message + SendOptions + a
  // couple of scalars); small lambdas waste the tail, oversized ones heap-spill.
  static constexpr size_t kInlineCapacity = 160;

  SimCallback() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SimCallback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  SimCallback(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for std::function
    using D = std::decay_t<F>;
    if constexpr (sizeof(D) <= kInlineCapacity &&
                  alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = &InlineVtable<D>::kOps;
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
      ops_ = &HeapVtable<D>::kOps;
    }
  }

  SimCallback(SimCallback&& other) noexcept { MoveFrom(std::move(other)); }
  SimCallback& operator=(SimCallback&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(std::move(other));
    }
    return *this;
  }

  SimCallback(const SimCallback&) = delete;
  SimCallback& operator=(const SimCallback&) = delete;

  ~SimCallback() { Reset(); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  // Precondition: holds a target (the simulator never invokes an empty slot).
  void operator()() { ops_->invoke(buf_); }

  void Reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void* buf);
    void (*move)(void* dst, void* src) noexcept;  // src is destroyed.
    void (*destroy)(void* buf) noexcept;
  };

  template <typename D>
  struct InlineVtable {
    static D* Get(void* buf) noexcept { return std::launder(reinterpret_cast<D*>(buf)); }
    static void Invoke(void* buf) { (*Get(buf))(); }
    static void Move(void* dst, void* src) noexcept {
      D* s = Get(src);
      ::new (dst) D(std::move(*s));
      s->~D();
    }
    static void Destroy(void* buf) noexcept { Get(buf)->~D(); }
    static constexpr Ops kOps = {&Invoke, &Move, &Destroy};
  };

  template <typename D>
  struct HeapVtable {
    static D*& Ptr(void* buf) noexcept { return *std::launder(reinterpret_cast<D**>(buf)); }
    static void Invoke(void* buf) { (*Ptr(buf))(); }
    static void Move(void* dst, void* src) noexcept { ::new (dst) D*(Ptr(src)); }
    static void Destroy(void* buf) noexcept { delete Ptr(buf); }
    static constexpr Ops kOps = {&Invoke, &Move, &Destroy};
  };

  void MoveFrom(SimCallback&& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->move(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) unsigned char buf_[kInlineCapacity];
};

}  // namespace sns

#endif  // SRC_SIM_CALLBACK_H_
