// Timer helpers layered on the simulator.
//
// PeriodicTimer drives the beaconing behaviors central to the paper's soft-state
// design: the manager beacons its existence and load hints on a multicast channel,
// workers beacon load reports, the monitor expects periodic component reports.
// OneShotTimer is the backstop timeout mechanism (paper §2.2.4).

#ifndef SRC_SIM_TIMER_H_
#define SRC_SIM_TIMER_H_

#include <functional>

#include "src/sim/simulator.h"

namespace sns {

// Fires a callback every `period` until stopped or destroyed. Restartable.
class PeriodicTimer {
 public:
  PeriodicTimer(Simulator* sim, SimDuration period, std::function<void()> fn);
  ~PeriodicTimer();

  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  // First firing happens `period` from now (or `initial_delay` if given).
  void Start();
  void StartWithDelay(SimDuration initial_delay);
  // Safe to call at any point, including from inside the callback: Cancel() on
  // an id that already fired is a guaranteed no-op (see Simulator::Cancel).
  void Stop();
  bool running() const { return pending_ != kInvalidEventId; }

  void set_period(SimDuration period) { period_ = period; }
  SimDuration period() const { return period_; }

 private:
  void Fire();

  Simulator* sim_;
  SimDuration period_;
  std::function<void()> fn_;
  EventId pending_ = kInvalidEventId;
};

// Single-shot timer that can be rearmed or cancelled; cancels itself on destruction.
class OneShotTimer {
 public:
  explicit OneShotTimer(Simulator* sim) : sim_(sim) {}
  ~OneShotTimer();

  OneShotTimer(const OneShotTimer&) = delete;
  OneShotTimer& operator=(const OneShotTimer&) = delete;

  // Arms the timer, replacing any pending firing.
  void Arm(SimDuration delay, std::function<void()> fn);
  void Cancel();
  bool armed() const { return pending_ != kInvalidEventId; }

 private:
  Simulator* sim_;
  EventId pending_ = kInvalidEventId;
};

}  // namespace sns

#endif  // SRC_SIM_TIMER_H_
