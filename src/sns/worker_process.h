// Worker stub + TACC worker = a worker process (paper §2.2.5, §3.1.2).
//
// "The worker stub accepts and queues requests on behalf of the distiller and
// periodically reports load information to the manager." The stub hides fault
// tolerance, load balancing and queueing from the worker code, which is pure
// compute (a TaccWorker). Workers discover the manager by subscribing to its beacon
// multicast channel and (re-)register whenever a new manager incarnation appears —
// this is the entire crash-recovery protocol (§3.1.3).
//
// Fault injection: a task whose args contain "__poison" makes the worker crash
// mid-request, modeling the paper's "pathological input data occasionally causes a
// distiller to crash" (§3.1.6).

#ifndef SRC_SNS_WORKER_PROCESS_H_
#define SRC_SNS_WORKER_PROCESS_H_

#include <deque>
#include <memory>
#include <string>

#include "src/cluster/process.h"
#include "src/obs/metrics.h"
#include "src/sim/timer.h"
#include "src/sns/config.h"
#include "src/sns/messages.h"
#include "src/tacc/worker.h"

namespace sns {

class WorkerProcess : public Process {
 public:
  WorkerProcess(const SnsConfig& config, TaccWorkerPtr worker);

  void OnStart() override;
  void OnStop() override;
  void OnMessage(const Message& msg) override;

  // --- Introspection (used by the Fig. 8 queue-length sampler and tests) -----------
  const std::string& worker_type() const { return type_; }
  // Instantaneous queue length including the in-service task — the paper's load
  // metric (footnote 2).
  double QueueLength() const { return static_cast<double>(queue_.size()) + (busy_ ? 1 : 0); }
  // The optionally cost-weighted variant: queued work expressed in multiples of a
  // reference item's cost (footnote 2's "weighted by the expected cost").
  double WeightedQueueLength() const;
  int64_t completed_tasks() const { return completed_ != nullptr ? completed_->value() : 0; }
  int64_t rejected_tasks() const { return rejected_ != nullptr ? rejected_->value() : 0; }
  int64_t expired_tasks() const { return expired_ != nullptr ? expired_->value() : 0; }

  // Max queued tasks before the stub sheds load with RESOURCE_EXHAUSTED.
  static constexpr size_t kQueueCapacity = 2000;

 private:
  void HandleBeacon(const ManagerBeaconPayload& beacon);
  void HandleTask(const Message& msg);
  void ExpireTask(const TaskRequestPayload& task, const TraceContext& span, SimTime start);
  void RejectTask(const TaskRequestPayload& task, const TraceContext& span,
                  const std::string& reason);
  void StartNext();
  void ReportLoad();
  void RegisterWithManager();

  SnsConfig config_;
  TaccWorkerPtr worker_;
  std::string type_;

  struct QueuedTask {
    std::shared_ptr<const TaskRequestPayload> payload;
    SimDuration estimated_cost = 0;
    TraceContext trace;        // This worker's span context for the task.
    SimTime enqueued_at = 0;   // Span start: queueing time is part of worker latency.
  };

  Endpoint manager_;
  uint64_t manager_epoch_ = 0;  // Highest beacon epoch accepted (fencing).
  std::deque<QueuedTask> queue_;
  SimDuration queued_cost_ = 0;    // Sum over queue_ + the in-service task.
  bool busy_ = false;
  // Registry instruments under "worker.<type>.p<pid>.*", bound in OnStart. Keyed by
  // pid so each incarnation gets fresh counts (worker instances are disposable).
  Counter* completed_ = nullptr;
  Counter* rejected_ = nullptr;
  Counter* expired_ = nullptr;
  Gauge* queue_gauge_ = nullptr;
  std::unique_ptr<PeriodicTimer> report_timer_;
};

}  // namespace sns

#endif  // SRC_SNS_WORKER_PROCESS_H_
