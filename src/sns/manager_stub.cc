#include "src/sns/manager_stub.h"

#include <algorithm>

#include "src/obs/profiler.h"

namespace sns {

bool ManagerStub::OnBeacon(const ManagerBeaconPayload& beacon, SimTime now) {
  if (config_.manager_epoch_fencing && beacon.epoch < manager_epoch_) {
    // Stale incarnation (lower epoch than one we already follow): after a
    // partition heals, the stranded manager may beacon a few more times before it
    // demotes; acting on those would flap the whole worker/cache view back.
    ++fenced_beacons_;
    return false;
  }
  if (beacon.manager != manager_) {
    // New manager incarnation: its hints are authoritative; drop any view carried
    // over from the previous incarnation rather than letting it age through the
    // grace window.
    workers_.clear();
  }
  manager_ = beacon.manager;
  manager_epoch_ = beacon.epoch;
  last_beacon_ = now;
  ++beacons_seen_;

  // Rebuild the worker view from the hints, preserving estimator state and
  // in-flight counts for workers that persist across beacons.
  std::unordered_map<Endpoint, WorkerView, EndpointHash> next;
  for (const WorkerHint& hint : beacon.workers) {
    WorkerView view;
    auto it = workers_.find(hint.endpoint);
    if (it != workers_.end()) {
      view = std::move(it->second);
      workers_.erase(it);
    }
    view.type = hint.worker_type;
    view.hint_queue = hint.smoothed_queue;
    view.estimator.Observe(hint.smoothed_queue, ToSeconds(now));
    view.last_seen = now;
    next[hint.endpoint] = std::move(view);
  }
  // Workers absent from this beacon keep their view (estimator, in-flight count)
  // through a short grace window: beacons ride best-effort multicast, and one
  // dropped datagram must not zero a worker's load accounting and skew the
  // lottery. Sustained absence evicts.
  for (auto& [ep, view] : workers_) {
    if (now - view.last_seen <= config_.beacon_absence_grace) {
      next[ep] = std::move(view);
    }
  }
  workers_ = std::move(next);

  // Maintain the cache ring incrementally so surviving nodes keep their keys.
  std::vector<Endpoint> fresh = beacon.cache_nodes;
  std::sort(fresh.begin(), fresh.end(), [](const Endpoint& a, const Endpoint& b) {
    return a.node != b.node ? a.node < b.node : a.port < b.port;
  });
  for (const Endpoint& ep : cache_nodes_) {
    if (std::find(fresh.begin(), fresh.end(), ep) == fresh.end()) {
      cache_ring_.RemoveMember(CacheRingMemberId(ep));
      ++cache_membership_changes_;
    }
  }
  for (const Endpoint& ep : fresh) {
    if (!cache_ring_.HasMember(CacheRingMemberId(ep))) {
      cache_ring_.AddMember(CacheRingMemberId(ep));
      ++cache_membership_changes_;
    }
  }
  cache_nodes_ = std::move(fresh);
  profile_db_ = beacon.profile_db;
  profile_db_generation_ = beacon.profile_db_generation;
  quorate_ = beacon.quorate;
  votes_held_ = beacon.votes_held;
  votes_total_ = beacon.votes_total;
  return true;
}

std::optional<Endpoint> ManagerStub::CacheNodeForKey(const std::string& key) const {
  auto member = cache_ring_.Lookup(key);
  if (!member.has_value()) {
    return std::nullopt;
  }
  return CacheRingMemberEndpoint(*member);
}

std::vector<Endpoint> ManagerStub::CacheChainForKey(const std::string& key) const {
  SNS_PROFILE_ZONE_STRIDE("cache.ring_lookup", 3);
  size_t r = config_.cache_replication > 0
                 ? static_cast<size_t>(config_.cache_replication)
                 : size_t{1};
  std::vector<int64_t> members = cache_ring_.LookupN(key, r);
  std::vector<Endpoint> chain;
  chain.reserve(members.size());
  for (int64_t m : members) {
    chain.push_back(CacheRingMemberEndpoint(m));
  }
  return chain;
}

double ManagerStub::PredictedQueue(const Endpoint& worker, SimTime now) const {
  auto it = workers_.find(worker);
  if (it == workers_.end()) {
    return 0.0;
  }
  const WorkerView& view = it->second;
  double queue = config_.use_delta_estimation ? view.estimator.Predict(ToSeconds(now))
                                              : view.hint_queue;
  if (config_.track_inflight_tasks) {
    queue += view.inflight;
  }
  return std::max(queue, 0.0);
}

std::optional<Endpoint> ManagerStub::PickWorker(const std::string& type, SimTime now,
                                                const Endpoint* exclude) {
  std::vector<Endpoint> candidates;
  std::vector<double> weights;
  bool excluded_any = false;
  for (const auto& [ep, view] : workers_) {
    if (view.type != type) {
      continue;
    }
    if (exclude != nullptr && ep == *exclude) {
      excluded_any = true;
      continue;
    }
    candidates.push_back(ep);
    double queue = PredictedQueue(ep, now);
    // Lottery tickets inversely proportional to predicted queue depth.
    weights.push_back(1.0 / (1.0 + queue));
  }
  if (candidates.empty()) {
    // Only the excluded worker exists: better it than nothing (it may merely be
    // slow), so fall back rather than failing the task outright.
    if (excluded_any) {
      candidates.push_back(*exclude);
      weights.push_back(1.0);
    } else {
      return std::nullopt;
    }
  }
  switch (config_.balance_policy) {
    case BalancePolicy::kLottery:
      return candidates[rng_->WeightedIndex(weights)];
    case BalancePolicy::kRandom:
      return candidates[static_cast<size_t>(
          rng_->UniformInt(0, static_cast<int64_t>(candidates.size()) - 1))];
    case BalancePolicy::kRoundRobin:
      return candidates[round_robin_++ % candidates.size()];
  }
  return candidates[0];
}

void ManagerStub::NoteTaskSent(const Endpoint& worker) {
  auto it = workers_.find(worker);
  if (it != workers_.end()) {
    ++it->second.inflight;
  }
}

void ManagerStub::NoteTaskDone(const Endpoint& worker) {
  auto it = workers_.find(worker);
  if (it != workers_.end() && it->second.inflight > 0) {
    --it->second.inflight;
  }
}

bool ManagerStub::NoteWorkerDead(const Endpoint& worker) {
  return workers_.erase(worker) > 0;
}

SimDuration ManagerStub::BeaconSilence(SimTime now) const {
  if (last_beacon_ < 0) {
    return kTimeNever;
  }
  return now - last_beacon_;
}

bool ManagerStub::ManagerSuspectedDead(SimTime now) const {
  SimDuration silence = BeaconSilence(now);
  return silence != kTimeNever && silence > config_.manager_silence_restart;
}

size_t ManagerStub::KnownWorkerCount(const std::string& type) const {
  size_t count = 0;
  for (const auto& [ep, view] : workers_) {
    if (view.type == type) {
      ++count;
    }
  }
  return count;
}

std::vector<Endpoint> ManagerStub::WorkersOfType(const std::string& type) const {
  std::vector<Endpoint> out;
  for (const auto& [ep, view] : workers_) {
    if (view.type == type) {
      out.push_back(ep);
    }
  }
  std::sort(out.begin(), out.end(), [](const Endpoint& a, const Endpoint& b) {
    return a.node != b.node ? a.node < b.node : a.port < b.port;
  });
  return out;
}

}  // namespace sns
