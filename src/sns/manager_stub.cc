#include "src/sns/manager_stub.h"

#include <algorithm>

namespace sns {

void ManagerStub::OnBeacon(const ManagerBeaconPayload& beacon, SimTime now) {
  manager_ = beacon.manager;
  last_beacon_ = now;
  ++beacons_seen_;

  // Rebuild the worker view from the hints, preserving estimator state and
  // in-flight counts for workers that persist across beacons.
  std::unordered_map<Endpoint, WorkerView, EndpointHash> next;
  for (const WorkerHint& hint : beacon.workers) {
    WorkerView view;
    auto it = workers_.find(hint.endpoint);
    if (it != workers_.end()) {
      view = std::move(it->second);
    }
    view.type = hint.worker_type;
    view.hint_queue = hint.smoothed_queue;
    view.estimator.Observe(hint.smoothed_queue, ToSeconds(now));
    next[hint.endpoint] = std::move(view);
  }
  workers_ = std::move(next);

  cache_nodes_ = beacon.cache_nodes;
  std::sort(cache_nodes_.begin(), cache_nodes_.end(), [](const Endpoint& a, const Endpoint& b) {
    return a.node != b.node ? a.node < b.node : a.port < b.port;
  });
  profile_db_ = beacon.profile_db;
}

double ManagerStub::PredictedQueue(const Endpoint& worker, SimTime now) const {
  auto it = workers_.find(worker);
  if (it == workers_.end()) {
    return 0.0;
  }
  const WorkerView& view = it->second;
  double queue = config_.use_delta_estimation ? view.estimator.Predict(ToSeconds(now))
                                              : view.hint_queue;
  if (config_.track_inflight_tasks) {
    queue += view.inflight;
  }
  return std::max(queue, 0.0);
}

std::optional<Endpoint> ManagerStub::PickWorker(const std::string& type, SimTime now) {
  std::vector<Endpoint> candidates;
  std::vector<double> weights;
  for (const auto& [ep, view] : workers_) {
    if (view.type == type) {
      candidates.push_back(ep);
      double queue = PredictedQueue(ep, now);
      // Lottery tickets inversely proportional to predicted queue depth.
      weights.push_back(1.0 / (1.0 + queue));
    }
  }
  if (candidates.empty()) {
    return std::nullopt;
  }
  switch (config_.balance_policy) {
    case BalancePolicy::kLottery:
      return candidates[rng_->WeightedIndex(weights)];
    case BalancePolicy::kRandom:
      return candidates[static_cast<size_t>(
          rng_->UniformInt(0, static_cast<int64_t>(candidates.size()) - 1))];
    case BalancePolicy::kRoundRobin:
      return candidates[round_robin_++ % candidates.size()];
  }
  return candidates[0];
}

void ManagerStub::NoteTaskSent(const Endpoint& worker) {
  auto it = workers_.find(worker);
  if (it != workers_.end()) {
    ++it->second.inflight;
  }
}

void ManagerStub::NoteTaskDone(const Endpoint& worker) {
  auto it = workers_.find(worker);
  if (it != workers_.end() && it->second.inflight > 0) {
    --it->second.inflight;
  }
}

bool ManagerStub::NoteWorkerDead(const Endpoint& worker) {
  return workers_.erase(worker) > 0;
}

SimDuration ManagerStub::BeaconSilence(SimTime now) const {
  if (last_beacon_ < 0) {
    return kTimeNever;
  }
  return now - last_beacon_;
}

bool ManagerStub::ManagerSuspectedDead(SimTime now) const {
  SimDuration silence = BeaconSilence(now);
  return silence != kTimeNever && silence > config_.manager_silence_restart;
}

size_t ManagerStub::KnownWorkerCount(const std::string& type) const {
  size_t count = 0;
  for (const auto& [ep, view] : workers_) {
    if (view.type == type) {
      ++count;
    }
  }
  return count;
}

std::vector<Endpoint> ManagerStub::WorkersOfType(const std::string& type) const {
  std::vector<Endpoint> out;
  for (const auto& [ep, view] : workers_) {
    if (view.type == type) {
      out.push_back(ep);
    }
  }
  std::sort(out.begin(), out.end(), [](const Endpoint& a, const Endpoint& b) {
    return a.node != b.node ? a.node < b.node : a.port < b.port;
  });
  return out;
}

}  // namespace sns
