#include "src/sns/cache_node.h"

#include "src/util/logging.h"
#include "src/util/strings.h"

namespace sns {

CacheNodeProcess::CacheNodeProcess(const SnsConfig& sns_config, const CacheNodeConfig& config)
    : Process("cache-node"),
      sns_config_(sns_config),
      config_(config),
      cache_(config.capacity_bytes,
             [](const ContentPtr& c) { return c == nullptr ? 0 : c->size(); }) {}

void CacheNodeProcess::OnStart() {
  std::string prefix = StrFormat("cache.n%d.", node());
  gets_ = metrics()->GetCounter(prefix + "gets");
  puts_ = metrics()->GetCounter(prefix + "puts");
  expired_gets_ = metrics()->GetCounter(prefix + "expired_gets");
  hits_gauge_ = metrics()->GetGauge(prefix + "hits");
  misses_gauge_ = metrics()->GetGauge(prefix + "misses");
  used_bytes_gauge_ = metrics()->GetGauge(prefix + "used_bytes");
  JoinGroup(kGroupManagerBeacon);
  report_timer_ = std::make_unique<PeriodicTimer>(sim(), sns_config_.load_report_period,
                                                  [this] { ReportLoad(); });
  report_timer_->Start();
}

void CacheNodeProcess::OnStop() {
  report_timer_.reset();
  LeaveGroup(kGroupManagerBeacon);
}

void CacheNodeProcess::OnMessage(const Message& msg) {
  switch (msg.type) {
    case kMsgManagerBeacon: {
      const auto& beacon = static_cast<const ManagerBeaconPayload&>(*msg.payload);
      if (sns_config_.manager_epoch_fencing && beacon.epoch < manager_epoch_) {
        break;  // Stale incarnation still beaconing after failover; ignore.
      }
      manager_epoch_ = beacon.epoch;
      if (beacon.manager != manager_) {
        manager_ = beacon.manager;
        auto payload = std::make_shared<RegisterComponentPayload>();
        payload->kind = ComponentKind::kCacheNode;
        payload->component = endpoint();
        payload->manager_epoch = manager_epoch_;
        Message out;
        out.dst = manager_;
        out.type = kMsgRegisterComponent;
        out.transport = Transport::kReliable;
        out.size_bytes = 96;
        out.payload = payload;
        Send(std::move(out));
      }
      break;
    }
    case kMsgCacheGet:
      HandleGet(msg);
      break;
    case kMsgCachePut:
      HandlePut(msg);
      break;
    default:
      break;
  }
}

void CacheNodeProcess::HandleGet(const Message& msg) {
  auto get = std::static_pointer_cast<const CacheGetPayload>(msg.payload);
  if (get->deadline != kTimeNever && sim()->now() >= get->deadline) {
    // The requester already counted this op as a miss at its deadline; answering
    // (or even parsing) an expired get would only add load while overloaded.
    expired_gets_->Increment();
    RecordSpan(ChildSpan(msg.trace), "cache.get", sim()->now(), "expired");
    return;
  }
  gets_->Increment();
  ++outstanding_;
  TraceContext span = ChildSpan(msg.trace);
  SimTime start = sim()->now();
  RunOnCpu(config_.cpu_per_get, [this, get, span, start] {
    --outstanding_;
    auto reply = std::make_shared<CacheReplyPayload>();
    reply->op_id = get->op_id;
    auto value = cache_.Get(get->key);
    reply->hit = value.has_value();
    reply->content = value.has_value() ? *value : nullptr;
    RefreshGauges();
    RecordSpan(span, "cache.get", start, reply->hit ? "hit" : "miss");
    Message out;
    out.dst = get->reply_to;
    out.type = kMsgCacheReply;
    out.transport = Transport::kReliable;
    out.size_bytes = WireSizeOf(*reply);
    out.payload = reply;
    out.trace = span;
    // Harvest opens (and tears down) a TCP connection per request (§3.1.5); the
    // reply rides the same fresh connection, so no extra setup here.
    Send(std::move(out));
  });
}

void CacheNodeProcess::HandlePut(const Message& msg) {
  auto put = std::static_pointer_cast<const CachePutPayload>(msg.payload);
  puts_->Increment();
  // Puts occupy the node exactly like gets; leaving them out of `outstanding_`
  // made a put-heavy cache node look idle to the manager's load view.
  ++outstanding_;
  TraceContext span = ChildSpan(msg.trace);
  SimTime start = sim()->now();
  RunOnCpu(config_.cpu_per_put, [this, put, span, start] {
    --outstanding_;
    if (put->content != nullptr) {
      cache_.Put(put->key, put->content);
    }
    RefreshGauges();
    RecordSpan(span, "cache.put", start, "ok");
  });
}

void CacheNodeProcess::RefreshGauges() {
  hits_gauge_->Set(static_cast<double>(cache_.hits()));
  misses_gauge_->Set(static_cast<double>(cache_.misses()));
  used_bytes_gauge_->Set(static_cast<double>(cache_.used_bytes()));
}

void CacheNodeProcess::ReportLoad() {
  if (!manager_.valid()) {
    return;
  }
  auto payload = std::make_shared<LoadReportPayload>();
  payload->kind = ComponentKind::kCacheNode;
  payload->component = endpoint();
  payload->queue_length = static_cast<double>(outstanding_);
  payload->manager_epoch = manager_epoch_;
  RefreshGauges();
  Message msg;
  msg.dst = manager_;
  msg.type = kMsgLoadReport;
  msg.transport = Transport::kDatagram;
  msg.size_bytes = 80;
  msg.payload = payload;
  Send(std::move(msg));
}

}  // namespace sns
