#include "src/sns/cache_node.h"

#include <algorithm>

#include "src/obs/profiler.h"
#include "src/util/logging.h"
#include "src/util/strings.h"

namespace sns {

CacheNodeProcess::CacheNodeProcess(const SnsConfig& sns_config, const CacheNodeConfig& config)
    : Process("cache-node"),
      sns_config_(sns_config),
      config_(config),
      cache_(config.capacity_bytes,
             [](const ContentPtr& c) { return c == nullptr ? 0 : c->size(); }),
      ring_(sns_config.cache_ring_vnodes),
      settled_ring_(sns_config.cache_ring_vnodes),
      rebalance_bucket_(sns_config.cache_rebalance_bytes_per_s,
                        sns_config.cache_rebalance_burst_bytes) {}

void CacheNodeProcess::OnStart() {
  std::string prefix = StrFormat("cache.n%d.", node());
  gets_ = metrics()->GetCounter(prefix + "gets");
  puts_ = metrics()->GetCounter(prefix + "puts");
  expired_gets_ = metrics()->GetCounter(prefix + "expired_gets");
  rebalance_passes_ = metrics()->GetCounter(prefix + "rebalance_passes");
  rebalance_pushed_ = metrics()->GetCounter(prefix + "rebalance_keys_pushed");
  rebalance_bytes_ = metrics()->GetCounter(prefix + "rebalance_bytes");
  rebalance_dropped_ = metrics()->GetCounter(prefix + "rebalance_keys_dropped");
  rebalance_puts_in_ = metrics()->GetCounter(prefix + "rebalance_puts_in");
  hits_gauge_ = metrics()->GetGauge(prefix + "hits");
  misses_gauge_ = metrics()->GetGauge(prefix + "misses");
  used_bytes_gauge_ = metrics()->GetGauge(prefix + "used_bytes");
  rebalance_active_gauge_ = metrics()->GetGauge(prefix + "rebalance_active");
  JoinGroup(kGroupManagerBeacon);
  report_timer_ = std::make_unique<PeriodicTimer>(sim(), sns_config_.load_report_period,
                                                  [this] { ReportLoad(); });
  report_timer_->Start();
}

void CacheNodeProcess::OnStop() {
  report_timer_.reset();
  if (rebalance_timer_ != kInvalidEventId) {
    CancelTimer(rebalance_timer_);
    rebalance_timer_ = kInvalidEventId;
  }
  LeaveGroup(kGroupManagerBeacon);
}

void CacheNodeProcess::OnMessage(const Message& msg) {
  switch (msg.type) {
    case kMsgManagerBeacon:
      HandleBeacon(static_cast<const ManagerBeaconPayload&>(*msg.payload));
      break;
    case kMsgCacheGet:
      HandleGet(msg);
      break;
    case kMsgCachePut:
      HandlePut(msg);
      break;
    default:
      break;
  }
}

void CacheNodeProcess::HandleBeacon(const ManagerBeaconPayload& beacon) {
  if (sns_config_.manager_epoch_fencing && beacon.epoch < manager_epoch_) {
    return;  // Stale incarnation still beaconing after failover; ignore.
  }
  manager_epoch_ = beacon.epoch;
  if (beacon.manager != manager_) {
    manager_ = beacon.manager;
    auto payload = std::make_shared<RegisterComponentPayload>();
    payload->kind = ComponentKind::kCacheNode;
    payload->component = endpoint();
    payload->manager_epoch = manager_epoch_;
    Message out;
    out.dst = manager_;
    out.type = kMsgRegisterComponent;
    out.transport = Transport::kReliable;
    out.size_bytes = 96;
    out.payload = payload;
    Send(std::move(out));
  }

  // Mirror the beaconed cache membership onto the local ring (same member
  // encoding as the manager stub, so every party derives identical chains).
  std::vector<Endpoint> fresh = beacon.cache_nodes;
  std::sort(fresh.begin(), fresh.end(), [](const Endpoint& a, const Endpoint& b) {
    return a.node != b.node ? a.node < b.node : a.port < b.port;
  });
  if (fresh == ring_members_) {
    return;
  }
  for (const Endpoint& ep : ring_members_) {
    if (std::find(fresh.begin(), fresh.end(), ep) == fresh.end()) {
      ring_.RemoveMember(CacheRingMemberId(ep));
    }
  }
  for (const Endpoint& ep : fresh) {
    if (!ring_.HasMember(CacheRingMemberId(ep))) {
      ring_.AddMember(CacheRingMemberId(ep));
    }
  }
  ring_members_ = std::move(fresh);
  StartRebalance();
}

size_t CacheNodeProcess::ReplicaFactor() const {
  return sns_config_.cache_replication > 0
             ? static_cast<size_t>(sns_config_.cache_replication)
             : size_t{1};
}

void CacheNodeProcess::StartRebalance() {
  if (rebalance_timer_ != kInvalidEventId) {
    CancelTimer(rebalance_timer_);
    rebalance_timer_ = kInvalidEventId;
  }
  // A membership pass supersedes any echo pass in flight; pending echo keys are
  // kept and re-armed by FinishRebalance once this pass completes.
  echo_pass_ = false;
  if (cache_.size() == 0) {
    // Nothing resident: adopt the new membership as settled with no pass (also
    // the common case at startup, before any content arrives).
    settled_ring_ = ring_;
    if (rebalance_active_) {
      FinishRebalance();
    }
    return;
  }
  rebalance_queue_.clear();
  rebalance_queue_.reserve(cache_.size());
  cache_.ForEach([this](const std::string& key, const ContentPtr&, int64_t) {
    rebalance_queue_.push_back(key);
  });
  rebalance_pos_ = 0;
  pass_pushed_ = 0;
  pass_bytes_ = 0;
  pass_dropped_ = 0;
  rebalance_passes_->Increment();
  if (!rebalance_active_) {
    rebalance_active_ = true;
    rebalance_active_gauge_->Set(1.0);
    if (config_.event_log != nullptr) {
      config_.event_log->RecordFault(
          {sim()->now(), StrFormat("cache n%d rebalance start (%d keys, %d members)", node(),
                                   static_cast<int>(rebalance_queue_.size()),
                                   static_cast<int>(ring_members_.size()))});
    }
  }
  rebalance_timer_ = After(Milliseconds(1), [this] { RebalanceStep(); });
}

void CacheNodeProcess::RebalanceStep() {
  SNS_PROFILE_ZONE("cache.rebalance");
  rebalance_timer_ = kInvalidEventId;
  size_t r = ReplicaFactor();
  int64_t self = CacheRingMemberId(endpoint());
  int processed = 0;
  while (rebalance_pos_ < rebalance_queue_.size() &&
         processed < sns_config_.cache_rebalance_batch_keys) {
    const std::string& key = rebalance_queue_[rebalance_pos_];
    const ContentPtr* slot = cache_.Peek(key);
    if (slot == nullptr || *slot == nullptr) {
      ++rebalance_pos_;  // Evicted since the snapshot.
      continue;
    }
    std::vector<int64_t> chain = ring_.LookupN(key, r);
    bool owned = false;
    // Membership pass: push only to chain members the settled (pre-change) ring
    // did not assign this key — steady-state writes already replicated to the
    // old chain, so only the delta needs migrating (~1/N of the ring per
    // single-node change). Echo pass: push the whole chain (the entry was just
    // learned from a peer, so its other replicas may not have it yet).
    std::vector<Endpoint> targets;
    for (int64_t m : chain) {
      if (m == self) {
        owned = true;
      } else if (echo_pass_ || !InChain(settled_ring_, key, r, m)) {
        targets.push_back(CacheRingMemberEndpoint(m));
      }
    }
    if (!targets.empty()) {
      int64_t size = (*slot)->size();
      double charge = static_cast<double>(size) * static_cast<double>(targets.size());
      // An object bigger than the whole burst could never satisfy the bucket;
      // clamp the request — the wait below still paces it at the refill rate.
      charge = std::min(charge, sns_config_.cache_rebalance_burst_bytes);
      if (!rebalance_bucket_.TryTake(sim()->now(), charge)) {
        SimTime at = rebalance_bucket_.NextAvailable(sim()->now(), charge);
        SimDuration wait = std::max<SimDuration>(at - sim()->now(), Milliseconds(1));
        rebalance_timer_ = After(wait, [this] { RebalanceStep(); });
        return;
      }
      for (const Endpoint& peer : targets) {
        PushEntry(key, *slot, peer);
      }
      int64_t pushed = static_cast<int64_t>(targets.size());
      rebalance_pushed_->Increment(pushed);
      rebalance_bytes_->Increment(size * pushed);
      pass_pushed_ += pushed;
      pass_bytes_ += size * pushed;
    }
    if (!owned && !chain.empty()) {
      // The new chain no longer assigns this key here; surrender it after the
      // pushes above so the content survives somewhere.
      cache_.Erase(key);
      rebalance_dropped_->Increment();
      ++pass_dropped_;
    }
    ++rebalance_pos_;
    ++processed;
  }
  if (rebalance_pos_ < rebalance_queue_.size()) {
    rebalance_timer_ = After(Milliseconds(1), [this] { RebalanceStep(); });
  } else {
    if (!echo_pass_) {
      settled_ring_ = ring_;
    }
    FinishRebalance();
  }
}

bool CacheNodeProcess::InChain(const ConsistentHashRing& ring, const std::string& key,
                               size_t r, int64_t member) {
  std::vector<int64_t> chain = ring.LookupN(key, r);
  return std::find(chain.begin(), chain.end(), member) != chain.end();
}

void CacheNodeProcess::FinishRebalance() {
  rebalance_active_ = false;
  echo_pass_ = false;
  rebalance_active_gauge_->Set(0.0);
  rebalance_queue_.clear();
  rebalance_pos_ = 0;
  RefreshGauges();
  if (config_.event_log != nullptr) {
    config_.event_log->RecordFault(
        {sim()->now(),
         StrFormat("cache n%d rebalance end (pushed %lld keys, %lld bytes, dropped %lld)",
                   node(), static_cast<long long>(pass_pushed_),
                   static_cast<long long>(pass_bytes_),
                   static_cast<long long>(pass_dropped_))});
  }
  if (!echo_keys_.empty()) {
    ScheduleEchoPass();
  }
}

void CacheNodeProcess::ScheduleEchoPass() {
  if (rebalance_active_ || rebalance_timer_ != kInvalidEventId) {
    return;  // A pass is running or one is already scheduled; it will re-check.
  }
  // Short settle so a burst of migrated entries echoes as one pass.
  rebalance_timer_ = After(Seconds(1), [this] { StartEchoPass(); });
}

void CacheNodeProcess::StartEchoPass() {
  rebalance_timer_ = kInvalidEventId;
  if (echo_keys_.empty()) {
    return;
  }
  rebalance_queue_.assign(echo_keys_.begin(), echo_keys_.end());
  echo_keys_.clear();
  rebalance_pos_ = 0;
  pass_pushed_ = 0;
  pass_bytes_ = 0;
  pass_dropped_ = 0;
  echo_pass_ = true;
  rebalance_active_ = true;
  rebalance_active_gauge_->Set(1.0);
  rebalance_passes_->Increment();
  if (config_.event_log != nullptr) {
    config_.event_log->RecordFault(
        {sim()->now(), StrFormat("cache n%d anti-entropy echo (%d keys)", node(),
                                 static_cast<int>(rebalance_queue_.size()))});
  }
  RebalanceStep();
}

void CacheNodeProcess::PushEntry(const std::string& key, const ContentPtr& content,
                                 const Endpoint& peer) {
  auto payload = std::make_shared<CachePutPayload>();
  payload->key = key;
  payload->content = content;
  payload->rebalance = true;
  Message msg;
  msg.dst = peer;
  msg.type = kMsgCachePut;
  msg.transport = Transport::kReliable;
  msg.size_bytes = WireSizeOf(*payload);
  msg.payload = payload;
  // Harvest protocol: fresh connection per request, like every cache client.
  San::SendOptions opts;
  opts.force_new_connection = true;
  Send(std::move(msg), std::move(opts));
}

std::vector<std::string> CacheNodeProcess::CacheKeys() const {
  std::vector<std::string> keys;
  keys.reserve(cache_.size());
  cache_.ForEach([&keys](const std::string& key, const ContentPtr&, int64_t) {
    keys.push_back(key);
  });
  return keys;
}

void CacheNodeProcess::HandleGet(const Message& msg) {
  auto get = std::static_pointer_cast<const CacheGetPayload>(msg.payload);
  if (get->deadline != kTimeNever && sim()->now() >= get->deadline) {
    // The requester already counted this op as a miss at its deadline; answering
    // (or even parsing) an expired get would only add load while overloaded.
    expired_gets_->Increment();
    RecordSpan(ChildSpan(msg.trace), "cache.get", sim()->now(), "expired");
    return;
  }
  gets_->Increment();
  ++outstanding_;
  TraceContext span = ChildSpan(msg.trace);
  SimTime start = sim()->now();
  RunOnCpu(config_.cpu_per_get, [this, get, span, start] {
    --outstanding_;
    auto reply = std::make_shared<CacheReplyPayload>();
    reply->op_id = get->op_id;
    auto value = cache_.Get(get->key);
    reply->hit = value.has_value();
    reply->content = value.has_value() ? *value : nullptr;
    RefreshGauges();
    RecordSpan(span, "cache.get", start, reply->hit ? "hit" : "miss");
    Message out;
    out.dst = get->reply_to;
    out.type = kMsgCacheReply;
    out.transport = Transport::kReliable;
    out.size_bytes = WireSizeOf(*reply);
    out.payload = reply;
    out.trace = span;
    // Harvest opens (and tears down) a TCP connection per request (§3.1.5); the
    // reply rides the same fresh connection, so no extra setup here.
    Send(std::move(out));
  });
}

void CacheNodeProcess::HandlePut(const Message& msg) {
  auto put = std::static_pointer_cast<const CachePutPayload>(msg.payload);
  puts_->Increment();
  if (put->rebalance) {
    rebalance_puts_in_->Increment();
  }
  // Puts occupy the node exactly like gets; leaving them out of `outstanding_`
  // made a put-heavy cache node look idle to the manager's load view.
  ++outstanding_;
  TraceContext span = ChildSpan(msg.trace);
  SimTime start = sim()->now();
  RunOnCpu(config_.cpu_per_put, [this, put, span, start] {
    --outstanding_;
    if (put->content != nullptr) {
      // Content identity (replicas of one put/migration share the ContentPtr)
      // tells a fresh migrated entry from a re-push of one we already hold —
      // only the former is echoed, so anti-entropy terminates.
      const ContentPtr* existing = cache_.Peek(put->key);
      bool already_known = existing != nullptr && *existing == put->content;
      cache_.Put(put->key, put->content);
      if (put->rebalance && !already_known) {
        echo_keys_.insert(put->key);
        ScheduleEchoPass();
      }
    }
    RefreshGauges();
    RecordSpan(span, "cache.put", start, "ok");
  });
}

void CacheNodeProcess::RefreshGauges() {
  hits_gauge_->Set(static_cast<double>(cache_.hits()));
  misses_gauge_->Set(static_cast<double>(cache_.misses()));
  used_bytes_gauge_->Set(static_cast<double>(cache_.used_bytes()));
}

void CacheNodeProcess::ReportLoad() {
  if (!manager_.valid()) {
    return;
  }
  auto payload = std::make_shared<LoadReportPayload>();
  payload->kind = ComponentKind::kCacheNode;
  payload->component = endpoint();
  payload->queue_length = static_cast<double>(outstanding_);
  payload->manager_epoch = manager_epoch_;
  RefreshGauges();
  Message msg;
  msg.dst = manager_;
  msg.type = kMsgLoadReport;
  msg.transport = Transport::kDatagram;
  msg.size_bytes = 80;
  msg.payload = payload;
  Send(std::move(msg));
}

}  // namespace sns
