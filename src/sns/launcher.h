// Interface through which SNS components start or restart other components.
//
// The paper's process-peer fault tolerance (§3.1.3) has components restart each
// other: the manager restarts crashed front ends, front ends restart a crashed
// manager, and the manager spawns workers on demand. The concrete launcher lives in
// SnsSystem (src/sns/system.h), which knows each component's construction recipe.

#ifndef SRC_SNS_LAUNCHER_H_
#define SRC_SNS_LAUNCHER_H_

#include <string>

#include "src/cluster/process.h"

namespace sns {

class ComponentLauncher {
 public:
  virtual ~ComponentLauncher() = default;

  // Spawns a worker of `type` on `node`. Returns kInvalidProcess on failure.
  virtual ProcessId LaunchWorker(const std::string& type, NodeId node) = 0;

  // Ensures a manager is running, starting one if needed (idempotent: concurrent
  // detection by several front ends must not yield two managers).
  virtual ProcessId RelaunchManager() = 0;

  // Ensures front end `fe_index` is running, restarting it if needed.
  virtual ProcessId RelaunchFrontEnd(int fe_index) = 0;

  // Ensures the profile database is running (the paper's commercial deployments use
  // primary/backup failover for the ACID component, §3.2; here the manager detects
  // the silence and fails over to a fresh process recovering from the shared WAL).
  virtual ProcessId RelaunchProfileDb() = 0;
};

}  // namespace sns

#endif  // SRC_SNS_LAUNCHER_H_
