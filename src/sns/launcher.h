// Interface through which SNS components start or restart other components.
//
// The paper's process-peer fault tolerance (§3.1.3) has components restart each
// other: the manager restarts crashed front ends, front ends restart a crashed
// manager, and the manager spawns workers on demand. The concrete launcher lives in
// SnsSystem (src/sns/system.h), which knows each component's construction recipe.

#ifndef SRC_SNS_LAUNCHER_H_
#define SRC_SNS_LAUNCHER_H_

#include <string>

#include "src/cluster/process.h"

namespace sns {

class ComponentLauncher {
 public:
  virtual ~ComponentLauncher() = default;

  // Spawns a worker of `type` on `node`. Returns kInvalidProcess on failure.
  virtual ProcessId LaunchWorker(const std::string& type, NodeId node) = 0;

  // Ensures a manager usable by `requester` is running, starting one if needed.
  // Idempotence is reachability-aware: an incumbent that is alive AND reachable
  // from the requester's node makes the call a no-op, but an incumbent stranded on
  // the far side of a SAN partition does not block failover — a replacement (with a
  // higher epoch) is spawned on a node the requester can reach. kInvalidNode means
  // "no particular vantage point" (bootstrap, tests): plain existence suffices.
  virtual ProcessId RelaunchManager(NodeId requester = kInvalidNode) = 0;

  // Ensures front end `fe_index` is running and reachable from `requester`,
  // restarting it if needed (same reachability contract as RelaunchManager).
  virtual ProcessId RelaunchFrontEnd(int fe_index, NodeId requester = kInvalidNode) = 0;

  // Ensures a profile database usable by `requester` is running (the paper's
  // commercial deployments use primary/backup failover for the ACID component,
  // §3.2; here the manager detects the silence and fails over to a fresh
  // incarnation — with a higher generation — recovering from the shared WAL).
  // Same reachability-aware idempotence contract as RelaunchManager; with
  // STONITH enabled an alive-but-unreachable incumbent is fenced before the
  // successor starts.
  virtual ProcessId RelaunchProfileDb(NodeId requester = kInvalidNode) = 0;
};

}  // namespace sns

#endif  // SRC_SNS_LAUNCHER_H_
